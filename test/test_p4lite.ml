(* Tests for the P4-lite frontend: lexer, parser, lowering, emission. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* --- lexer --- *)

let toks src = List.map (fun (t : P4lite.Lexer.located) -> t.token) (P4lite.Lexer.tokenize src)

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let test_lex_numbers () =
  check_bool "decimal" true (toks "42" = [ P4lite.Token.Number 42L; P4lite.Token.Eof ]);
  check_bool "hex" true (toks "0xFF" = [ P4lite.Token.Number 255L; P4lite.Token.Eof ]);
  check_bool "ipv4 quad" true
    (toks "10.0.0.1" = [ P4lite.Token.Number 0x0A000001L; P4lite.Token.Eof ]);
  check_bool "range keeps dotdot" true
    (toks "10..20"
     = [ P4lite.Token.Number 10L; P4lite.Token.Dotdot; P4lite.Token.Number 20L; P4lite.Token.Eof ])

let test_lex_idents_and_keywords () =
  check_bool "dotted ident" true (toks "ipv4.src" = [ P4lite.Token.Ident "ipv4.src"; P4lite.Token.Eof ]);
  check_bool "meta index" true (toks "meta.3" = [ P4lite.Token.Ident "meta.3"; P4lite.Token.Eof ]);
  check_bool "keyword" true (toks "table" = [ P4lite.Token.Kw_table; P4lite.Token.Eof ]);
  check_bool "underscore" true (toks "_" = [ P4lite.Token.Underscore; P4lite.Token.Eof ])

let test_lex_operators () =
  check_bool "amp3" true
    (toks "1 &&& 2"
     = [ P4lite.Token.Number 1L; P4lite.Token.Amp3; P4lite.Token.Number 2L; P4lite.Token.Eof ]);
  check_bool "cmp" true
    (toks "a == 1"
     = [ P4lite.Token.Ident "a"; P4lite.Token.Eq; P4lite.Token.Number 1L; P4lite.Token.Eof ]);
  check_bool "arrow" true (toks "->" = [ P4lite.Token.Arrow; P4lite.Token.Eof ])

let test_lex_comments () =
  check_bool "line comment" true (toks "// hi\n42" = [ P4lite.Token.Number 42L; P4lite.Token.Eof ]);
  check_bool "block comment" true (toks "/* x\ny */ 42" = [ P4lite.Token.Number 42L; P4lite.Token.Eof ]);
  check_bool "unterminated block raises" true
    (try ignore (toks "/* oops"); false with P4lite.Lexer.Error _ -> true)

(* --- parser + lowering --- *)

let minimal = {|
program p;
action a { nop; }
table t {
  key = { ipv4.dst : exact; }
  actions = { a; }
}
control { apply t; }
|}

let test_minimal_program () =
  let prog = P4lite.Lower.parse_program minimal in
  P4ir.Program.validate_exn prog;
  check_int "one node" 1 (P4ir.Program.num_nodes prog);
  check_string "program name" "p" (P4ir.Program.name prog);
  let _, t = Option.get (P4ir.Program.find_table prog "t") in
  check_string "default is first action" "a" t.P4ir.Table.default_action

let test_control_flow_lowering () =
  let src = {|
program p;
action a { nop; }
action b { drop; }
table t1 { key = { ipv4.dst : exact; } actions = { a; b; } }
table t2 { key = { ipv4.src : exact; } actions = { a; } }
table t3 { key = { tcp.dport : exact; } actions = { a; } }
table last { key = { tcp.sport : exact; } actions = { a; } }
control {
  if (ipv4.ttl == 0) { apply t2; } else { apply t3; }
  switch (t1) {
    case a: { }
    case b: { }
  }
  apply last;
}
|} in
  let prog = P4lite.Lower.parse_program src in
  P4ir.Program.validate_exn prog;
  check_int "five nodes" 5 (P4ir.Program.num_nodes prog);
  check_int "one conditional" 1 (List.length (P4ir.Program.conds prog));
  (* Both arms rejoin at t1's switch node; its branches go to `last`. *)
  let paths = P4ir.Program.enumerate_paths prog in
  check_int "2 arms x 2 switch actions" 4 (List.length paths)

let test_entries_lowered () =
  let src = {|
program p;
action a { nop; }
action d { drop; }
table t {
  key = { ipv4.src : ternary; tcp.dport : exact; }
  actions = { a; d; }
  default_action = a;
  entries = {
    (10.0.0.0 &&& 0xFF000000, 80) -> d priority 7;
    (_, 443) -> a;
  }
}
control { apply t; }
|} in
  let prog = P4lite.Lower.parse_program src in
  let _, t = Option.get (P4ir.Program.find_table prog "t") in
  check_int "two entries" 2 (P4ir.Table.num_entries t);
  let e = List.hd t.P4ir.Table.entries in
  check_int "priority" 7 e.P4ir.Table.priority;
  check_bool "wildcard second entry" true
    (match (List.nth t.P4ir.Table.entries 1).P4ir.Table.patterns with
     | [ p; _ ] -> P4ir.Pattern.is_wildcard p
     | _ -> false)

let expect_error src fragment =
  match P4lite.Lower.parse_program src with
  | _ -> Alcotest.failf "expected error mentioning %S" fragment
  | exception (P4lite.Lower.Error msg | P4lite.Parser.Error msg) ->
    if not (contains msg fragment) then Alcotest.failf "unexpected message: %s" msg

let test_lowering_errors () =
  expect_error {|
program p;
action a { nop; }
table t { key = { nosuch.field : exact; } actions = { a; } }
control { apply t; }
|} "unknown field";
  expect_error {|
program p;
action a { nop; }
table t { key = { ipv4.dst : exact; } actions = { a; } }
control { apply t; apply t; }
|} "applied more than once";
  expect_error {|
program p;
action a { nop; }
control { apply missing; }
|} "unknown table";
  expect_error {|
program p;
action a { nop; }
table t { key = { ipv4.dst : exact; } actions = { a; } entries = { (_) -> a; } }
control { apply t; }
|} "'_' is not allowed"

let test_parse_errors_located () =
  (match P4lite.Lower.parse_program "program p control {}" with
   | _ -> Alcotest.fail "should not parse"
   | exception P4lite.Parser.Error msg ->
     check_bool "line in message" true (contains msg "line 1")
   | exception _ -> Alcotest.fail "wrong exception")

let test_lex_errors_located () =
  (* A lexical error deep in the file must surface through the parser
     with its line and column, just like parse errors do. *)
  (match P4lite.Lower.parse_program "program p;\n\ncontrol {\n  apply $t;\n}" with
   | _ -> Alcotest.fail "should not lex"
   | exception P4lite.Parser.Error msg ->
     check_bool "line in lex message" true (contains msg "line 4");
     check_bool "col in lex message" true (contains msg "col 9")
   | exception _ -> Alcotest.fail "wrong exception");
  (* The raw lexer exception carries the position structurally. *)
  match P4lite.Lexer.tokenize "x\n  $" with
  | _ -> Alcotest.fail "should not tokenize"
  | exception P4lite.Lexer.Error { line; col; _ } ->
    check_int "lexer line" 2 line;
    check_int "lexer col" 3 col

(* --- emission --- *)

let test_emit_fixpoint () =
  let prog = P4lite.Lower.parse_program minimal in
  let emitted = P4lite.Emit.emit prog in
  let prog2 = P4lite.Lower.parse_program emitted in
  check_string "fixpoint" emitted (P4lite.Emit.emit prog2)

let test_emit_execution_equivalence () =
  (* The emitted program must behave identically under execution. *)
  let src = {|
program p;
action pass { nop; }
action deny { drop; }
action stamp { meta.1 = 7; }
table acl {
  key = { tcp.dport : exact; }
  actions = { pass; deny; }
  default_action = pass;
  entries = { (666) -> deny; }
}
table mark {
  key = { ipv4.src : exact; }
  actions = { stamp; pass; }
  default_action = pass;
  entries = { (1) -> stamp; (2) -> stamp; }
}
control {
  apply acl;
  if (ipv4.ttl == 0) { } else { apply mark; }
}
|} in
  let prog = P4lite.Lower.parse_program src in
  let prog2 = P4lite.Lower.parse_program (P4lite.Emit.emit prog) in
  let target = Costmodel.Target.bluefield2 in
  let ex1 = Nicsim.Exec.create (Nicsim.Exec.default_config target) prog in
  let ex2 = Nicsim.Exec.create (Nicsim.Exec.default_config target) prog2 in
  let rng = Stdx.Prng.create 5L in
  let ok = ref true in
  for _ = 1 to 500 do
    let pkt =
      Nicsim.Packet.of_fields
        [ (P4ir.Field.Ipv4_src, Int64.of_int (Stdx.Prng.int rng 4));
          (P4ir.Field.Ipv4_ttl, Int64.of_int (Stdx.Prng.int rng 2));
          (P4ir.Field.Tcp_dport, if Stdx.Prng.bool rng 0.3 then 666L else 80L) ]
    in
    let q = Nicsim.Packet.copy pkt in
    ignore (Nicsim.Exec.run_packet ex1 ~now:0. pkt);
    ignore (Nicsim.Exec.run_packet ex2 ~now:0. q);
    if Nicsim.Packet.is_dropped pkt <> Nicsim.Packet.is_dropped q then ok := false;
    if
      not
        (Int64.equal
           (Nicsim.Packet.get pkt (P4ir.Field.Meta 1))
           (Nicsim.Packet.get q (P4ir.Field.Meta 1)))
    then ok := false
  done;
  check_bool "emitted program equivalent" true !ok

let test_emit_optimized_program () =
  (* Programs rewritten by Pipeleon (caches = switch-case tables) still
     emit and re-parse. *)
  let prog = P4lite.Lower.parse_program minimal in
  let tabs =
    P4ir.Builder.exact_chain ~prefix:"x" ~n:3
      ~key_of:(fun i -> [| P4ir.Field.Ipv4_src; P4ir.Field.Ipv4_dst; P4ir.Field.Tcp_sport |].(i))
      ()
  in
  ignore prog;
  let chain = P4ir.Program.linear "opt" tabs in
  let p = List.hd (Pipeleon.Pipelet.form chain) in
  let cache = Pipeleon.Cache.build ~name:"c" tabs in
  let optimized =
    Pipeleon.Transform.apply chain p [ Pipeleon.Transform.Cached { cache; originals = tabs } ]
  in
  let emitted = P4lite.Emit.emit optimized in
  let reparsed = P4lite.Lower.parse_program emitted in
  P4ir.Program.validate_exn reparsed;
  check_int "same node count" (P4ir.Program.num_nodes optimized) (P4ir.Program.num_nodes reparsed)

let () =
  Alcotest.run "p4lite"
    [ ( "lexer",
        [ Alcotest.test_case "numbers" `Quick test_lex_numbers;
          Alcotest.test_case "idents/keywords" `Quick test_lex_idents_and_keywords;
          Alcotest.test_case "operators" `Quick test_lex_operators;
          Alcotest.test_case "comments" `Quick test_lex_comments ] );
      ( "lowering",
        [ Alcotest.test_case "minimal" `Quick test_minimal_program;
          Alcotest.test_case "control flow" `Quick test_control_flow_lowering;
          Alcotest.test_case "entries" `Quick test_entries_lowered;
          Alcotest.test_case "errors" `Quick test_lowering_errors;
          Alcotest.test_case "located errors" `Quick test_parse_errors_located;
          Alcotest.test_case "located lex errors" `Quick test_lex_errors_located ] );
      ( "emission",
        [ Alcotest.test_case "fixpoint" `Quick test_emit_fixpoint;
          Alcotest.test_case "execution equivalence" `Quick test_emit_execution_equivalence;
          Alcotest.test_case "optimized programs" `Quick test_emit_optimized_program ] ) ]
