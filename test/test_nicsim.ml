(* Tests for the SmartNIC simulator: packets, LRU, match engines, the
   run-to-completion executor, and the multicore throughput model. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)
let check_float = Alcotest.(check (float 1e-6))

(* --- Packet --- *)

let test_packet_fields () =
  let p = Nicsim.Packet.create () in
  Nicsim.Packet.set p P4ir.Field.Ipv4_dst 0x0A000001L;
  check_bool "set/get" true
    (Int64.equal (Nicsim.Packet.get p P4ir.Field.Ipv4_dst) 0x0A000001L);
  Nicsim.Packet.set p P4ir.Field.Ipv4_ttl 0x1FFL;
  check_bool "width truncation" true
    (Int64.equal (Nicsim.Packet.get p P4ir.Field.Ipv4_ttl) 0xFFL);
  Nicsim.Packet.set p (P4ir.Field.Meta 20) 7L;
  check_bool "meta grows" true (Int64.equal (Nicsim.Packet.get p (P4ir.Field.Meta 20)) 7L);
  check_bool "unset meta reads zero" true
    (Int64.equal (Nicsim.Packet.get p (P4ir.Field.Meta 5)) 0L)

let test_packet_copy_independent () =
  let p = Nicsim.Packet.of_fields [ (P4ir.Field.Tcp_sport, 80L) ] in
  let q = Nicsim.Packet.copy p in
  Nicsim.Packet.set q P4ir.Field.Tcp_sport 443L;
  check_bool "copy independent" true
    (Int64.equal (Nicsim.Packet.get p P4ir.Field.Tcp_sport) 80L)

(* --- LRU --- *)

let test_lru_eviction_order () =
  let lru = Nicsim.Lru.create ~capacity:2 in
  ignore (Nicsim.Lru.put lru "a" 1);
  ignore (Nicsim.Lru.put lru "b" 2);
  ignore (Nicsim.Lru.find lru "a");  (* refresh a *)
  let evicted = Nicsim.Lru.put lru "c" 3 in
  check_bool "b evicted" true (evicted = Some "b");
  check_bool "a kept" true (Nicsim.Lru.find lru "a" = Some 1);
  check_int "len" 2 (Nicsim.Lru.length lru)

let test_lru_overwrite_no_evict () =
  let lru = Nicsim.Lru.create ~capacity:2 in
  ignore (Nicsim.Lru.put lru "a" 1);
  ignore (Nicsim.Lru.put lru "b" 2);
  check_bool "overwrite" true (Nicsim.Lru.put lru "a" 9 = None);
  check_bool "value updated" true (Nicsim.Lru.find lru "a" = Some 9)

let test_lru_remove_clear () =
  let lru = Nicsim.Lru.create ~capacity:4 in
  ignore (Nicsim.Lru.put lru "a" 1);
  Nicsim.Lru.remove lru "a";
  check_bool "removed" true (Nicsim.Lru.find lru "a" = None);
  ignore (Nicsim.Lru.put lru "b" 2);
  Nicsim.Lru.clear lru;
  check_int "cleared" 0 (Nicsim.Lru.length lru)

(* --- Engines --- *)

let pkt_dst v =
  Nicsim.Packet.of_fields [ (P4ir.Field.Ipv4_dst, v); (P4ir.Field.Tcp_dport, 80L) ]

let test_engine_exact () =
  let tab =
    P4ir.Table.make ~name:"e"
      ~keys:[ P4ir.Table.key P4ir.Field.Ipv4_dst P4ir.Match_kind.Exact ]
      ~actions:[ P4ir.Action.nop "hit"; P4ir.Action.nop "def" ]
      ~default_action:"def"
      ~entries:[ P4ir.Table.entry [ P4ir.Pattern.Exact 5L ] "hit" ]
      ()
  in
  let eng = Nicsim.Engine.create tab in
  let hit, accesses = Nicsim.Engine.lookup eng (pkt_dst 5L) in
  check_bool "hit" true (Option.is_some hit);
  check_int "one access" 1 accesses;
  let miss, accesses = Nicsim.Engine.lookup eng (pkt_dst 6L) in
  check_bool "miss" true (miss = None);
  check_int "miss one access" 1 accesses

let lpm_table () =
  P4ir.Table.make ~name:"lpm"
    ~keys:[ P4ir.Table.key P4ir.Field.Ipv4_dst P4ir.Match_kind.Lpm ]
    ~actions:[ P4ir.Action.nop "a8"; P4ir.Action.nop "a24"; P4ir.Action.nop "def" ]
    ~default_action:"def"
    ~entries:
      [ P4ir.Table.entry [ P4ir.Pattern.Lpm (0x0A000000L, 8) ] "a8";
        P4ir.Table.entry [ P4ir.Pattern.Lpm (0x0A0B0C00L, 24) ] "a24" ]
    ()

let test_engine_lpm_longest_first () =
  let eng = Nicsim.Engine.create (lpm_table ()) in
  let hit, accesses = Nicsim.Engine.lookup eng (pkt_dst 0x0A0B0C0DL) in
  (match hit with
   | Some e -> check_string "longest prefix wins" "a24" e.action
   | None -> Alcotest.fail "expected hit");
  check_int "first probe suffices" 1 accesses;
  let hit, accesses = Nicsim.Engine.lookup eng (pkt_dst 0x0AFFFFFFL) in
  (match hit with
   | Some e -> check_string "short prefix" "a8" e.action
   | None -> Alcotest.fail "expected /8 hit");
  check_int "two probes" 2 accesses;
  let miss, accesses = Nicsim.Engine.lookup eng (pkt_dst 0x0B000000L) in
  check_bool "miss" true (miss = None);
  check_int "all groups probed on miss" 2 accesses

let test_engine_ternary_priority () =
  let tab =
    P4ir.Table.make ~name:"tern"
      ~keys:[ P4ir.Table.key P4ir.Field.Ipv4_dst P4ir.Match_kind.Ternary ]
      ~actions:[ P4ir.Action.nop "low"; P4ir.Action.nop "high" ]
      ~default_action:"low"
      ~entries:
        [ P4ir.Table.entry ~priority:1 [ P4ir.Pattern.Ternary (0x0A000000L, 0xFF000000L) ] "low";
          P4ir.Table.entry ~priority:9 [ P4ir.Pattern.Ternary (0x0A0B0000L, 0xFFFF0000L) ] "high" ]
      ()
  in
  let eng = Nicsim.Engine.create tab in
  let hit, accesses = Nicsim.Engine.lookup eng (pkt_dst 0x0A0B0000L) in
  (match hit with
   | Some e -> check_string "priority wins" "high" e.action
   | None -> Alcotest.fail "expected hit");
  check_int "every mask group probed" 2 accesses

let test_engine_range_linear () =
  let tab =
    P4ir.Table.make ~name:"rng"
      ~keys:[ P4ir.Table.key P4ir.Field.Tcp_dport P4ir.Match_kind.Range ]
      ~actions:[ P4ir.Action.nop "web"; P4ir.Action.nop "def" ]
      ~default_action:"def"
      ~entries:[ P4ir.Table.entry [ P4ir.Pattern.Range (80L, 443L) ] "web" ]
      ()
  in
  let eng = Nicsim.Engine.create tab in
  match Nicsim.Engine.lookup eng (pkt_dst 1L) with
  | Some e, _ -> check_string "range hit" "web" e.action
  | None, _ -> Alcotest.fail "expected range hit"

let test_engine_insert_delete () =
  let tab =
    P4ir.Table.make ~name:"e"
      ~keys:[ P4ir.Table.key P4ir.Field.Ipv4_dst P4ir.Match_kind.Exact ]
      ~actions:[ P4ir.Action.nop "hit"; P4ir.Action.nop "def" ]
      ~default_action:"def" ()
  in
  let eng = Nicsim.Engine.create tab in
  Nicsim.Engine.insert eng (P4ir.Table.entry [ P4ir.Pattern.Exact 7L ] "hit");
  check_int "one entry" 1 (Nicsim.Engine.num_entries eng);
  check_int "update counted" 1 (Nicsim.Engine.update_count eng);
  check_bool "hit after insert" true
    (fst (Nicsim.Engine.lookup eng (pkt_dst 7L)) <> None);
  check_bool "delete" true (Nicsim.Engine.delete eng ~patterns:[ P4ir.Pattern.Exact 7L ]);
  check_int "empty" 0 (Nicsim.Engine.num_entries eng);
  check_int "both updates counted" 2 (Nicsim.Engine.take_update_count eng);
  check_int "counter reset" 0 (Nicsim.Engine.update_count eng)

let cache_table ?(capacity = 2) ?(insert_limit = 0.) () =
  P4ir.Table.make ~name:"cache"
    ~keys:[ P4ir.Table.key P4ir.Field.Ipv4_dst P4ir.Match_kind.Exact ]
    ~actions:[ P4ir.Action.nop "t:a"; P4ir.Action.nop "miss" ]
    ~default_action:"miss"
    ~role:
      (P4ir.Table.Cache
         { P4ir.Table.cached_tables = [ "t" ]; capacity; insert_limit; auto_insert = true })
    ()

let test_cache_fill_lru () =
  let eng = Nicsim.Engine.create (cache_table ()) in
  let fill v = Nicsim.Engine.cache_fill eng ~now:0. (P4ir.Table.entry [ P4ir.Pattern.Exact v ] "t:a") in
  check_bool "first" true (fill 1L = `Inserted);
  check_bool "second" true (fill 2L = `Inserted);
  check_bool "third evicts" true (fill 3L = `Full_replace);
  check_int "capacity respected" 2 (Nicsim.Engine.num_entries eng)

let test_cache_fill_rate_limit () =
  let eng = Nicsim.Engine.create (cache_table ~capacity:100 ~insert_limit:2. ()) in
  let fill now v =
    Nicsim.Engine.cache_fill eng ~now (P4ir.Table.entry [ P4ir.Pattern.Exact v ] "t:a")
  in
  (* The bucket starts with one second's burst (2 tokens). *)
  check_bool "burst token 1" true (fill 0.0 1L = `Inserted);
  check_bool "burst token 2" true (fill 0.0 2L = `Inserted);
  check_bool "burst exhausted" true (fill 0.0 3L = `Rate_limited);
  check_bool "refills with time" true (fill 1.0 4L = `Inserted);
  check_bool "capped at burst" true (fill 1.0 5L = `Inserted);
  check_bool "exhausted again" true (fill 1.0 6L = `Rate_limited)

(* --- Exec --- *)

let acl_with_drop ~name value =
  let acl = P4ir.Builder.acl_table ~name ~keys:[ P4ir.Builder.exact_key P4ir.Field.Ipv4_dst ] () in
  P4ir.Table.add_entry acl (P4ir.Table.entry [ P4ir.Pattern.Exact value ] "deny")

let test_exec_drop_halts () =
  let acl = acl_with_drop ~name:"acl" 9L in
  let after = P4ir.Builder.exact_chain ~prefix:"t" ~n:1 ~key_of:(fun _ -> P4ir.Field.Tcp_dport) () in
  let prog = P4ir.Program.linear "p" (acl :: after) in
  let target = Costmodel.Target.bluefield2 in
  let ex = Nicsim.Exec.create (Nicsim.Exec.default_config target) prog in
  let dropped = pkt_dst 9L in
  let lat_dropped = Nicsim.Exec.run_packet ex ~now:0. dropped in
  check_bool "dropped" true (Nicsim.Packet.is_dropped dropped);
  let passed = pkt_dst 8L in
  let lat_passed = Nicsim.Exec.run_packet ex ~now:0. passed in
  check_bool "not dropped" false (Nicsim.Packet.is_dropped passed);
  check_bool "early drop is cheaper" true (lat_dropped < lat_passed);
  check_int "drops counted" 1 (Nicsim.Exec.drops_seen ex)

let test_exec_actions_apply () =
  let tab =
    P4ir.Table.make ~name:"rewrite"
      ~keys:[ P4ir.Table.key P4ir.Field.Ipv4_dst P4ir.Match_kind.Exact ]
      ~actions:
        [ P4ir.Action.make "rw"
            [ P4ir.Action.Set_field (P4ir.Field.Tcp_dport, 100L);
              P4ir.Action.Dec_ttl;
              P4ir.Action.Forward 3 ];
          P4ir.Action.nop "def" ]
      ~default_action:"def"
      ~entries:[ P4ir.Table.entry [ P4ir.Pattern.Exact 1L ] "rw" ]
      ()
  in
  let prog = P4ir.Program.linear "p" [ tab ] in
  let ex = Nicsim.Exec.create (Nicsim.Exec.default_config Costmodel.Target.bluefield2) prog in
  let p = pkt_dst 1L in
  Nicsim.Packet.set p P4ir.Field.Ipv4_ttl 64L;
  ignore (Nicsim.Exec.run_packet ex ~now:0. p);
  check_bool "dport rewritten" true (Int64.equal (Nicsim.Packet.get p P4ir.Field.Tcp_dport) 100L);
  check_bool "ttl decremented" true (Int64.equal (Nicsim.Packet.get p P4ir.Field.Ipv4_ttl) 63L);
  check_bool "egress set" true (Nicsim.Packet.egress_port p = Some 3)

let test_exec_counters () =
  let acl = acl_with_drop ~name:"acl" 9L in
  let prog = P4ir.Program.linear "p" [ acl ] in
  let ex = Nicsim.Exec.create (Nicsim.Exec.default_config Costmodel.Target.bluefield2) prog in
  ignore (Nicsim.Exec.run_packet ex ~now:0. (pkt_dst 9L));
  ignore (Nicsim.Exec.run_packet ex ~now:0. (pkt_dst 1L));
  ignore (Nicsim.Exec.run_packet ex ~now:0. (pkt_dst 2L));
  let c = Nicsim.Exec.counters ex in
  check_bool "deny counted" true (Int64.equal (Profile.Counter.get c ~owner:"acl" ~label:"deny") 1L);
  check_bool "allow counted" true
    (Int64.equal (Profile.Counter.get c ~owner:"acl" ~label:"allow") 2L)

let test_exec_sampling () =
  let acl = acl_with_drop ~name:"acl" 9L in
  let prog = P4ir.Program.linear "p" [ acl ] in
  let cfg =
    { (Nicsim.Exec.default_config Costmodel.Target.bluefield2) with
      Nicsim.Exec.sample_rate = 4 }
  in
  let ex = Nicsim.Exec.create cfg prog in
  for _ = 1 to 16 do
    ignore (Nicsim.Exec.run_packet ex ~now:0. (pkt_dst 1L))
  done;
  let c = Nicsim.Exec.counters ex in
  check_bool "1 in 4 sampled" true
    (Int64.equal (Profile.Counter.get c ~owner:"acl" ~label:"allow") 4L)

let test_exec_migration_cost () =
  let tabs = P4ir.Builder.exact_chain ~prefix:"t" ~n:4 ~key_of:(fun _ -> P4ir.Field.Ipv4_dst) () in
  let prog = P4ir.Program.linear "p" tabs in
  let target = Costmodel.Target.bluefield2 in
  let all_asic = Nicsim.Exec.default_config target in
  let ids = List.map fst (P4ir.Program.tables prog) in
  (* Alternate ASIC/CPU: t0=Asic, t1=Cpu, t2=Asic, t3=Cpu gives crossings
     t0-t1, t1-t2, t2-t3, t3-sink = 4 migrations. *)
  let placement id =
    match List.find_index (Int.equal id) ids with
    | Some i when i mod 2 = 1 -> Costmodel.Cost.Cpu
    | _ -> Costmodel.Cost.Asic
  in
  let hetero = { all_asic with Nicsim.Exec.placement } in
  let ex_flat = Nicsim.Exec.create all_asic prog in
  let ex_het = Nicsim.Exec.create hetero prog in
  let base = Nicsim.Exec.run_packet ex_flat ~now:0. (pkt_dst 1L) in
  let lifted = Nicsim.Exec.run_packet ex_het ~now:0. (pkt_dst 1L) in
  check_bool "migrations charged" true
    (lifted -. base >= (4. *. target.Costmodel.Target.migration_latency) -. 1e-6)

let test_exec_switch_case_routing () =
  let t_next = P4ir.Builder.exact_chain ~prefix:"after" ~n:1 ~key_of:(fun _ -> P4ir.Field.Ipv4_dst) () in
  let switch_tab =
    P4ir.Table.make ~name:"sw"
      ~keys:[ P4ir.Table.key P4ir.Field.Ipv4_dst P4ir.Match_kind.Exact ]
      ~actions:[ P4ir.Action.nop "go"; P4ir.Action.nop "skip" ]
      ~default_action:"skip"
      ~entries:[ P4ir.Table.entry [ P4ir.Pattern.Exact 1L ] "go" ]
      ()
  in
  let prog = P4ir.Program.empty "p" in
  let prog, after_id =
    P4ir.Program.add_node prog
      (P4ir.Program.Table (List.hd t_next, P4ir.Program.Uniform None))
  in
  let prog, sw_id =
    P4ir.Program.add_node prog
      (P4ir.Program.Table
         (switch_tab, P4ir.Program.Per_action [ ("go", Some after_id); ("skip", None) ]))
  in
  let prog = P4ir.Program.with_root prog (Some sw_id) in
  P4ir.Program.validate_exn prog;
  let ex = Nicsim.Exec.create (Nicsim.Exec.default_config Costmodel.Target.bluefield2) prog in
  ignore (Nicsim.Exec.run_packet ex ~now:0. (pkt_dst 1L));
  ignore (Nicsim.Exec.run_packet ex ~now:0. (pkt_dst 2L));
  let c = Nicsim.Exec.counters ex in
  check_bool "only the 'go' packet reaches after_0" true
    (Int64.equal (Profile.Counter.owner_total c "after_0") 1L)

(* --- Sim --- *)

let test_sim_window_throughput () =
  let tabs = P4ir.Builder.exact_chain ~prefix:"t" ~n:10 ~key_of:(fun _ -> P4ir.Field.Ipv4_dst) () in
  let prog = P4ir.Program.linear "p" tabs in
  let target = Costmodel.Target.bluefield2 in
  let sim = Nicsim.Sim.create target prog in
  let rng = Stdx.Prng.create 42L in
  let flows = Traffic.Workload.random_flows rng ~n:100 ~fields:[ P4ir.Field.Ipv4_dst ] in
  let source = Traffic.Workload.of_flows rng flows in
  let stats = Nicsim.Sim.run_window sim ~duration:1.0 ~packets:500 ~source in
  check_int "sampled" 500 stats.Nicsim.Sim.sampled_packets;
  check_bool "throughput positive" true (stats.Nicsim.Sim.throughput_gbps > 0.);
  check_bool "capped at line rate" true
    (stats.Nicsim.Sim.throughput_gbps <= target.Costmodel.Target.line_rate_gbps +. 1e-9);
  check_float "clock advanced" 1.0 (Nicsim.Sim.now sim)

let test_sim_reconfigure_preserves_entries () =
  let tab =
    P4ir.Table.make ~name:"keep"
      ~keys:[ P4ir.Table.key P4ir.Field.Ipv4_dst P4ir.Match_kind.Exact ]
      ~actions:[ P4ir.Action.nop "hit"; P4ir.Action.nop "def" ]
      ~default_action:"def" ()
  in
  let prog = P4ir.Program.linear "p" [ tab ] in
  let sim = Nicsim.Sim.create Costmodel.Target.bluefield2 prog in
  Nicsim.Sim.insert sim ~table:"keep" (P4ir.Table.entry [ P4ir.Pattern.Exact 7L ] "hit");
  let prog2 =
    P4ir.Program.linear "p2"
      (tab :: P4ir.Builder.exact_chain ~prefix:"new" ~n:1 ~key_of:(fun _ -> P4ir.Field.Tcp_dport) ())
  in
  Nicsim.Sim.reconfigure ~downtime:0.5 sim prog2;
  check_float "downtime advanced clock" 0.5 (Nicsim.Sim.now sim);
  let eng = Nicsim.Exec.engine_exn (Nicsim.Sim.exec sim) "keep" in
  check_int "entries preserved" 1 (Nicsim.Engine.num_entries eng)

let test_sim_profile_extraction () =
  let acl = acl_with_drop ~name:"acl" 9L in
  let prog = P4ir.Program.linear "p" [ acl ] in
  let sim = Nicsim.Sim.create Costmodel.Target.bluefield2 prog in
  let rng = Stdx.Prng.create 1L in
  let base = Traffic.Workload.constant [ (P4ir.Field.Ipv4_dst, 1L) ] in
  let source =
    Traffic.Workload.mark_fraction rng ~rate:0.5 ~field:P4ir.Field.Ipv4_dst ~value:9L base
  in
  ignore (Nicsim.Sim.run_window sim ~duration:1.0 ~packets:4000 ~source);
  let prof = Nicsim.Sim.current_profile sim in
  let drop =
    Profile.drop_prob prof
      (match P4ir.Program.find_table prog "acl" with Some (_, t) -> t | None -> assert false)
  in
  check_bool "observed drop rate near 0.5" true (Float.abs (drop -. 0.5) < 0.05)

let test_sim_p99_and_drop_fraction () =
  let acl = acl_with_drop ~name:"acl" 9L in
  let tail = P4ir.Builder.exact_chain ~prefix:"t" ~n:8 ~key_of:(fun _ -> P4ir.Field.Tcp_dport) () in
  let prog = P4ir.Program.linear "p" (acl :: tail) in
  let sim = Nicsim.Sim.create Costmodel.Target.bluefield2 prog in
  let rng = Stdx.Prng.create 8L in
  let base = Traffic.Workload.constant [ (P4ir.Field.Ipv4_dst, 1L) ] in
  let source =
    Traffic.Workload.mark_fraction rng ~rate:0.25 ~field:P4ir.Field.Ipv4_dst ~value:9L base
  in
  let stats = Nicsim.Sim.run_window sim ~duration:1.0 ~packets:2000 ~source in
  check_bool "p99 >= avg" true (stats.Nicsim.Sim.p99_latency >= stats.Nicsim.Sim.avg_latency);
  check_bool "drop fraction near 0.25" true
    (Float.abs (stats.Nicsim.Sim.drop_fraction -. 0.25) < 0.04)

let test_sim_instrumentation_overhead () =
  let prog =
    P4ir.Program.linear "p"
      (P4ir.Builder.exact_chain ~prefix:"t" ~n:20 ~key_of:(fun _ -> P4ir.Field.Ipv4_dst) ())
  in
  let target = Costmodel.Target.agilio_cx in
  let run instrumented =
    let cfg = { (Nicsim.Exec.default_config target) with Nicsim.Exec.instrumented } in
    let sim = Nicsim.Sim.create ~config:cfg target prog in
    let source = Traffic.Workload.constant [ (P4ir.Field.Ipv4_dst, 1L) ] in
    (Nicsim.Sim.run_window sim ~duration:1.0 ~packets:300 ~source).Nicsim.Sim.avg_latency
  in
  let plain = run false and counted = run true in
  (* 20 counter bumps at the Agilio counter cost. *)
  Alcotest.(check (float 1e-6)) "counter cost exact"
    (20. *. target.Costmodel.Target.counter_update_cost)
    (counted -. plain)

let test_cache_capacity_respected_in_program () =
  let tabs = P4ir.Builder.exact_chain ~prefix:"t" ~n:2 ~key_of:(fun i -> [| P4ir.Field.Ipv4_src; P4ir.Field.Ipv4_dst |].(i)) () in
  let prog = P4ir.Program.linear "p" tabs in
  let p = List.hd (Pipeleon.Pipelet.form prog) in
  let cache = Pipeleon.Cache.build ~capacity:8 ~insert_limit:1e9 ~name:"c" tabs in
  let prog' =
    Pipeleon.Transform.apply prog p [ Pipeleon.Transform.Cached { cache; originals = tabs } ]
  in
  let ex = Nicsim.Exec.create (Nicsim.Exec.default_config Costmodel.Target.bluefield2) prog' in
  for i = 1 to 100 do
    let pkt =
      Nicsim.Packet.of_fields
        [ (P4ir.Field.Ipv4_src, Int64.of_int i); (P4ir.Field.Ipv4_dst, Int64.of_int i) ]
    in
    ignore (Nicsim.Exec.run_packet ex ~now:(float_of_int i) pkt)
  done;
  check_int "LRU bound holds under fills" 8
    (Nicsim.Engine.num_entries (Nicsim.Exec.engine_exn ex "c"))

let test_navigation_migration_execution () =
  (* Materialized hetero program executes through nav/migration tables:
     next_tab_id gets written and the packet still reaches the end. *)
  let tabs =
    P4ir.Builder.exact_chain ~prefix:"t" ~n:2 ~key_of:(fun _ -> P4ir.Field.Ipv4_dst) ()
  in
  let prog = P4ir.Program.linear "p" tabs in
  let ids = List.map fst (P4ir.Program.tables prog) in
  let placement id = if id = List.nth ids 1 then Costmodel.Cost.Cpu else Costmodel.Cost.Asic in
  let prog', placement' = Pipeleon.Hetero.materialize prog ~placement in
  let cfg = { (Nicsim.Exec.default_config Costmodel.Target.emulated_nic) with Nicsim.Exec.placement = placement' } in
  let ex = Nicsim.Exec.create cfg prog' in
  let pkt = pkt_dst 1L in
  ignore (Nicsim.Exec.run_packet ex ~now:0. pkt);
  check_bool "next_tab_id piggybacked" true
    (Int64.compare (Nicsim.Packet.get pkt P4ir.Field.Next_tab_id) 0L > 0);
  let c = Nicsim.Exec.counters ex in
  check_bool "migration table executed" true
    (List.exists
       (fun ((k : Profile.Counter.key), _) ->
         String.length k.owner >= 5 && String.sub k.owner 0 5 = "__mig")
       (Profile.Counter.dump c))

(* --- fast path: compiled plans, insert ordering, copies --- *)

let lpm_key = [ P4ir.Table.key P4ir.Field.Ipv4_dst P4ir.Match_kind.Lpm ]

let lpm_entry ~len v = P4ir.Table.entry [ P4ir.Pattern.Lpm (v, len) ] "hit"

let empty_lpm_table () =
  P4ir.Table.make ~name:"l" ~keys:lpm_key
    ~actions:[ P4ir.Action.nop "hit"; P4ir.Action.nop "def" ]
    ~default_action:"def" ()

let test_shaped_insert_ordering () =
  let eng = Nicsim.Engine.create (empty_lpm_table ()) in
  (* Insert prefix lengths out of order; groups must end up probe-ordered
     longest-first regardless. *)
  List.iter
    (fun len ->
      Nicsim.Engine.insert eng
        (lpm_entry ~len (Int64.shift_left 0x0AL (32 - 8))))
    [ 12; 8; 24; 16; 20 ];
  check_int "one group per distinct length" 5 (Nicsim.Engine.shape_groups eng);
  (* Re-inserting an existing length must not create a group. *)
  Nicsim.Engine.insert eng (lpm_entry ~len:16 (Int64.shift_left 0x0BL 16));
  check_int "no duplicate group" 5 (Nicsim.Engine.shape_groups eng);
  (* Probe ordering: a /24 hit is found on the first probe, a /8-only
     match needs one probe per longer group first. *)
  let _, accesses = Nicsim.Engine.lookup_linear eng (pkt_dst 0x0A000000L) in
  check_int "longest group probed first" 1 accesses;
  let hit, accesses = Nicsim.Engine.lookup_linear eng (pkt_dst 0x0AFFFFFFL) in
  check_bool "/8 still hits" true (Option.is_some hit);
  check_int "shortest group probed last" 5 accesses;
  let miss, accesses = Nicsim.Engine.lookup_linear eng (pkt_dst 0x0C000000L) in
  check_bool "miss" true (miss = None);
  check_int "miss probes every group" 5 accesses

let test_lpm_plan_matches_linear () =
  let eng = Nicsim.Engine.create (empty_lpm_table ()) in
  let lens = [ 6; 10; 14; 18; 22; 26 ] in
  List.iter
    (fun len ->
      for i = 0 to 15 do
        Nicsim.Engine.insert eng
          (lpm_entry ~len (Int64.shift_left (Int64.of_int (i * 3)) (32 - len)))
      done)
    lens;
  let agree probe =
    let pkt = pkt_dst probe in
    let plan_hit, plan_acc = Nicsim.Engine.lookup eng pkt in
    let lin_hit, lin_acc = Nicsim.Engine.lookup_linear eng pkt in
    check_bool
      (Printf.sprintf "same result at %Lx" probe)
      true
      ((match (plan_hit, lin_hit) with
        | None, None -> true
        | Some a, Some b -> a.P4ir.Table.patterns = b.P4ir.Table.patterns
        | _ -> false)
      && plan_acc = lin_acc)
  in
  for i = 0 to 2000 do
    agree (Int64.logand (Stdx.Prng.mix64 (Int64.of_int i)) 0xFFFFFFFFL)
  done;
  (* Mutation invalidates the compiled plan; agreement must survive it. *)
  Nicsim.Engine.insert eng (lpm_entry ~len:30 0xDEADBEECL);
  agree 0xDEADBEEFL;
  ignore (Nicsim.Engine.delete eng ~patterns:[ P4ir.Pattern.Lpm (0xDEADBEECL, 30) ]);
  agree 0xDEADBEEFL

(* --- rule-scale plan selection --- *)

(* [n] distinct prefixes spread over 8 lengths (17..24): enough groups
   for every LPM plan, sized to straddle the auto-selection threshold. *)
let big_lpm_table n =
  let per = n / 8 in
  P4ir.Table.make ~name:"big" ~keys:lpm_key
    ~actions:[ P4ir.Action.nop "hit"; P4ir.Action.nop "def" ]
    ~default_action:"def"
    ~entries:
      (List.concat
         (List.init 8 (fun l ->
              let len = 17 + l in
              List.init
                (per + if l = 0 then n mod 8 else 0)
                (fun i -> lpm_entry ~len (Int64.shift_left (Int64.of_int (i + 1)) (32 - len))))))
    ()

(* Masks share their top twelve bits, as structured ACL mask sets do —
   the auto selector's degeneracy guard would (correctly) refuse a tree
   over masks with no common bits; see [test_tree_degeneracy_guard]. *)
let big_ternary_table n =
  let masks = [| 0xFFFFFF00L; 0xFFFF00FFL; 0xFFF0FF0FL; 0xFFFFFFF0L |] in
  let per = n / 4 in
  P4ir.Table.make ~name:"bigt"
    ~keys:[ P4ir.Table.key P4ir.Field.Ipv4_dst P4ir.Match_kind.Ternary ]
    ~actions:[ P4ir.Action.nop "hit"; P4ir.Action.nop "def" ]
    ~default_action:"def"
    ~entries:
      (List.concat
         (List.init 4 (fun m ->
              List.init
                (per + if m = 0 then n mod 4 else 0)
                (fun i ->
                  P4ir.Table.entry ~priority:((m * per) + i)
                    [ P4ir.Pattern.Ternary
                        (Int64.logand (Int64.of_int ((i + 1) * 2654435761)) masks.(m), masks.(m))
                    ]
                    "hit"))))
    ()

let test_plan_selector_thresholds () =
  let eng = Nicsim.Engine.create (big_lpm_table Nicsim.Engine.learned_threshold) in
  check_string "lpm at threshold" "learned" (Nicsim.Engine.plan_kind eng);
  let eng = Nicsim.Engine.create (big_lpm_table (Nicsim.Engine.learned_threshold - 1)) in
  check_string "lpm below threshold" "waldvogel" (Nicsim.Engine.plan_kind eng);
  let eng = Nicsim.Engine.create (big_ternary_table Nicsim.Engine.tree_threshold) in
  check_string "ternary at threshold" "tree" (Nicsim.Engine.plan_kind eng);
  let eng = Nicsim.Engine.create (big_ternary_table (Nicsim.Engine.tree_threshold - 1)) in
  check_string "ternary below threshold" "ternary-skip" (Nicsim.Engine.plan_kind eng)

let plan_agrees_with_linear eng probe =
  let pkt = pkt_dst probe in
  let plan_hit, plan_acc = Nicsim.Engine.lookup eng pkt in
  let lin_hit, lin_acc = Nicsim.Engine.lookup_linear eng pkt in
  check_bool
    (Printf.sprintf "plan = linear at %Lx" probe)
    true
    ((match (plan_hit, lin_hit) with
      | None, None -> true
      | Some a, Some b -> a.P4ir.Table.patterns = b.P4ir.Table.patterns
      | _ -> false)
    && plan_acc = lin_acc)

let test_backend_hint_override () =
  let eng = Nicsim.Engine.create (big_lpm_table 256) in
  check_string "auto picks waldvogel" "waldvogel" (Nicsim.Engine.plan_kind eng);
  (* A forced hint beats the entry-count threshold... *)
  Nicsim.Engine.set_backend_hint eng Nicsim.Engine.Force_learned;
  check_bool "hint recorded" true
    (Nicsim.Engine.backend_hint eng = Nicsim.Engine.Force_learned);
  check_string "forced learned" "learned" (Nicsim.Engine.plan_kind eng);
  for i = 0 to 200 do
    plan_agrees_with_linear eng (Int64.logand (Stdx.Prng.mix64 (Int64.of_int i)) 0xFFFFFFFFL)
  done;
  Nicsim.Engine.set_backend_hint eng Nicsim.Engine.Force_linear;
  check_string "forced linear" "lpm-linear" (Nicsim.Engine.plan_kind eng);
  (* ...but a hint the table's shape cannot honour falls back to Auto. *)
  Nicsim.Engine.set_backend_hint eng Nicsim.Engine.Force_tree;
  check_string "inapplicable hint falls back" "waldvogel" (Nicsim.Engine.plan_kind eng);
  Nicsim.Engine.set_backend_hint eng Nicsim.Engine.Auto;
  check_string "back to auto" "waldvogel" (Nicsim.Engine.plan_kind eng);
  (* Hints are a shaped-backend concept; exact tables ignore them. *)
  let ex =
    Nicsim.Engine.create
      (P4ir.Table.make ~name:"e"
         ~keys:[ P4ir.Table.key P4ir.Field.Ipv4_dst P4ir.Match_kind.Exact ]
         ~actions:[ P4ir.Action.nop "hit"; P4ir.Action.nop "def" ]
         ~default_action:"def"
         ~entries:[ P4ir.Table.entry [ P4ir.Pattern.Exact 5L ] "hit" ]
         ())
  in
  Nicsim.Engine.set_backend_hint ex Nicsim.Engine.Force_tree;
  check_bool "exact stays Auto" true (Nicsim.Engine.backend_hint ex = Nicsim.Engine.Auto);
  check_string "exact kind unchanged" "exact-hash" (Nicsim.Engine.plan_kind ex)

let test_plan_staleness () =
  let eng = Nicsim.Engine.create (empty_lpm_table ()) in
  Nicsim.Engine.set_backend_hint eng Nicsim.Engine.Force_learned;
  Nicsim.Engine.insert eng (lpm_entry ~len:16 0x0A0B0000L);
  check_string "learned from the start" "learned" (Nicsim.Engine.plan_kind eng);
  check_bool "/16 hit" true (fst (Nicsim.Engine.lookup eng (pkt_dst 0x0A0B0C0DL)) <> None);
  (* Every control-plane mutation must invalidate the compiled plan. *)
  Nicsim.Engine.insert eng (lpm_entry ~len:24 0x0A0B0C00L);
  (match fst (Nicsim.Engine.lookup eng (pkt_dst 0x0A0B0C0DL)) with
   | Some e ->
     check_bool "rebuilt after insert" true
       (e.P4ir.Table.patterns = [ P4ir.Pattern.Lpm (0x0A0B0C00L, 24) ])
   | None -> Alcotest.fail "expected hit after insert");
  ignore (Nicsim.Engine.delete eng ~patterns:[ P4ir.Pattern.Lpm (0x0A0B0C00L, 24) ]);
  (match fst (Nicsim.Engine.lookup eng (pkt_dst 0x0A0B0C0DL)) with
   | Some e ->
     check_bool "rebuilt after delete" true
       (e.P4ir.Table.patterns = [ P4ir.Pattern.Lpm (0x0A0B0000L, 16) ])
   | None -> Alcotest.fail "expected /16 hit after delete");
  Nicsim.Engine.load_entries eng [ lpm_entry ~len:8 0x0B000000L ];
  check_int "reloaded entry count" 1 (Nicsim.Engine.num_entries eng);
  check_bool "rebuilt after load_entries" true
    (fst (Nicsim.Engine.lookup eng (pkt_dst 0x0B123456L)) <> None);
  check_bool "old entries gone" true
    (fst (Nicsim.Engine.lookup eng (pkt_dst 0x0A0B0C0DL)) = None);
  Nicsim.Engine.invalidate eng;
  check_int "invalidated" 0 (Nicsim.Engine.num_entries eng);
  check_bool "rebuilt after invalidate" true
    (fst (Nicsim.Engine.lookup eng (pkt_dst 0x0B123456L)) = None)

let test_learned_remainder_store () =
  (* A dense run of /32 hosts makes the piecewise-linear fit trivial;
     one far outlier then ends the key space with a sub-[learned_min_run]
     segment, which must be diverted to the sorted remainder store
     rather than earning (badly-fitting) coefficients. *)
  let eng = Nicsim.Engine.create (empty_lpm_table ()) in
  Nicsim.Engine.set_backend_hint eng Nicsim.Engine.Force_learned;
  for i = 0 to 159 do
    Nicsim.Engine.insert eng (lpm_entry ~len:32 (Int64.of_int (0x0A000000 + i)))
  done;
  Nicsim.Engine.insert eng (lpm_entry ~len:32 0x30000000L);
  check_string "still learned" "learned" (Nicsim.Engine.plan_kind eng);
  let stats = Nicsim.Engine.plan_stats eng in
  check_bool "remainder store populated" true (List.assoc "remainder" stats > 0);
  List.iter (plan_agrees_with_linear eng)
    [ 0L; 0x09FFFFFFL; 0x0A000000L; 0x0A00009FL; 0x0A0000A0L; 0x2FFFFFFFL; 0x30000000L;
      0x30000001L; 0xFFFFFFFFL ]

let test_tree_degeneracy_guard () =
  (* Complement-pair masks: every key bit is wildcarded by half the
     mask groups, so any split duplicates half the candidates — the
     duplication budget dies near the root and leaves stay huge. Auto
     must refuse that tree and keep the skip probe; a forced hint
     builds it anyway and must still agree with the reference probe. *)
  let masks =
    [| 0xFFFF0000L; 0x0000FFFFL; 0xFF00FF00L; 0x00FF00FFL;
       0xF0F0F0F0L; 0x0F0F0F0FL; 0xCCCCCCCCL; 0x33333333L |]
  in
  let n = 2 * Nicsim.Engine.tree_threshold in
  let per = n / 8 in
  (* Distinct patterns per mask: an odd-multiplier bijection of the
     index deposited into the mask's 16 set bit positions. *)
  let deposit mask x =
    let v = ref 0L and bit = ref 0 in
    for b = 0 to 31 do
      if Int64.equal (Int64.logand (Int64.shift_right_logical mask b) 1L) 1L then begin
        if (x lsr !bit) land 1 = 1 then v := Int64.logor !v (Int64.shift_left 1L b);
        incr bit
      end
    done;
    !v
  in
  let tab =
    P4ir.Table.make ~name:"degen"
      ~keys:[ P4ir.Table.key P4ir.Field.Ipv4_dst P4ir.Match_kind.Ternary ]
      ~actions:[ P4ir.Action.nop "hit"; P4ir.Action.nop "def" ]
      ~default_action:"def"
      ~entries:
        (List.concat
           (List.init 8 (fun m ->
                List.init per (fun i ->
                    P4ir.Table.entry ~priority:((m * per) + i)
                      [ P4ir.Pattern.Ternary
                          (deposit masks.(m) (i * 2654435761 land 0xFFFF), masks.(m))
                      ]
                      "hit"))))
      ()
  in
  let eng = Nicsim.Engine.create tab in
  check_string "auto refuses degenerate tree" "ternary-skip" (Nicsim.Engine.plan_kind eng);
  Nicsim.Engine.set_backend_hint eng Nicsim.Engine.Force_tree;
  check_string "forced tree bypasses the guard" "tree" (Nicsim.Engine.plan_kind eng);
  check_bool "leaves actually degenerate" true
    (List.assoc "tree_max_leaf" (Nicsim.Engine.plan_stats eng) > 4 * 8);
  for i = 0 to 100 do
    plan_agrees_with_linear eng (Int64.logand (Stdx.Prng.mix64 (Int64.of_int i)) 0xFFFFFFFFL)
  done

let test_engine_copy_independent () =
  let eng = Nicsim.Engine.create (empty_lpm_table ()) in
  Nicsim.Engine.insert eng (lpm_entry ~len:8 0x0A000000L);
  let snap = Nicsim.Engine.copy eng in
  Nicsim.Engine.insert eng (lpm_entry ~len:24 0x0A0B0C00L);
  check_int "copy unaffected by later insert" 1 (Nicsim.Engine.num_entries snap);
  check_int "original grew" 2 (Nicsim.Engine.num_entries eng);
  (match fst (Nicsim.Engine.lookup snap (pkt_dst 0x0A0B0C0DL)) with
   | Some e -> check_bool "copy still matches /8" true (e.P4ir.Table.patterns = [ P4ir.Pattern.Lpm (0x0A000000L, 8) ])
   | None -> Alcotest.fail "copy lost its entry");
  ignore (Nicsim.Engine.delete snap ~patterns:[ P4ir.Pattern.Lpm (0x0A000000L, 8) ]);
  check_int "original unaffected by copy delete" 2 (Nicsim.Engine.num_entries eng)

let test_prng_fork_deterministic () =
  let a = Stdx.Prng.create 42L in
  let b = Stdx.Prng.create 42L in
  let fa = Stdx.Prng.fork a 3 in
  let fb = Stdx.Prng.fork b 3 in
  for _ = 1 to 8 do
    check_bool "equal (state, index) give equal streams" true
      (Int64.equal (Stdx.Prng.next64 fa) (Stdx.Prng.next64 fb))
  done;
  (* Forking must not advance the parent. *)
  check_bool "parent undisturbed" true
    (Int64.equal (Stdx.Prng.next64 a) (Stdx.Prng.next64 b));
  let c = Stdx.Prng.create 42L in
  ignore (Stdx.Prng.next64 c);
  check_bool "distinct indices decorrelate" false
    (Int64.equal
       (Stdx.Prng.next64 (Stdx.Prng.fork c 0))
       (Stdx.Prng.next64 (Stdx.Prng.fork c 1)))

(* --- window drivers: batched and parallel bit-identity --- *)

let stats_bits_equal (a : Nicsim.Sim.window_stats) (b : Nicsim.Sim.window_stats) =
  let f x y = Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y) in
  f a.window_start b.window_start
  && f a.window_duration b.window_duration
  && a.sampled_packets = b.sampled_packets
  && a.sampled_drops = b.sampled_drops
  && f a.avg_latency b.avg_latency
  && f a.p99_latency b.p99_latency
  && f a.throughput_gbps b.throughput_gbps
  && f a.drop_fraction b.drop_fraction

(* Exact + LPM + ternary pipeline (no caches, so the parallel driver
   actually shards) with a drop entry some packets hit. *)
let driver_program () =
  let acl = acl_with_drop ~name:"acl" 9L in
  let lpm =
    P4ir.Table.make ~name:"route" ~keys:lpm_key
      ~actions:[ P4ir.Action.nop "hit"; P4ir.Action.nop "def" ]
      ~default_action:"def"
      ~entries:
        (List.concat_map
           (fun len ->
             List.init 8 (fun i ->
                 lpm_entry ~len (Int64.shift_left (Int64.of_int (i * 5)) (32 - len))))
           [ 8; 12; 16; 20; 24 ])
      ()
  in
  let tern =
    P4ir.Table.make ~name:"qos"
      ~keys:[ P4ir.Table.key P4ir.Field.Tcp_dport P4ir.Match_kind.Ternary ]
      ~actions:[ P4ir.Action.nop "mark"; P4ir.Action.nop "def" ]
      ~default_action:"def"
      ~entries:
        (List.mapi
           (fun i mask ->
             P4ir.Table.entry ~priority:i [ P4ir.Pattern.Ternary (0x10L, mask) ] "mark")
           [ 0xFFL; 0xF0FL; 0x3FFL; 0xFF0L ])
      ()
  in
  P4ir.Program.linear "drv" [ acl; lpm; tern ]

let driver_source seed =
  let rng = Stdx.Prng.create seed in
  let flows =
    Traffic.Workload.random_flows rng ~n:64
      ~fields:
        [ P4ir.Field.Ipv4_src; P4ir.Field.Ipv4_dst; P4ir.Field.Tcp_sport;
          P4ir.Field.Tcp_dport ]
  in
  let base = Traffic.Workload.of_flows rng flows in
  Traffic.Workload.mark_fraction rng ~rate:0.2 ~field:P4ir.Field.Ipv4_dst ~value:9L base

let driver_sim () =
  let target = Costmodel.Target.bluefield2 in
  (* A non-trivial sample rate makes the global-sequence sampling pinning
     observable: get it wrong and counters AND latencies diverge. *)
  let cfg = { (Nicsim.Exec.default_config target) with Nicsim.Exec.sample_rate = 3 } in
  Nicsim.Sim.create ~config:cfg target (driver_program ())

let check_driver_identical name run_alt =
  let sim_a = driver_sim () in
  let stats_a =
    Nicsim.Sim.run_window sim_a ~duration:1.0 ~packets:1000 ~source:(driver_source 5L)
  in
  let sim_b = driver_sim () in
  let stats_b = run_alt sim_b (driver_source 5L) in
  check_bool (name ^ ": stats bit-identical") true (stats_bits_equal stats_a stats_b);
  check_bool (name ^ ": counters identical") true
    (Profile.Counter.dump (Nicsim.Exec.counters (Nicsim.Sim.exec sim_a))
    = Profile.Counter.dump (Nicsim.Exec.counters (Nicsim.Sim.exec sim_b)));
  check_int (name ^ ": packets seen") (Nicsim.Exec.packets_seen (Nicsim.Sim.exec sim_a))
    (Nicsim.Exec.packets_seen (Nicsim.Sim.exec sim_b));
  check_int (name ^ ": drops seen") (Nicsim.Exec.drops_seen (Nicsim.Sim.exec sim_a))
    (Nicsim.Exec.drops_seen (Nicsim.Sim.exec sim_b))

let test_window_batched_identical () =
  (* batch 7 exercises a ragged final burst. *)
  check_driver_identical "batched" (fun sim source ->
      Nicsim.Sim.run_window_batched ~batch:7 sim ~duration:1.0 ~packets:1000 ~source)

let test_window_parallel_identical () =
  check_driver_identical "parallel-3" (fun sim source ->
      Nicsim.Sim.run_window_parallel ~domains:3 sim ~duration:1.0 ~packets:1000 ~source);
  check_driver_identical "parallel-default" (fun sim source ->
      Nicsim.Sim.run_window_parallel sim ~duration:1.0 ~packets:1000 ~source)

let test_window_parallel_cache_fallback () =
  (* Programs with cache tables take the sequential fallback — and still
     match run_window exactly, LRU state included. *)
  let prog = P4ir.Program.linear "cp" [ cache_table ~capacity:16 () ] in
  let target = Costmodel.Target.bluefield2 in
  let mk () = Nicsim.Sim.create target prog in
  let src seed =
    let rng = Stdx.Prng.create seed in
    fun () ->
      Nicsim.Packet.of_fields [ (P4ir.Field.Ipv4_dst, Int64.of_int (Stdx.Prng.int rng 64)) ]
  in
  let sim_a = mk () in
  let stats_a = Nicsim.Sim.run_window sim_a ~duration:1.0 ~packets:400 ~source:(src 3L) in
  let sim_b = mk () in
  let stats_b =
    Nicsim.Sim.run_window_parallel ~domains:4 sim_b ~duration:1.0 ~packets:400 ~source:(src 3L)
  in
  check_bool "fallback stats identical" true (stats_bits_equal stats_a stats_b);
  check_int "fallback cache contents identical"
    (Nicsim.Engine.num_entries (Nicsim.Exec.engine_exn (Nicsim.Sim.exec sim_a) "cache"))
    (Nicsim.Engine.num_entries (Nicsim.Exec.engine_exn (Nicsim.Sim.exec sim_b) "cache"))

let () =
  Alcotest.run "nicsim"
    [ ( "packet",
        [ Alcotest.test_case "fields" `Quick test_packet_fields;
          Alcotest.test_case "copy" `Quick test_packet_copy_independent ] );
      ( "lru",
        [ Alcotest.test_case "eviction order" `Quick test_lru_eviction_order;
          Alcotest.test_case "overwrite" `Quick test_lru_overwrite_no_evict;
          Alcotest.test_case "remove/clear" `Quick test_lru_remove_clear ] );
      ( "engine",
        [ Alcotest.test_case "exact" `Quick test_engine_exact;
          Alcotest.test_case "lpm longest first" `Quick test_engine_lpm_longest_first;
          Alcotest.test_case "ternary priority" `Quick test_engine_ternary_priority;
          Alcotest.test_case "range linear" `Quick test_engine_range_linear;
          Alcotest.test_case "insert/delete" `Quick test_engine_insert_delete;
          Alcotest.test_case "cache fill + lru" `Quick test_cache_fill_lru;
          Alcotest.test_case "cache rate limit" `Quick test_cache_fill_rate_limit ] );
      ( "exec",
        [ Alcotest.test_case "drop halts" `Quick test_exec_drop_halts;
          Alcotest.test_case "actions apply" `Quick test_exec_actions_apply;
          Alcotest.test_case "counters" `Quick test_exec_counters;
          Alcotest.test_case "sampling" `Quick test_exec_sampling;
          Alcotest.test_case "migration cost" `Quick test_exec_migration_cost;
          Alcotest.test_case "switch-case routing" `Quick test_exec_switch_case_routing ] );
      ( "sim",
        [ Alcotest.test_case "window throughput" `Quick test_sim_window_throughput;
          Alcotest.test_case "reconfigure" `Quick test_sim_reconfigure_preserves_entries;
          Alcotest.test_case "profile extraction" `Quick test_sim_profile_extraction;
          Alcotest.test_case "p99 + drop fraction" `Quick test_sim_p99_and_drop_fraction;
          Alcotest.test_case "instrumentation overhead" `Quick test_sim_instrumentation_overhead;
          Alcotest.test_case "cache capacity in program" `Quick
            test_cache_capacity_respected_in_program;
          Alcotest.test_case "nav/migration execution" `Quick
            test_navigation_migration_execution ] );
      ( "fast-path",
        [ Alcotest.test_case "shaped insert ordering" `Quick test_shaped_insert_ordering;
          Alcotest.test_case "lpm plan = linear probe" `Quick test_lpm_plan_matches_linear;
          Alcotest.test_case "plan selector thresholds" `Quick test_plan_selector_thresholds;
          Alcotest.test_case "backend hint override" `Quick test_backend_hint_override;
          Alcotest.test_case "plan staleness on mutation" `Quick test_plan_staleness;
          Alcotest.test_case "learned remainder store" `Quick test_learned_remainder_store;
          Alcotest.test_case "tree degeneracy guard" `Quick test_tree_degeneracy_guard;
          Alcotest.test_case "engine copy independent" `Quick test_engine_copy_independent;
          Alcotest.test_case "prng fork deterministic" `Quick test_prng_fork_deterministic;
          Alcotest.test_case "batched window bit-identical" `Quick
            test_window_batched_identical;
          Alcotest.test_case "parallel window bit-identical" `Quick
            test_window_parallel_identical;
          Alcotest.test_case "parallel cache fallback" `Quick
            test_window_parallel_cache_fallback ] ) ]
