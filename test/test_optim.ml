(* Tests for the Pipeleon optimizations: reorder, cache, merge, group
   caching, the knapsack search, and — most importantly — semantic
   equivalence between original and optimized programs under real
   execution. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let target = Costmodel.Target.bluefield2

(* A pipeline of independent exact tables keyed on distinct fields, with
   realistic entries, suitable for all three optimizations. *)
let fields = [| P4ir.Field.Ipv4_src; P4ir.Field.Ipv4_dst; P4ir.Field.Tcp_sport; P4ir.Field.Tcp_dport |]

let mk_table i ~entries =
  let field = fields.(i mod Array.length fields) in
  let actions =
    [ P4ir.Action.make "seta" [ P4ir.Action.Set_field (P4ir.Field.Meta (i + 1), 1L) ];
      P4ir.Action.make "setb" [ P4ir.Action.Set_field (P4ir.Field.Meta (i + 1), 2L) ] ]
  in
  let tab =
    P4ir.Table.make ~name:(Printf.sprintf "t%d" i)
      ~keys:[ P4ir.Table.key field P4ir.Match_kind.Exact ]
      ~actions ~default_action:"setb" ()
  in
  List.fold_left
    (fun tab v -> P4ir.Table.add_entry tab (P4ir.Table.entry [ P4ir.Pattern.Exact v ] "seta"))
    tab entries

let chain n = List.init n (fun i -> mk_table i ~entries:[ 1L; 2L; 3L ])

(* Run the same random packets through two programs; outcomes must agree. *)
let equivalent ?(packets = 2000) ?(flows = 64) prog_a prog_b =
  let rng = Stdx.Prng.create 7L in
  let flow_fields = Array.to_list fields in
  let pop = Traffic.Workload.random_flows rng ~n:(flows - 8) ~fields:flow_fields in
  (* Mix in flows that actually hit entries (values 1-3). *)
  let hitting =
    Array.init 8 (fun i ->
        List.map (fun f -> (f, Int64.of_int ((i mod 3) + 1))) flow_fields)
  in
  let all_flows = Array.append pop hitting in
  let src_rng = Stdx.Prng.create 99L in
  let source = Traffic.Workload.of_flows ~zipf_s:1.1 src_rng all_flows in
  let ex_a = Nicsim.Exec.create (Nicsim.Exec.default_config target) prog_a in
  let ex_b = Nicsim.Exec.create (Nicsim.Exec.default_config target) prog_b in
  let meta_fields = List.init 8 (fun i -> P4ir.Field.Meta i) in
  let ok = ref true in
  for _ = 1 to packets do
    let p = source () in
    let q = Nicsim.Packet.copy p in
    ignore (Nicsim.Exec.run_packet ex_a ~now:0. p);
    ignore (Nicsim.Exec.run_packet ex_b ~now:0. q);
    if Nicsim.Packet.is_dropped p <> Nicsim.Packet.is_dropped q then ok := false;
    if Nicsim.Packet.egress_port p <> Nicsim.Packet.egress_port q then ok := false;
    List.iter
      (fun f ->
        if not (Int64.equal (Nicsim.Packet.get p f) (Nicsim.Packet.get q f)) then ok := false)
      (meta_fields @ Array.to_list fields)
  done;
  !ok

(* --- Pipelet-level transforms --- *)

let the_pipelet prog =
  match Pipeleon.Pipelet.form prog with
  | [ p ] -> p
  | ps -> Alcotest.failf "expected one pipelet, got %d" (List.length ps)

let test_reorder_apply_equivalence () =
  let tabs = chain 3 in
  let prog = P4ir.Program.linear "orig" tabs in
  let p = the_pipelet prog in
  let reordered =
    List.map (fun t -> Pipeleon.Transform.Plain t) (Pipeleon.Reorder.apply_order tabs [ 2; 0; 1 ])
  in
  let prog' = Pipeleon.Transform.apply prog p reordered in
  P4ir.Program.validate_exn prog';
  check_bool "reordered program equivalent" true (equivalent prog prog')

let test_cache_apply_equivalence () =
  let tabs = chain 3 in
  let prog = P4ir.Program.linear "orig" tabs in
  let p = the_pipelet prog in
  let cache = Pipeleon.Cache.build ~name:"c0" ~capacity:64 ~insert_limit:1e9 tabs in
  let prog' =
    Pipeleon.Transform.apply prog p [ Pipeleon.Transform.Cached { cache; originals = tabs } ]
  in
  P4ir.Program.validate_exn prog';
  check_bool "cached program equivalent" true (equivalent prog prog')

let test_cache_with_drops_equivalence () =
  let acl =
    P4ir.Table.add_entry
      (P4ir.Builder.acl_table ~name:"acl"
         ~keys:[ P4ir.Builder.exact_key P4ir.Field.Ipv4_src ]
         ())
      (P4ir.Table.entry [ P4ir.Pattern.Exact 2L ] "deny")
  in
  let tabs = [ acl; mk_table 1 ~entries:[ 1L; 2L ] ] in
  let prog = P4ir.Program.linear "orig" tabs in
  let p = the_pipelet prog in
  let cache = Pipeleon.Cache.build ~name:"c0" ~capacity:64 ~insert_limit:1e9 tabs in
  let prog' =
    Pipeleon.Transform.apply prog p [ Pipeleon.Transform.Cached { cache; originals = tabs } ]
  in
  check_bool "drop-through cache equivalent" true (equivalent prog prog')

let test_cache_switch_case_keeps_branches () =
  (* Caching a singleton Per_action pipelet must preserve the per-action
     branching: a hit jumps where the fired action would have gone, a
     miss falls to the original table with its branches intact. A past
     bug wired both to the pipelet's (unrepresentable) exit, severing
     the path to the join table — found by the chaos fuzzer. *)
  let sw =
    let tab =
      P4ir.Table.make ~name:"sw"
        ~keys:[ P4ir.Table.key P4ir.Field.Ipv4_src P4ir.Match_kind.Exact ]
        ~actions:
          [ P4ir.Action.make "goa" [ P4ir.Action.Set_field (P4ir.Field.Meta 1, 1L) ];
            P4ir.Action.make "gob" [ P4ir.Action.Set_field (P4ir.Field.Meta 1, 2L) ] ]
        ~default_action:"gob" ()
    in
    List.fold_left
      (fun tab v -> P4ir.Table.add_entry tab (P4ir.Table.entry [ P4ir.Pattern.Exact v ] "goa"))
      tab [ 1L; 2L ]
  in
  let join = mk_table 1 ~entries:[ 1L; 2L; 3L ] in
  let prog = P4ir.Program.empty "p" in
  let prog, join_id = P4ir.Program.add_node prog (P4ir.Program.Table (join, P4ir.Program.Uniform None)) in
  let prog, sw_id =
    P4ir.Program.add_node prog
      (P4ir.Program.Table
         (sw, P4ir.Program.Per_action [ ("goa", Some join_id); ("gob", None) ]))
  in
  let prog = P4ir.Program.with_root prog (Some sw_id) in
  P4ir.Program.validate_exn prog;
  let p =
    List.find
      (fun (p : Pipeleon.Pipelet.t) -> p.Pipeleon.Pipelet.entry = sw_id)
      (Pipeleon.Pipelet.form prog)
  in
  check_bool "pipelet is switch-case" true p.Pipeleon.Pipelet.is_switch_case;
  let cache = Pipeleon.Cache.build ~name:"c0" ~capacity:64 ~insert_limit:1e9 [ sw ] in
  let prog' =
    Pipeleon.Transform.apply prog p
      [ Pipeleon.Transform.Cached { cache; originals = [ sw ] } ]
  in
  P4ir.Program.validate_exn prog';
  (* The hit edge for the fused "goa" action must still reach the join. *)
  let cache_id, _ =
    List.find (fun (_, (t : P4ir.Table.t)) -> t.name = "c0") (P4ir.Program.tables prog')
  in
  (match P4ir.Program.find_exn prog' cache_id with
   | P4ir.Program.Table (_, P4ir.Program.Per_action branches) ->
     check_bool "hit branch reaches join" true
       (List.exists (fun (_, next) -> next = Some join_id) branches)
   | _ -> Alcotest.fail "cache is not Per_action");
  check_bool "switch-case cache equivalent" true (equivalent prog prog')

let test_merge_ternary_equivalence () =
  let tabs = chain 2 in
  let prog = P4ir.Program.linear "orig" tabs in
  let p = the_pipelet prog in
  let merged = Pipeleon.Merge.build_ternary ~name:"m01" tabs in
  let prog' =
    Pipeleon.Transform.apply prog p
      [ Pipeleon.Transform.Merged_plain { merged; originals = tabs } ]
  in
  check_bool "ternary merge equivalent" true (equivalent prog prog')

let test_merge_fallback_equivalence () =
  let tabs = chain 2 in
  let prog = P4ir.Program.linear "orig" tabs in
  let p = the_pipelet prog in
  let merged = Pipeleon.Merge.build_fallback ~name:"mx01" tabs in
  let prog' =
    Pipeleon.Transform.apply prog p
      [ Pipeleon.Transform.Merged_fallback { merged; originals = tabs } ]
  in
  check_bool "fallback merge equivalent" true (equivalent prog prog')

let test_merge_entry_counts () =
  let tabs = chain 2 in
  let merged = Pipeleon.Merge.build_ternary ~name:"m" tabs in
  (* (3 hits + miss) x (3 hits + miss) - all-miss = 15 entries. *)
  check_int "cross product with wildcards" 15 (P4ir.Table.num_entries merged);
  let fb = Pipeleon.Merge.build_fallback ~name:"f" tabs in
  check_int "hit-hit cross product" 9 (P4ir.Table.num_entries fb);
  check_int "estimate" 9 (Pipeleon.Merge.entry_estimate tabs)

let test_merge_rejects_dependency () =
  let writer =
    P4ir.Table.make ~name:"w"
      ~keys:[ P4ir.Table.key P4ir.Field.Ipv4_src P4ir.Match_kind.Exact ]
      ~actions:[ P4ir.Action.make "set" [ P4ir.Action.Set_field (P4ir.Field.Ipv4_dst, 1L) ] ]
      ~default_action:"set" ()
  in
  let reader = mk_table 1 ~entries:[ 1L ] in
  (* reader keys on Ipv4_dst which writer writes. *)
  check_bool "match-dep not mergeable" false (Pipeleon.Merge.mergeable [ writer; reader ]);
  check_bool "independent mergeable" true (Pipeleon.Merge.mergeable (chain 2))

let test_reorder_dependencies_respected () =
  let tabs = chain 3 in
  let orders = Pipeleon.Reorder.candidate_orders tabs in
  check_int "independent: all 6 orders" 6 (List.length orders);
  let writer =
    P4ir.Table.make ~name:"w"
      ~keys:[ P4ir.Table.key P4ir.Field.Ipv4_src P4ir.Match_kind.Exact ]
      ~actions:[ P4ir.Action.make "set" [ P4ir.Action.Set_field (P4ir.Field.Ipv4_dst, 1L) ] ]
      ~default_action:"set" ()
  in
  let reader = mk_table 1 ~entries:[ 1L ] in
  let dep_orders = Pipeleon.Reorder.candidate_orders [ writer; reader ] in
  check_bool "dependent pair cannot swap" true (dep_orders = [ [ 0; 1 ] ])

(* --- Cost-model-guided candidate evaluation --- *)

let profile_with_drops prog ~drop_rates =
  List.fold_left
    (fun prof (tname, rate) ->
      Profile.set_table tname
        { Profile.action_probs = [ ("allow", 1. -. rate); ("deny", rate) ];
          update_rate = 0.;
          locality = -1. }
        prof)
    (Profile.uniform prog) drop_rates

let acl_chain n =
  List.init n (fun i ->
      P4ir.Table.add_entry
        (P4ir.Builder.acl_table ~name:(Printf.sprintf "acl%d" i)
           ~keys:[ P4ir.Builder.exact_key fields.(i mod Array.length fields) ]
           ())
        (P4ir.Table.entry [ P4ir.Pattern.Exact 2L ] "deny"))

let test_reorder_gain_matches_drop_rates () =
  let tabs = acl_chain 3 in
  let prog = P4ir.Program.linear "acls" tabs in
  let prof =
    profile_with_drops prog ~drop_rates:[ ("acl0", 0.0); ("acl1", 0.0); ("acl2", 0.9) ]
  in
  let greedy = Pipeleon.Reorder.greedy_drop_order prof tabs in
  check_bool "high-drop table promoted first" true (List.hd greedy = 2);
  (* Expected latency must improve when the dropper goes first. *)
  let l_orig =
    Costmodel.Cost.expected_latency target prof prog
  in
  let reordered = P4ir.Program.linear "re" (Pipeleon.Reorder.apply_order tabs greedy) in
  let prof' =
    profile_with_drops reordered ~drop_rates:[ ("acl0", 0.0); ("acl1", 0.0); ("acl2", 0.9) ]
  in
  let l_new = Costmodel.Cost.expected_latency target prof' reordered in
  check_bool "reorder lowers expected latency" true (l_new < l_orig)

let test_candidate_enumeration_two_tables () =
  let tabs = chain 2 in
  let prof = Profile.uniform (P4ir.Program.linear "x" tabs) in
  let combos = Pipeleon.Candidate.enumerate prof tabs in
  (* Paper: caches [A],[B],[A][B],[A,B]; merge [A,B] (2 variants here);
     2 orders; minus the identity no-op. *)
  check_bool "enough candidates" true (List.length combos >= 10);
  let has_full_cache =
    List.exists
      (fun (c : Pipeleon.Candidate.combo) ->
        c.order = [ 0; 1 ]
        && c.segs = [ { Pipeleon.Candidate.pos = 0; len = 2; kind = Pipeleon.Candidate.Cache_seg } ])
      combos
  in
  check_bool "[A,B] cache candidate present" true has_full_cache

let test_enumerate_budget_and_reorder_combos () =
  let tabs = chain 6 in
  let prof = Profile.uniform (P4ir.Program.linear "eb" tabs) in
  let opts = { Pipeleon.Candidate.default_options with max_combos = 40 } in
  let combos = Pipeleon.Candidate.enumerate ~opts prof tabs in
  check_bool "within budget" true (List.length combos <= opts.max_combos);
  check_bool "non-empty" true (combos <> []);
  (* Per-order budgeting keeps each surviving order's reorder-only combo
     (the identity order's one is the excluded no-op identity combo). *)
  let orders =
    List.sort_uniq compare (List.map (fun (c : Pipeleon.Candidate.combo) -> c.order) combos)
  in
  let identity = List.init 6 Fun.id in
  List.iter
    (fun order ->
      let has_plain =
        List.exists
          (fun (c : Pipeleon.Candidate.combo) -> c.order = order && c.segs = [])
          combos
      in
      check_bool "reorder-only combo retained" true (has_plain || order = identity))
    orders;
  (* And the default budget never overflows either. *)
  let full = Pipeleon.Candidate.enumerate prof tabs in
  check_bool "default budget respected" true
    (List.length full <= Pipeleon.Candidate.default_options.max_combos)

let test_listx_take () =
  check_bool "prefix" true (Stdx.Listx.take 3 [ 1; 2; 3; 4; 5 ] = [ 1; 2; 3 ]);
  check_bool "short list" true (Stdx.Listx.take 9 [ 1; 2 ] = [ 1; 2 ]);
  check_bool "zero" true (Stdx.Listx.take 0 [ 1; 2 ] = []);
  check_bool "negative" true (Stdx.Listx.take (-3) [ 1; 2 ] = []);
  (* Tail recursion: must survive a list far beyond the stack. *)
  let big = List.init 1_000_000 Fun.id in
  check_int "big prefix" 999_999 (List.length (Stdx.Listx.take 999_999 big))

let test_cache_gain_depends_on_hit_rate () =
  let tabs = chain 4 in
  let prog = P4ir.Program.linear "x" tabs in
  let prof_hi = Profile.with_default_cache_hit 0.95 (Profile.uniform prog) in
  let prof_lo = Profile.with_default_cache_hit 0.05 (Profile.uniform prog) in
  let combo =
    { Pipeleon.Candidate.order = [ 0; 1; 2; 3 ];
      segs = [ { Pipeleon.Candidate.pos = 0; len = 4; kind = Pipeleon.Candidate.Cache_seg } ] }
  in
  let elements =
    Option.get (Pipeleon.Candidate.realize ~name_prefix:"t" tabs combo)
  in
  let eval prof =
    (Pipeleon.Candidate.evaluate target prof ~reach_prob:1.0 ~originals:tabs combo elements)
      .Pipeleon.Candidate.gain
  in
  check_bool "high hit rate gains" true (eval prof_hi > 0.);
  check_bool "hit rate monotone" true (eval prof_hi > eval prof_lo)

let test_multi_key_cache_and_merge () =
  (* Tables with compound keys: the cache key is the live-in union and
     merges combine per-field constraints. *)
  let mk name f1 f2 tag =
    P4ir.Table.make ~name
      ~keys:[ P4ir.Table.key f1 P4ir.Match_kind.Exact; P4ir.Table.key f2 P4ir.Match_kind.Exact ]
      ~actions:
        [ P4ir.Action.make "hit" [ P4ir.Action.Set_field (P4ir.Field.Meta tag, 1L) ];
          P4ir.Action.nop "def" ]
      ~default_action:"def"
      ~entries:
        (List.init 3 (fun v ->
             P4ir.Table.entry
               [ P4ir.Pattern.Exact (Int64.of_int v); P4ir.Pattern.Exact (Int64.of_int v) ]
               "hit"))
      ()
  in
  (* Overlapping fields across tables: live-in = 3 fields, not 4. *)
  let t1 = mk "mk1" P4ir.Field.Ipv4_src P4ir.Field.Ipv4_dst 1 in
  let t2 = mk "mk2" P4ir.Field.Ipv4_dst P4ir.Field.Tcp_sport 2 in
  let tabs = [ t1; t2 ] in
  check_int "live-in union" 3 (List.length (Pipeleon.Cache.live_in_fields tabs));
  let prog = P4ir.Program.linear "orig" tabs in
  let p = the_pipelet prog in
  let cache = Pipeleon.Cache.build ~name:"mc" ~insert_limit:1e9 tabs in
  let cached =
    Pipeleon.Transform.apply prog p [ Pipeleon.Transform.Cached { cache; originals = tabs } ]
  in
  check_bool "multi-key cache equivalent" true (equivalent prog cached);
  let merged = Pipeleon.Merge.build_ternary ~name:"mm" tabs in
  check_int "merged key is the field union" 3 (List.length merged.P4ir.Table.keys);
  let prog2 = P4ir.Program.linear "orig" tabs in
  let p2 = the_pipelet prog2 in
  let merged_prog =
    Pipeleon.Transform.apply prog2 p2
      [ Pipeleon.Transform.Merged_plain { merged; originals = tabs } ]
  in
  check_bool "multi-key merge equivalent" true (equivalent prog merged_prog)

let test_analytic_matches_realized () =
  (* The fast analytic evaluation must track the reference mini-program
     evaluation: same sign, gains within a coarse band. *)
  let rng = Stdx.Prng.create 3131L in
  let checked = ref 0 in
  for n = 2 to 4 do
    let tabs = chain n in
    let prog = P4ir.Program.linear "x" tabs in
    (* A profile with some drops and localities. *)
    let prof =
      List.fold_left
        (fun prof (t : P4ir.Table.t) ->
          let p = Stdx.Prng.uniform rng 0.2 0.8 in
          Profile.set_table t.name
            { Profile.action_probs = [ ("seta", p); ("setb", 1. -. p) ];
              update_rate = 0.;
              locality = Stdx.Prng.uniform rng 0.5 0.95 }
            prof)
        (Profile.uniform prog) tabs
    in
    let ctx = Pipeleon.Candidate.context target prof ~reach_prob:1.0 tabs in
    List.iter
      (fun combo ->
        match Pipeleon.Candidate.realize ~name_prefix:"cmp" tabs combo with
        | None -> ()
        | Some elements -> (
          match Pipeleon.Candidate.evaluate_analytic ctx combo with
          | None -> ()
          | Some a ->
            incr checked;
            let r =
              Pipeleon.Candidate.evaluate target prof ~reach_prob:1.0 ~originals:tabs
                combo elements
            in
            let scale = Float.max 1.0 (Float.abs r.Pipeleon.Candidate.gain) in
            if Float.abs (a.Pipeleon.Candidate.gain -. r.Pipeleon.Candidate.gain)
               > (0.3 *. scale) +. 0.3
            then
              Alcotest.failf "gain mismatch (n=%d): analytic %.3f vs realized %.3f" n
                a.Pipeleon.Candidate.gain r.Pipeleon.Candidate.gain))
      (Pipeleon.Candidate.enumerate prof tabs)
  done;
  check_bool "compared a meaningful sample" true (!checked > 50)

(* --- Knapsack --- *)

let test_knapsack_budget_respected () =
  let open Pipeleon in
  let groups =
    [ [ { Knapsack.gain = 10.; mem = 100; upd = 0.; tag = 0 };
        { Knapsack.gain = 3.; mem = 10; upd = 0.; tag = 1 } ];
      [ { Knapsack.gain = 8.; mem = 100; upd = 0.; tag = 0 } ] ]
  in
  let sol = Knapsack.solve ~groups ~mem_budget:120 ~upd_budget:10. () in
  (* Cannot afford both 100-mem options; best is 10 + 3? No: 10 (g0 tag0)
     + nothing from g1 beats 3 + 8 = 11. So optimum is 3 + 8 = 11. *)
  check_bool "optimal pick" true (Float.abs (sol.Knapsack.total_gain -. 11.) < 1e-9);
  check_int "two picks" 2 (List.length sol.Knapsack.picks)

let test_knapsack_zero_cost_exclusive () =
  let open Pipeleon in
  let groups =
    [ [ { Knapsack.gain = 5.; mem = 0; upd = 0.; tag = 0 };
        { Knapsack.gain = 4.; mem = 0; upd = 0.; tag = 1 } ] ]
  in
  let sol = Knapsack.solve ~groups ~mem_budget:100 ~upd_budget:10. () in
  check_int "one option per group" 1 (List.length sol.Knapsack.picks);
  check_bool "best zero-cost option" true (Float.abs (sol.Knapsack.total_gain -. 5.) < 1e-9)

let test_knapsack_prune_stats () =
  let open Pipeleon in
  let groups =
    [ [ { Knapsack.gain = 5.; mem = 100; upd = 1.; tag = 0 };
        (* dominated: less gain, more of both costs *)
        { Knapsack.gain = 4.; mem = 200; upd = 2.; tag = 1 };
        (* dropped regardless of pruning: non-positive gain *)
        { Knapsack.gain = 0.; mem = 0; upd = 0.; tag = 2 } ];
      [ { Knapsack.gain = 7.; mem = 50; upd = 0.; tag = 0 } ];
      [] ]
  in
  let solve ~prune =
    Knapsack.solve_stats ~prune ~groups ~mem_budget:500 ~upd_budget:15. ()
  in
  let sol_p, stats_p = solve ~prune:true in
  let sol_u, stats_u = solve ~prune:false in
  check_int "options before" 4 stats_p.Knapsack.options_before;
  check_int "options after pruning" 2 stats_p.Knapsack.options_after;
  check_int "options after (no pruning)" 3 stats_u.Knapsack.options_after;
  check_bool "gain identical" true
    (sol_p.Knapsack.total_gain = sol_u.Knapsack.total_gain);
  check_bool "optimal" true (Float.abs (sol_p.Knapsack.total_gain -. 12.) < 1e-9);
  check_bool "pruned DP touches fewer cells" true
    (stats_p.Knapsack.dp_cells < stats_u.Knapsack.dp_cells)

let test_knapsack_greedy_vs_dp () =
  let open Pipeleon in
  (* Classic greedy trap: density-best option blocks the true optimum. *)
  let groups =
    [ [ { Knapsack.gain = 6.; mem = 60; upd = 0.; tag = 0 } ];
      [ { Knapsack.gain = 5.; mem = 50; upd = 0.; tag = 0 } ];
      [ { Knapsack.gain = 5.5; mem = 50; upd = 0.; tag = 0 } ] ]
  in
  let dp = Knapsack.solve ~groups ~mem_budget:100 ~upd_budget:10. () in
  let gr = Knapsack.greedy ~groups ~mem_budget:100 ~upd_budget:10. in
  check_bool "dp at least as good" true (dp.Knapsack.total_gain >= gr.Knapsack.total_gain -. 1e-9)

(* --- Optimizer end-to-end --- *)

let test_optimizer_end_to_end_equivalence () =
  let tabs = acl_chain 2 @ chain 4 in
  let prog = P4ir.Program.linear "prog" tabs in
  let prof =
    profile_with_drops prog ~drop_rates:[ ("acl0", 0.1); ("acl1", 0.6) ]
  in
  let result = Pipeleon.Optimizer.optimize ~config:{ Pipeleon.Optimizer.default_config with top_k = 1.0 } target prof prog in
  P4ir.Program.validate_exn result.Pipeleon.Optimizer.program;
  check_bool "some optimization chosen" true
    (result.Pipeleon.Optimizer.plan.Pipeleon.Search.choices <> []
     || result.Pipeleon.Optimizer.plan.Pipeleon.Search.group_choices <> []);
  check_bool "optimized equivalent to original" true
    (equivalent prog result.Pipeleon.Optimizer.program)

let test_optimizer_topk_reduces_work () =
  (* A program with branches -> several pipelets. *)
  let mk i = mk_table i ~entries:[ 1L; 2L ] in
  let prog = P4ir.Program.empty "multi" in
  let prog, exit_id =
    P4ir.Program.add_node prog (P4ir.Program.Table (mk 11, P4ir.Program.Uniform None))
  in
  let prog, arm1 =
    P4ir.Builder.chain_into prog [ mk 0; mk 1 ] ~exit:(Some exit_id)
  in
  let prog, arm2 =
    P4ir.Builder.chain_into prog [ mk 2; mk 3 ] ~exit:(Some exit_id)
  in
  let prog, c =
    P4ir.Program.add_node prog
      (P4ir.Builder.cond ~name:"c0" ~field:P4ir.Field.Ipv4_proto ~op:P4ir.Program.Eq ~arg:6L
         ~on_true:(Some arm1) ~on_false:(Some arm2))
  in
  let prog = P4ir.Program.with_root prog (Some c) in
  P4ir.Program.validate_exn prog;
  let prof = Profile.uniform prog in
  let cfg_full = { Pipeleon.Optimizer.default_config with top_k = 1.0; enable_groups = false } in
  let cfg_topk = { cfg_full with top_k = 0.34 } in
  let full = Pipeleon.Optimizer.optimize ~config:cfg_full target prof prog in
  let topk = Pipeleon.Optimizer.optimize ~config:cfg_topk target prof prog in
  check_bool "topk considers fewer pipelets" true
    (topk.Pipeleon.Optimizer.pipelets_considered < full.Pipeleon.Optimizer.pipelets_considered);
  check_bool "topk examines fewer candidates" true
    (topk.Pipeleon.Optimizer.plan.Pipeleon.Search.candidates_examined
     <= full.Pipeleon.Optimizer.plan.Pipeleon.Search.candidates_examined)

let test_group_detection_and_equivalence () =
  let mk i = mk_table i ~entries:[ 1L; 2L ] in
  let prog = P4ir.Program.empty "grp" in
  let prog, exit_id =
    P4ir.Program.add_node prog (P4ir.Program.Table (mk 9, P4ir.Program.Uniform None))
  in
  let prog, arm1 = P4ir.Builder.chain_into prog [ mk 0; mk 1 ] ~exit:(Some exit_id) in
  let prog, arm2 = P4ir.Builder.chain_into prog [ mk 2; mk 3 ] ~exit:(Some exit_id) in
  let prog, c =
    P4ir.Program.add_node prog
      (P4ir.Builder.cond ~name:"c0" ~field:P4ir.Field.Ipv4_proto ~op:P4ir.Program.Eq ~arg:6L
         ~on_true:(Some arm1) ~on_false:(Some arm2))
  in
  let prog = P4ir.Program.with_root prog (Some c) in
  P4ir.Program.validate_exn prog;
  let pipelets = Pipeleon.Pipelet.form prog in
  let groups = Pipeleon.Group.detect prog ~candidates:pipelets in
  check_int "one group detected" 1 (List.length groups);
  let g = List.hd groups in
  match Pipeleon.Group.build_cache ~name:"gc" ~insert_limit:1e9 prog g with
  | None -> Alcotest.fail "group cache should build"
  | Some cache ->
    let prog' = Pipeleon.Group.apply prog g ~cache in
    P4ir.Program.validate_exn prog';
    check_bool "group-cached program equivalent" true (equivalent prog prog')

let test_group_cache_fills_and_hits () =
  (* A group cache must fill with branch-arm subsets and then serve hits
     that skip both the branch and the arm. *)
  let mk i = mk_table i ~entries:[ 1L; 2L ] in
  let prog = P4ir.Program.empty "grp" in
  let prog, arm1 = P4ir.Builder.chain_into prog [ mk 0 ] ~exit:None in
  let prog, arm2 = P4ir.Builder.chain_into prog [ mk 2 ] ~exit:None in
  let prog, c =
    P4ir.Program.add_node prog
      (P4ir.Builder.cond ~name:"c0" ~field:P4ir.Field.Ipv4_proto ~op:P4ir.Program.Eq ~arg:6L
         ~on_true:(Some arm1) ~on_false:(Some arm2))
  in
  let prog = P4ir.Program.with_root prog (Some c) in
  let g = List.hd (Pipeleon.Group.detect prog ~candidates:(Pipeleon.Pipelet.form prog)) in
  let cache = Option.get (Pipeleon.Group.build_cache ~name:"gc" ~insert_limit:1e9 prog g) in
  let prog' = Pipeleon.Group.apply prog g ~cache in
  let ex = Nicsim.Exec.create (Nicsim.Exec.default_config target) prog' in
  let send proto src =
    let pkt =
      Nicsim.Packet.of_fields
        [ (P4ir.Field.Ipv4_proto, proto); (P4ir.Field.Ipv4_src, src);
          (P4ir.Field.Tcp_sport, src) ]
    in
    ignore (Nicsim.Exec.run_packet ex ~now:0. pkt)
  in
  (* Two flows, one per arm; send each twice: first fills, second hits. *)
  send 6L 1L; send 17L 2L; send 6L 1L; send 17L 2L;
  let eng = Nicsim.Exec.engine_exn ex "gc" in
  check_int "two fills" 2 (Nicsim.Engine.num_entries eng);
  let ctrs = Nicsim.Exec.counters ex in
  let hit_count =
    List.fold_left
      (fun acc ((k : Profile.Counter.key), v) ->
        if String.equal k.owner "gc" && not (String.equal k.label "miss") then
          Int64.add acc v
        else acc)
      0L (Profile.Counter.dump ctrs)
  in
  check_bool "second packets hit" true (Int64.equal hit_count 2L);
  (* Fused names carry the branch outcome, so fold-back reconstructs the
     conditional's counters from hits too. *)
  let folded = Profile.Counter_map.fold_back ~optimized:prog' ctrs in
  check_bool "branch outcomes recovered" true
    (Int64.equal (Profile.Counter.get folded ~owner:"c0" ~label:"true") 2L)

let test_placement_optimization () =
  (* Interleaved CPU-required tables: copying the ASIC-capable middles to
     CPU should reduce migrations and expected latency. *)
  let mk i = mk_table i ~entries:[ 1L ] in
  let tabs = List.init 6 mk in
  let prog = P4ir.Program.linear "hetero" tabs in
  let prof = Profile.uniform prog in
  let ids = List.map fst (P4ir.Program.tables prog) in
  let requires id =
    match List.find_index (Int.equal id) ids with
    | Some i when i mod 2 = 1 -> Pipeleon.Placement.Needs_cpu
    | Some 0 -> Pipeleon.Placement.Needs_asic
    | _ -> Pipeleon.Placement.Any
  in
  let naive = Pipeleon.Placement.naive prog ~require:requires in
  let opt = Pipeleon.Placement.optimize target prof prog ~require:requires in
  let m_naive = Pipeleon.Placement.migrations_expected prof prog ~placement:naive in
  let m_opt = Pipeleon.Placement.migrations_expected prof prog ~placement:opt in
  check_bool "fewer migrations" true (m_opt < m_naive);
  let l_naive = Costmodel.Cost.expected_latency ~placement:naive target prof prog in
  let l_opt = Costmodel.Cost.expected_latency ~placement:opt target prof prog in
  check_bool "lower latency" true (l_opt <= l_naive)

let test_merge_common_key_equivalence () =
  (* Two tables matching on the SAME exact key: MATReduce-style merge
     joins rows instead of cross-producting them. *)
  let mk name tag entries =
    P4ir.Table.make ~name
      ~keys:[ P4ir.Table.key P4ir.Field.Ipv4_dst P4ir.Match_kind.Exact ]
      ~actions:
        [ P4ir.Action.make "seta" [ P4ir.Action.Set_field (P4ir.Field.Meta tag, 1L) ];
          P4ir.Action.make "setb" [ P4ir.Action.Set_field (P4ir.Field.Meta tag, 2L) ] ]
      ~default_action:"setb"
      ~entries:
        (List.map (fun v -> P4ir.Table.entry [ P4ir.Pattern.Exact v ] "seta") entries)
      ()
  in
  let t1 = mk "k1" 1 [ 1L; 2L; 3L ] and t2 = mk "k2" 2 [ 2L; 3L; 4L ] in
  check_bool "compatible" true (Pipeleon.Merge.common_key_compatible [ t1; t2 ]);
  let merged = Pipeleon.Merge.build_common_key ~name:"ck" [ t1; t2 ] in
  (* Union of rows: {1,2,3,4} -> 4 entries, not 9. *)
  check_int "sum not product" 4 (P4ir.Table.num_entries merged);
  let prog = P4ir.Program.linear "orig" [ t1; t2 ] in
  let p = the_pipelet prog in
  let prog' =
    Pipeleon.Transform.apply prog p
      [ Pipeleon.Transform.Merged_plain { merged; originals = [ t1; t2 ] } ]
  in
  check_bool "common-key merge equivalent" true (equivalent prog prog');
  (* Different keys are rejected. *)
  let t3 = mk_table 2 ~entries:[ 1L ] in
  check_bool "different keys incompatible" false
    (Pipeleon.Merge.common_key_compatible [ t1; t3 ])

let test_hetero_materialize_structure () =
  let tabs = chain 4 in
  let prog = P4ir.Program.linear "het" tabs in
  let ids = List.map fst (P4ir.Program.tables prog) in
  let placement id =
    match List.find_index (Int.equal id) ids with
    | Some i when i mod 2 = 1 -> Costmodel.Cost.Cpu
    | _ -> Costmodel.Cost.Asic
  in
  check_int "three internal crossings" 3 (Pipeleon.Hetero.crossings prog ~placement);
  let prog', placement' = Pipeleon.Hetero.materialize prog ~placement in
  P4ir.Program.validate_exn prog';
  let roles =
    List.filter_map
      (fun (_, (t : P4ir.Table.t)) ->
        match t.role with
        | P4ir.Table.Navigation -> Some `Nav
        | P4ir.Table.Migration -> Some `Mig
        | _ -> None)
      (P4ir.Program.tables prog')
  in
  check_int "one migration table per crossing" 3
    (List.length (List.filter (( = ) `Mig) roles));
  check_int "one navigation table per crossing destination" 3
    (List.length (List.filter (( = ) `Nav) roles));
  (* After materialization the navigation/migration hops absorb the
     crossings' dispatch; the crossing count reflects the same 3 hops
     routed through nav tables. *)
  check_bool "placement extended to new nodes" true
    (List.for_all
       (fun (id, (t : P4ir.Table.t)) ->
         match t.role with
         | P4ir.Table.Migration | P4ir.Table.Navigation ->
           placement' id = Costmodel.Cost.Asic || placement' id = Costmodel.Cost.Cpu
         | _ -> true)
       (P4ir.Program.tables prog'))

let test_hetero_materialize_equivalence () =
  let tabs = chain 4 in
  let prog = P4ir.Program.linear "het" tabs in
  let ids = List.map fst (P4ir.Program.tables prog) in
  let placement id =
    match List.find_index (Int.equal id) ids with
    | Some i when i mod 2 = 1 -> Costmodel.Cost.Cpu
    | _ -> Costmodel.Cost.Asic
  in
  let prog', _ = Pipeleon.Hetero.materialize prog ~placement in
  (* Equivalent on all fields except next_tab_id (the piggybacked
     metadata), which `equivalent` does not inspect. *)
  check_bool "materialized program equivalent" true (equivalent prog prog')

let test_api_map_merged_rebuild () =
  let tabs = chain 2 in
  let prog = P4ir.Program.linear "orig" tabs in
  let p = the_pipelet prog in
  let merged = Pipeleon.Merge.build_ternary ~name:"m01" tabs in
  let optimized =
    Pipeleon.Transform.apply prog p
      [ Pipeleon.Transform.Merged_plain { merged; originals = tabs } ]
  in
  (* Insert a new entry into t0; the merged table must be rebuilt with
     amplification. *)
  let entry = P4ir.Table.entry [ P4ir.Pattern.Exact 42L ] "seta" in
  let original' =
    P4ir.Program.update_table prog (fst (Option.get (P4ir.Program.find_table prog "t0")))
      (fun t -> P4ir.Table.add_entry t entry)
  in
  let ops = Pipeleon.Api_map.map_insert ~original:original' ~optimized ~table:"t0" entry in
  let rebuilds =
    List.filter_map
      (function Pipeleon.Api_map.Rebuild { table; entries } -> Some (table, entries) | _ -> None)
      ops
  in
  check_int "one rebuild" 1 (List.length rebuilds);
  let _, entries = List.hd rebuilds in
  (* (4 hits + miss) x (3 hits + miss) - all-miss = 19. *)
  check_int "amplified entries" 19 (List.length entries)

let test_api_map_cache_invalidation () =
  let tabs = chain 2 in
  let prog = P4ir.Program.linear "orig" tabs in
  let p = the_pipelet prog in
  let cache = Pipeleon.Cache.build ~name:"c0" tabs in
  let optimized =
    Pipeleon.Transform.apply prog p [ Pipeleon.Transform.Cached { cache; originals = tabs } ]
  in
  let entry = P4ir.Table.entry [ P4ir.Pattern.Exact 42L ] "seta" in
  let ops = Pipeleon.Api_map.map_insert ~original:prog ~optimized ~table:"t0" entry in
  check_bool "direct insert survives" true
    (List.exists (function Pipeleon.Api_map.Direct { table = "t0"; _ } -> true | _ -> false) ops);
  check_bool "cache invalidated" true
    (List.exists (function Pipeleon.Api_map.Invalidate "c0" -> true | _ -> false) ops)

let () =
  Alcotest.run "optim"
    [ ( "transforms",
        [ Alcotest.test_case "reorder equivalence" `Quick test_reorder_apply_equivalence;
          Alcotest.test_case "cache equivalence" `Quick test_cache_apply_equivalence;
          Alcotest.test_case "cache with drops" `Quick test_cache_with_drops_equivalence;
          Alcotest.test_case "switch-case cache keeps branches" `Quick
            test_cache_switch_case_keeps_branches;
          Alcotest.test_case "ternary merge equivalence" `Quick test_merge_ternary_equivalence;
          Alcotest.test_case "fallback merge equivalence" `Quick test_merge_fallback_equivalence;
          Alcotest.test_case "merge entry counts" `Quick test_merge_entry_counts;
          Alcotest.test_case "common-key merge" `Quick test_merge_common_key_equivalence;
          Alcotest.test_case "multi-key cache + merge" `Quick test_multi_key_cache_and_merge;
          Alcotest.test_case "merge rejects dependency" `Quick test_merge_rejects_dependency;
          Alcotest.test_case "reorder respects deps" `Quick test_reorder_dependencies_respected ] );
      ( "cost-guided",
        [ Alcotest.test_case "reorder gain" `Quick test_reorder_gain_matches_drop_rates;
          Alcotest.test_case "candidate enumeration" `Quick test_candidate_enumeration_two_tables;
          Alcotest.test_case "enumerate budget + reorder combos" `Quick
            test_enumerate_budget_and_reorder_combos;
          Alcotest.test_case "listx take" `Quick test_listx_take;
          Alcotest.test_case "cache hit-rate monotone" `Quick test_cache_gain_depends_on_hit_rate;
          Alcotest.test_case "analytic matches realized" `Quick test_analytic_matches_realized ] );
      ( "knapsack",
        [ Alcotest.test_case "budget respected" `Quick test_knapsack_budget_respected;
          Alcotest.test_case "zero-cost exclusive" `Quick test_knapsack_zero_cost_exclusive;
          Alcotest.test_case "prune stats" `Quick test_knapsack_prune_stats;
          Alcotest.test_case "dp >= greedy" `Quick test_knapsack_greedy_vs_dp ] );
      ( "optimizer",
        [ Alcotest.test_case "end-to-end equivalence" `Quick test_optimizer_end_to_end_equivalence;
          Alcotest.test_case "top-k reduces work" `Quick test_optimizer_topk_reduces_work;
          Alcotest.test_case "group cache" `Quick test_group_detection_and_equivalence;
          Alcotest.test_case "group cache fills + hits" `Quick test_group_cache_fills_and_hits;
          Alcotest.test_case "placement" `Quick test_placement_optimization;
          Alcotest.test_case "hetero materialize structure" `Quick test_hetero_materialize_structure;
          Alcotest.test_case "hetero materialize equivalence" `Quick
            test_hetero_materialize_equivalence ] );
      ( "api-map",
        [ Alcotest.test_case "merged rebuild" `Quick test_api_map_merged_rebuild;
          Alcotest.test_case "cache invalidation" `Quick test_api_map_cache_invalidation ] ) ]
