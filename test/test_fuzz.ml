(* Differential fuzzer smoke tests: bounded, fixed-seed runs of every
   oracle mode, plus seeded-mutant detection — each known bug shape must
   be caught within a small budget and shrunk to a tiny replayable
   repro. Budgets are sized to keep [dune runtest] fast. *)

let smoke_budget = 40
let mutant_budget = 80

let run ?out_dir ?mutate mode ~seed ~budget =
  Fuzz.Driver.run ?out_dir ?mutate ~n_packets:32 mode ~seed ~budget

let test_smoke mode () =
  let r = run mode ~seed:7 ~budget:smoke_budget in
  Alcotest.(check int)
    (Fuzz.Driver.mode_to_string mode ^ " clean")
    0
    (List.length r.Fuzz.Driver.findings)

let test_deterministic () =
  let summary () = Fuzz.Driver.summary (run Fuzz.Driver.Optim_equiv ~seed:42 ~budget:50) in
  Alcotest.(check string) "same summary twice" (summary ()) (summary ())

let test_chaos_smoke () =
  (* Fewer cases than the stateless oracles — each chaos case runs a
     whole control loop (several ticks with deploys) — but every one of
     them must converge with forwarding bit-identical throughout. *)
  let r = run Fuzz.Driver.Chaos ~seed:7 ~budget:10 in
  Alcotest.(check int) "chaos clean" 0 (List.length r.Fuzz.Driver.findings)

let test_chaos_deterministic () =
  let summary () = Fuzz.Driver.summary (run Fuzz.Driver.Chaos ~seed:5 ~budget:5) in
  Alcotest.(check string) "same chaos summary twice" (summary ()) (summary ())

let test_chaos_injects () =
  (* The injector must actually be doing something: a chaos-config
     controller arms a deterministic first-attempt failure burst, so its
     first deploy must roll back at least once — and still converge. *)
  let case = Fuzz.Gen.case ~n_packets:32 (Fuzz.Driver.case_rng ~seed:7 0) in
  let sim = Nicsim.Sim.create Costmodel.Target.bluefield2 case.Fuzz.Gen.program in
  let ctl =
    Runtime.Controller.create
      ~config:
        { Runtime.Controller.default_config with
          faults = { Runtime.Faults.chaos_defaults with seed = 1 } }
      sim ~original:case.Fuzz.Gen.program
  in
  let report = Runtime.Controller.deploy ctl case.Fuzz.Gen.program in
  Alcotest.(check bool) "deploy fault injected and rolled back" true
    (report.Runtime.Controller.rollbacks > 0);
  Alcotest.(check bool) "but the deploy still converged" true
    report.Runtime.Controller.installed

let temp_dir name =
  let d = Filename.concat (Filename.get_temp_dir_name ()) ("pipeleon_fuzz_" ^ name) in
  (try Sys.mkdir d 0o755 with Sys_error _ -> ());
  d

let test_mutant (m : Fuzz.Mutate.t) () =
  let out_dir = temp_dir m.name in
  let r = run ~out_dir ~mutate:m Fuzz.Driver.Optim_equiv ~seed:11 ~budget:mutant_budget in
  (match r.Fuzz.Driver.findings with
   | [] -> Alcotest.failf "mutant %s not detected within %d cases" m.name mutant_budget
   | f :: _ ->
     if f.Fuzz.Driver.tables > 3 then
       Alcotest.failf "mutant %s: shrunk repro has %d tables (want <= 3)" m.name
         f.Fuzz.Driver.tables;
     (match f.Fuzz.Driver.dir with
      | None -> Alcotest.fail "no repro bundle written"
      | Some dir -> (
        match Fuzz.Driver.replay ~mutate:m Fuzz.Driver.Optim_equiv ~dir with
        | Some _ -> ()
        | None -> Alcotest.failf "mutant %s: repro bundle at %s does not replay" m.name dir)))

let test_mutant_replay_clean () =
  (* A mutant divergence must come from the mutation, not the case: the
     same bundles replayed without the mutant are clean. *)
  let m = List.hd Fuzz.Mutate.all in
  let out_dir = temp_dir (m.name ^ "_clean") in
  let r = run ~out_dir ~mutate:m Fuzz.Driver.Optim_equiv ~seed:11 ~budget:mutant_budget in
  match r.Fuzz.Driver.findings with
  | { Fuzz.Driver.dir = Some dir; _ } :: _ ->
    Alcotest.(check bool)
      "clean without mutant" true
      (Fuzz.Driver.replay Fuzz.Driver.Optim_equiv ~dir = None)
  | _ -> Alcotest.fail "expected a finding with a bundle"

let test_shrink_bound () =
  (* Shrinking never invalidates the divergence: re-checking the shrunk
     case still diverges (exercised via the replay path above); here we
     just pin the generator's determinism at the case level. *)
  let rng = Fuzz.Driver.case_rng ~seed:3 5 in
  let rng' = Fuzz.Driver.case_rng ~seed:3 5 in
  let c = Fuzz.Gen.case ~n_packets:16 rng in
  let c' = Fuzz.Gen.case ~n_packets:16 rng' in
  Alcotest.(check bool) "same case from same derived rng" true (c.Fuzz.Gen.packets = c'.Fuzz.Gen.packets)

let () =
  let mutant_cases =
    List.map
      (fun (m : Fuzz.Mutate.t) ->
        Alcotest.test_case ("detects " ^ m.name) `Quick (test_mutant m))
      Fuzz.Mutate.all
  in
  Alcotest.run "fuzz"
    [ ( "smoke",
        [ Alcotest.test_case "sim-diff clean" `Quick (test_smoke Fuzz.Driver.Sim_diff);
          Alcotest.test_case "optim-equiv clean" `Quick (test_smoke Fuzz.Driver.Optim_equiv);
          Alcotest.test_case "roundtrip clean" `Quick (test_smoke Fuzz.Driver.Roundtrip);
          Alcotest.test_case "chaos clean" `Quick test_chaos_smoke;
          Alcotest.test_case "chaos deterministic" `Quick test_chaos_deterministic;
          Alcotest.test_case "chaos injects faults" `Quick test_chaos_injects;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "case generation deterministic" `Quick test_shrink_bound ] );
      ("mutants", mutant_cases @ [ Alcotest.test_case "bundle clean without mutant" `Quick test_mutant_replay_clean ]) ]
