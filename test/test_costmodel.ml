(* Tests for the cost model: Eq. 1-4 semantics, path-sum equivalence,
   throughput conversion, resource accounting, and calibration. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-6))

let target = Costmodel.Target.bluefield2

let exact_table ?(prims = 1) name =
  P4ir.Table.make ~name
    ~keys:[ P4ir.Table.key P4ir.Field.Ipv4_dst P4ir.Match_kind.Exact ]
    ~actions:[ P4ir.Builder.forward_action ~extra_prims:(prims - 1) "act"; P4ir.Action.nop "def" ]
    ~default_action:"def" ()

(* --- target --- *)

let test_m_values () =
  let exact = exact_table "e" in
  check_float "exact m=1" 1.0 (Costmodel.Target.m_of_table target exact);
  let lpm =
    P4ir.Table.make ~name:"l"
      ~keys:[ P4ir.Table.key P4ir.Field.Ipv4_dst P4ir.Match_kind.Lpm ]
      ~actions:[ P4ir.Action.nop "a" ]
      ~default_action:"a"
      ~entries:
        [ P4ir.Table.entry [ P4ir.Pattern.Lpm (0x0A000000L, 8) ] "a";
          P4ir.Table.entry [ P4ir.Pattern.Lpm (0x0B0000L, 16) ] "a";
          P4ir.Table.entry [ P4ir.Pattern.Lpm (0x0C00L, 24) ] "a" ]
      ()
  in
  check_float "lpm m from 3 prefixes" 3.0 (Costmodel.Target.m_of_table target lpm);
  let emu = Costmodel.Target.emulated_nic in
  check_float "emulated lpm fixed m" 3.0 (Costmodel.Target.m_of_table emu lpm);
  check_float "emulated exact m" 1.0 (Costmodel.Target.m_of_table emu exact)

let test_throughput_conversion () =
  check_float "line rate cap" target.Costmodel.Target.line_rate_gbps
    (Costmodel.Target.throughput_gbps target ~latency:0.001);
  let latency = Costmodel.Target.latency_for_line_rate target in
  check_float "boundary latency" target.Costmodel.Target.line_rate_gbps
    (Costmodel.Target.throughput_gbps target ~latency);
  check_bool "beyond boundary degrades" true
    (Costmodel.Target.throughput_gbps target ~latency:(2. *. latency)
     < target.Costmodel.Target.line_rate_gbps);
  Alcotest.check_raises "zero latency rejected"
    (Invalid_argument "Target.throughput_gbps: latency must be positive") (fun () ->
      ignore (Costmodel.Target.throughput_gbps target ~latency:0.))

(* --- expected latency --- *)

let test_node_sum_linear () =
  (* n identical exact tables with one action (1 prim): L = l_fixed +
     n*(l_mat + l_act) when nothing drops (the default "def" action has
     zero primitives and probability 1 under an explicit profile). *)
  let n = 5 in
  let tabs = List.init n (fun i -> exact_table (Printf.sprintf "t%d" i)) in
  let prog = P4ir.Program.linear "p" tabs in
  let prof =
    List.fold_left
      (fun prof (t : P4ir.Table.t) ->
        Profile.set_table t.name
          { Profile.action_probs = [ ("act", 1.0); ("def", 0.0) ];
            update_rate = 0.;
            locality = -1. }
          prof)
      (Profile.uniform prog) tabs
  in
  let expected =
    target.Costmodel.Target.l_fixed
    +. (float_of_int n *. (target.Costmodel.Target.l_mat +. target.Costmodel.Target.l_act))
  in
  check_float "closed form" expected (Costmodel.Cost.expected_latency target prof prog)

let test_drop_shortens () =
  let acl =
    P4ir.Table.add_entry
      (P4ir.Builder.acl_table ~name:"acl" ~keys:[ P4ir.Builder.exact_key P4ir.Field.Ipv4_dst ] ())
      (P4ir.Table.entry [ P4ir.Pattern.Exact 1L ] "deny")
  in
  let prog = P4ir.Program.linear "p" (acl :: List.init 5 (fun i -> exact_table (Printf.sprintf "t%d" i))) in
  let with_drop rate =
    Profile.set_table "acl"
      { Profile.action_probs = [ ("allow", 1. -. rate); ("deny", rate) ];
        update_rate = 0.;
        locality = -1. }
      (Profile.uniform prog)
  in
  let l0 = Costmodel.Cost.expected_latency target (with_drop 0.0) prog in
  let l9 = Costmodel.Cost.expected_latency target (with_drop 0.9) prog in
  check_bool "drops shorten expected path" true (l9 < l0)

let diamond () =
  let t_a = exact_table "ta" and t_b = exact_table ~prims:4 "tb" in
  let prog = P4ir.Program.empty "d" in
  let prog, ida = P4ir.Program.add_node prog (P4ir.Program.Table (t_a, P4ir.Program.Uniform None)) in
  let prog, idb = P4ir.Program.add_node prog (P4ir.Program.Table (t_b, P4ir.Program.Uniform None)) in
  let prog, idc =
    P4ir.Program.add_node prog
      (P4ir.Builder.cond ~name:"c" ~field:P4ir.Field.Ipv4_proto ~op:P4ir.Program.Eq ~arg:6L
         ~on_true:(Some ida) ~on_false:(Some idb))
  in
  P4ir.Program.with_root prog (Some idc)

let test_branch_probability_weighting () =
  let prog = diamond () in
  let prof p = Profile.set_cond "c" { Profile.true_prob = p } (Profile.uniform prog) in
  let l_light = Costmodel.Cost.expected_latency target (prof 1.0) prog in
  let l_heavy = Costmodel.Cost.expected_latency target (prof 0.0) prog in
  let l_mid = Costmodel.Cost.expected_latency target (prof 0.5) prog in
  check_bool "heavy arm costs more" true (l_heavy > l_light);
  check_float "midpoint is the average" ((l_light +. l_heavy) /. 2.) l_mid

let test_paths_equal_node_sum () =
  let prog = diamond () in
  let prof = Profile.set_cond "c" { Profile.true_prob = 0.3 } (Profile.uniform prog) in
  check_float "Eq.1 both ways"
    (Costmodel.Cost.expected_latency target prof prog)
    (Costmodel.Cost.expected_latency_via_paths target prof prog)

let test_reach_probs () =
  let prog = diamond () in
  let prof = Profile.set_cond "c" { Profile.true_prob = 0.3 } (Profile.uniform prog) in
  let reach = Costmodel.Cost.reach_probs prof prog in
  let by_table name =
    let id, _ = Option.get (P4ir.Program.find_table prog name) in
    List.assoc id reach
  in
  check_float "true arm" 0.3 (by_table "ta");
  check_float "false arm" 0.7 (by_table "tb")

let test_per_node_overhead () =
  let tabs = List.init 4 (fun i -> exact_table (Printf.sprintf "t%d" i)) in
  let prog = P4ir.Program.linear "p" tabs in
  let prof = Profile.uniform prog in
  let base = Costmodel.Cost.expected_latency target prof prog in
  let with_ovh = Costmodel.Cost.expected_latency ~per_node_overhead:0.5 target prof prog in
  check_float "overhead per visited node" (base +. (4. *. 0.5)) with_ovh

let test_hetero_migrations () =
  let tabs = List.init 2 (fun i -> exact_table (Printf.sprintf "t%d" i)) in
  let prog = P4ir.Program.linear "p" tabs in
  let prof = Profile.uniform prog in
  let ids = List.map fst (P4ir.Program.tables prog) in
  let second = List.nth ids 1 in
  let placement id = if id = second then Costmodel.Cost.Cpu else Costmodel.Cost.Asic in
  let flat = Costmodel.Cost.expected_latency target prof prog in
  let het = Costmodel.Cost.expected_latency ~placement target prof prog in
  (* Crossing in, then exiting from CPU: two migrations, plus the CPU
     slowdown on the second table. *)
  let t1 = List.nth tabs 1 in
  let extra_slow =
    (Costmodel.Target.table_match_cost target t1 +. Costmodel.Cost.action_cost target prof t1)
    *. (target.Costmodel.Target.cpu_slowdown -. 1.)
  in
  check_float "two migrations + slowdown"
    (flat +. (2. *. target.Costmodel.Target.migration_latency) +. extra_slow)
    het;
  check_float "paths agree under placement" het
    (Costmodel.Cost.expected_latency_via_paths ~placement target prof prog)

(* --- resources --- *)

let test_resource_accounting () =
  let t =
    P4ir.Table.make ~name:"t"
      ~keys:[ P4ir.Table.key P4ir.Field.Ipv4_dst P4ir.Match_kind.Exact ]
      ~actions:[ P4ir.Action.nop "a" ]
      ~default_action:"a"
      ~entries:(List.init 10 (fun i -> P4ir.Table.entry [ P4ir.Pattern.Exact (Int64.of_int i) ] "a"))
      ()
  in
  (* exact: 4 key bytes + 8 action bytes per entry, m = 1. *)
  Alcotest.(check int) "entry bytes" 12 (Costmodel.Resource.entry_bytes t);
  Alcotest.(check int) "table memory" 120 (Costmodel.Resource.table_memory target t);
  let b = Costmodel.Resource.default_budget in
  check_bool "within" true
    (Costmodel.Resource.within b ~memory:(b.Costmodel.Resource.memory_bytes - 1) ~updates:0.);
  check_bool "memory exceeded" false
    (Costmodel.Resource.within b ~memory:(b.Costmodel.Resource.memory_bytes + 1) ~updates:0.)

(* --- calibration --- *)

let test_calibration_recovers_slope () =
  (* Synthetic measurements from a known linear law. *)
  let samples slope intercept xs =
    List.map (fun x -> { Costmodel.Calibrate.x; latency = (slope *. x) +. intercept }) xs
  in
  let xs = [ 5.; 10.; 20.; 30.; 40. ] in
  let c =
    Costmodel.Calibrate.calibrate
      ~exact_sweep:(samples 1.25 10. xs)
      ~action_sweep:(samples 0.125 10. xs)
      ~lpm_sweep:(samples 3.75 10. xs)
      ~ternary_sweep:(samples 6.25 10. xs)
  in
  check_float "L_mat" 1.25 c.Costmodel.Calibrate.l_mat_fit.slope;
  check_float "L_act" 0.125 c.Costmodel.Calibrate.l_act_fit.slope;
  check_float "intercept" 10. c.Costmodel.Calibrate.l_mat_fit.intercept;
  check_float "r2" 1.0 c.Costmodel.Calibrate.l_mat_fit.r2;
  check_float "m_lpm" 3.0 c.Costmodel.Calibrate.m_lpm;
  check_float "m_ternary" 5.0 c.Costmodel.Calibrate.m_ternary;
  check_float "prediction" (10. +. (20. *. (1.25 +. (2. *. 0.125))))
    (Costmodel.Calibrate.predict_latency c ~num_tables:20 ~prims_per_table:2.)

(* --- RMT baseline --- *)

let test_rmt_pack_dependencies () =
  (* A chain where each table writes the next one's key must occupy one
     stage per table. *)
  let writer i =
    P4ir.Table.make ~name:(Printf.sprintf "w%d" i)
      ~keys:[ P4ir.Table.key (P4ir.Field.Meta i) P4ir.Match_kind.Exact ]
      ~actions:
        [ P4ir.Action.make "set" [ P4ir.Action.Set_field (P4ir.Field.Meta (i + 1), 1L) ] ]
      ~default_action:"set" ()
  in
  let prog = P4ir.Program.linear "chain" (List.init 4 writer) in
  check_int "diameter = chain length" 4 (Costmodel.Rmt.dependency_diameter prog);
  (match Costmodel.Rmt.pack target prog with
   | Costmodel.Rmt.Fits p -> check_int "4 stages" 4 p.Costmodel.Rmt.stages_used
   | Costmodel.Rmt.Does_not_fit m -> Alcotest.fail m);
  (* Independent tables share stage 1. Each writes its own field — two
     forwarding tables would carry an egress write-write dependency. *)
  let indep_table i =
    P4ir.Table.make ~name:(Printf.sprintf "t%d" i)
      ~keys:[ P4ir.Table.key P4ir.Field.Ipv4_dst P4ir.Match_kind.Exact ]
      ~actions:
        [ P4ir.Action.make "set" [ P4ir.Action.Set_field (P4ir.Field.Meta (10 + i), 1L) ];
          P4ir.Action.nop "def" ]
      ~default_action:"def" ()
  in
  let indep = P4ir.Program.linear "flat" (List.init 4 indep_table) in
  check_int "flat diameter" 1 (Costmodel.Rmt.dependency_diameter indep);
  match Costmodel.Rmt.pack target indep with
  | Costmodel.Rmt.Fits p -> check_int "one stage" 1 p.Costmodel.Rmt.stages_used
  | Costmodel.Rmt.Does_not_fit m -> Alcotest.fail m

let test_rmt_limits () =
  (* More dependent tables than stages cannot fit. *)
  let writer i =
    P4ir.Table.make ~name:(Printf.sprintf "w%d" i)
      ~keys:[ P4ir.Table.key (P4ir.Field.Meta i) P4ir.Match_kind.Exact ]
      ~actions:
        [ P4ir.Action.make "set" [ P4ir.Action.Set_field (P4ir.Field.Meta (i + 1), 1L) ] ]
      ~default_action:"set" ()
  in
  let deep = P4ir.Program.linear "deep" (List.init 14 writer) in
  (match Costmodel.Rmt.throughput_gbps target deep with
   | None -> ()
   | Some _ -> Alcotest.fail "14-deep chain should not fit 12 stages");
  (* Fitting programs always run at line rate, whatever the profile. *)
  let flat = P4ir.Program.linear "flat" (List.init 4 (fun i -> exact_table (Printf.sprintf "t%d" i))) in
  check_bool "line rate" true
    (Costmodel.Rmt.throughput_gbps target flat = Some target.Costmodel.Target.line_rate_gbps)

(* --- queueing --- *)

let test_erlang_c_limits () =
  (* Single server: Erlang-C reduces to rho. *)
  check_float "M/M/1 wait probability" 0.5 (Costmodel.Queueing.erlang_c ~c:1 ~rho:0.5);
  check_bool "vanishes at low load" true (Costmodel.Queueing.erlang_c ~c:8 ~rho:0.01 < 1e-6);
  check_bool "approaches 1 at high load" true (Costmodel.Queueing.erlang_c ~c:8 ~rho:0.999 > 0.9);
  Alcotest.check_raises "rho >= 1 rejected"
    (Invalid_argument "Queueing.erlang_c: rho in [0,1)") (fun () ->
      ignore (Costmodel.Queueing.erlang_c ~c:4 ~rho:1.0))

let test_sojourn_monotone () =
  let service = 30.0 in
  let capacity = Costmodel.Target.throughput_gbps target ~latency:service in
  let points =
    Costmodel.Queueing.latency_vs_load target ~service_latency:service
      ~loads:[ 0.1 *. capacity; 0.5 *. capacity; 0.9 *. capacity; 0.99 *. capacity ]
  in
  let values = List.filter_map snd points in
  check_int "all below capacity answered" 4 (List.length values);
  let rec increasing = function
    | a :: (b :: _ as rest) -> a <= b +. 1e-9 && increasing rest
    | _ -> true
  in
  check_bool "sojourn grows with load" true (increasing values);
  check_bool "light load ~ service time" true
    (Float.abs (List.hd values -. service) < 0.5);
  check_bool "overload unanswered" true
    (Costmodel.Queueing.expected_sojourn target ~service_latency:service
       ~offered_gbps:(1.1 *. capacity)
     = None)

let () =
  Alcotest.run "costmodel"
    [ ( "target",
        [ Alcotest.test_case "m values" `Quick test_m_values;
          Alcotest.test_case "throughput conversion" `Quick test_throughput_conversion ] );
      ( "latency",
        [ Alcotest.test_case "node-sum closed form" `Quick test_node_sum_linear;
          Alcotest.test_case "drops shorten" `Quick test_drop_shortens;
          Alcotest.test_case "branch weighting" `Quick test_branch_probability_weighting;
          Alcotest.test_case "paths = node-sum" `Quick test_paths_equal_node_sum;
          Alcotest.test_case "reach probs" `Quick test_reach_probs;
          Alcotest.test_case "per-node overhead" `Quick test_per_node_overhead;
          Alcotest.test_case "heterogeneous migrations" `Quick test_hetero_migrations ] );
      ("resources", [ Alcotest.test_case "accounting" `Quick test_resource_accounting ]);
      ("calibration", [ Alcotest.test_case "recovers slopes" `Quick test_calibration_recovers_slope ]);
      ( "rmt",
        [ Alcotest.test_case "dependency packing" `Quick test_rmt_pack_dependencies;
          Alcotest.test_case "limits + line rate" `Quick test_rmt_limits ] );
      ( "queueing",
        [ Alcotest.test_case "erlang-c limits" `Quick test_erlang_c_limits;
          Alcotest.test_case "sojourn monotone" `Quick test_sojourn_monotone ] ) ]
