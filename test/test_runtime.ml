(* Tests for the runtime controller: API mapping through deployed
   layouts, profiling ticks, redeployment decisions, downtime, and the
   health monitors. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let target = Costmodel.Target.bluefield2

let fields = [ P4ir.Field.Ipv4_src; P4ir.Field.Ipv4_dst; P4ir.Field.Tcp_sport; P4ir.Field.Tcp_dport ]

let mk_table ?(entries = 3) name field =
  P4ir.Table.make ~name
    ~keys:[ P4ir.Builder.exact_key field ]
    ~actions:[ P4ir.Builder.forward_action "act"; P4ir.Action.nop "def" ]
    ~default_action:"def"
    ~entries:
      (List.init entries (fun j -> P4ir.Table.entry [ P4ir.Pattern.Exact (Int64.of_int j) ] "act"))
    ()

let program () =
  P4ir.Program.linear "rt"
    (List.mapi (fun i f -> mk_table (Printf.sprintf "t%d" i) f) fields)

let make_controller ?(config = Runtime.Controller.default_config) () =
  let sim = Nicsim.Sim.create target (program ()) in
  (sim, Runtime.Controller.create ~config sim ~original:(program ()))

let source rng =
  Traffic.Workload.of_flows ~zipf_s:1.2 rng
    (Traffic.Workload.random_flows rng ~n:64 ~fields)

let test_insert_reaches_engine () =
  let sim, ctl = make_controller () in
  Runtime.Controller.insert ctl ~table:"t0" (P4ir.Table.entry [ P4ir.Pattern.Exact 77L ] "act");
  let eng = Nicsim.Exec.engine_exn (Nicsim.Sim.exec sim) "t0" in
  check_int "entry landed" 4 (Nicsim.Engine.num_entries eng);
  (* The control plane's source of truth tracks it too. *)
  let _, t0 = Option.get (P4ir.Program.find_table (Runtime.Controller.original_program ctl) "t0") in
  check_int "original IR updated" 4 (P4ir.Table.num_entries t0)

let test_delete_roundtrip () =
  let sim, ctl = make_controller () in
  let e = P4ir.Table.entry [ P4ir.Pattern.Exact 1L ] "act" in
  Runtime.Controller.delete ctl ~table:"t0" e;
  let eng = Nicsim.Exec.engine_exn (Nicsim.Sim.exec sim) "t0" in
  check_int "entry removed" 2 (Nicsim.Engine.num_entries eng)

let test_unknown_table_rejected () =
  let _, ctl = make_controller () in
  Alcotest.check_raises "unknown table" (Invalid_argument "Controller: unknown original table zz")
    (fun () ->
      Runtime.Controller.insert ctl ~table:"zz" (P4ir.Table.entry [ P4ir.Pattern.Exact 1L ] "act"))

let test_tick_produces_profile () =
  let sim, ctl = make_controller () in
  let rng = Stdx.Prng.create 2L in
  ignore (Nicsim.Sim.run_window sim ~duration:1.0 ~packets:500 ~source:(source rng));
  let report = Runtime.Controller.tick ctl in
  (* The folded profile must carry real action probabilities. *)
  let _, t0 = Option.get (P4ir.Program.find_table (program ()) "t0") in
  let p_act = Profile.action_prob report.Runtime.Controller.profile ~table:t0 ~action:"act" in
  let p_def = Profile.action_prob report.Runtime.Controller.profile ~table:t0 ~action:"def" in
  check_bool "probabilities sum to ~1" true (Float.abs (p_act +. p_def -. 1.) < 1e-6)

let test_redeploy_after_drop_shift () =
  (* An ACL at the end with a huge drop rate: the first tick should
     redeploy a layout that performs better. *)
  let acl =
    P4ir.Table.add_entry
      (P4ir.Builder.acl_table ~name:"acl" ~keys:[ P4ir.Builder.exact_key P4ir.Field.Udp_dport ] ())
      (P4ir.Table.entry [ P4ir.Pattern.Exact 666L ] "deny")
  in
  let prog =
    P4ir.Program.linear "rt2"
      ((List.mapi (fun i f -> mk_table (Printf.sprintf "t%d" i) f) fields)
      @ [ acl ])
  in
  let sim = Nicsim.Sim.create target prog in
  let config =
    { Runtime.Controller.default_config with
      min_relative_gain = 0.01;
      optimizer = { Pipeleon.Optimizer.default_config with top_k = 1.0 } }
  in
  let ctl = Runtime.Controller.create ~config sim ~original:prog in
  let rng = Stdx.Prng.create 4L in
  let src =
    Traffic.Workload.mark_fraction rng ~rate:0.7 ~field:P4ir.Field.Udp_dport ~value:666L
      (source rng)
  in
  ignore (Nicsim.Sim.run_window sim ~duration:5.0 ~packets:2000 ~source:src);
  let report = Runtime.Controller.tick ctl in
  check_bool "reoptimized" true report.Runtime.Controller.reoptimized;
  check_int "generation bumped" 1 (Runtime.Controller.generation ctl);
  (* The deployed program must keep behaviour: the denied packets still
     get dropped, at a lower average cost. *)
  let s2 = Nicsim.Sim.run_window sim ~duration:5.0 ~packets:2000 ~source:src in
  check_bool "drops preserved" true (s2.Nicsim.Sim.drop_fraction > 0.5);
  check_bool "throughput improved or equal" true
    (s2.Nicsim.Sim.throughput_gbps >= target.Costmodel.Target.line_rate_gbps *. 0.8)

let test_insert_survives_redeploy () =
  let sim, ctl = make_controller () in
  Runtime.Controller.insert ctl ~table:"t0" (P4ir.Table.entry [ P4ir.Pattern.Exact 99L ] "act");
  Runtime.Controller.force_redeploy ctl (program ());
  (* force_redeploy installs the given IR; entries of surviving tables are
     carried over by the simulator's live reconfiguration. *)
  let eng = Nicsim.Exec.engine_exn (Nicsim.Sim.exec sim) "t0" in
  check_bool "entry survived" true
    (fst (Nicsim.Engine.lookup eng (Nicsim.Packet.of_fields [ (P4ir.Field.Ipv4_src, 99L) ])) <> None)

let test_downtime_advances_clock () =
  let config = { Runtime.Controller.default_config with reconfig_downtime = 3.0 } in
  let sim, ctl = make_controller ~config () in
  let before = Nicsim.Sim.now sim in
  Runtime.Controller.force_redeploy ctl (program ());
  check_bool "downtime charged" true (Nicsim.Sim.now sim -. before >= 3.0)

(* --- monitors --- *)

let test_monitor_low_hit_rate () =
  let t1 = mk_table "t1" P4ir.Field.Ipv4_src in
  let cache = Pipeleon.Cache.build ~name:"c" [ t1 ] in
  let prog = P4ir.Program.empty "m" in
  let prog, id1 = P4ir.Program.add_node prog (P4ir.Program.Table (t1, P4ir.Program.Uniform None)) in
  let branches =
    List.map
      (fun (a : P4ir.Action.t) ->
        if String.equal a.name "miss" then (a.name, Some id1) else (a.name, None))
      cache.P4ir.Table.actions
  in
  let prog, idc = P4ir.Program.add_node prog (P4ir.Program.Table (cache, P4ir.Program.Per_action branches)) in
  let prog = P4ir.Program.with_root prog (Some idc) in
  let observed =
    Profile.set_table "c"
      { Profile.action_probs = [ ("miss", 0.95); (Profile.Counter_map.fuse [ ("t1", "act") ], 0.05) ];
        update_rate = 0.;
        locality = -1. }
      Profile.empty
  in
  let issues = Runtime.Monitor.assess ~observed prog in
  check_bool "low hit flagged" true
    (List.exists (function Runtime.Monitor.Low_hit_rate _ -> true | _ -> false) issues)

let test_monitor_update_storm () =
  let t1 = mk_table "t1" P4ir.Field.Ipv4_src and t2 = mk_table "t2" P4ir.Field.Ipv4_dst in
  let merged = Pipeleon.Merge.build_ternary ~name:"m12" [ t1; t2 ] in
  let prog = P4ir.Program.linear "m" [ merged ] in
  let observed =
    Profile.set_table "m12"
      { Profile.action_probs = []; update_rate = 50_000.; locality = -1. }
      Profile.empty
  in
  let issues = Runtime.Monitor.assess ~observed prog in
  check_bool "storm flagged" true
    (List.exists (function Runtime.Monitor.Update_storm _ -> true | _ -> false) issues)

(* --- incremental reconfiguration --- *)

let test_incremental_diff () =
  let prog = program () in
  let renamed =
    P4ir.Program.linear "rt"
      (mk_table "t0" P4ir.Field.Ipv4_src
      :: mk_table "brand_new" P4ir.Field.Udp_sport
      :: List.filteri (fun i _ -> i >= 2)
           (List.mapi (fun i f -> mk_table (Printf.sprintf "t%d" i) f) fields))
  in
  let changes = Runtime.Incremental.diff ~old_program:prog ~new_program:renamed in
  check_bool "t1 removed" true (List.mem (Runtime.Incremental.Removed "t1") changes);
  check_bool "brand_new added" true (List.mem (Runtime.Incremental.Added "brand_new") changes);
  check_int "two rebuilds" 2 (Runtime.Incremental.rebuild_count changes);
  (* Entry-only changes are not rebuilds. *)
  let more_entries =
    P4ir.Program.linear "rt"
      (mk_table ~entries:5 "t0" P4ir.Field.Ipv4_src
      :: List.filteri (fun i _ -> i >= 1)
           (List.mapi (fun i f -> mk_table (Printf.sprintf "t%d" i) f) fields))
  in
  let changes = Runtime.Incremental.diff ~old_program:prog ~new_program:more_entries in
  check_bool "entries_changed" true
    (List.mem (Runtime.Incremental.Entries_changed "t0") changes);
  check_int "no rebuilds" 0 (Runtime.Incremental.rebuild_count changes)

let test_hot_patch_preserves_state () =
  let sim = Nicsim.Sim.create target (program ()) in
  Nicsim.Sim.insert sim ~table:"t0" (P4ir.Table.entry [ P4ir.Pattern.Exact 77L ] "act");
  let rng = Stdx.Prng.create 3L in
  ignore (Nicsim.Sim.run_window sim ~duration:1.0 ~packets:200 ~source:(source rng));
  let counters_before =
    Profile.Counter.owner_total (Nicsim.Exec.counters (Nicsim.Sim.exec sim)) "t0"
  in
  (* Patch in a layout that keeps t0..t3 and adds one table. *)
  let extended =
    P4ir.Program.linear "rt"
      ((List.mapi (fun i f -> mk_table (Printf.sprintf "t%d" i) f) fields)
      @ [ mk_table "extra" P4ir.Field.Udp_dport ])
  in
  let rebuilt = Nicsim.Sim.hot_patch sim extended in
  check_int "only the new table rebuilt" 1 rebuilt;
  let eng = Nicsim.Exec.engine_exn (Nicsim.Sim.exec sim) "t0" in
  check_int "dynamic entries survive" 4 (Nicsim.Engine.num_entries eng);
  let counters_after =
    Profile.Counter.owner_total (Nicsim.Exec.counters (Nicsim.Sim.exec sim)) "t0"
  in
  check_bool "counters survive" true (Int64.equal counters_before counters_after)

let test_incremental_deploy_cheaper () =
  let run mode =
    let config =
      { Runtime.Controller.default_config with
        reconfig_downtime = 3.0;
        min_relative_gain = 1e9;
        deploy_mode = mode }
    in
    let sim, ctl = make_controller ~config () in
    let before = Nicsim.Sim.now sim in
    Runtime.Controller.force_redeploy ctl (program ());
    Nicsim.Sim.now sim -. before
  in
  let full = run Runtime.Controller.Full in
  let incr = run Runtime.Controller.Incremental in
  Alcotest.(check (float 1e-6)) "full pays everything" 3.0 full;
  (* Identical program: nothing rebuilt, no downtime at all. *)
  Alcotest.(check (float 1e-6)) "incremental pays nothing for a no-op" 0.0 incr

let drop_shift_controller ?(deploy_mode = Runtime.Controller.Full) ?(telemetry = Telemetry.null)
    ~reconfig_downtime () =
  let acl =
    P4ir.Table.add_entry
      (P4ir.Builder.acl_table ~name:"acl" ~keys:[ P4ir.Builder.exact_key P4ir.Field.Udp_dport ] ())
      (P4ir.Table.entry [ P4ir.Pattern.Exact 666L ] "deny")
  in
  let prog =
    P4ir.Program.linear "rt3"
      ((List.mapi (fun i f -> mk_table (Printf.sprintf "t%d" i) f) fields) @ [ acl ])
  in
  let sim = Nicsim.Sim.create ~telemetry target prog in
  let config =
    { Runtime.Controller.default_config with
      min_relative_gain = 0.01;
      reconfig_downtime;
      deploy_mode;
      optimizer = { Pipeleon.Optimizer.default_config with top_k = 1.0 } }
  in
  let ctl = Runtime.Controller.create ~config sim ~original:prog in
  let rng = Stdx.Prng.create 4L in
  let src =
    Traffic.Workload.mark_fraction rng ~rate:0.7 ~field:P4ir.Field.Udp_dport ~value:666L
      (source rng)
  in
  (sim, ctl, src)

let test_tick_reports_deploy_seconds () =
  (* Full deploy charges the whole reconfiguration downtime; Incremental
     charges only per rebuilt table, and a tick that does not redeploy
     charges nothing. tick_report.deploy_seconds must equal what the
     simulated clock actually lost. *)
  let run mode =
    let sim, ctl, src = drop_shift_controller ~deploy_mode:mode ~reconfig_downtime:2.5 () in
    ignore (Nicsim.Sim.run_window sim ~duration:5.0 ~packets:2000 ~source:src);
    let before = Nicsim.Sim.now sim in
    let report = Runtime.Controller.tick ctl in
    check_bool "reoptimized" true report.Runtime.Controller.reoptimized;
    Alcotest.(check (float 1e-9)) "deploy_seconds matches clock"
      (Nicsim.Sim.now sim -. before) report.Runtime.Controller.deploy_seconds;
    report.Runtime.Controller.deploy_seconds
  in
  let full = run Runtime.Controller.Full in
  let incr = run Runtime.Controller.Incremental in
  Alcotest.(check (float 1e-9)) "full pays the whole downtime" 2.5 full;
  check_bool "incremental pays a strict fraction" true (incr < full);
  (* A quiet tick (no traffic since the redeploy) does not redeploy again
     and charges nothing. *)
  let sim, ctl, src = drop_shift_controller ~reconfig_downtime:2.5 () in
  ignore (Nicsim.Sim.run_window sim ~duration:5.0 ~packets:2000 ~source:src);
  ignore (Runtime.Controller.tick ctl);
  let quiet = Runtime.Controller.tick ctl in
  check_bool "quiet tick does not redeploy" false quiet.Runtime.Controller.reoptimized;
  Alcotest.(check (float 1e-9)) "quiet tick is free" 0.0
    quiet.Runtime.Controller.deploy_seconds

let test_tick_records_runtime_metrics () =
  (* With a telemetry sink on the simulator, tick feeds the runtime.*
     metrics: tick/redeploy counters and the generation gauge. *)
  let tel = Telemetry.create () in
  let sim, ctl, src = drop_shift_controller ~telemetry:tel ~reconfig_downtime:0.5 () in
  ignore (Nicsim.Sim.run_window sim ~duration:5.0 ~packets:2000 ~source:src);
  let report = Runtime.Controller.tick ctl in
  check_bool "reoptimized" true report.Runtime.Controller.reoptimized;
  let m = Telemetry.metrics tel in
  check_bool "ticks counted" true
    (Telemetry.Metrics.find_counter m "runtime.ticks" = Some 1);
  check_bool "redeploys counted" true
    (Telemetry.Metrics.find_counter m "runtime.redeploys" = Some 1);
  check_bool "generation gauge" true
    (Telemetry.Metrics.find_gauge m "runtime.generation" = Some 1.);
  check_bool "deploy cost gauge" true
    (Telemetry.Metrics.find_gauge m "runtime.deploy_seconds"
    = Some report.Runtime.Controller.deploy_seconds);
  check_bool "optimizer ran under the same sink" true
    (Telemetry.Metrics.find_counter m "optimizer.runs" = Some 1)

let () =
  Alcotest.run "runtime"
    [ ( "api-mapping",
        [ Alcotest.test_case "insert reaches engine" `Quick test_insert_reaches_engine;
          Alcotest.test_case "delete roundtrip" `Quick test_delete_roundtrip;
          Alcotest.test_case "unknown table" `Quick test_unknown_table_rejected ] );
      ( "controller",
        [ Alcotest.test_case "tick profile" `Quick test_tick_produces_profile;
          Alcotest.test_case "redeploy on drop shift" `Quick test_redeploy_after_drop_shift;
          Alcotest.test_case "entries survive redeploy" `Quick test_insert_survives_redeploy;
          Alcotest.test_case "downtime" `Quick test_downtime_advances_clock;
          Alcotest.test_case "deploy seconds reported" `Quick test_tick_reports_deploy_seconds;
          Alcotest.test_case "runtime metrics" `Quick test_tick_records_runtime_metrics ] );
      ( "monitors",
        [ Alcotest.test_case "low hit rate" `Quick test_monitor_low_hit_rate;
          Alcotest.test_case "update storm" `Quick test_monitor_update_storm ] );
      ( "incremental",
        [ Alcotest.test_case "diff" `Quick test_incremental_diff;
          Alcotest.test_case "hot patch preserves state" `Quick test_hot_patch_preserves_state;
          Alcotest.test_case "deploy cost" `Quick test_incremental_deploy_cheaper ] ) ]
