(* Tests for the runtime controller: API mapping through deployed
   layouts, profiling ticks, redeployment decisions, downtime, and the
   health monitors. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let target = Costmodel.Target.bluefield2

let fields = [ P4ir.Field.Ipv4_src; P4ir.Field.Ipv4_dst; P4ir.Field.Tcp_sport; P4ir.Field.Tcp_dport ]

let mk_table ?(entries = 3) name field =
  P4ir.Table.make ~name
    ~keys:[ P4ir.Builder.exact_key field ]
    ~actions:[ P4ir.Builder.forward_action "act"; P4ir.Action.nop "def" ]
    ~default_action:"def"
    ~entries:
      (List.init entries (fun j -> P4ir.Table.entry [ P4ir.Pattern.Exact (Int64.of_int j) ] "act"))
    ()

let program () =
  P4ir.Program.linear "rt"
    (List.mapi (fun i f -> mk_table (Printf.sprintf "t%d" i) f) fields)

let make_controller ?(config = Runtime.Controller.default_config) () =
  let sim = Nicsim.Sim.create target (program ()) in
  (sim, Runtime.Controller.create ~config sim ~original:(program ()))

let source rng =
  Traffic.Workload.of_flows ~zipf_s:1.2 rng
    (Traffic.Workload.random_flows rng ~n:64 ~fields)

let test_insert_reaches_engine () =
  let sim, ctl = make_controller () in
  Runtime.Controller.insert ctl ~table:"t0" (P4ir.Table.entry [ P4ir.Pattern.Exact 77L ] "act");
  let eng = Nicsim.Exec.engine_exn (Nicsim.Sim.exec sim) "t0" in
  check_int "entry landed" 4 (Nicsim.Engine.num_entries eng);
  (* The control plane's source of truth tracks it too. *)
  let _, t0 = Option.get (P4ir.Program.find_table (Runtime.Controller.original_program ctl) "t0") in
  check_int "original IR updated" 4 (P4ir.Table.num_entries t0)

let test_delete_roundtrip () =
  let sim, ctl = make_controller () in
  let e = P4ir.Table.entry [ P4ir.Pattern.Exact 1L ] "act" in
  Runtime.Controller.delete ctl ~table:"t0" e;
  let eng = Nicsim.Exec.engine_exn (Nicsim.Sim.exec sim) "t0" in
  check_int "entry removed" 2 (Nicsim.Engine.num_entries eng)

let test_unknown_table_rejected () =
  let _, ctl = make_controller () in
  Alcotest.check_raises "unknown table" (Invalid_argument "Controller: unknown original table zz")
    (fun () ->
      Runtime.Controller.insert ctl ~table:"zz" (P4ir.Table.entry [ P4ir.Pattern.Exact 1L ] "act"))

let test_tick_produces_profile () =
  let sim, ctl = make_controller () in
  let rng = Stdx.Prng.create 2L in
  ignore (Nicsim.Sim.run_window sim ~duration:1.0 ~packets:500 ~source:(source rng));
  let report = Runtime.Controller.tick ctl in
  (* The folded profile must carry real action probabilities. *)
  let _, t0 = Option.get (P4ir.Program.find_table (program ()) "t0") in
  let p_act = Profile.action_prob report.Runtime.Controller.profile ~table:t0 ~action:"act" in
  let p_def = Profile.action_prob report.Runtime.Controller.profile ~table:t0 ~action:"def" in
  check_bool "probabilities sum to ~1" true (Float.abs (p_act +. p_def -. 1.) < 1e-6)

let test_redeploy_after_drop_shift () =
  (* An ACL at the end with a huge drop rate: the first tick should
     redeploy a layout that performs better. *)
  let acl =
    P4ir.Table.add_entry
      (P4ir.Builder.acl_table ~name:"acl" ~keys:[ P4ir.Builder.exact_key P4ir.Field.Udp_dport ] ())
      (P4ir.Table.entry [ P4ir.Pattern.Exact 666L ] "deny")
  in
  let prog =
    P4ir.Program.linear "rt2"
      ((List.mapi (fun i f -> mk_table (Printf.sprintf "t%d" i) f) fields)
      @ [ acl ])
  in
  let sim = Nicsim.Sim.create target prog in
  let config =
    { Runtime.Controller.default_config with
      min_relative_gain = 0.01;
      optimizer = { Pipeleon.Optimizer.default_config with top_k = 1.0 } }
  in
  let ctl = Runtime.Controller.create ~config sim ~original:prog in
  let rng = Stdx.Prng.create 4L in
  let src =
    Traffic.Workload.mark_fraction rng ~rate:0.7 ~field:P4ir.Field.Udp_dport ~value:666L
      (source rng)
  in
  ignore (Nicsim.Sim.run_window sim ~duration:5.0 ~packets:2000 ~source:src);
  let report = Runtime.Controller.tick ctl in
  check_bool "reoptimized" true report.Runtime.Controller.reoptimized;
  check_int "generation bumped" 1 (Runtime.Controller.generation ctl);
  (* The deployed program must keep behaviour: the denied packets still
     get dropped, at a lower average cost. *)
  let s2 = Nicsim.Sim.run_window sim ~duration:5.0 ~packets:2000 ~source:src in
  check_bool "drops preserved" true (s2.Nicsim.Sim.drop_fraction > 0.5);
  check_bool "throughput improved or equal" true
    (s2.Nicsim.Sim.throughput_gbps >= target.Costmodel.Target.line_rate_gbps *. 0.8)

let test_insert_survives_redeploy () =
  let sim, ctl = make_controller () in
  Runtime.Controller.insert ctl ~table:"t0" (P4ir.Table.entry [ P4ir.Pattern.Exact 99L ] "act");
  let r = Runtime.Controller.deploy ctl (program ()) in
  check_bool "deploy installed" true r.Runtime.Controller.installed;
  (* deploy installs the given IR; entries of surviving tables are
     carried over by the simulator's live reconfiguration. *)
  let eng = Nicsim.Exec.engine_exn (Nicsim.Sim.exec sim) "t0" in
  check_bool "entry survived" true
    (fst (Nicsim.Engine.lookup eng (Nicsim.Packet.of_fields [ (P4ir.Field.Ipv4_src, 99L) ])) <> None)

let test_downtime_advances_clock () =
  let config = { Runtime.Controller.default_config with reconfig_downtime = 3.0 } in
  let sim, ctl = make_controller ~config () in
  let before = Nicsim.Sim.now sim in
  let r = Runtime.Controller.deploy ctl (program ()) in
  check_bool "downtime charged" true (Nicsim.Sim.now sim -. before >= 3.0);
  Alcotest.(check (float 1e-9)) "report matches clock"
    (Nicsim.Sim.now sim -. before) r.Runtime.Controller.downtime_seconds

(* --- monitors --- *)

(* One auto-insert cache ("c") fronting table t1 — the smallest program
   the hit-rate monitor can run on. *)
let cache_prog () =
  let t1 = mk_table "t1" P4ir.Field.Ipv4_src in
  let cache = Pipeleon.Cache.build ~name:"c" [ t1 ] in
  let prog = P4ir.Program.empty "m" in
  let prog, id1 = P4ir.Program.add_node prog (P4ir.Program.Table (t1, P4ir.Program.Uniform None)) in
  let branches =
    List.map
      (fun (a : P4ir.Action.t) ->
        if String.equal a.name "miss" then (a.name, Some id1) else (a.name, None))
      cache.P4ir.Table.actions
  in
  let prog, idc = P4ir.Program.add_node prog (P4ir.Program.Table (cache, P4ir.Program.Per_action branches)) in
  P4ir.Program.with_root prog (Some idc)

let cache_observed ~miss =
  Profile.set_table "c"
    { Profile.action_probs = [ ("miss", miss); (Profile.Counter_map.fuse [ ("t1", "act") ], 1. -. miss) ];
      update_rate = 0.;
      locality = -1. }
    Profile.empty

let test_monitor_low_hit_rate () =
  let issues = Runtime.Monitor.check ~observed:(cache_observed ~miss:0.95) (cache_prog ()) in
  check_bool "low hit flagged" true
    (List.exists (function Runtime.Monitor.Low_hit_rate _ -> true | _ -> false) issues)

let test_monitor_threshold_edges () =
  let prog = cache_prog () in
  (* expected = default cache hit (0.9); slack 0.4 puts the boundary at
     an exactly-representable 0.5. Exactly at the boundary is healthy —
     the comparison is strict. *)
  let th = { Runtime.Monitor.default_thresholds with hit_rate_slack = 0.4 } in
  let at_boundary = Runtime.Monitor.check ~thresholds:th ~observed:(cache_observed ~miss:0.5) prog in
  check_bool "exactly at slack is healthy" true (at_boundary = []);
  let below = Runtime.Monitor.check ~thresholds:th ~observed:(cache_observed ~miss:0.51) prog in
  check_bool "below slack is flagged" true
    (List.exists (function Runtime.Monitor.Low_hit_rate _ -> true | _ -> false) below);
  (* A cache that saw no traffic produces no stats — and no issue: silence
     is not evidence of underperformance. *)
  check_bool "zero-traffic cache is healthy" true
    (Runtime.Monitor.check ~observed:Profile.empty prog = []);
  (* Update rate exactly at the limit is healthy; above it storms. *)
  let t1 = mk_table "t1" P4ir.Field.Ipv4_src and t2 = mk_table "t2" P4ir.Field.Ipv4_dst in
  let merged = Pipeleon.Merge.build_ternary ~name:"m12" [ t1; t2 ] in
  let mprog = P4ir.Program.linear "m" [ merged ] in
  let with_rate rate =
    Profile.set_table "m12"
      { Profile.action_probs = []; update_rate = rate; locality = -1. }
      Profile.empty
  in
  let limit = Runtime.Monitor.default_thresholds.Runtime.Monitor.update_limit in
  check_bool "exactly at update limit is healthy" true
    (Runtime.Monitor.check ~observed:(with_rate limit) mprog = []);
  check_bool "above update limit storms" true
    (List.exists
       (function Runtime.Monitor.Update_storm _ -> true | _ -> false)
       (Runtime.Monitor.check ~observed:(with_rate (limit +. 1.)) mprog));
  (* Merged-entry count exactly at the limit is healthy. *)
  let n = P4ir.Table.num_entries merged in
  let th_at = { Runtime.Monitor.default_thresholds with entry_limit = n } in
  let th_under = { Runtime.Monitor.default_thresholds with entry_limit = n - 1 } in
  check_bool "exactly at entry limit is healthy" true
    (Runtime.Monitor.check ~thresholds:th_at ~observed:Profile.empty mprog = []);
  check_bool "above entry limit is a blowup" true
    (List.exists
       (function Runtime.Monitor.Merged_blowup _ -> true | _ -> false)
       (Runtime.Monitor.check ~thresholds:th_under ~observed:Profile.empty mprog))

let test_monitor_storm_on_regular_table () =
  (* check (unlike the deprecated assess) reports storms on any table:
     re-optimizing a regular table mid-storm would churn, so the
     controller needs to see it to shed the work. *)
  let prog = P4ir.Program.linear "r" [ mk_table "t1" P4ir.Field.Ipv4_src ] in
  let observed =
    Profile.set_table "t1"
      { Profile.action_probs = []; update_rate = 50_000.; locality = -1. }
      Profile.empty
  in
  check_bool "regular-table storm flagged" true
    (List.exists
       (function Runtime.Monitor.Update_storm { table = "t1"; _ } -> true | _ -> false)
       (Runtime.Monitor.check ~observed prog))

let test_monitor_update_storm () =
  let t1 = mk_table "t1" P4ir.Field.Ipv4_src and t2 = mk_table "t2" P4ir.Field.Ipv4_dst in
  let merged = Pipeleon.Merge.build_ternary ~name:"m12" [ t1; t2 ] in
  let prog = P4ir.Program.linear "m" [ merged ] in
  let observed =
    Profile.set_table "m12"
      { Profile.action_probs = []; update_rate = 50_000.; locality = -1. }
      Profile.empty
  in
  let issues = Runtime.Monitor.check ~observed prog in
  check_bool "storm flagged" true
    (List.exists (function Runtime.Monitor.Update_storm _ -> true | _ -> false) issues)

(* --- self-healing: rollback, retry, backoff, blacklist, repair --- *)

let extended_program () =
  P4ir.Program.linear "rt"
    ((List.mapi (fun i f -> mk_table (Printf.sprintf "t%d" i) f) fields)
    @ [ mk_table "extra" P4ir.Field.Udp_dport ])

let test_persistent_deploy_failure_rolls_back () =
  (* Every install attempt fails: the data plane must end up exactly
     where it started — same layout, same generation, same live entries
     (including ones inserted after creation). *)
  let faults =
    { Runtime.Faults.disabled with Runtime.Faults.enabled = true; deploy_fail_burst = max_int }
  in
  let config =
    { Runtime.Controller.default_config with
      faults;
      deploy_retries = 1;
      backoff_base = 0.1;
      backoff_cap = 0.2 }
  in
  let sim, ctl = make_controller ~config () in
  Runtime.Controller.insert ctl ~table:"t0" (P4ir.Table.entry [ P4ir.Pattern.Exact 77L ] "act");
  let r = Runtime.Controller.deploy ctl (extended_program ()) in
  check_bool "not installed" false r.Runtime.Controller.installed;
  check_int "one retry made" 2 r.Runtime.Controller.attempts;
  check_int "every attempt rolled back" 2 r.Runtime.Controller.rollbacks;
  check_bool "failure reason surfaced" true (r.Runtime.Controller.failure <> None);
  check_int "generation unchanged" 0 (Runtime.Controller.generation ctl);
  check_int "report agrees on generation" 0 r.Runtime.Controller.generation;
  check_bool "extra table never materialized" true
    (P4ir.Program.find_table (Runtime.Controller.deployed_program ctl) "extra" = None);
  let eng = Nicsim.Exec.engine_exn (Nicsim.Sim.exec sim) "t0" in
  check_int "live entries restored by rollback" 4 (Nicsim.Engine.num_entries eng)

let test_transient_deploy_failure_retries () =
  (* First attempt fails, the retry lands. The failed attempt rolls back
     (counted, with telemetry), the backoff wait advances the emulated
     clock but is not billed as downtime. *)
  let tel = Telemetry.create () in
  let faults =
    { Runtime.Faults.disabled with Runtime.Faults.enabled = true; deploy_fail_burst = 1 }
  in
  let config = { Runtime.Controller.default_config with faults } in
  let sim = Nicsim.Sim.create ~telemetry:tel target (program ()) in
  let ctl = Runtime.Controller.create ~config sim ~original:(program ()) in
  let before = Nicsim.Sim.now sim in
  let r = Runtime.Controller.deploy ctl (extended_program ()) in
  check_bool "installed on retry" true r.Runtime.Controller.installed;
  check_int "two attempts" 2 r.Runtime.Controller.attempts;
  check_int "one rollback" 1 r.Runtime.Controller.rollbacks;
  check_int "generation bumped once" 1 (Runtime.Controller.generation ctl);
  check_bool "extra table live" true
    (P4ir.Program.find_table (Runtime.Controller.deployed_program ctl) "extra" <> None);
  check_bool "backoff waited on the clock, outside downtime" true
    (Nicsim.Sim.now sim -. before > r.Runtime.Controller.downtime_seconds);
  let m = Telemetry.metrics tel in
  check_bool "rollback counted" true
    (Telemetry.Metrics.find_counter m "runtime.remediations.rollback" = Some 1);
  check_bool "retry counted" true
    (Telemetry.Metrics.find_counter m "runtime.remediations.retry" = Some 1)

let test_backoff_deterministic () =
  let b failures = Runtime.Remediate.backoff ~base:0.5 ~cap:8. ~failures in
  let chk name want got = Alcotest.(check (float 0.)) name want got in
  chk "no failures, no wait" 0. (b 0);
  chk "first retry" 0.5 (b 1);
  chk "doubles" 1.0 (b 2);
  chk "doubles again" 2.0 (b 3);
  chk "caps" 8. (b 5);
  chk "stays capped" 8. (b 9);
  (* Same seed, same config: the whole retry schedule replays on the
     emulated clock bit-for-bit. *)
  let run () =
    let faults =
      { Runtime.Faults.disabled with
        Runtime.Faults.enabled = true;
        deploy_fail_burst = 2;
        deploy_fail_prob = 0.3;
        seed = 11 }
    in
    let config = { Runtime.Controller.default_config with faults; deploy_retries = 3 } in
    let sim, ctl = make_controller ~config () in
    ignore (Runtime.Controller.deploy ctl (extended_program ()));
    Nicsim.Sim.now sim
  in
  chk "same clock twice" (run ()) (run ())

let test_blacklist_ttl () =
  let ex = ("t0", Pipeleon.Candidate.Cache_seg) in
  let bl = Runtime.Remediate.create_blacklist () in
  Runtime.Remediate.ban bl ~now:1 ~ttl:2 ex;
  check_bool "in force next tick" true (Runtime.Remediate.banned bl ~now:2 ex);
  check_bool "expired at now + ttl" false (Runtime.Remediate.banned bl ~now:3 ex);
  let bl = Runtime.Remediate.create_blacklist () in
  Runtime.Remediate.ban bl ~now:1 ~ttl:2 ex;
  Runtime.Remediate.ban bl ~now:2 ~ttl:2 ex;
  check_bool "re-ban extends" true (Runtime.Remediate.banned bl ~now:3 ex);
  check_bool "extension also expires" false (Runtime.Remediate.banned bl ~now:4 ex);
  let bl = Runtime.Remediate.create_blacklist () in
  Runtime.Remediate.ban bl ~now:0 ~ttl:3 ("b", Pipeleon.Candidate.Merge_ternary_seg);
  Runtime.Remediate.ban bl ~now:0 ~ttl:3 ("a", Pipeleon.Candidate.Cache_seg);
  Runtime.Remediate.ban bl ~now:0 ~ttl:1 ("z", Pipeleon.Candidate.Cache_seg);
  check_bool "active prunes expired and sorts" true
    (Runtime.Remediate.active bl ~now:2
    = [ ("a", Pipeleon.Candidate.Cache_seg); ("b", Pipeleon.Candidate.Merge_ternary_seg) ])

let test_exclusions_prevent_reselection () =
  (* The fixture where caching reliably wins (exact chain, 95% estimated
     hit rate): banning Cache_seg over every original table — what
     remediation does after evicting a cold cache — must keep the
     optimizer from re-selecting any cache. *)
  let prog = program () in
  let prof = Profile.with_default_cache_hit 0.95 (Profile.uniform prog) in
  let config = { Pipeleon.Optimizer.default_config with Pipeleon.Optimizer.top_k = 1.0 } in
  let has_cache (r : Pipeleon.Optimizer.result) =
    List.exists
      (fun (_, (t : P4ir.Table.t)) ->
        match t.P4ir.Table.role with P4ir.Table.Cache _ -> true | _ -> false)
      (P4ir.Program.tables r.Pipeleon.Optimizer.program)
  in
  let baseline = Pipeleon.Optimizer.optimize ~config target prof prog in
  check_bool "cache selected without exclusions" true (has_cache baseline);
  let exclusions =
    List.map
      (fun (_, (t : P4ir.Table.t)) -> (t.P4ir.Table.name, Pipeleon.Candidate.Cache_seg))
      (P4ir.Program.tables prog)
  in
  let banned = Pipeleon.Optimizer.optimize ~config ~exclusions target prof prog in
  check_bool "no cache under blacklist" false (has_cache banned)

let test_update_faults_repaired () =
  (* Every control-plane op is dropped in flight: read-back verification
     must notice and repair, so the engines still converge to exactly
     what the API was told. *)
  let tel = Telemetry.create () in
  let faults =
    { Runtime.Faults.disabled with Runtime.Faults.enabled = true; update_drop_prob = 1.0 }
  in
  let config = { Runtime.Controller.default_config with faults } in
  let sim = Nicsim.Sim.create ~telemetry:tel target (program ()) in
  let ctl = Runtime.Controller.create ~config sim ~original:(program ()) in
  Runtime.Controller.insert ctl ~table:"t0" (P4ir.Table.entry [ P4ir.Pattern.Exact 77L ] "act");
  Runtime.Controller.delete ctl ~table:"t0" (P4ir.Table.entry [ P4ir.Pattern.Exact 1L ] "act");
  let eng = Nicsim.Exec.engine_exn (Nicsim.Sim.exec sim) "t0" in
  check_int "dropped ops repaired" 3 (Nicsim.Engine.num_entries eng);
  check_bool "inserted entry reachable" true
    (fst (Nicsim.Engine.lookup eng (Nicsim.Packet.of_fields [ (P4ir.Field.Ipv4_src, 77L) ])) <> None);
  check_bool "repairs counted" true
    (Telemetry.Metrics.find_counter (Telemetry.metrics tel) "runtime.remediations.update_repair"
    = Some 2);
  (* Corrupted insert: lands with a wrong action, read-back repairs it to
     the right one. *)
  let faults =
    { Runtime.Faults.disabled with Runtime.Faults.enabled = true; update_corrupt_prob = 1.0 }
  in
  let config = { Runtime.Controller.default_config with faults } in
  let sim2 = Nicsim.Sim.create target (program ()) in
  let ctl2 = Runtime.Controller.create ~config sim2 ~original:(program ()) in
  Runtime.Controller.insert ctl2 ~table:"t0" (P4ir.Table.entry [ P4ir.Pattern.Exact 88L ] "act");
  let eng2 = Nicsim.Exec.engine_exn (Nicsim.Sim.exec sim2) "t0" in
  match fst (Nicsim.Engine.lookup eng2 (Nicsim.Packet.of_fields [ (P4ir.Field.Ipv4_src, 88L) ])) with
  | None -> Alcotest.fail "corrupted insert vanished"
  | Some (e : P4ir.Table.entry) ->
    Alcotest.(check string) "corruption repaired to the requested action" "act" e.P4ir.Table.action

(* --- incremental reconfiguration --- *)

let test_incremental_diff () =
  let prog = program () in
  let renamed =
    P4ir.Program.linear "rt"
      (mk_table "t0" P4ir.Field.Ipv4_src
      :: mk_table "brand_new" P4ir.Field.Udp_sport
      :: List.filteri (fun i _ -> i >= 2)
           (List.mapi (fun i f -> mk_table (Printf.sprintf "t%d" i) f) fields))
  in
  let changes = Runtime.Incremental.diff ~old_program:prog ~new_program:renamed in
  check_bool "t1 removed" true (List.mem (Runtime.Incremental.Removed "t1") changes);
  check_bool "brand_new added" true (List.mem (Runtime.Incremental.Added "brand_new") changes);
  check_int "two rebuilds" 2 (Runtime.Incremental.rebuild_count changes);
  (* Entry-only changes are not rebuilds. *)
  let more_entries =
    P4ir.Program.linear "rt"
      (mk_table ~entries:5 "t0" P4ir.Field.Ipv4_src
      :: List.filteri (fun i _ -> i >= 1)
           (List.mapi (fun i f -> mk_table (Printf.sprintf "t%d" i) f) fields))
  in
  let changes = Runtime.Incremental.diff ~old_program:prog ~new_program:more_entries in
  check_bool "entries_changed" true
    (List.mem (Runtime.Incremental.Entries_changed "t0") changes);
  check_int "no rebuilds" 0 (Runtime.Incremental.rebuild_count changes)

let test_hot_patch_preserves_state () =
  let sim = Nicsim.Sim.create target (program ()) in
  Nicsim.Sim.insert sim ~table:"t0" (P4ir.Table.entry [ P4ir.Pattern.Exact 77L ] "act");
  let rng = Stdx.Prng.create 3L in
  ignore (Nicsim.Sim.run_window sim ~duration:1.0 ~packets:200 ~source:(source rng));
  let counters_before =
    Profile.Counter.owner_total (Nicsim.Exec.counters (Nicsim.Sim.exec sim)) "t0"
  in
  (* Patch in a layout that keeps t0..t3 and adds one table. *)
  let extended =
    P4ir.Program.linear "rt"
      ((List.mapi (fun i f -> mk_table (Printf.sprintf "t%d" i) f) fields)
      @ [ mk_table "extra" P4ir.Field.Udp_dport ])
  in
  let rebuilt = Nicsim.Sim.hot_patch sim extended in
  check_int "only the new table rebuilt" 1 rebuilt;
  let eng = Nicsim.Exec.engine_exn (Nicsim.Sim.exec sim) "t0" in
  check_int "dynamic entries survive" 4 (Nicsim.Engine.num_entries eng);
  let counters_after =
    Profile.Counter.owner_total (Nicsim.Exec.counters (Nicsim.Sim.exec sim)) "t0"
  in
  check_bool "counters survive" true (Int64.equal counters_before counters_after)

let test_incremental_deploy_cheaper () =
  let run mode =
    let config =
      { Runtime.Controller.default_config with
        reconfig_downtime = 3.0;
        min_relative_gain = 1e9;
        deploy_mode = mode }
    in
    let sim, ctl = make_controller ~config () in
    let before = Nicsim.Sim.now sim in
    ignore (Runtime.Controller.deploy ctl (program ()));
    Nicsim.Sim.now sim -. before
  in
  let full = run Runtime.Controller.Full in
  let incr = run Runtime.Controller.Incremental in
  Alcotest.(check (float 1e-6)) "full pays everything" 3.0 full;
  (* Identical program: nothing rebuilt, no downtime at all. *)
  Alcotest.(check (float 1e-6)) "incremental pays nothing for a no-op" 0.0 incr

let drop_shift_controller ?(deploy_mode = Runtime.Controller.Full) ?(telemetry = Telemetry.null)
    ~reconfig_downtime () =
  let acl =
    P4ir.Table.add_entry
      (P4ir.Builder.acl_table ~name:"acl" ~keys:[ P4ir.Builder.exact_key P4ir.Field.Udp_dport ] ())
      (P4ir.Table.entry [ P4ir.Pattern.Exact 666L ] "deny")
  in
  let prog =
    P4ir.Program.linear "rt3"
      ((List.mapi (fun i f -> mk_table (Printf.sprintf "t%d" i) f) fields) @ [ acl ])
  in
  let sim = Nicsim.Sim.create ~telemetry target prog in
  let config =
    { Runtime.Controller.default_config with
      min_relative_gain = 0.01;
      reconfig_downtime;
      deploy_mode;
      optimizer = { Pipeleon.Optimizer.default_config with top_k = 1.0 } }
  in
  let ctl = Runtime.Controller.create ~config sim ~original:prog in
  let rng = Stdx.Prng.create 4L in
  let src =
    Traffic.Workload.mark_fraction rng ~rate:0.7 ~field:P4ir.Field.Udp_dport ~value:666L
      (source rng)
  in
  (sim, ctl, src)

let tick_deploy_seconds (report : Runtime.Controller.tick_report) =
  match report.Runtime.Controller.deploy with
  | Some d -> d.Runtime.Controller.downtime_seconds
  | None -> 0.

let test_tick_reports_deploy_seconds () =
  (* Full deploy charges the whole reconfiguration downtime; Incremental
     charges only per rebuilt table, and a tick that does not redeploy
     charges nothing. The tick's deploy report must equal what the
     simulated clock actually lost. *)
  let run mode =
    let sim, ctl, src = drop_shift_controller ~deploy_mode:mode ~reconfig_downtime:2.5 () in
    ignore (Nicsim.Sim.run_window sim ~duration:5.0 ~packets:2000 ~source:src);
    let before = Nicsim.Sim.now sim in
    let report = Runtime.Controller.tick ctl in
    check_bool "reoptimized" true report.Runtime.Controller.reoptimized;
    Alcotest.(check (float 1e-9)) "deploy downtime matches clock"
      (Nicsim.Sim.now sim -. before) (tick_deploy_seconds report);
    tick_deploy_seconds report
  in
  let full = run Runtime.Controller.Full in
  let incr = run Runtime.Controller.Incremental in
  Alcotest.(check (float 1e-9)) "full pays the whole downtime" 2.5 full;
  check_bool "incremental pays a strict fraction" true (incr < full);
  (* A quiet tick (no traffic since the redeploy) does not redeploy again
     and charges nothing. *)
  let sim, ctl, src = drop_shift_controller ~reconfig_downtime:2.5 () in
  ignore (Nicsim.Sim.run_window sim ~duration:5.0 ~packets:2000 ~source:src);
  ignore (Runtime.Controller.tick ctl);
  let quiet = Runtime.Controller.tick ctl in
  check_bool "quiet tick does not redeploy" false quiet.Runtime.Controller.reoptimized;
  check_bool "quiet tick attempts no deploy" true
    (quiet.Runtime.Controller.deploy = None)

let test_tick_records_runtime_metrics () =
  (* With a telemetry sink on the simulator, tick feeds the runtime.*
     metrics: tick/redeploy counters and the generation gauge. *)
  let tel = Telemetry.create () in
  let sim, ctl, src = drop_shift_controller ~telemetry:tel ~reconfig_downtime:0.5 () in
  ignore (Nicsim.Sim.run_window sim ~duration:5.0 ~packets:2000 ~source:src);
  let report = Runtime.Controller.tick ctl in
  check_bool "reoptimized" true report.Runtime.Controller.reoptimized;
  let m = Telemetry.metrics tel in
  check_bool "ticks counted" true
    (Telemetry.Metrics.find_counter m "runtime.ticks" = Some 1);
  check_bool "redeploys counted" true
    (Telemetry.Metrics.find_counter m "runtime.redeploys" = Some 1);
  check_bool "generation gauge" true
    (Telemetry.Metrics.find_gauge m "runtime.generation" = Some 1.);
  check_bool "deploy cost gauge" true
    (Telemetry.Metrics.find_gauge m "runtime.deploy_seconds"
    = Some (tick_deploy_seconds report));
  check_bool "optimizer ran under the same sink" true
    (Telemetry.Metrics.find_counter m "optimizer.runs" = Some 1)

let () =
  Alcotest.run "runtime"
    [ ( "api-mapping",
        [ Alcotest.test_case "insert reaches engine" `Quick test_insert_reaches_engine;
          Alcotest.test_case "delete roundtrip" `Quick test_delete_roundtrip;
          Alcotest.test_case "unknown table" `Quick test_unknown_table_rejected ] );
      ( "controller",
        [ Alcotest.test_case "tick profile" `Quick test_tick_produces_profile;
          Alcotest.test_case "redeploy on drop shift" `Quick test_redeploy_after_drop_shift;
          Alcotest.test_case "entries survive redeploy" `Quick test_insert_survives_redeploy;
          Alcotest.test_case "downtime" `Quick test_downtime_advances_clock;
          Alcotest.test_case "deploy seconds reported" `Quick test_tick_reports_deploy_seconds;
          Alcotest.test_case "runtime metrics" `Quick test_tick_records_runtime_metrics ] );
      ( "monitors",
        [ Alcotest.test_case "low hit rate" `Quick test_monitor_low_hit_rate;
          Alcotest.test_case "threshold edges" `Quick test_monitor_threshold_edges;
          Alcotest.test_case "storm on regular table" `Quick test_monitor_storm_on_regular_table;
          Alcotest.test_case "update storm" `Quick test_monitor_update_storm ] );
      ( "self-healing",
        [ Alcotest.test_case "persistent failure rolls back" `Quick
            test_persistent_deploy_failure_rolls_back;
          Alcotest.test_case "transient failure retries" `Quick
            test_transient_deploy_failure_retries;
          Alcotest.test_case "backoff deterministic" `Quick test_backoff_deterministic;
          Alcotest.test_case "blacklist ttl" `Quick test_blacklist_ttl;
          Alcotest.test_case "exclusions prevent re-selection" `Quick
            test_exclusions_prevent_reselection;
          Alcotest.test_case "update faults repaired" `Quick test_update_faults_repaired ] );
      ( "incremental",
        [ Alcotest.test_case "diff" `Quick test_incremental_diff;
          Alcotest.test_case "hot patch preserves state" `Quick test_hot_patch_preserves_state;
          Alcotest.test_case "deploy cost" `Quick test_incremental_deploy_cheaper ] ) ]
