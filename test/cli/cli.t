Every pipeleonc subcommand, exercised against the firewall example.
Timings are nondeterministic, so plan lines are stripped of them.

  $ PIPELEONC=../../bin/pipeleonc.exe
  $ FW=../../examples/firewall.p4l

validate accepts the example:

  $ $PIPELEONC validate $FW
  ok: 6 nodes, 5 tables

validate rejects a program with an undefined default action, and
fails cleanly:

  $ cat > bad.p4l <<'P4L'
  > program bad;
  > action a { nop; }
  > table t {
  >   key = { ipv4.src : exact; }
  >   actions = { a; }
  >   default_action = missing;
  >   size = 4;
  > }
  > control { apply t; }
  > P4L
  $ $PIPELEONC validate bad.p4l
  error: lowering error at line 3: default_action missing is not among the table's actions
  [1]

translate converts P4-lite to the JSON IR and back. The emitted P4-lite
is a fixpoint immediately; the JSON stabilizes one generation later
(conditional names are invented from source line numbers):

  $ $PIPELEONC translate $FW fw.json
  $ $PIPELEONC translate fw.json fw1.p4l
  $ $PIPELEONC translate fw1.p4l fw2.json
  $ $PIPELEONC translate fw2.json fw2.p4l
  $ $PIPELEONC translate fw2.p4l fw3.json
  $ cmp fw1.p4l fw2.p4l && echo stable
  stable
  $ cmp fw2.json fw3.json && echo stable
  stable

cost prints the model estimate:

  $ $PIPELEONC cost $FW
  expected latency: 13.949 units
  throughput estimate: 100.0 Gbps
  memory: 270 bytes

pipelets ranks hotspots:

  $ $PIPELEONC pipelets $FW
  pipelet{entry=5 tables=[5;4] exit=3} cost=2.688 reach=1.000
  pipelet{entry=0 tables=[0] exit=sink} cost=0.690 reach=0.312
  pipelet{entry=2 tables=[2;1] exit=0} cost=0.547 reach=0.250

graph emits DOT in both modes:

  $ $PIPELEONC graph $FW | head -3
  digraph "firewall" {
    rankdir=TB;
    sink [shape=doublecircle label="out"];
  $ $PIPELEONC graph --deps $FW | head -2
  digraph "firewall_deps" {
    rankdir=LR;

optimize rewrites the program; the plan goes to stderr (timing
stripped), the program to stdout or -o:

  $ $PIPELEONC optimize $FW -k 1.0 -o opt.p4l 2>&1 | sed 's/ time=[0-9.]*s$//'
  pipelets=3 considered=3 gain=1.630
    knapsack: options=13 pruned-to=3 dp-cells=127
    warm-cache: hits=0 misses=3 (0% hit rate)
    pipelet@5: gain=1.194 mem=+49152 upd=+1000.0 cache[0..1]
    pipelet@2: gain=0.186 mem=+57344 upd=+1000.0 cache[0..1]
    pipelet@0: gain=0.250 mem=+53248 upd=+1000.0 cache[0..0]
  $ $PIPELEONC validate opt.p4l
  ok: 9 nodes, 8 tables

profile replays a trace and emits the profile optimize consumes:

  $ cat > trace.csv <<'CSV'
  > ipv4.src,ipv4.dst,tcp.dport
  > 3405803783,3325256704,80
  > 167772161,3325256704,443
  > 3405803783,16909060,22
  > 3405803783,3325256704,8080
  > CSV
  $ $PIPELEONC profile $FW --trace trace.csv --packets 4 -o prof.json
  simulated 4 packets: latency 14.23, throughput 100.0 Gbps, drops 25.0%
  $ $PIPELEONC optimize $FW -k 1.0 -p prof.json -o opt2.p4l 2> /dev/null
  $ $PIPELEONC validate opt2.p4l
  ok: 8 nodes, 7 tables

fuzz runs a deterministic smoke budget (all oracles, fixed seed):

  $ $PIPELEONC fuzz --mode sim-diff --seed 1 --budget 20 --packets 16 --out none
  fuzz mode=sim-diff seed=1 budget=20 packets/case=16
  divergences=0 cases=20
  $ $PIPELEONC fuzz --mode optim-equiv --seed 1 --budget 20 --packets 16 --out none
  fuzz mode=optim-equiv seed=1 budget=20 packets/case=16
  divergences=0 cases=20
  $ $PIPELEONC fuzz --mode serialize-roundtrip --seed 1 --budget 10 --packets 16 --out none
  fuzz mode=serialize-roundtrip seed=1 budget=10 packets/case=16
  divergences=0 cases=10

chaos drives the self-healing runtime under injected faults. The fault
config deterministically fails the first deploy attempt of every
controller, so a clean run is itself the proof of the remediation path:
every injected deploy failure was rolled back to the last-known-good
layout and the retry converged (rollback count = retry count), dropped
and corrupted entry updates were caught by read-back and repaired, and
forwarding stayed bit-identical to the reference interpreter throughout
(divergences=0):

  $ $PIPELEONC chaos --seed 1 --budget 3 --packets 16 --out none --remediations
  fuzz mode=chaos seed=1 budget=3 packets/case=16
  remediations: rollback=4 retry=4 update_repair=8
  reversals: cache_evict=4 merge_split=0 shed=0
  divergences=0 cases=3
