The telemetry subcommand replays a workload with the metrics/tracing
sink enabled and dumps the registry. Everything below is deterministic:
the simulator runs on modeled time.

  $ PIPELEONC=../../bin/pipeleonc.exe
  $ FW=../../examples/firewall.p4l
  $ cat > trace.csv <<'CSV'
  > ipv4.src,ipv4.dst,tcp.dport
  > 3405803783,3325256704,80
  > 167772161,3325256704,443
  > 3405803783,16909060,22
  > 3405803783,3325256704,8080
  > CSV

Metrics registry as JSON (counters, window gauges, the latency
histogram with its log-bucketed quantiles):

  $ $PIPELEONC telemetry $FW --trace trace.csv --packets 8 --windows 2
  {
    "counters": {
      "nicsim.drops": 4,
      "nicsim.packets": 16,
      "nicsim.table.bogon_filter.hit": 4,
      "nicsim.table.bogon_filter.miss": 12,
      "nicsim.table.dpi_acl.hit": 0,
      "nicsim.table.dpi_acl.miss": 0,
      "nicsim.table.routing.hit": 12,
      "nicsim.table.routing.miss": 0,
      "nicsim.table.service_acl.hit": 0,
      "nicsim.table.service_acl.miss": 0,
      "nicsim.table.trusted_peers.hit": 12,
      "nicsim.table.trusted_peers.miss": 0,
      "nicsim.windows": 2
    },
    "gauges": {
      "nicsim.table.bogon_filter.entries": 3.0,
      "nicsim.table.dpi_acl.entries": 2.0,
      "nicsim.table.routing.entries": 2.0,
      "nicsim.table.service_acl.entries": 3.0,
      "nicsim.table.trusted_peers.entries": 2.0,
      "nicsim.window.avg_latency": 14.232750000000001,
      "nicsim.window.drop_fraction": 0.25,
      "nicsim.window.throughput_gbps": 100.0
    },
    "histograms": {
      "nicsim.latency": {
        "count": 16,
        "sum": 227.72400000000002,
        "mean": 14.232750000000001,
        "min": 12.137,
        "max": 15.598000000000003,
        "p50": 14.75,
        "p90": 15.598000000000003,
        "p99": 15.598000000000003,
        "p999": 15.598000000000003
      }
    }
  }

Prometheus exposition of the same run (names sanitized, histograms as
summaries):

  $ $PIPELEONC telemetry $FW --trace trace.csv --packets 8 --format prometheus | grep -A 4 '^# TYPE nicsim_latency summary'
  # TYPE nicsim_latency summary
  nicsim_latency{quantile="0.5"} 14.75
  nicsim_latency{quantile="0.9"} 15.598
  nicsim_latency{quantile="0.99"} 15.598
  nicsim_latency{quantile="0.999"} 15.598

Chrome-trace export: every sampled packet becomes one packet span plus
its per-node spans, all complete ("X") events.

  $ $PIPELEONC telemetry $FW --trace trace.csv --packets 64 --trace-sample 8 -o metrics.json --trace-out spans.json
  $ grep -c '"ph": "X"' spans.json
  40

The cache-hit short-circuit is visible in a trace of the optimized
program: profile a skewed workload, optimize, and replay — the
optimizer's flow caches produce "cache" spans with hit results, which
the unoptimized program cannot have. (The optimized program is kept in
the JSON IR: P4-lite has no cache-table syntax, so roles only survive
that form.)

  $ $PIPELEONC profile $FW --trace trace.csv --packets 2000 -o prof.json > /dev/null
  simulated 2000 packets: latency 14.23, throughput 100.0 Gbps, drops 25.0%
  $ $PIPELEONC optimize $FW -k 1.0 -p prof.json -o opt.json 2> /dev/null
  $ $PIPELEONC telemetry opt.json --trace trace.csv --packets 2000 --trace-sample 16 -o /dev/null --trace-out opt-spans.json
  $ grep -c '"cat": "cache"' opt-spans.json > /dev/null && echo optimized trace has cache spans
  optimized trace has cache spans
  $ grep -A 10 '"cat": "cache"' opt-spans.json | grep -q '"result": "hit"' && echo and cache hits short-circuit
  and cache hits short-circuit
  $ $PIPELEONC telemetry $FW --trace trace.csv --packets 2000 --trace-sample 16 -o /dev/null --trace-out fw-spans.json
  $ grep -c '"cat": "cache"' fw-spans.json
  0
  [1]
