(* Tests for the telemetry subsystem: histogram bucketing and quantile
   error bounds, lossless merges (the property that makes sharded window
   stats exact), the metrics registry, the trace ring, the sink facade,
   and the nicsim integration (driver-independent metrics, observe-only
   stats, deterministic trace sampling). *)

module H = Telemetry.Histogram
module M = Telemetry.Metrics
module Tr = Telemetry.Trace

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* --- histogram --- *)

let test_hist_empty () =
  let h = H.create () in
  check_int "count" 0 (H.count h);
  check_bool "mean nan" true (Float.is_nan (H.mean h));
  check_bool "quantile nan" true (Float.is_nan (H.quantile h 0.5))

let test_hist_single_sample_exact () =
  (* A single sample is reproduced exactly: the bucket upper bound is
     clamped to the recorded maximum. *)
  let h = H.create () in
  H.record h 17.3;
  check_bool "p50 exact" true (Float.equal (H.quantile h 0.5) 17.3);
  check_bool "p100 exact" true (Float.equal (H.quantile h 1.0) 17.3);
  check_bool "min" true (Float.equal (H.min_value h) 17.3);
  check_bool "max" true (Float.equal (H.max_value h) 17.3)

let test_hist_zero_bucket () =
  let h = H.create () in
  H.record h 0.;
  H.record h (-3.);
  H.record h Float.nan;
  check_int "all landed" 3 (H.count h);
  check_bool "quantile reports zero" true (Float.equal (H.quantile h 0.9) 0.)

(* Positive floats across many octaves, well inside the representable
   range (octaves 2^-64 .. 2^64). *)
let gen_pos =
  QCheck2.Gen.(
    map2
      (fun m e -> Float.ldexp (1. +. m) e)
      (float_bound_inclusive 0.999) (int_range (-40) 40))

let prop_bucket_bounds =
  qtest ~count:500 "bucket bounds hold" gen_pos (fun v ->
      let h = H.create () in
      H.record h v;
      match H.nonzero_buckets h with
      | [ (lo, hi, 1) ] ->
        lo <= v && v < hi && hi <= lo *. (1. +. H.relative_error h) *. (1. +. 1e-12)
      | _ -> false)

let gen_samples =
  QCheck2.Gen.(list_size (int_range 1 300) gen_pos)

let prop_quantile_error_bound =
  qtest ~count:200 "quantile within relative error" gen_samples (fun vs ->
      let h = H.create () in
      List.iter (H.record h) vs;
      let sorted = List.sort Float.compare vs in
      let n = List.length vs in
      List.for_all
        (fun q ->
          let rank = max 1 (int_of_float (Float.ceil (q *. float_of_int n))) in
          let exact = List.nth sorted (rank - 1) in
          let est = H.quantile h q in
          est >= exact *. (1. -. 1e-12)
          && est <= exact *. (1. +. H.relative_error h +. 1e-9))
        [ 0.5; 0.9; 0.99; 1.0 ])

(* The property behind exact sharded quantiles: recording a sample list
   across k shard histograms and merging is indistinguishable — bucket
   by bucket, and therefore quantile by quantile — from recording into
   one histogram, whatever the split. *)
let gen_sharded =
  QCheck2.Gen.(
    pair (list_size (int_range 0 300) gen_pos) (int_range 1 8))

let prop_merge_equals_single =
  qtest ~count:200 "merged shards == single histogram" gen_sharded (fun (vs, k) ->
      let whole = H.create () in
      List.iter (H.record whole) vs;
      let shards = Array.init k (fun _ -> H.create ()) in
      List.iteri (fun i v -> H.record shards.(i mod k) v) vs;
      let merged = H.create () in
      Array.iter (fun s -> H.merge_into ~dst:merged ~src:s) shards;
      let same_float a b =
        (Float.is_nan a && Float.is_nan b) || Float.equal a b
      in
      H.bucket_counts merged = H.bucket_counts whole
      && H.count merged = H.count whole
      && same_float (H.min_value merged) (H.min_value whole)
      && same_float (H.max_value merged) (H.max_value whole)
      && List.for_all
           (fun q -> same_float (H.quantile merged q) (H.quantile whole q))
           [ 0.; 0.5; 0.9; 0.99; 0.999; 1. ]
      (* Sums are added in a different order, so only approximately equal. *)
      && (H.count whole = 0
         || Float.abs (H.sum merged -. H.sum whole)
            <= 1e-9 *. Float.max 1. (Float.abs (H.sum whole))))

let test_hist_merge_sub_bits_mismatch () =
  let a = H.create ~sub_bits:5 () and b = H.create ~sub_bits:6 () in
  Alcotest.check_raises "mismatch rejected"
    (Invalid_argument "Histogram.merge_into: sub_bits mismatch") (fun () ->
      H.merge_into ~dst:a ~src:b)

(* --- metrics registry --- *)

let test_metrics_basic () =
  let m = M.create () in
  let c = M.counter m "a.count" in
  M.inc c;
  M.inc ~by:4 c;
  (* Registration is idempotent: same name, same underlying cell. *)
  M.inc (M.counter m "a.count");
  check_bool "counter value" true (M.find_counter m "a.count" = Some 6);
  let g = M.gauge m "b.gauge" in
  M.set g 2.5;
  M.set g 3.5;
  check_bool "gauge keeps latest" true (M.find_gauge m "b.gauge" = Some 3.5);
  let h = M.histogram m "c.hist" in
  H.record h 10.;
  check_bool "histogram registered" true
    (match M.find_histogram m "c.hist" with Some h -> H.count h = 1 | None -> false);
  Alcotest.(check (list string)) "names sorted" [ "a.count"; "b.gauge"; "c.hist" ] (M.names m)

let test_metrics_kind_mismatch () =
  let m = M.create () in
  ignore (M.counter m "x");
  check_bool "re-registering as a different kind raises" true
    (try
       ignore (M.gauge m "x");
       false
     with Invalid_argument _ -> true)

let test_metrics_merge () =
  let dst = M.create () and src = M.create () in
  M.inc ~by:2 (M.counter dst "shared");
  M.inc ~by:3 (M.counter src "shared");
  M.inc ~by:5 (M.counter src "only.src");
  M.set (M.gauge src "g") 7.;
  H.record (M.histogram dst "h") 1.;
  H.record (M.histogram src "h") 2.;
  M.merge_into ~dst ~src;
  check_bool "counters add" true (M.find_counter dst "shared" = Some 5);
  check_bool "missing metrics registered on the fly" true
    (M.find_counter dst "only.src" = Some 5);
  check_bool "gauge adopted" true (M.find_gauge dst "g" = Some 7.);
  check_bool "histograms merge" true
    (match M.find_histogram dst "h" with Some h -> H.count h = 2 | None -> false)

let test_metrics_prometheus_sanitized () =
  let m = M.create () in
  M.inc (M.counter m "nicsim.table.t-0.hit");
  let text = M.to_prometheus m in
  let contains s sub =
    let n = String.length s and k = String.length sub in
    let rec go i = i + k <= n && (String.sub s i k = sub || go (i + 1)) in
    go 0
  in
  check_bool "dots and dashes sanitized" true (contains text "nicsim_table_t_0_hit")

(* --- trace ring --- *)

let span i =
  { Tr.name = Printf.sprintf "s%d" i; cat = "test"; ts = float_of_int i;
    dur = 1.; tid = i; args = [] }

let test_trace_ring_overwrite () =
  let t = Tr.create ~capacity:4 () in
  for i = 0 to 5 do Tr.add t (span i) done;
  check_int "length capped" 4 (Tr.length t);
  check_int "dropped" 2 (Tr.dropped t);
  Alcotest.(check (list string)) "oldest-first survivors" [ "s2"; "s3"; "s4"; "s5" ]
    (List.map (fun (s : Tr.span) -> s.Tr.name) (Tr.spans t));
  Tr.clear t;
  check_int "clear resets length" 0 (Tr.length t);
  check_int "clear resets dropped" 0 (Tr.dropped t)

let test_trace_chrome_json () =
  let t = Tr.create ~capacity:8 () in
  Tr.add t { (span 0) with args = [ ("result", "hit") ] };
  let json = P4ir.Json.to_string (Tr.to_chrome_json ~process_name:"proc" t) in
  let contains sub =
    let n = String.length json and k = String.length sub in
    let rec go i = i + k <= n && (String.sub json i k = sub || go (i + 1)) in
    go 0
  in
  check_bool "traceEvents present" true (contains "\"traceEvents\"");
  check_bool "complete event" true (contains "\"X\"");
  check_bool "span name" true (contains "\"s0\"");
  check_bool "args surface" true (contains "\"hit\"");
  check_bool "process metadata" true (contains "process_name")

(* --- sink facade --- *)

let test_null_sink () =
  check_bool "disabled" false (Telemetry.enabled Telemetry.null);
  check_bool "no ring" true (Telemetry.trace Telemetry.null = None);
  check_bool "never samples" false (Telemetry.should_trace Telemetry.null ~seq:0);
  check_bool "fork stays disabled" false (Telemetry.enabled (Telemetry.fork Telemetry.null));
  (* add_span and merge_into must be harmless no-ops. *)
  Telemetry.add_span Telemetry.null (span 0);
  Telemetry.merge_into ~dst:Telemetry.null ~src:(Telemetry.create ())

let test_should_trace_cadence () =
  let tel = Telemetry.create ~trace_capacity:16 ~trace_sample_every:5 () in
  check_bool "seq 0" true (Telemetry.should_trace tel ~seq:0);
  check_bool "seq 5" true (Telemetry.should_trace tel ~seq:5);
  check_bool "seq 1" false (Telemetry.should_trace tel ~seq:1);
  check_bool "seq 4" false (Telemetry.should_trace tel ~seq:4);
  (* Metrics-only sinks never sample. *)
  check_bool "no ring, no sampling" false
    (Telemetry.should_trace (Telemetry.create ()) ~seq:0)

let test_fork_merge () =
  let parent = Telemetry.create ~trace_capacity:16 () in
  M.inc ~by:2 (M.counter (Telemetry.metrics parent) "n");
  let shard = Telemetry.fork parent in
  check_bool "fork enabled" true (Telemetry.enabled shard);
  check_bool "fork carries no ring" true (Telemetry.trace shard = None);
  check_bool "fork registry is fresh" true
    (M.find_counter (Telemetry.metrics shard) "n" = None);
  M.inc ~by:3 (M.counter (Telemetry.metrics shard) "n");
  Telemetry.merge_into ~dst:parent ~src:shard;
  check_bool "merge folds the shard back" true
    (M.find_counter (Telemetry.metrics parent) "n" = Some 5)

(* --- nicsim integration --- *)

let target = Costmodel.Target.bluefield2

let mk_table name field =
  P4ir.Table.make ~name
    ~keys:[ P4ir.Builder.exact_key field ]
    ~actions:[ P4ir.Builder.forward_action "act"; P4ir.Action.nop "def" ]
    ~default_action:"def"
    ~entries:
      (List.init 3 (fun j -> P4ir.Table.entry [ P4ir.Pattern.Exact (Int64.of_int j) ] "act"))
    ()

let program () =
  P4ir.Program.linear "tel"
    [ mk_table "t0" P4ir.Field.Ipv4_src; mk_table "t1" P4ir.Field.Ipv4_dst ]

let source seed =
  let rng = Stdx.Prng.create seed in
  let flows =
    Traffic.Workload.random_flows rng ~n:64
      ~fields:[ P4ir.Field.Ipv4_src; P4ir.Field.Ipv4_dst ]
  in
  Traffic.Workload.of_flows rng flows

let run_with_sink driver =
  let tel = Telemetry.create () in
  let sim = Nicsim.Sim.create ~telemetry:tel target (program ()) in
  ignore (driver sim (source 9L));
  Telemetry.metrics tel

let metrics_equal name ma mb =
  Alcotest.(check (list string)) (name ^ ": same metric names") (M.names ma) (M.names mb);
  List.iter
    (fun n ->
      (match (M.find_counter ma n, M.find_counter mb n) with
      | Some a, Some b -> check_int (Printf.sprintf "%s: counter %s" name n) a b
      | None, None -> ()
      | _ -> Alcotest.failf "%s: counter %s present on one side only" name n);
      (match (M.find_gauge ma n, M.find_gauge mb n) with
      | Some a, Some b ->
        check_bool (Printf.sprintf "%s: gauge %s" name n) true (Float.equal a b)
      | None, None -> ()
      | _ -> Alcotest.failf "%s: gauge %s present on one side only" name n);
      match (M.find_histogram ma n, M.find_histogram mb n) with
      | Some a, Some b ->
        check_bool (Printf.sprintf "%s: histogram %s buckets" name n) true
          (H.bucket_counts a = H.bucket_counts b)
      | None, None -> ()
      | _ -> Alcotest.failf "%s: histogram %s present on one side only" name n)
    (M.names ma)

let test_sim_metrics_driver_independent () =
  (* Sequential, batched, and sharded windows must land the exact same
     counters and histogram buckets: batching only changes dispatch, and
     parallel shards record into forked registries merged losslessly. *)
  let seq = run_with_sink (fun sim source ->
      Nicsim.Sim.run_window sim ~duration:1.0 ~packets:600 ~source)
  in
  let batched = run_with_sink (fun sim source ->
      Nicsim.Sim.run_window_batched ~batch:7 sim ~duration:1.0 ~packets:600 ~source)
  in
  let parallel = run_with_sink (fun sim source ->
      Nicsim.Sim.run_window_parallel ~domains:3 sim ~duration:1.0 ~packets:600 ~source)
  in
  check_bool "packets counted" true (M.find_counter seq "nicsim.packets" = Some 600);
  check_bool "latency histogram filled" true
    (match M.find_histogram seq "nicsim.latency" with
    | Some h -> H.count h = 600
    | None -> false);
  metrics_equal "batched" seq batched;
  metrics_equal "parallel" seq parallel

let stats_bits (s : Nicsim.Sim.window_stats) =
  List.map Int64.bits_of_float
    [ s.window_start; s.window_duration; s.avg_latency; s.p99_latency; s.p50_latency;
      s.p90_latency; s.p999_latency; s.throughput_gbps; s.drop_fraction ]

let test_sim_stats_observe_only () =
  (* The sink must not perturb the simulation: stats with a full
     metrics+tracing sink are bit-identical to stats with the null sink. *)
  let run tel =
    let sim = Nicsim.Sim.create ~telemetry:tel target (program ()) in
    Nicsim.Sim.run_window sim ~duration:1.0 ~packets:600 ~source:(source 9L)
  in
  let plain = run Telemetry.null in
  let observed = run (Telemetry.create ~trace_capacity:4096 ~trace_sample_every:7 ()) in
  check_bool "stats bit-identical" true (stats_bits plain = stats_bits observed);
  check_int "sampled packets" plain.Nicsim.Sim.sampled_packets
    observed.Nicsim.Sim.sampled_packets

let test_sim_trace_sampling () =
  let tel = Telemetry.create ~trace_capacity:4096 ~trace_sample_every:7 () in
  let sim = Nicsim.Sim.create ~telemetry:tel target (program ()) in
  ignore (Nicsim.Sim.run_window sim ~duration:1.0 ~packets:100 ~source:(source 9L));
  let ring = Option.get (Telemetry.trace tel) in
  let spans = Tr.spans ring in
  check_bool "spans collected" true (spans <> []);
  check_bool "only sampled sequence numbers" true
    (List.for_all (fun (s : Tr.span) -> s.Tr.tid mod 7 = 0) spans);
  (* Sequence numbers are 1-based, so 100 packets sample seq 7, 14, ...,
     98: 14 packets, one packet-level span each, plus per-node spans. *)
  check_int "one packet span per sampled packet" 14
    (List.length (List.filter (fun (s : Tr.span) -> s.Tr.cat = "packet") spans));
  check_bool "table spans present" true
    (List.exists (fun (s : Tr.span) -> s.Tr.cat = "table") spans)

let () =
  Alcotest.run "telemetry"
    [ ( "histogram",
        [ Alcotest.test_case "empty" `Quick test_hist_empty;
          Alcotest.test_case "single sample exact" `Quick test_hist_single_sample_exact;
          Alcotest.test_case "zero bucket" `Quick test_hist_zero_bucket;
          prop_bucket_bounds;
          prop_quantile_error_bound;
          prop_merge_equals_single;
          Alcotest.test_case "merge mismatch" `Quick test_hist_merge_sub_bits_mismatch ] );
      ( "metrics",
        [ Alcotest.test_case "counters/gauges/histograms" `Quick test_metrics_basic;
          Alcotest.test_case "kind mismatch" `Quick test_metrics_kind_mismatch;
          Alcotest.test_case "merge" `Quick test_metrics_merge;
          Alcotest.test_case "prometheus names" `Quick test_metrics_prometheus_sanitized ] );
      ( "trace",
        [ Alcotest.test_case "ring overwrite" `Quick test_trace_ring_overwrite;
          Alcotest.test_case "chrome json" `Quick test_trace_chrome_json ] );
      ( "sink",
        [ Alcotest.test_case "null" `Quick test_null_sink;
          Alcotest.test_case "sampling cadence" `Quick test_should_trace_cadence;
          Alcotest.test_case "fork and merge" `Quick test_fork_merge ] );
      ( "nicsim",
        [ Alcotest.test_case "driver-independent metrics" `Quick
            test_sim_metrics_driver_independent;
          Alcotest.test_case "observe-only stats" `Quick test_sim_stats_observe_only;
          Alcotest.test_case "trace sampling" `Quick test_sim_trace_sampling ] ) ]
