(* Property-based tests (QCheck) on the core invariants:
   - bit-level helpers (truncate, prefix masks, pattern semantics);
   - engine lookups agree with the reference Table.lookup semantics;
   - node-sum expected latency equals path enumeration on random DAGs;
   - the optimizer preserves program semantics on random programs;
   - knapsack solutions respect budgets and beat greedy;
   - LRU never exceeds capacity. *)

let target = Costmodel.Target.bluefield2

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* --- values and patterns --- *)

let test_truncate_idempotent =
  qtest "truncate idempotent"
    QCheck2.Gen.(pair (int_range 1 64) (map Int64.of_int int))
    (fun (w, v) ->
      let once = P4ir.Value.truncate ~width:w v in
      Int64.equal once (P4ir.Value.truncate ~width:w once))

let test_lpm_equals_ternary =
  qtest "lpm pattern = ternary with prefix mask"
    QCheck2.Gen.(triple (int_range 0 32) (map Int64.of_int int) (map Int64.of_int int))
    (fun (len, value, probe) ->
      let width = 32 in
      let lpm = P4ir.Pattern.Lpm (value, len) in
      let tern =
        P4ir.Pattern.Ternary (value, P4ir.Value.prefix_mask ~width ~prefix_len:len)
      in
      P4ir.Pattern.matches ~width lpm probe = P4ir.Pattern.matches ~width tern probe)

let test_prefix_mask_popcount =
  qtest "prefix mask has prefix_len set bits"
    QCheck2.Gen.(int_range 0 32)
    (fun len ->
      let mask = P4ir.Value.prefix_mask ~width:32 ~prefix_len:len in
      let rec pop v = if Int64.equal v 0L then 0 else 1 + pop (Int64.logand v (Int64.sub v 1L)) in
      pop mask = len)

(* --- engines vs reference lookup --- *)

let kind_gen =
  QCheck2.Gen.oneofl [ P4ir.Match_kind.Exact; P4ir.Match_kind.Lpm; P4ir.Match_kind.Ternary ]

let table_gen =
  (* A single-key table with random entries of a consistent kind. *)
  let open QCheck2.Gen in
  kind_gen >>= fun kind ->
  list_size (int_range 0 20) (int_range 0 63) >>= fun raw ->
  let actions = [ P4ir.Action.nop "hit"; P4ir.Action.nop "fallback" ] in
  let pattern i v =
    match kind with
    | P4ir.Match_kind.Exact -> P4ir.Pattern.Exact (Int64.of_int v)
    | P4ir.Match_kind.Lpm -> P4ir.Pattern.Lpm (Int64.shift_left (Int64.of_int v) 26, [| 6; 14; 22 |].(i mod 3))
    | P4ir.Match_kind.Ternary ->
      P4ir.Pattern.Ternary (Int64.of_int v, [| 0x3FL; 0x3F00L; 0xFFFFL |].(i mod 3))
    | P4ir.Match_kind.Range -> P4ir.Pattern.Range (Int64.of_int v, Int64.of_int (v + 5))
  in
  let entries =
    (* Priorities order ternary/range entries; LPM matching is
       longest-prefix-first and P4 gives LPM entries no priority. *)
    List.mapi
      (fun i v ->
        let priority = if kind = P4ir.Match_kind.Lpm then 0 else i in
        P4ir.Table.entry ~priority [ pattern i v ] "hit")
      raw
  in
  (* Deduplicate identical patterns (hash engines overwrite; the
     reference keeps both and breaks ties by order). *)
  let entries =
    List.fold_left
      (fun acc (e : P4ir.Table.entry) ->
        if List.exists (fun (x : P4ir.Table.entry) -> x.patterns = e.patterns) acc then acc
        else e :: acc)
      [] entries
    |> List.rev
  in
  return
    (P4ir.Table.make ~name:"t"
       ~keys:[ P4ir.Table.key P4ir.Field.Ipv4_dst kind ]
       ~actions ~default_action:"fallback" ~entries ())

let test_engine_matches_reference =
  qtest ~count:200 "engine lookup = reference lookup"
    QCheck2.Gen.(pair table_gen (int_range 0 65535))
    (fun (tab, probe) ->
      let eng = Nicsim.Engine.create tab in
      let pkt = Nicsim.Packet.of_fields [ (P4ir.Field.Ipv4_dst, Int64.of_int probe) ] in
      let engine_hit, _ = Nicsim.Engine.lookup eng pkt in
      let ref_hit = P4ir.Table.lookup tab (fun _ -> Int64.of_int probe) in
      match (engine_hit, ref_hit) with
      | None, None -> true
      | Some a, Some b ->
        (* Same action; the exact entry may differ among equal-priority
           overlapping entries. *)
        a.P4ir.Table.priority = b.P4ir.Table.priority
      | _ -> false)

(* Random many-prefix-length LPM tables: enough groups to cross the
   engine's compiled binary-search threshold. The plan-driven lookup must
   agree with the linear reference probe on both the result and the
   reported (modeled) access count. *)
let lpm_plan_gen =
  let open QCheck2.Gen in
  list_size (int_range 1 40) (pair (int_range 1 30) (map Int64.of_int int))
  >>= fun raw ->
  let entries =
    List.map
      (fun (len, v) ->
        let v =
          Int64.logand
            (P4ir.Value.truncate ~width:32 v)
            (P4ir.Value.prefix_mask ~width:32 ~prefix_len:len)
        in
        P4ir.Table.entry [ P4ir.Pattern.Lpm (v, len) ] "hit")
      raw
  in
  let entries =
    List.fold_left
      (fun acc (e : P4ir.Table.entry) ->
        if List.exists (fun (x : P4ir.Table.entry) -> x.patterns = e.patterns) acc then acc
        else e :: acc)
      [] entries
    |> List.rev
  in
  return
    (P4ir.Table.make ~name:"t"
       ~keys:[ P4ir.Table.key P4ir.Field.Ipv4_dst P4ir.Match_kind.Lpm ]
       ~actions:[ P4ir.Action.nop "hit"; P4ir.Action.nop "fallback" ]
       ~default_action:"fallback" ~entries ())

let test_lpm_plan_equals_linear =
  qtest ~count:300 "lpm binary-search plan = linear probe"
    QCheck2.Gen.(pair lpm_plan_gen (map Int64.of_int int))
    (fun (tab, probe) ->
      let probe = P4ir.Value.truncate ~width:32 probe in
      let eng = Nicsim.Engine.create tab in
      let pkt = Nicsim.Packet.of_fields [ (P4ir.Field.Ipv4_dst, probe) ] in
      let plan_hit, plan_acc = Nicsim.Engine.lookup eng pkt in
      let lin_hit, lin_acc = Nicsim.Engine.lookup_linear eng pkt in
      plan_acc = lin_acc
      &&
      match (plan_hit, lin_hit) with
      | None, None -> true
      | Some a, Some b -> a.P4ir.Table.patterns = b.P4ir.Table.patterns
      | _ -> false)

(* The learned-index plan is auto-selected only above
   [Engine.learned_threshold] entries, so random small tables would
   never exercise it: force it. Result entry AND modeled access count
   must equal the longest-first linear probe on every table, including
   miss-heavy probes outside the populated prefix ranges. *)
let test_learned_plan_equals_linear =
  qtest ~count:300 "forced learned-index plan = linear probe"
    QCheck2.Gen.(pair lpm_plan_gen (map Int64.of_int int))
    (fun (tab, probe) ->
      let probe = P4ir.Value.truncate ~width:32 probe in
      let eng = Nicsim.Engine.create tab in
      Nicsim.Engine.set_backend_hint eng Nicsim.Engine.Force_learned;
      let pkt = Nicsim.Packet.of_fields [ (P4ir.Field.Ipv4_dst, probe) ] in
      let plan_hit, plan_acc = Nicsim.Engine.lookup eng pkt in
      let lin_hit, lin_acc = Nicsim.Engine.lookup_linear eng pkt in
      String.equal (Nicsim.Engine.plan_kind eng) "learned"
      && plan_acc = lin_acc
      &&
      match (plan_hit, lin_hit) with
      | None, None -> true
      | Some a, Some b -> a.P4ir.Table.patterns = b.P4ir.Table.patterns
      | _ -> false)

(* Random single-key ternary tables over a small mask pool with unique
   priorities — several mask groups, overlapping matches, wildcard
   duplication in the tree. *)
let ternary_plan_gen =
  let open QCheck2.Gen in
  let masks = [| 0x3FL; 0x3F00L; 0xFFFFL; 0xF0F0L; 0x0FF0L |] in
  list_size (int_range 1 40) (pair (int_range 0 4) (map Int64.of_int int))
  >>= fun raw ->
  let entries =
    List.mapi
      (fun i (mi, v) ->
        P4ir.Table.entry ~priority:i
          [ P4ir.Pattern.Ternary (Int64.logand v masks.(mi), masks.(mi)) ]
          "hit")
      raw
  in
  let entries =
    List.fold_left
      (fun acc (e : P4ir.Table.entry) ->
        if List.exists (fun (x : P4ir.Table.entry) -> x.patterns = e.patterns) acc then acc
        else e :: acc)
      [] entries
    |> List.rev
  in
  return
    (P4ir.Table.make ~name:"t"
       ~keys:[ P4ir.Table.key P4ir.Field.Ipv4_dst P4ir.Match_kind.Ternary ]
       ~actions:[ P4ir.Action.nop "hit"; P4ir.Action.nop "fallback" ]
       ~default_action:"fallback" ~entries ())

let test_tree_plan_equals_linear =
  qtest ~count:300 "forced decision-tree plan = skip probe"
    QCheck2.Gen.(pair ternary_plan_gen (int_range 0 0xFFFF))
    (fun (tab, probe) ->
      let eng = Nicsim.Engine.create tab in
      Nicsim.Engine.set_backend_hint eng Nicsim.Engine.Force_tree;
      let pkt = Nicsim.Packet.of_fields [ (P4ir.Field.Ipv4_dst, Int64.of_int probe) ] in
      let plan_hit, plan_acc = Nicsim.Engine.lookup eng pkt in
      let lin_hit, lin_acc = Nicsim.Engine.lookup_linear eng pkt in
      String.equal (Nicsim.Engine.plan_kind eng) "tree"
      && plan_acc = lin_acc
      &&
      match (plan_hit, lin_hit) with
      | None, None -> true
      | Some a, Some b -> a.P4ir.Table.priority = b.P4ir.Table.priority
      | _ -> false)

(* --- window drivers --- *)

let window_stats_bits (s : Nicsim.Sim.window_stats) =
  List.map Int64.bits_of_float
    [ s.window_start; s.window_duration; s.avg_latency; s.p99_latency;
      s.throughput_gbps; s.drop_fraction ]
  @ [ Int64.of_int s.sampled_packets; Int64.of_int s.sampled_drops ]

let driver_fixture seed packets run =
  let acl =
    P4ir.Table.add_entry
      (P4ir.Builder.acl_table ~name:"acl"
         ~keys:[ P4ir.Builder.exact_key P4ir.Field.Ipv4_dst ]
         ())
      (P4ir.Table.entry [ P4ir.Pattern.Exact 9L ] "deny")
  in
  let route =
    P4ir.Table.make ~name:"route"
      ~keys:[ P4ir.Table.key P4ir.Field.Ipv4_dst P4ir.Match_kind.Lpm ]
      ~actions:[ P4ir.Action.nop "hit"; P4ir.Action.nop "def" ]
      ~default_action:"def"
      ~entries:
        (List.concat_map
           (fun len ->
             List.init 4 (fun i ->
                 P4ir.Table.entry
                   [ P4ir.Pattern.Lpm
                       (Int64.shift_left (Int64.of_int (i * 3)) (32 - len), len) ]
                   "hit"))
           [ 8; 12; 16; 20; 24 ])
      ()
  in
  let prog = P4ir.Program.linear "drv" [ acl; route ] in
  let cfg = { (Nicsim.Exec.default_config target) with Nicsim.Exec.sample_rate = 3 } in
  let sim = Nicsim.Sim.create ~config:cfg target prog in
  let rng = Stdx.Prng.create seed in
  let flows =
    Traffic.Workload.random_flows rng ~n:32
      ~fields:[ P4ir.Field.Ipv4_src; P4ir.Field.Ipv4_dst; P4ir.Field.Tcp_sport ]
  in
  let base = Traffic.Workload.of_flows rng flows in
  let source =
    Traffic.Workload.mark_fraction rng ~rate:0.2 ~field:P4ir.Field.Ipv4_dst ~value:9L base
  in
  let stats = run sim ~duration:1.0 ~packets ~source in
  (window_stats_bits stats, Profile.Counter.dump (Nicsim.Exec.counters (Nicsim.Sim.exec sim)))

let test_window_drivers_identical =
  qtest ~count:20 "batched/parallel windows = sequential (bits + counters)"
    QCheck2.Gen.(pair (map Int64.of_int int) (int_range 16 400))
    (fun (seed, packets) ->
      let seq = driver_fixture seed packets Nicsim.Sim.run_window in
      let batched =
        driver_fixture seed packets (fun sim ->
            Nicsim.Sim.run_window_batched ~batch:5 sim)
      in
      let par =
        driver_fixture seed packets (fun sim ->
            Nicsim.Sim.run_window_parallel ~domains:3 sim)
      in
      seq = batched && seq = par)

let synth_gen =
  let open QCheck2.Gen in
  map
    (fun seed ->
      let rng = Stdx.Prng.create (Int64.of_int seed) in
      let params =
        { Experiments.Synth.default_params with sections = 3; pipelet_len = 2; diamond_prob = 0.5 }
      in
      let prog = Experiments.Synth.program ~params rng in
      let prof = Experiments.Synth.profile rng prog in
      (prog, prof))
    int

let test_node_sum_equals_paths =
  qtest ~count:50 "node-sum latency = path enumeration" synth_gen (fun (prog, prof) ->
      let a = Costmodel.Cost.expected_latency target prof prog in
      let b = Costmodel.Cost.expected_latency_via_paths target prof prog in
      Float.abs (a -. b) <= 1e-6 *. Float.max 1. a)

let test_reach_probs_bounded =
  qtest ~count:50 "reach probabilities in [0,1]" synth_gen (fun (prog, prof) ->
      List.for_all
        (fun (_, p) -> p >= -.1e-9 && p <= 1. +. 1e-9)
        (Costmodel.Cost.reach_probs prof prog))

(* --- optimizer semantics --- *)

let packets_agree prog_a prog_b seed =
  let rng = Stdx.Prng.create seed in
  let fields =
    [ P4ir.Field.Ipv4_src; P4ir.Field.Ipv4_dst; P4ir.Field.Tcp_sport; P4ir.Field.Tcp_dport;
      P4ir.Field.Ipv4_proto; P4ir.Field.Eth_type ]
  in
  let ex_a = Nicsim.Exec.create (Nicsim.Exec.default_config target) prog_a in
  let ex_b = Nicsim.Exec.create (Nicsim.Exec.default_config target) prog_b in
  let ok = ref true in
  for _ = 1 to 300 do
    (* Small value domain so table entries actually hit. *)
    let pkt =
      Nicsim.Packet.of_fields
        (List.map (fun f -> (f, Int64.of_int (Stdx.Prng.int rng 40))) fields)
    in
    let q = Nicsim.Packet.copy pkt in
    ignore (Nicsim.Exec.run_packet ex_a ~now:0. pkt);
    ignore (Nicsim.Exec.run_packet ex_b ~now:0. q);
    if Nicsim.Packet.is_dropped pkt <> Nicsim.Packet.is_dropped q then ok := false;
    List.iter
      (fun i ->
        let f = P4ir.Field.Meta i in
        if not (Int64.equal (Nicsim.Packet.get pkt f) (Nicsim.Packet.get q f)) then ok := false)
      [ 8; 9; 10; 11 ]
  done;
  !ok

let test_optimizer_preserves_semantics =
  qtest ~count:25 "optimizer preserves semantics" synth_gen (fun (prog, prof) ->
      let result =
        Pipeleon.Optimizer.optimize
          ~config:{ Pipeleon.Optimizer.default_config with top_k = 1.0 }
          target prof prog
      in
      P4ir.Program.validate_exn result.Pipeleon.Optimizer.program;
      packets_agree prog result.Pipeleon.Optimizer.program 11L)

let test_parallel_local_equals_sequential =
  (* The parallel fan-out must be a pure reshuffling of work: identical
     candidates, identical gains, in pipelet order. Structural equality
     on [evaluated] compares floats bit-for-bit. *)
  qtest ~count:20 "parallel local_optimize = sequential" synth_gen (fun (prog, prof) ->
      let pipelets = Pipeleon.Pipelet.form prog in
      let hots = Pipeleon.Hotspot.rank target prof prog pipelets in
      let seq = Pipeleon.Search.local_optimize target prof prog hots in
      let par = Pipeleon.Search.local_optimize_parallel ~domains:3 target prof prog hots in
      List.length seq = List.length par
      && List.for_all2
           (fun (a : Pipeleon.Search.pipelet_candidates)
                (b : Pipeleon.Search.pipelet_candidates) ->
             a.hot.pipelet = b.hot.pipelet && a.evaluated = b.evaluated)
           seq par)

let test_parallel_optimizer_plan_identical =
  qtest ~count:10 "use_parallel plan = sequential plan" synth_gen (fun (prog, prof) ->
      let cfg k = { Pipeleon.Optimizer.default_config with top_k = 1.0; use_parallel = k } in
      let s = Pipeleon.Optimizer.optimize ~config:(cfg false) target prof prog in
      let p = Pipeleon.Optimizer.optimize ~config:(cfg true) target prof prog in
      let gains (r : Pipeleon.Optimizer.result) =
        ( r.plan.Pipeleon.Search.predicted_gain,
          List.map
            (fun ((h : Pipeleon.Hotspot.hot), (e : Pipeleon.Candidate.evaluated)) ->
              (h.pipelet.Pipeleon.Pipelet.entry, e.combo, e.gain))
            r.plan.Pipeleon.Search.choices )
      in
      gains s = gains p)

let test_warm_start_gain_equal =
  qtest ~count:10 "warm-start re-optimization is gain-equal" synth_gen
    (fun (prog, prof) ->
      let config = { Pipeleon.Optimizer.default_config with top_k = 1.0 } in
      let cold = Pipeleon.Optimizer.optimize ~config target prof prog in
      let cache = Pipeleon.Search.create_cache () in
      let warm =
        { Pipeleon.Optimizer.warm_cache = cache;
          warm_signature = Runtime.Incremental.pipelet_signature }
      in
      ignore (Pipeleon.Optimizer.optimize ~config ~warm target prof prog);
      let rewarm = Pipeleon.Optimizer.optimize ~config ~warm target prof prog in
      let hits, misses = Pipeleon.Search.cache_stats cache in
      (* Unchanged profile: the second round must be served from cache
         and produce the same predicted gain as a cold run. *)
      hits = misses
      && rewarm.plan.Pipeleon.Search.predicted_gain
         = cold.plan.Pipeleon.Search.predicted_gain)

let test_serialize_roundtrip_random =
  qtest ~count:50 "serialize round-trip on random programs" synth_gen (fun (prog, _) ->
      let json = P4ir.Serialize.to_string prog in
      match P4ir.Serialize.of_string json with
      | Ok prog' -> String.equal json (P4ir.Serialize.to_string prog')
      | Error _ -> false)

let test_emit_parse_fixpoint_random =
  qtest ~count:30 "p4lite emit/parse fixpoint on random programs" synth_gen
    (fun (prog, _) ->
      let emitted = P4lite.Emit.emit prog in
      match P4lite.Lower.parse_program emitted with
      | reparsed -> String.equal emitted (P4lite.Emit.emit reparsed)
      | exception _ -> false)

let test_hetero_materialize_random =
  qtest ~count:25 "hetero materialization preserves semantics" synth_gen
    (fun (prog, _) ->
      (* Random placement by table-name hash; conditionals stay on ASIC. *)
      let placement id =
        match P4ir.Program.table_of prog id with
        | Some t when Hashtbl.hash t.P4ir.Table.name mod 2 = 0 -> Costmodel.Cost.Cpu
        | _ -> Costmodel.Cost.Asic
      in
      let prog', _ = Pipeleon.Hetero.materialize prog ~placement in
      P4ir.Program.validate_exn prog';
      packets_agree prog prog' 77L)

let test_hot_patch_equals_fresh =
  qtest ~count:25 "incremental hot-patch behaves like a fresh deploy" synth_gen
    (fun (prog, _) ->
      (* Patch a sim of a DIFFERENT program over to [prog]; its executor
         must then process packets exactly like a fresh one built on
         [prog]. *)
      let rng = Stdx.Prng.create 5L in
      let other =
        Experiments.Synth.program
          ~params:{ Experiments.Synth.default_params with sections = 2 }
          rng
      in
      let sim = Nicsim.Sim.create target other in
      ignore (Nicsim.Sim.hot_patch sim prog);
      let patched_ex = Nicsim.Sim.exec sim in
      let fresh_ex = Nicsim.Exec.create (Nicsim.Exec.default_config target) prog in
      let pkt_rng = Stdx.Prng.create 99L in
      let fields =
        [ P4ir.Field.Ipv4_src; P4ir.Field.Ipv4_dst; P4ir.Field.Tcp_sport;
          P4ir.Field.Ipv4_proto; P4ir.Field.Eth_type ]
      in
      let ok = ref true in
      for _ = 1 to 200 do
        let pkt =
          Nicsim.Packet.of_fields
            (List.map (fun f -> (f, Int64.of_int (Stdx.Prng.int pkt_rng 40))) fields)
        in
        let q = Nicsim.Packet.copy pkt in
        ignore (Nicsim.Exec.run_packet patched_ex ~now:0. pkt);
        ignore (Nicsim.Exec.run_packet fresh_ex ~now:0. q);
        if Nicsim.Packet.is_dropped pkt <> Nicsim.Packet.is_dropped q then ok := false;
        List.iter
          (fun i ->
            let f = P4ir.Field.Meta i in
            if not (Int64.equal (Nicsim.Packet.get pkt f) (Nicsim.Packet.get q f)) then
              ok := false)
          [ 8; 9; 10; 11 ]
      done;
      !ok)

(* --- knapsack --- *)

let knapsack_gen =
  let open QCheck2.Gen in
  list_size (int_range 1 6)
    (list_size (int_range 1 4)
       (map3
          (fun g m u ->
            { Pipeleon.Knapsack.gain = float_of_int g; mem = m * 100; upd = float_of_int u; tag = 0 })
          (int_range 0 20) (int_range 0 10) (int_range 0 10)))
  |> map (fun groups ->
         List.map (List.mapi (fun i o -> { o with Pipeleon.Knapsack.tag = i })) groups)

let budget_ok groups picks ~mem_budget ~upd_budget =
  let used_mem, used_upd =
    List.fold_left
      (fun (m, u) (gi, tag) ->
        let o = List.nth (List.nth groups gi) tag in
        (m + o.Pipeleon.Knapsack.mem, u +. o.Pipeleon.Knapsack.upd))
      (0, 0.) picks
  in
  used_mem <= mem_budget && used_upd <= upd_budget

let test_knapsack_within_budget =
  qtest ~count:200 "knapsack respects budgets" knapsack_gen (fun groups ->
      let sol = Pipeleon.Knapsack.solve ~groups ~mem_budget:500 ~upd_budget:15. () in
      let one_per_group =
        let gis = List.map fst sol.Pipeleon.Knapsack.picks in
        List.length gis = List.length (List.sort_uniq compare gis)
      in
      one_per_group && budget_ok groups sol.Pipeleon.Knapsack.picks ~mem_budget:500 ~upd_budget:15.)

let test_knapsack_prune_equals_unpruned =
  (* Dominance pruning only drops options whose DP candidate value is
     covered by a dominator at every cell, so the optimal total gain is
     preserved bit-for-bit (float max over a subset containing the
     argmax). *)
  qtest ~count:200 "dominance pruning preserves total gain" knapsack_gen (fun groups ->
      let solve ~prune =
        Pipeleon.Knapsack.solve_stats ~prune ~groups ~mem_budget:500 ~upd_budget:15. ()
      in
      let pruned, stats_p = solve ~prune:true in
      let unpruned, stats_u = solve ~prune:false in
      pruned.Pipeleon.Knapsack.total_gain = unpruned.Pipeleon.Knapsack.total_gain
      && stats_p.Pipeleon.Knapsack.options_after <= stats_u.Pipeleon.Knapsack.options_after
      && stats_p.Pipeleon.Knapsack.dp_cells <= stats_u.Pipeleon.Knapsack.dp_cells)

let test_knapsack_beats_greedy =
  (* With bucket counts that divide the generated costs exactly, the DP
     is the true optimum and must dominate the greedy heuristic. (Under
     coarse buckets it is only optimal for the discretized problem.) *)
  qtest ~count:200 "knapsack DP >= greedy" knapsack_gen (fun groups ->
      let dp =
        Pipeleon.Knapsack.solve ~mem_buckets:5 ~upd_buckets:15 ~groups ~mem_budget:500
          ~upd_budget:15. ()
      in
      let gr = Pipeleon.Knapsack.greedy ~groups ~mem_budget:500 ~upd_budget:15. in
      dp.Pipeleon.Knapsack.total_gain >= gr.Pipeleon.Knapsack.total_gain -. 1e-9)

(* --- LRU --- *)

let test_lru_capacity =
  qtest ~count:100 "LRU never exceeds capacity"
    QCheck2.Gen.(pair (int_range 1 8) (list_size (int_range 0 100) (int_range 0 30)))
    (fun (cap, ops) ->
      let lru = Nicsim.Lru.create ~capacity:cap in
      List.for_all
        (fun k ->
          ignore (Nicsim.Lru.put lru (string_of_int k) k);
          Nicsim.Lru.length lru <= cap)
        ops)

(* --- reorder --- *)

let test_apply_order_is_permutation =
  qtest ~count:100 "apply_order permutes"
    QCheck2.Gen.(int_range 1 7)
    (fun n ->
      let rng = Stdx.Prng.create (Int64.of_int (n * 31)) in
      let order = Array.init n Fun.id in
      Stdx.Prng.shuffle rng order;
      let xs = List.init n Fun.id in
      let permuted = Pipeleon.Reorder.apply_order xs (Array.to_list order) in
      List.sort compare permuted = xs)

let () =
  Alcotest.run "properties"
    [ ( "bits",
        [ test_truncate_idempotent; test_lpm_equals_ternary; test_prefix_mask_popcount ] );
      ( "engines",
        [ test_engine_matches_reference; test_lpm_plan_equals_linear;
          test_learned_plan_equals_linear; test_tree_plan_equals_linear ] );
      ("window-drivers", [ test_window_drivers_identical ]);
      ("costmodel", [ test_node_sum_equals_paths; test_reach_probs_bounded ]);
      ( "optimizer",
        [ test_optimizer_preserves_semantics; test_parallel_local_equals_sequential;
          test_parallel_optimizer_plan_identical; test_warm_start_gain_equal;
          test_serialize_roundtrip_random ] );
      ( "frontends-and-deploys",
        [ test_emit_parse_fixpoint_random; test_hetero_materialize_random;
          test_hot_patch_equals_fresh ] );
      ( "knapsack",
        [ test_knapsack_within_budget; test_knapsack_prune_equals_unpruned;
          test_knapsack_beats_greedy ] );
      ("lru", [ test_lru_capacity ]);
      ("reorder", [ test_apply_order_is_permutation ]) ]
