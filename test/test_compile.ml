(* Tests for the pipeline compiler (Nicsim.Compile) and the compiled
   window drivers: op-array flattening (layout, resolved successors,
   branching, switch-case), and the differential harness proving the
   compiled data path bit-identical to the interpreter — window stats,
   profile counters, per-packet latencies, telemetry metrics and spans,
   flow-cache fills, replicas, and incremental recompilation. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let target = Costmodel.Target.bluefield2

let qtest ?(count = 50) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* --- fixtures --- *)

let fields =
  [| P4ir.Field.Ipv4_src; P4ir.Field.Ipv4_dst; P4ir.Field.Tcp_sport; P4ir.Field.Tcp_dport |]

let mk_table ?(extra_action = false) i ~entries =
  let field = fields.(i mod Array.length fields) in
  let actions =
    [ P4ir.Action.make "seta" [ P4ir.Action.Set_field (P4ir.Field.Meta (i + 1), 1L) ];
      P4ir.Action.make "setb" [ P4ir.Action.Set_field (P4ir.Field.Meta (i + 1), 2L) ] ]
    @ (if extra_action then [ P4ir.Action.nop "extra" ] else [])
  in
  let tab =
    P4ir.Table.make ~name:(Printf.sprintf "t%d" i)
      ~keys:[ P4ir.Table.key field P4ir.Match_kind.Exact ]
      ~actions ~default_action:"setb" ()
  in
  List.fold_left
    (fun tab v -> P4ir.Table.add_entry tab (P4ir.Table.entry [ P4ir.Pattern.Exact v ] "seta"))
    tab entries

let chain n = List.init n (fun i -> mk_table i ~entries:[ 1L; 2L; 3L ])

let zipf_source seed =
  let rng = Stdx.Prng.create seed in
  let pop = Traffic.Workload.random_flows rng ~n:56 ~fields:(Array.to_list fields) in
  let hitting =
    Array.init 8 (fun i ->
        List.map (fun f -> (f, Int64.of_int ((i mod 3) + 1))) (Array.to_list fields))
  in
  Traffic.Workload.of_flows ~zipf_s:1.1 (Stdx.Prng.create 99L) (Array.append pop hitting)

let the_pipelet prog =
  match Pipeleon.Pipelet.form prog with
  | [ p ] -> p
  | ps -> Alcotest.failf "expected one pipelet, got %d" (List.length ps)

let cached_prog () =
  let tabs = chain 3 in
  let prog = P4ir.Program.linear "cache-fix" tabs in
  let p = the_pipelet prog in
  let cache = Pipeleon.Cache.build ~name:"c0" ~capacity:64 ~insert_limit:1e9 tabs in
  Pipeleon.Transform.apply prog p [ Pipeleon.Transform.Cached { cache; originals = tabs } ]

let merged_prog () =
  let tabs = chain 2 in
  let prog = P4ir.Program.linear "merge-fix" tabs in
  let p = the_pipelet prog in
  let merged = Pipeleon.Merge.build_ternary ~name:"m01" tabs in
  Pipeleon.Transform.apply prog p
    [ Pipeleon.Transform.Merged_plain { merged; originals = tabs } ]

(* cond -> (ta | tb) -> join, for flattening and branching identity. *)
let branching_prog () =
  let join = mk_table 2 ~entries:[ 1L; 2L ] in
  let ta = mk_table 0 ~entries:[ 1L; 2L; 3L ] in
  let tb = mk_table 1 ~entries:[ 2L ] in
  let prog = P4ir.Program.empty "branch-fix" in
  let prog, join_id =
    P4ir.Program.add_node prog (P4ir.Program.Table (join, P4ir.Program.Uniform None))
  in
  let prog, a_id =
    P4ir.Program.add_node prog (P4ir.Program.Table (ta, P4ir.Program.Uniform (Some join_id)))
  in
  let prog, b_id =
    P4ir.Program.add_node prog (P4ir.Program.Table (tb, P4ir.Program.Uniform (Some join_id)))
  in
  let prog, c_id =
    P4ir.Program.add_node prog
      (P4ir.Program.Cond
         { P4ir.Program.cond_name = "is_tcp"; field = P4ir.Field.Ipv4_proto;
           op = P4ir.Program.Eq; arg = 6L; on_true = Some a_id; on_false = Some b_id })
  in
  let prog = P4ir.Program.with_root prog (Some c_id) in
  P4ir.Program.validate_exn prog;
  (prog, c_id, a_id, b_id, join_id)

(* switch-case: sw's successor depends on the fired action. *)
let per_action_prog () =
  let ta = mk_table 0 ~entries:[ 1L ] in
  let tb = mk_table 1 ~entries:[ 2L ] in
  let sw =
    P4ir.Table.make ~name:"sw"
      ~keys:[ P4ir.Table.key P4ir.Field.Tcp_dport P4ir.Match_kind.Exact ]
      ~actions:[ P4ir.Action.nop "goa"; P4ir.Action.nop "gob" ]
      ~default_action:"gob"
      ~entries:[ P4ir.Table.entry [ P4ir.Pattern.Exact 80L ] "goa" ]
      ()
  in
  let prog = P4ir.Program.empty "switch-fix" in
  let prog, a_id =
    P4ir.Program.add_node prog (P4ir.Program.Table (ta, P4ir.Program.Uniform None))
  in
  let prog, b_id =
    P4ir.Program.add_node prog (P4ir.Program.Table (tb, P4ir.Program.Uniform None))
  in
  let prog, sw_id =
    P4ir.Program.add_node prog
      (P4ir.Program.Table
         (sw, P4ir.Program.Per_action [ ("goa", Some a_id); ("gob", Some b_id) ]))
  in
  let prog = P4ir.Program.with_root prog (Some sw_id) in
  P4ir.Program.validate_exn prog;
  (prog, sw_id, a_id, b_id)

(* Compile an executor's program directly (the view API lives on
   Compile.t; Exec keeps its own instance private). *)
let compile_of ex =
  let prog = Nicsim.Exec.program ex in
  let cfg = Nicsim.Exec.config ex in
  Nicsim.Compile.build ~target:cfg.Nicsim.Exec.target ~placement:cfg.Nicsim.Exec.placement
    ~counters:(Nicsim.Exec.counters ex) ~telemetry:(Nicsim.Exec.telemetry ex)
    ~engine_of:(fun id ->
      match P4ir.Program.find_exn prog id with
      | P4ir.Program.Table (tab, _) -> Nicsim.Exec.engine_exn ex tab.P4ir.Table.name
      | P4ir.Program.Cond _ -> Alcotest.fail "engine_of called on a cond")
    prog

let compile_prog prog = compile_of (Nicsim.Exec.create (Nicsim.Exec.default_config target) prog)

let pc_exn c id =
  match Nicsim.Compile.pc_of_node c id with
  | Some pc -> pc
  | None -> Alcotest.fail "node has no pc"

(* --- flattening layout --- *)

let test_flatten_linear () =
  let prog = P4ir.Program.linear "lin" (chain 3) in
  let c = compile_prog prog in
  check_int "one op per node" 3 (Nicsim.Compile.num_ops c);
  let view = Nicsim.Compile.view c in
  List.iteri
    (fun i v ->
      check_int "pc is array index" i v.Nicsim.Compile.view_pc;
      check_bool "table kind" true (v.Nicsim.Compile.view_kind = `Table);
      (* Linear chain: each op falls through to the next pc; last -> sink. *)
      let expected = if i = 2 then [ -1 ] else [ i + 1 ] in
      check_bool "resolved successor" true (v.Nicsim.Compile.view_next = expected))
    view

let test_flatten_branching () =
  let prog, c_id, a_id, b_id, join_id = branching_prog () in
  let c = compile_prog prog in
  check_int "four ops" 4 (Nicsim.Compile.num_ops c);
  let view = Nicsim.Compile.view c in
  let at pc = List.nth view pc in
  (* Topological order puts the root cond first. *)
  check_int "cond first" 0 (pc_exn c c_id);
  let cond = at 0 in
  check_bool "cond kind" true (cond.Nicsim.Compile.view_kind = `Cond);
  check_bool "cond successors resolved to pcs" true
    (cond.Nicsim.Compile.view_next = [ pc_exn c a_id; pc_exn c b_id ]);
  check_bool "both arms join" true
    ((at (pc_exn c a_id)).Nicsim.Compile.view_next = [ pc_exn c join_id ]
    && (at (pc_exn c b_id)).Nicsim.Compile.view_next = [ pc_exn c join_id ]);
  check_bool "join exits" true
    ((at (pc_exn c join_id)).Nicsim.Compile.view_next = [ -1 ])

let test_flatten_per_action () =
  let prog, sw_id, a_id, b_id = per_action_prog () in
  let c = compile_prog prog in
  let view = Nicsim.Compile.view c in
  let sw = List.nth view (pc_exn c sw_id) in
  check_bool "switch lists each action target" true
    (sw.Nicsim.Compile.view_next
    = List.sort_uniq compare [ pc_exn c a_id; pc_exn c b_id ])

let test_flatten_cache_and_merge () =
  let cached = compile_prog (cached_prog ()) in
  check_bool "cache table flattened" true
    (List.exists
       (fun v -> v.Nicsim.Compile.view_name = "c0" && v.Nicsim.Compile.view_kind = `Table)
       (Nicsim.Compile.view cached));
  let merged = compile_prog (merged_prog ()) in
  check_int "merged program collapses to one op" 1 (Nicsim.Compile.num_ops merged);
  check_bool "merged table name" true
    ((List.hd (Nicsim.Compile.view merged)).Nicsim.Compile.view_name = "m01")

(* --- window-level differential harness --- *)

let window_stats_bits (s : Nicsim.Sim.window_stats) =
  List.map Int64.bits_of_float
    [ s.window_start; s.window_duration; s.avg_latency; s.p99_latency; s.p50_latency;
      s.p90_latency; s.p999_latency; s.throughput_gbps; s.drop_fraction ]
  @ [ Int64.of_int s.sampled_packets; Int64.of_int s.sampled_drops ]

(* Same acl+route fixture as test_props's driver_fixture: a drop-capable
   ACL plus a multi-length LPM, sample_rate 3 so sampling alignment is
   load-bearing. *)
let driver_fixture seed packets run =
  let acl =
    P4ir.Table.add_entry
      (P4ir.Builder.acl_table ~name:"acl"
         ~keys:[ P4ir.Builder.exact_key P4ir.Field.Ipv4_dst ]
         ())
      (P4ir.Table.entry [ P4ir.Pattern.Exact 9L ] "deny")
  in
  let route =
    P4ir.Table.make ~name:"route"
      ~keys:[ P4ir.Table.key P4ir.Field.Ipv4_dst P4ir.Match_kind.Lpm ]
      ~actions:[ P4ir.Action.nop "hit"; P4ir.Action.nop "def" ]
      ~default_action:"def"
      ~entries:
        (List.concat_map
           (fun len ->
             List.init 4 (fun i ->
                 P4ir.Table.entry
                   [ P4ir.Pattern.Lpm
                       (Int64.shift_left (Int64.of_int (i * 3)) (32 - len), len) ]
                   "hit"))
           [ 8; 12; 16; 20; 24 ])
      ()
  in
  let prog = P4ir.Program.linear "drv" [ acl; route ] in
  let cfg = { (Nicsim.Exec.default_config target) with Nicsim.Exec.sample_rate = 3 } in
  let sim = Nicsim.Sim.create ~config:cfg target prog in
  let rng = Stdx.Prng.create seed in
  let flows =
    Traffic.Workload.random_flows rng ~n:32
      ~fields:[ P4ir.Field.Ipv4_src; P4ir.Field.Ipv4_dst; P4ir.Field.Tcp_sport ]
  in
  let base = Traffic.Workload.of_flows rng flows in
  let source =
    Traffic.Workload.mark_fraction rng ~rate:0.2 ~field:P4ir.Field.Ipv4_dst ~value:9L base
  in
  let stats = run sim ~duration:1.0 ~packets ~source in
  (window_stats_bits stats, Profile.Counter.dump (Nicsim.Exec.counters (Nicsim.Sim.exec sim)))

let test_compiled_window_identical =
  qtest ~count:20 "compiled windows = sequential (bits + counters)"
    QCheck2.Gen.(pair (map Int64.of_int int) (int_range 16 400))
    (fun (seed, packets) ->
      let seq = driver_fixture seed packets Nicsim.Sim.run_window in
      let compiled =
        driver_fixture seed packets (fun sim ->
            Nicsim.Sim.run_window_compiled ~batch:5 sim)
      in
      let batched_compiled =
        driver_fixture seed packets (fun sim ->
            Nicsim.Sim.run_window_batched ~batch:7 ~compiled:true sim)
      in
      let par_compiled =
        driver_fixture seed packets (fun sim ->
            Nicsim.Sim.run_window_parallel ~domains:3 ~compiled:true sim)
      in
      seq = compiled && seq = batched_compiled && seq = par_compiled)

(* Cache-role tables: LRU recency, auto-insert fills, and the token
   bucket all mutate per packet; the compiled walk must reproduce every
   bit of it (these programs are also the parallel driver's fallback). *)
let cache_fixture seed run =
  let prog = cached_prog () in
  let cfg = { (Nicsim.Exec.default_config target) with Nicsim.Exec.sample_rate = 2 } in
  let sim = Nicsim.Sim.create ~config:cfg target prog in
  let stats = run sim ~duration:1.0 ~packets:600 ~source:(zipf_source seed) in
  let filled =
    match Nicsim.Exec.engine (Nicsim.Sim.exec sim) "c0" with
    | Some eng -> Nicsim.Engine.num_entries eng
    | None -> -1
  in
  ( window_stats_bits stats,
    Profile.Counter.dump (Nicsim.Exec.counters (Nicsim.Sim.exec sim)),
    filled )

let test_compiled_cache_identical =
  qtest ~count:15 "compiled = sequential on flow-cached program (fills included)"
    QCheck2.Gen.(map Int64.of_int int)
    (fun seed ->
      let ((_, _, filled) as seq) = cache_fixture seed Nicsim.Sim.run_window in
      let compiled =
        cache_fixture seed (fun sim -> Nicsim.Sim.run_window_compiled ~batch:9 sim)
      in
      (* The fixture must actually exercise the fill path. *)
      filled > 0 && seq = compiled)

let test_compiled_merged_identical () =
  let run prog driver =
    let sim = Nicsim.Sim.create target prog in
    let stats = driver sim ~duration:1.0 ~packets:500 ~source:(zipf_source 3L) in
    (window_stats_bits stats, Profile.Counter.dump (Nicsim.Exec.counters (Nicsim.Sim.exec sim)))
  in
  List.iter
    (fun prog ->
      let seq = run prog (fun sim -> Nicsim.Sim.run_window sim) in
      let compiled = run prog (fun sim -> Nicsim.Sim.run_window_compiled sim) in
      check_bool "merged/branching/switch program identical" true (seq = compiled))
    [ merged_prog ();
      (let p, _, _, _, _ = branching_prog () in p);
      (let p, _, _, _ = per_action_prog () in p) ]

(* Whole-optimizer output: whatever plan the search picks (caches,
   merges, reorders, groups), the compiled walk must agree with the
   interpreter on it. *)
let test_compiled_optimizer_output_identical () =
  let prog = P4ir.Program.linear "opt" (chain 4) in
  let prof = Profile.with_default_cache_hit 0.9 (Profile.uniform prog) in
  let result =
    Pipeleon.Optimizer.optimize
      ~config:{ Pipeleon.Optimizer.default_config with Pipeleon.Optimizer.top_k = 1.0 }
      target prof prog
  in
  let optimized = result.Pipeleon.Optimizer.program in
  P4ir.Program.validate_exn optimized;
  let run driver =
    let sim = Nicsim.Sim.create target optimized in
    let stats = driver sim ~duration:1.0 ~packets:800 ~source:(zipf_source 11L) in
    (window_stats_bits stats, Profile.Counter.dump (Nicsim.Exec.counters (Nicsim.Sim.exec sim)))
  in
  check_bool "optimized program identical under compiled driver" true
    (run (fun sim -> Nicsim.Sim.run_window sim)
    = run (fun sim -> Nicsim.Sim.run_window_compiled sim))

(* --- batch-level identity: per-packet latencies --- *)

let batch_obs prog run_batch =
  let cfg = { (Nicsim.Exec.default_config target) with Nicsim.Exec.sample_rate = 3 } in
  let ex = Nicsim.Exec.create cfg prog in
  let source = zipf_source 21L in
  let n = 300 in
  let pkts = Array.init n (fun _ -> source ()) in
  let out = Array.make n 0. in
  let dropped = run_batch ex ~now_of:(fun i -> 0.001 *. float_of_int i) ~out pkts in
  ( Array.map Int64.bits_of_float out,
    dropped,
    Nicsim.Exec.drops_seen ex,
    Profile.Counter.dump (Nicsim.Exec.counters ex) )

let test_batch_latencies_bit_identical () =
  List.iter
    (fun prog ->
      let interp =
        batch_obs prog (fun ex ~now_of ~out pkts -> Nicsim.Exec.run_batch ex ~now_of ~out pkts)
      in
      let compiled =
        batch_obs prog (fun ex ~now_of ~out pkts ->
            Nicsim.Exec.run_batch_compiled ex ~now_of ~out pkts)
      in
      check_bool "per-packet latency bits + drops + counters" true (interp = compiled))
    [ P4ir.Program.linear "lin" (chain 3); cached_prog (); merged_prog () ]

(* --- replicas --- *)

let test_replica_compiled_identical () =
  let prog = P4ir.Program.linear "rep" (chain 3) in
  let ex = Nicsim.Exec.create (Nicsim.Exec.default_config target) prog in
  (* Warm the parent so replicas inherit nonzero packets_seen. *)
  let warm = zipf_source 4L in
  for _ = 1 to 50 do
    ignore (Nicsim.Exec.run_packet ex ~now:0. (warm ()))
  done;
  let r_interp = Nicsim.Exec.replicate ex in
  let r_comp = Nicsim.Exec.replicate ex in
  let src_a = zipf_source 5L and src_b = zipf_source 5L in
  let ok = ref true in
  for i = 1 to 200 do
    let a = Nicsim.Exec.run_packet_at r_interp ~seq:(50 + i) ~now:0.01 (src_a ()) in
    let b = Nicsim.Exec.run_packet_compiled_at r_comp ~seq:(50 + i) ~now:0.01 (src_b ()) in
    if not (Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)) then ok := false
  done;
  check_bool "replica latencies bit-identical" true !ok;
  check_bool "replica counters identical" true
    (Profile.Counter.dump (Nicsim.Exec.counters r_interp)
    = Profile.Counter.dump (Nicsim.Exec.counters r_comp))

(* --- telemetry identity --- *)

module M = Telemetry.Metrics
module Tr = Telemetry.Trace
module H = Telemetry.Histogram

let telemetry_obs driver =
  let tel = Telemetry.create ~trace_capacity:4096 ~trace_sample_every:7 () in
  let sim = Nicsim.Sim.create ~telemetry:tel target (cached_prog ()) in
  let stats = driver sim ~duration:1.0 ~packets:400 ~source:(zipf_source 13L) in
  (tel, window_stats_bits stats)

let test_compiled_telemetry_identical () =
  let tel_a, bits_a = telemetry_obs (fun sim -> Nicsim.Sim.run_window sim) in
  let tel_b, bits_b = telemetry_obs (fun sim -> Nicsim.Sim.run_window_compiled sim) in
  check_bool "stats identical under sink" true (bits_a = bits_b);
  let ma = Telemetry.metrics tel_a and mb = Telemetry.metrics tel_b in
  Alcotest.(check (list string)) "metric names" (M.names ma) (M.names mb);
  List.iter
    (fun n ->
      check_bool (n ^ " counter") true (M.find_counter ma n = M.find_counter mb n);
      check_bool (n ^ " gauge") true
        (match (M.find_gauge ma n, M.find_gauge mb n) with
        | Some a, Some b -> Float.equal a b
        | None, None -> true
        | _ -> false);
      check_bool (n ^ " histogram") true
        (match (M.find_histogram ma n, M.find_histogram mb n) with
        | Some a, Some b -> H.bucket_counts a = H.bucket_counts b
        | None, None -> true
        | _ -> false))
    (M.names ma);
  let spans t = Tr.spans (Option.get (Telemetry.trace t)) in
  check_bool "sampled spans identical" true (spans tel_a = spans tel_b);
  check_bool "spans nonempty" true (spans tel_a <> [])

(* --- deploys: incremental recompilation and staleness --- *)

let test_incremental_recompile_reuses_artifacts () =
  let sim = Nicsim.Sim.create target (P4ir.Program.linear "inc" (chain 4)) in
  ignore
    (Nicsim.Sim.run_window_compiled sim ~duration:1.0 ~packets:100 ~source:(zipf_source 2L));
  (* Reshape t2 only (extra action): hot_patch rebuilds one engine, and
     the eager recompile must rebuild exactly that table's artifact. *)
  let tabs' =
    List.mapi (fun i _ -> mk_table ~extra_action:(i = 2) i ~entries:[ 1L; 2L; 3L ]) (chain 4)
  in
  let changed = Nicsim.Sim.hot_patch sim (P4ir.Program.linear "inc" tabs') in
  check_int "one table rebuilt by hot_patch" 1 changed;
  let reused, rebuilt = Nicsim.Exec.precompile (Nicsim.Sim.exec sim) in
  check_int "three artifacts reused" 3 reused;
  check_int "one artifact rebuilt" 1 rebuilt

let deploy_fixture seed run =
  let sim = Nicsim.Sim.create target (P4ir.Program.linear "dep" (chain 4)) in
  let obs () =
    Profile.Counter.dump (Nicsim.Exec.counters (Nicsim.Sim.exec sim))
  in
  let w1 = run sim ~duration:1.0 ~packets:200 ~source:(zipf_source seed) in
  let tabs' =
    List.mapi (fun i _ -> mk_table ~extra_action:(i = 1) i ~entries:[ 1L; 2L; 3L ]) (chain 4)
  in
  ignore (Nicsim.Sim.hot_patch sim (P4ir.Program.linear "dep" tabs'));
  let w2 = run sim ~duration:1.0 ~packets:200 ~source:(zipf_source (Int64.add seed 1L)) in
  (window_stats_bits w1, window_stats_bits w2, obs ())

let test_compiled_across_hot_patch_identical =
  qtest ~count:10 "window / hot_patch / window: compiled = sequential"
    QCheck2.Gen.(map Int64.of_int int)
    (fun seed ->
      deploy_fixture seed (fun sim -> Nicsim.Sim.run_window sim)
      = deploy_fixture seed (fun sim -> Nicsim.Sim.run_window_compiled sim))

let test_reset_counters_recompiles () =
  let ex = Nicsim.Exec.create (Nicsim.Exec.default_config target) (cached_prog ()) in
  let src = zipf_source 8L in
  ignore (Nicsim.Exec.run_packet_compiled ex ~now:0. (src ()));
  Nicsim.Exec.reset_counters ex;
  (* Counter.clear orphans the compiled pipeline's cells; the next
     compiled packet must run on a fresh compile against live slots. *)
  ignore (Nicsim.Exec.run_packet_compiled ex ~now:0.01 (src ()));
  check_bool "counters repopulate after reset" true
    (Profile.Counter.dump (Nicsim.Exec.counters ex) <> [])

let () =
  Alcotest.run "compile"
    [ ( "flatten",
        [ Alcotest.test_case "linear layout" `Quick test_flatten_linear;
          Alcotest.test_case "branching layout" `Quick test_flatten_branching;
          Alcotest.test_case "per-action successors" `Quick test_flatten_per_action;
          Alcotest.test_case "cache and merge flatten" `Quick test_flatten_cache_and_merge ] );
      ( "identity",
        [ test_compiled_window_identical;
          test_compiled_cache_identical;
          Alcotest.test_case "merged/branching/switch" `Quick test_compiled_merged_identical;
          Alcotest.test_case "optimizer output" `Quick test_compiled_optimizer_output_identical;
          Alcotest.test_case "batch latencies" `Quick test_batch_latencies_bit_identical;
          Alcotest.test_case "replicas" `Quick test_replica_compiled_identical;
          Alcotest.test_case "telemetry" `Quick test_compiled_telemetry_identical ] );
      ( "deploys",
        [ Alcotest.test_case "incremental recompile reuse" `Quick
            test_incremental_recompile_reuses_artifacts;
          test_compiled_across_hot_patch_identical;
          Alcotest.test_case "reset_counters recompiles" `Quick
            test_reset_counters_recompiles ] ) ]
