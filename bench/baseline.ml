(* The pre-fast-path table engine and window loop, kept verbatim (modulo
   trimming of control-plane operations the benchmark never calls) as the
   "before" comparator for `main.exe perf`. This is benchmark scaffolding
   only — the simulator proper uses Nicsim.Engine.

   Characteristics being measured against:
   - lookups build a fresh string key per probed group (Buffer +
     List.combine allocation on the hot path);
   - shape groups live in a list that is fully rebuilt and re-sorted on
     every insert;
   - the window loop allocates a latency array per window and sorts it
     with the polymorphic [compare]. *)

type shape_elem =
  | S_exact
  | S_prefix of int
  | S_mask of int64

type group = {
  shape : shape_elem list;
  total_prefix : int;
  max_priority : int;
  tbl : (string, P4ir.Table.entry) Hashtbl.t;
}

type backend =
  | Exact_hash of (string, P4ir.Table.entry) Hashtbl.t
  | Shaped of { mutable groups : group list; lpm_ordered : bool }

type t = { table : P4ir.Table.t; backend : backend }

let key_fields (tab : P4ir.Table.t) = List.map (fun (k : P4ir.Table.key) -> k.field) tab.keys

let all_exact (tab : P4ir.Table.t) =
  List.for_all
    (fun (k : P4ir.Table.key) -> P4ir.Match_kind.equal k.kind P4ir.Match_kind.Exact)
    tab.keys

let exact_key_of_entry (e : P4ir.Table.entry) =
  let buf = Buffer.create 32 in
  List.iter
    (fun p ->
      match p with
      | P4ir.Pattern.Exact v ->
        Buffer.add_int64_le buf v;
        Buffer.add_char buf '|'
      | _ -> invalid_arg "Baseline: non-exact pattern in exact table")
    e.patterns;
  Buffer.contents buf

let shape_of_pattern (p : P4ir.Pattern.t) =
  match p with
  | P4ir.Pattern.Exact _ -> S_exact
  | P4ir.Pattern.Lpm (_, len) -> S_prefix len
  | P4ir.Pattern.Ternary (_, mask) -> S_mask mask
  | P4ir.Pattern.Range _ -> invalid_arg "Baseline: range pattern unsupported"

let mask_of_shape (k : P4ir.Table.key) = function
  | S_exact -> P4ir.Value.truncate ~width:(P4ir.Field.width k.field) Int64.minus_one
  | S_prefix len -> P4ir.Value.prefix_mask ~width:(P4ir.Field.width k.field) ~prefix_len:len
  | S_mask m -> m

let masked_key (tab : P4ir.Table.t) shape values =
  let buf = Buffer.create 32 in
  List.iter2
    (fun (k, s) v ->
      Buffer.add_int64_le buf (Int64.logand v (mask_of_shape k s));
      Buffer.add_char buf '|')
    (List.combine tab.keys shape)
    values;
  Buffer.contents buf

let entry_values (e : P4ir.Table.entry) =
  List.map
    (fun (p : P4ir.Pattern.t) ->
      match p with
      | P4ir.Pattern.Exact v | P4ir.Pattern.Lpm (v, _) | P4ir.Pattern.Ternary (v, _) -> v
      | P4ir.Pattern.Range (lo, _) -> lo)
    e.patterns

let shape_of_entry (e : P4ir.Table.entry) = List.map shape_of_pattern e.patterns

let total_prefix_of_shape shape =
  List.fold_left
    (fun acc s ->
      acc + match s with S_exact -> 64 | S_prefix len -> len | S_mask _ -> 0)
    0 shape

let sort_groups lpm_ordered groups =
  if lpm_ordered then
    List.sort (fun a b -> compare b.total_prefix a.total_prefix) groups
  else groups

let hash_keep tbl key (e : P4ir.Table.entry) =
  match Hashtbl.find_opt tbl key with
  | Some (old : P4ir.Table.entry) when old.priority >= e.priority -> ()
  | _ -> Hashtbl.replace tbl key e

(* The old insert: rebuild and re-sort the whole group list every time. *)
let shaped_insert st ~lpm_ordered (tab : P4ir.Table.t) (e : P4ir.Table.entry) =
  let shape = shape_of_entry e in
  let key = masked_key tab shape (entry_values e) in
  match List.find_opt (fun g -> g.shape = shape) st with
  | Some g ->
    hash_keep g.tbl key e;
    sort_groups lpm_ordered
      (List.map
         (fun g' ->
           if g'.shape = shape then { g' with max_priority = max g'.max_priority e.priority }
           else g')
         st)
  | None ->
    let tbl = Hashtbl.create 64 in
    Hashtbl.replace tbl key e;
    sort_groups lpm_ordered
      ({ shape; total_prefix = total_prefix_of_shape shape; max_priority = e.priority; tbl }
       :: st)

let create (tab : P4ir.Table.t) =
  let backend =
    if all_exact tab then begin
      let h = Hashtbl.create (max 64 (List.length tab.entries)) in
      List.iter (fun e -> hash_keep h (exact_key_of_entry e) e) tab.entries;
      Exact_hash h
    end
    else begin
      let lpm_ordered =
        P4ir.Match_kind.equal (P4ir.Table.effective_kind tab) P4ir.Match_kind.Lpm
      in
      let groups =
        List.fold_left (fun st e -> shaped_insert st ~lpm_ordered tab e) [] tab.entries
      in
      Shaped { groups; lpm_ordered }
    end
  in
  { table = tab; backend }

let insert t e =
  match t.backend with
  | Exact_hash h -> Hashtbl.replace h (exact_key_of_entry e) e
  | Shaped s -> s.groups <- shaped_insert s.groups ~lpm_ordered:s.lpm_ordered t.table e

let packet_values t pkt = List.map (Nicsim.Packet.get pkt) (key_fields t.table)

let exact_key_of_values values =
  let buf = Buffer.create 32 in
  List.iter
    (fun v ->
      Buffer.add_int64_le buf v;
      Buffer.add_char buf '|')
    values;
  Buffer.contents buf

let lookup t pkt =
  match t.backend with
  | Exact_hash h ->
    let key = exact_key_of_values (packet_values t pkt) in
    (Hashtbl.find_opt h key, 1)
  | Shaped { groups; lpm_ordered } ->
    let values = packet_values t pkt in
    if lpm_ordered then
      let rec probe accesses = function
        | [] -> (None, max 1 accesses)
        | g :: rest -> (
          let key = masked_key t.table g.shape values in
          match Hashtbl.find_opt g.tbl key with
          | Some e -> (Some e, accesses + 1)
          | None -> probe (accesses + 1) rest)
      in
      probe 0 groups
    else begin
      let best = ref None in
      let accesses = ref 0 in
      List.iter
        (fun g ->
          incr accesses;
          let key = masked_key t.table g.shape values in
          match Hashtbl.find_opt g.tbl key with
          | Some e -> (
            match !best with
            | Some (b : P4ir.Table.entry) when b.priority >= e.priority -> ()
            | _ -> best := Some e)
          | None -> ())
        groups;
      (!best, max 1 !accesses)
    end

(* The old Sim.run_window loop: fresh latency array every window, one
   run_packet call per packet, polymorphic-compare sort for the p99. *)
let run_window ex ~start ~duration ~packets ~source =
  let latencies = Array.make packets 0. in
  let drops = ref 0 in
  for i = 0 to packets - 1 do
    let pkt_time = start +. (duration *. float_of_int i /. float_of_int packets) in
    let pkt = source () in
    latencies.(i) <- Nicsim.Exec.run_packet ex ~now:pkt_time pkt;
    if Nicsim.Packet.is_dropped pkt then incr drops
  done;
  let sum = Array.fold_left ( +. ) 0. latencies in
  let avg = sum /. float_of_int packets in
  Array.sort compare latencies;
  let p99 = latencies.(min (packets - 1) (packets * 99 / 100)) in
  (avg, p99, !drops)
