(* `main.exe perf`: the nicsim + optimizer fast-path micro-suite.

   Times the table-engine lookup path by match kind against the
   pre-fast-path implementation ({!Baseline}), engine construction,
   single-packet execution, and the window drivers (sequential, batched,
   parallel); then the optimizer fast path (candidate enumeration,
   analytic evaluation, knapsack, end-to-end optimize — sequential vs
   parallel vs warm-start) against the pre-fast-path search
   ({!Opt_baseline}). Writes the numbers to a JSON artifact (default
   BENCH_nicsim.json) so CI can track them. *)

(* --- timing --- *)

let now () = Unix.gettimeofday ()

(* Best-of-[reps] mean ns/op, with one untimed warmup pass. *)
let time_ns ?(reps = 3) ~iters f =
  ignore (f ());
  let best = ref infinity in
  for _ = 1 to reps do
    let t0 = now () in
    for _ = 1 to iters do
      ignore (Sys.opaque_identity (f ()))
    done;
    let dt = (now () -. t0) *. 1e9 /. float_of_int iters in
    if dt < !best then best := dt
  done;
  !best

type bench = {
  name : string;
  unit_ : string;  (* what one "op" is *)
  before_ns : float option;  (* pre-fast-path implementation, if comparable *)
  after_ns : float;
  iters : int;
  note : string option;  (* context for the row (plan kinds, skip reason) *)
}

let speedup b = Option.map (fun before -> before /. b.after_ns) b.before_ns

let ops_per_sec ns = 1e9 /. ns

(* --- fixtures --- *)

let nop_actions = [ P4ir.Action.nop "a" ]

let mk_table name keys entries =
  P4ir.Table.make ~name ~keys ~actions:nop_actions ~default_action:"a" ~entries ()

let exact_table n =
  mk_table "bx"
    [ P4ir.Table.key P4ir.Field.Ipv4_dst P4ir.Match_kind.Exact ]
    (List.init n (fun i -> P4ir.Table.entry [ P4ir.Pattern.Exact (Int64.of_int i) ] "a"))

(* [nlens] prefix lengths (8, 9, ...) on Ipv4_dst, [per_len] prefixes
   each — the shaped-LPM worst case the paper's cost model charges one
   hash probe per length for. *)
let lpm_entries ~nlens ~per_len =
  List.concat
    (List.init nlens (fun l ->
         let len = 8 + l in
         List.init per_len (fun i ->
             let base =
               Int64.shift_left (Int64.of_int ((l * per_len) + i + 1)) (32 - len)
             in
             let v = P4ir.Value.truncate ~width:32 base in
             P4ir.Table.entry [ P4ir.Pattern.Lpm (v, len) ] "a")))

let lpm_table ~nlens ~per_len =
  mk_table "bl"
    [ P4ir.Table.key P4ir.Field.Ipv4_dst P4ir.Match_kind.Lpm ]
    (lpm_entries ~nlens ~per_len)

let ternary_masks =
  [| 0xFFL; 0xFF00L; 0xFFFFL; 0xFF0000L; 0xFFFF00L; 0xFFFFFFL; 0xF0F0F0L; 0x0F0F0FL |]

let ternary_table ~per_mask =
  let entries =
    List.concat
      (List.init (Array.length ternary_masks) (fun m ->
           let mask = ternary_masks.(m) in
           List.init per_mask (fun i ->
               let v = Int64.logand (Int64.of_int (((m * per_mask) + i) * 2654435761)) mask in
               P4ir.Table.entry ~priority:((m * per_mask) + i)
                 [ P4ir.Pattern.Ternary (v, mask) ]
                 "a")))
  in
  mk_table "bt" [ P4ir.Table.key P4ir.Field.Ipv4_dst P4ir.Match_kind.Ternary ] entries

(* A cycling pool of probe packets: deterministic, mixes hits at several
   depths with misses. *)
let probe_pool ~seed ~size ~of_rng =
  let rng = Stdx.Prng.create seed in
  let pool = Array.init size (fun _ -> of_rng rng) in
  let i = ref 0 in
  fun () ->
    let p = pool.(!i) in
    i := (!i + 1) mod size;
    p

let lookup_bench ~name ~iters tab probe_of_rng =
  let before_eng = Baseline.create tab in
  let after_eng = Nicsim.Engine.create tab in
  let probes = probe_pool ~seed:7L ~size:1024 ~of_rng:probe_of_rng in
  let before_ns = time_ns ~iters (fun () -> Baseline.lookup before_eng (probes ())) in
  let probes = probe_pool ~seed:7L ~size:1024 ~of_rng:probe_of_rng in
  let after_ns = time_ns ~iters (fun () -> Nicsim.Engine.lookup after_eng (probes ())) in
  { name; unit_ = "lookup"; before_ns = Some before_ns; after_ns; iters; note = None }

let dst_packet rng =
  Nicsim.Packet.of_fields
    [ (P4ir.Field.Ipv4_dst, Int64.logand (Stdx.Prng.next64 rng) 0xFFFFFFFFL) ]

(* --- rule-scale fixtures (learned-index LPM, decision-tree ternary) --- *)

(* 16 prefix lengths (17..32) x n/16 prefixes each. The odd-multiplier
   bijection keeps prefixes distinct per length at million-rule scale
   (the i+1 indices stay below 2^17 <= 2^len). Returns the table and a
   probe-value generator mixing ~50% guaranteed hits at random depths
   with random 32-bit misses. *)
let scale_lpm_fixture n =
  let nlens = 16 in
  let per = max 1 (n / nlens) in
  let prefix_of l i =
    let len = 17 + l in
    let v = ((l * per) + i + 1) * 2654435761 land ((1 lsl len) - 1) in
    (Int64.shift_left (Int64.of_int v) (32 - len), len)
  in
  let entries =
    List.concat
      (List.init nlens (fun l ->
           List.init per (fun i ->
               let v, len = prefix_of l i in
               P4ir.Table.entry [ P4ir.Pattern.Lpm (v, len) ] "a")))
  in
  let tab =
    mk_table "sl" [ P4ir.Table.key P4ir.Field.Ipv4_dst P4ir.Match_kind.Lpm ] entries
  in
  let probe rng =
    if Stdx.Prng.int rng 2 = 0 then begin
      let v, len = prefix_of (Stdx.Prng.int rng nlens) (Stdx.Prng.int rng per) in
      let low_mask = Int64.sub (Int64.shift_left 1L (32 - len)) 1L in
      Int64.logor v (Int64.logand (Stdx.Prng.next64 rng) low_mask)
    end
    else Int64.logand (Stdx.Prng.next64 rng) 0xFFFFFFFFL
  in
  (tab, probe)

(* 64 ClassBench-style prefix-pair masks x n/64 entries each with
   unique priorities: the 32-bit key is read as two 16-bit halves
   (src/dst prefixes of a compressed 5-tuple ACL), each mask a prefix
   of length 9..16 over each half — 8 x 8 = 64 masks sharing their top
   nine bits on both halves (18 clean split bits), popcount >= 18 so a
   million rules stay distinct at ~6% fill. That is the mask structure
   real ACL rule sets have (and what a TCAM expands ranges into);
   fully random dense masks share no bits, which no decision tree can
   split — the engine's degeneracy guard exists for exactly that
   shape, and very short prefixes (wildcard on most split bits) blow
   the duplication budget the same way at million-rule scale. Values
   spread an odd-multiplier bijection of the entry index across the
   mask's set bits, so every entry is distinct and splits stay
   balanced at depth. *)
let scale_ternary_fixture n =
  let pairs = ref [] in
  for a = 16 downto 9 do
    for b = 16 downto 9 do
      pairs := (a, b) :: !pairs
    done
  done;
  let pairs = Array.of_list !pairs in
  let nmasks = 64 in
  let per = max 1 (n / nmasks) in
  let half_mask len = Int64.of_int (0xFFFF land (0xFFFF lsl (16 - len))) in
  let masks =
    Array.init nmasks (fun m ->
        let a, b = pairs.(m) in
        Int64.logor (Int64.shift_left (half_mask a) 16) (half_mask b))
  in
  (* Deposit the low bits of [x] into [mask]'s set bit positions. *)
  let deposit mask x =
    let v = ref 0L and bit = ref 0 in
    for b = 0 to 31 do
      if Int64.equal (Int64.logand (Int64.shift_right_logical mask b) 1L) 1L then begin
        if (x lsr !bit) land 1 = 1 then v := Int64.logor !v (Int64.shift_left 1L b);
        incr bit
      end
    done;
    !v
  in
  let value m i =
    let a, b = pairs.(m) in
    deposit masks.(m) (i * 2654435761 land ((1 lsl (a + b)) - 1))
  in
  let entries =
    List.concat
      (List.init nmasks (fun m ->
           List.init per (fun i ->
               P4ir.Table.entry ~priority:((m * per) + i)
                 [ P4ir.Pattern.Ternary (value m i, masks.(m)) ]
                 "a")))
  in
  let tab =
    mk_table "st" [ P4ir.Table.key P4ir.Field.Ipv4_dst P4ir.Match_kind.Ternary ] entries
  in
  let probe rng =
    if Stdx.Prng.int rng 2 = 0 then begin
      let m = Stdx.Prng.int rng nmasks in
      let outside = Int64.logand (Int64.lognot masks.(m)) 0xFFFFFFFFL in
      Int64.logor (value m (Stdx.Prng.int rng per)) (Int64.logand (Stdx.Prng.next64 rng) outside)
    end
    else Int64.logand (Stdx.Prng.next64 rng) 0xFFFFFFFFL
  in
  (tab, probe)

(* Same table under two forced plans. Hints (rather than Auto) keep the
   comparison meaningful at smoke scale, where the shrunk tables fall
   below the auto-selection thresholds. Plans build during the untimed
   warmup pass; the note records what actually ran. *)
let hinted_lookup_bench ~name ~iters ~before_hint ~after_hint tab probe_value =
  let engine hint =
    let eng = Nicsim.Engine.create tab in
    Nicsim.Engine.set_backend_hint eng hint;
    eng
  in
  let before_eng = engine before_hint in
  let after_eng = engine after_hint in
  let of_rng rng =
    Nicsim.Packet.of_fields [ (P4ir.Field.Ipv4_dst, probe_value rng) ]
  in
  let probes = probe_pool ~seed:7L ~size:1024 ~of_rng in
  let before_ns = time_ns ~iters (fun () -> Nicsim.Engine.lookup before_eng (probes ())) in
  let probes = probe_pool ~seed:7L ~size:1024 ~of_rng in
  let after_ns = time_ns ~iters (fun () -> Nicsim.Engine.lookup after_eng (probes ())) in
  { name;
    unit_ = "lookup";
    before_ns = Some before_ns;
    after_ns;
    iters;
    note =
      Some
        (Printf.sprintf "%s -> %s" (Nicsim.Engine.plan_kind before_eng)
           (Nicsim.Engine.plan_kind after_eng)) }

(* --- window fixtures --- *)

(* Exact + LPM + ternary pipeline, no cache tables (so the parallel
   driver takes its fast path rather than falling back). *)
let window_program () =
  P4ir.Program.linear "perf"
    [ exact_table 1024; lpm_table ~nlens:12 ~per_len:64; ternary_table ~per_mask:32 ]

let window_source seed =
  let rng = Stdx.Prng.create seed in
  fun () ->
    Nicsim.Packet.of_fields
      [ (P4ir.Field.Ipv4_src, Int64.logand (Stdx.Prng.next64 rng) 0xFFFFFFFFL);
        (P4ir.Field.Ipv4_dst, Int64.logand (Stdx.Prng.next64 rng) 0xFFFFFFFFL);
        (P4ir.Field.Tcp_sport, Int64.logand (Stdx.Prng.next64 rng) 0xFFFFL);
        (P4ir.Field.Tcp_dport, Int64.logand (Stdx.Prng.next64 rng) 0xFFFFL) ]

let target = Costmodel.Target.bluefield2

let window_bench ~name ~packets ~windows run =
  (* One untimed warmup window, then [windows] timed ones; ns/packet. *)
  let t0 = ref 0. in
  let total = ref 0 in
  let first = ref true in
  for _ = 0 to windows do
    if not !first then total := !total + packets;
    if !first then begin
      ignore (Sys.opaque_identity (run ()));
      first := false;
      t0 := now ()
    end
    else ignore (Sys.opaque_identity (run ()))
  done;
  let ns = (now () -. !t0) *. 1e9 /. float_of_int !total in
  { name; unit_ = "packet"; before_ns = None; after_ns = ns; iters = !total; note = None }

(* --- the suite --- *)

let run_suite ~smoke =
  let scale n = if smoke then max 1 (n / 50) else n in
  let lookup_iters = scale 200_000 in
  let benches = ref [] in
  let push b = benches := b :: !benches in

  (* Engine lookups by match kind. *)
  push
    (lookup_bench ~name:"engine-lookup/exact-4k" ~iters:lookup_iters (exact_table 4096)
       (fun rng ->
         Nicsim.Packet.of_fields
           [ (P4ir.Field.Ipv4_dst, Int64.of_int (Stdx.Prng.int rng 8192)) ]));
  push
    (lookup_bench ~name:"engine-lookup/lpm-16len" ~iters:lookup_iters
       (lpm_table ~nlens:16 ~per_len:64)
       dst_packet);
  push
    (lookup_bench ~name:"engine-lookup/ternary-8mask" ~iters:lookup_iters
       (ternary_table ~per_mask:64)
       dst_packet);

  (* Rule-scale rows: the learned-index LPM plan vs Waldvogel, and the
     decision-tree ternary plan vs the skip-list linear probe, at 100k
     and 1M rules (tables shrink with [scale] in smoke mode — the forced
     hints keep both plans engaged below the auto thresholds). Exact
     rows ride along for scale context: the hash backend vs the
     string-key baseline. Floors are enforced in [run]. *)
  List.iter
    (fun (n, label) ->
      let sz = scale n in
      let lpm_tab, lpm_probe = scale_lpm_fixture sz in
      push
        (hinted_lookup_bench
           ~name:(Printf.sprintf "engine-lookup/lpm-%s" label)
           ~iters:lookup_iters ~before_hint:Nicsim.Engine.Force_waldvogel
           ~after_hint:Nicsim.Engine.Force_learned lpm_tab lpm_probe);
      let ter_tab, ter_probe = scale_ternary_fixture sz in
      push
        (hinted_lookup_bench
           ~name:(Printf.sprintf "engine-lookup/ternary-%s" label)
           ~iters:lookup_iters ~before_hint:Nicsim.Engine.Force_linear
           ~after_hint:Nicsim.Engine.Force_tree ter_tab ter_probe);
      push
        (lookup_bench
           ~name:(Printf.sprintf "engine-lookup/exact-%s" label)
           ~iters:lookup_iters (exact_table sz)
           (fun rng ->
             Nicsim.Packet.of_fields
               [ (P4ir.Field.Ipv4_dst, Int64.of_int (Stdx.Prng.int rng (2 * sz))) ])))
    [ (100_000, "100k"); (1_000_000, "1M") ];

  (* Engine build: insert-time behaviour of the shaped backend. *)
  let build_iters = scale 200 in
  let lpm_tab = lpm_table ~nlens:16 ~per_len:32 in
  push
    { name = "engine-build/lpm-16x32";
      unit_ = "build";
      before_ns = Some (time_ns ~iters:build_iters (fun () -> Baseline.create lpm_tab));
      after_ns = time_ns ~iters:build_iters (fun () -> Nicsim.Engine.create lpm_tab);
      iters = build_iters;
      note = None };

  (* Single-packet execution through the 3-table pipeline. *)
  let prog = window_program () in
  let ex = Nicsim.Exec.create (Nicsim.Exec.default_config target) prog in
  let src = window_source 11L in
  push
    { name = "exec/run_packet";
      unit_ = "packet";
      before_ns = None;
      after_ns = time_ns ~iters:(scale 100_000) (fun () -> Nicsim.Exec.run_packet ex ~now:0. (src ()));
      iters = scale 100_000;
      note = None };

  (* Window drivers. Fresh sim per mode; same seed, so identical traffic. *)
  let packets = scale 100_000 in
  let windows = if smoke then 1 else 3 in
  let fresh_window_bench name run_of_sim =
    let sim = Nicsim.Sim.create target (window_program ()) in
    let src = window_source 23L in
    window_bench ~name ~packets ~windows (fun () -> run_of_sim sim src)
  in
  push
    ((* The old loop: per-window array allocation + polymorphic sort. *)
     let ex = Nicsim.Exec.create (Nicsim.Exec.default_config target) (window_program ()) in
     let src = window_source 23L in
     let start = ref 0. in
     window_bench ~name:"run_window/old-loop" ~packets ~windows (fun () ->
         let r = Baseline.run_window ex ~start:!start ~duration:1.0 ~packets ~source:src in
         start := !start +. 1.0;
         r));
  push
    (fresh_window_bench "run_window/seq" (fun sim src ->
         Nicsim.Sim.run_window sim ~duration:1.0 ~packets ~source:src));
  push
    (fresh_window_bench "run_window/batched" (fun sim src ->
         Nicsim.Sim.run_window_batched sim ~duration:1.0 ~packets ~source:src));
  push
    (fresh_window_bench "run_window/parallel" (fun sim src ->
         Nicsim.Sim.run_window_parallel sim ~duration:1.0 ~packets ~source:src));

  (* --- compiled data path --- *)

  (* A many-node pipeline: 20 small exact tables over four header
     fields, the shape of real P4 programs — switch.p4-class pipelines
     run dozens of match-action tables — where per-node dispatch (name
     lookups, counter hash probes, per-step allocation) — not match
     width — dominates the interpreter's cost. Packets come from a
     pre-generated cycling pool so both sides time execution, not
     traffic generation (all actions are nops, so pooled packets are
     never mutated and can recirculate). The before column is the
     interpretive sequential driver on the same fixture. *)
  let pipe_fields =
    [| P4ir.Field.Ipv4_src; P4ir.Field.Ipv4_dst; P4ir.Field.Tcp_sport; P4ir.Field.Tcp_dport |]
  in
  let pipeline_program () =
    P4ir.Program.linear "pipe"
      (List.init 20 (fun i ->
           mk_table
             (Printf.sprintf "p%d" i)
             [ P4ir.Table.key pipe_fields.(i mod 4) P4ir.Match_kind.Exact ]
             (List.init 64 (fun j -> P4ir.Table.entry [ P4ir.Pattern.Exact (Int64.of_int j) ] "a"))))
  in
  let pooled_source () =
    (* ~50% hit rate per table: values in [0,128) against 64 entries. *)
    probe_pool ~seed:31L ~size:1024 ~of_rng:(fun rng ->
        Nicsim.Packet.of_fields
          (List.map
             (fun f -> (f, Int64.of_int (Stdx.Prng.int rng 128)))
             (Array.to_list pipe_fields)))
  in
  let compiled_before_ns =
    let sim = Nicsim.Sim.create target (pipeline_program ()) in
    let src = pooled_source () in
    (window_bench ~name:"pipe/interp" ~packets ~windows (fun () ->
         Nicsim.Sim.run_window sim ~duration:1.0 ~packets ~source:src))
      .after_ns
  in
  let compiled_row batch =
    let sim = Nicsim.Sim.create target (pipeline_program ()) in
    let src = pooled_source () in
    let b =
      window_bench
        ~name:(Printf.sprintf "run_window/compiled-%d" batch)
        ~packets ~windows
        (fun () -> Nicsim.Sim.run_window_compiled ~batch sim ~duration:1.0 ~packets ~source:src)
    in
    { b with before_ns = Some compiled_before_ns }
  in
  push (compiled_row 64);
  push (compiled_row 256);

  (* --- telemetry overhead --- *)

  (* The disabled sink's whole-window cost (guard loads plus the
     always-on histogram fill behind window_stats' p50/p90/p999) against
     a telemetry-free window loop doing exactly the pre-telemetry work:
     run_packet per packet, index-order sum, Float.compare sort. Must
     stay within 2% (checked in [run]). *)
  let telemetry_free_window ex latencies ~start ~packets ~source =
    let drops = ref 0 in
    for i = 0 to packets - 1 do
      let pkt = source () in
      latencies.(i) <-
        Nicsim.Exec.run_packet ex
          ~now:(start +. (1.0 *. float_of_int i /. float_of_int packets))
          pkt;
      if Nicsim.Packet.is_dropped pkt then incr drops
    done;
    let sum = ref 0. in
    for i = 0 to packets - 1 do
      sum := !sum +. Array.unsafe_get latencies i
    done;
    let avg = !sum /. float_of_int packets in
    Array.sort Float.compare latencies;
    (avg, latencies.(min (packets - 1) (packets * 99 / 100)), !drops)
  in
  (* A 2% claim is below this suite's row-to-row drift (turbo, GC state),
     so the two sides alternate rep by rep and each takes its best — the
     same treatment [time_ns] gives its reps. *)
  push
    (let ex = Nicsim.Exec.create (Nicsim.Exec.default_config target) (window_program ()) in
     let src_b = window_source 23L in
     let latencies = Array.make packets 0. in
     let start = ref 0. in
     let before () =
       let r = telemetry_free_window ex latencies ~start:!start ~packets ~source:src_b in
       start := !start +. 1.0;
       r
     in
     let sim = Nicsim.Sim.create target (window_program ()) in
     let src_a = window_source 23L in
     let after () = Nicsim.Sim.run_window sim ~duration:1.0 ~packets ~source:src_a in
     ignore (Sys.opaque_identity (before ()));
     ignore (Sys.opaque_identity (after ()));
     let reps = if smoke then 3 else 7 in
     let best_b = ref infinity and best_a = ref infinity in
     for _ = 1 to reps do
       let t0 = now () in
       for _ = 1 to windows do
         ignore (Sys.opaque_identity (before ()))
       done;
       let b = (now () -. t0) *. 1e9 /. float_of_int (windows * packets) in
       if b < !best_b then best_b := b;
       let t0 = now () in
       for _ = 1 to windows do
         ignore (Sys.opaque_identity (after ()))
       done;
       let a = (now () -. t0) *. 1e9 /. float_of_int (windows * packets) in
       if a < !best_a then best_a := a
     done;
     { name = "telemetry/disabled-overhead";
       unit_ = "packet";
       before_ns = Some !best_b;
       after_ns = !best_a;
       iters = windows * packets * reps;
       note = None });

  (* The enabled sink's cost (metrics only, no trace ring): per-table
     hit/miss counters, packet/drop counters, window histogram merge.
     Informational — no baseline claim. *)
  push
    (let sim =
       Nicsim.Sim.create ~telemetry:(Telemetry.create ()) target (window_program ())
     in
     let src = window_source 23L in
     window_bench ~name:"telemetry/enabled-metrics" ~packets ~windows (fun () ->
         Nicsim.Sim.run_window sim ~duration:1.0 ~packets ~source:src));

  (* --- optimizer fast path --- *)

  (* Candidate enumeration over an 8-table pipelet: the old path re-runs
     the exponential segmentation recursion per call; the new path memoizes
     per (n, opts). *)
  let opt_fields =
    [| P4ir.Field.Ipv4_src; P4ir.Field.Ipv4_dst; P4ir.Field.Tcp_sport;
       P4ir.Field.Tcp_dport |]
  in
  let opt_chain n =
    P4ir.Builder.exact_chain ~prefix:"o" ~n ~key_of:(fun i -> opt_fields.(i mod 4)) ()
  in
  let tabs8 = opt_chain 8 in
  let prof8 = Profile.uniform (P4ir.Program.linear "o8" tabs8) in
  let enum_iters = scale 200 in
  push
    { name = "optim/enumerate-n8";
      unit_ = "enumerate";
      before_ns = Some (time_ns ~iters:enum_iters (fun () -> Opt_baseline.enumerate prof8 tabs8));
      after_ns = time_ns ~iters:enum_iters (fun () -> Pipeleon.Candidate.enumerate prof8 tabs8);
      iters = enum_iters;
      note = None };

  (* Analytic evaluation of one pipelet's full candidate list (fresh
     context per call, as local_optimize does): the old loop re-slices
     and re-scores every segment per combo; the new one memoizes segment
     metrics and reuses scratch arrays. *)
  let tabs6 = opt_chain 6 in
  let prof6 = Profile.uniform (P4ir.Program.linear "o6" tabs6) in
  let combos6 = Pipeleon.Candidate.enumerate prof6 tabs6 in
  let eval_iters = scale 100 in
  push
    { name = "optim/evaluate-analytic";
      unit_ = "pipelet";
      before_ns =
        Some
          (time_ns ~iters:eval_iters (fun () ->
               let ctx = Opt_baseline.context target prof6 ~reach_prob:1.0 tabs6 in
               List.iter
                 (fun c -> ignore (Sys.opaque_identity (Opt_baseline.evaluate_analytic ctx c)))
                 combos6));
      after_ns =
        time_ns ~iters:eval_iters (fun () ->
            let ctx = Pipeleon.Candidate.context target prof6 ~reach_prob:1.0 tabs6 in
            List.iter
              (fun c ->
                ignore (Sys.opaque_identity (Pipeleon.Candidate.evaluate_analytic ctx c)))
              combos6);
      iters = eval_iters;
      note = None };

  (* Group knapsack, 24 groups x 12 options with plenty of dominated
     options: the old DP sweeps the full bucket grid per option; the new
     one prunes and clamps to the reachable region. *)
  let knap_groups =
    List.init 24 (fun g ->
        List.init 12 (fun i ->
            { Pipeleon.Knapsack.gain = float_of_int (((g * 7) + i) mod 29);
              mem = 1024 * ((i mod 5) + 1);
              upd = float_of_int ((i mod 4) * 100);
              tag = i }))
  in
  let knap_iters = scale 200 in
  push
    { name = "optim/knapsack-24x12";
      unit_ = "solve";
      before_ns =
        Some
          (time_ns ~iters:knap_iters (fun () ->
               Opt_baseline.knapsack_solve ~groups:knap_groups ~mem_budget:(256 * 1024)
                 ~upd_budget:4000. ()));
      after_ns =
        time_ns ~iters:knap_iters (fun () ->
            Pipeleon.Knapsack.solve ~groups:knap_groups ~mem_budget:(256 * 1024)
              ~upd_budget:4000. ());
      iters = knap_iters;
      note = None };

  (* End-to-end Optimizer.optimize on a synthetic program (ESearch
     settings, groups off so both sides run the same passes). The
     "before" side is the verbatim pre-fast-path search. *)
  let synth_rng = Stdx.Prng.create 5L in
  let synth_params = { Experiments.Synth.default_params with pipelet_len = 6 } in
  let e2e_prog = Experiments.Synth.program ~params:synth_params synth_rng in
  let e2e_prof = Experiments.Synth.profile synth_rng e2e_prog in
  let e2e_cfg =
    { Pipeleon.Optimizer.default_config with top_k = 1.0; enable_groups = false }
  in
  let e2e_iters = scale 10 in
  let base_result = Opt_baseline.optimize ~top_k:1.0 target e2e_prof e2e_prog in
  let fast_result = Pipeleon.Optimizer.optimize ~config:e2e_cfg target e2e_prof e2e_prog in
  if
    (snd base_result).Opt_baseline.predicted_gain
    <> fast_result.Pipeleon.Optimizer.plan.Pipeleon.Search.predicted_gain
  then
    Printf.printf "WARNING: optim/optimize-e2e gain mismatch (before %.6f, after %.6f)\n"
      (snd base_result).Opt_baseline.predicted_gain
      fast_result.Pipeleon.Optimizer.plan.Pipeleon.Search.predicted_gain;
  push
    { name = "optim/optimize-e2e";
      unit_ = "optimize";
      before_ns =
        Some
          (time_ns ~iters:e2e_iters (fun () ->
               Opt_baseline.optimize ~top_k:1.0 target e2e_prof e2e_prog));
      after_ns =
        time_ns ~iters:e2e_iters (fun () ->
            Pipeleon.Optimizer.optimize ~config:e2e_cfg target e2e_prof e2e_prog);
      iters = e2e_iters;
      note = None };

  (* Parallel local search vs the (fast) sequential path. Domain spawn
     costs are constant, so this only wins on multicore hosts with
     enough hot pipelets. On a single-core host the row is informational
     only (no before column): a sub-1.0x "speedup" there would just be
     measuring spawn overhead the backend can never recover. *)
  let par_cfg = { e2e_cfg with use_parallel = true } in
  let par_after_ns =
    time_ns ~iters:e2e_iters (fun () ->
        Pipeleon.Optimizer.optimize ~config:par_cfg target e2e_prof e2e_prog)
  in
  push
    (if Domain.recommended_domain_count () <= 1 then
       { name = "optim/optimize-parallel";
         unit_ = "optimize";
         before_ns = None;
         after_ns = par_after_ns;
         iters = e2e_iters;
         note = Some "skipped comparison: single-core host" }
     else
       { name = "optim/optimize-parallel";
         unit_ = "optimize";
         before_ns =
           Some
             (time_ns ~iters:e2e_iters (fun () ->
                  Pipeleon.Optimizer.optimize ~config:e2e_cfg target e2e_prof e2e_prog));
         after_ns = par_after_ns;
         iters = e2e_iters;
         note = None });

  (* Warm-start: second and later generations with an unchanged profile
     reuse cached candidate evaluations keyed by pipelet signature. *)
  let warm_cache = Pipeleon.Search.create_cache () in
  let warm =
    { Pipeleon.Optimizer.warm_cache;
      warm_signature = Runtime.Incremental.pipelet_signature }
  in
  ignore (Pipeleon.Optimizer.optimize ~config:e2e_cfg ~warm target e2e_prof e2e_prog);
  push
    { name = "optim/optimize-warm";
      unit_ = "optimize";
      before_ns =
        Some
          (time_ns ~iters:e2e_iters (fun () ->
               Pipeleon.Optimizer.optimize ~config:e2e_cfg target e2e_prof e2e_prog));
      after_ns =
        time_ns ~iters:e2e_iters (fun () ->
            Pipeleon.Optimizer.optimize ~config:e2e_cfg ~warm target e2e_prof e2e_prog);
      iters = e2e_iters;
      note = None };
  List.rev !benches

(* --- reporting --- *)

let json_of_bench b =
  let base =
    [ ("name", P4ir.Json.String b.name);
      ("unit", P4ir.Json.String b.unit_);
      ("iters", P4ir.Json.Int (Int64.of_int b.iters));
      ("after_ns_per_op", P4ir.Json.Float b.after_ns);
      ("after_ops_per_sec", P4ir.Json.Float (ops_per_sec b.after_ns)) ]
  in
  let before =
    match b.before_ns with
    | None -> []
    | Some ns ->
      [ ("before_ns_per_op", P4ir.Json.Float ns);
        ("before_ops_per_sec", P4ir.Json.Float (ops_per_sec ns));
        ("speedup", P4ir.Json.Float (Option.get (speedup b))) ]
  in
  let note =
    match b.note with None -> [] | Some n -> [ ("note", P4ir.Json.String n) ]
  in
  P4ir.Json.Obj (base @ before @ note)

let report ~smoke ~out benches =
  Printf.printf "%-28s %14s %14s %9s\n" "bench" "before ns/op" "after ns/op" "speedup";
  List.iter
    (fun b ->
      Printf.printf "%-28s %14s %14.1f %9s%s\n" b.name
        (match b.before_ns with Some ns -> Printf.sprintf "%.1f" ns | None -> "-")
        b.after_ns
        (match speedup b with Some s -> Printf.sprintf "%.2fx" s | None -> "-")
        (match b.note with Some n -> "  (" ^ n ^ ")" | None -> ""))
    benches;
  let doc =
    P4ir.Json.Obj
      [ ("schema", P4ir.Json.String "nicsim-perf/1");
        ("generated_by", P4ir.Json.String "bench/main.exe perf");
        ("smoke", P4ir.Json.Bool smoke);
        ("domains_available", P4ir.Json.Int (Int64.of_int (Domain.recommended_domain_count ())));
        ("benches", P4ir.Json.List (List.map json_of_bench benches)) ]
  in
  let oc = open_out out in
  output_string oc (P4ir.Json.to_string ~indent:2 doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "\nwrote %s\n%!" out

let run ~smoke ~out =
  let benches = run_suite ~smoke in
  report ~smoke ~out benches;
  (* Guard the headline claims: the fast paths must beat their baselines,
     else the artifact records a regression loudly. The parallel row is
     exempt — domain-spawn overhead makes it a multicore-host-only win.
     The disabled-telemetry row has its own budget: instrumentation that
     nobody turned on may cost at most 2% of the window path. *)
  List.iter
    (fun b ->
      match speedup b with
      | Some s when b.name = "telemetry/disabled-overhead" ->
        if s < 0.98 then
          Printf.printf
            "WARNING: disabled telemetry exceeds the 2%% overhead budget (%.3fx)\n" s
      | Some s
        when List.mem b.name
               [ "engine-lookup/lpm-100k"; "engine-lookup/lpm-1M";
                 "engine-lookup/ternary-100k"; "engine-lookup/ternary-1M" ] ->
        (* The rule-scale claim: learned LPM and decision-tree ternary
           plans >= 2x over the Waldvogel / skip-probe paths at full
           scale. The million-rule rows get a softer floor — there both
           sides are cache-miss bound (tens of MB of plan arrays), which
           compresses the ratio. In smoke mode the tables shrink 50x, so
           the asymptotic gap narrows and the floor only guards against
           regression. *)
        let floor_ =
          if smoke then 1.05
          else if String.ends_with ~suffix:"-1M" b.name then 1.5
          else 2.0
        in
        if s < floor_ then
          Printf.printf "WARNING: %s below the %.2fx rule-scale floor (%.2fx)\n" b.name
            floor_ s
      | Some s when String.starts_with ~prefix:"run_window/compiled-" b.name ->
        (* The compiled data path's headline claim: >= 5x over the
           interpretive driver at full scale; at smoke scale warmup and
           fixed costs dilute the window, so the floor relaxes to 2x. *)
        let floor_ = if smoke then 2.0 else 5.0 in
        if s < floor_ then
          Printf.printf "WARNING: %s below the %.0fx compiled floor (%.2fx)\n" b.name floor_ s
      | Some s when s < 1.0 && b.name <> "optim/optimize-parallel" ->
        Printf.printf "WARNING: %s slower than baseline (%.2fx)\n" b.name s
      | _ -> ())
    benches
