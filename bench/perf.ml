(* `main.exe perf`: the nicsim fast-path micro-suite.

   Times the table-engine lookup path by match kind against the
   pre-fast-path implementation ({!Baseline}), engine construction,
   single-packet execution, and the window drivers (sequential, batched,
   parallel), then writes the numbers to a JSON artifact (default
   BENCH_nicsim.json) so CI can track them. *)

(* --- timing --- *)

let now () = Unix.gettimeofday ()

(* Best-of-[reps] mean ns/op, with one untimed warmup pass. *)
let time_ns ?(reps = 3) ~iters f =
  ignore (f ());
  let best = ref infinity in
  for _ = 1 to reps do
    let t0 = now () in
    for _ = 1 to iters do
      ignore (Sys.opaque_identity (f ()))
    done;
    let dt = (now () -. t0) *. 1e9 /. float_of_int iters in
    if dt < !best then best := dt
  done;
  !best

type bench = {
  name : string;
  unit_ : string;  (* what one "op" is *)
  before_ns : float option;  (* pre-fast-path implementation, if comparable *)
  after_ns : float;
  iters : int;
}

let speedup b = Option.map (fun before -> before /. b.after_ns) b.before_ns

let ops_per_sec ns = 1e9 /. ns

(* --- fixtures --- *)

let nop_actions = [ P4ir.Action.nop "a" ]

let mk_table name keys entries =
  P4ir.Table.make ~name ~keys ~actions:nop_actions ~default_action:"a" ~entries ()

let exact_table n =
  mk_table "bx"
    [ P4ir.Table.key P4ir.Field.Ipv4_dst P4ir.Match_kind.Exact ]
    (List.init n (fun i -> P4ir.Table.entry [ P4ir.Pattern.Exact (Int64.of_int i) ] "a"))

(* [nlens] prefix lengths (8, 9, ...) on Ipv4_dst, [per_len] prefixes
   each — the shaped-LPM worst case the paper's cost model charges one
   hash probe per length for. *)
let lpm_entries ~nlens ~per_len =
  List.concat
    (List.init nlens (fun l ->
         let len = 8 + l in
         List.init per_len (fun i ->
             let base =
               Int64.shift_left (Int64.of_int ((l * per_len) + i + 1)) (32 - len)
             in
             let v = P4ir.Value.truncate ~width:32 base in
             P4ir.Table.entry [ P4ir.Pattern.Lpm (v, len) ] "a")))

let lpm_table ~nlens ~per_len =
  mk_table "bl"
    [ P4ir.Table.key P4ir.Field.Ipv4_dst P4ir.Match_kind.Lpm ]
    (lpm_entries ~nlens ~per_len)

let ternary_masks =
  [| 0xFFL; 0xFF00L; 0xFFFFL; 0xFF0000L; 0xFFFF00L; 0xFFFFFFL; 0xF0F0F0L; 0x0F0F0FL |]

let ternary_table ~per_mask =
  let entries =
    List.concat
      (List.init (Array.length ternary_masks) (fun m ->
           let mask = ternary_masks.(m) in
           List.init per_mask (fun i ->
               let v = Int64.logand (Int64.of_int (((m * per_mask) + i) * 2654435761)) mask in
               P4ir.Table.entry ~priority:((m * per_mask) + i)
                 [ P4ir.Pattern.Ternary (v, mask) ]
                 "a")))
  in
  mk_table "bt" [ P4ir.Table.key P4ir.Field.Ipv4_dst P4ir.Match_kind.Ternary ] entries

(* A cycling pool of probe packets: deterministic, mixes hits at several
   depths with misses. *)
let probe_pool ~seed ~size ~of_rng =
  let rng = Stdx.Prng.create seed in
  let pool = Array.init size (fun _ -> of_rng rng) in
  let i = ref 0 in
  fun () ->
    let p = pool.(!i) in
    i := (!i + 1) mod size;
    p

let lookup_bench ~name ~iters tab probe_of_rng =
  let before_eng = Baseline.create tab in
  let after_eng = Nicsim.Engine.create tab in
  let probes = probe_pool ~seed:7L ~size:1024 ~of_rng:probe_of_rng in
  let before_ns = time_ns ~iters (fun () -> Baseline.lookup before_eng (probes ())) in
  let probes = probe_pool ~seed:7L ~size:1024 ~of_rng:probe_of_rng in
  let after_ns = time_ns ~iters (fun () -> Nicsim.Engine.lookup after_eng (probes ())) in
  { name; unit_ = "lookup"; before_ns = Some before_ns; after_ns; iters }

let dst_packet rng =
  Nicsim.Packet.of_fields
    [ (P4ir.Field.Ipv4_dst, Int64.logand (Stdx.Prng.next64 rng) 0xFFFFFFFFL) ]

(* --- window fixtures --- *)

(* Exact + LPM + ternary pipeline, no cache tables (so the parallel
   driver takes its fast path rather than falling back). *)
let window_program () =
  P4ir.Program.linear "perf"
    [ exact_table 1024; lpm_table ~nlens:12 ~per_len:64; ternary_table ~per_mask:32 ]

let window_source seed =
  let rng = Stdx.Prng.create seed in
  fun () ->
    Nicsim.Packet.of_fields
      [ (P4ir.Field.Ipv4_src, Int64.logand (Stdx.Prng.next64 rng) 0xFFFFFFFFL);
        (P4ir.Field.Ipv4_dst, Int64.logand (Stdx.Prng.next64 rng) 0xFFFFFFFFL);
        (P4ir.Field.Tcp_sport, Int64.logand (Stdx.Prng.next64 rng) 0xFFFFL);
        (P4ir.Field.Tcp_dport, Int64.logand (Stdx.Prng.next64 rng) 0xFFFFL) ]

let target = Costmodel.Target.bluefield2

let window_bench ~name ~packets ~windows run =
  (* One untimed warmup window, then [windows] timed ones; ns/packet. *)
  let t0 = ref 0. in
  let total = ref 0 in
  let first = ref true in
  for _ = 0 to windows do
    if not !first then total := !total + packets;
    if !first then begin
      ignore (Sys.opaque_identity (run ()));
      first := false;
      t0 := now ()
    end
    else ignore (Sys.opaque_identity (run ()))
  done;
  let ns = (now () -. !t0) *. 1e9 /. float_of_int !total in
  { name; unit_ = "packet"; before_ns = None; after_ns = ns; iters = !total }

(* --- the suite --- *)

let run_suite ~smoke =
  let scale n = if smoke then max 1 (n / 50) else n in
  let lookup_iters = scale 200_000 in
  let benches = ref [] in
  let push b = benches := b :: !benches in

  (* Engine lookups by match kind. *)
  push
    (lookup_bench ~name:"engine-lookup/exact-4k" ~iters:lookup_iters (exact_table 4096)
       (fun rng ->
         Nicsim.Packet.of_fields
           [ (P4ir.Field.Ipv4_dst, Int64.of_int (Stdx.Prng.int rng 8192)) ]));
  push
    (lookup_bench ~name:"engine-lookup/lpm-16len" ~iters:lookup_iters
       (lpm_table ~nlens:16 ~per_len:64)
       dst_packet);
  push
    (lookup_bench ~name:"engine-lookup/ternary-8mask" ~iters:lookup_iters
       (ternary_table ~per_mask:64)
       dst_packet);

  (* Engine build: insert-time behaviour of the shaped backend. *)
  let build_iters = scale 200 in
  let lpm_tab = lpm_table ~nlens:16 ~per_len:32 in
  push
    { name = "engine-build/lpm-16x32";
      unit_ = "build";
      before_ns = Some (time_ns ~iters:build_iters (fun () -> Baseline.create lpm_tab));
      after_ns = time_ns ~iters:build_iters (fun () -> Nicsim.Engine.create lpm_tab);
      iters = build_iters };

  (* Single-packet execution through the 3-table pipeline. *)
  let prog = window_program () in
  let ex = Nicsim.Exec.create (Nicsim.Exec.default_config target) prog in
  let src = window_source 11L in
  push
    { name = "exec/run_packet";
      unit_ = "packet";
      before_ns = None;
      after_ns = time_ns ~iters:(scale 100_000) (fun () -> Nicsim.Exec.run_packet ex ~now:0. (src ()));
      iters = scale 100_000 };

  (* Window drivers. Fresh sim per mode; same seed, so identical traffic. *)
  let packets = scale 100_000 in
  let windows = if smoke then 1 else 3 in
  let fresh_window_bench name run_of_sim =
    let sim = Nicsim.Sim.create target (window_program ()) in
    let src = window_source 23L in
    window_bench ~name ~packets ~windows (fun () -> run_of_sim sim src)
  in
  push
    ((* The old loop: per-window array allocation + polymorphic sort. *)
     let ex = Nicsim.Exec.create (Nicsim.Exec.default_config target) (window_program ()) in
     let src = window_source 23L in
     let start = ref 0. in
     window_bench ~name:"run_window/old-loop" ~packets ~windows (fun () ->
         let r = Baseline.run_window ex ~start:!start ~duration:1.0 ~packets ~source:src in
         start := !start +. 1.0;
         r));
  push
    (fresh_window_bench "run_window/seq" (fun sim src ->
         Nicsim.Sim.run_window sim ~duration:1.0 ~packets ~source:src));
  push
    (fresh_window_bench "run_window/batched" (fun sim src ->
         Nicsim.Sim.run_window_batched sim ~duration:1.0 ~packets ~source:src));
  push
    (fresh_window_bench "run_window/parallel" (fun sim src ->
         Nicsim.Sim.run_window_parallel sim ~duration:1.0 ~packets ~source:src));
  List.rev !benches

(* --- reporting --- *)

let json_of_bench b =
  let base =
    [ ("name", P4ir.Json.String b.name);
      ("unit", P4ir.Json.String b.unit_);
      ("iters", P4ir.Json.Int (Int64.of_int b.iters));
      ("after_ns_per_op", P4ir.Json.Float b.after_ns);
      ("after_ops_per_sec", P4ir.Json.Float (ops_per_sec b.after_ns)) ]
  in
  let before =
    match b.before_ns with
    | None -> []
    | Some ns ->
      [ ("before_ns_per_op", P4ir.Json.Float ns);
        ("before_ops_per_sec", P4ir.Json.Float (ops_per_sec ns));
        ("speedup", P4ir.Json.Float (Option.get (speedup b))) ]
  in
  P4ir.Json.Obj (base @ before)

let report ~smoke ~out benches =
  Printf.printf "%-28s %14s %14s %9s\n" "bench" "before ns/op" "after ns/op" "speedup";
  List.iter
    (fun b ->
      Printf.printf "%-28s %14s %14.1f %9s\n" b.name
        (match b.before_ns with Some ns -> Printf.sprintf "%.1f" ns | None -> "-")
        b.after_ns
        (match speedup b with Some s -> Printf.sprintf "%.2fx" s | None -> "-"))
    benches;
  let doc =
    P4ir.Json.Obj
      [ ("schema", P4ir.Json.String "nicsim-perf/1");
        ("generated_by", P4ir.Json.String "bench/main.exe perf");
        ("smoke", P4ir.Json.Bool smoke);
        ("domains_available", P4ir.Json.Int (Int64.of_int (Domain.recommended_domain_count ())));
        ("benches", P4ir.Json.List (List.map json_of_bench benches)) ]
  in
  let oc = open_out out in
  output_string oc (P4ir.Json.to_string ~indent:2 doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "\nwrote %s\n%!" out

let run ~smoke ~out =
  let benches = run_suite ~smoke in
  report ~smoke ~out benches;
  (* Guard the headline claim: shaped lookups must beat the old engine by
     a healthy margin, else the artifact records a regression loudly. *)
  List.iter
    (fun b ->
      match speedup b with
      | Some s when s < 1.0 ->
        Printf.printf "WARNING: %s slower than baseline (%.2fx)\n" b.name s
      | _ -> ())
    benches
