(* Benchmark harness: regenerates every data table/figure of the paper
   (see DESIGN.md's per-experiment index) and, with [--bechamel], runs a
   Bechamel micro-suite with one Test.make per figure timing the kernel
   behind that experiment.

   Usage:
     main.exe                  run every experiment
     main.exe fig9a fig13      run selected experiments
     main.exe list             list experiment names
     main.exe --scale 0.2 ...  shrink ensembles for a quick pass
     main.exe --bechamel       run the Bechamel micro-suite
     main.exe perf             nicsim fast-path suite -> BENCH_nicsim.json
     main.exe perf --smoke     same, tiny iteration counts (CI)
     main.exe perf --out F     write the JSON artifact to F *)

let target = Costmodel.Target.bluefield2

(* --- Bechamel micro-suite: the kernel behind each figure --- *)

let synth_prog_prof seed =
  let rng = Stdx.Prng.create seed in
  let prog = Experiments.Synth.program rng in
  let prof = Experiments.Synth.profile rng prog in
  (prog, prof)

let bechamel_tests () =
  let open Bechamel in
  let prog, prof = synth_prog_prof 1L in
  let tabs =
    P4ir.Builder.exact_chain ~prefix:"b" ~n:4
      ~key_of:(fun i ->
        [| P4ir.Field.Ipv4_src; P4ir.Field.Ipv4_dst; P4ir.Field.Tcp_sport;
           P4ir.Field.Tcp_dport |].(i mod 4))
      ()
  in
  let chain22 =
    P4ir.Program.linear "b22"
      (P4ir.Builder.exact_chain ~prefix:"c" ~n:22 ~key_of:(fun _ -> P4ir.Field.Ipv4_dst) ())
  in
  let exec = Nicsim.Exec.create (Nicsim.Exec.default_config target) chain22 in
  let pkt = Nicsim.Packet.create () in
  let uniform22 = Profile.uniform chain22 in
  let optimizer_cfg k =
    { Pipeleon.Optimizer.default_config with top_k = k; enable_groups = false }
  in
  [ Test.make ~name:"fig2:reorder-greedy"
      (Staged.stage (fun () -> Pipeleon.Reorder.greedy_drop_order prof tabs));
    Test.make ~name:"fig5:cost-model-eval"
      (Staged.stage (fun () -> Costmodel.Cost.expected_latency target uniform22 chain22));
    Test.make ~name:"fig9a:sim-packet"
      (Staged.stage (fun () -> Nicsim.Exec.run_packet exec ~now:0. pkt));
    Test.make ~name:"fig9c:cache-build"
      (Staged.stage (fun () -> Pipeleon.Cache.build ~name:"bc" tabs));
    Test.make ~name:"fig9d:merge-build"
      (Staged.stage (fun () ->
           Pipeleon.Merge.build_ternary ~name:"bm"
             (List.filteri (fun i _ -> i < 2) tabs)));
    Test.make ~name:"fig10:candidate-enum"
      (Staged.stage (fun () -> Pipeleon.Candidate.enumerate prof tabs));
    Test.make ~name:"fig11:controller-optimize"
      (Staged.stage (fun () ->
           Pipeleon.Optimizer.optimize ~config:(optimizer_cfg 0.3) target prof prog));
    Test.make ~name:"fig12:instrument-analysis"
      (Staged.stage (fun () -> Pipeleon.Instrument.expected_updates_per_packet prof prog));
    Test.make ~name:"fig13:esearch"
      (Staged.stage (fun () ->
           Pipeleon.Optimizer.optimize ~config:(optimizer_cfg 1.0) target prof prog));
    Test.make ~name:"fig14:pipelet-entropy"
      (Staged.stage (fun () -> Experiments.Synth.pipelet_entropy prof prog));
    Test.make ~name:"fig15:group-detect"
      (Staged.stage (fun () ->
           Pipeleon.Group.detect prog ~candidates:(Pipeleon.Pipelet.form prog)));
    Test.make ~name:"fig17:placement-opt"
      (Staged.stage (fun () ->
           Pipeleon.Placement.optimize target prof prog ~require:(fun _ -> Pipeleon.Placement.Any)));
    Test.make ~name:"fig18:reach-probs"
      (Staged.stage (fun () -> Costmodel.Cost.reach_probs prof prog));
    (* Substrate kernels behind every figure's simulation. *)
    (let exact_eng =
       Nicsim.Engine.create
         (P4ir.Table.make ~name:"e"
            ~keys:[ P4ir.Table.key P4ir.Field.Ipv4_dst P4ir.Match_kind.Exact ]
            ~actions:[ P4ir.Action.nop "a" ]
            ~default_action:"a"
            ~entries:
              (List.init 1024 (fun i ->
                   P4ir.Table.entry [ P4ir.Pattern.Exact (Int64.of_int i) ] "a"))
            ())
     in
     let probe = Nicsim.Packet.of_fields [ (P4ir.Field.Ipv4_dst, 512L) ] in
     Test.make ~name:"engine:exact-1k-entries"
       (Staged.stage (fun () -> Nicsim.Engine.lookup exact_eng probe)));
    (let tern_eng =
       Nicsim.Engine.create
         (P4ir.Table.make ~name:"t"
            ~keys:[ P4ir.Table.key P4ir.Field.Ipv4_dst P4ir.Match_kind.Ternary ]
            ~actions:[ P4ir.Action.nop "a" ]
            ~default_action:"a"
            ~entries:
              (List.init 100 (fun i ->
                   let mask = [| 0xFFL; 0xFF00L; 0xFFFFL; 0xFF0000L; 0xFFFFFFL |].(i mod 5) in
                   P4ir.Table.entry ~priority:i
                     [ P4ir.Pattern.Ternary (Int64.of_int i, mask) ]
                     "a"))
            ())
     in
     let probe = Nicsim.Packet.of_fields [ (P4ir.Field.Ipv4_dst, 77L) ] in
     Test.make ~name:"engine:ternary-5-masks"
       (Staged.stage (fun () -> Nicsim.Engine.lookup tern_eng probe)));
    (let groups =
       List.init 12 (fun g ->
           List.init 5 (fun i ->
               { Pipeleon.Knapsack.gain = float_of_int ((g * 7) + i);
                 mem = 1024 * (i + 1);
                 upd = float_of_int (i * 100);
                 tag = i }))
     in
     Test.make ~name:"search:knapsack-12x5"
       (Staged.stage (fun () ->
            Pipeleon.Knapsack.solve ~groups ~mem_budget:(64 * 1024) ~upd_budget:2000. ())));
    (let tabs =
       P4ir.Builder.exact_chain ~prefix:"k" ~n:3
         ~key_of:(fun i ->
           [| P4ir.Field.Ipv4_src; P4ir.Field.Ipv4_dst; P4ir.Field.Tcp_sport |].(i))
         ()
     in
     let uniform = Profile.uniform (P4ir.Program.linear "k" tabs) in
     let ctx = Pipeleon.Candidate.context target uniform ~reach_prob:1.0 tabs in
     let combo =
       { Pipeleon.Candidate.order = [ 0; 1; 2 ];
         segs = [ { Pipeleon.Candidate.pos = 0; len = 3; kind = Pipeleon.Candidate.Cache_seg } ] }
     in
     Test.make ~name:"search:analytic-eval"
       (Staged.stage (fun () -> Pipeleon.Candidate.evaluate_analytic ctx combo))) ]

let run_bechamel () =
  let open Bechamel in
  let open Toolkit in
  print_endline "Bechamel micro-suite (one Test.make per figure kernel):";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:None ()
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let analyzed = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name ols_result ->
          let ns =
            match Analyze.OLS.estimates ols_result with
            | Some (x :: _) -> x
            | _ -> nan
          in
          Printf.printf "  %-28s %12.1f ns/run\n%!" name ns)
        analyzed)
    (bechamel_tests ())

(* --- CLI --- *)

let run_perf args =
  let rec parse args smoke out =
    match args with
    | [] -> (smoke, out)
    | "--smoke" :: rest -> parse rest true out
    | "--out" :: f :: rest -> parse rest smoke f
    | a :: _ ->
      Printf.eprintf "perf: unknown argument %s\n" a;
      exit 2
  in
  let smoke, out = parse args false "BENCH_nicsim.json" in
  Perf.run ~smoke ~out

let usage () =
  print_endline
    "usage: main.exe [--scale F] [--bechamel] [perf [--smoke] [--out F] | list | all | \
     <experiment>...]";
  print_endline "experiments:";
  List.iter
    (fun (e : Experiments.Registry.entry) ->
      Printf.printf "  %-10s %s\n" e.name e.description)
    Experiments.Registry.all

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  (match args with
   | "perf" :: rest ->
     run_perf rest;
     exit 0
   | _ -> ());
  let rec parse args names bechamel =
    match args with
    | [] -> (List.rev names, bechamel)
    | "--scale" :: v :: rest ->
      (match float_of_string_opt v with
       | Some f when f > 0. -> Experiments.Harness.scale := f
       | _ ->
         prerr_endline "bad --scale value";
         exit 2);
      parse rest names bechamel
    | "--bechamel" :: rest -> parse rest names true
    | "--help" :: _ | "-h" :: _ ->
      usage ();
      exit 0
    | "list" :: _ ->
      usage ();
      exit 0
    | name :: rest -> parse rest (name :: names) bechamel
  in
  let names, bechamel = parse args [] false in
  let t0 = Unix.gettimeofday () in
  if bechamel then run_bechamel ()
  else begin
    let entries =
      match names with
      | [] | [ "all" ] -> Experiments.Registry.all
      | names ->
        List.map
          (fun n ->
            match Experiments.Registry.find n with
            | Some e -> e
            | None ->
              Printf.eprintf "unknown experiment %s (try: list)\n" n;
              exit 2)
          names
    in
    List.iter (fun (e : Experiments.Registry.entry) -> e.run ()) entries
  end;
  Printf.printf "\ntotal wall time: %.1fs\n" (Unix.gettimeofday () -. t0)
