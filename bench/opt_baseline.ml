(* The pre-fast-path optimizer search, kept verbatim (modulo module
   qualification) as the "before" comparator for `main.exe perf`'s
   optimizer suite. Benchmark scaffolding only — the optimizer proper is
   Pipeleon.Optimizer.

   Characteristics being measured against:
   - [segmentations] is an exponential unmemoized recursion, recomputed
     from scratch for every pipelet;
   - [evaluate_analytic] re-slices the table list per segment per combo
     (List.init / List.filteri allocation on the hot path) and
     recomputes every segment's metrics even when the same segment
     appears in thousands of combos;
   - [knapsack_solve] runs the dense DP over the full bucket grid for
     every group, dominated options included;
   - [global_optimize] reconstructs picks with List.nth_opt per pick;
   - [optimize] rebuilds the topological index with List.find_index
     inside the sort comparator.

   Pipelet formation and hotspot ranking reuse the current modules (the
   pipelet-formation list-scan fix helps the baseline too, so measured
   speedups are conservative). Types are Pipeleon.Candidate's, so the
   resulting plans are directly comparable with the fast path's. *)

open Pipeleon.Candidate

let segmentations ~opts n =
  let rec go pos =
    if pos >= n then [ [] ]
    else
      let plain = go (pos + 1) in
      let with_segments =
        List.concat_map
          (fun len ->
            if pos + len > n then []
            else
              let kinds =
                (if len <= opts.max_cache_len then [ Cache_seg ] else [])
                @ (if len >= 2 && len <= opts.max_merge_len then
                     [ Merge_ternary_seg; Merge_fallback_seg ]
                   else [])
              in
              List.concat_map
                (fun kind ->
                  List.map (fun rest -> { pos; len; kind } :: rest) (go (pos + len)))
                kinds)
          (List.init (max opts.max_cache_len opts.max_merge_len) (fun i -> i + 1))
      in
      plain @ with_segments
  in
  List.filter (fun segs -> segs <> []) (go 0) @ [ [] ]

let rec take k = function
  | [] -> []
  | x :: rest -> if k = 0 then [] else x :: take (k - 1) rest

let enumerate ?(opts = default_options) prof tabs =
  let n = List.length tabs in
  if n = 0 then []
  else begin
    let orders =
      Pipeleon.Reorder.candidate_orders ~max_enumerate:opts.max_enumerate_order tabs
    in
    let greedy = Pipeleon.Reorder.greedy_drop_order prof tabs in
    let orders = if List.mem greedy orders then orders else orders @ [ greedy ] in
    let segs = segmentations ~opts n in
    let identity = identity_combo n in
    let per_order = max 1 (opts.max_combos / max 1 (List.length orders)) in
    let combos =
      List.concat_map
        (fun order ->
          let with_segs =
            List.filter (fun s -> s <> []) segs
            |> take (per_order - 1)
            |> List.map (fun segs -> { order; segs })
          in
          { order; segs = [] } :: with_segs)
        orders
      |> List.filter (fun c -> c <> identity)
    in
    take opts.max_combos combos
  end

(* --- the old analytic evaluation --- *)

let exact_entry_bytes fields =
  List.fold_left (fun acc f -> acc + ((P4ir.Field.width f + 7) / 8)) 8 fields

let merged_fields tabs =
  List.sort_uniq P4ir.Field.compare
    (List.concat_map
       (fun (t : P4ir.Table.t) -> List.map (fun (k : P4ir.Table.key) -> k.field) t.keys)
       tabs)

type tinfo = {
  t_cost : float;
  t_drop : float;
  t_mem : int;
  t_upd : float;
  t_m : float;
  t_act : float;
  t_entries : int;
  t_miss : float;
}

type bctx = {
  ctx_opts : options;
  ctx_target : Costmodel.Target.t;
  ctx_prof : Profile.t;
  ctx_reach : float;
  ctx_tabs : P4ir.Table.t array;
  ctx_info : tinfo array;
  ctx_latency_before : float;
  ctx_mem_before : int;
  ctx_upd_before : float;
}

let context ?(opts = default_options) target prof ~reach_prob tabs =
  let arr = Array.of_list tabs in
  let info =
    Array.map
      (fun (t : P4ir.Table.t) ->
        let act = Costmodel.Cost.action_cost target prof t in
        { t_cost = Costmodel.Target.table_match_cost target t +. act;
          t_drop = Profile.drop_prob prof t;
          t_mem = Costmodel.Resource.table_memory target t;
          t_upd = Profile.update_rate prof ~table_name:t.name;
          t_m = Costmodel.Target.m_of_table target t;
          t_act = act;
          t_entries = max 1 (P4ir.Table.num_entries t);
          t_miss = Profile.action_prob prof ~table:t ~action:t.default_action })
      arr
  in
  let latency_before, _ =
    Array.fold_left
      (fun (lat, survive) i -> (lat +. (survive *. i.t_cost), survive *. (1. -. i.t_drop)))
      (0., 1.) info
  in
  { ctx_opts = opts;
    ctx_target = target;
    ctx_prof = prof;
    ctx_reach = reach_prob;
    ctx_tabs = arr;
    ctx_info = info;
    ctx_latency_before = latency_before;
    ctx_mem_before = Array.fold_left (fun acc i -> acc + i.t_mem) 0 info;
    ctx_upd_before = Array.fold_left (fun acc i -> acc +. i.t_upd) 0. info }

let cache_hit_with_invalidation ctx originals_info originals =
  let base =
    Profile.cache_hit_estimate ctx.ctx_prof
      ~table_names:(List.map (fun (t : P4ir.Table.t) -> t.name) originals)
  in
  let warmup = 0.5 in
  let updates = List.fold_left (fun acc i -> acc +. i.t_upd) 0. originals_info in
  base /. (1. +. (updates *. warmup))

let segment_chain originals_info =
  List.fold_left
    (fun (lat, survive) i -> (lat +. (survive *. i.t_cost), survive *. (1. -. i.t_drop)))
    (0., 1.) originals_info

let seg_valid ctx seg originals =
  match seg.kind with
  | Cache_seg -> seg.len <= ctx.ctx_opts.max_cache_len && Pipeleon.Cache.cacheable originals
  | Merge_ternary_seg ->
    seg.len <= ctx.ctx_opts.max_merge_len && Pipeleon.Merge.mergeable originals
  | Merge_fallback_seg ->
    seg.len <= ctx.ctx_opts.max_merge_len
    && Pipeleon.Merge.mergeable originals
    && Pipeleon.Merge.fallback_compatible originals

let seg_metrics ctx seg originals originals_info =
  let target = ctx.ctx_target in
  let opts = ctx.ctx_opts in
  let act_sum = List.fold_left (fun acc i -> acc +. i.t_act) 0. originals_info in
  let upd_sum = List.fold_left (fun acc i -> acc +. i.t_upd) 0. originals_info in
  let entry_estimate = List.fold_left (fun acc i -> acc * i.t_entries) 1 originals_info in
  let miss_cost, survive_factor = segment_chain originals_info in
  match seg.kind with
  | Cache_seg ->
    let h = cache_hit_with_invalidation ctx originals_info originals in
    let cost =
      target.Costmodel.Target.l_mat +. (h *. act_sum) +. ((1. -. h) *. miss_cost)
    in
    let mem =
      opts.cache_capacity * exact_entry_bytes (Pipeleon.Cache.live_in_fields originals)
    in
    (cost, mem, opts.cache_insert_limit +. upd_sum, survive_factor)
  | Merge_ternary_seg ->
    let m =
      Float.max 1.
        (List.fold_left (fun acc i -> acc *. (i.t_m +. 1.)) 1. originals_info -. 1.)
    in
    let cost = (m *. target.Costmodel.Target.l_mat) +. act_sum in
    let mem =
      int_of_float
        (ceil
           (float_of_int (entry_estimate * 2 * exact_entry_bytes (merged_fields originals))
            *. m))
    in
    (cost, mem, Pipeleon.Merge.update_estimate ctx.ctx_prof originals, survive_factor)
  | Merge_fallback_seg ->
    let h = List.fold_left (fun acc i -> acc *. (1. -. i.t_miss)) 1. originals_info in
    let cost =
      target.Costmodel.Target.l_mat +. (h *. act_sum) +. ((1. -. h) *. miss_cost)
    in
    let mem = entry_estimate * exact_entry_bytes (merged_fields originals) in
    ( cost,
      mem,
      Pipeleon.Merge.update_estimate ctx.ctx_prof originals +. upd_sum,
      survive_factor )

let evaluate_analytic ctx combo =
  let n = Array.length ctx.ctx_tabs in
  if not (Pipeleon.Reorder.order_valid ctx.ctx_tabs combo.order) then None
  else begin
    let order = Array.of_list combo.order in
    let covered = Array.make n None in
    let bad = ref false in
    List.iter
      (fun seg ->
        if seg.pos < 0 || seg.pos + seg.len > n then bad := true
        else
          for i = seg.pos to seg.pos + seg.len - 1 do
            if covered.(i) <> None then bad := true;
            covered.(i) <- Some seg
          done)
      combo.segs;
    if !bad then None
    else begin
      let orig_at i = ctx.ctx_tabs.(order.(i)) in
      let info_at i = ctx.ctx_info.(order.(i)) in
      let slice_tabs seg = List.init seg.len (fun j -> orig_at (seg.pos + j)) in
      let slice_info seg = List.init seg.len (fun j -> info_at (seg.pos + j)) in
      if not (List.for_all (fun seg -> seg_valid ctx seg (slice_tabs seg)) combo.segs)
      then None
      else begin
        let latency = ref 0. in
        let survive = ref 1.0 in
        let mem = ref 0 in
        let upd = ref 0. in
        let i = ref 0 in
        while !i < n do
          (match covered.(!i) with
           | None ->
             let info = info_at !i in
             latency := !latency +. (!survive *. info.t_cost);
             mem := !mem + info.t_mem;
             upd := !upd +. info.t_upd;
             survive := !survive *. (1. -. info.t_drop);
             incr i
           | Some seg when seg.pos <> !i -> incr i
           | Some seg ->
             let originals = slice_tabs seg in
             let originals_info = slice_info seg in
             let cost, seg_mem, seg_upd, survive_factor =
               seg_metrics ctx seg originals originals_info
             in
             latency := !latency +. (!survive *. cost);
             (match seg.kind with
              | Cache_seg | Merge_fallback_seg ->
                List.iter (fun info -> mem := !mem + info.t_mem) originals_info
              | Merge_ternary_seg -> ());
             mem := !mem + seg_mem;
             upd := !upd +. seg_upd;
             survive := !survive *. survive_factor;
             i := seg.pos + seg.len)
        done;
        Some
          { combo;
            gain = (ctx.ctx_latency_before -. !latency) *. ctx.ctx_reach;
            latency_before = ctx.ctx_latency_before;
            latency_after = !latency;
            mem_delta = !mem - ctx.ctx_mem_before;
            update_delta = !upd -. ctx.ctx_upd_before }
      end
    end
  end

(* --- the old dense knapsack --- *)

let knapsack_solve ?(mem_buckets = 64) ?(upd_buckets = 32) ~groups ~mem_budget
    ~upd_budget () =
  let nm = max 1 mem_buckets in
  let nu = max 1 upd_buckets in
  let mem_unit = Float.max 1. (float_of_int mem_budget /. float_of_int nm) in
  let upd_unit = Float.max 1e-9 (upd_budget /. float_of_int nu) in
  let bucket_mem m = int_of_float (ceil (float_of_int (max 0 m) /. mem_unit)) in
  let bucket_upd u = int_of_float (ceil (Float.max 0. u /. upd_unit)) in
  let dp = ref (Array.make_matrix (nm + 1) (nu + 1) 0.) in
  let picks = ref (Array.make_matrix (nm + 1) (nu + 1) ([] : (int * int) list)) in
  List.iteri
    (fun gi options ->
      let prev_dp = !dp and prev_picks = !picks in
      let next_dp = Array.map Array.copy prev_dp in
      let next_picks = Array.map Array.copy prev_picks in
      for m = 0 to nm do
        for u = 0 to nu do
          List.iter
            (fun (o : Pipeleon.Knapsack.option_item) ->
              if o.gain > 0. then begin
                let cm = bucket_mem o.mem in
                let cu = bucket_upd o.upd in
                if cm <= m && cu <= u then begin
                  let candidate = prev_dp.(m - cm).(u - cu) +. o.gain in
                  if candidate > next_dp.(m).(u) then begin
                    next_dp.(m).(u) <- candidate;
                    next_picks.(m).(u) <- (gi, o.tag) :: prev_picks.(m - cm).(u - cu)
                  end
                end
              end)
            options
        done
      done;
      dp := next_dp;
      picks := next_picks)
    groups;
  (List.rev (!picks).(nm).(nu), (!dp).(nm).(nu))

(* --- the old search driver --- *)

type plan = {
  choices : (Pipeleon.Hotspot.hot * evaluated) list;
  predicted_gain : float;
}

let local_optimize ?opts target prof prog hots =
  List.map
    (fun (hot : Pipeleon.Hotspot.hot) ->
      let originals = Pipeleon.Pipelet.tables prog hot.pipelet in
      let combos = enumerate ?opts prof originals in
      let ctx = context ?opts target prof ~reach_prob:hot.reach_prob originals in
      let evaluated =
        List.filter_map
          (fun combo ->
            match evaluate_analytic ctx combo with
            | Some e when e.gain > 0. -> Some e
            | _ -> None)
          combos
      in
      (hot, evaluated))
    hots

let global_optimize ~headroom_mem ~headroom_upd candidates =
  let groups =
    List.map
      (fun (_, evaluated) ->
        List.mapi
          (fun i (e : evaluated) ->
            { Pipeleon.Knapsack.gain = e.gain;
              mem = e.mem_delta;
              upd = e.update_delta;
              tag = i })
          evaluated)
      candidates
  in
  let picks, total_gain =
    knapsack_solve ~groups ~mem_budget:headroom_mem ~upd_budget:headroom_upd ()
  in
  let arr = Array.of_list candidates in
  let choices =
    List.filter_map
      (fun (gi, tag) ->
        if gi < Array.length arr then
          let hot, evaluated = arr.(gi) in
          List.nth_opt evaluated tag |> Option.map (fun e -> (hot, e))
        else None)
      picks
  in
  { choices; predicted_gain = total_gain }

(* End-to-end: the old Optimizer.optimize shape with groups disabled
   (matching the perf fixture's config on the fast-path side). *)
let optimize ?(opts = default_options) ?(top_k = 1.0) ?(max_pipelet_len = 8)
    ?(generation = 0) target prof prog =
  let budget = Costmodel.Resource.default_budget in
  let pipelets = Pipeleon.Pipelet.form ~max_len:max_pipelet_len prog in
  let hots = Pipeleon.Hotspot.rank target prof prog pipelets in
  let top = Pipeleon.Hotspot.top_k ~fraction:top_k hots in
  let name_prefix = Printf.sprintf "__g%d" generation in
  let candidates = local_optimize ~opts target prof prog top in
  let headroom_mem =
    max 0 (budget.memory_bytes - Costmodel.Resource.program_memory target prog)
  in
  let headroom_upd =
    Float.max 0.
      (budget.updates_per_sec -. Costmodel.Resource.program_update_rate prof prog)
  in
  let plan = global_optimize ~headroom_mem ~headroom_upd candidates in
  let topo_index =
    let order = P4ir.Program.topological_order prog in
    fun id ->
      match List.find_index (Int.equal id) order with Some i -> i | None -> max_int
  in
  let ordered_choices =
    List.stable_sort
      (fun ((a : Pipeleon.Hotspot.hot), _) ((b : Pipeleon.Hotspot.hot), _) ->
        compare
          (topo_index a.pipelet.Pipeleon.Pipelet.entry)
          (topo_index b.pipelet.Pipeleon.Pipelet.entry))
      plan.choices
  in
  let optimized, applied =
    List.fold_left
      (fun (prog, applied) ((hot : Pipeleon.Hotspot.hot), (e : evaluated)) ->
        let originals = Pipeleon.Pipelet.tables prog hot.pipelet in
        let prefix =
          Printf.sprintf "%s_p%d" name_prefix hot.pipelet.Pipeleon.Pipelet.entry
        in
        match realize ~opts ~name_prefix:prefix originals e.combo with
        | Some elements -> (
          match Pipeleon.Transform.apply prog hot.pipelet elements with
          | prog -> (prog, (hot, e) :: applied)
          | exception Invalid_argument _ -> (prog, applied))
        | None | (exception Invalid_argument _) -> (prog, applied))
      (prog, []) ordered_choices
  in
  (optimized, { plan with choices = List.rev applied })
