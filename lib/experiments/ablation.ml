(* Ablation benches for design choices called out in DESIGN.md:
   - knapsack DP vs density-greedy global search;
   - node-sum vs path-enumeration expected latency (identical values,
     different asymptotics);
   - single whole-program cache vs partitioned caches (cross-product
     problem, complementing Fig. 9c). *)

let target = Costmodel.Target.bluefield2

let dp_vs_greedy () =
  Harness.subsection "knapsack DP vs greedy global search";
  let programs = Harness.scaled 40 in
  let rng = Stdx.Prng.create 555L in
  let params = { Synth.default_params with sections = 8; pipelet_len = 2 } in
  let ratios =
    List.init programs (fun _ ->
        let prog = Synth.program ~params rng in
        let prof = Synth.profile rng prog in
        (* A tight memory budget makes the packing choice matter: room
           for roughly one and a half caches. *)
        let budget =
          { Costmodel.Resource.memory_bytes =
              Costmodel.Resource.program_memory target prog + 120_000;
            updates_per_sec = 2500. }
        in
        let gain use_greedy =
          let config =
            { Pipeleon.Optimizer.default_config with
              top_k = 1.0;
              budget;
              enable_groups = false;
              use_greedy_global = use_greedy }
          in
          (Pipeleon.Optimizer.optimize ~config target prof prog)
            .Pipeleon.Optimizer.plan.Pipeleon.Search.predicted_gain
        in
        let dp = gain false and greedy = gain true in
        if dp > 1e-9 then greedy /. dp else 1.)
  in
  Harness.print_cdf ~label:"greedy gain / DP gain" ratios;
  Printf.printf "mean: %.3f (DP should be >= 1.0x greedy everywhere)\n"
    (Stdx.Stats.mean ratios)

let node_sum_vs_paths () =
  Harness.subsection "node-sum vs path-enumeration expected latency";
  let rng = Stdx.Prng.create 666L in
  let params = { Synth.default_params with sections = 5; pipelet_len = 2; diamond_prob = 0.6 } in
  let diffs =
    List.init (Harness.scaled 25) (fun _ ->
        let prog = Synth.program ~params rng in
        let prof = Synth.profile rng prog in
        let fast = Costmodel.Cost.expected_latency target prof prog in
        let slow = Costmodel.Cost.expected_latency_via_paths target prof prog in
        Float.abs (fast -. slow) /. Float.max 1e-9 fast)
  in
  Printf.printf "max relative difference over %d programs: %.2e (expected ~0)\n"
    (List.length diffs)
    (List.fold_left Float.max 0. diffs)

let cache_partitioning () =
  Harness.subsection "single whole-program cache vs partitioned caches (B-Cache ablation)";
  (* Complements Fig. 9c: report observed hit rates under the same flows. *)
  let tabs =
    List.init 4 (fun i ->
        P4ir.Table.make
          ~name:(Printf.sprintf "t%d" i)
          ~keys:
            [ P4ir.Builder.exact_key
                [| P4ir.Field.Ipv4_src; P4ir.Field.Ipv4_dst; P4ir.Field.Tcp_sport;
                   P4ir.Field.Tcp_dport |].(i) ]
          ~actions:[ P4ir.Builder.forward_action "fwd"; P4ir.Action.nop "def" ]
          ~default_action:"def"
          ~entries:
            (List.init 16 (fun j -> P4ir.Table.entry [ P4ir.Pattern.Exact (Int64.of_int j) ] "fwd"))
          ())
  in
  let run label segments =
    let prog = P4ir.Program.linear "ab" tabs in
    let prog' =
      match Pipeleon.Pipelet.form ~max_len:4 prog with
      | [ p ] ->
        let elements =
          List.map
            (fun (start, len) ->
              let originals = List.filteri (fun j _ -> j >= start && j < start + len) tabs in
              let cache =
                Pipeleon.Cache.build ~capacity:2048 ~insert_limit:1e9
                  ~name:(Printf.sprintf "c%d" start) originals
              in
              Pipeleon.Transform.Cached { cache; originals })
            segments
        in
        Pipeleon.Transform.apply prog p elements
      | _ -> prog
    in
    let sim = Nicsim.Sim.create target prog' in
    let rng = Stdx.Prng.create 777L in
    (* Correlated flows (as in Fig. 9c): small per-field projections, a
       large joint key space. *)
    let triples =
      Array.init 50 (fun _ ->
          [ (P4ir.Field.Ipv4_src, Stdx.Prng.next64 rng);
            (P4ir.Field.Ipv4_dst, Stdx.Prng.next64 rng);
            (P4ir.Field.Tcp_sport, Stdx.Prng.next64 rng) ])
    in
    let flows =
      Array.init 20_000 (fun i ->
          triples.(i mod 50) @ [ (P4ir.Field.Tcp_dport, Int64.of_int (i / 50)) ])
    in
    let source = Traffic.Workload.of_flows ~zipf_s:1.0 rng flows in
    ignore (Nicsim.Sim.run_window sim ~duration:1.0 ~packets:(Harness.scaled 5000) ~source);
    let prof = Nicsim.Sim.current_profile sim in
    let hit name =
      match Profile.table_stats prof name with
      | Some stats -> (
        match List.assoc_opt "miss" stats.Profile.action_probs with
        | Some miss -> 1. -. miss
        | None -> 0.)
      | None -> 0.
    in
    let hits =
      List.filter_map
        (fun (start, _) ->
          let h = hit (Printf.sprintf "c%d" start) in
          if h > 0. || true then Some h else None)
        segments
    in
    Printf.printf "%-22s mean cache hit rate: %s\n" label
      (Harness.pct (Stdx.Stats.mean hits))
  in
  run "one big cache [1..4]" [ (0, 4) ];
  run "two caches [1,2][3,4]" [ (0, 2); (2, 2) ];
  run "four caches [1][2][3][4]" [ (0, 1); (1, 1); (2, 1); (3, 1) ]

let rmt_contrast () =
  Harness.subsection "RMT switch pipeline vs multicore SmartNIC (the §1-2 premise)";
  let prog = Fig11.dash_program () in
  let profiles =
    [ ("benign", Profile.uniform prog);
      ( "heavy-drop",
        Profile.set_table "acl_l3"
          { Profile.action_probs = [ ("allow", 0.2); ("deny", 0.8) ];
            update_rate = 0.;
            locality = -1. }
          (Profile.uniform prog) );
      ( "drop-free",
        List.fold_left
          (fun prof name ->
            Profile.set_table name
              { Profile.action_probs = [ ("allow", 1.0); ("deny", 0.0) ];
                update_rate = 0.;
                locality = -1. }
              prof)
          (Profile.uniform prog) [ "acl_l1"; "acl_l2"; "acl_l3" ] ) ]
  in
  let cols = [ ("profile", 12); ("smartnic(Gbps)", 15); ("rmt(Gbps)", 10) ] in
  Harness.print_header cols;
  List.iter
    (fun (label, prof) ->
      let smartnic = Costmodel.Cost.expected_throughput_gbps target prof prog in
      let rmt =
        match Costmodel.Rmt.throughput_gbps target prog with
        | Some g -> Harness.f1 g
        | None -> "no fit"
      in
      Harness.print_row cols [ label; Harness.f1 smartnic; rmt ])
    profiles;
  Printf.printf
    "RMT is profile-independent once packed (uses %d stages, dependency diameter %d);\n\
     the SmartNIC's throughput moves with the traffic - that variance is what\n\
     Pipeleon optimizes.\n"
    (match Costmodel.Rmt.pack target prog with
     | Costmodel.Rmt.Fits p -> p.Costmodel.Rmt.stages_used
     | Costmodel.Rmt.Does_not_fit _ -> -1)
    (Costmodel.Rmt.dependency_diameter prog)

let incremental_vs_full () =
  Harness.subsection "full reload vs incremental hot-patch deployment (§6)";
  let run mode =
    let target = Costmodel.Target.agilio_cx in
    let sim = Nicsim.Sim.create target (Fig11.dash_program ()) in
    let config =
      { Runtime.Controller.default_config with
        reconfig_downtime = 2.0;
        min_relative_gain = 0.05;
        deploy_mode = mode;
        optimizer = { Pipeleon.Optimizer.default_config with top_k = 1.0 } }
    in
    let ctl = Runtime.Controller.create ~config sim ~original:(Fig11.dash_program ()) in
    let rng = Stdx.Prng.create 404L in
    let flows =
      Traffic.Workload.random_flows rng ~n:64
        ~fields:
          [ P4ir.Field.Ipv4_src; P4ir.Field.Ipv4_dst; P4ir.Field.Tcp_sport; P4ir.Field.Tcp_dport ]
    in
    let source = Traffic.Workload.of_flows ~zipf_s:1.3 rng flows in
    ignore (Nicsim.Sim.run_window sim ~duration:10.0 ~packets:(Harness.scaled 1500) ~source);
    let t_before = Nicsim.Sim.now sim in
    let report = Runtime.Controller.tick ctl in
    let downtime = Nicsim.Sim.now sim -. t_before in
    let after = Nicsim.Sim.run_window sim ~duration:10.0 ~packets:(Harness.scaled 1500) ~source in
    (report.Runtime.Controller.reoptimized, downtime, after.Nicsim.Sim.throughput_gbps)
  in
  let re_f, down_f, thr_f = run Runtime.Controller.Full in
  let re_i, down_i, thr_i = run Runtime.Controller.Incremental in
  Printf.printf "full:        redeployed=%b downtime=%.2fs next-window=%.1f Gbps\n" re_f down_f thr_f;
  Printf.printf "incremental: redeployed=%b downtime=%.2fs next-window=%.1f Gbps\n" re_i down_i thr_i

let queueing_curve () =
  Harness.subsection "queueing refinement: latency vs offered load (M/M/c view)";
  let service = 30.0 in
  let capacity = Costmodel.Target.throughput_gbps target ~latency:service in
  Printf.printf "service latency %.0f units -> saturation at %.1f Gbps (%d cores)\n" service
    capacity target.Costmodel.Target.num_cores;
  let cols = [ ("load(Gbps)", 11); ("sojourn", 8); ("inflation", 10) ] in
  Harness.print_header cols;
  List.iter
    (fun frac ->
      let offered = frac *. capacity in
      match Costmodel.Queueing.expected_sojourn target ~service_latency:service ~offered_gbps:offered with
      | Some s ->
        Harness.print_row cols
          [ Harness.f1 offered; Harness.f1 s; Printf.sprintf "%.2fx" (s /. service) ]
      | None -> Harness.print_row cols [ Harness.f1 offered; "-"; "unstable" ])
    [ 0.3; 0.6; 0.8; 0.9; 0.95; 0.99; 1.05 ]

let run () =
  Harness.section "Ablations";
  dp_vs_greedy ();
  node_sum_vs_paths ();
  cache_partitioning ();
  rmt_contrast ();
  incremental_vs_full ();
  queueing_curve ()
