(* Per-key "shape": which bits of the field participate in the hash.
   Entries sharing a shape live in the same hash table; the number of
   distinct shapes is the paper's [m]. *)
type shape_elem =
  | S_exact
  | S_prefix of int  (* LPM prefix length *)
  | S_mask of int64  (* ternary mask *)

(* One stored entry together with its pre-masked key values: hash tables
   are keyed by a 63-bit mixing hash of the masked values, and the masked
   arrays disambiguate the (rare) hash collisions. This keeps the probe
   path free of the string keys the engine used to build per lookup. *)
type slot = {
  masked : int64 array;  (* one per key, already masked *)
  entry : P4ir.Table.entry;
}

type group = {
  shape : shape_elem array;
  masks : int64 array;  (* per-key mask, precomputed from the shape *)
  total_prefix : int;  (* for LPM ordering: longer prefixes probed first *)
  mutable max_priority : int;
  tbl : (int, slot list) Hashtbl.t;
}

(* Compiled binary-search plan over LPM-ordered groups (Waldvogel-style
   binary search on prefix lengths). Built lazily once the group masks
   form a nesting chain; positions are in ascending specificity. Each
   plan slot is either a real entry's key or a marker on some entry's
   binary-search path; [pbest] memoizes the answer a linear longest-first
   probe restricted to positions <= this one would give, so the search
   never backtracks. *)
type pslot = {
  pmasked : int64 array;
  pbest : P4ir.Table.entry option;
  pbest_pos : int;  (* ascending position of [pbest]'s own group, -1 if none *)
}

type plan = {
  pmasks : int64 array array;  (* per ascending position, per key *)
  ptbls : (int, pslot list) Hashtbl.t array;
}

(* Learned-index LPM plan (single-LPM-key tables). The prefix set is
   flattened into disjoint elementary intervals over the key domain; a
   piecewise-linear model over the sorted interval start keys predicts
   the slot holding a query's interval within a bounded error window,
   and a last-mile binary search inside the window finishes the job.
   Interval runs the model cannot fit are diverted to a small sorted
   remainder store probed exactly — the NuevoMatchUp remainder
   discipline. Entry options are preallocated at build, model
   coefficients live in floatarrays, so the probe allocates nothing. *)
type learned = {
  l_bounds : int64 array;  (* interval start keys, ascending; slot 0 holds 0 *)
  l_ent : P4ir.Table.entry option array;  (* winner per interval *)
  l_acc : int array;  (* modeled access count per interval *)
  seg_key : int64 array;  (* per segment, first covered bound *)
  seg_pos : int array;  (* length nseg+1: slot range of each segment *)
  seg_slope : floatarray;
  seg_inter : floatarray;
  l_window : int;  (* last-mile search radius around the prediction *)
  r_bounds : int64 array;  (* remainder store: outlier bounds, ascending *)
  r_ent : P4ir.Table.entry option array;
  r_acc : int array;
  l_dom : int64;  (* key domain mask: 2^width - 1 *)
}

(* Decision-tree ternary plan: internal nodes test one key bit (packed
   as [key*64 + bit]), leaves hold candidate lists pre-sorted in the
   probe's winner order (priority desc, then group probe order), so the
   first matching candidate is the answer. Candidates wildcarded on a
   split bit are duplicated down both sides, bounded by a duplication
   budget. Nodes live in a flat int array (3 slots each), candidates in
   parallel arrays with preallocated entry options. *)
type tree = {
  tn : int array;  (* node i at 3i: [bit; left; right] or [-1; start; len] *)
  c_masked : int64 array array;  (* per candidate: masked key values *)
  c_rank : int array;  (* per candidate: owning group's probe rank *)
  c_ent : P4ir.Table.entry option array;  (* preallocated [Some entry] *)
  t_masks : int64 array array;  (* per group rank: per-key masks *)
  t_acc : int;  (* modeled accesses: every mask group is always charged *)
  t_maxleaf : int;  (* largest leaf candidate list: worst-case scan length *)
}

(* Which compiled plan a shaped table is currently running. *)
type splan =
  | P_none  (* straight probe: longest-first LPM scan / ternary skip probe *)
  | P_waldvogel of plan
  | P_learned of learned
  | P_tree of tree

(* Per-table override for the plan selector. [Auto] picks from the entry
   count and match kind at plan-build time; a forced hint that does not
   apply to the table's shape falls back to [Auto]'s choice. *)
type backend_hint = Auto | Force_linear | Force_waldvogel | Force_learned | Force_tree

type shaped = {
  mutable groups : group array;  (* only the first [ngroups] are live *)
  mutable ngroups : int;
  lpm_ordered : bool;
  mutable nentries : int;  (* live slots across all groups, tracked exactly *)
  mutable hint : backend_hint;
  mutable plan : splan;
  mutable plan_stale : bool;
}

(* Compiled probe index over an exact-hash store: open addressing keyed
   by the same mixing hash, entry options preallocated at build so the
   steady-state probe allocates nothing. Rebuilt lazily after any
   control-plane mutation ([eidx = None] marks it stale), so the compiled
   data path always sees live table state. *)
type xindex = {
  xmask : int;  (* capacity - 1, capacity a power of two *)
  xhash : int array;  (* per-slot mixing hash (occupancy lives in xent) *)
  xvals : int64 array array;  (* per-slot key values *)
  xent : P4ir.Table.entry option array;  (* preallocated [Some entry] *)
}

type exact_store = {
  etbl : (int, slot list) Hashtbl.t;
  mutable eidx : xindex option;  (* compiled probe index; None = stale *)
}

type backend =
  | Exact_hash of exact_store
  | Exact_lru of P4ir.Table.entry Lru.t
  | Shaped of shaped
  | Linear of P4ir.Table.entry list ref

type t = {
  table : P4ir.Table.t;
  fields : P4ir.Field.t array;  (* key fields, in key order *)
  scratch : int64 array;  (* reusable per-lookup key-value buffer *)
  backend : backend;
  mutable updates : int;
  mutable last_acc : int;  (* accesses of the most recent plan probe *)
  mutable tokens : float;  (* cache-fill token bucket *)
  mutable token_time : float;
}

let def t = t.table

let key_fields (tab : P4ir.Table.t) = List.map (fun (k : P4ir.Table.key) -> k.field) tab.keys

let all_exact (tab : P4ir.Table.t) =
  List.for_all
    (fun (k : P4ir.Table.key) -> P4ir.Match_kind.equal k.kind P4ir.Match_kind.Exact)
    tab.keys

let has_range (tab : P4ir.Table.t) =
  List.exists
    (fun (k : P4ir.Table.key) -> P4ir.Match_kind.equal k.kind P4ir.Match_kind.Range)
    tab.keys

(* String keys survive only for the LRU cache store, whose map is keyed
   by strings; the hash engines use the allocation-free mixing hash. *)
let exact_key_of_entry (e : P4ir.Table.entry) =
  let buf = Buffer.create 32 in
  List.iter
    (fun p ->
      match p with
      | P4ir.Pattern.Exact v ->
        Buffer.add_int64_le buf v;
        Buffer.add_char buf '|'
      | _ -> invalid_arg "Engine: non-exact pattern in exact table")
    e.patterns;
  Buffer.contents buf

let exact_key_of_values values =
  let buf = Buffer.create 32 in
  Array.iter
    (fun v ->
      Buffer.add_int64_le buf v;
      Buffer.add_char buf '|')
    values;
  Buffer.contents buf

(* --- hashing --- *)

let hash_seed = 0x9E3779B97F4A7C15L

(* Local copy of Stdx.Prng.mix64 (same constants, same bits): keeping
   the mixer in-module lets the compiler inline it and unbox the whole
   int64 chain, where the cross-module call boxes its argument and
   result on every probe. *)
let[@inline always] mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let hash_masked (vals : int64 array) (masks : int64 array) =
  let h = ref hash_seed in
  for i = 0 to Array.length masks - 1 do
    h :=
      mix64
        (Int64.logxor !h
           (Int64.logand (Array.unsafe_get vals i) (Array.unsafe_get masks i)))
  done;
  Int64.to_int (Int64.shift_right_logical !h 1)

let hash_exact (vals : int64 array) =
  let h = ref hash_seed in
  for i = 0 to Array.length vals - 1 do
    h := mix64 (Int64.logxor !h (Array.unsafe_get vals i))
  done;
  Int64.to_int (Int64.shift_right_logical !h 1)

(* [hash_exact] of a one-element array, with every intermediate in
   registers. The mixer is expanded by hand rather than calling [mix64]:
   the non-flambda backend never inlines across a call, and an int64
   call boxes its argument and result — two allocations per probe on the
   compiled path's hottest line. Fully chained in one body, every
   intermediate stays unboxed. Constants and shift counts must match
   [mix64] (and Stdx.Prng.mix64) bit for bit. *)
let[@inline always] hash_exact1 (v : int64) =
  let z = Int64.logxor hash_seed v in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  Int64.to_int (Int64.shift_right_logical z 1)

let arrays_equal (a : int64 array) (b : int64 array) =
  let n = Array.length a in
  n = Array.length b
  &&
  let rec go i = i >= n || (Int64.equal a.(i) b.(i) && go (i + 1)) in
  go 0

(* Does [slot] hold the masked projection of [vals]? *)
let slot_matches (masks : int64 array) (vals : int64 array) (s : slot) =
  let n = Array.length masks in
  let rec go i =
    i >= n
    || Int64.equal s.masked.(i) (Int64.logand vals.(i) masks.(i)) && go (i + 1)
  in
  go 0

let rec bucket_find masks vals = function
  | [] -> None
  | s :: rest -> if slot_matches masks vals s then Some s else bucket_find masks vals rest

let exact_slot_matches (vals : int64 array) (s : slot) = arrays_equal s.masked vals

let rec exact_bucket_find vals = function
  | [] -> None
  | s :: rest -> if exact_slot_matches vals s then Some s else exact_bucket_find vals rest

(* Two entries with the same masked key collapse to one slot; keep the
   one the reference list scan would pick — higher priority, ties to the
   earlier insertion. (Same shape means same masks, so specificity cannot
   break the tie either.) *)
let bucket_keep bucket (slot : slot) =
  let rec go acc = function
    | [] -> slot :: bucket
    | (s : slot) :: rest ->
      if arrays_equal s.masked slot.masked then
        if s.entry.priority >= slot.entry.priority then bucket
        else List.rev_append acc (slot :: rest)
      else go (s :: acc) rest
  in
  go [] bucket

(* True iff the store grew (the slot's masked key was new): collapsing
   onto an existing slot keeps the live-entry count unchanged. *)
let hash_insert tbl key slot =
  let bucket = match Hashtbl.find_opt tbl key with Some b -> b | None -> [] in
  let bucket' = bucket_keep bucket slot in
  Hashtbl.replace tbl key bucket';
  List.length bucket' > List.length bucket

(* --- shapes --- *)

let shape_of_pattern (k : P4ir.Table.key) (p : P4ir.Pattern.t) =
  match p with
  | P4ir.Pattern.Exact _ -> S_exact
  | P4ir.Pattern.Lpm (_, len) -> S_prefix len
  | P4ir.Pattern.Ternary (_, mask) -> S_mask mask
  | P4ir.Pattern.Range _ ->
    invalid_arg
      (Printf.sprintf "Engine: range pattern on %s needs the linear backend"
         (P4ir.Field.to_string k.field))

let mask_of_shape (k : P4ir.Table.key) = function
  | S_exact -> P4ir.Value.truncate ~width:(P4ir.Field.width k.field) Int64.minus_one
  | S_prefix len -> P4ir.Value.prefix_mask ~width:(P4ir.Field.width k.field) ~prefix_len:len
  | S_mask m -> m

let entry_values (e : P4ir.Table.entry) =
  List.map
    (fun (p : P4ir.Pattern.t) ->
      match p with
      | P4ir.Pattern.Exact v | P4ir.Pattern.Lpm (v, _) | P4ir.Pattern.Ternary (v, _) -> v
      | P4ir.Pattern.Range (lo, _) -> lo)
    e.patterns

let shape_of_entry (tab : P4ir.Table.t) (e : P4ir.Table.entry) =
  Array.of_list (List.map2 shape_of_pattern tab.keys e.patterns)

let total_prefix_of_shape shape =
  Array.fold_left
    (fun acc s ->
      acc + match s with S_exact -> 64 | S_prefix len -> len | S_mask _ -> 0)
    0 shape

let masks_of_shape (tab : P4ir.Table.t) shape =
  let keys = Array.of_list tab.keys in
  Array.mapi (fun i s -> mask_of_shape keys.(i) s) shape

(* --- shaped group array management --- *)

let invalidate_plan s =
  s.plan <- P_none;
  s.plan_stale <- true

let find_group s shape =
  let rec go i =
    if i >= s.ngroups then None
    else if s.groups.(i).shape = shape then Some s.groups.(i)
    else go (i + 1)
  in
  go 0

(* Insert the group at its probe position without rebuilding the rest:
   LPM keeps descending total-prefix order (new group ahead of equal
   lengths, matching the old stable sort over a prepended list); ternary
   keeps newest-shape-first probe order. *)
let add_group s (g : group) =
  let idx =
    if s.lpm_ordered then begin
      let rec pos i =
        if i >= s.ngroups || s.groups.(i).total_prefix <= g.total_prefix then i
        else pos (i + 1)
      in
      pos 0
    end
    else 0
  in
  let cap = Array.length s.groups in
  if s.ngroups = cap then begin
    let bigger = Array.make (max 4 (2 * cap)) g in
    Array.blit s.groups 0 bigger 0 s.ngroups;
    s.groups <- bigger
  end;
  Array.blit s.groups idx s.groups (idx + 1) (s.ngroups - idx);
  s.groups.(idx) <- g;
  s.ngroups <- s.ngroups + 1

let shaped_insert s (tab : P4ir.Table.t) (e : P4ir.Table.entry) =
  let shape = shape_of_entry tab e in
  let g =
    match find_group s shape with
    | Some g ->
      g.max_priority <- max g.max_priority e.priority;
      g
    | None ->
      let g =
        { shape;
          masks = masks_of_shape tab shape;
          total_prefix = total_prefix_of_shape shape;
          max_priority = e.priority;
          tbl = Hashtbl.create 64 }
      in
      add_group s g;
      g
  in
  let values = Array.of_list (entry_values e) in
  let masked = Array.mapi (fun i v -> Int64.logand v g.masks.(i)) values in
  if hash_insert g.tbl (hash_masked masked g.masks) { masked; entry = e } then
    s.nentries <- s.nentries + 1;
  invalidate_plan s

(* --- compiled binary-search plan (LPM) --- *)

(* Binary search pays off once there are enough prefix-length groups; a
   linear longest-first scan wins below this. *)
let plan_threshold = 4

let group_probe (g : group) vals =
  match Hashtbl.find_opt g.tbl (hash_masked vals g.masks) with
  | None -> None
  | Some bucket -> bucket_find g.masks vals bucket

let build_waldvogel s =
  let result = ref None in
  let m = s.ngroups in
  if s.lpm_ordered && m >= plan_threshold then begin
    (* Ascending specificity: position p is groups.(m-1-p). *)
    let asc = Array.init m (fun p -> s.groups.(m - 1 - p)) in
    let nk = Array.length asc.(0).masks in
    (* Binary search is only sound when the group masks nest (a chain):
       true for the common single-LPM-key table (other keys exact), not
       necessarily for multi-LPM-key tables, which keep linear probing. *)
    let chain = ref true in
    for p = 0 to m - 2 do
      for k = 0 to nk - 1 do
        let narrow = asc.(p).masks.(k) and wide = asc.(p + 1).masks.(k) in
        if not (Int64.equal (Int64.logand narrow wide) narrow) then chain := false
      done
    done;
    if !chain then begin
      let pmasks = Array.map (fun (g : group) -> g.masks) asc in
      (* Pass 1: collect the key set per position — every real slot plus
         markers on each real slot's binary-search path. *)
      let keysets : (int, int64 array list) Hashtbl.t array =
        Array.init m (fun _ -> Hashtbl.create 32)
      in
      let add_key pos (masked : int64 array) =
        let h = hash_masked masked pmasks.(pos) in
        let bucket =
          match Hashtbl.find_opt keysets.(pos) h with Some b -> b | None -> []
        in
        if not (List.exists (arrays_equal masked) bucket) then
          Hashtbl.replace keysets.(pos) h (masked :: bucket)
      in
      let project (src : int64 array) pos =
        Array.mapi (fun k v -> Int64.logand v pmasks.(pos).(k)) src
      in
      Array.iteri
        (fun p (g : group) ->
          Hashtbl.iter
            (fun _ slots ->
              List.iter
                (fun (s0 : slot) ->
                  add_key p s0.masked;
                  let rec path lo hi =
                    if lo <= hi then begin
                      let mid = (lo + hi) / 2 in
                      if mid < p then begin
                        add_key mid (project s0.masked mid);
                        path (mid + 1) hi
                      end
                      else if mid > p then path lo (mid - 1)
                    end
                  in
                  path 0 (m - 1))
                slots)
            g.tbl)
        asc;
      (* Pass 2: memoize each key's effective best — what the linear
         longest-first probe restricted to positions <= pos would find. *)
      let ptbls = Array.init m (fun _ -> Hashtbl.create 64) in
      Array.iteri
        (fun pos keys ->
          Hashtbl.iter
            (fun h bucket ->
              let pslots =
                List.map
                  (fun masked ->
                    let rec eff i =
                      if i < 0 then (None, -1)
                      else
                        match group_probe asc.(i) masked with
                        | Some s0 -> (Some s0.entry, i)
                        | None -> eff (i - 1)
                    in
                    let pbest, pbest_pos = eff pos in
                    { pmasked = masked; pbest; pbest_pos })
                  bucket
              in
              Hashtbl.replace ptbls.(pos) h pslots)
            keys)
        keysets;
      result := Some { pmasks; ptbls }
    end
  end;
  !result

let pslot_matches (masks : int64 array) (vals : int64 array) (ps : pslot) =
  let n = Array.length masks in
  let rec go i =
    i >= n
    || Int64.equal ps.pmasked.(i) (Int64.logand vals.(i) masks.(i)) && go (i + 1)
  in
  go 0

let rec pbucket_find masks vals = function
  | [] -> None
  | ps :: rest -> if pslot_matches masks vals ps then Some ps else pbucket_find masks vals rest

(* Reported accesses stay those of the modeled hardware (one hash probe
   per prefix-length table, longest first, stopping at the hit): the
   binary search is a host-side shortcut, not a different cost model. *)
let plan_lookup (plan : plan) vals m =
  let best = ref None and best_pos = ref (-1) in
  let lo = ref 0 and hi = ref (m - 1) in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let hit =
      match Hashtbl.find_opt plan.ptbls.(mid) (hash_masked vals plan.pmasks.(mid)) with
      | None -> None
      | Some bucket -> pbucket_find plan.pmasks.(mid) vals bucket
    in
    match hit with
    | Some ps ->
      best := ps.pbest;
      best_pos := ps.pbest_pos;
      lo := mid + 1
    | None -> hi := mid - 1
  done;
  match !best with
  | Some e -> (Some e, m - !best_pos)
  | None -> (None, max 1 m)

(* --- learned-index LPM plan --- *)

(* Tunables. [learned_epsilon] is the model's maximum slot error; the
   last-mile search window is epsilon + 2 (queries between two sample
   keys can land one slot past either bound). Segments shorter than
   [learned_min_run] are outliers the cone could not extend over — they
   go to the remainder store instead of earning coefficients. The
   thresholds are where the auto selector switches a table over; below
   them the existing plans win on build cost. *)
let learned_epsilon = 32
let learned_min_run = 4
let learned_threshold = 4096
let tree_threshold = 4096

(* Degeneracy guard for the decision tree. Unstructured mask sets (no
   bits shared across masks) exhaust the wildcard-duplication budget
   near the root and leave giant leaves, so a probe scans thousands of
   candidates — far slower than the skip probe it replaced. The auto
   selector keeps a tree only when its worst leaf scan stays within a
   small factor of the skip probe's per-group cost (a leaf compare is
   much cheaper than a masked hash probe); forced hints bypass the
   guard. *)
let tree_leaf_budget ngroups = 4 * max 8 ngroups

(* The learned plan models one key dimension: a single LPM key, whose
   width (<= 48 bits) converts to float exactly. Multi-key LPM tables
   keep the Waldvogel / linear plans. *)
let learned_applicable t s =
  s.lpm_ordered
  && Array.length t.fields = 1
  &&
  let rec ok i =
    i >= s.ngroups
    || (match s.groups.(i).shape.(0) with S_prefix _ -> ok (i + 1) | S_exact | S_mask _ -> false)
  in
  ok 0

let build_learned t s =
  let width = P4ir.Field.width t.fields.(0) in
  let dom = Int64.shift_left 1L width in
  let dom_mask = Int64.sub dom 1L in
  let miss_acc = max 1 s.ngroups in
  (* Collect every prefix with its probe rank: a hit in group i costs
     i+1 accesses under the modeled longest-first scan. *)
  let n = s.nentries in
  let it_lo = Array.make (max 1 n) 0L in
  let it_hi = Array.make (max 1 n) 0L in
  let it_len = Array.make (max 1 n) 0 in
  let it_ent = Array.make (max 1 n) None in
  let it_acc = Array.make (max 1 n) 0 in
  let nit = ref 0 in
  for i = 0 to s.ngroups - 1 do
    let g = s.groups.(i) in
    let len = match g.shape.(0) with S_prefix l -> l | S_exact | S_mask _ -> width in
    let span = Int64.sub (Int64.shift_left 1L (width - len)) 1L in
    Hashtbl.iter
      (fun _ bucket ->
        List.iter
          (fun (s0 : slot) ->
            let k = !nit in
            it_lo.(k) <- s0.masked.(0);
            it_hi.(k) <- Int64.add s0.masked.(0) span;
            it_len.(k) <- len;
            it_ent.(k) <- Some s0.entry;
            it_acc.(k) <- i + 1;
            incr nit)
          bucket)
      g.tbl
  done;
  let n = !nit in
  let order = Array.init n (fun i -> i) in
  (* Prefix intervals nest or are disjoint; sorting by (lo asc, wider
     first) makes a single stack sweep flatten them into disjoint
     elementary intervals whose winner is the innermost live prefix. *)
  Array.sort
    (fun a b ->
      let c = Int64.compare it_lo.(a) it_lo.(b) in
      if c <> 0 then c else compare it_len.(a) it_len.(b))
    order;
  let cap = (2 * n) + 2 in
  let b_bound = Array.make cap 0L in
  let b_ent = Array.make cap None in
  let b_acc = Array.make cap miss_acc in
  let bn = ref 0 in
  let emit bound ent acc =
    if Int64.compare bound dom < 0 then
      if !bn > 0 && Int64.equal b_bound.(!bn - 1) bound then begin
        (* Same start key: the later (narrower) item wins the interval. *)
        b_ent.(!bn - 1) <- ent;
        b_acc.(!bn - 1) <- acc
      end
      else begin
        b_bound.(!bn) <- bound;
        b_ent.(!bn) <- ent;
        b_acc.(!bn) <- acc;
        incr bn
      end
  in
  emit 0L None miss_acc;
  let stack = Array.make (max 1 n) 0 in
  let top = ref 0 in
  let emit_top_after bound =
    if !top > 0 then begin
      let p = stack.(!top - 1) in
      emit bound it_ent.(p) it_acc.(p)
    end
    else emit bound None miss_acc
  in
  Array.iter
    (fun idx ->
      while !top > 0 && Int64.compare it_hi.(stack.(!top - 1)) it_lo.(idx) < 0 do
        let popped = stack.(!top - 1) in
        decr top;
        emit_top_after (Int64.add it_hi.(popped) 1L)
      done;
      stack.(!top) <- idx;
      incr top;
      emit it_lo.(idx) it_ent.(idx) it_acc.(idx))
    order;
  while !top > 0 do
    let popped = stack.(!top - 1) in
    decr top;
    emit_top_after (Int64.add it_hi.(popped) 1L)
  done;
  let nb = !bn in
  (* Greedy shrinking-cone piecewise-linear regression over the points
     (bound as float, slot index): extend the current segment while some
     slope keeps every point within epsilon slots; close it when the
     feasible cone empties. *)
  let eps = float_of_int learned_epsilon in
  let segs = ref [] in
  let j0 = ref 0 in
  let x0 = ref (Int64.to_float b_bound.(0)) in
  let slo = ref neg_infinity and shi = ref infinity in
  let close stop =
    let slope =
      if stop - !j0 <= 1 then 0.
      else begin
        let mid = (!slo +. !shi) /. 2. in
        if Float.is_finite mid then mid else 0.
      end
    in
    let inter = float_of_int !j0 -. (slope *. !x0) in
    segs := (!j0, stop, slope, inter) :: !segs
  in
  for j = 1 to nb - 1 do
    let x = Int64.to_float b_bound.(j) in
    let dx = x -. !x0 in
    let dy = float_of_int (j - !j0) in
    let lo_req = (dy -. eps) /. dx and hi_req = (dy +. eps) /. dx in
    let nlo = Float.max !slo lo_req and nhi = Float.min !shi hi_req in
    if nlo > nhi then begin
      close j;
      j0 := j;
      x0 := x;
      slo := neg_infinity;
      shi := infinity
    end
    else begin
      slo := nlo;
      shi := nhi
    end
  done;
  close nb;
  let segs = List.rev !segs in
  (* Divert runt segments to the remainder store (the segment holding
     bound 0 always stays: every query then finds a main-array floor).
     Accepted segments keep their slope — removing whole earlier runs
     shifts their slots by a constant, absorbed into the intercept. *)
  let rem_cap = (nb / 16) + 4 in
  let m_bound = Array.make (max 1 nb) 0L in
  let m_ent = Array.make (max 1 nb) None in
  let m_acc = Array.make (max 1 nb) miss_acc in
  let mn = ref 0 in
  let r_bound = Array.make rem_cap 0L in
  let r_ent = Array.make rem_cap None in
  let r_acc = Array.make rem_cap 0 in
  let rn = ref 0 in
  let skeys = ref [] and sposs = ref [] and sslopes = ref [] and sinters = ref [] in
  let nseg = ref 0 in
  List.iter
    (fun (start, stop, slope, inter) ->
      let cnt = stop - start in
      if cnt < learned_min_run && start > 0 && !rn + cnt <= rem_cap then
        for j = start to stop - 1 do
          r_bound.(!rn) <- b_bound.(j);
          r_ent.(!rn) <- b_ent.(j);
          r_acc.(!rn) <- b_acc.(j);
          incr rn
        done
      else begin
        let removed = start - !mn in
        skeys := b_bound.(start) :: !skeys;
        sposs := !mn :: !sposs;
        sslopes := slope :: !sslopes;
        sinters := (inter -. float_of_int removed) :: !sinters;
        incr nseg;
        for j = start to stop - 1 do
          m_bound.(!mn) <- b_bound.(j);
          m_ent.(!mn) <- b_ent.(j);
          m_acc.(!mn) <- b_acc.(j);
          incr mn
        done
      end)
    segs;
  sposs := !mn :: !sposs;
  { l_bounds = Array.sub m_bound 0 !mn;
    l_ent = Array.sub m_ent 0 !mn;
    l_acc = Array.sub m_acc 0 !mn;
    seg_key = Array.of_list (List.rev !skeys);
    seg_pos = Array.of_list (List.rev !sposs);
    seg_slope = Float.Array.of_list (List.rev !sslopes);
    seg_inter = Float.Array.of_list (List.rev !sinters);
    l_window = learned_epsilon + 2;
    r_bounds = Array.sub r_bound 0 !rn;
    r_ent = Array.sub r_ent 0 !rn;
    r_acc = Array.sub r_acc 0 !rn;
    l_dom = dom_mask }

(* Rightmost index in [lo, hi] whose key is <= v; [ans] if none. A
   top-level tail-recursive function, not a local closure, so the probe
   path allocates nothing. *)
let rec bsearch_le (a : int64 array) (v : int64) lo hi ans =
  if lo > hi then ans
  else begin
    let mid = (lo + hi) / 2 in
    if Int64.compare (Array.unsafe_get a mid) v <= 0 then bsearch_le a v (mid + 1) hi mid
    else bsearch_le a v lo (mid - 1) ans
  end

let learned_find t (l : learned) (v : int64) =
  let v = Int64.logand v l.l_dom in
  let s = bsearch_le l.seg_key v 0 (Array.length l.seg_key - 1) 0 in
  let lo_pos = l.seg_pos.(s) and hi_pos = l.seg_pos.(s + 1) - 1 in
  let pred =
    int_of_float ((Float.Array.get l.seg_slope s *. Int64.to_float v) +. Float.Array.get l.seg_inter s)
  in
  let pred = if pred < lo_pos then lo_pos else if pred > hi_pos then hi_pos else pred in
  let wlo = if pred - l.l_window < lo_pos then lo_pos else pred - l.l_window in
  let whi = if pred + l.l_window > hi_pos then hi_pos else pred + l.l_window in
  let j = bsearch_le l.l_bounds v wlo whi (wlo - 1) in
  (* The window provably contains the answer for non-negative segment
     slopes; verify and fall back to the whole segment otherwise. *)
  let j =
    if j >= wlo && (j = hi_pos || Int64.compare l.l_bounds.(j + 1) v > 0) then j
    else bsearch_le l.l_bounds v lo_pos hi_pos lo_pos
  in
  let rn = Array.length l.r_bounds in
  if rn > 0 then begin
    let rj = bsearch_le l.r_bounds v 0 (rn - 1) (-1) in
    if rj >= 0 && Int64.compare l.r_bounds.(rj) l.l_bounds.(j) > 0 then begin
      t.last_acc <- l.r_acc.(rj);
      l.r_ent.(rj)
    end
    else begin
      t.last_acc <- l.l_acc.(j);
      l.l_ent.(j)
    end
  end
  else begin
    t.last_acc <- l.l_acc.(j);
    l.l_ent.(j)
  end

(* --- decision-tree ternary plan --- *)

let tree_leaf_max = 8
let tree_max_depth = 20
let tree_sample_cap = 512

let build_tree s =
  let g_masks = Array.init s.ngroups (fun i -> s.groups.(i).masks) in
  let nk = if s.ngroups = 0 then 0 else Array.length g_masks.(0) in
  let n = s.nentries in
  let a_masked = Array.make (max 1 n) [||] in
  let a_rank = Array.make (max 1 n) 0 in
  let a_ent = Array.make (max 1 n) None in
  let a_prio = Array.make (max 1 n) 0 in
  let na = ref 0 in
  for i = 0 to s.ngroups - 1 do
    Hashtbl.iter
      (fun _ bucket ->
        List.iter
          (fun (s0 : slot) ->
            let k = !na in
            a_masked.(k) <- s0.masked;
            a_rank.(k) <- i;
            a_ent.(k) <- Some s0.entry;
            a_prio.(k) <- s0.entry.priority;
            incr na)
          bucket)
      s.groups.(i).tbl
  done;
  let n = !na in
  (* Pre-sort once in winner order (priority desc, probe rank asc);
     stable partitions below preserve it, so every leaf list is sorted
     and the first match wins — exactly the skip probe's answer. *)
  let order = Array.init n (fun i -> i) in
  Array.sort
    (fun a b ->
      let c = compare a_prio.(b) a_prio.(a) in
      if c <> 0 then c else compare a_rank.(a) a_rank.(b))
    order;
  (* Split-bit candidates: bits set in at least one group mask. *)
  let bits = ref [] in
  for k = nk - 1 downto 0 do
    let u = ref 0L in
    for i = 0 to s.ngroups - 1 do
      u := Int64.logor !u g_masks.(i).(k)
    done;
    for b = 63 downto 0 do
      if Int64.equal (Int64.logand (Int64.shift_right_logical !u b) 1L) 1L then
        bits := ((k * 64) + b) :: !bits
    done
  done;
  let bits = Array.of_list !bits in
  let tn = ref (Array.make 96 0) in
  let nnodes = ref 0 in
  let new_node a b c =
    if 3 * !nnodes >= Array.length !tn then begin
      let bigger = Array.make (2 * Array.length !tn) 0 in
      Array.blit !tn 0 bigger 0 (3 * !nnodes);
      tn := bigger
    end;
    let id = !nnodes in
    incr nnodes;
    (!tn).((3 * id) + 0) <- a;
    (!tn).((3 * id) + 1) <- b;
    (!tn).((3 * id) + 2) <- c;
    id
  in
  let c_masked = ref (Array.make (max 1 n) [||]) in
  let c_rank = ref (Array.make (max 1 n) 0) in
  let c_ent = ref (Array.make (max 1 n) None) in
  let nc = ref 0 in
  let push_cand i =
    if !nc >= Array.length !c_ent then begin
      let grow (type a) (a : a array) (z : a) =
        let bigger = Array.make (2 * Array.length a) z in
        Array.blit a 0 bigger 0 !nc;
        bigger
      in
      c_masked := grow !c_masked [||];
      c_rank := grow !c_rank 0;
      c_ent := grow !c_ent None
    end;
    (!c_masked).(!nc) <- a_masked.(i);
    (!c_rank).(!nc) <- a_rank.(i);
    (!c_ent).(!nc) <- a_ent.(i);
    incr nc
  in
  (* Wildcard duplication budget: once splits have copied this many
     extra candidates, the remaining subtrees become leaves. *)
  let dup_allow = ref ((8 * n) + 64) in
  let maxleaf = ref 0 in
  let bit_set v b = Int64.equal (Int64.logand (Int64.shift_right_logical v b) 1L) 1L in
  let rec build cands depth =
    let cn = Array.length cands in
    let make_leaf () =
      if cn > !maxleaf then maxleaf := cn;
      let start = !nc in
      Array.iter push_cand cands;
      new_node (-1) start cn
    in
    if cn <= tree_leaf_max || depth >= tree_max_depth || !dup_allow <= 0 then make_leaf ()
    else begin
      (* Pick the bit separating the most candidates, scored on a
         strided sample for large nodes (a sample underestimates both
         sides, so a positive score still guarantees the split shrinks). *)
      let step = if cn <= tree_sample_cap then 1 else cn / tree_sample_cap in
      let best_bit = ref (-1) and best_score = ref 0 in
      Array.iter
        (fun kb ->
          let k = kb lsr 6 and b = kb land 63 in
          let zeros = ref 0 and ones = ref 0 in
          let i = ref 0 in
          while !i < cn do
            let c = cands.(!i) in
            if bit_set g_masks.(a_rank.(c)).(k) b then
              if bit_set a_masked.(c).(k) b then incr ones else incr zeros;
            i := !i + step
          done;
          let score = min !zeros !ones in
          if score > !best_score then begin
            best_score := score;
            best_bit := kb
          end)
        bits;
      if !best_bit < 0 then make_leaf ()
      else begin
        let kb = !best_bit in
        let k = kb lsr 6 and b = kb land 63 in
        let nl = ref 0 and nr = ref 0 in
        Array.iter
          (fun c ->
            if bit_set g_masks.(a_rank.(c)).(k) b then
              if bit_set a_masked.(c).(k) b then incr nr else incr nl
            else begin
              incr nl;
              incr nr
            end)
          cands;
        let left = Array.make !nl 0 and right = Array.make !nr 0 in
        let il = ref 0 and ir = ref 0 in
        Array.iter
          (fun c ->
            if bit_set g_masks.(a_rank.(c)).(k) b then begin
              if bit_set a_masked.(c).(k) b then begin
                right.(!ir) <- c;
                incr ir
              end
              else begin
                left.(!il) <- c;
                incr il
              end
            end
            else begin
              left.(!il) <- c;
              incr il;
              right.(!ir) <- c;
              incr ir
            end)
          cands;
        dup_allow := !dup_allow - (!nl + !nr - cn);
        let me = new_node kb 0 0 in
        let l = build left (depth + 1) in
        let r = build right (depth + 1) in
        (!tn).((3 * me) + 1) <- l;
        (!tn).((3 * me) + 2) <- r;
        me
      end
    end
  in
  let root = build order 0 in
  assert (root = 0);
  { tn = Array.sub !tn 0 (3 * !nnodes);
    c_masked = Array.sub !c_masked 0 !nc;
    c_rank = Array.sub !c_rank 0 !nc;
    c_ent = Array.sub !c_ent 0 !nc;
    t_masks = g_masks;
    t_acc = max 1 s.ngroups;
    t_maxleaf = !maxleaf }

(* Leaf scan: first candidate whose masked projection of the packet
   values matches. Top-level recursion keeps the probe allocation-free. *)
let rec tree_cand_match (cm : int64 array) (masks : int64 array) (vals : int64 array) k nk =
  k >= nk
  || Int64.equal (Array.unsafe_get cm k)
       (Int64.logand (Array.unsafe_get vals k) (Array.unsafe_get masks k))
     && tree_cand_match cm masks vals (k + 1) nk

let rec tree_scan (tr : tree) (vals : int64 array) i stop =
  if i >= stop then None
  else begin
    let masks = tr.t_masks.(Array.unsafe_get tr.c_rank i) in
    if tree_cand_match (Array.unsafe_get tr.c_masked i) masks vals 0 (Array.length masks) then
      Array.unsafe_get tr.c_ent i
    else tree_scan tr vals (i + 1) stop
  end

let rec tree_descend (tr : tree) (vals : int64 array) node =
  let tag = Array.unsafe_get tr.tn (3 * node) in
  if tag < 0 then begin
    let start = Array.unsafe_get tr.tn ((3 * node) + 1) in
    tree_scan tr vals start (start + Array.unsafe_get tr.tn ((3 * node) + 2))
  end
  else begin
    let v = Array.unsafe_get vals (tag lsr 6) in
    if Int64.equal (Int64.logand (Int64.shift_right_logical v (tag land 63)) 1L) 1L then
      tree_descend tr vals (Array.unsafe_get tr.tn ((3 * node) + 2))
    else tree_descend tr vals (Array.unsafe_get tr.tn ((3 * node) + 1))
  end

(* --- plan selection --- *)

let select_plan t s =
  s.plan_stale <- false;
  let waldvogel () = match build_waldvogel s with Some p -> P_waldvogel p | None -> P_none in
  let auto () =
    if s.lpm_ordered then
      if learned_applicable t s && s.nentries >= learned_threshold then
        P_learned (build_learned t s)
      else waldvogel ()
    else if s.nentries >= tree_threshold && s.ngroups >= 2 then begin
      let tr = build_tree s in
      if tr.t_maxleaf <= tree_leaf_budget s.ngroups then P_tree tr else P_none
    end
    else P_none
  in
  s.plan <-
    (match s.hint with
     | Auto -> auto ()
     | Force_linear -> P_none
     | Force_waldvogel -> if s.lpm_ordered then waldvogel () else auto ()
     | Force_learned -> if learned_applicable t s then P_learned (build_learned t s) else auto ()
     | Force_tree -> if (not s.lpm_ordered) && s.ngroups > 0 then P_tree (build_tree s) else auto ())

(* --- engine construction --- *)

let raw_insert t (e : P4ir.Table.entry) =
  match t.backend with
  | Exact_hash ex ->
    let masked = Array.of_list (entry_values e) in
    ignore (hash_insert ex.etbl (hash_exact masked) { masked; entry = e });
    ex.eidx <- None
  | Exact_lru lru -> ignore (Lru.put lru (exact_key_of_entry e) e)
  | Linear entries -> entries := !entries @ [ e ]
  | Shaped s -> shaped_insert s t.table e

let create (tab : P4ir.Table.t) =
  let backend =
    match tab.role with
    | P4ir.Table.Cache meta when all_exact tab ->
      let lru = Lru.create ~capacity:(max 1 meta.capacity) in
      List.iter (fun e -> ignore (Lru.put lru (exact_key_of_entry e) e)) tab.entries;
      Exact_lru lru
    | _ when has_range tab -> Linear (ref tab.entries)
    | _ when all_exact tab ->
      Exact_hash
        { etbl = Hashtbl.create (max 64 (List.length tab.entries)); eidx = None }
    | _ ->
      let lpm_ordered =
        P4ir.Match_kind.equal (P4ir.Table.effective_kind tab) P4ir.Match_kind.Lpm
      in
      Shaped
        { groups = [||];
          ngroups = 0;
          lpm_ordered;
          nentries = 0;
          hint = Auto;
          plan = P_none;
          plan_stale = true }
  in
  let nkeys = List.length tab.keys in
  let tokens =
    (* Cache fill buckets start full: a freshly deployed cache may warm at
       up to one second's insertion allowance immediately. *)
    match tab.role with P4ir.Table.Cache meta -> meta.insert_limit | _ -> 0.
  in
  let t =
    { table = tab;
      fields = Array.of_list (key_fields tab);
      scratch = Array.make (max 1 nkeys) 0L;
      backend;
      updates = 0;
      last_acc = 1;
      tokens;
      token_time = 0. }
  in
  (match backend with
   | Exact_hash _ | Shaped _ -> List.iter (raw_insert t) tab.entries
   | Exact_lru _ | Linear _ -> ());
  t

(* Fill the reusable key buffer with the packet's key-field values. *)
let read_values t pkt =
  for i = 0 to Array.length t.fields - 1 do
    t.scratch.(i) <- Packet.get pkt (Array.unsafe_get t.fields i)
  done;
  t.scratch

let linear_lookup t entries pkt =
  let read f = Packet.get pkt f in
  let tab = { t.table with P4ir.Table.entries } in
  (P4ir.Table.lookup tab read, max 1 (List.length entries))

(* Longest-prefix groups first; the first hit is the answer. *)
let lpm_linear_probe s vals =
  let rec probe i =
    if i >= s.ngroups then (None, max 1 s.ngroups)
    else
      let g = s.groups.(i) in
      match group_probe g vals with
      | Some slot -> (Some slot.entry, i + 1)
      | None -> probe (i + 1)
  in
  probe 0

(* Ternary: the model probes every mask group; highest priority wins.
   [skip] elides hash probes that cannot change the winner (the group's
   max priority does not beat the current best) — the reported access
   count still charges every group, as the hardware would. *)
let ternary_probe ~skip s vals =
  let best = ref None in
  for i = 0 to s.ngroups - 1 do
    let g = s.groups.(i) in
    let skippable =
      skip
      && match !best with
         | Some (b : P4ir.Table.entry) -> b.priority >= g.max_priority
         | None -> false
    in
    if not skippable then
      match group_probe g vals with
      | Some slot -> (
        match !best with
        | Some (b : P4ir.Table.entry) when b.priority >= slot.entry.priority -> ()
        | _ -> best := Some slot.entry)
      | None -> ()
  done;
  (!best, max 1 s.ngroups)

(* One plan-directed probe. Leaves the access count in [t.last_acc]
   instead of returning a tuple: the learned and tree paths return a
   preallocated entry option, so the compiled walk stays allocation-free
   through here. *)
let shaped_probe t s pkt =
  if s.plan_stale then select_plan t s;
  match s.plan with
  | P_learned l -> learned_find t l (Packet.get pkt (Array.unsafe_get t.fields 0))
  | P_tree tr ->
    let vals = read_values t pkt in
    t.last_acc <- tr.t_acc;
    tree_descend tr vals 0
  | P_waldvogel p ->
    let vals = read_values t pkt in
    let r, a = plan_lookup p vals s.ngroups in
    t.last_acc <- a;
    r
  | P_none ->
    let vals = read_values t pkt in
    let r, a =
      if s.lpm_ordered then lpm_linear_probe s vals else ternary_probe ~skip:true s vals
    in
    t.last_acc <- a;
    r

let shaped_lookup ~use_plan t s pkt =
  if use_plan then begin
    let r = shaped_probe t s pkt in
    (r, t.last_acc)
  end
  else begin
    let vals = read_values t pkt in
    if s.lpm_ordered then lpm_linear_probe s vals else ternary_probe ~skip:false s vals
  end

(* --- compiled exact-probe index --- *)

let build_xindex (ex : exact_store) =
  let n = Hashtbl.fold (fun _ bucket acc -> acc + List.length bucket) ex.etbl 0 in
  (* Load factor <= 1/2 keeps linear-probe chains short. *)
  let cap = ref 8 in
  while !cap < 2 * n do
    cap := !cap * 2
  done;
  let idx =
    { xmask = !cap - 1;
      xhash = Array.make !cap 0;
      xvals = Array.make !cap [||];
      xent = Array.make !cap None }
  in
  Hashtbl.iter
    (fun h bucket ->
      List.iter
        (fun (s : slot) ->
          let rec place j =
            match idx.xent.(j) with
            | Some _ -> place ((j + 1) land idx.xmask)
            | None ->
              idx.xhash.(j) <- h;
              idx.xvals.(j) <- s.masked;
              idx.xent.(j) <- Some s.entry
          in
          place (h land idx.xmask))
        bucket)
    ex.etbl;
  ex.eidx <- Some idx;
  idx

(* The probe answers exactly what the hash store's lookup answers (same
   mixing hash, same full-key disambiguation, same physical entries).
   Occupancy is the entry option itself — [hash_exact] ranges over the
   whole native int (bit 62 lands in the sign bit), so no integer
   sentinel is safe — and a hit returns the slot's preallocated [Some]. *)
(* The probe loops are top-level recursive functions, not local [rec go]
   closures: a local closure captures its free variables, which is a
   fresh block on every probe — the compiled walk's only allocation. *)
let rec xfind_from idx (vals : int64 array) h j =
  match Array.unsafe_get idx.xent j with
  | None -> None
  | Some _ as r ->
    if Array.unsafe_get idx.xhash j = h && arrays_equal (Array.unsafe_get idx.xvals j) vals
    then r
    else xfind_from idx vals h ((j + 1) land idx.xmask)

let xindex_find idx (vals : int64 array) h = xfind_from idx vals h (h land idx.xmask)

(* Single-key probe: no scratch fill, no array loop — one field read,
   one inlined mix, one indexed compare. *)
let rec xfind1_from idx (v : int64) h j =
  match Array.unsafe_get idx.xent j with
  | None -> None
  | Some _ as r ->
    if
      Array.unsafe_get idx.xhash j = h
      && Int64.equal (Array.unsafe_get (Array.unsafe_get idx.xvals j) 0) v
    then r
    else xfind1_from idx v h ((j + 1) land idx.xmask)

let xindex_find1 idx (v : int64) =
  let h = hash_exact1 v in
  xfind1_from idx v h (h land idx.xmask)

let exact_probe t =
  match t.backend with
  | Exact_hash ex ->
    Some
      (if Array.length t.fields = 1 then begin
         let field = t.fields.(0) in
         fun pkt ->
           let idx = match ex.eidx with Some idx -> idx | None -> build_xindex ex in
           xindex_find1 idx (Packet.get pkt field)
       end
       else
         fun pkt ->
           let idx = match ex.eidx with Some idx -> idx | None -> build_xindex ex in
           let vals = read_values t pkt in
           xindex_find idx vals (hash_exact vals))
  | Exact_lru _ | Shaped _ | Linear _ -> None

let plan_probe t =
  match t.backend with
  | Shaped s -> Some (fun pkt -> shaped_probe t s pkt)
  | Exact_hash _ | Exact_lru _ | Linear _ -> None

let last_accesses t = t.last_acc

let set_backend_hint t hint =
  match t.backend with
  | Shaped s ->
    if s.hint <> hint then begin
      s.hint <- hint;
      invalidate_plan s
    end
  | Exact_hash _ | Exact_lru _ | Linear _ -> ()

let backend_hint t =
  match t.backend with Shaped s -> s.hint | Exact_hash _ | Exact_lru _ | Linear _ -> Auto

let plan_kind t =
  match t.backend with
  | Exact_hash _ -> "exact-hash"
  | Exact_lru _ -> "exact-lru"
  | Linear _ -> "linear"
  | Shaped s ->
    if s.plan_stale then select_plan t s;
    (match s.plan with
     | P_learned _ -> "learned"
     | P_tree _ -> "tree"
     | P_waldvogel _ -> "waldvogel"
     | P_none -> if s.lpm_ordered then "lpm-linear" else "ternary-skip")

let plan_stats t =
  match t.backend with
  | Exact_hash _ | Exact_lru _ | Linear _ -> []
  | Shaped s ->
    if s.plan_stale then select_plan t s;
    (match s.plan with
     | P_learned l ->
       [ ("segments", Array.length l.seg_key);
         ("intervals", Array.length l.l_bounds);
         ("remainder", Array.length l.r_bounds) ]
     | P_tree tr ->
       [ ("tree_nodes", Array.length tr.tn / 3);
         ("tree_candidates", Array.length tr.c_ent);
         ("tree_max_leaf", tr.t_maxleaf) ]
     | P_waldvogel p -> [ ("positions", Array.length p.pmasks) ]
     | P_none -> [])

let lookup_gen ~use_plan t pkt =
  match t.backend with
  | Exact_hash ex ->
    let vals = read_values t pkt in
    let res =
      match Hashtbl.find_opt ex.etbl (hash_exact vals) with
      | None -> None
      | Some bucket -> (
        match exact_bucket_find vals bucket with
        | Some slot -> Some slot.entry
        | None -> None)
    in
    (res, 1)
  | Exact_lru lru ->
    let vals = read_values t pkt in
    (Lru.find lru (exact_key_of_values vals), 1)
  | Linear entries -> linear_lookup t !entries pkt
  | Shaped s -> shaped_lookup ~use_plan t s pkt

let lookup t pkt = lookup_gen ~use_plan:true t pkt
let lookup_linear t pkt = lookup_gen ~use_plan:false t pkt

let validate_entry t e =
  (* Reuse Table.make's validation by round-tripping through add_entry. *)
  ignore (P4ir.Table.add_entry { t.table with P4ir.Table.entries = [] } e)

let insert t e =
  validate_entry t e;
  raw_insert t e;
  t.updates <- t.updates + 1

let delete t ~patterns =
  let matches (e : P4ir.Table.entry) = List.for_all2 P4ir.Pattern.equal e.patterns patterns in
  let removed = ref false in
  (match t.backend with
   | Exact_hash ex ->
     let vals =
       Array.of_list
         (List.map
            (function
              | P4ir.Pattern.Exact v -> v
              | _ -> invalid_arg "Engine.delete: non-exact pattern for exact table")
            patterns)
     in
     let key = hash_exact vals in
     (match Hashtbl.find_opt ex.etbl key with
      | Some bucket ->
        let survivors = List.filter (fun s -> not (exact_slot_matches vals s)) bucket in
        if List.length survivors < List.length bucket then begin
          removed := true;
          ex.eidx <- None;
          if survivors = [] then Hashtbl.remove ex.etbl key
          else Hashtbl.replace ex.etbl key survivors
        end
      | None -> ())
   | Exact_lru lru ->
     let key =
       exact_key_of_values
         (Array.of_list
            (List.map
               (function
                 | P4ir.Pattern.Exact v -> v
                 | _ -> invalid_arg "Engine.delete: non-exact pattern for exact table")
               patterns))
     in
     if Lru.mem lru key then begin
       Lru.remove lru key;
       removed := true
     end
   | Linear entries ->
     let before = List.length !entries in
     entries := List.filter (fun e -> not (matches e)) !entries;
     removed := List.length !entries < before
   | Shaped s ->
     for i = 0 to s.ngroups - 1 do
       let g = s.groups.(i) in
       let victims =
         Hashtbl.fold
           (fun k bucket acc ->
             if List.exists (fun (s0 : slot) -> matches s0.entry) bucket then (k, bucket) :: acc
             else acc)
           g.tbl []
       in
       List.iter
         (fun (k, bucket) ->
           removed := true;
           let survivors = List.filter (fun (s0 : slot) -> not (matches s0.entry)) bucket in
           s.nentries <- s.nentries - (List.length bucket - List.length survivors);
           if survivors = [] then Hashtbl.remove g.tbl k else Hashtbl.replace g.tbl k survivors)
         victims
     done;
     (* Emptied groups stay in place: the modeled hardware still probes
        their hash table, so the access count must keep charging them. *)
     if !removed then invalidate_plan s);
  if !removed then t.updates <- t.updates + 1;
  !removed

let load_entries t new_entries =
  List.iter (validate_entry t) new_entries;
  match t.backend with
  | Exact_hash ex ->
    Hashtbl.reset ex.etbl;
    ex.eidx <- None;
    List.iter (raw_insert t) new_entries
  | Exact_lru lru ->
    Lru.clear lru;
    List.iter (fun e -> ignore (Lru.put lru (exact_key_of_entry e) e)) new_entries
  | Linear entries -> entries := new_entries
  | Shaped s ->
    s.groups <- [||];
    s.ngroups <- 0;
    s.nentries <- 0;
    invalidate_plan s;
    List.iter (fun e -> shaped_insert s t.table e) new_entries

let replace_all t new_entries =
  load_entries t new_entries;
  t.updates <- t.updates + List.length new_entries

let entries t =
  match t.backend with
  | Exact_hash ex ->
    Hashtbl.fold (fun _ bucket acc -> List.map (fun s -> s.entry) bucket @ acc) ex.etbl []
  | Exact_lru lru ->
    let acc = ref [] in
    Lru.iter (fun _ e -> acc := e :: !acc) lru;
    !acc
  | Linear entries -> !entries
  | Shaped s ->
    let acc = ref [] in
    for i = 0 to s.ngroups - 1 do
      Hashtbl.iter
        (fun _ bucket -> List.iter (fun (s0 : slot) -> acc := s0.entry :: !acc) bucket)
        s.groups.(i).tbl
    done;
    !acc

let num_entries t =
  match t.backend with
  | Shaped s -> s.nentries  (* tracked exactly; avoids building the list *)
  | Exact_hash _ | Exact_lru _ | Linear _ -> List.length (entries t)

let shape_groups t =
  match t.backend with Shaped s -> s.ngroups | Exact_hash _ | Exact_lru _ | Linear _ -> 0

let update_count t = t.updates

let take_update_count t =
  let n = t.updates in
  t.updates <- 0;
  n

let copy t =
  let copy_group (g : group) = { g with tbl = Hashtbl.copy g.tbl } in
  let backend =
    match t.backend with
    | Exact_hash ex -> Exact_hash { etbl = Hashtbl.copy ex.etbl; eidx = None }
    | Exact_lru lru -> Exact_lru (Lru.copy lru)
    | Linear entries -> Linear (ref !entries)
    | Shaped s ->
      Shaped
        { groups = Array.init s.ngroups (fun i -> copy_group s.groups.(i));
          ngroups = s.ngroups;
          lpm_ordered = s.lpm_ordered;
          nentries = s.nentries;
          hint = s.hint;
          plan = P_none;
          plan_stale = true }
  in
  { t with backend; scratch = Array.copy t.scratch }

let cache_fill t ~now e =
  match (t.table.role, t.backend) with
  | P4ir.Table.Cache meta, Exact_lru lru ->
    (* Token bucket: [insert_limit] tokens/sec, burst of one second. *)
    let limit = meta.insert_limit in
    if limit > 0. then begin
      let elapsed = Float.max 0. (now -. t.token_time) in
      t.tokens <- Float.min limit (t.tokens +. (elapsed *. limit));
      t.token_time <- now
    end
    else t.tokens <- 1.;
    if limit > 0. && t.tokens < 1. then `Rate_limited
    else begin
      if limit > 0. then t.tokens <- t.tokens -. 1.;
      match Lru.put lru (exact_key_of_entry e) e with
      | Some _ -> `Full_replace
      | None -> `Inserted
    end
  | _ -> invalid_arg "Engine.cache_fill: not a cache table"

let invalidate t =
  match t.backend with
  | Exact_lru lru -> Lru.clear lru
  | Exact_hash ex ->
    Hashtbl.reset ex.etbl;
    ex.eidx <- None
  | Linear entries -> entries := []
  | Shaped s ->
    s.groups <- [||];
    s.ngroups <- 0;
    s.nentries <- 0;
    invalidate_plan s
