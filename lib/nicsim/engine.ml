(* Per-key "shape": which bits of the field participate in the hash.
   Entries sharing a shape live in the same hash table; the number of
   distinct shapes is the paper's [m]. *)
type shape_elem =
  | S_exact
  | S_prefix of int  (* LPM prefix length *)
  | S_mask of int64  (* ternary mask *)

(* One stored entry together with its pre-masked key values: hash tables
   are keyed by a 63-bit mixing hash of the masked values, and the masked
   arrays disambiguate the (rare) hash collisions. This keeps the probe
   path free of the string keys the engine used to build per lookup. *)
type slot = {
  masked : int64 array;  (* one per key, already masked *)
  entry : P4ir.Table.entry;
}

type group = {
  shape : shape_elem array;
  masks : int64 array;  (* per-key mask, precomputed from the shape *)
  total_prefix : int;  (* for LPM ordering: longer prefixes probed first *)
  mutable max_priority : int;
  tbl : (int, slot list) Hashtbl.t;
}

(* Compiled binary-search plan over LPM-ordered groups (Waldvogel-style
   binary search on prefix lengths). Built lazily once the group masks
   form a nesting chain; positions are in ascending specificity. Each
   plan slot is either a real entry's key or a marker on some entry's
   binary-search path; [pbest] memoizes the answer a linear longest-first
   probe restricted to positions <= this one would give, so the search
   never backtracks. *)
type pslot = {
  pmasked : int64 array;
  pbest : P4ir.Table.entry option;
  pbest_pos : int;  (* ascending position of [pbest]'s own group, -1 if none *)
}

type plan = {
  pmasks : int64 array array;  (* per ascending position, per key *)
  ptbls : (int, pslot list) Hashtbl.t array;
}

type shaped = {
  mutable groups : group array;  (* only the first [ngroups] are live *)
  mutable ngroups : int;
  lpm_ordered : bool;
  mutable plan : plan option;
  mutable plan_stale : bool;
}

(* Compiled probe index over an exact-hash store: open addressing keyed
   by the same mixing hash, entry options preallocated at build so the
   steady-state probe allocates nothing. Rebuilt lazily after any
   control-plane mutation ([eidx = None] marks it stale), so the compiled
   data path always sees live table state. *)
type xindex = {
  xmask : int;  (* capacity - 1, capacity a power of two *)
  xhash : int array;  (* per-slot mixing hash (occupancy lives in xent) *)
  xvals : int64 array array;  (* per-slot key values *)
  xent : P4ir.Table.entry option array;  (* preallocated [Some entry] *)
}

type exact_store = {
  etbl : (int, slot list) Hashtbl.t;
  mutable eidx : xindex option;  (* compiled probe index; None = stale *)
}

type backend =
  | Exact_hash of exact_store
  | Exact_lru of P4ir.Table.entry Lru.t
  | Shaped of shaped
  | Linear of P4ir.Table.entry list ref

type t = {
  table : P4ir.Table.t;
  fields : P4ir.Field.t array;  (* key fields, in key order *)
  scratch : int64 array;  (* reusable per-lookup key-value buffer *)
  backend : backend;
  mutable updates : int;
  mutable tokens : float;  (* cache-fill token bucket *)
  mutable token_time : float;
}

let def t = t.table

let key_fields (tab : P4ir.Table.t) = List.map (fun (k : P4ir.Table.key) -> k.field) tab.keys

let all_exact (tab : P4ir.Table.t) =
  List.for_all
    (fun (k : P4ir.Table.key) -> P4ir.Match_kind.equal k.kind P4ir.Match_kind.Exact)
    tab.keys

let has_range (tab : P4ir.Table.t) =
  List.exists
    (fun (k : P4ir.Table.key) -> P4ir.Match_kind.equal k.kind P4ir.Match_kind.Range)
    tab.keys

(* String keys survive only for the LRU cache store, whose map is keyed
   by strings; the hash engines use the allocation-free mixing hash. *)
let exact_key_of_entry (e : P4ir.Table.entry) =
  let buf = Buffer.create 32 in
  List.iter
    (fun p ->
      match p with
      | P4ir.Pattern.Exact v ->
        Buffer.add_int64_le buf v;
        Buffer.add_char buf '|'
      | _ -> invalid_arg "Engine: non-exact pattern in exact table")
    e.patterns;
  Buffer.contents buf

let exact_key_of_values values =
  let buf = Buffer.create 32 in
  Array.iter
    (fun v ->
      Buffer.add_int64_le buf v;
      Buffer.add_char buf '|')
    values;
  Buffer.contents buf

(* --- hashing --- *)

let hash_seed = 0x9E3779B97F4A7C15L

(* Local copy of Stdx.Prng.mix64 (same constants, same bits): keeping
   the mixer in-module lets the compiler inline it and unbox the whole
   int64 chain, where the cross-module call boxes its argument and
   result on every probe. *)
let[@inline always] mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let hash_masked (vals : int64 array) (masks : int64 array) =
  let h = ref hash_seed in
  for i = 0 to Array.length masks - 1 do
    h :=
      mix64
        (Int64.logxor !h
           (Int64.logand (Array.unsafe_get vals i) (Array.unsafe_get masks i)))
  done;
  Int64.to_int (Int64.shift_right_logical !h 1)

let hash_exact (vals : int64 array) =
  let h = ref hash_seed in
  for i = 0 to Array.length vals - 1 do
    h := mix64 (Int64.logxor !h (Array.unsafe_get vals i))
  done;
  Int64.to_int (Int64.shift_right_logical !h 1)

(* [hash_exact] of a one-element array, with every intermediate in
   registers. The mixer is expanded by hand rather than calling [mix64]:
   the non-flambda backend never inlines across a call, and an int64
   call boxes its argument and result — two allocations per probe on the
   compiled path's hottest line. Fully chained in one body, every
   intermediate stays unboxed. Constants and shift counts must match
   [mix64] (and Stdx.Prng.mix64) bit for bit. *)
let[@inline always] hash_exact1 (v : int64) =
  let z = Int64.logxor hash_seed v in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  Int64.to_int (Int64.shift_right_logical z 1)

let arrays_equal (a : int64 array) (b : int64 array) =
  let n = Array.length a in
  n = Array.length b
  &&
  let rec go i = i >= n || (Int64.equal a.(i) b.(i) && go (i + 1)) in
  go 0

(* Does [slot] hold the masked projection of [vals]? *)
let slot_matches (masks : int64 array) (vals : int64 array) (s : slot) =
  let n = Array.length masks in
  let rec go i =
    i >= n
    || Int64.equal s.masked.(i) (Int64.logand vals.(i) masks.(i)) && go (i + 1)
  in
  go 0

let rec bucket_find masks vals = function
  | [] -> None
  | s :: rest -> if slot_matches masks vals s then Some s else bucket_find masks vals rest

let exact_slot_matches (vals : int64 array) (s : slot) = arrays_equal s.masked vals

let rec exact_bucket_find vals = function
  | [] -> None
  | s :: rest -> if exact_slot_matches vals s then Some s else exact_bucket_find vals rest

(* Two entries with the same masked key collapse to one slot; keep the
   one the reference list scan would pick — higher priority, ties to the
   earlier insertion. (Same shape means same masks, so specificity cannot
   break the tie either.) *)
let bucket_keep bucket (slot : slot) =
  let rec go acc = function
    | [] -> slot :: bucket
    | (s : slot) :: rest ->
      if arrays_equal s.masked slot.masked then
        if s.entry.priority >= slot.entry.priority then bucket
        else List.rev_append acc (slot :: rest)
      else go (s :: acc) rest
  in
  go [] bucket

let hash_insert tbl key slot =
  let bucket = match Hashtbl.find_opt tbl key with Some b -> b | None -> [] in
  Hashtbl.replace tbl key (bucket_keep bucket slot)

(* --- shapes --- *)

let shape_of_pattern (k : P4ir.Table.key) (p : P4ir.Pattern.t) =
  match p with
  | P4ir.Pattern.Exact _ -> S_exact
  | P4ir.Pattern.Lpm (_, len) -> S_prefix len
  | P4ir.Pattern.Ternary (_, mask) -> S_mask mask
  | P4ir.Pattern.Range _ ->
    invalid_arg
      (Printf.sprintf "Engine: range pattern on %s needs the linear backend"
         (P4ir.Field.to_string k.field))

let mask_of_shape (k : P4ir.Table.key) = function
  | S_exact -> P4ir.Value.truncate ~width:(P4ir.Field.width k.field) Int64.minus_one
  | S_prefix len -> P4ir.Value.prefix_mask ~width:(P4ir.Field.width k.field) ~prefix_len:len
  | S_mask m -> m

let entry_values (e : P4ir.Table.entry) =
  List.map
    (fun (p : P4ir.Pattern.t) ->
      match p with
      | P4ir.Pattern.Exact v | P4ir.Pattern.Lpm (v, _) | P4ir.Pattern.Ternary (v, _) -> v
      | P4ir.Pattern.Range (lo, _) -> lo)
    e.patterns

let shape_of_entry (tab : P4ir.Table.t) (e : P4ir.Table.entry) =
  Array.of_list (List.map2 shape_of_pattern tab.keys e.patterns)

let total_prefix_of_shape shape =
  Array.fold_left
    (fun acc s ->
      acc + match s with S_exact -> 64 | S_prefix len -> len | S_mask _ -> 0)
    0 shape

let masks_of_shape (tab : P4ir.Table.t) shape =
  let keys = Array.of_list tab.keys in
  Array.mapi (fun i s -> mask_of_shape keys.(i) s) shape

(* --- shaped group array management --- *)

let invalidate_plan s =
  s.plan <- None;
  s.plan_stale <- true

let find_group s shape =
  let rec go i =
    if i >= s.ngroups then None
    else if s.groups.(i).shape = shape then Some s.groups.(i)
    else go (i + 1)
  in
  go 0

(* Insert the group at its probe position without rebuilding the rest:
   LPM keeps descending total-prefix order (new group ahead of equal
   lengths, matching the old stable sort over a prepended list); ternary
   keeps newest-shape-first probe order. *)
let add_group s (g : group) =
  let idx =
    if s.lpm_ordered then begin
      let rec pos i =
        if i >= s.ngroups || s.groups.(i).total_prefix <= g.total_prefix then i
        else pos (i + 1)
      in
      pos 0
    end
    else 0
  in
  let cap = Array.length s.groups in
  if s.ngroups = cap then begin
    let bigger = Array.make (max 4 (2 * cap)) g in
    Array.blit s.groups 0 bigger 0 s.ngroups;
    s.groups <- bigger
  end;
  Array.blit s.groups idx s.groups (idx + 1) (s.ngroups - idx);
  s.groups.(idx) <- g;
  s.ngroups <- s.ngroups + 1

let shaped_insert s (tab : P4ir.Table.t) (e : P4ir.Table.entry) =
  let shape = shape_of_entry tab e in
  let g =
    match find_group s shape with
    | Some g ->
      g.max_priority <- max g.max_priority e.priority;
      g
    | None ->
      let g =
        { shape;
          masks = masks_of_shape tab shape;
          total_prefix = total_prefix_of_shape shape;
          max_priority = e.priority;
          tbl = Hashtbl.create 64 }
      in
      add_group s g;
      g
  in
  let values = Array.of_list (entry_values e) in
  let masked = Array.mapi (fun i v -> Int64.logand v g.masks.(i)) values in
  hash_insert g.tbl (hash_masked masked g.masks) { masked; entry = e };
  invalidate_plan s

(* --- compiled binary-search plan (LPM) --- *)

(* Binary search pays off once there are enough prefix-length groups; a
   linear longest-first scan wins below this. *)
let plan_threshold = 4

let group_probe (g : group) vals =
  match Hashtbl.find_opt g.tbl (hash_masked vals g.masks) with
  | None -> None
  | Some bucket -> bucket_find g.masks vals bucket

let build_plan s =
  s.plan_stale <- false;
  s.plan <- None;
  let m = s.ngroups in
  if s.lpm_ordered && m >= plan_threshold then begin
    (* Ascending specificity: position p is groups.(m-1-p). *)
    let asc = Array.init m (fun p -> s.groups.(m - 1 - p)) in
    let nk = Array.length asc.(0).masks in
    (* Binary search is only sound when the group masks nest (a chain):
       true for the common single-LPM-key table (other keys exact), not
       necessarily for multi-LPM-key tables, which keep linear probing. *)
    let chain = ref true in
    for p = 0 to m - 2 do
      for k = 0 to nk - 1 do
        let narrow = asc.(p).masks.(k) and wide = asc.(p + 1).masks.(k) in
        if not (Int64.equal (Int64.logand narrow wide) narrow) then chain := false
      done
    done;
    if !chain then begin
      let pmasks = Array.map (fun (g : group) -> g.masks) asc in
      (* Pass 1: collect the key set per position — every real slot plus
         markers on each real slot's binary-search path. *)
      let keysets : (int, int64 array list) Hashtbl.t array =
        Array.init m (fun _ -> Hashtbl.create 32)
      in
      let add_key pos (masked : int64 array) =
        let h = hash_masked masked pmasks.(pos) in
        let bucket =
          match Hashtbl.find_opt keysets.(pos) h with Some b -> b | None -> []
        in
        if not (List.exists (arrays_equal masked) bucket) then
          Hashtbl.replace keysets.(pos) h (masked :: bucket)
      in
      let project (src : int64 array) pos =
        Array.mapi (fun k v -> Int64.logand v pmasks.(pos).(k)) src
      in
      Array.iteri
        (fun p (g : group) ->
          Hashtbl.iter
            (fun _ slots ->
              List.iter
                (fun (s0 : slot) ->
                  add_key p s0.masked;
                  let rec path lo hi =
                    if lo <= hi then begin
                      let mid = (lo + hi) / 2 in
                      if mid < p then begin
                        add_key mid (project s0.masked mid);
                        path (mid + 1) hi
                      end
                      else if mid > p then path lo (mid - 1)
                    end
                  in
                  path 0 (m - 1))
                slots)
            g.tbl)
        asc;
      (* Pass 2: memoize each key's effective best — what the linear
         longest-first probe restricted to positions <= pos would find. *)
      let ptbls = Array.init m (fun _ -> Hashtbl.create 64) in
      Array.iteri
        (fun pos keys ->
          Hashtbl.iter
            (fun h bucket ->
              let pslots =
                List.map
                  (fun masked ->
                    let rec eff i =
                      if i < 0 then (None, -1)
                      else
                        match group_probe asc.(i) masked with
                        | Some s0 -> (Some s0.entry, i)
                        | None -> eff (i - 1)
                    in
                    let pbest, pbest_pos = eff pos in
                    { pmasked = masked; pbest; pbest_pos })
                  bucket
              in
              Hashtbl.replace ptbls.(pos) h pslots)
            keys)
        keysets;
      s.plan <- Some { pmasks; ptbls }
    end
  end

let pslot_matches (masks : int64 array) (vals : int64 array) (ps : pslot) =
  let n = Array.length masks in
  let rec go i =
    i >= n
    || Int64.equal ps.pmasked.(i) (Int64.logand vals.(i) masks.(i)) && go (i + 1)
  in
  go 0

let rec pbucket_find masks vals = function
  | [] -> None
  | ps :: rest -> if pslot_matches masks vals ps then Some ps else pbucket_find masks vals rest

(* Reported accesses stay those of the modeled hardware (one hash probe
   per prefix-length table, longest first, stopping at the hit): the
   binary search is a host-side shortcut, not a different cost model. *)
let plan_lookup (plan : plan) vals m =
  let best = ref None and best_pos = ref (-1) in
  let lo = ref 0 and hi = ref (m - 1) in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let hit =
      match Hashtbl.find_opt plan.ptbls.(mid) (hash_masked vals plan.pmasks.(mid)) with
      | None -> None
      | Some bucket -> pbucket_find plan.pmasks.(mid) vals bucket
    in
    match hit with
    | Some ps ->
      best := ps.pbest;
      best_pos := ps.pbest_pos;
      lo := mid + 1
    | None -> hi := mid - 1
  done;
  match !best with
  | Some e -> (Some e, m - !best_pos)
  | None -> (None, max 1 m)

(* --- engine construction --- *)

let raw_insert t (e : P4ir.Table.entry) =
  match t.backend with
  | Exact_hash ex ->
    let masked = Array.of_list (entry_values e) in
    hash_insert ex.etbl (hash_exact masked) { masked; entry = e };
    ex.eidx <- None
  | Exact_lru lru -> ignore (Lru.put lru (exact_key_of_entry e) e)
  | Linear entries -> entries := !entries @ [ e ]
  | Shaped s -> shaped_insert s t.table e

let create (tab : P4ir.Table.t) =
  let backend =
    match tab.role with
    | P4ir.Table.Cache meta when all_exact tab ->
      let lru = Lru.create ~capacity:(max 1 meta.capacity) in
      List.iter (fun e -> ignore (Lru.put lru (exact_key_of_entry e) e)) tab.entries;
      Exact_lru lru
    | _ when has_range tab -> Linear (ref tab.entries)
    | _ when all_exact tab ->
      Exact_hash
        { etbl = Hashtbl.create (max 64 (List.length tab.entries)); eidx = None }
    | _ ->
      let lpm_ordered =
        P4ir.Match_kind.equal (P4ir.Table.effective_kind tab) P4ir.Match_kind.Lpm
      in
      Shaped { groups = [||]; ngroups = 0; lpm_ordered; plan = None; plan_stale = true }
  in
  let nkeys = List.length tab.keys in
  let tokens =
    (* Cache fill buckets start full: a freshly deployed cache may warm at
       up to one second's insertion allowance immediately. *)
    match tab.role with P4ir.Table.Cache meta -> meta.insert_limit | _ -> 0.
  in
  let t =
    { table = tab;
      fields = Array.of_list (key_fields tab);
      scratch = Array.make (max 1 nkeys) 0L;
      backend;
      updates = 0;
      tokens;
      token_time = 0. }
  in
  (match backend with
   | Exact_hash _ | Shaped _ -> List.iter (raw_insert t) tab.entries
   | Exact_lru _ | Linear _ -> ());
  t

(* Fill the reusable key buffer with the packet's key-field values. *)
let read_values t pkt =
  for i = 0 to Array.length t.fields - 1 do
    t.scratch.(i) <- Packet.get pkt (Array.unsafe_get t.fields i)
  done;
  t.scratch

let linear_lookup t entries pkt =
  let read f = Packet.get pkt f in
  let tab = { t.table with P4ir.Table.entries } in
  (P4ir.Table.lookup tab read, max 1 (List.length entries))

(* Longest-prefix groups first; the first hit is the answer. *)
let lpm_linear_probe s vals =
  let rec probe i =
    if i >= s.ngroups then (None, max 1 s.ngroups)
    else
      let g = s.groups.(i) in
      match group_probe g vals with
      | Some slot -> (Some slot.entry, i + 1)
      | None -> probe (i + 1)
  in
  probe 0

(* Ternary: the model probes every mask group; highest priority wins.
   [skip] elides hash probes that cannot change the winner (the group's
   max priority does not beat the current best) — the reported access
   count still charges every group, as the hardware would. *)
let ternary_probe ~skip s vals =
  let best = ref None in
  for i = 0 to s.ngroups - 1 do
    let g = s.groups.(i) in
    let skippable =
      skip
      && match !best with
         | Some (b : P4ir.Table.entry) -> b.priority >= g.max_priority
         | None -> false
    in
    if not skippable then
      match group_probe g vals with
      | Some slot -> (
        match !best with
        | Some (b : P4ir.Table.entry) when b.priority >= slot.entry.priority -> ()
        | _ -> best := Some slot.entry)
      | None -> ()
  done;
  (!best, max 1 s.ngroups)

let shaped_lookup ~use_plan t s pkt =
  let vals = read_values t pkt in
  if s.lpm_ordered then begin
    if use_plan && s.plan_stale then build_plan s;
    match if use_plan then s.plan else None with
    | Some plan -> plan_lookup plan vals s.ngroups
    | None -> lpm_linear_probe s vals
  end
  else ternary_probe ~skip:use_plan s vals

(* --- compiled exact-probe index --- *)

let build_xindex (ex : exact_store) =
  let n = Hashtbl.fold (fun _ bucket acc -> acc + List.length bucket) ex.etbl 0 in
  (* Load factor <= 1/2 keeps linear-probe chains short. *)
  let cap = ref 8 in
  while !cap < 2 * n do
    cap := !cap * 2
  done;
  let idx =
    { xmask = !cap - 1;
      xhash = Array.make !cap 0;
      xvals = Array.make !cap [||];
      xent = Array.make !cap None }
  in
  Hashtbl.iter
    (fun h bucket ->
      List.iter
        (fun (s : slot) ->
          let rec place j =
            match idx.xent.(j) with
            | Some _ -> place ((j + 1) land idx.xmask)
            | None ->
              idx.xhash.(j) <- h;
              idx.xvals.(j) <- s.masked;
              idx.xent.(j) <- Some s.entry
          in
          place (h land idx.xmask))
        bucket)
    ex.etbl;
  ex.eidx <- Some idx;
  idx

(* The probe answers exactly what the hash store's lookup answers (same
   mixing hash, same full-key disambiguation, same physical entries).
   Occupancy is the entry option itself — [hash_exact] ranges over the
   whole native int (bit 62 lands in the sign bit), so no integer
   sentinel is safe — and a hit returns the slot's preallocated [Some]. *)
(* The probe loops are top-level recursive functions, not local [rec go]
   closures: a local closure captures its free variables, which is a
   fresh block on every probe — the compiled walk's only allocation. *)
let rec xfind_from idx (vals : int64 array) h j =
  match Array.unsafe_get idx.xent j with
  | None -> None
  | Some _ as r ->
    if Array.unsafe_get idx.xhash j = h && arrays_equal (Array.unsafe_get idx.xvals j) vals
    then r
    else xfind_from idx vals h ((j + 1) land idx.xmask)

let xindex_find idx (vals : int64 array) h = xfind_from idx vals h (h land idx.xmask)

(* Single-key probe: no scratch fill, no array loop — one field read,
   one inlined mix, one indexed compare. *)
let rec xfind1_from idx (v : int64) h j =
  match Array.unsafe_get idx.xent j with
  | None -> None
  | Some _ as r ->
    if
      Array.unsafe_get idx.xhash j = h
      && Int64.equal (Array.unsafe_get (Array.unsafe_get idx.xvals j) 0) v
    then r
    else xfind1_from idx v h ((j + 1) land idx.xmask)

let xindex_find1 idx (v : int64) =
  let h = hash_exact1 v in
  xfind1_from idx v h (h land idx.xmask)

let exact_probe t =
  match t.backend with
  | Exact_hash ex ->
    Some
      (if Array.length t.fields = 1 then begin
         let field = t.fields.(0) in
         fun pkt ->
           let idx = match ex.eidx with Some idx -> idx | None -> build_xindex ex in
           xindex_find1 idx (Packet.get pkt field)
       end
       else
         fun pkt ->
           let idx = match ex.eidx with Some idx -> idx | None -> build_xindex ex in
           let vals = read_values t pkt in
           xindex_find idx vals (hash_exact vals))
  | Exact_lru _ | Shaped _ | Linear _ -> None

let lookup_gen ~use_plan t pkt =
  match t.backend with
  | Exact_hash ex ->
    let vals = read_values t pkt in
    let res =
      match Hashtbl.find_opt ex.etbl (hash_exact vals) with
      | None -> None
      | Some bucket -> (
        match exact_bucket_find vals bucket with
        | Some slot -> Some slot.entry
        | None -> None)
    in
    (res, 1)
  | Exact_lru lru ->
    let vals = read_values t pkt in
    (Lru.find lru (exact_key_of_values vals), 1)
  | Linear entries -> linear_lookup t !entries pkt
  | Shaped s -> shaped_lookup ~use_plan t s pkt

let lookup t pkt = lookup_gen ~use_plan:true t pkt
let lookup_linear t pkt = lookup_gen ~use_plan:false t pkt

let validate_entry t e =
  (* Reuse Table.make's validation by round-tripping through add_entry. *)
  ignore (P4ir.Table.add_entry { t.table with P4ir.Table.entries = [] } e)

let insert t e =
  validate_entry t e;
  raw_insert t e;
  t.updates <- t.updates + 1

let delete t ~patterns =
  let matches (e : P4ir.Table.entry) = List.for_all2 P4ir.Pattern.equal e.patterns patterns in
  let removed = ref false in
  (match t.backend with
   | Exact_hash ex ->
     let vals =
       Array.of_list
         (List.map
            (function
              | P4ir.Pattern.Exact v -> v
              | _ -> invalid_arg "Engine.delete: non-exact pattern for exact table")
            patterns)
     in
     let key = hash_exact vals in
     (match Hashtbl.find_opt ex.etbl key with
      | Some bucket ->
        let survivors = List.filter (fun s -> not (exact_slot_matches vals s)) bucket in
        if List.length survivors < List.length bucket then begin
          removed := true;
          ex.eidx <- None;
          if survivors = [] then Hashtbl.remove ex.etbl key
          else Hashtbl.replace ex.etbl key survivors
        end
      | None -> ())
   | Exact_lru lru ->
     let key =
       exact_key_of_values
         (Array.of_list
            (List.map
               (function
                 | P4ir.Pattern.Exact v -> v
                 | _ -> invalid_arg "Engine.delete: non-exact pattern for exact table")
               patterns))
     in
     if Lru.mem lru key then begin
       Lru.remove lru key;
       removed := true
     end
   | Linear entries ->
     let before = List.length !entries in
     entries := List.filter (fun e -> not (matches e)) !entries;
     removed := List.length !entries < before
   | Shaped s ->
     for i = 0 to s.ngroups - 1 do
       let g = s.groups.(i) in
       let victims =
         Hashtbl.fold
           (fun k bucket acc ->
             if List.exists (fun (s0 : slot) -> matches s0.entry) bucket then (k, bucket) :: acc
             else acc)
           g.tbl []
       in
       List.iter
         (fun (k, bucket) ->
           removed := true;
           let survivors = List.filter (fun (s0 : slot) -> not (matches s0.entry)) bucket in
           if survivors = [] then Hashtbl.remove g.tbl k else Hashtbl.replace g.tbl k survivors)
         victims
     done;
     (* Emptied groups stay in place: the modeled hardware still probes
        their hash table, so the access count must keep charging them. *)
     if !removed then invalidate_plan s);
  if !removed then t.updates <- t.updates + 1;
  !removed

let load_entries t new_entries =
  List.iter (validate_entry t) new_entries;
  match t.backend with
  | Exact_hash ex ->
    Hashtbl.reset ex.etbl;
    ex.eidx <- None;
    List.iter (raw_insert t) new_entries
  | Exact_lru lru ->
    Lru.clear lru;
    List.iter (fun e -> ignore (Lru.put lru (exact_key_of_entry e) e)) new_entries
  | Linear entries -> entries := new_entries
  | Shaped s ->
    s.groups <- [||];
    s.ngroups <- 0;
    invalidate_plan s;
    List.iter (fun e -> shaped_insert s t.table e) new_entries

let replace_all t new_entries =
  load_entries t new_entries;
  t.updates <- t.updates + List.length new_entries

let entries t =
  match t.backend with
  | Exact_hash ex ->
    Hashtbl.fold (fun _ bucket acc -> List.map (fun s -> s.entry) bucket @ acc) ex.etbl []
  | Exact_lru lru ->
    let acc = ref [] in
    Lru.iter (fun _ e -> acc := e :: !acc) lru;
    !acc
  | Linear entries -> !entries
  | Shaped s ->
    let acc = ref [] in
    for i = 0 to s.ngroups - 1 do
      Hashtbl.iter
        (fun _ bucket -> List.iter (fun (s0 : slot) -> acc := s0.entry :: !acc) bucket)
        s.groups.(i).tbl
    done;
    !acc

let num_entries t = List.length (entries t)

let shape_groups t =
  match t.backend with Shaped s -> s.ngroups | Exact_hash _ | Exact_lru _ | Linear _ -> 0

let update_count t = t.updates

let take_update_count t =
  let n = t.updates in
  t.updates <- 0;
  n

let copy t =
  let copy_group (g : group) = { g with tbl = Hashtbl.copy g.tbl } in
  let backend =
    match t.backend with
    | Exact_hash ex -> Exact_hash { etbl = Hashtbl.copy ex.etbl; eidx = None }
    | Exact_lru lru -> Exact_lru (Lru.copy lru)
    | Linear entries -> Linear (ref !entries)
    | Shaped s ->
      Shaped
        { groups = Array.init s.ngroups (fun i -> copy_group s.groups.(i));
          ngroups = s.ngroups;
          lpm_ordered = s.lpm_ordered;
          plan = None;
          plan_stale = true }
  in
  { t with backend; scratch = Array.copy t.scratch }

let cache_fill t ~now e =
  match (t.table.role, t.backend) with
  | P4ir.Table.Cache meta, Exact_lru lru ->
    (* Token bucket: [insert_limit] tokens/sec, burst of one second. *)
    let limit = meta.insert_limit in
    if limit > 0. then begin
      let elapsed = Float.max 0. (now -. t.token_time) in
      t.tokens <- Float.min limit (t.tokens +. (elapsed *. limit));
      t.token_time <- now
    end
    else t.tokens <- 1.;
    if limit > 0. && t.tokens < 1. then `Rate_limited
    else begin
      if limit > 0. then t.tokens <- t.tokens -. 1.;
      match Lru.put lru (exact_key_of_entry e) e with
      | Some _ -> `Full_replace
      | None -> `Inserted
    end
  | _ -> invalid_arg "Engine.cache_fill: not a cache table"

let invalidate t =
  match t.backend with
  | Exact_lru lru -> Lru.clear lru
  | Exact_hash ex ->
    Hashtbl.reset ex.etbl;
    ex.eidx <- None
  | Linear entries -> entries := []
  | Shaped s ->
    s.groups <- [||];
    s.ngroups <- 0;
    invalidate_plan s
