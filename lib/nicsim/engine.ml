(* Per-key "shape": which bits of the field participate in the hash.
   Entries sharing a shape live in the same hash table; the number of
   distinct shapes is the paper's [m]. *)
type shape_elem =
  | S_exact
  | S_prefix of int  (* LPM prefix length *)
  | S_mask of int64  (* ternary mask *)

type group = {
  shape : shape_elem list;
  total_prefix : int;  (* for LPM ordering: longer prefixes probed first *)
  max_priority : int;
  tbl : (string, P4ir.Table.entry) Hashtbl.t;
}

type backend =
  | Exact_hash of (string, P4ir.Table.entry) Hashtbl.t
  | Exact_lru of P4ir.Table.entry Lru.t
  | Shaped of { mutable groups : group list; lpm_ordered : bool }
  | Linear of P4ir.Table.entry list ref

type t = {
  table : P4ir.Table.t;
  backend : backend;
  mutable updates : int;
  mutable tokens : float;  (* cache-fill token bucket *)
  mutable token_time : float;
}

let def t = t.table

let key_fields (tab : P4ir.Table.t) = List.map (fun (k : P4ir.Table.key) -> k.field) tab.keys

let all_exact (tab : P4ir.Table.t) =
  List.for_all
    (fun (k : P4ir.Table.key) -> P4ir.Match_kind.equal k.kind P4ir.Match_kind.Exact)
    tab.keys

let has_range (tab : P4ir.Table.t) =
  List.exists
    (fun (k : P4ir.Table.key) -> P4ir.Match_kind.equal k.kind P4ir.Match_kind.Range)
    tab.keys

let exact_key_of_entry (e : P4ir.Table.entry) =
  let buf = Buffer.create 32 in
  List.iter
    (fun p ->
      match p with
      | P4ir.Pattern.Exact v ->
        Buffer.add_int64_le buf v;
        Buffer.add_char buf '|'
      | _ -> invalid_arg "Engine: non-exact pattern in exact table")
    e.patterns;
  Buffer.contents buf

let shape_of_pattern (k : P4ir.Table.key) (p : P4ir.Pattern.t) =
  match p with
  | P4ir.Pattern.Exact _ -> S_exact
  | P4ir.Pattern.Lpm (_, len) -> S_prefix len
  | P4ir.Pattern.Ternary (_, mask) -> S_mask mask
  | P4ir.Pattern.Range _ ->
    invalid_arg
      (Printf.sprintf "Engine: range pattern on %s needs the linear backend"
         (P4ir.Field.to_string k.field))

let mask_of_shape (k : P4ir.Table.key) = function
  | S_exact -> P4ir.Value.truncate ~width:(P4ir.Field.width k.field) Int64.minus_one
  | S_prefix len -> P4ir.Value.prefix_mask ~width:(P4ir.Field.width k.field) ~prefix_len:len
  | S_mask m -> m

let masked_key (tab : P4ir.Table.t) shape values =
  let buf = Buffer.create 32 in
  List.iter2
    (fun (k, s) v ->
      Buffer.add_int64_le buf (Int64.logand v (mask_of_shape k s));
      Buffer.add_char buf '|')
    (List.combine tab.keys shape)
    values;
  Buffer.contents buf

let entry_values (e : P4ir.Table.entry) =
  List.map
    (fun (p : P4ir.Pattern.t) ->
      match p with
      | P4ir.Pattern.Exact v | P4ir.Pattern.Lpm (v, _) | P4ir.Pattern.Ternary (v, _) -> v
      | P4ir.Pattern.Range (lo, _) -> lo)
    e.patterns

let shape_of_entry (tab : P4ir.Table.t) (e : P4ir.Table.entry) =
  List.map2 shape_of_pattern tab.keys e.patterns

let total_prefix_of_shape shape =
  List.fold_left
    (fun acc s ->
      acc + match s with S_exact -> 64 | S_prefix len -> len | S_mask _ -> 0)
    0 shape

let sort_groups lpm_ordered groups =
  if lpm_ordered then
    List.sort (fun a b -> compare b.total_prefix a.total_prefix) groups
  else groups

(* Two entries with the same masked key collapse to one hash slot; keep
   the one the reference list scan would pick — higher priority, ties to
   the earlier insertion. (Same shape means same masks, so specificity
   cannot break the tie either.) *)
let hash_keep tbl key (e : P4ir.Table.entry) =
  match Hashtbl.find_opt tbl key with
  | Some (old : P4ir.Table.entry) when old.priority >= e.priority -> ()
  | _ -> Hashtbl.replace tbl key e

let shaped_insert st ~lpm_ordered (tab : P4ir.Table.t) (e : P4ir.Table.entry) =
  let shape = shape_of_entry tab e in
  let key = masked_key tab shape (entry_values e) in
  match List.find_opt (fun g -> g.shape = shape) st with
  | Some g ->
    hash_keep g.tbl key e;
    sort_groups lpm_ordered
      (List.map
         (fun g' ->
           if g'.shape = shape then { g' with max_priority = max g'.max_priority e.priority }
           else g')
         st)
  | None ->
    let tbl = Hashtbl.create 64 in
    Hashtbl.replace tbl key e;
    sort_groups lpm_ordered
      ({ shape; total_prefix = total_prefix_of_shape shape; max_priority = e.priority; tbl }
       :: st)

let create (tab : P4ir.Table.t) =
  let backend =
    match tab.role with
    | P4ir.Table.Cache meta when all_exact tab ->
      let lru = Lru.create ~capacity:(max 1 meta.capacity) in
      List.iter (fun e -> ignore (Lru.put lru (exact_key_of_entry e) e)) tab.entries;
      Exact_lru lru
    | _ when has_range tab -> Linear (ref tab.entries)
    | _ when all_exact tab ->
      let h = Hashtbl.create (max 64 (List.length tab.entries)) in
      List.iter (fun e -> hash_keep h (exact_key_of_entry e) e) tab.entries;
      Exact_hash h
    | _ ->
      let lpm_ordered =
        P4ir.Match_kind.equal (P4ir.Table.effective_kind tab) P4ir.Match_kind.Lpm
      in
      let groups =
        List.fold_left (fun st e -> shaped_insert st ~lpm_ordered tab e) [] tab.entries
      in
      Shaped { groups; lpm_ordered }
  in
  (* Cache fill buckets start full: a freshly deployed cache may warm at
     up to one second's insertion allowance immediately. *)
  let tokens =
    match tab.role with P4ir.Table.Cache meta -> meta.insert_limit | _ -> 0.
  in
  { table = tab; backend; updates = 0; tokens; token_time = 0. }

let packet_values t pkt = List.map (Packet.get pkt) (key_fields t.table)

let exact_key_of_values values =
  let buf = Buffer.create 32 in
  List.iter
    (fun v ->
      Buffer.add_int64_le buf v;
      Buffer.add_char buf '|')
    values;
  Buffer.contents buf

let linear_lookup t entries pkt =
  let read f = Packet.get pkt f in
  let tab = { t.table with P4ir.Table.entries } in
  (P4ir.Table.lookup tab read, max 1 (List.length entries))

let lookup t pkt =
  match t.backend with
  | Exact_hash h ->
    let key = exact_key_of_values (packet_values t pkt) in
    (Hashtbl.find_opt h key, 1)
  | Exact_lru lru ->
    let key = exact_key_of_values (packet_values t pkt) in
    (Lru.find lru key, 1)
  | Linear entries -> linear_lookup t !entries pkt
  | Shaped { groups; lpm_ordered } ->
    let values = packet_values t pkt in
    if lpm_ordered then
      (* Longest-prefix groups first; the first hit is the answer. *)
      let rec probe accesses = function
        | [] -> (None, max 1 accesses)
        | g :: rest -> (
          let key = masked_key t.table g.shape values in
          match Hashtbl.find_opt g.tbl key with
          | Some e -> (Some e, accesses + 1)
          | None -> probe (accesses + 1) rest)
      in
      probe 0 groups
    else begin
      (* Ternary: every mask group must be probed; highest priority wins. *)
      let best = ref None in
      let accesses = ref 0 in
      List.iter
        (fun g ->
          incr accesses;
          let key = masked_key t.table g.shape values in
          match Hashtbl.find_opt g.tbl key with
          | Some e -> (
            match !best with
            | Some (b : P4ir.Table.entry) when b.priority >= e.priority -> ()
            | _ -> best := Some e)
          | None -> ())
        groups;
      (!best, max 1 !accesses)
    end

let raw_insert t (e : P4ir.Table.entry) =
  match t.backend with
  | Exact_hash h -> Hashtbl.replace h (exact_key_of_entry e) e
  | Exact_lru lru -> ignore (Lru.put lru (exact_key_of_entry e) e)
  | Linear entries -> entries := !entries @ [ e ]
  | Shaped s -> s.groups <- shaped_insert s.groups ~lpm_ordered:s.lpm_ordered t.table e

let validate_entry t e =
  (* Reuse Table.make's validation by round-tripping through add_entry. *)
  ignore (P4ir.Table.add_entry { t.table with P4ir.Table.entries = [] } e)

let insert t e =
  validate_entry t e;
  raw_insert t e;
  t.updates <- t.updates + 1

let delete t ~patterns =
  let matches (e : P4ir.Table.entry) = List.for_all2 P4ir.Pattern.equal e.patterns patterns in
  let removed = ref false in
  (match t.backend with
   | Exact_hash h ->
     let key = exact_key_of_values (List.map (function
       | P4ir.Pattern.Exact v -> v
       | _ -> invalid_arg "Engine.delete: non-exact pattern for exact table") patterns)
     in
     if Hashtbl.mem h key then begin
       Hashtbl.remove h key;
       removed := true
     end
   | Exact_lru lru ->
     let key = exact_key_of_values (List.map (function
       | P4ir.Pattern.Exact v -> v
       | _ -> invalid_arg "Engine.delete: non-exact pattern for exact table") patterns)
     in
     if Lru.mem lru key then begin
       Lru.remove lru key;
       removed := true
     end
   | Linear entries ->
     let before = List.length !entries in
     entries := List.filter (fun e -> not (matches e)) !entries;
     removed := List.length !entries < before
   | Shaped s ->
     List.iter
       (fun g ->
         let victims =
           Hashtbl.fold (fun k e acc -> if matches e then k :: acc else acc) g.tbl []
         in
         List.iter
           (fun k ->
             Hashtbl.remove g.tbl k;
             removed := true)
           victims)
       s.groups);
  if !removed then t.updates <- t.updates + 1;
  !removed

let load_entries t new_entries =
  List.iter (validate_entry t) new_entries;
  match t.backend with
  | Exact_hash h ->
    Hashtbl.reset h;
    List.iter (fun e -> Hashtbl.replace h (exact_key_of_entry e) e) new_entries
  | Exact_lru lru ->
    Lru.clear lru;
    List.iter (fun e -> ignore (Lru.put lru (exact_key_of_entry e) e)) new_entries
  | Linear entries -> entries := new_entries
  | Shaped s ->
    s.groups <- [];
    List.iter
      (fun e -> s.groups <- shaped_insert s.groups ~lpm_ordered:s.lpm_ordered t.table e)
      new_entries

let replace_all t new_entries =
  load_entries t new_entries;
  t.updates <- t.updates + List.length new_entries

let entries t =
  match t.backend with
  | Exact_hash h -> Hashtbl.fold (fun _ e acc -> e :: acc) h []
  | Exact_lru lru ->
    let acc = ref [] in
    Lru.iter (fun _ e -> acc := e :: !acc) lru;
    !acc
  | Linear entries -> !entries
  | Shaped s ->
    List.concat_map (fun g -> Hashtbl.fold (fun _ e acc -> e :: acc) g.tbl []) s.groups

let num_entries t = List.length (entries t)

let update_count t = t.updates

let take_update_count t =
  let n = t.updates in
  t.updates <- 0;
  n

let cache_fill t ~now e =
  match (t.table.role, t.backend) with
  | P4ir.Table.Cache meta, Exact_lru lru ->
    (* Token bucket: [insert_limit] tokens/sec, burst of one second. *)
    let limit = meta.insert_limit in
    if limit > 0. then begin
      let elapsed = Float.max 0. (now -. t.token_time) in
      t.tokens <- Float.min limit (t.tokens +. (elapsed *. limit));
      t.token_time <- now
    end
    else t.tokens <- 1.;
    if limit > 0. && t.tokens < 1. then `Rate_limited
    else begin
      if limit > 0. then t.tokens <- t.tokens -. 1.;
      match Lru.put lru (exact_key_of_entry e) e with
      | Some _ -> `Full_replace
      | None -> `Inserted
    end
  | _ -> invalid_arg "Engine.cache_fill: not a cache table"

let invalidate t =
  match t.backend with
  | Exact_lru lru -> Lru.clear lru
  | Exact_hash h -> Hashtbl.reset h
  | Linear entries -> entries := []
  | Shaped s -> s.groups <- []
