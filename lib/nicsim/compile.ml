(* The pipeline compiler: at deploy time, flatten a program DAG and its
   runtime engines into a linear array of fused match->action ops with
   successor indices resolved to array positions. The op walk replaces
   the interpreter's per-node map lookups, closure allocations, and
   counter hash probes with array indexing, precomputed per-op costs,
   and pre-resolved counter cells — semantics (latencies, counters,
   telemetry, fills, traces) stay bit-identical to {!Exec.run_packet}.

   Layering: this module sits below {!Exec}; it receives the raw pieces
   (program, engine resolver, placement, counters, telemetry) instead of
   an executor, and {!Exec} owns the compiled instance and its
   staleness. *)

type tracer = P4ir.Program.node_id -> string -> string -> unit

(* One action of one table, fully resolved: the action body, its
   precomputed cost contribution (primitive count x l_act x core factor,
   multiplied in the interpreter's association order so the float is the
   same one), and the profile-counter cell for (table, action). *)
type act_info = {
  ai_action : P4ir.Action.t;
  ai_name : string;
  ai_cost : float;
  ai_cell : Profile.Counter.cell;
}

(* The reusable per-table compilation artifact. Incremental deploys that
   keep a table's engine (same name/keys/actions — see
   [Exec.replace_program]) reuse this wholesale; only the successor
   resolution (which depends on the whole program's layout) is redone. *)
type table_art = {
  ta_acts : (string, act_info) Hashtbl.t;
  ta_default : act_info;
  ta_factor : float;
  ta_actions : P4ir.Action.t list;  (* inputs, for reuse validation *)
  ta_default_name : string;
}

type next_res =
  | Next_uniform of int
  | Next_per_action of (string, int) Hashtbl.t  (* unlisted action -> sink *)

type op_cond = {
  c_node : P4ir.Program.node_id;
  c_cond : P4ir.Program.cond;
  c_name : string;
  c_cost : float;  (* l_cond x factor, precomputed *)
  c_core : Costmodel.Cost.core;
  c_true_cell : Profile.Counter.cell;
  c_false_cell : Profile.Counter.cell;
  c_true_pc : int;
  c_false_pc : int;
}

type op_table = {
  t_node : P4ir.Program.node_id;
  t_tab : P4ir.Table.t;
  t_name : string;
  t_eng : Engine.t;
  t_probe : (Packet.t -> P4ir.Table.entry option) option;
      (* allocation-free exact probe ({!Engine.exact_probe}); one memory
         access by construction, same entries as [Engine.lookup] *)
  t_splan : (Packet.t -> P4ir.Table.entry option) option;
      (* shaped plan probe ({!Engine.plan_probe}): Waldvogel / learned /
         tree / straight probe per the table's backend selection; leaves
         the modeled access count in [Engine.last_accesses] instead of
         allocating a result tuple *)
  t_core : Costmodel.Cost.core;
  t_factor : float;
  t_cat : string;
  t_art : table_art;
  t_next : next_res;
  t_fill_covered : string list option;  (* Some iff auto-insert cache *)
  t_records_fired : bool;  (* Regular | Merged: fills record its action *)
  t_tel : (Telemetry.Metrics.counter * Telemetry.Metrics.counter) option;
      (* (hit, miss), resolved under the same names Exec registers *)
  (* One-slot action memo: entries are immutable and physically stable
     inside the engine, so pointer equality proves the action name (and
     thus the resolved act_info) is unchanged since the last hit. *)
  mutable t_memo_entry : P4ir.Table.entry;
  mutable t_memo_info : act_info;
}

type op = Op_cond of op_cond | Op_table of op_table

(* A flow-cache fill in flight; field-for-field the interpreter's
   [pending_fill] so completion installs identical entries. *)
type fill = {
  f_cache : Engine.t;
  f_keys : P4ir.Pattern.t list;
  f_covered : string list;
  mutable f_fired : (string * string) list;
  mutable f_ended_early : bool;
}

type t = {
  ops : op array;
  pc_of : (P4ir.Program.node_id, int) Hashtbl.t;
  root_pc : int;  (* -1 when the program is empty *)
  entry_core : Costmodel.Cost.core;
  base_latency : float;  (* l_fixed (+ entry migration when root is on CPU) *)
  migration : float;
  counter_cost : float;
  l_mat : float;
  counters : Profile.Counter.t;
  tel : Telemetry.t;
  tel_packets : Telemetry.Metrics.counter option;
  tel_drops : Telemetry.Metrics.counter option;
  reused : int;
  rebuilt : int;
  (* Walk state as scratch fields: a compiled pipeline belongs to one
     executor on one domain, so reusing them keeps the steady-state walk
     allocation-free (fills and spans only allocate on cache misses and
     traced packets respectively, exactly when the interpreter does).
     The latency accumulator is a one-slot floatarray rather than a
     mutable float field: float fields of a mixed record are boxed, so
     every [<-] would allocate; floatarray stores are unboxed. *)
  s_lat : floatarray;
  mutable s_acc : int;
      (* access count of the lookup in flight: a side channel out of the
         probe/lookup branch, so the probe arm never builds a result
         tuple (an int store is immediate — no write barrier) *)
  mutable s_pc : int;
  mutable s_core : Costmodel.Cost.core;
  mutable s_dropped : bool;
  mutable s_fills : fill list;
  mutable s_spans : Telemetry.Trace.span list;
}

let num_ops t = Array.length t.ops
let tables_reused t = t.reused
let tables_rebuilt t = t.rebuilt
let drop_observed t = t.s_dropped

type op_view = {
  view_pc : int;
  view_node : P4ir.Program.node_id;
  view_kind : [ `Table | `Cond ];
  view_name : string;
  view_next : int list;
}

let view t =
  Array.to_list
    (Array.mapi
       (fun pc op ->
         match op with
         | Op_cond c ->
           { view_pc = pc;
             view_node = c.c_node;
             view_kind = `Cond;
             view_name = c.c_name;
             view_next = [ c.c_true_pc; c.c_false_pc ] }
         | Op_table tb ->
           { view_pc = pc;
             view_node = tb.t_node;
             view_kind = `Table;
             view_name = tb.t_name;
             view_next =
               (match tb.t_next with
                | Next_uniform pc -> [ pc ]
                | Next_per_action h ->
                  List.sort_uniq compare (Hashtbl.fold (fun _ pc acc -> pc :: acc) h [])) })
       t.ops)

let pc_of_node t id = Hashtbl.find_opt t.pc_of id

(* --- shared packet/action semantics (also used by Exec) --- *)

let apply_primitive pkt (p : P4ir.Action.primitive) =
  match p with
  | P4ir.Action.Set_field (f, v) -> Packet.set pkt f v
  | P4ir.Action.Set_from (dst, src) -> Packet.set pkt dst (Packet.get pkt src)
  | P4ir.Action.Add_const (f, v) -> Packet.set pkt f (Int64.add (Packet.get pkt f) v)
  | P4ir.Action.Dec_ttl ->
    let ttl = Packet.get pkt P4ir.Field.Ipv4_ttl in
    if Int64.compare ttl 0L > 0 then Packet.set pkt P4ir.Field.Ipv4_ttl (Int64.sub ttl 1L)
  | P4ir.Action.Forward port -> Packet.set_egress pkt port
  | P4ir.Action.Drop -> Packet.mark_dropped pkt
  | P4ir.Action.Nop -> ()

(* A plain recursion rather than [List.iter (apply_primitive pkt)]: the
   partial application builds a closure on every action, on both the
   interpreted and compiled paths. *)
let rec apply_prims pkt = function
  | [] -> ()
  | p :: tl ->
    apply_primitive pkt p;
    apply_prims pkt tl

let apply_action pkt (a : P4ir.Action.t) = apply_prims pkt a.prims

let node_cat (tab : P4ir.Table.t) =
  match tab.role with
  | P4ir.Table.Cache _ -> "cache"
  | P4ir.Table.Merged _ -> "merged"
  | _ -> "table"

let cache_key_patterns (tab : P4ir.Table.t) pkt =
  List.map
    (fun (k : P4ir.Table.key) -> P4ir.Pattern.Exact (Packet.get pkt k.field))
    tab.keys

let try_complete_fill ~now fill =
  if fill.f_fired <> [] then begin
    let cache_def = Engine.def fill.f_cache in
    let fired_in_order =
      List.filter_map
        (fun tname ->
          Option.map (fun a -> (tname, a)) (List.assoc_opt tname fill.f_fired))
        fill.f_covered
    in
    let fused = Profile.Counter_map.fuse fired_in_order in
    match P4ir.Table.find_action cache_def fused with
    | Some _ ->
      let entry = P4ir.Table.entry fill.f_keys fused in
      ignore (Engine.cache_fill fill.f_cache ~now entry)
    | None -> ()
  end

(* --- build --- *)

let core_factor (target : Costmodel.Target.t) = function
  | Costmodel.Cost.Asic -> 1.0
  | Costmodel.Cost.Cpu -> target.cpu_slowdown

let build_art (target : Costmodel.Target.t) counters (tab : P4ir.Table.t) ~factor =
  let acts = Hashtbl.create (max 4 (List.length tab.actions)) in
  List.iter
    (fun (a : P4ir.Action.t) ->
      Hashtbl.replace acts a.name
        { ai_action = a;
          ai_name = a.name;
          (* Same association order as the interpreter's
             [n *. l_act *. factor], folded at compile time. *)
          ai_cost = float_of_int (P4ir.Action.num_primitives a) *. target.l_act *. factor;
          ai_cell = Profile.Counter.cell counters ~owner:tab.name ~label:a.name })
    tab.actions;
  let default =
    match Hashtbl.find_opt acts tab.default_action with
    | Some i -> i
    | None ->
      (* The interpreter would raise on the first packet; surface the
         same defect at compile time instead. *)
      invalid_arg
        (Printf.sprintf "Compile: table %s: unknown default action %s" tab.name
           tab.default_action)
  in
  { ta_acts = acts;
    ta_default = default;
    ta_factor = factor;
    ta_actions = tab.actions;
    ta_default_name = tab.default_action }

(* An artifact from a previous compile is reusable iff the engine object
   itself survived (replace_program keeps engines only when name, keys,
   actions, and role are unchanged), the action set and default are
   structurally identical, the placement factor matches (costs are baked
   in), and the counter registry is the same instance (cells point into
   it). *)
let reusable_art ~counters prev_map (tab : P4ir.Table.t) eng ~factor =
  match prev_map with
  | None -> None
  | Some (prev_counters, arts) ->
    if prev_counters != counters then None
    else
      List.find_map
        (fun (prev_eng, (art : table_art)) ->
          if
            prev_eng == eng
            && Float.equal art.ta_factor factor
            && art.ta_actions = tab.actions
            && String.equal art.ta_default_name tab.default_action
          then Some art
          else None)
        arts

let build ?reuse ~target ~placement ~counters ~telemetry ~engine_of prog =
  let order = Array.of_list (P4ir.Program.topological_order prog) in
  let pc_of = Hashtbl.create (max 8 (Array.length order)) in
  Array.iteri (fun pc id -> Hashtbl.replace pc_of id pc) order;
  let pc_of_next = function
    | None -> -1
    | Some id -> (
      match Hashtbl.find_opt pc_of id with
      | Some pc -> pc
      | None -> invalid_arg "Compile.build: successor outside topological order")
  in
  let metrics = if Telemetry.enabled telemetry then Some (Telemetry.metrics telemetry) else None in
  let prev_map =
    Option.map
      (fun (prev : t) ->
        ( prev.counters,
          Array.to_list prev.ops
          |> List.filter_map (function
               | Op_table tb -> Some (tb.t_eng, tb.t_art)
               | Op_cond _ -> None) ))
      reuse
  in
  let reused = ref 0 and rebuilt = ref 0 in
  let ops =
    Array.map
      (fun id ->
        let core = placement id in
        let factor = core_factor target core in
        match P4ir.Program.find_exn prog id with
        | P4ir.Program.Cond c ->
          Op_cond
            { c_node = id;
              c_cond = c;
              c_name = c.cond_name;
              c_cost = target.Costmodel.Target.l_cond *. factor;
              c_core = core;
              c_true_cell = Profile.Counter.cell counters ~owner:c.cond_name ~label:"true";
              c_false_cell = Profile.Counter.cell counters ~owner:c.cond_name ~label:"false";
              c_true_pc = pc_of_next c.on_true;
              c_false_pc = pc_of_next c.on_false }
        | P4ir.Program.Table (tab, nxt) ->
          let eng = engine_of id in
          let art =
            match reusable_art ~counters prev_map tab eng ~factor with
            | Some art ->
              incr reused;
              art
            | None ->
              incr rebuilt;
              build_art target counters tab ~factor
          in
          let next =
            match nxt with
            | P4ir.Program.Uniform n -> Next_uniform (pc_of_next n)
            | P4ir.Program.Per_action branches ->
              let h = Hashtbl.create (max 4 (List.length branches)) in
              List.iter (fun (name, n) -> Hashtbl.replace h name (pc_of_next n)) branches;
              Next_per_action h
          in
          let tel =
            match metrics with
            | None -> None
            | Some m ->
              let prefix = Printf.sprintf "nicsim.%s.%s" (node_cat tab) tab.name in
              Some
                ( Telemetry.Metrics.counter m (prefix ^ ".hit"),
                  Telemetry.Metrics.counter m (prefix ^ ".miss") )
          in
          let fill_covered =
            match tab.role with
            | P4ir.Table.Cache meta when meta.auto_insert -> Some meta.cached_tables
            | _ -> None
          in
          let records_fired =
            match tab.role with
            | P4ir.Table.Regular | P4ir.Table.Merged _ -> true
            | _ -> false
          in
          Op_table
            { t_node = id;
              t_tab = tab;
              t_name = tab.name;
              t_eng = eng;
              t_probe = Engine.exact_probe eng;
              t_splan = Engine.plan_probe eng;
              t_core = core;
              t_factor = factor;
              t_cat = node_cat tab;
              t_art = art;
              t_next = next;
              t_fill_covered = fill_covered;
              t_records_fired = records_fired;
              t_tel = tel;
              t_memo_entry = P4ir.Table.entry [] "__compile_memo_nil";
              t_memo_info = art.ta_default })
      order
  in
  let root = P4ir.Program.root prog in
  let entry_core =
    match root with Some r -> placement r | None -> Costmodel.Cost.Asic
  in
  let base_latency =
    (* The interpreter starts at l_fixed and, for a CPU entry, adds
       migration_latency with one more addition — same two floats, same
       order. *)
    if entry_core = Costmodel.Cost.Cpu then
      target.Costmodel.Target.l_fixed +. target.Costmodel.Target.migration_latency
    else target.Costmodel.Target.l_fixed
  in
  { ops;
    pc_of;
    root_pc = pc_of_next root;
    entry_core;
    base_latency;
    migration = target.Costmodel.Target.migration_latency;
    counter_cost = target.Costmodel.Target.counter_update_cost;
    l_mat = target.Costmodel.Target.l_mat;
    counters;
    tel = telemetry;
    tel_packets =
      Option.map (fun m -> Telemetry.Metrics.counter m "nicsim.packets") metrics;
    tel_drops = Option.map (fun m -> Telemetry.Metrics.counter m "nicsim.drops") metrics;
    reused = !reused;
    rebuilt = !rebuilt;
    s_lat = Float.Array.make 1 0.;
    s_acc = 0;
    s_pc = -1;
    s_core = Costmodel.Cost.Asic;
    s_dropped = false;
    s_fills = [];
    s_spans = [] }

(* --- the compiled walk --- *)

(* Mirrors [Exec.exec_packet] step for step; every latency addition uses
   the same operands in the same order, so the result is bit-identical.
   Counter updates go through pre-resolved cells (same int64 slots the
   interpreter's hash probes reach). Core comparisons use physical
   equality — [Costmodel.Cost.core] has only constant constructors, so
   [==]/[!=] is structural equality without the polymorphic-compare
   call. *)
let run p ~tracer ~sampled ~seq ~now pkt =
  let tracing = Telemetry.should_trace p.tel ~seq in
  let tbase = if tracing then now *. 1e6 else 0. in
  (* The latency accumulator is read/written with open-coded floatarray
     primitives rather than local [lat]/[add] helpers: without flambda a
     closure call boxes its float argument (and a float return), which
     put three allocations back on every table. The primitives compile
     to plain unboxed loads/stores. *)
  let lb = p.s_lat in
  p.s_spans <- [];
  Float.Array.unsafe_set lb 0 p.base_latency;
  p.s_fills <- [];
  p.s_dropped <- false;
  p.s_pc <- p.root_pc;
  p.s_core <- p.entry_core;
  let ops = p.ops in
  while p.s_pc >= 0 do
    match Array.unsafe_get ops p.s_pc with
    | Op_cond c ->
      if c.c_core != p.s_core then Float.Array.unsafe_set lb 0 (Float.Array.unsafe_get lb 0 +. p.migration);
      let l0 = Float.Array.unsafe_get lb 0 in
      Float.Array.unsafe_set lb 0 (Float.Array.unsafe_get lb 0 +. c.c_cost);
      let taken = P4ir.Program.eval_cond c.c_cond (Packet.get pkt c.c_cond.field) in
      let outcome = if taken then "true" else "false" in
      (match tracer with Some f -> f c.c_node c.c_name outcome | None -> ());
      if sampled then begin
        Profile.Counter.cell_incr (if taken then c.c_true_cell else c.c_false_cell);
        Float.Array.unsafe_set lb 0 (Float.Array.unsafe_get lb 0 +. p.counter_cost)
      end;
      (match p.s_fills with
       | [] -> ()
       | fills ->
         List.iter
           (fun fill ->
             if List.mem c.c_name fill.f_covered
                && not (List.mem_assoc c.c_name fill.f_fired) then
               fill.f_fired <- fill.f_fired @ [ (c.c_name, outcome) ])
           fills);
      if tracing then
        p.s_spans <-
          { Telemetry.Trace.name = c.c_name;
            cat = "cond";
            ts = tbase +. l0;
            dur = Float.Array.unsafe_get lb 0 -. l0;
            tid = seq;
            args = [ ("outcome", outcome) ] }
          :: p.s_spans;
      p.s_core <- c.c_core;
      p.s_pc <- (if taken then c.c_true_pc else c.c_false_pc)
    | Op_table tb ->
      if tb.t_core != p.s_core then Float.Array.unsafe_set lb 0 (Float.Array.unsafe_get lb 0 +. p.migration);
      let l0 = Float.Array.unsafe_get lb 0 in
      let result =
        match tb.t_probe with
        | Some probe ->
          p.s_acc <- 1;
          probe pkt
        | None -> (
          match tb.t_splan with
          | Some probe ->
            let r = probe pkt in
            p.s_acc <- Engine.last_accesses tb.t_eng;
            r
          | None ->
            let r, a = Engine.lookup tb.t_eng pkt in
            p.s_acc <- a;
            r)
      in
      let accesses = p.s_acc in
      (* Runtime association order matches the interpreter:
         (accesses *. l_mat) *. factor. *)
      Float.Array.unsafe_set lb 0 (Float.Array.unsafe_get lb 0 +. (float_of_int accesses *. p.l_mat *. tb.t_factor));
      let info =
        match result with
        | None -> tb.t_art.ta_default
        | Some e ->
          if e == tb.t_memo_entry then tb.t_memo_info
          else if String.equal e.P4ir.Table.action tb.t_memo_info.ai_name then
            (* Different entry, same action: the memoed info already
               answers, and skipping the memo stores keeps the steady
               state free of write barriers. Memo names are always
               valid, so an unknown action still reaches the raising
               path below. *)
            tb.t_memo_info
          else begin
            let i =
              match Hashtbl.find_opt tb.t_art.ta_acts e.P4ir.Table.action with
              | Some i -> i
              | None ->
                (* Same failure the interpreter's find_action_exn raises. *)
                ignore (P4ir.Table.find_action_exn tb.t_tab e.P4ir.Table.action);
                assert false
            in
            tb.t_memo_entry <- e;
            tb.t_memo_info <- i;
            i
          end
      in
      (match tracer with Some f -> f tb.t_node tb.t_name info.ai_name | None -> ());
      (match tb.t_tel with
       | Some (hit, miss) ->
         Telemetry.Metrics.inc (match result with Some _ -> hit | None -> miss)
       | None -> ());
      (match (tb.t_fill_covered, result) with
       | Some covered, None ->
         p.s_fills <-
           { f_cache = tb.t_eng;
             f_keys = cache_key_patterns tb.t_tab pkt;
             f_covered = covered;
             f_fired = [];
             f_ended_early = false }
           :: p.s_fills
       | _ -> ());
      if tb.t_records_fired then begin
        match p.s_fills with
        | [] -> ()
        | fills ->
          List.iter
            (fun fill ->
              if List.mem tb.t_name fill.f_covered
                 && not (List.mem_assoc tb.t_name fill.f_fired) then
                fill.f_fired <- fill.f_fired @ [ (tb.t_name, info.ai_name) ])
            fills
      end;
      apply_action pkt info.ai_action;
      Float.Array.unsafe_set lb 0 (Float.Array.unsafe_get lb 0 +. info.ai_cost);
      if sampled then begin
        Profile.Counter.cell_incr info.ai_cell;
        Float.Array.unsafe_set lb 0 (Float.Array.unsafe_get lb 0 +. p.counter_cost)
      end;
      if tracing then
        p.s_spans <-
          { Telemetry.Trace.name = tb.t_name;
            cat = tb.t_cat;
            ts = tbase +. l0;
            dur = Float.Array.unsafe_get lb 0 -. l0;
            tid = seq;
            args =
              [ ("action", info.ai_name);
                ("result", (match result with Some _ -> "hit" | None -> "miss"));
                ("accesses", string_of_int accesses) ] }
          :: p.s_spans;
      if Packet.is_dropped pkt then begin
        (* Run-to-completion halt; the caller accounts the drop. *)
        List.iter (fun f -> f.f_ended_early <- true) p.s_fills;
        (match p.tel_drops with Some c -> Telemetry.Metrics.inc c | None -> ());
        p.s_dropped <- true;
        p.s_pc <- -1
      end
      else begin
        p.s_core <- tb.t_core;
        p.s_pc <-
          (match tb.t_next with
           | Next_uniform pc -> pc
           | Next_per_action h -> (
             match Hashtbl.find_opt h info.ai_name with Some pc -> pc | None -> -1))
      end
  done;
  (* Tail migration back to the ASIC datapath applies only to packets
     that ran to the sink (a drop halts in place), as in the
     interpreter. *)
  if (not p.s_dropped) && p.s_core == Costmodel.Cost.Cpu then Float.Array.unsafe_set lb 0 (Float.Array.unsafe_get lb 0 +. p.migration);
  (match p.s_fills with
   | [] -> ()
   | fills -> List.iter (try_complete_fill ~now) fills);
  (match p.tel_packets with Some c -> Telemetry.Metrics.inc c | None -> ());
  if tracing then begin
    Telemetry.add_span p.tel
      { Telemetry.Trace.name = "packet";
        cat = "packet";
        ts = tbase;
        dur = Float.Array.unsafe_get lb 0;
        tid = seq;
        args =
          [ ("seq", string_of_int seq);
            ("dropped", if Packet.is_dropped pkt then "true" else "false") ] };
    List.iter (Telemetry.add_span p.tel) (List.rev p.s_spans)
  end;
  Float.Array.unsafe_get lb 0
