(** Multicore SmartNIC simulation: emulated clock, throughput model, and
    live reconfiguration.

    Wall-clock scale does not permit simulating every wire packet at 100
    Gbps; each window simulates a representative sample of packets, takes
    the mean per-packet latency, and converts it to sustained throughput
    via the target's run-to-completion capacity model
    [min(line_rate, num_cores * capacity / avg_latency)]. Run-to-
    completion multicore NICs are work-conserving, so mean service time
    determines saturation throughput. *)

type t

val create :
  ?config:Exec.config -> ?telemetry:Telemetry.t -> Costmodel.Target.t -> P4ir.Program.t -> t
(** [config] defaults to {!Exec.default_config}; [telemetry] (default
    {!Telemetry.null}) is attached to the executor via
    {!Exec.set_telemetry}. *)

val exec : t -> Exec.t
val target : t -> Costmodel.Target.t
val now : t -> float
(** Emulated seconds since creation. *)

val advance : t -> float -> unit
(** Move the emulated clock forward without traffic (idle time). *)

val telemetry : t -> Telemetry.t
val set_telemetry : t -> Telemetry.t -> unit
(** Attach a sink (see {!Exec.set_telemetry}). On top of the executor's
    per-table counters and spans, each window records its latency
    distribution into histogram [nicsim.latency], bumps counter
    [nicsim.windows], and sets gauges [nicsim.window.throughput_gbps] /
    [.avg_latency] / [.drop_fraction] and per-table occupancy
    [nicsim.table.<name>.entries]. Traces are only collected by the
    sequential and batched window drivers — parallel shards run on
    {!Telemetry.fork}ed sinks, which carry no trace ring. *)

type window_stats = {
  window_start : float;
  window_duration : float;
  sampled_packets : int;
  sampled_drops : int;
  avg_latency : float;  (** mean per-packet latency in latency units *)
  p99_latency : float;  (** exact, from the sorted sample *)
  p50_latency : float;
      (** histogram-derived (log-bucketed, at most 3.125% high); identical
          across window drivers because the histogram fill is bucketwise *)
  p90_latency : float;
  p999_latency : float;
  throughput_gbps : float;  (** sustained, capped at line rate *)
  drop_fraction : float;
}

val run_window :
  t -> duration:float -> packets:int -> source:(unit -> Packet.t) -> window_stats
(** Simulate [packets] sample packets spread uniformly over [duration]
    emulated seconds (the clock advances between packets, so cache
    token buckets and time series behave), then advance the clock to the
    window end. *)

val run_window_batched :
  ?batch:int ->
  ?compiled:bool ->
  t ->
  duration:float ->
  packets:int ->
  source:(unit -> Packet.t) ->
  window_stats
(** {!run_window} processing packets in bursts of [batch] (default 64)
    via {!Exec.run_batch}, amortizing per-packet dispatch. The source is
    called in the same order, every packet gets the same timestamp, and
    the resulting stats and counters are bit-identical to {!run_window}.
    With [compiled] (default false) the bursts go through
    {!Exec.run_batch_compiled} instead — same identity guarantee. *)

val run_window_compiled :
  ?batch:int ->
  t ->
  duration:float ->
  packets:int ->
  source:(unit -> Packet.t) ->
  window_stats
(** {!run_window} over the compiled data path: bursts of [batch]
    (default 64) execute via {!Exec.run_batch_compiled} — the program
    flattened at deploy time into a linear op array ({!Compile}) —
    reusing a persistent burst buffer, so a steady-state window loop
    allocates nothing per window. Stats, counters, telemetry, and
    per-packet latencies are bit-identical to {!run_window}. The
    pipeline compiles lazily on first use; {!reconfigure} and
    {!hot_patch} keep it coherent (rebuilt tables recompile, unchanged
    tables keep their compiled artifacts). *)

val run_window_parallel :
  ?domains:int ->
  ?compiled:bool ->
  t ->
  duration:float ->
  packets:int ->
  source:(unit -> Packet.t) ->
  window_stats
(** {!run_window} sharded across [domains] OCaml domains (default
    [Domain.recommended_domain_count ()]): packets are pulled from the
    source up front in index order, assigned to domains by a deterministic
    hash of the flow 5-tuple (RSS-style), executed on independent engine
    replicas, and merged order-independently — stats and counters are
    bit-identical to the sequential run. Programs with cache-role tables
    (whose per-packet LRU mutation sharding cannot reproduce) and
    degenerate shardings fall back to the sequential path. With
    [compiled] (default false), each replica runs the compiled data path
    (compiling its own op array over its replicated engines), and the
    fallback path is {!run_window_compiled}.
    @raise Invalid_argument if [domains <= 0] or [packets <= 0]. *)

val insert : t -> table:string -> P4ir.Table.entry -> unit
(** Control-plane entry insert (counts toward the table's update rate).
    @raise Invalid_argument if the table does not exist. *)

val delete : t -> table:string -> patterns:P4ir.Pattern.t list -> bool

exception Deploy_failed of string
(** A deployment came up but failed post-install verification (today only
    raised when a fault hook is installed — see {!set_deploy_fault}). *)

val set_deploy_fault : t -> (unit -> string option) option -> unit
(** Install (or clear) a deployment-fault hook, consulted by
    {!reconfigure} and {!hot_patch} *after* the new program has been
    installed — modelling a deployment that comes up and then fails
    verification (bad reflash, rejected table layout). When the hook
    returns [Some reason], the call raises {!Deploy_failed} and the NEW
    program is left running: the caller owns recovery (the runtime
    controller rolls back to its last-known-good layout). [None] from the
    hook means the deploy verified fine. No hook (the default) means
    deploys never fail — production behaviour is unchanged. *)

val reconfigure : ?config:Exec.config -> ?downtime:float -> t -> P4ir.Program.t -> unit
(** Swap in a new program. Tables whose names survive keep their dynamic
    entries (live reconfiguration on runtime-programmable NICs); caches of
    the outgoing program are not carried over. [downtime] (default 0)
    advances the clock, modelling reload-based targets like Agilio
    (§5.1: micro-engine reflash interrupts service).
    @raise Deploy_failed when an installed fault hook vetoes the deploy;
    the downtime is still charged (the reflash happened) and the new —
    unverified — program is installed until the caller recovers. *)

val hot_patch : ?downtime_per_table:float -> t -> P4ir.Program.t -> int
(** Incremental reconfiguration (§6 "compile and deploy updates
    incrementally"): keep engines, counters, and clock; only new or
    reshaped tables are rebuilt. The clock advances by
    [downtime_per_table] (default 0.02 s) per rebuilt table — a fraction
    of a full reload. Returns the number of rebuilt tables.
    @raise Deploy_failed under an installed fault hook, as with
    {!reconfigure}; rebuilt-table downtime is still charged. *)

val current_profile : ?window:float -> t -> Profile.t
(** Profile from the counters accumulated since the last call (folded
    back onto original table names via the counter map), tagged with the
    per-table control-plane update rates for the same period. *)
