type config = {
  target : Costmodel.Target.t;
  instrumented : bool;
  sample_rate : int;
  placement : P4ir.Program.node_id -> Costmodel.Cost.core;
}

let default_config target =
  { target; instrumented = true; sample_rate = 1; placement = Costmodel.Cost.all_asic }

(* A flow-cache fill in flight: the packet missed [cache] and is now
   traversing the covered original tables; we record which action each
   fired and install the fused result at the end (§3.2.2). *)
type pending_fill = {
  cache : Engine.t;
  key_patterns : P4ir.Pattern.t list;
  covered : string list;
  mutable fired : (string * string) list;  (* table name -> action name *)
  mutable ended_early : bool;  (* a drop cut the covered region short *)
}

type trace_event = { node : P4ir.Program.node_id; name : string; outcome : string }

(* Pre-resolved telemetry handles: one hash probe per table node at
   set_telemetry time, plain field increments per packet after that. *)
type node_tel = {
  nt_hit : Telemetry.Metrics.counter;
  nt_miss : Telemetry.Metrics.counter;
}

type exec_tel = {
  et_sink : Telemetry.t;
  et_packets : Telemetry.Metrics.counter;
  et_drops : Telemetry.Metrics.counter;
  et_nodes : (int, node_tel) Hashtbl.t;
}

type t = {
  cfg : config;
  mutable prog : P4ir.Program.t;
  engines : (string, Engine.t) Hashtbl.t;
  node_engine : (int, Engine.t) Hashtbl.t;
  ctrs : Profile.Counter.t;
  mutable seen : int;
  mutable drops : int;
  mutable tracer : (trace_event -> unit) option;
  mutable tel : Telemetry.t;
  mutable tel_handles : exec_tel option;  (* Some iff [tel] is enabled *)
  (* The compiled data path. [None] until first compiled-driver use;
     [compiled_stale] forces a rebuild (with per-table artifact reuse)
     on the next use. *)
  mutable compiled : Compile.t option;
  mutable compiled_stale : bool;
}

let node_cat = Compile.node_cat

let build_tel_handles tel prog =
  if not (Telemetry.enabled tel) then None
  else begin
    let m = Telemetry.metrics tel in
    let nodes = Hashtbl.create 32 in
    List.iter
      (fun (id, (tab : P4ir.Table.t)) ->
        let prefix = Printf.sprintf "nicsim.%s.%s" (node_cat tab) tab.name in
        Hashtbl.replace nodes id
          { nt_hit = Telemetry.Metrics.counter m (prefix ^ ".hit");
            nt_miss = Telemetry.Metrics.counter m (prefix ^ ".miss") })
      (P4ir.Program.tables prog);
    Some
      { et_sink = tel;
        et_packets = Telemetry.Metrics.counter m "nicsim.packets";
        et_drops = Telemetry.Metrics.counter m "nicsim.drops";
        et_nodes = nodes }
  end

let create cfg prog =
  let engines = Hashtbl.create 32 in
  let node_engine = Hashtbl.create 32 in
  List.iter
    (fun (id, (tab : P4ir.Table.t)) ->
      let e = Engine.create tab in
      Hashtbl.replace engines tab.name e;
      Hashtbl.replace node_engine id e)
    (P4ir.Program.tables prog);
  { cfg; prog; engines; node_engine; ctrs = Profile.Counter.create (); seen = 0; drops = 0;
    tracer = None; tel = Telemetry.null; tel_handles = None; compiled = None;
    compiled_stale = true }

let program t = t.prog
let config t = t.cfg
let counters t = t.ctrs
let engine t name = Hashtbl.find_opt t.engines name

let engine_exn t name =
  match engine t name with
  | Some e -> e
  | None -> invalid_arg ("Exec.engine_exn: no table " ^ name)

let packets_seen t = t.seen
let drops_seen t = t.drops

let reset_counters t =
  Profile.Counter.clear t.ctrs;
  (* Clearing discards the registry's int64 slots, orphaning any
     compiled counter cells; drop the compiled pipeline entirely so
     the next compiled run re-resolves against the fresh slots. *)
  t.compiled <- None;
  t.compiled_stale <- true

let set_tracer t hook = t.tracer <- hook

let telemetry t = t.tel

let set_telemetry t tel =
  t.tel <- tel;
  t.tel_handles <- build_tel_handles tel t.prog;
  t.compiled_stale <- true

let trace t node name outcome =
  match t.tracer with
  | Some f -> f { node; name; outcome }
  | None -> ()

let core_factor (target : Costmodel.Target.t) = function
  | Costmodel.Cost.Asic -> 1.0
  | Costmodel.Cost.Cpu -> target.cpu_slowdown

let apply_action = Compile.apply_action

let cache_key_patterns (tab : P4ir.Table.t) pkt =
  List.map
    (fun (k : P4ir.Table.key) -> P4ir.Pattern.Exact (Packet.get pkt k.field))
    tab.keys

let try_complete_fill ~now fill =
  (* Install whatever the packet actually executed through the covered
     region: the full sequence, a drop-truncated prefix, or (for group
     caches) the one branch arm it took. *)
  if fill.fired <> [] then begin
    let cache_def = Engine.def fill.cache in
    let fired_in_order =
      List.filter_map
        (fun tname ->
          Option.map (fun a -> (tname, a)) (List.assoc_opt tname fill.fired))
        fill.covered
    in
    let fused = Profile.Counter_map.fuse fired_in_order in
    match P4ir.Table.find_action cache_def fused with
    | Some _ ->
      let entry = P4ir.Table.entry fill.key_patterns fused in
      ignore (Engine.cache_fill fill.cache ~now entry)
    | None -> ()  (* behaviour combination not representable; skip *)
  end

let entry_core_of t root =
  match root with Some r -> t.cfg.placement r | None -> Costmodel.Cost.Asic

(* Core of the per-packet walk, with everything derivable once per burst
   ([root], [entry_core]) and once per packet position ([sampled]) hoisted
   out so batch and parallel drivers can amortize or pin them. *)
let exec_packet t ~sampled ~seq ~now ~root ~entry_core pkt =
  let target = t.cfg.target in
  let bump owner label latency =
    if sampled then begin
      Profile.Counter.incr t.ctrs ~owner ~label;
      latency +. target.counter_update_cost
    end
    else latency
  in
  let tel = t.tel_handles in
  (* Span timestamps live on the modeled axis: window seconds scaled to
     the viewer's microseconds, latency units inside the packet. *)
  let tracing = Telemetry.should_trace t.tel ~seq in
  let tbase = if tracing then now *. 1e6 else 0. in
  let tspans : Telemetry.Trace.span list ref = ref [] in
  let latency = ref target.l_fixed in
  let fills : pending_fill list ref = ref [] in
  if entry_core = Costmodel.Cost.Cpu then latency := !latency +. target.migration_latency;
  let rec step current prev_core =
    match current with
    | None ->
      if prev_core = Costmodel.Cost.Cpu then
        latency := !latency +. target.migration_latency
    | Some id ->
      let core = t.cfg.placement id in
      if core <> prev_core then latency := !latency +. target.migration_latency;
      let factor = core_factor target core in
      let l0 = !latency in
      (match P4ir.Program.find_exn t.prog id with
       | P4ir.Program.Cond c ->
         latency := !latency +. (target.l_cond *. factor);
         let taken = P4ir.Program.eval_cond c (Packet.get pkt c.field) in
         let outcome = if taken then "true" else "false" in
         trace t id c.cond_name outcome;
         latency := bump c.cond_name outcome !latency;
         (* Group caches cover branch nodes too: record the outcome so
            the fill's fused action name identifies the arm taken. *)
         List.iter
           (fun fill ->
             if List.mem c.cond_name fill.covered
                && not (List.mem_assoc c.cond_name fill.fired) then
               fill.fired <- fill.fired @ [ (c.cond_name, outcome) ])
           !fills;
         if tracing then
           tspans :=
             { Telemetry.Trace.name = c.cond_name;
               cat = "cond";
               ts = tbase +. l0;
               dur = !latency -. l0;
               tid = seq;
               args = [ ("outcome", outcome) ] }
             :: !tspans;
         step (if taken then c.on_true else c.on_false) core
       | P4ir.Program.Table (tab, nxt) ->
         let eng = Hashtbl.find t.node_engine id in
         let result, accesses = Engine.lookup eng pkt in
         latency := !latency +. (float_of_int accesses *. target.l_mat *. factor);
         let action_name =
           match result with Some e -> e.P4ir.Table.action | None -> tab.default_action
         in
         let action = P4ir.Table.find_action_exn tab action_name in
         trace t id tab.name action_name;
         (match tel with
          | Some h -> (
            match Hashtbl.find_opt h.et_nodes id with
            | Some nt ->
              Telemetry.Metrics.inc
                (match result with Some _ -> nt.nt_hit | None -> nt.nt_miss)
            | None -> ())
          | None -> ());
         (* Register a pending flow-cache fill on auto-insert cache miss,
            keyed on the packet's current field values. *)
         (match (tab.role, result) with
          | P4ir.Table.Cache meta, None when meta.auto_insert ->
            fills :=
              { cache = eng;
                key_patterns = cache_key_patterns tab pkt;
                covered = meta.cached_tables;
                fired = [];
                ended_early = false }
              :: !fills
          | _ -> ());
         (* Record this table's fired action for fills covering it. *)
         (match tab.role with
          | P4ir.Table.Regular | P4ir.Table.Merged _ ->
            List.iter
              (fun fill ->
                if List.mem tab.name fill.covered
                   && not (List.mem_assoc tab.name fill.fired) then
                  fill.fired <- fill.fired @ [ (tab.name, action_name) ])
              !fills
          | _ -> ());
         apply_action pkt action;
         latency :=
           !latency
           +. (float_of_int (P4ir.Action.num_primitives action) *. target.l_act *. factor);
         latency := bump tab.name action_name !latency;
         if tracing then
           tspans :=
             { Telemetry.Trace.name = tab.name;
               cat = node_cat tab;
               ts = tbase +. l0;
               dur = !latency -. l0;
               tid = seq;
               args =
                 [ ("action", action_name);
                   ("result", match result with Some _ -> "hit" | None -> "miss");
                   ("accesses", string_of_int accesses) ] }
             :: !tspans;
         if Packet.is_dropped pkt then begin
           (* Run-to-completion halt: the core fetches the next packet. *)
           List.iter (fun f -> f.ended_early <- true) !fills;
           t.drops <- t.drops + 1;
           match tel with Some h -> Telemetry.Metrics.inc h.et_drops | None -> ()
         end
         else begin
           let next =
             match nxt with
             | P4ir.Program.Uniform n -> n
             | P4ir.Program.Per_action branches -> (
               match List.assoc_opt action_name branches with
               | Some n -> n
               | None -> None)
           in
           step next core
         end)
  in
  step root entry_core;
  List.iter (try_complete_fill ~now) !fills;
  (match tel with Some h -> Telemetry.Metrics.inc h.et_packets | None -> ());
  if tracing then begin
    Telemetry.add_span t.tel
      { Telemetry.Trace.name = "packet";
        cat = "packet";
        ts = tbase;
        dur = !latency;
        tid = seq;
        args =
          [ ("seq", string_of_int seq);
            ("dropped", if Packet.is_dropped pkt then "true" else "false") ] };
    List.iter (Telemetry.add_span t.tel) (List.rev !tspans)
  end;
  !latency

let sampled_at t seq = t.cfg.instrumented && seq mod t.cfg.sample_rate = 0

let run_packet t ~now pkt =
  t.seen <- t.seen + 1;
  let root = P4ir.Program.root t.prog in
  exec_packet t ~sampled:(sampled_at t t.seen) ~seq:t.seen ~now ~root
    ~entry_core:(entry_core_of t root) pkt

let run_packet_at t ~seq ~now pkt =
  t.seen <- t.seen + 1;
  let root = P4ir.Program.root t.prog in
  exec_packet t ~sampled:(sampled_at t seq) ~seq ~now ~root ~entry_core:(entry_core_of t root)
    pkt

let run_batch t ?(pos = 0) ?n ~now_of ~out pkts =
  let n = match n with Some n -> n | None -> Array.length pkts in
  if pos < 0 || pos + n > Array.length out then invalid_arg "Exec.run_batch: out too small";
  let root = P4ir.Program.root t.prog in
  let entry_core = entry_core_of t root in
  let dropped = ref 0 in
  for i = 0 to n - 1 do
    t.seen <- t.seen + 1;
    let pkt = Array.unsafe_get pkts i in
    out.(pos + i) <-
      exec_packet t ~sampled:(sampled_at t t.seen) ~seq:t.seen ~now:(now_of i) ~root
        ~entry_core pkt;
    if Packet.is_dropped pkt then incr dropped
  done;
  !dropped

(* --- compiled data path --- *)

let ensure_compiled t =
  match t.compiled with
  | Some c when not t.compiled_stale -> c
  | reuse_opt ->
    let reuse = if t.compiled_stale then reuse_opt else None in
    let c =
      Compile.build ?reuse ~target:t.cfg.target ~placement:t.cfg.placement ~counters:t.ctrs
        ~telemetry:t.tel
        ~engine_of:(fun id -> Hashtbl.find t.node_engine id)
        t.prog
    in
    t.compiled <- Some c;
    t.compiled_stale <- false;
    c

let precompile t =
  let c = ensure_compiled t in
  (Compile.tables_reused c, Compile.tables_rebuilt c)

let compiled_tracer t =
  match t.tracer with
  | None -> None
  | Some f -> Some (fun node name outcome -> f { node; name; outcome })

let run_packet_compiled t ~now pkt =
  let c = ensure_compiled t in
  t.seen <- t.seen + 1;
  let lat =
    Compile.run c ~tracer:(compiled_tracer t) ~sampled:(sampled_at t t.seen) ~seq:t.seen
      ~now pkt
  in
  if Compile.drop_observed c then t.drops <- t.drops + 1;
  lat

let run_packet_compiled_at t ~seq ~now pkt =
  let c = ensure_compiled t in
  t.seen <- t.seen + 1;
  let lat = Compile.run c ~tracer:(compiled_tracer t) ~sampled:(sampled_at t seq) ~seq ~now pkt in
  if Compile.drop_observed c then t.drops <- t.drops + 1;
  lat

let run_batch_compiled t ?(pos = 0) ?n ~now_of ~out pkts =
  let n = match n with Some n -> n | None -> Array.length pkts in
  if pos < 0 || pos + n > Array.length out then
    invalid_arg "Exec.run_batch_compiled: out too small";
  let c = ensure_compiled t in
  let tracer = compiled_tracer t in
  let dropped = ref 0 in
  for i = 0 to n - 1 do
    t.seen <- t.seen + 1;
    let pkt = Array.unsafe_get pkts i in
    out.(pos + i) <-
      Compile.run c ~tracer ~sampled:(sampled_at t t.seen) ~seq:t.seen ~now:(now_of i) pkt;
    if Compile.drop_observed c then t.drops <- t.drops + 1;
    if Packet.is_dropped pkt then incr dropped
  done;
  !dropped

let replicate t =
  (* Distinct program nodes can share one engine by name; preserve that
     aliasing in the copy so a fill through either node stays coherent. *)
  let mapping : (Engine.t * Engine.t) list ref = ref [] in
  let copy_of eng =
    match List.find_opt (fun (orig, _) -> orig == eng) !mapping with
    | Some (_, c) -> c
    | None ->
      let c = Engine.copy eng in
      mapping := (eng, c) :: !mapping;
      c
  in
  let engines = Hashtbl.create (Hashtbl.length t.engines) in
  Hashtbl.iter (fun name eng -> Hashtbl.replace engines name (copy_of eng)) t.engines;
  let node_engine = Hashtbl.create (Hashtbl.length t.node_engine) in
  Hashtbl.iter (fun id eng -> Hashtbl.replace node_engine id (copy_of eng)) t.node_engine;
  (* Each replica gets a forked sink (fresh registry, no trace ring) so
     worker domains never touch the parent's metrics; merge_replica folds
     the shard registries back losslessly. *)
  let tel = Telemetry.fork t.tel in
  { t with
    engines;
    node_engine;
    ctrs = Profile.Counter.create ();
    seen = 0;
    drops = 0;
    tracer = None;
    tel;
    tel_handles = build_tel_handles tel t.prog;
    (* The replica has its own engines, counters, and sink; it compiles
       its own pipeline on first compiled use. *)
    compiled = None;
    compiled_stale = true }

let merge_replica t r =
  Profile.Counter.merge_into ~dst:t.ctrs ~src:r.ctrs;
  t.seen <- t.seen + r.seen;
  t.drops <- t.drops + r.drops;
  Telemetry.merge_into ~dst:t.tel ~src:r.tel

let replace_program t prog =
  let changed = ref 0 in
  let new_engines = Hashtbl.create 32 in
  Hashtbl.reset t.node_engine;
  List.iter
    (fun (id, (tab : P4ir.Table.t)) ->
      let reusable =
        match Hashtbl.find_opt t.engines tab.name with
        | Some eng ->
          let old_def = Engine.def eng in
          if old_def.P4ir.Table.keys = tab.keys && old_def.actions = tab.actions
             && old_def.role = tab.role
          then Some eng
          else None
        | None -> None
      in
      let eng =
        match reusable with
        | Some eng -> eng
        | None ->
          incr changed;
          Engine.create tab
      in
      Hashtbl.replace new_engines tab.name eng;
      Hashtbl.replace t.node_engine id eng)
    (P4ir.Program.tables prog);
  Hashtbl.reset t.engines;
  Hashtbl.iter (Hashtbl.replace t.engines) new_engines;
  t.prog <- prog;
  t.tel_handles <- build_tel_handles t.tel prog;
  (* This IS deploy time for the compiled data path: recompile now, with
     per-table artifact reuse keyed on the engines kept above, so the
     packet path never pays the flattening. Only done when the compiled
     path is actually in use — interpreter-only executors stay lazy.
     Recompilation is host-side work; it adds no modeled downtime. *)
  t.compiled_stale <- true;
  (match t.compiled with Some _ -> ignore (ensure_compiled t) | None -> ());
  !changed

let sync_entries_to_ir t =
  P4ir.Program.map_tables t.prog (fun _ tab ->
      match Hashtbl.find_opt t.engines tab.P4ir.Table.name with
      | Some eng -> { tab with P4ir.Table.entries = Engine.entries eng }
      | None -> tab)
