(** The pipeline compiler (deploy-time data-path flattening).

    [build] turns a program DAG plus its live table engines into a
    branch-predictable linear op array: one op per node in topological
    order, successors resolved to array indices, per-table action info
    (body, precomputed cost, profile-counter cell) resolved into hash
    tables with a one-slot memo, telemetry handles pre-resolved, and
    per-op costs that are constant (action cost, branch cost) folded at
    compile time in the interpreter's own float association order.

    [run] then executes the array with the exact semantics of
    {!Exec.run_packet}: identical latencies bit for bit, identical
    profile counters (the cells alias the same registry slots the
    interpreter's hash probes reach), identical telemetry counters,
    spans, and sampling, and identical flow-cache fill behaviour.
    {!Exec} owns compiled instances, their staleness, and the batch
    drivers ({!Exec.run_batch_compiled}); this module is engine-level
    machinery below it. *)

type t

type tracer = P4ir.Program.node_id -> string -> string -> unit
(** Same contract as {!Exec.set_tracer}: called once per node traversed,
    with (node id, table/branch name, action or outcome). *)

val build :
  ?reuse:t ->
  target:Costmodel.Target.t ->
  placement:(P4ir.Program.node_id -> Costmodel.Cost.core) ->
  counters:Profile.Counter.t ->
  telemetry:Telemetry.t ->
  engine_of:(P4ir.Program.node_id -> Engine.t) ->
  P4ir.Program.t ->
  t
(** Flatten [prog]. [engine_of] must resolve every table node to its
    live engine (the compiled ops hold the engine handles directly, so
    control-plane inserts/deletes/cache fills are visible without
    recompiling). With [reuse] (the previous compiled pipeline), tables
    whose engine object, action set, placement factor, and counter
    registry are unchanged keep their compiled artifact — the unit of
    work an incremental deploy pays for; see {!tables_reused} /
    {!tables_rebuilt}. *)

val run :
  t -> tracer:tracer option -> sampled:bool -> seq:int -> now:float -> Packet.t -> float
(** One packet through the op array; returns the latency,
    bit-identical to {!Exec.run_packet} under the same (sampled, seq,
    now) inputs and engine state. The packet is mutated. After the
    call, {!drop_observed} tells whether a table action dropped the
    packet during this walk (the interpreter's drop-accounting event). *)

val drop_observed : t -> bool
(** Whether the last {!run} halted on an in-walk drop. Distinct from
    {!Packet.is_dropped}, which is also true for packets that arrived
    already dropped — the interpreter only counts the former. *)

val num_ops : t -> int

val tables_reused : t -> int
(** Tables whose compiled artifact was carried over from [reuse]. *)

val tables_rebuilt : t -> int

type op_view = {
  view_pc : int;
  view_node : P4ir.Program.node_id;
  view_kind : [ `Table | `Cond ];
  view_name : string;
  view_next : int list;  (** successor pcs; [-1] is the sink *)
}

val view : t -> op_view list
(** The flattened layout, for tests and debugging. *)

val pc_of_node : t -> P4ir.Program.node_id -> int option

(** {2 Shared packet semantics}

    The single definition of P4 action application, used by both the
    interpreter and the compiled walk. *)

val apply_action : Packet.t -> P4ir.Action.t -> unit
val apply_primitive : Packet.t -> P4ir.Action.primitive -> unit
val node_cat : P4ir.Table.t -> string
(** ["cache"] / ["merged"] / ["table"] — telemetry span category and
    metric-name segment for a table node. *)
