(* Classic hashtable + doubly-linked recency list. *)

type 'a node = {
  key : string;
  mutable value : 'a;
  mutable prev : 'a node option;
  mutable next : 'a node option;
}

type 'a t = {
  cap : int;
  table : (string, 'a node) Hashtbl.t;
  mutable head : 'a node option;  (* most recent *)
  mutable tail : 'a node option;  (* least recent *)
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Lru.create: capacity must be positive";
  { cap = capacity; table = Hashtbl.create (min capacity 1024); head = None; tail = None }

let capacity t = t.cap
let length t = Hashtbl.length t.table

let unlink t node =
  (match node.prev with Some p -> p.next <- node.next | None -> t.head <- node.next);
  (match node.next with Some n -> n.prev <- node.prev | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.head;
  node.prev <- None;
  (match t.head with Some h -> h.prev <- Some node | None -> t.tail <- Some node);
  t.head <- Some node

let find t key =
  match Hashtbl.find_opt t.table key with
  | None -> None
  | Some node ->
    unlink t node;
    push_front t node;
    Some node.value

let mem t key = Hashtbl.mem t.table key

let remove t key =
  match Hashtbl.find_opt t.table key with
  | None -> ()
  | Some node ->
    unlink t node;
    Hashtbl.remove t.table key

let put t key value =
  match Hashtbl.find_opt t.table key with
  | Some node ->
    node.value <- value;
    unlink t node;
    push_front t node;
    None
  | None ->
    let node = { key; value; prev = None; next = None } in
    Hashtbl.add t.table key node;
    push_front t node;
    if Hashtbl.length t.table > t.cap then begin
      match t.tail with
      | Some victim ->
        unlink t victim;
        Hashtbl.remove t.table victim.key;
        Some victim.key
      | None -> None
    end
    else None

let clear t =
  Hashtbl.reset t.table;
  t.head <- None;
  t.tail <- None

let iter f t = Hashtbl.iter (fun k node -> f k node.value) t.table

let copy t =
  (* Replay from least to most recent so the copy preserves recency. *)
  let fresh = create ~capacity:t.cap in
  let rec walk = function
    | None -> ()
    | Some node ->
      ignore (put fresh node.key node.value);
      walk node.prev
  in
  walk t.tail;
  fresh
