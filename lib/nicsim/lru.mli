(** Bounded LRU map used by flow-cache tables (§3.2.2: "Pipeleon reserves
    a fixed budget for each cache and adopts LRU eviction"). *)

type 'a t

val create : capacity:int -> 'a t
(** @raise Invalid_argument if [capacity <= 0]. *)

val capacity : 'a t -> int
val length : 'a t -> int

val find : 'a t -> string -> 'a option
(** Refreshes recency on hit. *)

val mem : 'a t -> string -> bool
(** Does not refresh recency. *)

val put : 'a t -> string -> 'a -> string option
(** Insert or overwrite; returns the evicted key if the capacity bound
    forced one out. *)

val remove : 'a t -> string -> unit
val clear : 'a t -> unit
val iter : (string -> 'a -> unit) -> 'a t -> unit

val copy : 'a t -> 'a t
(** Independent copy with the same contents and recency order. *)
