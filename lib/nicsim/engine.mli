(** Runtime state of one match/action table inside the simulator.

    Exact tables are hash tables (one memory access per lookup); LPM and
    ternary tables are implemented as one hash table per distinct prefix
    length / mask — exactly the implementation the paper's cost model
    assumes (§3.1: "LPM and ternary match are usually implemented using
    multiple hash tables"). Lookups report how many memory accesses they
    performed so the executor can charge latency. Cache-role tables use
    an LRU store with a token-bucket insertion limit (§3.2.2). *)

type t

type backend_hint = Auto | Force_linear | Force_waldvogel | Force_learned | Force_tree
(** Override for the per-table plan selector (LPM/ternary backends
    only). [Auto] picks from the entry count and match kind at
    plan-build time: big single-key LPM tables get the learned-index
    plan, big ternary tables the decision tree, medium LPM tables the
    Waldvogel binary search, everything else the straight probe. A
    forced hint that does not apply to the table's shape (e.g.
    [Force_learned] on a ternary table) falls back to [Auto]'s choice. *)

val create : P4ir.Table.t -> t
(** Engine initialized with the table's static entries. *)

val def : t -> P4ir.Table.t
(** The table definition this engine was built from. *)

val lookup : t -> Packet.t -> P4ir.Table.entry option * int
(** Match result plus the number of memory accesses performed. A miss in
    a shaped table costs one access per probed hash table. Shaped tables
    are probed through a compiled plan chosen per table (see
    {!backend_hint}): Waldvogel binary search, learned-index LPM, or a
    ternary decision tree. Whatever the plan, the reported access count
    stays that of the modeled hardware — the longest-first linear probe
    for LPM, one probe per mask group for ternary — so the cost model is
    unaffected by host-side shortcuts. *)

val lookup_linear : t -> Packet.t -> P4ir.Table.entry option * int
(** {!lookup} with the compiled binary-search plan disabled: always the
    straight-line reference probe. Used by tests and the differential
    fuzzer to check the plan against the model it compiles. *)

val exact_probe : t -> (Packet.t -> P4ir.Table.entry option) option
(** [Some probe] iff this engine is an exact-hash store (every key
    [Exact], not cache-role). [probe pkt] returns exactly what {!lookup}
    would — the same physical entry objects, always one memory access —
    through an open-addressing index that allocates nothing per probe.
    The probe reads live table state: {!insert}, {!delete},
    {!replace_all}, {!load_entries} and {!invalidate} mark the index
    stale and the next probe rebuilds it, so a captured probe closure
    stays valid across control-plane updates. [None] for cache, shaped
    and linear backends, which must keep going through {!lookup}. *)

val plan_probe : t -> (Packet.t -> P4ir.Table.entry option) option
(** [Some probe] iff this engine is a shaped (LPM/ternary) backend.
    [probe pkt] returns exactly what {!lookup} would — the same physical
    entries — through the table's compiled plan, leaving the modeled
    access count in {!last_accesses} instead of allocating a result
    tuple. The learned-index and decision-tree plans return preallocated
    entry options, so those probes allocate nothing. Like
    {!exact_probe}, the closure reads live state: any control-plane
    mutation (or {!set_backend_hint}) marks the plan stale and the next
    probe rebuilds it. [None] for exact, cache and linear backends. *)

val last_accesses : t -> int
(** Modeled memory accesses of the most recent {!plan_probe} (or
    {!lookup}) on a shaped backend. Meaningful immediately after a
    probe; pairs with {!plan_probe} to keep the compiled walk free of
    result tuples. *)

val set_backend_hint : t -> backend_hint -> unit
(** Override the plan selector for this table and mark the current plan
    stale (the next lookup rebuilds under the new hint). No-op on
    non-shaped backends. *)

val backend_hint : t -> backend_hint
(** Current hint; [Auto] for non-shaped backends. *)

val plan_kind : t -> string
(** Which backend the table is currently running, building the plan
    first if stale: ["exact-hash"], ["exact-lru"], ["linear"],
    ["waldvogel"], ["learned"], ["tree"], ["lpm-linear"] or
    ["ternary-skip"]. For tests and diagnostics. *)

val plan_stats : t -> (string * int) list
(** Size counters of the current compiled plan (builds it if stale):
    segments/intervals/remainder for the learned plan,
    tree_nodes/tree_candidates/tree_max_leaf for the decision tree,
    positions for Waldvogel; [[]] otherwise. *)

val learned_threshold : int
(** Entry count at which [Auto] switches a single-key LPM table to the
    learned-index plan. *)

val tree_threshold : int
(** Entry count at which [Auto] switches a multi-group ternary table to
    the decision-tree plan. Degenerate mask sets are guarded against:
    if the built tree's worst leaf scan ([tree_max_leaf] in
    {!plan_stats}) is not competitive with the skip probe's per-group
    cost — masks sharing no bits exhaust the wildcard-duplication
    budget and leave giant leaves — [Auto] discards the tree and keeps
    the skip probe. [Force_tree] bypasses the guard. *)

val insert : t -> P4ir.Table.entry -> unit
(** Control-plane insert; bumps the update counter.
    @raise Invalid_argument if the entry does not fit the table. *)

val delete : t -> patterns:P4ir.Pattern.t list -> bool
(** Control-plane delete by exact pattern list; true if something was
    removed. Bumps the update counter. *)

val replace_all : t -> P4ir.Table.entry list -> unit
(** Control-plane bulk replace; counts as one update per entry. *)

val load_entries : t -> P4ir.Table.entry list -> unit
(** Like {!replace_all} but silent: used when state is carried over a
    live reconfiguration, which is not control-plane update traffic. *)

val entries : t -> P4ir.Table.entry list
val num_entries : t -> int

val shape_groups : t -> int
(** Number of live hash-table groups in a shaped (LPM/ternary) backend;
    0 for exact, cache and linear backends. Deleting the last entry of a
    group does not drop the group — the modeled hardware still probes it. *)

val copy : t -> t
(** Deep, independent copy: subsequent mutations (inserts, cache fills,
    LRU recency updates) on either side do not affect the other. The
    copy's update counter and token bucket match the original. *)

val update_count : t -> int
(** Control-plane updates since the last {!take_update_count}. *)

val take_update_count : t -> int
(** Read and reset the update counter (one profiling window). *)

val cache_fill :
  t -> now:float -> P4ir.Table.entry -> [ `Inserted | `Rate_limited | `Full_replace ]
(** Data-plane cache fill (only meaningful for cache-role tables): subject
    to the [insert_limit] token bucket; LRU eviction on overflow
    ([`Full_replace] reports that an eviction happened).
    @raise Invalid_argument on a non-cache table. *)

val invalidate : t -> unit
(** Drop all dynamic entries of a cache (entry-update invalidation). *)
