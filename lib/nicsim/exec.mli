(** Run-to-completion executor: one packet walks the program DAG on one
    core, accumulating latency per the target's cost parameters.

    The executor owns the runtime table engines, the instrumentation
    counters, flow-cache fills, and the heterogeneous placement logic
    (migration latency when execution crosses ASIC/CPU boundaries,
    §3.2.4). It is deliberately independent of traffic generation and of
    the multicore throughput model ({!Sim}). *)

type config = {
  target : Costmodel.Target.t;
  instrumented : bool;  (** profile counters attached (§4.1.2) *)
  sample_rate : int;  (** update counters for 1 in [sample_rate] packets *)
  placement : P4ir.Program.node_id -> Costmodel.Cost.core;
}

val default_config : Costmodel.Target.t -> config
(** Instrumented, sample every packet, everything on ASIC cores. *)

type t

val create : config -> P4ir.Program.t -> t
val program : t -> P4ir.Program.t
val config : t -> config
val counters : t -> Profile.Counter.t

val engine : t -> string -> Engine.t option
(** Runtime engine of the named table. *)

val engine_exn : t -> string -> Engine.t

val run_packet : t -> now:float -> Packet.t -> float
(** Process one packet; returns the latency in target latency-units
    (including the fixed per-packet overhead and any migrations). The
    packet is mutated (header rewrites, drop flag, egress). *)

val run_packet_at : t -> seq:int -> now:float -> Packet.t -> float
(** Like {!run_packet} but the counter-sampling decision uses the given
    global sequence number instead of this executor's own packet count.
    Lets a sharded replica reproduce, bit for bit, the sampling pattern
    the sequential executor would have applied at that position. The
    replica's own [packets_seen] still advances by one. *)

val run_batch :
  t ->
  ?pos:int ->
  ?n:int ->
  now_of:(int -> float) ->
  out:float array ->
  Packet.t array ->
  int
(** Process a burst interpretively: packets [0 .. n-1] of the array
    (default all), with packet [i] timestamped [now_of i] and its
    latency written to [out.(pos + i)] (default [pos = 0]). Per-burst
    work (program root, entry-core placement) is hoisted out of the
    per-packet path; each packet still walks the program DAG through the
    interpreter, so results are bit-identical to [n] calls to
    {!run_packet}. Packet [i] takes the executor's next global sequence
    number ([packets_seen + 1] at its turn), which keys both counter
    sampling ([instrumented && seq mod sample_rate = 0]) and telemetry
    trace sampling — the batched, compiled
    ({!run_batch_compiled}), and sharded ({!run_packet_at}) drivers all
    sample exactly the packets the sequential loop would.
    @raise Invalid_argument if [out] cannot hold the burst. *)

val run_batch_compiled :
  t ->
  ?pos:int ->
  ?n:int ->
  now_of:(int -> float) ->
  out:float array ->
  Packet.t array ->
  int
(** {!run_batch} over the compiled data path: the deployed program is
    flattened once ({!Compile}) into a linear op array with resolved
    successors, per-table action artifacts, pre-resolved counter cells
    and telemetry handles; packets then execute by array walk instead of
    DAG interpretation, allocation-free in steady state. Latencies,
    profile counters, telemetry (hit/miss counters, packets/drops,
    sampled spans), flow-cache fills, and tracer callbacks are all
    bit-identical to {!run_batch} — same floats, same counts, same
    sampling sequence. The pipeline is compiled lazily on first use and
    recompiled (reusing unchanged tables' artifacts) after
    {!replace_program}, {!set_telemetry}, or {!reset_counters}.
    @raise Invalid_argument if [out] cannot hold the burst. *)

val run_packet_compiled : t -> now:float -> Packet.t -> float
(** One packet through the compiled data path; bit-identical to
    {!run_packet}. *)

val run_packet_compiled_at : t -> seq:int -> now:float -> Packet.t -> float
(** Compiled counterpart of {!run_packet_at}: the sampling decision uses
    the given global sequence number (sharded replicas). *)

val precompile : t -> int * int
(** Force compilation of the data path now (normally lazy on first
    compiled run) and return [(tables_reused, tables_rebuilt)] for the
    most recent compile — after an incremental {!replace_program},
    [tables_reused] counts the per-table artifacts carried over. *)

val replicate : t -> t
(** Deep copy for a worker domain: engines are independently copied
    (aliasing between program nodes preserved), counters start empty,
    packet/drop counts start at zero, the tracer is not carried over. The
    program, target, and placement are shared (immutable). Merge results
    back with {!merge_replica}. *)

val merge_replica : t -> t -> unit
(** [merge_replica t r] folds replica [r]'s counters and packet/drop
    counts into [t]. Counter merging is commutative, so the merge order
    of replicas does not affect any observable state. *)

val packets_seen : t -> int
val drops_seen : t -> int

type trace_event = {
  node : P4ir.Program.node_id;
  name : string;  (** table or conditional name *)
  outcome : string;  (** action fired, or ["true"]/["false"] for branches *)
}

val set_tracer : t -> (trace_event -> unit) option -> unit
(** Install (or clear) a per-step hook invoked once per node the packet
    traverses, in execution order — the differential fuzzer's action
    trace. Tracing is off by default and costs nothing when unset. *)

val telemetry : t -> Telemetry.t
(** The attached sink; {!Telemetry.null} (all no-ops) by default. *)

val set_telemetry : t -> Telemetry.t -> unit
(** Attach a telemetry sink. With an enabled sink the executor keeps
    per-table hit/miss counters ([nicsim.table.<name>.hit] /
    [.miss]; cache- and merged-role tables use [nicsim.cache.*] /
    [nicsim.merged.*]), total [nicsim.packets] / [nicsim.drops], and —
    when the sink carries a trace ring — records each sampled packet's
    walk through the node DAG as spans on the modeled time axis
    (sampling is keyed on the global sequence number, so every window
    driver samples identically). Instrumentation only observes: counters
    and spans never change packet outcomes, engine state, or latencies.
    Metric handles are resolved here, not per packet. *)

val sync_entries_to_ir : t -> P4ir.Program.t
(** The program with each table's [entries] replaced by the engine's
    current dynamic contents — what the optimizer should look at. *)

val replace_program : t -> P4ir.Program.t -> int
(** Hot-patch to a new program in place: engines of tables whose name,
    keys, and actions are unchanged are kept (dynamic entries and all),
    counters are preserved, and only new or reshaped tables get fresh
    engines. Returns the number of tables that needed (re)creation — the
    units of work an incremental reconfiguration pays for (§6). *)

val reset_counters : t -> unit
