type t = {
  tgt : Costmodel.Target.t;
  mutable ex : Exec.t;
  mutable clock : float;
  mutable counter_baseline : Profile.Counter.t;
  mutable last_profile_time : float;
  mutable lat_scratch : float array;  (* reused latency buffer, one slot per packet *)
  mutable burst_scratch : Packet.t array;  (* reused burst buffer (compiled driver) *)
  lat_hist : Telemetry.Histogram.t;  (* per-window latency histogram, reset in [finish] *)
  mutable deploy_fault : (unit -> string option) option;
      (* consulted after a reconfigure/hot_patch lands; Some reason vetoes
         the deploy (fault injection — Runtime.Faults installs this) *)
}

exception Deploy_failed of string

let create ?config ?telemetry tgt prog =
  let cfg = match config with Some c -> c | None -> Exec.default_config tgt in
  let ex = Exec.create cfg prog in
  (match telemetry with Some tel -> Exec.set_telemetry ex tel | None -> ());
  { tgt;
    ex;
    clock = 0.;
    counter_baseline = Profile.Counter.create ();
    last_profile_time = 0.;
    lat_scratch = [||];
    burst_scratch = [||];
    lat_hist = Telemetry.Histogram.create ();
    deploy_fault = None }

let exec t = t.ex
let target t = t.tgt
let now t = t.clock
let advance t dt = t.clock <- t.clock +. Float.max 0. dt

let telemetry t = Exec.telemetry t.ex
let set_telemetry t tel = Exec.set_telemetry t.ex tel

type window_stats = {
  window_start : float;
  window_duration : float;
  sampled_packets : int;
  sampled_drops : int;
  avg_latency : float;
  p99_latency : float;
  p50_latency : float;
  p90_latency : float;
  p999_latency : float;
  throughput_gbps : float;
  drop_fraction : float;
}

(* Exact-size reusable latency buffer: in-place sorting (below) must not
   see stale slots from a larger previous window, and typical callers run
   fixed-size windows in a loop, so exact-size means one allocation total. *)
let scratch t packets =
  if Array.length t.lat_scratch <> packets then t.lat_scratch <- Array.make packets 0.;
  t.lat_scratch

(* Fold a filled latency buffer into stats and advance the clock. The
   summation runs in packet-index order so every window driver
   (sequential, batched, parallel) produces bit-identical floats; the
   histogram fill rides the same pass (bucket increments, order-free).
   avg/p99 keep the original sorted-scratch computation bit for bit; the
   p50/p90/p99.9 trio is histogram-derived (<= 3.125% high). *)
let finish t ~start ~duration ~packets ~drops latencies =
  t.clock <- start +. duration;
  let hist = t.lat_hist in
  Telemetry.Histogram.clear hist;
  let sum = ref 0. in
  for i = 0 to packets - 1 do
    let v = Array.unsafe_get latencies i in
    sum := !sum +. v;
    Telemetry.Histogram.record hist v
  done;
  let avg = !sum /. float_of_int packets in
  (* Monomorphic float sort: Array.sort Float.compare boxes both floats
     on every comparison. Same sorted values (latencies are NaN-free),
     so the percentiles are bit-identical. *)
  Stdx.Fsort.sort latencies;
  let p99 = latencies.(min (packets - 1) (packets * 99 / 100)) in
  let tel = Exec.telemetry t.ex in
  let throughput = Costmodel.Target.throughput_gbps t.tgt ~latency:avg in
  let drop_fraction = float_of_int drops /. float_of_int packets in
  if Telemetry.enabled tel then begin
    let m = Telemetry.metrics tel in
    Telemetry.Histogram.merge_into
      ~dst:(Telemetry.Metrics.histogram m "nicsim.latency") ~src:hist;
    Telemetry.Metrics.inc (Telemetry.Metrics.counter m "nicsim.windows");
    Telemetry.Metrics.set (Telemetry.Metrics.gauge m "nicsim.window.throughput_gbps") throughput;
    Telemetry.Metrics.set (Telemetry.Metrics.gauge m "nicsim.window.avg_latency") avg;
    Telemetry.Metrics.set (Telemetry.Metrics.gauge m "nicsim.window.drop_fraction") drop_fraction;
    (* Table occupancy after the window: one gauge per engine. *)
    List.iter
      (fun (_, (tab : P4ir.Table.t)) ->
        match Exec.engine t.ex tab.name with
        | Some eng ->
          Telemetry.Metrics.set
            (Telemetry.Metrics.gauge m ("nicsim.table." ^ tab.name ^ ".entries"))
            (float_of_int (Engine.num_entries eng))
        | None -> ())
      (P4ir.Program.tables (Exec.program t.ex))
  end;
  { window_start = start;
    window_duration = duration;
    sampled_packets = packets;
    sampled_drops = drops;
    avg_latency = avg;
    p99_latency = p99;
    p50_latency = Telemetry.Histogram.quantile hist 0.5;
    p90_latency = Telemetry.Histogram.quantile hist 0.9;
    p999_latency = Telemetry.Histogram.quantile hist 0.999;
    throughput_gbps = throughput;
    drop_fraction }

let packet_time ~start ~duration ~packets i =
  start +. (duration *. float_of_int i /. float_of_int packets)

let run_window t ~duration ~packets ~source =
  if packets <= 0 then invalid_arg "Sim.run_window: packets must be positive";
  let start = t.clock in
  let latencies = scratch t packets in
  let drops = ref 0 in
  for i = 0 to packets - 1 do
    let pkt = source () in
    latencies.(i) <- Exec.run_packet t.ex ~now:(packet_time ~start ~duration ~packets i) pkt;
    if Packet.is_dropped pkt then incr drops
  done;
  finish t ~start ~duration ~packets ~drops:!drops latencies

let default_batch = 64

(* Exact-size reusable burst buffer, same rationale as [scratch]: a
   steady-state window loop allocates it once, keeping the compiled
   driver's per-window allocations at zero. *)
let burst_buf t n =
  if Array.length t.burst_scratch <> n then
    t.burst_scratch <- Array.make n (Packet.create ());
  t.burst_scratch

let batched_loop ~fname ~compiled ~batch t ~duration ~packets ~source =
  if packets <= 0 then invalid_arg (fname ^ ": packets must be positive");
  if batch <= 0 then invalid_arg (fname ^ ": batch must be positive");
  let start = t.clock in
  let latencies = scratch t packets in
  let burst = burst_buf t (min batch packets) in
  let run_batch = if compiled then Exec.run_batch_compiled else Exec.run_batch in
  let drops = ref 0 in
  let pos = ref 0 in
  while !pos < packets do
    let n = min batch (packets - !pos) in
    (* Pull the burst in index order: the source sees the same call
       sequence as the one-at-a-time loop. *)
    for i = 0 to n - 1 do
      burst.(i) <- source ()
    done;
    let base = !pos in
    drops :=
      !drops
      + run_batch t.ex ~pos:base ~n
          ~now_of:(fun i -> packet_time ~start ~duration ~packets (base + i))
          ~out:latencies burst;
    pos := base + n
  done;
  finish t ~start ~duration ~packets ~drops:!drops latencies

let run_window_batched ?(batch = default_batch) ?(compiled = false) t ~duration ~packets ~source =
  batched_loop ~fname:"Sim.run_window_batched" ~compiled ~batch t ~duration ~packets ~source

let run_window_compiled ?(batch = default_batch) t ~duration ~packets ~source =
  batched_loop ~fname:"Sim.run_window_compiled" ~compiled:true ~batch t ~duration ~packets
    ~source

let has_cache_tables prog =
  List.exists
    (fun (_, (tab : P4ir.Table.t)) ->
      match tab.role with P4ir.Table.Cache _ -> true | _ -> false)
    (P4ir.Program.tables prog)

(* RSS-style receive-side scaling: hash the flow 5-tuple so one flow
   always lands on the same domain, like real NIC dispatchers do. *)
let flow_shard pkt ~domains =
  let h = ref 0x9E3779B97F4A7C15L in
  let mix f = h := Stdx.Prng.mix64 (Int64.logxor !h (Packet.get pkt f)) in
  mix P4ir.Field.Ipv4_src;
  mix P4ir.Field.Ipv4_dst;
  mix P4ir.Field.Ipv4_proto;
  mix P4ir.Field.Tcp_sport;
  mix P4ir.Field.Tcp_dport;
  Int64.to_int (Int64.rem (Int64.shift_right_logical !h 1) (Int64.of_int domains))

let run_window_parallel ?domains ?(compiled = false) t ~duration ~packets ~source =
  if packets <= 0 then invalid_arg "Sim.run_window_parallel: packets must be positive";
  let domains =
    match domains with
    | Some d when d <= 0 -> invalid_arg "Sim.run_window_parallel: domains must be positive"
    | Some d -> d
    | None -> Domain.recommended_domain_count ()
  in
  (* Cache-role tables mutate shared engine state per packet (LRU recency,
     fills), which sharded replicas cannot reproduce faithfully; those
     programs run sequentially. So do degenerate shardings. *)
  if domains = 1 || packets < 2 * domains || has_cache_tables (Exec.program t.ex) then
    if compiled then run_window_compiled t ~duration ~packets ~source
    else run_window t ~duration ~packets ~source
  else begin
    let start = t.clock in
    let latencies = scratch t packets in
    (* Pull every packet up front, in index order — same source call
       sequence as sequential — then shard deterministically by flow. *)
    let pkts = Array.make packets (source ()) in
    for i = 1 to packets - 1 do
      pkts.(i) <- source ()
    done;
    let shard_sizes = Array.make domains 0 in
    let shard_of = Array.make packets 0 in
    for i = 0 to packets - 1 do
      let s = flow_shard pkts.(i) ~domains in
      shard_of.(i) <- s;
      shard_sizes.(s) <- shard_sizes.(s) + 1
    done;
    let shards = Array.init domains (fun s -> Array.make (max 1 shard_sizes.(s)) 0) in
    let fill = Array.make domains 0 in
    for i = 0 to packets - 1 do
      let s = shard_of.(i) in
      shards.(s).(fill.(s)) <- i;
      fill.(s) <- fill.(s) + 1
    done;
    let base_seen = Exec.packets_seen t.ex in
    let run_at = if compiled then Exec.run_packet_compiled_at else Exec.run_packet_at in
    let run_shard s () =
      (* Each replica compiles its own op array on first use — the
         compiled pipeline holds engine handles, which are per-replica. *)
      let replica = Exec.replicate t.ex in
      let indices = shards.(s) in
      for j = 0 to shard_sizes.(s) - 1 do
        let i = indices.(j) in
        (* Disjoint index sets make the shared latency-buffer writes
           race-free; the global sequence number pins the sampling
           pattern to the packet's window position, not arrival order. *)
        latencies.(i) <-
          run_at replica ~seq:(base_seen + i + 1)
            ~now:(packet_time ~start ~duration ~packets i)
            pkts.(i)
      done;
      replica
    in
    let workers =
      Array.init (domains - 1) (fun k -> Domain.spawn (run_shard (k + 1)))
    in
    let replica0 = run_shard 0 () in
    let replicas = Array.append [| replica0 |] (Array.map Domain.join workers) in
    Array.iter (fun r -> Exec.merge_replica t.ex r) replicas;
    let drops = ref 0 in
    for i = 0 to packets - 1 do
      if Packet.is_dropped pkts.(i) then incr drops
    done;
    finish t ~start ~duration ~packets ~drops:!drops latencies
  end

let insert t ~table entry = Engine.insert (Exec.engine_exn t.ex table) entry

let delete t ~table ~patterns = Engine.delete (Exec.engine_exn t.ex table) ~patterns

let set_deploy_fault t hook = t.deploy_fault <- hook

(* The fault hook runs after the new program is installed and the
   downtime is charged: an injected failure models a deployment that came
   up and failed verification, leaving the unverified program running
   until the caller (the runtime controller) rolls back. *)
let verify_deploy t =
  match t.deploy_fault with
  | None -> ()
  | Some hook -> (
    match hook () with None -> () | Some reason -> raise (Deploy_failed reason))

let reconfigure ?config ?(downtime = 0.) t prog =
  let cfg = match config with Some c -> c | None -> Exec.config t.ex in
  let old_ex = t.ex in
  let fresh = Exec.create cfg prog in
  Exec.set_telemetry fresh (Exec.telemetry old_ex);
  (* Live reconfiguration keeps the dynamic state of surviving tables;
     caches restart cold. *)
  List.iter
    (fun (_, (tab : P4ir.Table.t)) ->
      match tab.role with
      | P4ir.Table.Cache _ -> ()
      | _ -> (
        match Exec.engine old_ex tab.name with
        | Some old_engine ->
          Engine.load_entries (Exec.engine_exn fresh tab.name) (Engine.entries old_engine)
        | None -> ()))
    (P4ir.Program.tables prog);
  t.ex <- fresh;
  t.counter_baseline <- Profile.Counter.create ();
  advance t downtime;
  verify_deploy t

let hot_patch ?(downtime_per_table = 0.02) t prog =
  let changed = Exec.replace_program t.ex prog in
  advance t (downtime_per_table *. float_of_int changed);
  verify_deploy t;
  changed

let current_profile ?window t =
  let elapsed =
    match window with
    | Some w -> w
    | None -> Float.max 1e-9 (t.clock -. t.last_profile_time)
  in
  t.last_profile_time <- t.clock;
  let current = Exec.counters t.ex in
  let delta = Profile.Counter.diff ~current ~baseline:t.counter_baseline in
  t.counter_baseline <- Profile.Counter.snapshot current;
  (* Record control-plane update rates as ["update"]-labelled counts so
     Profile.of_counters picks them up. *)
  let prog = Exec.program t.ex in
  List.iter
    (fun (_, (tab : P4ir.Table.t)) ->
      match Exec.engine t.ex tab.name with
      | Some eng ->
        let updates = Engine.take_update_count eng in
        if updates > 0 then
          Profile.Counter.incr ~by:(Int64.of_int updates) delta ~owner:tab.name
            ~label:"update"
      | None -> ())
    (P4ir.Program.tables prog);
  Profile.of_counters ~window:elapsed prog delta
