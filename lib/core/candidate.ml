type seg_kind = Cache_seg | Merge_ternary_seg | Merge_fallback_seg

type seg = { pos : int; len : int; kind : seg_kind }

type combo = { order : int list; segs : seg list }

type options = {
  max_enumerate_order : int;
  max_merge_len : int;
  max_cache_len : int;
  max_combos : int;
  cache_capacity : int;
  cache_insert_limit : float;
}

let default_options =
  { max_enumerate_order = 5;
    max_merge_len = 2;
    max_cache_len = 4;
    max_combos = 4096;
    cache_capacity = 4096;
    cache_insert_limit = 1000. }

type evaluated = {
  combo : combo;
  gain : float;
  latency_before : float;
  latency_after : float;
  mem_delta : int;
  update_delta : float;
}

let identity_combo n = { order = List.init n Fun.id; segs = [] }

(* Segmentations: walk positions left to right; at each position either
   leave the table plain or open a segment of one of the kinds. [go pos]
   is a pure function of the position, so it is memoized — the naive
   recursion re-derives [go (pos + len)] once per (len, kind) parent and
   goes exponential in the pipelet length. *)
let segmentations_uncached ~opts n =
  let memo = Array.make (max 1 n) None in
  let rec go pos =
    if pos >= n then [ [] ]
    else
      match memo.(pos) with
      | Some r -> r
      | None ->
        let plain = go (pos + 1) in
        let with_segments =
          List.concat_map
            (fun len ->
              if pos + len > n then []
              else
                let kinds =
                  (if len <= opts.max_cache_len then [ Cache_seg ] else [])
                  @ (if len >= 2 && len <= opts.max_merge_len then
                       [ Merge_ternary_seg; Merge_fallback_seg ]
                     else [])
                in
                List.concat_map
                  (fun kind ->
                    List.map (fun rest -> { pos; len; kind } :: rest) (go (pos + len)))
                  kinds)
            (List.init (max opts.max_cache_len opts.max_merge_len) (fun i -> i + 1))
        in
        let r = plain @ with_segments in
        memo.(pos) <- Some r;
        r
  in
  (* Drop the all-plain segmentation; it is the reorder-only combo. *)
  List.filter (fun segs -> segs <> []) (go 0) @ [ [] ]

(* The result depends only on (n, max_cache_len, max_merge_len), and the
   same pipelet lengths recur across pipelets and re-optimization epochs,
   so keep a process-wide cache. Mutex-guarded: the parallel local
   search enumerates from worker domains. *)
let seg_cache : (int * int * int, seg list list) Hashtbl.t = Hashtbl.create 16
let seg_cache_mutex = Mutex.create ()

let segmentations ~opts n =
  let key = (n, opts.max_cache_len, opts.max_merge_len) in
  Mutex.protect seg_cache_mutex (fun () ->
      match Hashtbl.find_opt seg_cache key with
      | Some segs -> segs
      | None ->
        let segs = segmentations_uncached ~opts n in
        Hashtbl.replace seg_cache key segs;
        segs)


let enumerate ?(opts = default_options) prof tabs =
  let n = List.length tabs in
  if n = 0 then []
  else begin
    let orders = Reorder.candidate_orders ~max_enumerate:opts.max_enumerate_order tabs in
    let greedy = Reorder.greedy_drop_order prof tabs in
    let orders = if List.mem greedy orders then orders else orders @ [ greedy ] in
    let segs = segmentations ~opts n in
    let identity = identity_combo n in
    (* Budget the candidate cap across orders, and keep each order's
       reorder-only combo unconditionally — otherwise a long pipelet's
       segmentations crowd out reordering entirely. *)
    let per_order = max 1 (opts.max_combos / max 1 (List.length orders)) in
    let combos =
      List.concat_map
        (fun order ->
          let with_segs =
            List.filter (fun s -> s <> []) segs
            |> Stdx.Listx.take (per_order - 1)
            |> List.map (fun segs -> { order; segs })
          in
          { order; segs = [] } :: with_segs)
        orders
      |> List.filter (fun c -> c <> identity)
    in
    Stdx.Listx.take opts.max_combos combos
  end

let slice xs pos len =
  List.filteri (fun i _ -> i >= pos && i < pos + len) xs

let realize ?(opts = default_options) ~name_prefix tabs combo =
  match Reorder.apply_order tabs combo.order with
  | exception Invalid_argument _ -> None
  | ordered ->
    if not (Reorder.order_valid (Array.of_list tabs) combo.order) then None
    else begin
      let n = List.length ordered in
      let covered = Array.make n None in
      List.iter
        (fun seg ->
          for i = seg.pos to seg.pos + seg.len - 1 do
            if i < n then covered.(i) <- Some seg
          done)
        combo.segs;
      let counter = ref 0 in
      let fresh kind_tag =
        incr counter;
        Printf.sprintf "%s_%s%d" name_prefix kind_tag !counter
      in
      let rec build pos acc =
        if pos >= n then Some (List.rev acc)
        else
          match covered.(pos) with
          | None -> build (pos + 1) (Transform.Plain (List.nth ordered pos) :: acc)
          | Some seg when seg.pos <> pos -> build (pos + 1) acc (* interior *)
          | Some seg -> (
            let originals = slice ordered seg.pos seg.len in
            match seg.kind with
            | Cache_seg ->
              if not (Cache.cacheable originals) then None
              else begin
                let cache =
                  Cache.build ~capacity:opts.cache_capacity
                    ~insert_limit:opts.cache_insert_limit ~name:(fresh "cache")
                    originals
                in
                build (pos + seg.len) (Transform.Cached { cache; originals } :: acc)
              end
            | Merge_ternary_seg ->
              if not (Merge.mergeable originals) then None
              else (
                match Merge.build_ternary ~name:(fresh "merged") originals with
                | merged ->
                  build (pos + seg.len)
                    (Transform.Merged_plain { merged; originals } :: acc)
                | exception Invalid_argument _ -> None)
            | Merge_fallback_seg ->
              if not (Merge.mergeable originals && Merge.fallback_compatible originals)
              then None
              else (
                match Merge.build_fallback ~name:(fresh "mergedx") originals with
                | merged ->
                  build (pos + seg.len)
                    (Transform.Merged_fallback { merged; originals } :: acc)
                | exception Invalid_argument _ -> None))
      in
      build 0 []
    end

(* --- synthetic profile entries for new tables --- *)

let product_prob prof originals parts =
  (* P(fused) = prod over (table, action) components; [parts] may cover a
     drop-truncated prefix or (for group caches) a subset of originals. *)
  List.fold_left
    (fun acc (tname, aname) ->
      match
        List.find_opt (fun (t : P4ir.Table.t) -> String.equal t.name tname) originals
      with
      | Some tab -> acc *. Profile.action_prob prof ~table:tab ~action:aname
      | None -> acc)
    1.0 parts

let stats_for_cache prof (cache : P4ir.Table.t) originals ~scale ~miss_prob ~update_rate =
  (* Auto-insert caches: realizable fused sequences have total product
     mass 1, so each is scaled by the hit rate and the default keeps the
     miss mass. Fallback merges: hit-only products already sum to the
     joint hit probability, so [scale] is 1. *)
  let action_probs =
    List.map
      (fun (a : P4ir.Action.t) ->
        if String.equal a.name cache.default_action then (a.name, miss_prob)
        else
          let parts = Profile.Counter_map.split_fused a.name in
          (a.name, scale *. product_prob prof originals parts))
      cache.actions
  in
  { Profile.action_probs; update_rate; locality = -1. }

let stats_for_merged prof (merged : P4ir.Table.t) originals ~update_rate =
  let action_probs =
    List.map
      (fun (a : P4ir.Action.t) ->
        let parts = Profile.Counter_map.split_fused a.name in
        (a.name, product_prob prof originals parts))
      merged.actions
  in
  { Profile.action_probs; update_rate; locality = -1. }

let extend_profile prof elements =
  List.fold_left
    (fun prof element ->
      match element with
      | Transform.Plain _ -> prof
      | Transform.Cached { cache; originals } ->
        let base_hit =
          Profile.cache_hit_estimate prof
            ~table_names:(List.map (fun (t : P4ir.Table.t) -> t.name) originals)
        in
        (* Entry updates to any covered table invalidate the cache
           (§3.2.2); between invalidations it must re-warm, so the
           effective hit rate collapses as the covered update rate grows.
           [warmup] is the approximate re-warm time in seconds. *)
        let warmup = 0.5 in
        let covered_updates =
          List.fold_left
            (fun acc (t : P4ir.Table.t) ->
              acc +. Profile.update_rate prof ~table_name:t.name)
            0. originals
        in
        let hit_rate = base_hit /. (1. +. (covered_updates *. warmup)) in
        let update_rate =
          match cache.role with
          | P4ir.Table.Cache meta -> meta.insert_limit
          | _ -> 0.
        in
        Profile.set_table cache.name
          (stats_for_cache prof cache originals ~scale:hit_rate
             ~miss_prob:(1. -. hit_rate) ~update_rate)
          prof
      | Transform.Merged_plain { merged; originals } ->
        Profile.set_table merged.name
          (stats_for_merged prof merged originals
             ~update_rate:(Merge.update_estimate prof originals))
          prof
      | Transform.Merged_fallback { merged; originals } ->
        (* Joint hit probability: every covered table must hit. *)
        let hit_rate =
          List.fold_left
            (fun acc (tab : P4ir.Table.t) ->
              acc
              *. (1. -. Profile.action_prob prof ~table:tab ~action:tab.default_action))
            1.0 originals
        in
        Profile.set_table merged.name
          (stats_for_cache prof merged originals ~scale:1.0
             ~miss_prob:(1. -. hit_rate)
             ~update_rate:(Merge.update_estimate prof originals))
          prof)
    prof elements

let element_update_rate prof element =
  let sum_originals originals =
    List.fold_left
      (fun acc (t : P4ir.Table.t) -> acc +. Profile.update_rate prof ~table_name:t.name)
      0. originals
  in
  match element with
  | Transform.Plain t -> Profile.update_rate prof ~table_name:t.P4ir.Table.name
  | Transform.Cached { cache; originals } ->
    let fill_rate =
      match cache.role with P4ir.Table.Cache m -> m.insert_limit | _ -> 0.
    in
    fill_rate +. sum_originals originals
  | Transform.Merged_plain { originals; _ } -> Merge.update_estimate prof originals
  | Transform.Merged_fallback { originals; _ } ->
    Merge.update_estimate prof originals +. sum_originals originals

let evaluate target prof ~reach_prob ~originals combo elements =
  let before = Transform.chain_program "__before" (List.map (fun t -> Transform.Plain t) originals) in
  let after = Transform.chain_program "__after" elements in
  let prof_after = extend_profile prof elements in
  let latency_before = Costmodel.Cost.expected_latency target prof before in
  let latency_after = Costmodel.Cost.expected_latency target prof_after after in
  let mem tabs = List.fold_left (fun acc t -> acc + Costmodel.Resource.table_memory target t) 0 tabs in
  let mem_before = mem originals in
  let mem_after = mem (List.concat_map Transform.element_tables elements) in
  let upd_before =
    List.fold_left
      (fun acc (t : P4ir.Table.t) -> acc +. Profile.update_rate prof ~table_name:t.name)
      0. originals
  in
  let upd_after = List.fold_left (fun acc e -> acc +. element_update_rate prof e) 0. elements in
  { combo;
    gain = (latency_before -. latency_after) *. reach_prob;
    latency_before;
    latency_after;
    mem_delta = mem_after - mem_before;
    update_delta = upd_after -. upd_before }

(* --- analytic (table-free) evaluation: what the local search runs --- *)

let exact_entry_bytes fields =
  List.fold_left (fun acc f -> acc + ((P4ir.Field.width f + 7) / 8)) 8 fields

let merged_fields tabs =
  List.sort_uniq P4ir.Field.compare
    (List.concat_map
       (fun (t : P4ir.Table.t) -> List.map (fun (k : P4ir.Table.key) -> k.field) t.keys)
       tabs)

(* Memoized per-table metrics, in the pipelet's original order. *)
type tinfo = {
  t_cost : float;  (* match + expected action cost *)
  t_drop : float;
  t_mem : int;
  t_upd : float;
  t_m : float;
  t_act : float;  (* expected action cost alone *)
  t_entries : int;
  t_miss : float;  (* probability the default action fires *)
}

(* Cost, memory, update-rate, and survival contribution of one segment:
   a pure function of the segment kind and the original tables covered,
   independent of where the segment sits in the reordered pipelet.
   Memoized per context — segmentations across candidate orders share
   almost all of their segments. *)
type seg_info = {
  si_valid : bool;
  si_cost : float;
  si_mem : int;  (* segment memory, plus resident originals for caches *)
  si_upd : float;
  si_survive : float;
}

type ctx = {
  ctx_opts : options;
  ctx_target : Costmodel.Target.t;
  ctx_prof : Profile.t;
  ctx_reach : float;
  ctx_tabs : P4ir.Table.t array;
  ctx_info : tinfo array;
  ctx_latency_before : float;
  ctx_mem_before : int;
  ctx_upd_before : float;
  (* Scratch reused across evaluate_analytic calls (a context is built
     and driven by one search thread; it is not domain-shareable). *)
  ctx_order : int array;
  ctx_covered : int array;
  ctx_seg_memo : (seg_kind * int list, seg_info) Hashtbl.t;
}

let context ?(opts = default_options) target prof ~reach_prob tabs =
  let arr = Array.of_list tabs in
  let info =
    Array.map
      (fun (t : P4ir.Table.t) ->
        let act = Costmodel.Cost.action_cost target prof t in
        { t_cost = Costmodel.Target.table_match_cost target t +. act;
          t_drop = Profile.drop_prob prof t;
          t_mem = Costmodel.Resource.table_memory target t;
          t_upd = Profile.update_rate prof ~table_name:t.name;
          t_m = Costmodel.Target.m_of_table target t;
          t_act = act;
          t_entries = max 1 (P4ir.Table.num_entries t);
          t_miss = Profile.action_prob prof ~table:t ~action:t.default_action })
      arr
  in
  let latency_before, _ =
    Array.fold_left
      (fun (lat, survive) i -> (lat +. (survive *. i.t_cost), survive *. (1. -. i.t_drop)))
      (0., 1.) info
  in
  { ctx_opts = opts;
    ctx_target = target;
    ctx_prof = prof;
    ctx_reach = reach_prob;
    ctx_tabs = arr;
    ctx_info = info;
    ctx_latency_before = latency_before;
    ctx_mem_before = Array.fold_left (fun acc i -> acc + i.t_mem) 0 info;
    ctx_upd_before = Array.fold_left (fun acc i -> acc +. i.t_upd) 0. info;
    ctx_order = Array.make (max 1 (Array.length arr)) 0;
    ctx_covered = Array.make (max 1 (Array.length arr)) (-1);
    ctx_seg_memo = Hashtbl.create 64 }

let cache_hit_with_invalidation ctx originals_info originals =
  let base =
    Profile.cache_hit_estimate ctx.ctx_prof
      ~table_names:(List.map (fun (t : P4ir.Table.t) -> t.name) originals)
  in
  let warmup = 0.5 in
  let updates = List.fold_left (fun acc i -> acc +. i.t_upd) 0. originals_info in
  base /. (1. +. (updates *. warmup))

(* Expected cost of running the original segment on a cache miss, plus
   the survival factor through it. *)
let segment_chain originals_info =
  List.fold_left
    (fun (lat, survive) i -> (lat +. (survive *. i.t_cost), survive *. (1. -. i.t_drop)))
    (0., 1.) originals_info

let seg_valid ctx kind len originals =
  match kind with
  | Cache_seg -> len <= ctx.ctx_opts.max_cache_len && Cache.cacheable originals
  | Merge_ternary_seg -> len <= ctx.ctx_opts.max_merge_len && Merge.mergeable originals
  | Merge_fallback_seg ->
    len <= ctx.ctx_opts.max_merge_len
    && Merge.mergeable originals
    && Merge.fallback_compatible originals

(* Cost, memory, update-rate, and survival contribution of one segment. *)
let seg_metrics ctx kind originals originals_info =
  let target = ctx.ctx_target in
  let opts = ctx.ctx_opts in
  let act_sum = List.fold_left (fun acc i -> acc +. i.t_act) 0. originals_info in
  let upd_sum = List.fold_left (fun acc i -> acc +. i.t_upd) 0. originals_info in
  let entry_estimate = List.fold_left (fun acc i -> acc * i.t_entries) 1 originals_info in
  let miss_cost, survive_factor = segment_chain originals_info in
  match kind with
  | Cache_seg ->
    let h = cache_hit_with_invalidation ctx originals_info originals in
    let cost =
      target.Costmodel.Target.l_mat
      +. (h *. act_sum)
      +. ((1. -. h) *. miss_cost)
    in
    let mem = opts.cache_capacity * exact_entry_bytes (Cache.live_in_fields originals) in
    (cost, mem, opts.cache_insert_limit +. upd_sum, survive_factor)
  | Merge_ternary_seg ->
    (* Distinct mask combinations of the merged ternary table: each
       original contributes its own shapes plus a wildcard miss row
       (Fig. 6), multiplied; minus one for the all-miss combination,
       which is the merged default action rather than an entry. *)
    let m =
      Float.max 1.
        (List.fold_left (fun acc i -> acc *. (i.t_m +. 1.)) 1. originals_info -. 1.)
    in
    let cost = (m *. target.Costmodel.Target.l_mat) +. act_sum in
    let mem =
      int_of_float
        (ceil
           (float_of_int (entry_estimate * 2 * exact_entry_bytes (merged_fields originals))
            *. m))
    in
    (cost, mem, Merge.update_estimate ctx.ctx_prof originals, survive_factor)
  | Merge_fallback_seg ->
    let h = List.fold_left (fun acc i -> acc *. (1. -. i.t_miss)) 1. originals_info in
    let cost =
      target.Costmodel.Target.l_mat +. (h *. act_sum) +. ((1. -. h) *. miss_cost)
    in
    let mem = entry_estimate * exact_entry_bytes (merged_fields originals) in
    (cost, mem, Merge.update_estimate ctx.ctx_prof originals +. upd_sum, survive_factor)

(* Memoized per-segment evaluation, keyed by (kind, covered original
   table indices). Validity, cost, memory and update rate are position-
   independent, so segments shared across candidate orders (the common
   case: segmentations are enumerated per order) are computed once. *)
let seg_info_of ctx kind idxs =
  match Hashtbl.find_opt ctx.ctx_seg_memo (kind, idxs) with
  | Some si -> si
  | None ->
    let originals = List.map (fun i -> ctx.ctx_tabs.(i)) idxs in
    let originals_info = List.map (fun i -> ctx.ctx_info.(i)) idxs in
    let len = List.length idxs in
    let si =
      if not (seg_valid ctx kind len originals) then
        { si_valid = false; si_cost = 0.; si_mem = 0; si_upd = 0.; si_survive = 1. }
      else begin
        let cost, seg_mem, seg_upd, survive_factor =
          seg_metrics ctx kind originals originals_info
        in
        (* Caches and fallback merges keep the originals resident. *)
        let resident =
          match kind with
          | Cache_seg | Merge_fallback_seg ->
            List.fold_left (fun acc (i : tinfo) -> acc + i.t_mem) 0 originals_info
          | Merge_ternary_seg -> 0
        in
        { si_valid = true;
          si_cost = cost;
          si_mem = seg_mem + resident;
          si_upd = seg_upd;
          si_survive = survive_factor }
      end
    in
    Hashtbl.replace ctx.ctx_seg_memo (kind, idxs) si;
    si

let evaluate_analytic ctx combo =
  let n = Array.length ctx.ctx_tabs in
  if not (Reorder.order_valid ctx.ctx_tabs combo.order) then None
  else begin
    (* order_valid guarantees a permutation of 0..n-1, so the scratch
       arrays are filled completely. *)
    let order = ctx.ctx_order in
    List.iteri (fun i v -> order.(i) <- v) combo.order;
    let covered = ctx.ctx_covered in
    Array.fill covered 0 n (-1);
    let segs = Array.of_list combo.segs in
    let bad = ref false in
    Array.iteri
      (fun s seg ->
        if seg.pos < 0 || seg.pos + seg.len > n then bad := true
        else
          for i = seg.pos to seg.pos + seg.len - 1 do
            if covered.(i) >= 0 then bad := true;
            covered.(i) <- s
          done)
      segs;
    if !bad then None
    else begin
      let rec idxs_of pos len = if len = 0 then [] else order.(pos) :: idxs_of (pos + 1) (len - 1) in
      let infos =
        Array.map (fun seg -> seg_info_of ctx seg.kind (idxs_of seg.pos seg.len)) segs
      in
      if not (Array.for_all (fun si -> si.si_valid) infos) then None
      else begin
        let latency = ref 0. in
        let survive = ref 1.0 in
        let mem = ref 0 in
        let upd = ref 0. in
        let i = ref 0 in
        while !i < n do
          let s = covered.(!i) in
          if s < 0 then begin
            let info = ctx.ctx_info.(order.(!i)) in
            latency := !latency +. (!survive *. info.t_cost);
            mem := !mem + info.t_mem;
            upd := !upd +. info.t_upd;
            survive := !survive *. (1. -. info.t_drop);
            incr i
          end
          else if segs.(s).pos <> !i then incr i (* zero-length seg marker *)
          else begin
            let si = infos.(s) in
            latency := !latency +. (!survive *. si.si_cost);
            mem := !mem + si.si_mem;
            upd := !upd +. si.si_upd;
            survive := !survive *. si.si_survive;
            i := segs.(s).pos + segs.(s).len
          end
        done;
        Some
          { combo;
            gain = (ctx.ctx_latency_before -. !latency) *. ctx.ctx_reach;
            latency_before = ctx.ctx_latency_before;
            latency_after = !latency;
            mem_delta = !mem - ctx.ctx_mem_before;
            update_delta = !upd -. ctx.ctx_upd_before }
      end
    end
  end

let best_of evaluated =
  List.fold_left
    (fun best e ->
      match best with
      | Some (b : evaluated) when b.gain >= e.gain -> best
      | _ -> if e.gain > 0. then Some e else best)
    None evaluated
