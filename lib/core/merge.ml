let max_merged_entries = 4096

module FieldSet = Set.Make (P4ir.Field)

let has_range (tab : P4ir.Table.t) =
  List.exists
    (fun (k : P4ir.Table.key) -> P4ir.Match_kind.equal k.kind P4ir.Match_kind.Range)
    tab.keys

let no_forward_match_dep tabs =
  (* T_i must not write a field any later table reads or matches: the
     merged lookup reads every key simultaneously, on pre-merge values. *)
  let rec go written = function
    | [] -> true
    | (tab : P4ir.Table.t) :: rest ->
      let reads = FieldSet.of_list (P4ir.Table.reads_of tab) in
      if not (FieldSet.is_empty (FieldSet.inter written reads)) then false
      else go (FieldSet.union written (FieldSet.of_list (P4ir.Table.writes_of tab))) rest
  in
  go FieldSet.empty tabs

let entry_estimate tabs =
  List.fold_left
    (fun acc (t : P4ir.Table.t) -> acc * max 1 (P4ir.Table.num_entries t))
    1 tabs

let update_estimate prof tabs =
  let sizes = List.map (fun (t : P4ir.Table.t) -> max 1 (P4ir.Table.num_entries t)) tabs in
  let rates =
    List.map (fun (t : P4ir.Table.t) -> Profile.update_rate prof ~table_name:t.name) tabs
  in
  List.mapi
    (fun i rate ->
      let others =
        List.filteri (fun j _ -> j <> i) sizes |> List.fold_left ( * ) 1
      in
      rate *. float_of_int others)
    rates
  |> List.fold_left ( +. ) 0.

let mergeable tabs =
  List.length tabs >= 2
  && (not (List.exists has_range tabs))
  && no_forward_match_dep tabs
  && entry_estimate tabs <= max_merged_entries
  && Cache.num_sequences tabs <= Cache.max_fused_actions

let all_exact (tab : P4ir.Table.t) =
  List.for_all
    (fun (k : P4ir.Table.key) -> P4ir.Match_kind.equal k.kind P4ir.Match_kind.Exact)
    tab.keys

let fallback_compatible tabs = List.for_all all_exact tabs

(* --- pattern combination over the merged key --- *)

let to_ternary width (p : P4ir.Pattern.t) =
  match p with
  | P4ir.Pattern.Exact v ->
    P4ir.Pattern.Ternary (v, P4ir.Value.truncate ~width Int64.minus_one)
  | P4ir.Pattern.Lpm (v, len) ->
    P4ir.Pattern.Ternary (v, P4ir.Value.prefix_mask ~width ~prefix_len:len)
  | P4ir.Pattern.Ternary _ -> p
  | P4ir.Pattern.Range _ -> invalid_arg "Merge: range patterns are not mergeable"

(* Combine two ternary constraints on the same field; None = conflict. *)
let combine_ternary a b =
  match (a, b) with
  | P4ir.Pattern.Ternary (v1, m1), P4ir.Pattern.Ternary (v2, m2) ->
    let overlap = Int64.logand m1 m2 in
    if
      Int64.equal (Int64.logand v1 overlap) (Int64.logand v2 overlap)
    then
      Some
        (P4ir.Pattern.Ternary
           ( Int64.logor (Int64.logand v1 m1) (Int64.logand v2 m2),
             Int64.logor m1 m2 ))
    else None
  | _ -> None

let merged_key_fields tabs =
  List.sort_uniq P4ir.Field.compare
    (List.concat_map
       (fun (t : P4ir.Table.t) -> List.map (fun (k : P4ir.Table.key) -> k.field) t.keys)
       tabs)

(* One "pick" per covered table: either a concrete entry or a miss. *)
type pick = Hit of P4ir.Table.entry | Miss

let picks_per_table ~with_miss (tab : P4ir.Table.t) =
  let hits = List.map (fun e -> Hit e) tab.entries in
  if with_miss then Miss :: hits else hits

let rec cross = function
  | [] -> [ [] ]
  | choices :: rest ->
    let tails = cross rest in
    List.concat_map (fun c -> List.map (fun t -> c :: t) tails) choices

let action_of_pick (tab : P4ir.Table.t) = function
  | Hit e -> e.P4ir.Table.action
  | Miss -> tab.default_action

(* Fold one table's pick into the per-field constraint map. *)
let fold_constraints fields (tab : P4ir.Table.t) pick constraints =
  match pick with
  | Miss -> Some constraints
  | Hit e ->
    List.fold_left2
      (fun acc (k : P4ir.Table.key) p ->
        match acc with
        | None -> None
        | Some cs ->
          let width = P4ir.Field.width k.field in
          let tern = to_ternary width p in
          let idx =
            match List.find_index (P4ir.Field.equal k.field) fields with
            | Some i -> i
            | None -> invalid_arg "Merge: key field missing from merged key"
          in
          (match List.nth cs idx with
           | None -> Some (List.mapi (fun i c -> if i = idx then Some tern else c) cs)
           | Some existing -> (
             match combine_ternary existing tern with
             | Some combined ->
               Some (List.mapi (fun i c -> if i = idx then Some combined else c) cs)
             | None -> None)))
      (Some constraints) tab.keys e.patterns

let fused_name tabs picks =
  Profile.Counter_map.fuse
    (List.map2 (fun (t : P4ir.Table.t) p -> (t.name, action_of_pick t p)) tabs picks)

let fused_action tabs picks =
  let names = List.map2 action_of_pick tabs picks in
  let actions = List.map2 P4ir.Table.find_action_exn tabs names in
  let name = fused_name tabs picks in
  match actions with
  | [] -> invalid_arg "Merge.fused_action: no tables"
  | first :: rest ->
    List.fold_left (fun acc a -> P4ir.Action.concat name acc a) (P4ir.Action.rename name first) rest

let all_fused_actions tabs ~with_miss =
  let combos = cross (List.map (picks_per_table ~with_miss) tabs) in
  List.fold_left
    (fun acc picks ->
      let a = fused_action tabs picks in
      if List.exists (fun (b : P4ir.Action.t) -> String.equal b.name a.name) acc then acc
      else a :: acc)
    [] combos
  |> List.rev

(* Rank of each entry within its table's own resolution order (priority,
   then specificity, then insertion order): among co-matching entries the
   winner ranks highest; a miss ranks 0. Keyed by physical identity —
   picks hold the very entry values from [tab.entries]. *)
let entry_ranks (tab : P4ir.Table.t) =
  let spec (e : P4ir.Table.entry) =
    List.fold_left (fun acc p -> acc + P4ir.Pattern.specificity p) 0 e.patterns
  in
  let indexed = List.mapi (fun i e -> (i, e)) tab.entries in
  let cmp (ia, (a : P4ir.Table.entry)) (ib, (b : P4ir.Table.entry)) =
    match compare b.priority a.priority with
    | 0 -> ( match compare (spec b) (spec a) with 0 -> compare ia ib | c -> c)
    | c -> c
  in
  let sorted = List.sort cmp indexed in
  let n = List.length sorted in
  List.mapi (fun pos (_, e) -> (e, n - pos)) sorted

(* Distinct pick combinations can materialize the same pattern row (an
   exact hit forces the other table's looser overlapping row to the same
   values); only the highest-priority one is ever reachable, so emit
   just that. *)
let dedup_rows entries =
  List.rev
    (List.fold_left
       (fun acc (e : P4ir.Table.entry) ->
         match
           List.partition (fun (o : P4ir.Table.entry) -> o.patterns = e.patterns) acc
         with
         | [], _ -> e :: acc
         | [ old ], rest -> (if old.priority >= e.priority then old else e) :: rest
         | _ :: _ :: _, _ -> assert false)
       [] entries)

let build_entries tabs fields combos ~pattern_of_constraint =
  let ranked =
    List.map (fun (t : P4ir.Table.t) -> (entry_ranks t, List.length t.entries)) tabs
  in
  (* The merged priority encodes the per-table ranks lexicographically
     (earlier table = more significant digit), so the merged lookup
     resolves overlapping rows exactly as the sequential lookups did.
     Counting hits alone would tie two overlapping entries of a single
     original and leave the winner to the engine's tie-break. *)
  let priority_of picks =
    List.fold_left2
      (fun acc (ranks, size) pick ->
        let r = match pick with Miss -> 0 | Hit e -> List.assq e ranks in
        (acc * (size + 1)) + r)
      0 ranked picks
  in
  List.filter_map
    (fun picks ->
      if List.for_all (fun p -> p = Miss) picks then None
      else
        let init = List.map (fun _ -> None) fields in
        let constraints =
          List.fold_left2
            (fun acc tab pick ->
              match acc with None -> None | Some cs -> fold_constraints fields tab pick cs)
            (Some init) tabs picks
        in
        match constraints with
        | None -> None  (* conflicting constraints: unsatisfiable combo *)
        | Some cs ->
          let patterns = List.map2 pattern_of_constraint fields cs in
          Some (P4ir.Table.entry ~priority:(priority_of picks) patterns (fused_name tabs picks)))
    combos
  |> dedup_rows

let build_ternary ~name tabs =
  if not (mergeable tabs) then invalid_arg ("Merge.build_ternary: not mergeable: " ^ name);
  let fields = merged_key_fields tabs in
  let keys = List.map (fun f -> P4ir.Table.key f P4ir.Match_kind.Ternary) fields in
  let combos = cross (List.map (picks_per_table ~with_miss:true) tabs) in
  let entries =
    build_entries tabs fields combos ~pattern_of_constraint:(fun _field c ->
        match c with
        | Some tern -> tern
        | None -> P4ir.Pattern.wildcard P4ir.Match_kind.Ternary)
  in
  let actions = all_fused_actions tabs ~with_miss:true in
  let default = fused_name tabs (List.map (fun _ -> Miss) tabs) in
  P4ir.Table.make ~name ~keys ~actions ~default_action:default ~entries
    ~max_entries:(max 16 (List.length entries))
    ~role:(P4ir.Table.Merged (List.map (fun (t : P4ir.Table.t) -> t.name) tabs))
    ()

let common_key_compatible tabs =
  (* Exact keys only: under ternary/LPM the same packet can match
     *different* overlapping rows in different tables, so joining by
     identical pattern rows would not preserve semantics. *)
  match tabs with
  | [] | [ _ ] -> false
  | (first : P4ir.Table.t) :: rest ->
    List.for_all all_exact tabs
    && List.for_all (fun (t : P4ir.Table.t) -> t.keys = first.keys) rest

let build_common_key ~name tabs =
  if not (mergeable tabs) then
    invalid_arg ("Merge.build_common_key: not mergeable: " ^ name);
  if not (common_key_compatible tabs) then
    invalid_arg ("Merge.build_common_key: keys differ: " ^ name);
  let first = List.hd tabs in
  (* Distinct pattern rows appearing in any original, in first-seen
     order. *)
  let rows =
    List.fold_left
      (fun acc (t : P4ir.Table.t) ->
        List.fold_left
          (fun acc (e : P4ir.Table.entry) ->
            if List.exists (fun (p, _) -> p = e.patterns) acc then acc
            else (e.patterns, e.priority) :: acc)
          acc t.entries)
      [] tabs
    |> List.rev
  in
  (* For a given row, what each table does: its exact-matching entry's
     action, or its default. This is the original behaviour only when
     patterns coincide syntactically, which the same-key restriction plus
     exact row joining guarantees for the rows we materialize; all other
     values fall to the merged default. *)
  let picks_for patterns =
    List.map
      (fun (t : P4ir.Table.t) ->
        match List.find_opt (fun (e : P4ir.Table.entry) -> e.patterns = patterns) t.entries with
        | Some e -> Hit e
        | None -> Miss)
      tabs
  in
  let entries =
    List.map
      (fun (patterns, priority) ->
        P4ir.Table.entry ~priority patterns (fused_name tabs (picks_for patterns)))
      rows
  in
  let combos =
    List.sort_uniq compare (List.map (fun (patterns, _) -> picks_for patterns) rows)
  in
  let all_miss = List.map (fun _ -> Miss) tabs in
  let actions =
    List.fold_left
      (fun acc picks ->
        let a = fused_action tabs picks in
        if List.exists (fun (b : P4ir.Action.t) -> String.equal b.name a.name) acc then acc
        else a :: acc)
      [] (all_miss :: combos)
    |> List.rev
  in
  P4ir.Table.make ~name ~keys:first.keys ~actions
    ~default_action:(fused_name tabs all_miss)
    ~entries
    ~max_entries:(max 16 (List.length entries))
    ~role:(P4ir.Table.Merged (List.map (fun (t : P4ir.Table.t) -> t.name) tabs))
    ()

let build_fallback ~name tabs =
  if not (mergeable tabs) then invalid_arg ("Merge.build_fallback: not mergeable: " ^ name);
  if not (fallback_compatible tabs) then
    invalid_arg ("Merge.build_fallback: needs all-exact keys: " ^ name);
  let fields = merged_key_fields tabs in
  let keys = List.map (fun f -> P4ir.Table.key f P4ir.Match_kind.Exact) fields in
  let combos = cross (List.map (picks_per_table ~with_miss:false) tabs) in
  let entries =
    build_entries tabs fields combos ~pattern_of_constraint:(fun field c ->
        match c with
        | Some (P4ir.Pattern.Ternary (v, _)) -> P4ir.Pattern.Exact v
        | Some p -> p
        | None ->
          (* A merged key field not constrained by any hit entry: cannot
             represent in an exact key. *)
          invalid_arg
            (Printf.sprintf "Merge.build_fallback: field %s unconstrained"
               (P4ir.Field.to_string field)))
  in
  let actions = all_fused_actions tabs ~with_miss:false in
  let miss = P4ir.Action.nop "miss" in
  let capacity = max 16 (List.length entries) in
  P4ir.Table.make ~name ~keys
    ~actions:(actions @ [ miss ])
    ~default_action:"miss" ~entries ~max_entries:capacity
    ~role:
      (P4ir.Table.Cache
         { P4ir.Table.cached_tables = List.map (fun (t : P4ir.Table.t) -> t.name) tabs;
           capacity;
           insert_limit = 0.;
           auto_insert = false })
    ()
