type pipelet_candidates = {
  hot : Hotspot.hot;
  evaluated : Candidate.evaluated list;
}

type plan = {
  choices : (Hotspot.hot * Candidate.evaluated) list;
  group_choices : Group.evaluated list;
  predicted_gain : float;
  candidates_examined : int;
  solver_stats : Knapsack.stats option;
}

type eval_cache = {
  tbl : (string, Candidate.evaluated list) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
}

let create_cache () = { tbl = Hashtbl.create 64; hits = 0; misses = 0 }

let cache_stats c = (c.hits, c.misses)

(* Bound the warm cache; a controller that sees endlessly-churning
   profiles would otherwise grow it without limit. *)
let cache_capacity = 8192

let cache_store c key evaluated =
  if Hashtbl.length c.tbl >= cache_capacity then Hashtbl.reset c.tbl;
  Hashtbl.replace c.tbl key evaluated

type exclusion = string * Candidate.seg_kind

let kind_tag = function
  | Candidate.Cache_seg -> "c"
  | Candidate.Merge_ternary_seg -> "m"
  | Candidate.Merge_fallback_seg -> "f"

(* The exclusions that can affect this pipelet, rendered canonically.
   Appended to the warm-cache key so evaluations computed under one
   blacklist are never replayed under another; exclusions on unrelated
   tables leave the key — and thus the cached evaluations — untouched. *)
let exclusion_key exclusions (originals : P4ir.Table.t list) =
  match exclusions with
  | [] -> ""
  | _ ->
    let relevant =
      List.filter
        (fun (name, _) ->
          List.exists (fun (t : P4ir.Table.t) -> String.equal t.name name) originals)
        exclusions
    in
    if relevant = [] then ""
    else
      let rendered =
        List.sort_uniq compare
          (List.map (fun (name, kind) -> name ^ ":" ^ kind_tag kind) relevant)
      in
      "|x=" ^ String.concat ";" rendered

let combo_allowed exclusions (originals : P4ir.Table.t list) (combo : Candidate.combo) =
  match exclusions with
  | [] -> true
  | _ ->
    let names = Array.of_list (List.map (fun (t : P4ir.Table.t) -> t.name) originals) in
    let order = Array.of_list combo.order in
    not
      (List.exists
         (fun (s : Candidate.seg) ->
           let banned i =
             let name = names.(order.(i)) in
             List.exists
               (fun (n, k) -> k = s.kind && String.equal n name)
               exclusions
           in
           let rec any i = i < s.pos + s.len && (banned i || any (i + 1)) in
           any s.pos)
         combo.segs)

let evaluate_pipelet ?opts ?(exclusions = []) target prof ~reach_prob originals =
  let combos = Candidate.enumerate ?opts prof originals in
  let combos = List.filter (combo_allowed exclusions originals) combos in
  (* Analytic evaluation only: materializing candidate tables (cross
     products!) happens once, for the chosen combination. *)
  let ctx = Candidate.context ?opts target prof ~reach_prob originals in
  List.filter_map
    (fun combo ->
      match Candidate.evaluate_analytic ctx combo with
      | Some e when e.Candidate.gain > 0. -> Some e
      | _ -> None)
    combos

let cache_probe cache key =
  match (cache, key) with
  | Some c, Some k -> (
    match Hashtbl.find_opt c.tbl k with
    | Some ev ->
      c.hits <- c.hits + 1;
      Some ev
    | None ->
      c.misses <- c.misses + 1;
      None)
  | _ -> None

let local_optimize ?opts ?name_prefix ?cache ?signature ?(exclusions = []) target prof
    prog hots =
  ignore name_prefix;
  List.map
    (fun (hot : Hotspot.hot) ->
      let originals = Pipelet.tables prog hot.pipelet in
      let key =
        Option.map
          (fun sign -> sign hot originals ^ exclusion_key exclusions originals)
          signature
      in
      let evaluated =
        match cache_probe cache key with
        | Some ev -> ev
        | None ->
          let ev =
            evaluate_pipelet ?opts ~exclusions target prof ~reach_prob:hot.reach_prob
              originals
          in
          (match (cache, key) with
           | Some c, Some k -> cache_store c k ev
           | _ -> ());
          ev
      in
      { hot; evaluated })
    hots

let local_optimize_parallel ?opts ?name_prefix ?cache ?signature ?(exclusions = [])
    ?domains target prof prog hots =
  let hots_arr = Array.of_list hots in
  let n = Array.length hots_arr in
  let requested =
    match domains with Some d -> d | None -> Domain.recommended_domain_count ()
  in
  let ndom = max 1 (min requested n) in
  if ndom < 2 || n < 2 then
    local_optimize ?opts ?name_prefix ?cache ?signature ~exclusions target prof prog hots
  else begin
    ignore name_prefix;
    (* Pipelet table extraction and warm-cache probes stay on this
       domain: Hashtbl is not domain-safe. Only cache misses fan out. *)
    let originals_arr =
      Array.map (fun (h : Hotspot.hot) -> Pipelet.tables prog h.pipelet) hots_arr
    in
    let keys =
      Array.init n (fun i ->
          Option.map
            (fun sign ->
              sign hots_arr.(i) originals_arr.(i)
              ^ exclusion_key exclusions originals_arr.(i))
            signature)
    in
    let results = Array.make n None in
    let miss_idx = ref [] in
    for i = n - 1 downto 0 do
      match cache_probe cache keys.(i) with
      | Some ev -> results.(i) <- Some ev
      | None -> miss_idx := i :: !miss_idx
    done;
    let misses = Array.of_list !miss_idx in
    let nmiss = Array.length misses in
    (* Evaluation is pure over immutable inputs (profile, program,
       target) and allocates its own scratch context per pipelet, so
       each domain computes exactly what the sequential path would.
       Strided assignment; every result lands in its own slot, and the
       final list is rebuilt in pipelet order — bit-identical plans. *)
    let worker d () =
      let j = ref d in
      while !j < nmiss do
        let i = misses.(!j) in
        results.(i) <-
          Some
            (evaluate_pipelet ?opts ~exclusions target prof
               ~reach_prob:hots_arr.(i).reach_prob originals_arr.(i));
        j := !j + ndom
      done
    in
    let spawned = Array.init (ndom - 1) (fun d -> Domain.spawn (worker (d + 1))) in
    worker 0 ();
    Array.iter Domain.join spawned;
    Array.iter
      (fun i ->
        match (cache, keys.(i), results.(i)) with
        | Some c, Some k, Some ev -> cache_store c k ev
        | _ -> ())
      misses;
    List.init n (fun i ->
        { hot = hots_arr.(i);
          evaluated = (match results.(i) with Some ev -> ev | None -> []) })
  end

let global_optimize ?(use_greedy = false) ~budget ~headroom_mem ~headroom_upd candidates =
  let groups =
    List.map
      (fun pc ->
        List.mapi
          (fun i (e : Candidate.evaluated) ->
            { Knapsack.gain = e.gain; mem = e.mem_delta; upd = e.update_delta; tag = i })
          pc.evaluated)
      candidates
  in
  ignore budget;
  let solution, solver_stats =
    if use_greedy then
      (Knapsack.greedy ~groups ~mem_budget:headroom_mem ~upd_budget:headroom_upd, None)
    else
      let sol, stats =
        Knapsack.solve_stats ~groups ~mem_budget:headroom_mem ~upd_budget:headroom_upd ()
      in
      (sol, Some stats)
  in
  let arr = Array.of_list candidates in
  let ev_arrays = Array.map (fun pc -> Array.of_list pc.evaluated) arr in
  let choices =
    List.filter_map
      (fun (gi, tag) ->
        if gi >= 0 && gi < Array.length arr && tag >= 0 && tag < Array.length ev_arrays.(gi)
        then Some (arr.(gi).hot, ev_arrays.(gi).(tag))
        else None)
      solution.Knapsack.picks
  in
  { choices;
    group_choices = [];
    predicted_gain = solution.Knapsack.total_gain;
    candidates_examined =
      List.fold_left (fun acc pc -> acc + List.length pc.evaluated) 0 candidates;
    solver_stats }

let with_groups ?opts ?(name_prefix = "__opt") target prof prog ~candidates ~chosen =
  let cache_opts = match opts with Some o -> o | None -> Candidate.default_options in
  let groups = Group.detect prog ~candidates in
  let counter = ref 0 in
  (* A group cache competes with its members' individual choices: adopt
     it only when it beats their combined gain, and drop those choices
     (the group cache covers the members end to end). *)
  let choices = ref chosen.choices in
  let group_choices =
    List.filter_map
      (fun g ->
        incr counter;
        let name = Printf.sprintf "%s_group%d_%d" name_prefix g.Group.branch !counter in
        match
          Group.build_cache ~capacity:cache_opts.Candidate.cache_capacity
            ~insert_limit:cache_opts.Candidate.cache_insert_limit ~name prog g
        with
        | None -> None
        | Some cache ->
          let e = Group.evaluate target prof prog g ~cache in
          let member_set = Hashtbl.create 16 in
          List.iter
            (fun (p : Pipelet.t) -> Hashtbl.replace member_set p.Pipelet.entry ())
            g.Group.members;
          let member_choices, others =
            List.partition
              (fun ((hot : Hotspot.hot), _) ->
                Hashtbl.mem member_set hot.pipelet.Pipelet.entry)
              !choices
          in
          let member_gain =
            List.fold_left
              (fun acc (_, (ev : Candidate.evaluated)) -> acc +. ev.gain)
              0. member_choices
          in
          if e.Group.gain > member_gain && e.Group.gain > 0. then begin
            choices := others;
            Some e
          end
          else None)
      groups
  in
  { chosen with
    choices = !choices;
    group_choices;
    predicted_gain =
      List.fold_left
        (fun acc (_, (ev : Candidate.evaluated)) -> acc +. ev.gain)
        0. !choices
      +. List.fold_left (fun acc (e : Group.evaluated) -> acc +. e.gain) 0. group_choices }
