(** Group knapsack over two resource dimensions (Appendix A.1).

    Each group (pipelet) offers options with a gain and a 2-D cost
    (memory bytes, entry updates/sec); pick at most one option per group
    maximizing total gain within both budgets. Costs are discretized
    onto a DP grid; negative costs (an optimization that *frees*
    resources) are clamped to zero, which is conservative. *)

type option_item = { gain : float; mem : int; upd : float; tag : int }
(** [tag] identifies the option within its group. *)

type solution = { total_gain : float; picks : (int * int) list }
(** [(group_index, tag)] for every group that got an option. *)

type stats = {
  options_before : int;  (** options handed in across all groups *)
  options_after : int;  (** options surviving budget + dominance pruning *)
  dp_cells : int;  (** DP cells touched (layer copies + option sweeps) *)
}

val solve_stats :
  ?mem_buckets:int ->
  ?upd_buckets:int ->
  ?prune:bool ->
  groups:option_item list list ->
  mem_budget:int ->
  upd_budget:float ->
  unit ->
  solution * stats
(** Dynamic program over at most [mem_buckets x upd_buckets] (default
    64 x 32) states. Options whose (clamped) cost exceeds a budget are
    skipped. Bucket rounding is upward, so the solution never overruns
    budgets. [prune] (default true) drops per-group options dominated in
    (gain, bucketed mem, bucketed upd); the total gain is bit-identical
    with or without pruning (tie-broken picks may differ between
    gain-equal options). The DP only materializes cells reachable given
    the cumulative per-group max cost, skipping empty groups. *)

val solve :
  ?mem_buckets:int ->
  ?upd_buckets:int ->
  groups:option_item list list ->
  mem_budget:int ->
  upd_budget:float ->
  unit ->
  solution
(** [solve_stats] with pruning on, discarding the stats. *)

val greedy :
  groups:option_item list list -> mem_budget:int -> upd_budget:float -> solution
(** Density-greedy baseline (gain per normalized cost); used by the
    ablation bench to show where the DP wins. *)
