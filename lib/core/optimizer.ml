type config = {
  top_k : float;
  budget : Costmodel.Resource.budget;
  candidate_opts : Candidate.options;
  max_pipelet_len : int;
  enable_groups : bool;
  use_greedy_global : bool;
  use_parallel : bool;
}

let default_config =
  { top_k = 0.2;
    budget = Costmodel.Resource.default_budget;
    candidate_opts = Candidate.default_options;
    max_pipelet_len = 8;
    enable_groups = true;
    use_greedy_global = false;
    use_parallel = false }

type warm = {
  warm_cache : Search.eval_cache;
  warm_signature : Profile.t -> Hotspot.hot -> P4ir.Table.t list -> string;
}

type result = {
  program : P4ir.Program.t;
  plan : Search.plan;
  pipelets_total : int;
  pipelets_considered : int;
  cache_hits : int;
  cache_misses : int;
  search_seconds : float;
  elapsed_seconds : float;
}

let optimize ?(config = default_config) ?(generation = 0) ?warm ?(exclusions = [])
    ?telemetry target prof prog =
  let t0 = Sys.time () in
  let pipelets = Pipelet.form ~max_len:config.max_pipelet_len prog in
  let hots = Hotspot.rank target prof prog pipelets in
  let top = Hotspot.top_k ~fraction:config.top_k hots in
  let name_prefix = Printf.sprintf "__g%d" generation in
  let cache = Option.map (fun w -> w.warm_cache) warm in
  let signature = Option.map (fun w -> w.warm_signature prof) warm in
  let cache_before =
    match cache with Some c -> Search.cache_stats c | None -> (0, 0)
  in
  let candidates =
    if config.use_parallel then
      Search.local_optimize_parallel ~opts:config.candidate_opts ~name_prefix ?cache
        ?signature ~exclusions target prof prog top
    else
      Search.local_optimize ~opts:config.candidate_opts ~name_prefix ?cache ?signature
        ~exclusions target prof prog top
  in
  let cache_hits, cache_misses =
    match cache with
    | Some c ->
      let hits, misses = Search.cache_stats c in
      (hits - fst cache_before, misses - snd cache_before)
    | None -> (0, 0)
  in
  let headroom_mem =
    max 0 (config.budget.memory_bytes - Costmodel.Resource.program_memory target prog)
  in
  let headroom_upd =
    Float.max 0.
      (config.budget.updates_per_sec -. Costmodel.Resource.program_update_rate prof prog)
  in
  let plan =
    Search.global_optimize ~use_greedy:config.use_greedy_global ~budget:config.budget
      ~headroom_mem ~headroom_upd candidates
  in
  let plan =
    if config.enable_groups then
      Search.with_groups ~opts:config.candidate_opts ~name_prefix target prof prog
        ~candidates:(List.map (fun (h : Hotspot.hot) -> h.pipelet) top)
        ~chosen:plan
    else plan
  in
  let t_search = Sys.time () -. t0 in
  (* Apply upstream pipelets first: a pipelet's recorded exit may be the
     entry of a downstream chosen pipelet, which disappears when that
     pipelet is itself rewritten. *)
  let topo_index =
    let order = P4ir.Program.topological_order prog in
    let tbl = Hashtbl.create 64 in
    List.iteri (fun i id -> if not (Hashtbl.mem tbl id) then Hashtbl.add tbl id i) order;
    fun id -> match Hashtbl.find_opt tbl id with Some i -> i | None -> max_int
  in
  let ordered_choices =
    List.stable_sort
      (fun ((a : Hotspot.hot), _) ((b : Hotspot.hot), _) ->
        compare (topo_index a.pipelet.Pipelet.entry) (topo_index b.pipelet.Pipelet.entry))
      plan.choices
  in
  (* Group caches go in before the per-pipelet rewrites: a group's
     recorded [common_exit] is the entry of the pipelet just past the
     join, and that node disappears when the pipelet is itself rewritten.
     Group application only adds a node and redirects edges, so every id
     the pipelet rewrites rely on stays valid, and each later rewrite's
     redirect fixes up the cache's hit edges in turn. *)
  let optimized, group_applied =
    List.fold_left
      (fun (prog, applied) (ge : Group.evaluated) ->
        match Group.apply prog ge.group ~cache:ge.cache with
        | prog -> (prog, ge :: applied)
        | exception Invalid_argument _ -> (prog, applied))
      (prog, []) plan.group_choices
  in
  (* Materialize only the chosen combinations. Realization can still
     fail on pathological entry sets the analytic guards admitted; such a
     choice is simply skipped. *)
  let optimized, applied =
    List.fold_left
      (fun (prog, applied) ((hot : Hotspot.hot), (e : Candidate.evaluated)) ->
        let originals = Pipelet.tables prog hot.pipelet in
        let prefix = Printf.sprintf "%s_p%d" name_prefix hot.pipelet.Pipelet.entry in
        match
          Candidate.realize ~opts:config.candidate_opts ~name_prefix:prefix originals
            e.combo
        with
        | Some elements -> (
          match Transform.apply prog hot.pipelet elements with
          | prog -> (prog, (hot, e) :: applied)
          | exception Invalid_argument _ -> (prog, applied))
        | None | (exception Invalid_argument _) -> (prog, applied))
      (optimized, []) ordered_choices
  in
  let plan =
    { plan with
      Search.choices = List.rev applied;
      group_choices = List.rev group_applied }
  in
  (match telemetry with
   | Some tel when Telemetry.enabled tel ->
     let m = Telemetry.metrics tel in
     Telemetry.Metrics.inc (Telemetry.Metrics.counter m "optimizer.runs");
     Telemetry.Metrics.inc ~by:plan.Search.candidates_examined
       (Telemetry.Metrics.counter m "optimizer.candidates_examined");
     Telemetry.Metrics.inc ~by:cache_hits
       (Telemetry.Metrics.counter m "optimizer.cache.hit");
     Telemetry.Metrics.inc ~by:cache_misses
       (Telemetry.Metrics.counter m "optimizer.cache.miss");
     Telemetry.Metrics.set
       (Telemetry.Metrics.gauge m "optimizer.predicted_gain")
       plan.Search.predicted_gain;
     Telemetry.Histogram.record
       (Telemetry.Metrics.histogram m "optimizer.search_seconds")
       t_search;
     (match plan.Search.solver_stats with
      | Some (s : Knapsack.stats) ->
        Telemetry.Metrics.inc ~by:s.options_before
          (Telemetry.Metrics.counter m "optimizer.knapsack.options_before");
        Telemetry.Metrics.inc ~by:s.options_after
          (Telemetry.Metrics.counter m "optimizer.knapsack.options_after");
        Telemetry.Metrics.inc ~by:s.dp_cells
          (Telemetry.Metrics.counter m "optimizer.knapsack.dp_cells")
      | None -> ())
   | _ -> ());
  { program = optimized;
    plan;
    pipelets_total = List.length pipelets;
    pipelets_considered = List.length top;
    cache_hits;
    cache_misses;
    search_seconds = t_search;
    elapsed_seconds = Sys.time () -. t0 }

let describe r =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "pipelets=%d considered=%d gain=%.3f time=%.3fs\n" r.pipelets_total
       r.pipelets_considered r.plan.Search.predicted_gain r.elapsed_seconds);
  (match r.plan.Search.solver_stats with
   | Some (s : Knapsack.stats) ->
     Buffer.add_string buf
       (Printf.sprintf "  knapsack: options=%d pruned-to=%d dp-cells=%d\n"
          s.options_before s.options_after s.dp_cells)
   | None -> ());
  if r.cache_hits + r.cache_misses > 0 then
    Buffer.add_string buf
      (Printf.sprintf "  warm-cache: hits=%d misses=%d (%.0f%% hit rate)\n" r.cache_hits
         r.cache_misses
         (100. *. float_of_int r.cache_hits
         /. float_of_int (r.cache_hits + r.cache_misses)));
  List.iter
    (fun ((hot : Hotspot.hot), (e : Candidate.evaluated)) ->
      let kind_of = function
        | Candidate.Cache_seg -> "cache"
        | Candidate.Merge_ternary_seg -> "merge"
        | Candidate.Merge_fallback_seg -> "merge-fallback"
      in
      let segs =
        String.concat ","
          (List.map
             (fun (s : Candidate.seg) ->
               Printf.sprintf "%s[%d..%d]" (kind_of s.kind) s.pos (s.pos + s.len - 1))
             e.combo.Candidate.segs)
      in
      let reordered = e.combo.Candidate.order <> List.init (List.length e.combo.Candidate.order) Fun.id in
      Buffer.add_string buf
        (Printf.sprintf "  pipelet@%d: gain=%.3f mem=%+d upd=%+.1f %s%s\n"
           hot.pipelet.Pipelet.entry e.gain e.mem_delta e.update_delta
           (if segs = "" then "reorder-only" else segs)
           (if reordered then " (reordered)" else "")))
    r.plan.Search.choices;
  List.iter
    (fun (ge : Group.evaluated) ->
      Buffer.add_string buf
        (Printf.sprintf "  group@%d: cache=%s gain=%.3f\n" ge.group.Group.branch
           ge.cache.P4ir.Table.name ge.gain))
    r.plan.Search.group_choices;
  Buffer.contents buf
