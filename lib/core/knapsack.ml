type option_item = { gain : float; mem : int; upd : float; tag : int }

type solution = { total_gain : float; picks : (int * int) list }

type stats = { options_before : int; options_after : int; dp_cells : int }

let solve_stats ?(mem_buckets = 64) ?(upd_buckets = 32) ?(prune = true) ~groups
    ~mem_budget ~upd_budget () =
  let nm = max 1 mem_buckets in
  let nu = max 1 upd_buckets in
  let mem_unit = Float.max 1. (float_of_int mem_budget /. float_of_int nm) in
  let upd_unit = Float.max 1e-9 (upd_budget /. float_of_int nu) in
  let bucket_mem m = int_of_float (ceil (float_of_int (max 0 m) /. mem_unit)) in
  let bucket_upd u = int_of_float (ceil (Float.max 0. u /. upd_unit)) in
  let options_before = List.fold_left (fun acc g -> acc + List.length g) 0 groups in
  (* Pre-bucket each option once and drop the ones the DP could never
     pick: non-positive gain, or a bucketed cost beyond a whole budget.
     With [prune], also drop options dominated within their group:
     B dominates A when B is no worse in gain and both costs, and is
     either strictly better in one dimension or earlier in the list
     (the latter removes exact duplicates while keeping the first).
     Since the DP layer value is monotone in remaining budget, a
     dominator's candidate value is >= the dominated option's at every
     cell, so the optimal total gain is preserved bit-for-bit. *)
  let kept_groups =
    List.map
      (fun options ->
        let usable =
          List.filter_map
            (fun o ->
              if o.gain <= 0. then None
              else
                let cm = bucket_mem o.mem in
                let cu = bucket_upd o.upd in
                if cm > nm || cu > nu then None else Some (o, cm, cu))
            options
        in
        if not prune then usable
        else
          let arr = Array.of_list usable in
          let dominated i (a, acm, acu) =
            let found = ref false in
            Array.iteri
              (fun j (b, bcm, bcu) ->
                if (not !found) && j <> i then
                  if
                    b.gain >= a.gain && bcm <= acm && bcu <= acu
                    && (b.gain > a.gain || bcm < acm || bcu < acu || j < i)
                  then found := true)
              arr;
            !found
          in
          List.filteri (fun i o -> not (dominated i o)) usable)
      groups
  in
  let options_after = List.fold_left (fun acc g -> acc + List.length g) 0 kept_groups in
  (* dp.(m).(u) = best gain using at most m memory units and u update
     units; picks tracked alongside. Each layer reads only the previous
     groups' layer, so each group contributes at most one option. The
     computed region grows with the cumulative per-group max cost: any
     cell beyond the caps equals the cap cell (no pick set can cost
     more), so reads clamp instead of materializing the full grid. *)
  let mcap = ref 0 in
  let ucap = ref 0 in
  let dp = ref (Array.make_matrix 1 1 0.) in
  let picks = ref (Array.make_matrix 1 1 ([] : (int * int) list)) in
  let dp_cells = ref 0 in
  List.iteri
    (fun gi kept ->
      match kept with
      | [] -> () (* empty layer: dp unchanged, skip the copy entirely *)
      | _ ->
        let gmax_cm = List.fold_left (fun a (_, cm, _) -> max a cm) 0 kept in
        let gmax_cu = List.fold_left (fun a (_, _, cu) -> max a cu) 0 kept in
        let mcap' = min nm (!mcap + gmax_cm) in
        let ucap' = min nu (!ucap + gmax_cu) in
        let pm = !mcap and pu = !ucap in
        let prev_dp = !dp and prev_picks = !picks in
        let next_dp =
          Array.init (mcap' + 1) (fun m ->
              Array.init (ucap' + 1) (fun u -> prev_dp.(min m pm).(min u pu)))
        in
        let next_picks =
          Array.init (mcap' + 1) (fun m ->
              Array.init (ucap' + 1) (fun u -> prev_picks.(min m pm).(min u pu)))
        in
        dp_cells := !dp_cells + ((mcap' + 1) * (ucap' + 1));
        List.iter
          (fun (o, cm, cu) ->
            for m = cm to mcap' do
              for u = cu to ucap' do
                let candidate = prev_dp.(min (m - cm) pm).(min (u - cu) pu) +. o.gain in
                if candidate > next_dp.(m).(u) then begin
                  next_dp.(m).(u) <- candidate;
                  next_picks.(m).(u) <-
                    (gi, o.tag) :: prev_picks.(min (m - cm) pm).(min (u - cu) pu)
                end
              done
            done;
            dp_cells := !dp_cells + ((mcap' - cm + 1) * (ucap' - cu + 1)))
          kept;
        dp := next_dp;
        picks := next_picks;
        mcap := mcap';
        ucap := ucap')
    kept_groups;
  let fm = min nm !mcap and fu = min nu !ucap in
  ( { total_gain = (!dp).(fm).(fu); picks = List.rev (!picks).(fm).(fu) },
    { options_before; options_after; dp_cells = !dp_cells } )

let solve ?mem_buckets ?upd_buckets ~groups ~mem_budget ~upd_budget () =
  fst (solve_stats ?mem_buckets ?upd_buckets ~groups ~mem_budget ~upd_budget ())

let greedy ~groups ~mem_budget ~upd_budget =
  (* Per group keep the best-density option, then take groups in density
     order while budgets last. *)
  let density o =
    let mem_frac = float_of_int (max 0 o.mem) /. Float.max 1. (float_of_int mem_budget) in
    let upd_frac = Float.max 0. o.upd /. Float.max 1e-9 upd_budget in
    o.gain /. Float.max 1e-9 (mem_frac +. upd_frac)
  in
  let best_per_group =
    List.mapi
      (fun gi options ->
        let best =
          List.fold_left
            (fun acc o ->
              if o.gain <= 0. then acc
              else
                match acc with
                | Some b when density b >= density o -> acc
                | _ -> Some o)
            None options
        in
        (gi, best))
      groups
    |> List.filter_map (fun (gi, o) -> Option.map (fun o -> (gi, o)) o)
  in
  let sorted =
    List.stable_sort (fun (_, a) (_, b) -> compare (density b) (density a)) best_per_group
  in
  let _, _, gain, picks =
    List.fold_left
      (fun (mem_left, upd_left, gain, picks) (gi, o) ->
        if o.mem <= mem_left && o.upd <= upd_left then
          (mem_left - max 0 o.mem, upd_left -. Float.max 0. o.upd, gain +. o.gain,
           (gi, o.tag) :: picks)
        else (mem_left, upd_left, gain, picks))
      (mem_budget, upd_budget, 0., [])
      sorted
  in
  { total_gain = gain; picks = List.rev picks }
