type element =
  | Plain of P4ir.Table.t
  | Cached of { cache : P4ir.Table.t; originals : P4ir.Table.t list }
  | Merged_plain of { merged : P4ir.Table.t; originals : P4ir.Table.t list }
  | Merged_fallback of { merged : P4ir.Table.t; originals : P4ir.Table.t list }

let element_tables = function
  | Plain t -> [ t ]
  | Merged_plain { merged; _ } -> [ merged ]
  | Cached { cache; originals } -> cache :: originals
  | Merged_fallback { merged; originals } -> merged :: originals

(* Add one element to [prog] such that it flows into [next]; returns the
   element's entry node id. *)
let add_element prog element ~next =
  match element with
  | Plain tab | Merged_plain { merged = tab; _ } ->
    P4ir.Program.add_node prog (P4ir.Program.Table (tab, P4ir.Program.Uniform next))
  | Cached { cache; originals } | Merged_fallback { merged = cache; originals } ->
    let prog, first_original =
      List.fold_left
        (fun (prog, follow) tab ->
          let prog, id =
            P4ir.Program.add_node prog (P4ir.Program.Table (tab, P4ir.Program.Uniform follow))
          in
          (prog, Some id))
        (prog, next) (List.rev originals)
    in
    (* Hit actions jump straight to [next]; the default (miss) action
       falls through to the first original table. *)
    let branches =
      List.map
        (fun (a : P4ir.Action.t) ->
          if String.equal a.name cache.P4ir.Table.default_action then (a.name, first_original)
          else (a.name, next))
        cache.P4ir.Table.actions
    in
    P4ir.Program.add_node prog (P4ir.Program.Table (cache, P4ir.Program.Per_action branches))

let build_sequence prog elements ~exit =
  match elements with
  | [] -> invalid_arg "Transform: empty element list"
  | _ ->
    List.fold_left
      (fun (prog, next) element ->
        let prog, id = add_element prog element ~next in
        (prog, Some id))
      (prog, exit) (List.rev elements)

let chain_program name elements =
  let prog, entry = build_sequence (P4ir.Program.empty name) elements ~exit:None in
  let prog = P4ir.Program.with_root prog entry in
  P4ir.Program.validate_exn prog;
  prog

(* A switch-case pipelet is a single [Per_action] table: its exit is not
   one node, so the generic [build_sequence ~exit] wiring (which would
   send every path to [p.exit = None], severing the branches) cannot be
   used. Rebuild the branching explicitly — the original table keeps its
   per-action successors on the miss path, and each cache hit action
   jumps exactly where the original action would have gone. *)
let apply_switch_case prog (p : Pipelet.t) elements =
  let branches =
    match P4ir.Program.find_exn prog p.entry with
    | P4ir.Program.Table (_, P4ir.Program.Per_action bs) -> bs
    | _ -> invalid_arg "Transform.apply: switch-case pipelet is not Per_action"
  in
  match elements with
  | [ Cached { cache; originals = [ orig ] } ] ->
    let prog, orig_id =
      P4ir.Program.add_node prog
        (P4ir.Program.Table (orig, P4ir.Program.Per_action branches))
    in
    let hit_target (a : P4ir.Action.t) =
      (* Fused names over a single original are [table:action]; route the
         hit to the branch the underlying action selects. *)
      match Profile.Counter_map.split_fused a.name with
      | [ (_, aname) ] -> (
        match List.assoc_opt aname branches with
        | Some next -> next
        | None ->
          invalid_arg
            ("Transform.apply: cache action has no branch: " ^ a.name))
      | _ -> invalid_arg ("Transform.apply: unexpected fused action: " ^ a.name)
    in
    let cache_branches =
      List.map
        (fun (a : P4ir.Action.t) ->
          if String.equal a.name cache.P4ir.Table.default_action then
            (a.name, Some orig_id)
          else (a.name, hit_target a))
        cache.P4ir.Table.actions
    in
    let prog, cache_id =
      P4ir.Program.add_node prog
        (P4ir.Program.Table (cache, P4ir.Program.Per_action cache_branches))
    in
    (prog, cache_id)
  | _ -> invalid_arg "Transform.apply: switch-case pipelet admits only a single cache"

let apply prog (p : Pipelet.t) elements =
  let prog, entry_id =
    if p.is_switch_case then apply_switch_case prog p elements
    else begin
      let prog, entry = build_sequence prog elements ~exit:p.exit in
      match entry with Some id -> (prog, id) | None -> assert false
    end
  in
  let prog = P4ir.Program.redirect prog ~old_target:p.entry ~new_target:(Some entry_id) in
  let prog = List.fold_left P4ir.Program.remove_node prog p.table_ids in
  (match P4ir.Program.validate prog with
   | Ok () -> ()
   | Error msg -> invalid_arg ("Transform.apply produced invalid program: " ^ msg));
  prog
