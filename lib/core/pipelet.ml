type t = {
  entry : P4ir.Program.node_id;
  table_ids : P4ir.Program.node_id list;
  exit : P4ir.Program.next;
  is_switch_case : bool;
}

let length p = List.length p.table_ids

let tables prog p =
  List.map
    (fun id ->
      match P4ir.Program.table_of prog id with
      | Some tab -> tab
      | None -> invalid_arg "Pipelet.tables: node is not a table")
    p.table_ids

let split_run max_len run exit prog =
  (* Split an over-long run into consecutive pipelets of at most
     [max_len] tables. *)
  let rec chunks acc current n = function
    | [] -> List.rev (if current = [] then acc else List.rev current :: acc)
    | id :: rest ->
      if n = max_len then chunks (List.rev current :: acc) [ id ] 1 rest
      else chunks acc (id :: current) (n + 1) rest
  in
  let groups = chunks [] [] 0 run in
  let rec build = function
    | [] -> []
    | [ last ] ->
      [ { entry = List.hd last; table_ids = last; exit; is_switch_case = false } ]
    | g :: (next_g :: _ as rest) ->
      { entry = List.hd g;
        table_ids = g;
        exit = Some (List.hd next_g);
        is_switch_case = false }
      :: build rest
  in
  ignore prog;
  build groups

let form ?(max_len = 8) prog =
  let reachable = P4ir.Program.reachable prog in
  (* Multi-predecessor nodes are join points: a run cannot flow through
     them, they must start a new pipelet. *)
  let pred_count = Hashtbl.create 16 in
  List.iter
    (fun id ->
      Hashtbl.replace pred_count id (List.length (P4ir.Program.predecessors prog id)))
    reachable;
  let is_join id = match Hashtbl.find_opt pred_count id with Some n -> n > 1 | None -> false in
  let visited = Hashtbl.create 16 in
  let pipelets = ref [] in
  let rec walk_run acc id =
    (* Extend the current run from node [id] (a Uniform table already
       checked unvisited). *)
    Hashtbl.replace visited id ();
    match P4ir.Program.find_exn prog id with
    | P4ir.Program.Table (_, P4ir.Program.Uniform next) -> (
      match next with
      | Some nid when not (Hashtbl.mem visited nid) && not (is_join nid) -> (
        match P4ir.Program.find_exn prog nid with
        | P4ir.Program.Table (_, P4ir.Program.Uniform _) -> walk_run (id :: acc) nid
        | _ -> (List.rev (id :: acc), next))
      | _ -> (List.rev (id :: acc), next))
    | _ -> (List.rev (id :: acc), None)
  in
  let start id =
    if not (Hashtbl.mem visited id) then
      match P4ir.Program.find_exn prog id with
      | P4ir.Program.Cond _ -> Hashtbl.replace visited id ()
      | P4ir.Program.Table (_, P4ir.Program.Per_action _) ->
        Hashtbl.replace visited id ();
        pipelets :=
          { entry = id; table_ids = [ id ]; exit = None; is_switch_case = true }
          :: !pipelets
      | P4ir.Program.Table (_, P4ir.Program.Uniform _) ->
        let run, exit = walk_run [] id in
        (* Prepend reversed so the final List.rev restores global order. *)
        pipelets := List.rev_append (split_run max_len run exit prog) !pipelets
  in
  (* Topological order guarantees a run's head is visited before its
     interior nodes are offered as starts. *)
  let reach_set = Hashtbl.create 64 in
  List.iter (fun id -> Hashtbl.replace reach_set id ()) reachable;
  List.iter start
    (P4ir.Program.topological_order prog
    |> List.filter (fun id -> Hashtbl.mem reach_set id));
  List.rev !pipelets

let pp fmt p =
  Format.fprintf fmt "pipelet{entry=%d tables=[%s] exit=%s%s}" p.entry
    (String.concat ";" (List.map string_of_int p.table_ids))
    (match p.exit with None -> "sink" | Some id -> string_of_int id)
    (if p.is_switch_case then " switch" else "")
