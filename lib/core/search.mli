(** The best-optimization search (§4.2, Appendix A.1): local candidate
    enumeration per hot pipelet, then a global group-knapsack pick under
    the memory / update-rate budgets. *)

type pipelet_candidates = {
  hot : Hotspot.hot;
  evaluated : Candidate.evaluated list;  (** positive-gain candidates *)
}

type plan = {
  choices : (Hotspot.hot * Candidate.evaluated) list;
  group_choices : Group.evaluated list;
  predicted_gain : float;
  candidates_examined : int;
  solver_stats : Knapsack.stats option;
      (** knapsack pruning / DP-work stats; [None] for the greedy path *)
}

type eval_cache
(** Warm-start cache mapping a pipelet signature (see
    {!Runtime.Incremental.pipelet_signature}) to its evaluated candidate
    list. Owned by a long-lived controller and passed into successive
    optimization rounds; unchanged-profile pipelets skip re-enumeration.
    Not domain-safe: probe/store only from the calling domain (the
    parallel path does). Bounded; resets wholesale when full. *)

val create_cache : unit -> eval_cache

val cache_stats : eval_cache -> int * int
(** [(hits, misses)] accumulated over the cache's lifetime. *)

type exclusion = string * Candidate.seg_kind
(** Ban one transformation kind on one (original) table: any combination
    with a segment of that kind covering that table is discarded before
    evaluation. This is how the runtime's remediation reverses a bad
    optimization — a cold cache or a blown-up merge gets its kind
    blacklisted, and the next search round routes around it. *)

val local_optimize :
  ?opts:Candidate.options ->
  ?name_prefix:string ->
  ?cache:eval_cache ->
  ?signature:(Hotspot.hot -> P4ir.Table.t list -> string) ->
  ?exclusions:exclusion list ->
  Costmodel.Target.t ->
  Profile.t ->
  P4ir.Program.t ->
  Hotspot.hot list ->
  pipelet_candidates list
(** LocalOptimize: enumerate and analytically evaluate every valid
    combination for each pipelet. When both [cache] and [signature] are
    given, each pipelet's evaluated list is reused from the cache when
    its signature matches a previous round. [exclusions] filter the
    candidate set; the exclusions that touch a pipelet's tables are
    folded into its cache key, so a warm cache never replays evaluations
    computed under a different blacklist. *)

val local_optimize_parallel :
  ?opts:Candidate.options ->
  ?name_prefix:string ->
  ?cache:eval_cache ->
  ?signature:(Hotspot.hot -> P4ir.Table.t list -> string) ->
  ?exclusions:exclusion list ->
  ?domains:int ->
  Costmodel.Target.t ->
  Profile.t ->
  P4ir.Program.t ->
  Hotspot.hot list ->
  pipelet_candidates list
(** [local_optimize] fanned out across OCaml 5 domains, one stride per
    domain over the cache-miss pipelets. Evaluation is pure and RNG-free
    and results are merged in pipelet order, so the output is
    bit-identical to the sequential path. [domains] defaults to
    [Domain.recommended_domain_count ()]; with one domain or fewer than
    two pipelets it falls back to [local_optimize]. *)

val global_optimize :
  ?use_greedy:bool ->
  budget:Costmodel.Resource.budget ->
  headroom_mem:int ->
  headroom_upd:float ->
  pipelet_candidates list ->
  plan
(** GlobalOptimize: group knapsack over the pipelets' candidate lists.
    [headroom_*] are the budget remainders after the current program's
    own consumption. [use_greedy] switches to the density heuristic
    (ablation). *)

val with_groups :
  ?opts:Candidate.options ->
  ?name_prefix:string ->
  Costmodel.Target.t ->
  Profile.t ->
  P4ir.Program.t ->
  candidates:Pipelet.t list ->
  chosen:plan ->
  plan
(** Cross-pipelet pass: detect groups among the candidate pipelets that
    the per-pipelet plan left untouched and add group caches when they
    beat the sum of the members' individual choices. *)
