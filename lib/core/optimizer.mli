(** The Pipeleon optimizer driver: pipelet formation, hot detection,
    local + global search, and program rewriting (Fig. 3 workflow). *)

type config = {
  top_k : float;  (** fraction of pipelets optimized; 1.0 = ESearch *)
  budget : Costmodel.Resource.budget;
  candidate_opts : Candidate.options;
  max_pipelet_len : int;
  enable_groups : bool;  (** cross-pipelet group caching (§5.4.4) *)
  use_greedy_global : bool;  (** ablation: greedy instead of knapsack *)
  use_parallel : bool;
      (** evaluate hot pipelets across OCaml 5 domains
          ({!Search.local_optimize_parallel}); plans are bit-identical to
          the sequential path *)
}

val default_config : config
(** top 20%, default budget, groups on, knapsack global search,
    sequential local search. *)

type warm = {
  warm_cache : Search.eval_cache;
  warm_signature : Profile.t -> Hotspot.hot -> P4ir.Table.t list -> string;
}
(** Warm-start state for successive generations: a persistent evaluation
    cache plus the signature keying it (normally
    [Runtime.Incremental.pipelet_signature]). *)

type result = {
  program : P4ir.Program.t;  (** the rewritten program *)
  plan : Search.plan;
  pipelets_total : int;
  pipelets_considered : int;
  cache_hits : int;
      (** warm-start evaluation-cache hits during this round (0 without
          [warm]) *)
  cache_misses : int;
  search_seconds : float;
      (** CPU time of the optimization search itself (the paper's Fig. 13
          "computation time") *)
  elapsed_seconds : float;  (** search plus plan realization/rewriting *)
}

val optimize :
  ?config:config ->
  ?generation:int ->
  ?warm:warm ->
  ?exclusions:Search.exclusion list ->
  ?telemetry:Telemetry.t ->
  Costmodel.Target.t ->
  Profile.t ->
  P4ir.Program.t ->
  result
(** One optimization round. [generation] disambiguates generated table
    names across successive runtime rounds. [warm] lets a long-lived
    controller reuse candidate evaluations for pipelets whose signature
    (tables + bucketed profile) is unchanged since a previous round.
    [exclusions] blacklist transformation kinds per original table
    ({!Search.exclusion}) — the runtime controller's remediation path
    uses them to reverse underperforming caches and blown-up merges; they
    compose with [warm] because the exclusions relevant to a pipelet are
    part of its cache key. The input program should carry current table
    entries (see {!Nicsim.Exec.sync_entries_to_ir}) so match-kind [m]
    values and resource accounting are current.

    With an enabled [telemetry] sink, each round records counters
    [optimizer.runs] / [optimizer.candidates_examined] /
    [optimizer.cache.hit] / [optimizer.cache.miss] /
    [optimizer.knapsack.options_before] / [.options_after] /
    [.dp_cells], gauge [optimizer.predicted_gain], and histogram
    [optimizer.search_seconds]. *)

val describe : result -> string
(** Human-readable plan summary (one line per choice), plus knapsack
    solver stats and — when a warm cache was in play — its hit rate. *)
