(** Lexer for the P4-lite surface language.

    Supports `//` line comments and `/* */` block comments, decimal and
    hex numbers, IPv4 dotted quads (lexed as one [Number]), and dotted
    identifiers ([ipv4.src], [meta.3]). *)

type located = { token : Token.t; line : int; col : int }

exception Error of { line : int; col : int; msg : string }
(** Lexical error with the source position where it occurred, so callers
    (the parser, the CLI) can report "line N, col M" uniformly with parse
    errors. *)

val error_message : line:int -> col:int -> string -> string
(** Canonical rendering: ["lex error at line N, col M: msg"]. *)

val tokenize : string -> located list
(** The whole input, ending with an [Eof] token. @raise Error. *)
