exception Error of string

type state = { mutable toks : Lexer.located list }

let fail (t : Lexer.located) msg =
  raise (Error (Printf.sprintf "parse error at line %d: %s (found %s)" t.line msg
                  (Token.to_string t.token)))

let peek st = match st.toks with t :: _ -> t | [] -> assert false

let advance st =
  match st.toks with
  | _ :: ([ _ ] as rest) | _ :: (_ :: _ as rest) -> st.toks <- rest
  | _ -> ()

let next st =
  let t = peek st in
  advance st;
  t

let expect st tok msg =
  let t = next st in
  if t.token <> tok then fail t msg

let ident st =
  match next st with
  | { token = Token.Ident s; _ } -> s
  | t -> fail t "expected identifier"

let number st =
  match next st with
  | { token = Token.Number n; _ } -> n
  | t -> fail t "expected number"

(* --- actions --- *)

let parse_primitive st =
  let t = peek st in
  match t.token with
  | Token.Kw_drop ->
    advance st;
    expect st Token.Semi "expected ';'";
    Ast.Drop
  | Token.Kw_nop ->
    advance st;
    expect st Token.Semi "expected ';'";
    Ast.Nop
  | Token.Kw_dec_ttl ->
    advance st;
    expect st Token.Semi "expected ';'";
    Ast.Dec_ttl
  | Token.Kw_forward ->
    advance st;
    expect st Token.Lparen "expected '('";
    let port = Int64.to_int (number st) in
    expect st Token.Rparen "expected ')'";
    expect st Token.Semi "expected ';'";
    Ast.Forward port
  | Token.Ident field -> (
    advance st;
    match next st with
    | { token = Token.Assign; _ } -> (
      match next st with
      | { token = Token.Number v; _ } ->
        expect st Token.Semi "expected ';'";
        Ast.Set_const (field, v)
      | { token = Token.Ident src; _ } ->
        expect st Token.Semi "expected ';'";
        Ast.Set_copy (field, src)
      | t -> fail t "expected number or field after '='")
    | { token = Token.Plus_assign; _ } ->
      let v = number st in
      expect st Token.Semi "expected ';'";
      Ast.Add_const (field, v)
    | t -> fail t "expected '=' or '+='")
  | _ -> fail t "expected a primitive"

let parse_action st =
  let t = peek st in
  expect st Token.Kw_action "expected 'action'";
  let name = ident st in
  expect st Token.Lbrace "expected '{'";
  let body = ref [] in
  while (peek st).token <> Token.Rbrace do
    body := parse_primitive st :: !body
  done;
  expect st Token.Rbrace "expected '}'";
  { Ast.a_name = name; a_body = List.rev !body; a_line = t.line }

(* --- tables --- *)

let parse_pattern st =
  match next st with
  | { token = Token.Underscore; _ } -> Ast.P_wild
  | { token = Token.Number v; _ } -> (
    match (peek st).token with
    | Token.Slash ->
      advance st;
      Ast.P_lpm (v, Int64.to_int (number st))
    | Token.Amp3 ->
      advance st;
      Ast.P_ternary (v, number st)
    | Token.Dotdot ->
      advance st;
      Ast.P_range (v, number st)
    | _ -> Ast.P_exact v)
  | t -> fail t "expected a pattern"

let parse_entry st =
  let line = (peek st).line in
  expect st Token.Lparen "expected '('";
  let pats = ref [ parse_pattern st ] in
  while (peek st).token = Token.Comma do
    advance st;
    pats := parse_pattern st :: !pats
  done;
  expect st Token.Rparen "expected ')'";
  expect st Token.Arrow "expected '->'";
  let action = ident st in
  let priority =
    if (peek st).token = Token.Kw_priority then begin
      advance st;
      Int64.to_int (number st)
    end
    else 0
  in
  expect st Token.Semi "expected ';'";
  { Ast.e_patterns = List.rev !pats; e_action = action; e_priority = priority; e_line = line }

let parse_table st =
  let t0 = peek st in
  expect st Token.Kw_table "expected 'table'";
  let name = ident st in
  expect st Token.Lbrace "expected '{'";
  let keys = ref [] in
  let actions = ref [] in
  let default = ref None in
  let size = ref None in
  let entries = ref [] in
  let rec items () =
    match (peek st).token with
    | Token.Rbrace -> ()
    | Token.Kw_key ->
      advance st;
      expect st Token.Assign "expected '='";
      expect st Token.Lbrace "expected '{'";
      while (peek st).token <> Token.Rbrace do
        let line = (peek st).line in
        let field = ident st in
        expect st Token.Colon "expected ':'";
        let kind = ident st in
        expect st Token.Semi "expected ';'";
        keys := { Ast.k_field = field; k_kind = kind; k_line = line } :: !keys
      done;
      expect st Token.Rbrace "expected '}'";
      items ()
    | Token.Kw_actions ->
      advance st;
      expect st Token.Assign "expected '='";
      expect st Token.Lbrace "expected '{'";
      while (peek st).token <> Token.Rbrace do
        let a = ident st in
        expect st Token.Semi "expected ';'";
        actions := a :: !actions
      done;
      expect st Token.Rbrace "expected '}'";
      items ()
    | Token.Kw_default_action ->
      advance st;
      expect st Token.Assign "expected '='";
      default := Some (ident st);
      expect st Token.Semi "expected ';'";
      items ()
    | Token.Kw_size ->
      advance st;
      expect st Token.Assign "expected '='";
      size := Some (Int64.to_int (number st));
      expect st Token.Semi "expected ';'";
      items ()
    | Token.Kw_entries ->
      advance st;
      expect st Token.Assign "expected '='";
      expect st Token.Lbrace "expected '{'";
      while (peek st).token <> Token.Rbrace do
        entries := parse_entry st :: !entries
      done;
      expect st Token.Rbrace "expected '}'";
      items ()
    | _ -> fail (peek st) "expected a table item"
  in
  items ();
  expect st Token.Rbrace "expected '}'";
  { Ast.t_name = name;
    t_keys = List.rev !keys;
    t_actions = List.rev !actions;
    t_default = !default;
    t_size = !size;
    t_entries = List.rev !entries;
    t_line = t0.line }

(* --- control --- *)

let cmp_of_token = function
  | Token.Eq -> Some Ast.C_eq
  | Token.Neq -> Some Ast.C_neq
  | Token.Lt -> Some Ast.C_lt
  | Token.Gt -> Some Ast.C_gt
  | Token.Le -> Some Ast.C_le
  | Token.Ge -> Some Ast.C_ge
  | _ -> None

let rec parse_statement st =
  let t = peek st in
  match t.token with
  | Token.Kw_apply ->
    advance st;
    let name = ident st in
    expect st Token.Semi "expected ';'";
    Ast.Apply (name, t.line)
  | Token.Kw_if ->
    advance st;
    expect st Token.Lparen "expected '('";
    let field = ident st in
    let op =
      match cmp_of_token (next st).token with
      | Some op -> op
      | None -> fail t "expected comparison operator"
    in
    let value = number st in
    expect st Token.Rparen "expected ')'";
    let then_block = parse_block st in
    let else_block =
      if (peek st).token = Token.Kw_else then begin
        advance st;
        parse_block st
      end
      else []
    in
    Ast.If ({ Ast.c_field = field; c_op = op; c_value = value; c_line = t.line },
            then_block, else_block)
  | Token.Kw_switch ->
    advance st;
    expect st Token.Lparen "expected '('";
    let table = ident st in
    expect st Token.Rparen "expected ')'";
    expect st Token.Lbrace "expected '{'";
    let cases = ref [] in
    let default = ref None in
    let rec go () =
      match (peek st).token with
      | Token.Kw_case ->
        advance st;
        let a = ident st in
        expect st Token.Colon "expected ':'";
        cases := (a, parse_block st) :: !cases;
        go ()
      | Token.Kw_default ->
        advance st;
        expect st Token.Colon "expected ':'";
        default := Some (parse_block st);
        go ()
      | Token.Rbrace -> ()
      | _ -> fail (peek st) "expected 'case', 'default' or '}'"
    in
    go ();
    expect st Token.Rbrace "expected '}'";
    Ast.Switch (table, List.rev !cases, !default, t.line)
  | _ -> fail t "expected a statement"

and parse_block st =
  expect st Token.Lbrace "expected '{'";
  let stmts = ref [] in
  while (peek st).token <> Token.Rbrace do
    stmts := parse_statement st :: !stmts
  done;
  expect st Token.Rbrace "expected '}'";
  List.rev !stmts

let parse src =
  let st =
    try { toks = Lexer.tokenize src }
    with Lexer.Error { line; col; msg } ->
      raise (Error (Lexer.error_message ~line ~col msg))
  in
  expect st Token.Kw_program "expected 'program'";
  let name = ident st in
  expect st Token.Semi "expected ';'";
  let actions = ref [] in
  let tables = ref [] in
  let rec decls () =
    match (peek st).token with
    | Token.Kw_action ->
      actions := parse_action st :: !actions;
      decls ()
    | Token.Kw_table ->
      tables := parse_table st :: !tables;
      decls ()
    | _ -> ()
  in
  decls ();
  expect st Token.Kw_control "expected 'control'";
  let control = parse_block st in
  (match (peek st).token with
   | Token.Eof -> ()
   | _ -> fail (peek st) "trailing input after control block");
  { Ast.p_name = name;
    p_actions = List.rev !actions;
    p_tables = List.rev !tables;
    p_control = control }
