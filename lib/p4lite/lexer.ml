type located = { token : Token.t; line : int; col : int }

exception Error of { line : int; col : int; msg : string }

let error_message ~line ~col msg =
  Printf.sprintf "lex error at line %d, col %d: %s" line col msg

type state = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
}

let fail st msg = raise (Error { line = st.line; col = st.col; msg })

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let peek2 st =
  if st.pos + 1 < String.length st.src then Some st.src.[st.pos + 1] else None

let advance st =
  (match peek st with
   | Some '\n' ->
     st.line <- st.line + 1;
     st.col <- 1
   | Some _ -> st.col <- st.col + 1
   | None -> ());
  st.pos <- st.pos + 1

let is_digit c = c >= '0' && c <= '9'
let is_hex c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || is_digit c

let rec skip_trivia st =
  match (peek st, peek2 st) with
  | Some (' ' | '\t' | '\r' | '\n'), _ ->
    advance st;
    skip_trivia st
  | Some '/', Some '/' ->
    while peek st <> None && peek st <> Some '\n' do
      advance st
    done;
    skip_trivia st
  | Some '/', Some '*' ->
    advance st;
    advance st;
    let rec close () =
      match (peek st, peek2 st) with
      | Some '*', Some '/' ->
        advance st;
        advance st
      | Some _, _ ->
        advance st;
        close ()
      | None, _ -> fail st "unterminated block comment"
    in
    close ();
    skip_trivia st
  | _ -> ()

(* Numbers: decimal, 0x hex, or IPv4 dotted quad (a.b.c.d -> 32-bit). *)
let lex_number st =
  let start = st.pos in
  let take_while pred =
    let s = st.pos in
    while (match peek st with Some c -> pred c | None -> false) do
      advance st
    done;
    String.sub st.src s (st.pos - s)
  in
  if peek st = Some '0' && (peek2 st = Some 'x' || peek2 st = Some 'X') then begin
    advance st;
    advance st;
    let hex = take_while is_hex in
    if hex = "" then fail st "empty hex literal";
    match Int64.of_string_opt ("0x" ^ hex) with
    | Some v -> Token.Number v
    | None -> fail st "hex literal out of range"
  end
  else begin
    let first = take_while is_digit in
    (* Dotted quad: exactly three more ".n" groups, where the next char
       after each dot is a digit (so "10..20" ranges are not eaten). *)
    let quad = ref [ first ] in
    while
      List.length !quad < 4
      && peek st = Some '.'
      && (match peek2 st with Some c -> is_digit c | None -> false)
    do
      advance st;
      quad := take_while is_digit :: !quad
    done;
    match !quad with
    | [ a ] -> (
      match Int64.of_string_opt a with
      | Some v -> Token.Number v
      | None -> fail st "number out of range")
    | [ d; c; b; a ] ->
      let octet s =
        match int_of_string_opt s with
        | Some v when v >= 0 && v <= 255 -> v
        | _ -> fail st ("bad IPv4 octet: " ^ s)
      in
      let v =
        Int64.of_int ((octet a lsl 24) lor (octet b lsl 16) lor (octet c lsl 8) lor octet d)
      in
      Token.Number v
    | _ ->
      st.pos <- start;
      fail st "malformed dotted number"
  end

let lex_ident st =
  let s = st.pos in
  while
    (match peek st with Some c -> is_ident_char c | None -> false)
    (* A dot continues the identifier only when followed by an identifier
       character, so ".." (range) and trailing dots terminate it. *)
    || (peek st = Some '.'
        && match peek2 st with Some c -> is_ident_char c | None -> false)
  do
    advance st
  done;
  let text = String.sub st.src s (st.pos - s) in
  if String.equal text "_" then Token.Underscore
  else
    match Token.keyword_of_string text with Some kw -> kw | None -> Token.Ident text

let next_token st =
  skip_trivia st;
  let line = st.line and col = st.col in
  let tok =
    match peek st with
    | None -> Token.Eof
    | Some c when is_digit c -> lex_number st
    | Some c when is_ident_start c -> lex_ident st
    | Some '{' -> advance st; Token.Lbrace
    | Some '}' -> advance st; Token.Rbrace
    | Some '(' -> advance st; Token.Lparen
    | Some ')' -> advance st; Token.Rparen
    | Some ';' -> advance st; Token.Semi
    | Some ':' -> advance st; Token.Colon
    | Some ',' -> advance st; Token.Comma
    | Some '/' -> advance st; Token.Slash
    | Some '-' ->
      advance st;
      if peek st = Some '>' then begin advance st; Token.Arrow end
      else fail st "expected '->'"
    | Some '+' ->
      advance st;
      if peek st = Some '=' then begin advance st; Token.Plus_assign end
      else fail st "expected '+='"
    | Some '&' ->
      advance st;
      if peek st = Some '&' && peek2 st = Some '&' then begin
        advance st;
        advance st;
        Token.Amp3
      end
      else fail st "expected '&&&'"
    | Some '.' ->
      advance st;
      if peek st = Some '.' then begin advance st; Token.Dotdot end
      else fail st "expected '..'"
    | Some '=' ->
      advance st;
      if peek st = Some '=' then begin advance st; Token.Eq end else Token.Assign
    | Some '!' ->
      advance st;
      if peek st = Some '=' then begin advance st; Token.Neq end
      else fail st "expected '!='"
    | Some '<' ->
      advance st;
      if peek st = Some '=' then begin advance st; Token.Le end else Token.Lt
    | Some '>' ->
      advance st;
      if peek st = Some '=' then begin advance st; Token.Ge end else Token.Gt
    | Some c -> fail st (Printf.sprintf "unexpected character %C" c)
  in
  { token = tok; line; col }

let tokenize src =
  let st = { src; pos = 0; line = 1; col = 1 } in
  let rec go acc =
    let t = next_token st in
    if t.token = Token.Eof then List.rev (t :: acc) else go (t :: acc)
  in
  go []
