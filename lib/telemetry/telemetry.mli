(** The telemetry subsystem: a metrics registry ({!Metrics}), HDR-style
    latency histograms ({!Histogram}), and sampled span tracing
    ({!Trace}) behind one sink handed to the components being observed.

    The sink is disabled by default: {!null} carries [enabled = false]
    and every instrumentation site guards on {!enabled} first, so an
    uninstrumented run pays one load-and-branch per guard — measured at
    under 2% on the nicsim window benchmarks ([bench/main.exe perf],
    row [telemetry/disabled-overhead]).

    For sharded execution (OCaml 5 domains), give each worker a
    {!fork}ed sink and {!merge_into} the parent after joining: counters
    and histogram buckets combine losslessly. Traces are only collected
    on the sink that owns the ring buffer (forks do not trace). *)

module Histogram = Histogram
module Metrics = Metrics
module Trace = Trace

type t

val null : t
(** The disabled sink: {!enabled} is false, every record is a no-op, and
    nothing is ever allocated per event. *)

val create :
  ?metrics:Metrics.t ->
  ?trace_capacity:int ->
  ?trace_sample_every:int ->
  unit ->
  t
(** An enabled sink. [metrics] defaults to a fresh registry (pass
    {!Metrics.default} to share the process-wide one). [trace_capacity]
    enables span tracing into a ring of that many spans;
    [trace_sample_every] (default 64) traces one packet in that many.
    Without [trace_capacity] the sink collects metrics only.
    @raise Invalid_argument if [trace_sample_every <= 0]. *)

val enabled : t -> bool
val metrics : t -> Metrics.t

val trace : t -> Trace.t option
(** The span ring, when tracing is on. *)

val trace_sample_every : t -> int

val should_trace : t -> seq:int -> bool
(** Whether the packet with global sequence number [seq] is sampled for
    tracing: enabled, tracing on, and [seq mod trace_sample_every = 0].
    Keyed on the global sequence number so batched and sharded window
    drivers sample the same packets as the sequential one. *)

val add_span : t -> Trace.span -> unit
(** No-op when tracing is off. *)

val fork : t -> t
(** A domain-local shard of this sink: same enablement and sampling
    cadence, a fresh registry, no trace ring. {!null} forks to {!null}. *)

val merge_into : dst:t -> src:t -> unit
(** Fold a fork's registry back ({!Metrics.merge_into}); a no-op when
    either side is disabled. *)
