(** HDR-style log-bucketed histograms for latency-like values.

    Values are assigned to log-linear buckets: each power-of-two octave
    is split into [2^sub_bits] equal sub-buckets, so any recorded value
    is reproduced by {!quantile} with relative error at most
    [1 / 2^sub_bits] (3.125% at the default 5 bits) while the whole
    structure is a flat preallocated int array — recording is a couple of
    arithmetic ops and one increment, with no allocation on the hot path.

    Histograms with the same [sub_bits] merge losslessly: bucket counts
    add, so quantiles of a merged histogram are *bit-identical* to the
    quantiles of a single histogram fed the union of the samples, in any
    merge order. That is what lets {!Nicsim.Sim.run_window_parallel}
    shards combine without distorting the tail. *)

type t

val create : ?sub_bits:int -> unit -> t
(** [sub_bits] (default 5) sets the sub-buckets per octave
    ([2^sub_bits]); higher means finer quantiles and a bigger array.
    @raise Invalid_argument unless [0 <= sub_bits <= 10]. *)

val sub_bits : t -> int

val relative_error : t -> float
(** Worst-case relative quantile error, [1 / 2^sub_bits]. *)

val record : t -> float -> unit
(** Add one sample. Non-positive and NaN values land in the dedicated
    zero bucket ({!quantile} reports them as [0.]); values beyond the
    representable range clamp to the edge buckets. *)

val record_n : t -> float -> n:int -> unit
(** Add [n] identical samples with one bucket update. *)

val count : t -> int
val sum : t -> float

val mean : t -> float
(** [nan] when empty. *)

val min_value : t -> float
(** Exact smallest recorded sample; [nan] when empty. *)

val max_value : t -> float
(** Exact largest recorded sample; [nan] when empty. *)

val quantile : t -> float -> float
(** [quantile h q] with [q] in [0, 1]: the upper bound of the bucket
    holding the sample at rank [ceil (q * count)], clamped to
    {!max_value} (so [quantile h 1.] is the exact maximum). [nan] when
    empty. Deterministic and merge-stable: equal bucket contents give
    bit-identical results. *)

val merge_into : dst:t -> src:t -> unit
(** Add [src]'s buckets, count, sum and min/max into [dst]. [src] is
    unchanged. Commutative and associative across any shard split.
    @raise Invalid_argument if the two histograms' [sub_bits] differ. *)

val clear : t -> unit
(** Reset to empty, keeping the allocation. *)

val copy : t -> t

val bucket_counts : t -> int array
(** Snapshot of the raw bucket array (index 0 is the zero bucket); used
    by tests to check merge losslessness bucket-by-bucket. *)

val nonzero_buckets : t -> (float * float * int) list
(** [(lower, upper, count)] for every occupied bucket, in value order.
    The zero bucket reports as [(0., 0., n)]. *)
