(** Span-based tracing into a preallocated ring buffer, exportable as
    chrome://tracing ("Trace Event Format") JSON that Perfetto and
    [chrome://tracing] open directly.

    Spans are complete events ([ph = "X"]): a name, a category, a start
    timestamp, a duration, and a thread id. The simulator uses modeled
    time (window seconds scaled to microseconds, plus latency units
    within a packet) so traces are fully deterministic; the [tid] is the
    packet's global sequence number, giving each sampled packet its own
    row in the viewer. *)

type span = {
  name : string;  (** table / conditional / packet label *)
  cat : string;  (** ["table"], ["cond"], ["cache"], ["merged"], ["packet"], ... *)
  ts : float;  (** start timestamp, microseconds on the viewer's axis *)
  dur : float;  (** duration in the same unit *)
  tid : int;  (** viewer row; the sampled packet's sequence number *)
  args : (string * string) list;  (** shown in the viewer's detail pane *)
}

type t

val create : ?capacity:int -> unit -> t
(** Ring of [capacity] spans (default 65536), allocated up front. When
    full, the oldest span is overwritten and {!dropped} grows.
    @raise Invalid_argument if [capacity <= 0]. *)

val capacity : t -> int
val length : t -> int

val dropped : t -> int
(** Spans overwritten since creation (or the last {!clear}). *)

val add : t -> span -> unit
val clear : t -> unit

val spans : t -> span list
(** Retained spans, oldest first. *)

val to_chrome_json : ?process_name:string -> t -> P4ir.Json.t
(** The Trace Event Format document: [{"traceEvents": [...]}] plus a
    process-name metadata record. Load it in https://ui.perfetto.dev or
    chrome://tracing. *)

val write_file : ?process_name:string -> t -> string -> unit
