type span = {
  name : string;
  cat : string;
  ts : float;
  dur : float;
  tid : int;
  args : (string * string) list;
}

let dummy = { name = ""; cat = ""; ts = 0.; dur = 0.; tid = 0; args = [] }

type t = {
  buf : span array;
  mutable len : int;  (* live spans, <= capacity *)
  mutable next : int;  (* write cursor *)
  mutable dropped : int;
}

let create ?(capacity = 65536) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  { buf = Array.make capacity dummy; len = 0; next = 0; dropped = 0 }

let capacity t = Array.length t.buf
let length t = t.len
let dropped t = t.dropped

let add t s =
  let cap = Array.length t.buf in
  t.buf.(t.next) <- s;
  t.next <- (t.next + 1) mod cap;
  if t.len < cap then t.len <- t.len + 1 else t.dropped <- t.dropped + 1

let clear t =
  Array.fill t.buf 0 (Array.length t.buf) dummy;
  t.len <- 0;
  t.next <- 0;
  t.dropped <- 0

let spans t =
  let cap = Array.length t.buf in
  let first = if t.len < cap then 0 else t.next in
  List.init t.len (fun i -> t.buf.((first + i) mod cap))

let json_of_span s =
  P4ir.Json.Obj
    [ ("name", P4ir.Json.String s.name);
      ("cat", P4ir.Json.String s.cat);
      ("ph", P4ir.Json.String "X");
      ("pid", P4ir.Json.Int 1L);
      ("tid", P4ir.Json.Int (Int64.of_int s.tid));
      ("ts", P4ir.Json.Float s.ts);
      ("dur", P4ir.Json.Float s.dur);
      ("args", P4ir.Json.Obj (List.map (fun (k, v) -> (k, P4ir.Json.String v)) s.args)) ]

let to_chrome_json ?(process_name = "pipeleon") t =
  let meta =
    P4ir.Json.Obj
      [ ("name", P4ir.Json.String "process_name");
        ("ph", P4ir.Json.String "M");
        ("pid", P4ir.Json.Int 1L);
        ("args", P4ir.Json.Obj [ ("name", P4ir.Json.String process_name) ]) ]
  in
  P4ir.Json.Obj
    [ ("displayTimeUnit", P4ir.Json.String "ms");
      ("traceEvents", P4ir.Json.List (meta :: List.map json_of_span (spans t))) ]

let write_file ?process_name t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (P4ir.Json.to_string ~indent:1 (to_chrome_json ?process_name t));
      output_char oc '\n')
