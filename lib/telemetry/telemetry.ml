module Histogram = Histogram
module Metrics = Metrics
module Trace = Trace

type t = {
  enabled : bool;
  metrics : Metrics.t;
  trace : Trace.t option;
  trace_sample_every : int;
}

let null =
  { enabled = false; metrics = Metrics.create (); trace = None; trace_sample_every = 1 }

let create ?metrics ?trace_capacity ?(trace_sample_every = 64) () =
  if trace_sample_every <= 0 then
    invalid_arg "Telemetry.create: trace_sample_every must be positive";
  let metrics = match metrics with Some m -> m | None -> Metrics.create () in
  let trace = Option.map (fun capacity -> Trace.create ~capacity ()) trace_capacity in
  { enabled = true; metrics; trace; trace_sample_every }

let enabled t = t.enabled
let metrics t = t.metrics
let trace t = t.trace
let trace_sample_every t = t.trace_sample_every

let should_trace t ~seq =
  t.enabled && t.trace <> None && seq mod t.trace_sample_every = 0

let add_span t s = match t.trace with Some ring -> Trace.add ring s | None -> ()

let fork t =
  if not t.enabled then null
  else
    { enabled = true;
      metrics = Metrics.create ();
      trace = None;
      trace_sample_every = t.trace_sample_every }

let merge_into ~dst ~src =
  if dst.enabled && src.enabled then Metrics.merge_into ~dst:dst.metrics ~src:src.metrics
