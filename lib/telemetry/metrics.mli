(** Process-wide metrics registry: named counters, gauges, and
    log-bucketed latency histograms ({!Histogram}), with JSON and
    Prometheus text exposition.

    Handles are registered once by name and then updated directly
    (field mutation, no table lookup), so instrumented hot paths pay an
    increment, not a hash probe. Registries are single-domain mutable;
    for sharded execution give each domain its own registry
    ({!merge_into} combines them losslessly — counters and histogram
    buckets add, gauges take the shard's latest set value). *)

type t
(** A registry. *)

type counter
type gauge

val create : unit -> t

val default : t
(** The process-wide registry, for code without an obvious owner. *)

val counter : ?help:string -> t -> string -> counter
(** Register (or fetch) the named counter. [help] is kept from the first
    registration that supplies it.
    @raise Invalid_argument if the name is bound to a different kind. *)

val gauge : ?help:string -> t -> string -> gauge
val histogram : ?help:string -> ?sub_bits:int -> t -> string -> Histogram.t

val inc : ?by:int -> counter -> unit
(** Add [by] (default 1). *)

val counter_value : counter -> int
val set : gauge -> float -> unit
val gauge_value : gauge -> float

val find_counter : t -> string -> int option
(** Current value by name; [None] when unregistered. *)

val find_gauge : t -> string -> float option
val find_histogram : t -> string -> Histogram.t option

val names : t -> string list
(** All registered names, sorted. *)

val merge_into : dst:t -> src:t -> unit
(** Fold [src] into [dst]: counters add, histograms merge bucketwise,
    gauges adopt [src]'s value if it was ever set. Metrics missing from
    [dst] are registered on the fly, so a freshly forked shard registry
    merges into any parent. *)

val to_json : t -> P4ir.Json.t
(** {[ { "counters": {..}, "gauges": {..},
        "histograms": { name: {count,sum,mean,min,max,p50,p90,p99,p999} } } ]}
    with every object sorted by name (deterministic output). *)

val to_prometheus : t -> string
(** Prometheus text exposition: counters and gauges as-is, histograms as
    summaries with [quantile] labels plus [_sum]/[_count]. Names are
    sanitized to the Prometheus charset ([.] and [-] become [_]). *)
