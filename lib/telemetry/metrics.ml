type counter = { mutable c : int }
type gauge = { mutable g : float; mutable g_set : bool }

type metric =
  | Counter of counter
  | Gauge of gauge
  | Hist of Histogram.t

type entry = { mutable help : string option; metric : metric }

type t = { tbl : (string, entry) Hashtbl.t }

let create () = { tbl = Hashtbl.create 64 }
let default = create ()

let kind_name = function Counter _ -> "counter" | Gauge _ -> "gauge" | Hist _ -> "histogram"

let register t name ~help ~make ~select =
  match Hashtbl.find_opt t.tbl name with
  | Some e -> (
    (match (e.help, help) with None, Some _ -> e.help <- help | _ -> ());
    match select e.metric with
    | Some m -> m
    | None ->
      invalid_arg
        (Printf.sprintf "Metrics: %s already registered as a %s" name (kind_name e.metric)))
  | None ->
    let m = make () in
    let metric, v = m in
    Hashtbl.replace t.tbl name { help; metric };
    v

let counter ?help t name =
  register t name ~help
    ~make:(fun () ->
      let c = { c = 0 } in
      (Counter c, c))
    ~select:(function Counter c -> Some c | _ -> None)

let gauge ?help t name =
  register t name ~help
    ~make:(fun () ->
      let g = { g = 0.; g_set = false } in
      (Gauge g, g))
    ~select:(function Gauge g -> Some g | _ -> None)

let histogram ?help ?sub_bits t name =
  register t name ~help
    ~make:(fun () ->
      let h = Histogram.create ?sub_bits () in
      (Hist h, h))
    ~select:(function Hist h -> Some h | _ -> None)

let inc ?(by = 1) c = c.c <- c.c + by
let counter_value c = c.c

let set g v =
  g.g <- v;
  g.g_set <- true

let gauge_value g = g.g

let find_counter t name =
  match Hashtbl.find_opt t.tbl name with
  | Some { metric = Counter c; _ } -> Some c.c
  | _ -> None

let find_gauge t name =
  match Hashtbl.find_opt t.tbl name with
  | Some { metric = Gauge g; _ } -> Some g.g
  | _ -> None

let find_histogram t name =
  match Hashtbl.find_opt t.tbl name with
  | Some { metric = Hist h; _ } -> Some h
  | _ -> None

let names t = List.sort compare (Hashtbl.fold (fun name _ acc -> name :: acc) t.tbl [])

let merge_into ~dst ~src =
  Hashtbl.iter
    (fun name (e : entry) ->
      match e.metric with
      | Counter c ->
        let d = counter ?help:e.help dst name in
        inc ~by:c.c d
      | Gauge g -> if g.g_set then set (gauge ?help:e.help dst name) g.g
      | Hist h ->
        let d = histogram ?help:e.help ~sub_bits:(Histogram.sub_bits h) dst name in
        Histogram.merge_into ~dst:d ~src:h)
    src.tbl

let sorted_entries t =
  List.sort
    (fun (a, _) (b, _) -> compare a b)
    (Hashtbl.fold (fun name e acc -> (name, e) :: acc) t.tbl [])

let hist_quantiles = [ ("p50", 0.5); ("p90", 0.9); ("p99", 0.99); ("p999", 0.999) ]

(* JSON has no NaN; empty-histogram summaries report null. *)
let json_float f = if Float.is_nan f then P4ir.Json.Null else P4ir.Json.Float f

let to_json t =
  let entries = sorted_entries t in
  let pick f = List.filter_map f entries in
  let counters = pick (function n, { metric = Counter c; _ } -> Some (n, P4ir.Json.Int (Int64.of_int c.c)) | _ -> None) in
  let gauges = pick (function n, { metric = Gauge g; _ } -> Some (n, json_float g.g) | _ -> None) in
  let hists =
    pick (function
      | n, { metric = Hist h; _ } ->
        let fields =
          [ ("count", P4ir.Json.Int (Int64.of_int (Histogram.count h)));
            ("sum", json_float (Histogram.sum h));
            ("mean", json_float (Histogram.mean h));
            ("min", json_float (Histogram.min_value h));
            ("max", json_float (Histogram.max_value h)) ]
          @ List.map (fun (k, q) -> (k, json_float (Histogram.quantile h q))) hist_quantiles
        in
        Some (n, P4ir.Json.Obj fields)
      | _ -> None)
  in
  P4ir.Json.Obj
    [ ("counters", P4ir.Json.Obj counters);
      ("gauges", P4ir.Json.Obj gauges);
      ("histograms", P4ir.Json.Obj hists) ]

let sanitize name =
  String.map
    (fun ch ->
      match ch with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> ch
      | _ -> '_')
    name

let prom_float f = if Float.is_nan f then "NaN" else Printf.sprintf "%.9g" f

let to_prometheus t =
  let buf = Buffer.create 1024 in
  let header name help kind =
    (match help with
     | Some h -> Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" name h)
     | None -> ());
    Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind)
  in
  List.iter
    (fun (name, e) ->
      let pname = sanitize name in
      match e.metric with
      | Counter c ->
        header pname e.help "counter";
        Buffer.add_string buf (Printf.sprintf "%s %d\n" pname c.c)
      | Gauge g ->
        header pname e.help "gauge";
        Buffer.add_string buf (Printf.sprintf "%s %s\n" pname (prom_float g.g))
      | Hist h ->
        header pname e.help "summary";
        List.iter
          (fun (_, q) ->
            Buffer.add_string buf
              (Printf.sprintf "%s{quantile=\"%g\"} %s\n" pname q
                 (prom_float (Histogram.quantile h q))))
          hist_quantiles;
        Buffer.add_string buf (Printf.sprintf "%s_sum %s\n" pname (prom_float (Histogram.sum h)));
        Buffer.add_string buf (Printf.sprintf "%s_count %d\n" pname (Histogram.count h)))
    (sorted_entries t);
  Buffer.contents buf
