(* Log-linear (HDR-style) buckets. A value v > 0 with frexp v = (m, e),
   m in [0.5, 1), lands in octave e and sub-bucket floor((2m - 1) * sub):
   writing v = (2m) * 2^(e-1) with 2m in [1, 2), the octave is split into
   [sub] equal mantissa slices. Bucket 0 is reserved for v <= 0 (and NaN);
   out-of-range octaves clamp to the first/last real bucket, so every
   float maps somewhere and recording can never fail. *)

(* Octaves e in [e_min, e_max) cover ~5.4e-20 .. 1.8e19 — far beyond any
   latency in latency-units, seconds, or nanoseconds we ever record. *)
let e_min = -64
let e_max = 64
let octaves = e_max - e_min

(* sum/min/max live in a floatarray rather than mutable float fields: in
   a mixed record (without flambda) every store to a mutable float field
   allocates a fresh box and runs the write barrier, and [record] fires
   once per packet in the simulator's window loop. Floatarray stores are
   guaranteed unboxed. Slots: 0 = sum, 1 = min, 2 = max. *)
type t = {
  sbits : int;
  sub : int;  (* 1 lsl sbits *)
  counts : int array;  (* 1 zero-bucket + octaves * sub log buckets *)
  mutable total : int;
  fstats : floatarray;
}

let fresh_fstats () =
  let a = Float.Array.make 3 0. in
  Float.Array.set a 1 infinity;
  Float.Array.set a 2 neg_infinity;
  a

let create ?(sub_bits = 5) () =
  if sub_bits < 0 || sub_bits > 10 then invalid_arg "Histogram.create: sub_bits out of range";
  let sub = 1 lsl sub_bits in
  { sbits = sub_bits;
    sub;
    counts = Array.make (1 + (octaves * sub)) 0;
    total = 0;
    fstats = fresh_fstats () }

let sub_bits t = t.sbits
let relative_error t = 1. /. float_of_int t.sub
let count t = t.total
let sum t = Float.Array.get t.fstats 0
let mean t = if t.total = 0 then nan else Float.Array.get t.fstats 0 /. float_of_int t.total
let min_value t = if t.total = 0 then nan else Float.Array.get t.fstats 1
let max_value t = if t.total = 0 then nan else Float.Array.get t.fstats 2

(* Allocation-free equivalent of the frexp formulation: for a normal
   v = (1.f) x 2^(E-1023), frexp's exponent is E - 1022 and
   floor((2m - 1) * sub) is exactly the top [sbits] fraction bits (2m - 1
   = 0.f is computed exactly, and scaling by the power of two [sub] is
   exact), so the bucket is bit-identical to the spec above. *)
let bucket_index t v =
  (* NaN > 0. is false, so NaN joins v <= 0 in bucket 0. *)
  if not (v > 0.) then 0
  else begin
    let bits = Int64.bits_of_float v in
    let ebits = Int64.to_int (Int64.shift_right_logical bits 52) land 0x7FF in
    if ebits = 0x7FF then Array.length t.counts - 1 (* infinity *)
    else if ebits = 0 then 1 (* subnormal: octave below e_min, clamps up *)
    else begin
      let s =
        Int64.to_int
          (Int64.shift_right_logical (Int64.logand bits 0xF_FFFF_FFFF_FFFFL) (52 - t.sbits))
      in
      let k = 1 + ((ebits - 1023 - e_min) * t.sub) + s in
      if k < 1 then 1
      else if k >= Array.length t.counts then Array.length t.counts - 1
      else k
    end
  end

let record_n t v ~n =
  if n > 0 then begin
    let k = bucket_index t v in
    (* [bucket_index] clamps k into [0, length). *)
    Array.unsafe_set t.counts k (Array.unsafe_get t.counts k + n);
    t.total <- t.total + n;
    let fs = t.fstats in
    Float.Array.unsafe_set fs 0 (Float.Array.unsafe_get fs 0 +. (v *. float_of_int n));
    (* NaN comparisons are false, so NaN samples leave min/max alone. *)
    if v < Float.Array.unsafe_get fs 1 then Float.Array.unsafe_set fs 1 v;
    if v > Float.Array.unsafe_get fs 2 then Float.Array.unsafe_set fs 2 v
  end

let record t v = record_n t v ~n:1

(* Bucket k >= 1 covers [lo, hi): octave j / sub slice s of [1, 2). *)
let bucket_lo t k =
  if k = 0 then 0.
  else
    let j = (k - 1) / t.sub and s = (k - 1) mod t.sub in
    Float.ldexp (1. +. (float_of_int s /. float_of_int t.sub)) (e_min + j)

let bucket_hi t k =
  if k = 0 then 0.
  else
    let j = (k - 1) / t.sub and s = (k - 1) mod t.sub in
    Float.ldexp (1. +. (float_of_int (s + 1) /. float_of_int t.sub)) (e_min + j)

let quantile t q =
  if t.total = 0 then nan
  else begin
    let q = Float.max 0. (Float.min 1. q) in
    let target = max 1 (int_of_float (Float.ceil (q *. float_of_int t.total))) in
    let n = Array.length t.counts in
    let max_v = Float.Array.get t.fstats 2 in
    let rec go k cum =
      if k >= n then max_v
      else
        let cum = cum + t.counts.(k) in
        if cum >= target then
          if k = 0 then 0. else Float.min (bucket_hi t k) max_v
        else go (k + 1) cum
    in
    go 0 0
  end

let merge_into ~dst ~src =
  if dst.sbits <> src.sbits then invalid_arg "Histogram.merge_into: sub_bits mismatch";
  for k = 0 to Array.length src.counts - 1 do
    let c = Array.unsafe_get src.counts k in
    if c <> 0 then dst.counts.(k) <- dst.counts.(k) + c
  done;
  dst.total <- dst.total + src.total;
  let d = dst.fstats and s = src.fstats in
  Float.Array.set d 0 (Float.Array.get d 0 +. Float.Array.get s 0);
  if Float.Array.get s 1 < Float.Array.get d 1 then Float.Array.set d 1 (Float.Array.get s 1);
  if Float.Array.get s 2 > Float.Array.get d 2 then Float.Array.set d 2 (Float.Array.get s 2)

let clear t =
  Array.fill t.counts 0 (Array.length t.counts) 0;
  t.total <- 0;
  Float.Array.set t.fstats 0 0.;
  Float.Array.set t.fstats 1 infinity;
  Float.Array.set t.fstats 2 neg_infinity

let copy t =
  { t with
    counts = Array.copy t.counts;
    fstats = Float.Array.copy t.fstats }

let bucket_counts t = Array.copy t.counts

let nonzero_buckets t =
  let acc = ref [] in
  for k = Array.length t.counts - 1 downto 0 do
    if t.counts.(k) <> 0 then acc := (bucket_lo t k, bucket_hi t k, t.counts.(k)) :: !acc
  done;
  !acc
