module Program = P4ir.Program
module Table = P4ir.Table

let rounds = 3

(* Everything stochastic in a chaos run — fault seed, churn choices,
   deploy mode — derives from the case contents, so the check is a pure
   function of the case and shrinking replays candidates faithfully. *)
let case_salt (case : Gen.case) =
  Hashtbl.hash (Program.num_nodes case.program, List.length case.packets, case.packets)

let controller_config ~salt =
  let faults = { Runtime.Faults.chaos_defaults with seed = salt } in
  { Runtime.Controller.default_config with
    optimizer = { Pipeleon.Optimizer.default_config with top_k = 1.0 };
    min_relative_gain = 0.01;
    reconfig_downtime = 0.1;
    deploy_mode =
      (if salt land 1 = 0 then Runtime.Controller.Full else Runtime.Controller.Incremental);
    faults;
    deploy_retries = 2;
    backoff_base = 0.05;
    backoff_cap = 0.4;
    blacklist_ttl = 2 }

(* Replay the whole stream against the reference interpreter running the
   controller's current original program (the control plane's source of
   truth, entries included). The live engine is stateful across the
   stream — flow caches fill — which is exactly how the NIC behaves;
   traces are not compared because the deployed layout legitimately
   differs from the original. *)
let compare_round ?driver ~round ctl =
  let original = Runtime.Controller.original_program ctl in
  let sim = Runtime.Controller.sim ctl in
  let rec go i = function
    | [] -> None
    | flow :: rest -> (
      let want = Refsim.run original flow in
      let got = Oracle.exec_obs ?driver (Nicsim.Sim.exec sim) flow in
      match Refsim.diff_obs ~compare_trace:false want got with
      | Some reason ->
        Some
          { Oracle.packet_index = i;
            reason = Printf.sprintf "round %d: %s" round reason }
      | None -> go (i + 1) rest)
  in
  go 0

(* Control-plane churn through the (faulty) update path: recycle an
   existing entry of a random table (delete + immediate re-insert keeps
   forwarding semantics and the generator's unambiguity invariants), and
   grow an all-exact table with a fresh high-valued tuple no generated
   entry can collide with. *)
let churn rng ~fresh_tag ctl =
  let tables = List.map snd (Program.tables (Runtime.Controller.original_program ctl)) in
  (match List.filter (fun (t : Table.t) -> t.entries <> []) tables with
   | [] -> ()
   | candidates ->
     let tab = List.nth candidates (Stdx.Prng.int rng (List.length candidates)) in
     let e = List.nth tab.entries (Stdx.Prng.int rng (List.length tab.entries)) in
     Runtime.Controller.delete ctl ~table:tab.name e;
     Runtime.Controller.insert ctl ~table:tab.name e);
  match
    List.filter
      (fun (t : Table.t) ->
        t.keys <> []
        && List.for_all
             (fun (k : Table.key) -> k.kind = P4ir.Match_kind.Exact)
             t.keys)
      tables
  with
  | [] -> ()
  | exacts ->
    let tab = List.nth exacts (Stdx.Prng.int rng (List.length exacts)) in
    let v = Int64.of_int (1_000_000 + fresh_tag) in
    let entry =
      Table.entry (List.map (fun _ -> P4ir.Pattern.Exact v) tab.keys)
        (match tab.actions with a :: _ -> a.P4ir.Action.name | [] -> tab.default_action)
    in
    Runtime.Controller.insert ctl ~table:tab.name entry

(* With [driver = Compiled], every compare round runs the controller's
   live simulator through the compiled data path — so each tick's deploy
   (full reconfigure, incremental hot patch, or fault-forced rollback)
   exercises recompilation against a pipeline that was already compiled
   for the previous layout. *)
let check ?(telemetry = false) ?driver ?sink target (case : Gen.case) =
  if not (Oracle.supported case.program) then
    invalid_arg "Chaos.check: program carries optimizer-generated tables";
  let salt = case_salt case in
  let rng = Stdx.Prng.create (Int64.of_int (salt + 1)) in
  try
    let sink =
      match sink with
      | Some s -> s
      | None ->
        if telemetry then Telemetry.create ~trace_capacity:1024 ~trace_sample_every:7 ()
        else Telemetry.null
    in
    let sim = Nicsim.Sim.create ~telemetry:sink target case.program in
    let ctl =
      Runtime.Controller.create ~config:(controller_config ~salt) sim
        ~original:case.program
    in
    let rec round r =
      if r > rounds then None
      else
        match compare_round ?driver ~round:r ctl case.packets with
        | Some d -> Some d
        | None ->
          churn rng ~fresh_tag:r ctl;
          Nicsim.Sim.advance sim 1.0;
          ignore (Runtime.Controller.tick ctl);
          round (r + 1)
    in
    match round 1 with
    | Some d -> Some d
    | None ->
      (* Convergence: after the last tick (and whatever faults it ate),
         the deployed layout must still forward bit-identically. *)
      compare_round ?driver ~round:(rounds + 1) ctl case.packets
  with e ->
    Some { Oracle.packet_index = -1; reason = "exception: " ^ Printexc.to_string e }
