(** Chaos oracle: the self-healing runtime under injected faults.

    One case drives a live {!Runtime.Controller} — fault injection
    enabled ({!Runtime.Faults}) — through several control-loop rounds:
    every round replays the case's packet stream through the deployed
    data plane and compares each packet, field for field, against
    {!Refsim} running the controller's original program; then churns
    entries through the control-plane API (which may be dropped or
    corrupted in flight) and ticks the controller (whose deploys may
    fail and roll back, and whose profile is skewed).

    The property checked is the paper's §3.2 requirement end-to-end:
    whatever the injector does, the controller must converge back to a
    healthy layout with forwarding bit-identical to the reference
    interpreter throughout — after every round and after the final
    tick. Deterministic: the fault seed, churn, and deploy mode derive
    from the case contents, so a shrunk case replays identically. *)

val rounds : int
(** Control-loop rounds per case (packet replay + churn + tick). *)

val check :
  ?telemetry:bool ->
  ?driver:Oracle.exec_driver ->
  ?sink:Telemetry.t ->
  Costmodel.Target.t ->
  Gen.case ->
  Oracle.divergence option
(** Run one case; [Some d] when forwarding diverged from the reference
    (the reason is prefixed with the round it happened in) or the
    controller raised. With [telemetry] the simulator carries an enabled
    sink, so the runtime's remediation counters and rollback spans are
    exercised under fault load too. [driver] selects the execution path
    for every compare round ({!Oracle.exec_obs}); [Compiled] makes each
    tick's deploy — including fault-forced rollbacks — recompile a
    pipeline that was already compiled for the previous layout. [sink]
    overrides the telemetry default with a caller-owned sink — shared
    across cases it aggregates the [runtime.remediations.*] counters,
    which is how [pipeleonc chaos] reports what the injector provoked
    and the controller repaired.
    @raise Invalid_argument if the program carries non-[Regular] tables
    (the reference interpreter cannot model them; generated cases never
    do). *)
