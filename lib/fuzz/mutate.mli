(** Seeded bugs for validating the oracle itself: small corruptions of
    an optimized (or plain) program that the equivalence check must
    catch. A mutation returns [None] when the program has nothing of the
    targeted shape (e.g. no merged table), in which case the check
    passes vacuously. *)

type t = {
  name : string;
  apply : P4ir.Program.t -> P4ir.Program.t option;
}

val drop_merged_entry : t
(** Delete the first entry of the first [Merged] table — a lost
    cross-product row, the classic table-merge bug. *)

val swap_cache_skip : t
(** Rewire a cache's miss branch to its hit continuation, so misses skip
    the covered original tables entirely. *)

val corrupt_entry_action : t
(** Repoint the first entry (of the first table with >= 2 behaviourally
    distinct actions) at a different action. *)

val flip_cond : t
(** Negate the comparison operator of the first conditional node. *)

val all : t list
val find : string -> t option
