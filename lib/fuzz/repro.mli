(** Reproduction bundles: a shrunk counterexample persisted as a
    [.p4l] program, a JSON profile, and a JSON packet list, so a
    divergence found by a fuzz run can be replayed ([pipeleonc fuzz
    --replay <dir>]) and turned into a regression test. *)

val profile_to_json : P4ir.Program.t -> Profile.t -> P4ir.Json.t
(** Stats for the tables and conditionals of the given program. *)

val profile_of_json : P4ir.Json.t -> Profile.t

val packets_to_json : Gen.flow list -> P4ir.Json.t
val packets_of_json : P4ir.Json.t -> Gen.flow list

val write_case : dir:string -> Shrink.case -> unit
(** Create [dir] (and parents) and write [repro.json] (the IR
    serialization — exact node ids and conditional names, so a replay
    makes the very same optimizer choices), [profile.json] and
    [packets.json], plus a human-readable [repro.p4l] when the program
    is still structured enough for the P4-lite emitter. *)

val load_case : dir:string -> Shrink.case
(** Inverse of {!write_case}. @raise Sys_error / Failure on a missing or
    malformed bundle. *)
