module Prng = Stdx.Prng
module Program = P4ir.Program
module Table = P4ir.Table
module Field = P4ir.Field
module Action = P4ir.Action
module Pattern = P4ir.Pattern
module Match_kind = P4ir.Match_kind

type params = {
  max_tables : int;
  max_block_stmts : int;
  max_depth : int;
  max_keys : int;
  max_actions : int;
  max_entries : int;
  max_prims : int;
  drop_prob : float;
  allow_range : bool;
  rules : int option;
  value_bits : int;
}

let default_params =
  { max_tables = 8;
    max_block_stmts = 3;
    max_depth = 2;
    max_keys = 2;
    max_actions = 3;
    max_entries = 8;
    max_prims = 3;
    drop_prob = 0.08;
    allow_range = true;
    rules = None;
    value_bits = 6 }

(* Values live in the low [value_bits] bits of each field (clamped to
   the field's width), so randomly generated entries and randomly
   generated packets collide often enough for lookups to hit. The
   default of 6 bits suits the default small tables; the [rules] scale
   knob pairs with a wider value space so large tables are not all
   duplicate patterns. *)
let dom params = 1 lsl params.value_bits

(* Effective value bits for one field. Every field in the pools below is
   at least 6 bits wide, so at the default this never clamps — and the
   raw draw below is masked, not re-drawn, keeping the rng stream
   identical to the historical fixed-6-bit generator. *)
let field_bits params f = min params.value_bits (Field.width f)

let readable_fields =
  [| Field.Ipv4_src; Field.Ipv4_dst; Field.Tcp_sport; Field.Tcp_dport;
     Field.Udp_sport; Field.Udp_dport; Field.Eth_type; Field.Ipv4_proto;
     Field.Ipv4_dscp; Field.Ipv4_ttl; Field.Meta 0; Field.Meta 1 |]

(* Overlaps with the readable pool on Meta 0/1 and Ipv4_dscp so that
   tables read what earlier tables wrote (data dependencies constrain
   reordering and exercise cache live-in computation). *)
let writable_fields =
  [| Field.Meta 2; Field.Meta 3; Field.Meta 4; Field.Meta 5;
     Field.Ipv4_dscp; Field.Tcp_flags; Field.Meta 0; Field.Meta 1 |]

(* One raw draw from the full value space, masked down to the field's
   effective bits. Draw first, mask second: at the default 6 bits the
   mask is a no-op and the rng stream matches the historical generator
   draw for draw (OCaml evaluates tuple arguments right to left, so the
   value draw precedes the field choice in [gen_primitive]). *)
let rand_value_for params rng f =
  let raw = Prng.int rng (dom params) in
  Int64.of_int (raw land ((1 lsl field_bits params f) - 1))

(* --- actions --- *)

let gen_primitive params rng =
  match Prng.int rng 12 with
  | 0 | 1 | 2 ->
    let raw = Prng.int rng (dom params) in
    let f = Prng.choice rng writable_fields in
    Action.Set_field (f, Int64.of_int (raw land ((1 lsl field_bits params f) - 1)))
  | 3 | 4 -> Action.Set_from (Prng.choice rng writable_fields, Prng.choice rng readable_fields)
  | 5 | 6 -> Action.Add_const (Prng.choice rng writable_fields, Int64.of_int (1 + Prng.int rng 7))
  | 7 -> Action.Dec_ttl
  | 8 | 9 -> Action.Forward (1 + Prng.int rng 8)
  | _ -> Action.Nop

let gen_action params rng ~name =
  if Prng.bool rng params.drop_prob then Action.make name [ Action.Drop ]
  else
    Action.make name
      (List.init (1 + Prng.int rng params.max_prims) (fun _ -> gen_primitive params rng))

(* --- tables --- *)

(* At most one non-exact key per table, as the leading key. Combined
   with the priority discipline below this keeps lookup unambiguous; see
   the interface comment. *)
type shape = Sh_exact | Sh_lpm | Sh_ternary | Sh_range

let gen_shape params rng =
  let roll = Prng.int rng 100 in
  if roll < 40 then Sh_exact
  else if roll < 65 then Sh_lpm
  else if roll < 85 then Sh_ternary
  else if params.allow_range then Sh_range
  else Sh_exact

let gen_keys params rng shape =
  let nkeys = 1 + Prng.int rng params.max_keys in
  let pool = Array.copy readable_fields in
  Prng.shuffle rng pool;
  List.init (min nkeys (Array.length pool)) (fun i ->
      let kind =
        if i > 0 then Match_kind.Exact
        else
          match shape with
          | Sh_exact -> Match_kind.Exact
          | Sh_lpm -> Match_kind.Lpm
          | Sh_ternary -> Match_kind.Ternary
          | Sh_range -> Match_kind.Range
      in
      Table.key pool.(i) kind)

let gen_pattern params ?mask_pool rng (k : Table.key) =
  let width = Field.width k.field in
  match k.kind with
  | Match_kind.Exact -> Pattern.Exact (rand_value_for params rng k.field)
  | Match_kind.Lpm ->
    (* Prefix covers all but the low [suffix] bits; the value's masked
       bits are cleared so the pattern is canonical. *)
    let suffix = Prng.int rng (field_bits params k.field + 1) in
    let v =
      Int64.shift_left (Int64.shift_right_logical (rand_value_for params rng k.field) suffix) suffix
    in
    Pattern.Lpm (v, width - suffix)
  | Match_kind.Ternary ->
    (* At rule scale ([mask_pool]) masks come from a bounded per-table
       pool: free-form masks would put nearly every entry in its own
       hash-table group, which no hardware target (or access model)
       resembles. *)
    let mask =
      match mask_pool with
      | Some pool -> Prng.choice rng pool
      | None -> rand_value_for params rng k.field
    in
    Pattern.Ternary (Int64.logand (rand_value_for params rng k.field) mask, mask)
  | Match_kind.Range ->
    let lo = rand_value_for params rng k.field in
    let hi = Int64.add lo (Int64.of_int (Prng.int rng 8)) in
    let hi = if Int64.compare hi (Field.max_value k.field) > 0 then Field.max_value k.field else hi in
    Pattern.Range (lo, hi)

let gen_table params rng ~name =
  let shape = gen_shape params rng in
  let keys = gen_keys params rng shape in
  let n_actions = 1 + Prng.int rng params.max_actions in
  let actions =
    List.init n_actions (fun i -> gen_action params rng ~name:(Printf.sprintf "%s_a%d" name i))
  in
  let action_names = Array.of_list (List.map (fun (a : Action.t) -> a.name) actions) in
  (* Ternary/range entries carry unique priorities so overlapping
     matches have a single well-defined winner in every lookup engine;
     LPM/exact entries keep priority 0 (longest-prefix / exact-hit
     semantics) and rely on pattern deduplication instead. *)
  let prioritized = shape = Sh_ternary || shape = Sh_range in
  let n_entries =
    match params.rules with
    | None -> 1 + Prng.int rng params.max_entries
    | Some r ->
      (* Rule-scale mode: every table lands within a factor of two of
         the requested size, so large-backend selection actually fires. *)
      let r = max 1 r in
      (r / 2) + 1 + Prng.int rng (max 1 ((r + 1) / 2))
  in
  let mask_pool =
    match (params.rules, shape) with
    | Some _, Sh_ternary ->
      (* Prefix-pair masks (a prefix over each half of the field's value
         window), not free-form random bits: that is the shape ACL rule
         sets and TCAM range expansions actually have, and it is what
         the engine's decision-tree backend (and its degeneracy guard —
         Nicsim.Engine) keys on. Masks sharing no bits would make every
         large ternary table fall back to the skip probe, leaving the
         tree plan untested at scale. One rng draw per mask, split into
         the two prefix lengths. *)
      let k0 = List.hd keys in
      let w = field_bits params k0.Table.field in
      let hi = (w + 1) / 2
      and lo = w / 2 in
      let amin = max 1 ((hi + 1) / 2) in
      let ra = hi - amin + 1 in
      Some
        (Array.init (min 64 (max 2 (n_entries / 16))) (fun _ ->
             let raw = Prng.int rng (dom params) in
             let a = amin + (raw mod ra) in
             let b = raw / ra mod (lo + 1) in
             let hi_mask = ((1 lsl a) - 1) lsl (w - a) in
             let lo_mask = ((1 lsl b) - 1) lsl (lo - b) in
             Int64.of_int (hi_mask lor lo_mask)))
    | _ -> None
  in
  (* Pattern dedup via a hash set: the historical list scan is O(n^2)
     and dominates generation at rule scale. Drawing no rng of its own,
     the switch leaves generated cases untouched. *)
  let seen = Hashtbl.create (min 4096 (2 * n_entries)) in
  let entries = ref [] in
  for i = 0 to n_entries - 1 do
    let patterns = List.map (gen_pattern params ?mask_pool rng) keys in
    if not (Hashtbl.mem seen patterns) then begin
      Hashtbl.add seen patterns ();
      let priority = if prioritized then n_entries - i else 0 in
      entries := Table.entry ~priority patterns (Prng.choice rng action_names) :: !entries
    end
  done;
  Table.make ~entries:(List.rev !entries)
    ~max_entries:(max 16 (2 * n_entries))
    ~name ~keys ~actions
    ~default_action:(Prng.choice rng action_names)
    ()

(* --- structured control flow --- *)

type stmt =
  | S_apply of Table.t
  | S_if of string * Field.t * Program.cmp * P4ir.Value.t * stmt list * stmt list
  | S_switch of Table.t * (string * stmt list) list
      (** one arm per action of the table, in action order; an empty arm
          falls through to the statement after the switch *)

type namer = { mutable tabs : int; mutable conds : int }

let fresh_table nm =
  let n = nm.tabs in
  nm.tabs <- n + 1;
  Printf.sprintf "t%d" n

let fresh_cond nm =
  let n = nm.conds in
  nm.conds <- n + 1;
  Printf.sprintf "c%d" n

let cmp_ops = [| Program.Eq; Program.Neq; Program.Lt; Program.Gt; Program.Le; Program.Ge |]

let rec gen_block params rng nm ~depth ~budget =
  let stmts = ref [] in
  let n = 1 + Prng.int rng params.max_block_stmts in
  for _ = 1 to n do
    if !budget > 0 then begin
      let roll = Prng.float rng in
      if depth < params.max_depth && roll < 0.20 then begin
        let field = Prng.choice rng readable_fields in
        let op = Prng.choice rng cmp_ops in
        let arg = rand_value_for params rng field in
        let bt =
          if Prng.bool rng 0.85 then gen_block params rng nm ~depth:(depth + 1) ~budget else []
        in
        let bf =
          if Prng.bool rng 0.6 then gen_block params rng nm ~depth:(depth + 1) ~budget else []
        in
        stmts := S_if (fresh_cond nm, field, op, arg, bt, bf) :: !stmts
      end
      else if depth < params.max_depth && roll < 0.35 then begin
        decr budget;
        let tab = gen_table params rng ~name:(fresh_table nm) in
        let arms =
          List.map
            (fun (a : Action.t) ->
              let arm =
                if Prng.bool rng 0.5 then gen_block params rng nm ~depth:(depth + 1) ~budget
                else []
              in
              (a.name, arm))
            tab.actions
        in
        stmts := S_switch (tab, arms) :: !stmts
      end
      else begin
        decr budget;
        stmts := S_apply (gen_table params rng ~name:(fresh_table nm)) :: !stmts
      end
    end
  done;
  List.rev !stmts

(* Lowering mirrors P4lite.Lower: blocks are threaded back-to-front so
   each statement's successor already has an id, and both arms of a
   branch rejoin at the continuation node. The resulting DAGs stay
   structured, so P4lite.Emit can reconstruct source for them. *)
let rec lower_block prog stmts ~next =
  List.fold_left
    (fun (prog, next) stmt -> lower_stmt prog stmt ~next)
    (prog, next) (List.rev stmts)

and lower_stmt prog stmt ~next =
  match stmt with
  | S_apply tab ->
    let prog, id = Program.add_node prog (Program.Table (tab, Program.Uniform next)) in
    (prog, Some id)
  | S_if (cond_name, field, op, arg, bt, bf) ->
    let prog, on_true = lower_block prog bt ~next in
    let prog, on_false = lower_block prog bf ~next in
    let prog, id =
      Program.add_node prog (Program.Cond { cond_name; field; op; arg; on_true; on_false })
    in
    (prog, Some id)
  | S_switch (tab, arms) ->
    let prog, branches =
      List.fold_left
        (fun (prog, acc) (a, arm) ->
          match arm with
          | [] -> (prog, (a, next) :: acc)
          | _ ->
            let prog, entry = lower_block prog arm ~next in
            (prog, (a, entry) :: acc))
        (prog, []) arms
    in
    let prog, id = Program.add_node prog (Program.Table (tab, Program.Per_action (List.rev branches))) in
    (prog, Some id)

let program ?(params = default_params) ?(name = "fuzz") rng =
  let nm = { tabs = 0; conds = 0 } in
  let budget = ref (max 1 (1 + Prng.int rng params.max_tables)) in
  let top = gen_block params rng nm ~depth:0 ~budget in
  (* A roll of empty branches can produce a table-free program; anchor
     it with one table so there is something to execute. *)
  let top =
    if nm.tabs = 0 then top @ [ S_apply (gen_table params rng ~name:(fresh_table nm)) ]
    else top
  in
  let prog, root = lower_block (Program.empty name) top ~next:None in
  let prog = Program.with_root prog root in
  Program.validate_exn prog;
  prog

(* --- profiles --- *)

let profile rng prog =
  let prof = Profile.with_default_cache_hit (Prng.uniform rng 0.5 0.95) Profile.empty in
  let prof =
    List.fold_left
      (fun prof (_, (tab : Table.t)) ->
        (* Misses are rare in realistic workloads: damp the default
           action's weight so high-hit-rate rewrites (fallback merges,
           caches) see the profiles that make them profitable. *)
        let weights =
          List.map
            (fun (a : Action.t) ->
              let w = 0.05 +. Prng.exponential rng 1.0 in
              if String.equal a.name tab.default_action then 0.02 +. (0.1 *. w) else w)
            tab.actions
        in
        let total = List.fold_left ( +. ) 0. weights in
        let action_probs =
          List.map2 (fun (a : Action.t) w -> (a.name, w /. total)) tab.actions weights
        in
        Profile.set_table tab.name
          { Profile.action_probs;
            update_rate = Prng.uniform rng 0. 50.;
            locality = Prng.uniform rng 0.3 0.99 }
          prof)
      prof (Program.tables prog)
  in
  List.fold_left
    (fun prof (_, (c : Program.cond)) ->
      Profile.set_cond c.cond_name { Profile.true_prob = Prng.uniform rng 0.05 0.95 } prof)
    prof (Program.conds prog)

(* --- packets --- *)

type flow = (Field.t * P4ir.Value.t) list

let read_fields prog =
  let of_tables = List.concat_map (fun (_, t) -> Table.reads_of t) (Program.tables prog) in
  let of_conds = List.map (fun (_, (c : Program.cond)) -> c.field) (Program.conds prog) in
  List.sort_uniq Field.compare (of_tables @ of_conds)

(* Constants the program itself compares against: entry patterns and
   branch arguments. Sampling packet fields from these (plus small
   perturbations) makes hits, near-misses and range boundaries common
   instead of vanishingly rare. *)
let interesting_values prog : (Field.t * int64) list =
  let acc = ref [] in
  let add f v = acc := (f, v) :: !acc in
  List.iter
    (fun (_, (tab : Table.t)) ->
      List.iter
        (fun (e : Table.entry) ->
          List.iter2
            (fun (k : Table.key) p ->
              match p with
              | Pattern.Exact v | Pattern.Lpm (v, _) | Pattern.Ternary (v, _) -> add k.field v
              | Pattern.Range (lo, hi) ->
                add k.field lo;
                add k.field hi)
            tab.keys e.patterns)
        tab.entries)
    (Program.tables prog);
  List.iter
    (fun (_, (c : Program.cond)) ->
      add c.field c.arg;
      add c.field (Int64.add c.arg 1L))
    (Program.conds prog);
  !acc

let clamp_value f v =
  let v = if Int64.compare v 0L < 0 then 0L else v in
  Int64.logand v (Field.max_value f)

(* [buckets] pre-splits the interesting-value pool per field (preserving
   pool order, so index draws land on the same values the historical
   per-flow [List.filter] found): at rule scale the pool holds one value
   per entry key and re-filtering it per flow was quadratic. *)
let gen_flow params rng ~fields ~buckets =
  List.filter_map
    (fun (f, (candidates : int64 array)) ->
      if Prng.bool rng 0.12 then None (* leave the field at its packet default *)
      else
        let v =
          if Array.length candidates > 0 && Prng.bool rng 0.7 then begin
            let v = candidates.(Prng.int rng (Array.length candidates)) in
            if Prng.bool rng 0.25 then Int64.add v (Int64.of_int (Prng.int rng 3 - 1)) else v
          end
          else rand_value_for params rng f
        in
        Some (f, clamp_value f v))
    (List.map (fun f -> (f, buckets f)) fields)

let packets ?(params = default_params) ?n_flows rng prog ~n =
  let fields = read_fields prog in
  let pool = interesting_values prog in
  let tbl : (Field.t, int64 list ref) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (f, v) ->
      match Hashtbl.find_opt tbl f with
      | Some l -> l := v :: !l
      | None -> Hashtbl.add tbl f (ref [ v ]))
    pool;
  let bucket_arr =
    List.map
      (fun f ->
        ( f,
          match Hashtbl.find_opt tbl f with
          | Some l -> Array.of_list (List.rev !l)
          | None -> [||] ))
      fields
  in
  let buckets f = List.assoc f bucket_arr in
  let n_flows = match n_flows with Some k -> max 1 k | None -> 4 + Prng.int rng 29 in
  let flows = Array.init n_flows (fun _ -> gen_flow params rng ~fields ~buckets) in
  let zipf = Traffic.Zipf.create ~n:n_flows ~s:(Prng.uniform rng 0. 1.3) in
  List.init n (fun _ -> flows.(Traffic.Zipf.sample zipf rng))

type case = {
  program : Program.t;
  profile : Profile.t;
  packets : flow list;
}

let case ?(params = default_params) ?(n_packets = 64) rng =
  let prog = program ~params rng in
  { program = prog; profile = profile rng prog; packets = packets ~params rng prog ~n:n_packets }
