(** Seeded random generation of valid P4 programs, runtime profiles, and
    packet workloads — the input half of the differential conformance
    fuzzer.

    Programs are generated as structured blocks (apply / if-else /
    switch-case) and lowered the same way the P4-lite frontend lowers
    source, so every generated program round-trips through
    {!P4lite.Emit} and mixes exact, LPM, ternary and range tables with
    branching and re-joining control flow.

    Entry sets are constrained so that table lookup is unambiguous:
    ternary and range entries get unique priorities, LPM entries keep
    priority 0 with at most one LPM key per table, and exact tuples are
    deduplicated. Without this the reference lookup (priority, then
    specificity, then entry order) and the hash-table engines may
    legitimately pick different entries among equal-priority overlapping
    matches, which is not a bug worth reporting. *)

type params = {
  max_tables : int;  (** program size budget, >= 1 *)
  max_block_stmts : int;  (** statements per control block *)
  max_depth : int;  (** nesting of if/switch blocks *)
  max_keys : int;  (** keys per table, >= 1 *)
  max_actions : int;  (** actions per table, >= 1 *)
  max_entries : int;  (** entries per table (ignored when [rules] is set) *)
  max_prims : int;  (** primitives per action *)
  drop_prob : float;  (** probability an action is a bare [drop] *)
  allow_range : bool;
  rules : int option;
      (** rule-scale knob: every table gets between n/2 and n entries
          (instead of [max_entries]), with ternary masks drawn from a
          bounded per-table pool so group counts stay hardware-shaped.
          Pair with a wider [value_bits] so patterns stay distinct. *)
  value_bits : int;
      (** value-space width: entry and packet values live in the low
          [value_bits] bits of each field (clamped to the field width).
          The default 6 reproduces the historical generator draw for
          draw. *)
}

val default_params : params

val program : ?params:params -> ?name:string -> Stdx.Prng.t -> P4ir.Program.t
(** A valid program ({!P4ir.Program.validate} passes) with at least one
    table. *)

val profile : Stdx.Prng.t -> P4ir.Program.t -> Profile.t
(** Random but well-formed stats for every table and conditional of the
    program (action probabilities sum to 1). *)

type flow = (P4ir.Field.t * P4ir.Value.t) list
(** Field assignments applied on top of packet defaults; fields the
    program never reads are left to their defaults. *)

val packets : ?params:params -> ?n_flows:int -> Stdx.Prng.t -> P4ir.Program.t -> n:int -> flow list
(** [n] packets drawn Zipf-distributed from a population of flows whose
    field values are biased towards the program's own entry constants
    and branch arguments (so entries actually hit). *)

type case = {
  program : P4ir.Program.t;
  profile : Profile.t;
  packets : flow list;
}

val case : ?params:params -> ?n_packets:int -> Stdx.Prng.t -> case
(** One self-contained fuzz input; [n_packets] defaults to 64. *)
