module Program = P4ir.Program
module Table = P4ir.Table
module Action = P4ir.Action

type t = {
  name : string;
  apply : Program.t -> Program.t option;
}

let checked prog =
  match Program.validate prog with Ok () -> Some prog | Error _ -> None

let drop_merged_entry =
  { name = "drop-merged-entry";
    apply =
      (fun prog ->
        List.find_opt
          (fun (_, (t : Table.t)) ->
            (match t.role with Table.Merged _ -> true | _ -> false) && t.entries <> [])
          (Program.tables prog)
        |> Option.map (fun (id, _) ->
               Program.update_table prog id (fun t ->
                   { t with Table.entries = List.tl t.Table.entries }))) }

let is_cache (t : Table.t) = match t.role with Table.Cache _ -> true | _ -> false

let swap_cache_skip =
  { name = "swap-cache-skip";
    apply =
      (fun prog ->
        List.find_map
          (fun id ->
            match Program.find_exn prog id with
            | Program.Table (tab, Program.Per_action branches) when is_cache tab ->
              let miss =
                match List.assoc_opt tab.Table.default_action branches with
                | Some n -> n
                | None -> None
              in
              List.find_map
                (fun (a, n) ->
                  if a <> tab.Table.default_action && n <> miss then Some n else None)
                branches
              |> Option.map (fun hit_target ->
                     List.map
                       (fun (a, n) ->
                         if a = tab.Table.default_action then (a, hit_target) else (a, n))
                       branches)
              |> fun branches' ->
              Option.bind branches' (fun branches' ->
                  checked
                    (Program.gc
                       (Program.set_node prog id
                          (Program.Table (tab, Program.Per_action branches')))))
            | _ -> None)
          (Program.node_ids prog)) }

let corrupt_entry_action =
  { name = "corrupt-entry-action";
    apply =
      (fun prog ->
        List.find_map
          (fun (id, (tab : Table.t)) ->
            let rec at i = function
              | [] -> None
              | (e : Table.entry) :: rest -> (
                let current = Table.find_action_exn tab e.action in
                let alternative =
                  List.find_opt
                    (fun (a : Action.t) ->
                      (not (String.equal a.name e.action)) && a.prims <> current.Action.prims)
                    tab.actions
                in
                match alternative with
                | Some alt ->
                  Some
                    (Program.update_table prog id (fun t ->
                         { t with
                           Table.entries =
                             List.mapi
                               (fun j e' ->
                                 if j = i then { e' with Table.action = alt.Action.name }
                                 else e')
                               t.Table.entries }))
                | None -> at (i + 1) rest)
            in
            at 0 tab.entries)
          (Program.tables prog)) }

let negate = function
  | Program.Eq -> Program.Neq
  | Program.Neq -> Program.Eq
  | Program.Lt -> Program.Ge
  | Program.Ge -> Program.Lt
  | Program.Gt -> Program.Le
  | Program.Le -> Program.Gt

let flip_cond =
  { name = "flip-cond";
    apply =
      (fun prog ->
        match Program.conds prog with
        | [] -> None
        | (id, c) :: _ ->
          Some (Program.set_node prog id (Program.Cond { c with Program.op = negate c.op }))) }

let all = [ drop_merged_entry; swap_cache_skip; corrupt_entry_action; flip_cond ]

let find name = List.find_opt (fun m -> String.equal m.name name) all
