module Program = P4ir.Program

type mode = Sim_diff | Optim_equiv | Roundtrip | Chaos

let mode_to_string = function
  | Sim_diff -> "sim-diff"
  | Optim_equiv -> "optim-equiv"
  | Roundtrip -> "serialize-roundtrip"
  | Chaos -> "chaos"

let mode_of_string = function
  | "sim-diff" -> Some Sim_diff
  | "optim-equiv" -> Some Optim_equiv
  | "serialize-roundtrip" | "roundtrip" -> Some Roundtrip
  | "chaos" -> Some Chaos
  | _ -> None

let default_optimizer_config = { Pipeleon.Optimizer.default_config with top_k = 1.0 }

let check ?(optimizer_config = default_optimizer_config) ?mutate ?telemetry ?driver target
    mode (case : Shrink.case) =
  match mode with
  | Sim_diff -> Oracle.sim_diff ?telemetry ?driver target case.program case.packets
  | Roundtrip -> Oracle.roundtrip ?telemetry ?driver target case.program case.packets
  | Chaos -> Chaos.check ?telemetry ?driver target case
  | Optim_equiv ->
    Oracle.optim_equiv ~config:optimizer_config
      ?mutate:(Option.map (fun (m : Mutate.t) -> m.apply) mutate)
      ?telemetry ?driver target case.profile case.program case.packets

type finding = {
  case_index : int;
  divergence : Oracle.divergence;
  tables : int;
  nodes : int;
  packets : int;
  dir : string option;
}

type report = {
  mode : mode;
  seed : int;
  budget : int;
  packets_per_case : int;
  findings : finding list;
}

(* Each case owns a generator derived from (seed, index) by splitmix's
   golden-gamma mixing, so case [i] replays identically whatever the
   budget. *)
let case_rng ~seed i =
  Stdx.Prng.create
    Int64.(add (mul (of_int (seed + 1)) 0x9E3779B97F4A7C15L) (of_int i))

let run ?(params = Gen.default_params) ?(n_packets = 64) ?out_dir ?optimizer_config ?mutate
    ?max_shrink_steps ?telemetry ?driver ?(target = Costmodel.Target.bluefield2) mode ~seed
    ~budget =
  let findings = ref [] in
  for i = 0 to budget - 1 do
    let case = Gen.case ~params ~n_packets (case_rng ~seed i) in
    let checker = check ?optimizer_config ?mutate ?telemetry ?driver target mode in
    match checker case with
    | None -> ()
    | Some first ->
      let shrunk = Shrink.shrink ?max_steps:max_shrink_steps checker case in
      let divergence = match checker shrunk with Some d -> d | None -> first in
      let dir =
        Option.map
          (fun base -> Filename.concat base (Printf.sprintf "case_%d" i))
          out_dir
      in
      Option.iter (fun d -> Repro.write_case ~dir:d shrunk) dir;
      findings :=
        { case_index = i;
          divergence;
          tables = List.length (Program.tables shrunk.program);
          nodes = Program.num_nodes shrunk.program;
          packets = List.length shrunk.packets;
          dir }
        :: !findings
  done;
  { mode; seed; budget; packets_per_case = n_packets; findings = List.rev !findings }

let summary report =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "fuzz mode=%s seed=%d budget=%d packets/case=%d\n"
       (mode_to_string report.mode) report.seed report.budget report.packets_per_case);
  List.iter
    (fun f ->
      let where =
        if f.divergence.Oracle.packet_index >= 0 then
          Printf.sprintf "packet %d: " f.divergence.Oracle.packet_index
        else ""
      in
      Buffer.add_string buf
        (Printf.sprintf "case %d: %s%s\n  shrunk to %d tables / %d nodes / %d packets%s\n"
           f.case_index where f.divergence.Oracle.reason f.tables f.nodes f.packets
           (match f.dir with Some d -> " -> " ^ d | None -> "")))
    report.findings;
  Buffer.add_string buf
    (Printf.sprintf "divergences=%d cases=%d\n" (List.length report.findings) report.budget);
  Buffer.contents buf

let replay ?optimizer_config ?mutate ?telemetry ?driver
    ?(target = Costmodel.Target.bluefield2) mode ~dir =
  check ?optimizer_config ?mutate ?telemetry ?driver target mode (Repro.load_case ~dir)
