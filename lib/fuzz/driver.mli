(** The fuzz loop: generate cases from a seed, run one of the
    differential oracles over each, shrink what fails, and write repro
    bundles. Everything is deterministic in (seed, budget, parameters) —
    two runs produce byte-identical summaries. *)

type mode =
  | Sim_diff  (** reference interpreter vs [Nicsim.Exec] on the raw program *)
  | Optim_equiv  (** original vs [Pipeleon.Optimizer]-rewritten program *)
  | Roundtrip  (** JSON + P4-lite serialization round trips *)
  | Chaos
      (** self-healing runtime under injected faults: a live
          {!Runtime.Controller} must keep forwarding bit-identical to
          the reference interpreter through failed deploys, corrupted
          updates, and skewed profiles ({!Chaos.check}) *)

val mode_to_string : mode -> string
val mode_of_string : string -> mode option
(** ["sim-diff"], ["optim-equiv"], ["serialize-roundtrip"], ["chaos"]. *)

val default_optimizer_config : Pipeleon.Optimizer.config
(** {!Pipeleon.Optimizer.default_config} with [top_k = 1.0]: fuzzing
    wants every pipelet rewritten, not just the profitable fifth. *)

val case_rng : seed:int -> int -> Stdx.Prng.t
(** The derived generator for case [i] of a run with [seed]: any single
    case regenerates without replaying the cases before it. *)

val check :
  ?optimizer_config:Pipeleon.Optimizer.config ->
  ?mutate:Mutate.t ->
  ?telemetry:bool ->
  ?driver:Oracle.exec_driver ->
  Costmodel.Target.t ->
  mode ->
  Shrink.case ->
  Oracle.divergence option
(** One case through the oracle for [mode]. [mutate] only affects
    [Optim_equiv], where it corrupts the optimized program first.
    [telemetry] (default [false]) attaches an enabled {!Telemetry} sink
    to every executor under test, turning each differential check into an
    observe-only proof for the instrumentation. [driver] (default
    [Interp]) selects which execution path carries the packets
    ({!Oracle.exec_driver}) — fuzzing with [Compiled] differentially
    tests the compiled data path, including recompilation across the
    chaos oracle's deploys and rollbacks. *)

type finding = {
  case_index : int;
  divergence : Oracle.divergence;
  tables : int;  (** tables left after shrinking *)
  nodes : int;
  packets : int;  (** packets left after shrinking *)
  dir : string option;  (** repro bundle location, when written *)
}

type report = {
  mode : mode;
  seed : int;
  budget : int;
  packets_per_case : int;
  findings : finding list;
}

val run :
  ?params:Gen.params ->
  ?n_packets:int ->
  ?out_dir:string ->
  ?optimizer_config:Pipeleon.Optimizer.config ->
  ?mutate:Mutate.t ->
  ?max_shrink_steps:int ->
  ?telemetry:bool ->
  ?driver:Oracle.exec_driver ->
  ?target:Costmodel.Target.t ->
  mode ->
  seed:int ->
  budget:int ->
  report
(** [budget] generated cases from [seed] (each case gets its own derived
    generator, so any single case replays without the rest). Divergent
    cases are shrunk and, when [out_dir] is given, written to
    [out_dir/case_<i>/]. [target] defaults to BlueField-2. *)

val summary : report -> string
(** Deterministic multi-line summary (no timing, no absolute paths
    beyond [out_dir] as given). *)

val replay :
  ?optimizer_config:Pipeleon.Optimizer.config ->
  ?mutate:Mutate.t ->
  ?telemetry:bool ->
  ?driver:Oracle.exec_driver ->
  ?target:Costmodel.Target.t ->
  mode ->
  dir:string ->
  Oracle.divergence option
(** Re-run one persisted repro bundle. *)
