(** Independent reference interpreter — the fuzzer's oracle.

    Implements the P4-lite execution semantics (docs/P4LITE.md) directly:
    naive list-scan table lookup (highest priority, then most specific,
    then first in entry order), straightforward primitive application,
    and DAG traversal, over its own packet state. It deliberately shares
    no code with {!Nicsim.Exec}, {!Nicsim.Engine} or {!P4ir.Table.lookup},
    so a bug in the optimized engines cannot hide in the oracle too. *)

type obs = {
  fields : (P4ir.Field.t * P4ir.Value.t) list;
      (** final value of every field in {!observed_fields}, same order *)
  dropped : bool;
  egress : int option;
  trace : (string * string) list;
      (** (table, action fired) or (conditional, ["true"]/["false"]) per
          node traversed, in execution order *)
}

val observed_fields : P4ir.Field.t list
(** The fields compared between executions: every standard header field
    except [Next_tab_id] (private to heterogeneous migration), plus
    metadata slots 0-15. *)

val run : P4ir.Program.t -> (P4ir.Field.t * P4ir.Value.t) list -> obs
(** Execute one packet, given as field assignments over the standard
    packet defaults (zero except [eth_type]=0x0800, [ipv4_ttl]=64,
    [ipv4_proto]=6, [ipv4_len]=512 — mirroring {!Nicsim.Packet.create}).
    @raise Failure on a cycle (more node visits than nodes). *)

val equal_obs : ?compare_trace:bool -> obs -> obs -> bool

val diff_obs : ?compare_trace:bool -> obs -> obs -> string option
(** First observable difference, rendered for a divergence report. A
    packet dropped by both executions compares equal whatever its field
    state: dropped packets never leave the NIC, so transforms may
    legitimately drop earlier (e.g. reordering a dropping table forward)
    with different intermediate header contents. *)
