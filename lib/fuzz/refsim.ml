module Program = P4ir.Program
module Table = P4ir.Table
module Field = P4ir.Field
module Action = P4ir.Action
module Pattern = P4ir.Pattern

type obs = {
  fields : (Field.t * P4ir.Value.t) list;
  dropped : bool;
  egress : int option;
  trace : (string * string) list;
}

let observed_fields =
  List.filter (fun f -> not (Field.equal f Field.Next_tab_id)) Field.all_standard
  @ List.init 16 (fun i -> Field.Meta i)

(* --- packet state (independent of Nicsim.Packet) --- *)

type state = {
  values : (Field.t, int64) Hashtbl.t;
  mutable dropped : bool;
  mutable egress : int option;
  mutable trace : (string * string) list;  (* reversed *)
}

let default_value = function
  | Field.Eth_type -> 0x0800L
  | Field.Ipv4_ttl -> 64L
  | Field.Ipv4_proto -> 6L
  | Field.Ipv4_len -> 512L
  | _ -> 0L

let low_bits width v =
  if width >= 64 then v else Int64.logand v (Int64.sub (Int64.shift_left 1L width) 1L)

let get st f =
  match Hashtbl.find_opt st.values f with Some v -> v | None -> default_value f

let set st f v = Hashtbl.replace st.values f (low_bits (Field.width f) v)

(* --- pattern matching (independent of P4ir.Pattern.matches) --- *)

let popcount v =
  let rec go acc v = if Int64.equal v 0L then acc else go (acc + 1) (Int64.logand v (Int64.sub v 1L)) in
  go 0 v

let prefix_mask ~width len =
  if len <= 0 then 0L
  else if len >= width then low_bits width Int64.minus_one
  else low_bits width (Int64.shift_left Int64.minus_one (width - len))

let pattern_matches ~width pat v =
  match pat with
  | Pattern.Exact want -> Int64.equal (low_bits width v) (low_bits width want)
  | Pattern.Lpm (want, len) ->
    let m = prefix_mask ~width len in
    Int64.equal (Int64.logand v m) (Int64.logand want m)
  | Pattern.Ternary (want, mask) ->
    Int64.equal (Int64.logand v mask) (Int64.logand want mask)
  | Pattern.Range (lo, hi) ->
    Int64.unsigned_compare lo v <= 0 && Int64.unsigned_compare v hi <= 0

(* Number of exactly-constrained bits, the P4LITE.md tie-break between
   equal-priority entries. Exact (and degenerate ranges) pin the whole
   field, counted as 64 whatever the width. *)
let pattern_specificity = function
  | Pattern.Exact _ -> 64
  | Pattern.Lpm (_, len) -> len
  | Pattern.Ternary (_, mask) -> popcount mask
  | Pattern.Range (lo, hi) -> if Int64.equal lo hi then 64 else 0

(* List scan: highest priority wins, ties by total specificity, then by
   entry order (earliest). *)
let lookup st (tab : Table.t) =
  let entry_matches (e : Table.entry) =
    List.for_all2
      (fun (k : Table.key) p -> pattern_matches ~width:(Field.width k.field) p (get st k.field))
      tab.keys e.patterns
  in
  let spec (e : Table.entry) =
    List.fold_left (fun acc p -> acc + pattern_specificity p) 0 e.patterns
  in
  List.fold_left
    (fun best e ->
      if not (entry_matches e) then best
      else
        match best with
        | None -> Some e
        | Some (b : Table.entry) ->
          if e.Table.priority > b.priority || (e.priority = b.priority && spec e > spec b) then
            Some e
          else best)
    None tab.entries

(* --- primitives --- *)

let apply_primitive st = function
  | Action.Set_field (f, v) -> set st f v
  | Action.Set_from (dst, src) -> set st dst (get st src)
  | Action.Add_const (f, v) -> set st f (Int64.add (get st f) v)
  | Action.Dec_ttl ->
    let ttl = get st Field.Ipv4_ttl in
    if Int64.compare ttl 0L > 0 then set st Field.Ipv4_ttl (Int64.sub ttl 1L)
  | Action.Forward port -> st.egress <- Some port
  | Action.Drop -> st.dropped <- true
  | Action.Nop -> ()

(* --- traversal --- *)

let eval_cmp op lhs rhs =
  let c = Int64.unsigned_compare lhs rhs in
  match op with
  | Program.Eq -> c = 0
  | Program.Neq -> c <> 0
  | Program.Lt -> c < 0
  | Program.Gt -> c > 0
  | Program.Le -> c <= 0
  | Program.Ge -> c >= 0

let run prog flow =
  let st = { values = Hashtbl.create 32; dropped = false; egress = None; trace = [] } in
  List.iter (fun (f, v) -> set st f v) flow;
  let limit = Program.num_nodes prog + 1 in
  let steps = ref 0 in
  let rec step = function
    | None -> ()
    | Some id ->
      incr steps;
      if !steps > limit then failwith "Refsim.run: node revisited (cycle?)";
      (match Program.find_exn prog id with
       | Program.Cond c ->
         let taken = eval_cmp c.op (get st c.field) c.arg in
         st.trace <- (c.cond_name, if taken then "true" else "false") :: st.trace;
         step (if taken then c.on_true else c.on_false)
       | Program.Table (tab, nxt) ->
         let action_name =
           match lookup st tab with Some e -> e.Table.action | None -> tab.default_action
         in
         st.trace <- (tab.name, action_name) :: st.trace;
         let action = Table.find_action_exn tab action_name in
         List.iter (apply_primitive st) action.Action.prims;
         if not st.dropped then
           step
             (match nxt with
              | Program.Uniform n -> n
              | Program.Per_action branches -> (
                match List.assoc_opt action_name branches with Some n -> n | None -> None)))
  in
  step (Program.root prog);
  { fields = List.map (fun f -> (f, get st f)) observed_fields;
    dropped = st.dropped;
    egress = st.egress;
    trace = List.rev st.trace }

(* --- comparison --- *)

let diff_obs ?(compare_trace = false) (a : obs) (b : obs) =
  let trace_diff () =
    if compare_trace && a.trace <> b.trace then begin
      let render t =
        String.concat " " (List.map (fun (n, o) -> Printf.sprintf "%s:%s" n o) t)
      in
      Some (Printf.sprintf "trace: [%s] vs [%s]" (render a.trace) (render b.trace))
    end
    else None
  in
  if a.dropped <> b.dropped then
    Some (Printf.sprintf "dropped: %b vs %b" a.dropped b.dropped)
  else if a.dropped then
    (* A dropped packet never leaves the NIC: its header state and
       egress are unobservable, so transforms are free to drop early
       (reordering a dropping table forward) without being flagged. *)
    trace_diff ()
  else begin
    let field_diff =
      List.find_map
        (fun ((f, va), (g, vb)) ->
          assert (Field.equal f g);
          if Int64.equal va vb then None
          else Some (Printf.sprintf "%s: %Ld vs %Ld" (Field.to_string f) va vb))
        (List.combine a.fields b.fields)
    in
    match field_diff with
    | Some d -> Some d
    | None ->
      if a.egress <> b.egress then begin
        let p = function None -> "none" | Some p -> string_of_int p in
        Some (Printf.sprintf "egress: %s vs %s" (p a.egress) (p b.egress))
      end
      else trace_diff ()
  end

let equal_obs ?compare_trace a b = diff_obs ?compare_trace a b = None
