module Json = P4ir.Json
module Program = P4ir.Program
module Table = P4ir.Table
module Field = P4ir.Field

(* --- profiles --- *)

let profile_to_json prog profile =
  let tables =
    List.filter_map
      (fun (_, (tab : Table.t)) ->
        Option.map
          (fun (s : Profile.table_stats) ->
            ( tab.name,
              Json.Obj
                [ ("action_probs", Json.Obj (List.map (fun (a, p) -> (a, Json.Float p)) s.action_probs));
                  ("update_rate", Json.Float s.update_rate);
                  ("locality", Json.Float s.locality) ] ))
          (Profile.table_stats profile tab.name))
      (Program.tables prog)
  in
  let conds =
    List.filter_map
      (fun (_, (c : Program.cond)) ->
        Option.map
          (fun (s : Profile.cond_stats) ->
            (c.cond_name, Json.Obj [ ("true_prob", Json.Float s.true_prob) ]))
          (Profile.cond_stats profile c.cond_name))
      (Program.conds prog)
  in
  Json.Obj
    [ ("default_cache_hit", Json.Float (Profile.default_cache_hit profile));
      ("tables", Json.Obj tables);
      ("conds", Json.Obj conds) ]

let obj_fields = function
  | Json.Obj fields -> fields
  | _ -> invalid_arg "Repro: expected a JSON object"

let profile_of_json json =
  let profile =
    match Json.member_opt "default_cache_hit" json with
    | Some v -> Profile.with_default_cache_hit (Json.get_float v) Profile.empty
    | None -> Profile.empty
  in
  let profile =
    List.fold_left
      (fun profile (name, stats) ->
        Profile.set_table name
          { Profile.action_probs =
              List.map
                (fun (a, p) -> (a, Json.get_float p))
                (obj_fields (Json.member "action_probs" stats));
            update_rate = Json.get_float (Json.member "update_rate" stats);
            locality = Json.get_float (Json.member "locality" stats) }
          profile)
      profile
      (match Json.member_opt "tables" json with Some t -> obj_fields t | None -> [])
  in
  List.fold_left
    (fun profile (name, stats) ->
      Profile.set_cond name
        { Profile.true_prob = Json.get_float (Json.member "true_prob" stats) }
        profile)
    profile
    (match Json.member_opt "conds" json with Some c -> obj_fields c | None -> [])

(* --- packets --- *)

let packets_to_json packets =
  Json.List
    (List.map
       (fun flow ->
         Json.Obj (List.map (fun (f, v) -> (Field.to_string f, Json.Int v)) flow))
       packets)

let packets_of_json json =
  List.map
    (fun flow -> List.map (fun (f, v) -> (Field.of_string f, Json.get_int v)) (obj_fields flow))
    (Json.to_list json)

(* --- files --- *)

let rec mkdir_p dir =
  if dir = "" || dir = "." || dir = "/" || Sys.file_exists dir then ()
  else begin
    mkdir_p (Filename.dirname dir);
    Sys.mkdir dir 0o755
  end

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let read_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_case ~dir (case : Shrink.case) =
  mkdir_p dir;
  (* repro.json is the replay source of truth: the IR round-trips byte
     for byte, keeping node ids and conditional names (and with them the
     profile attachment and the optimizer's choices). The .p4l rendering
     is a courtesy for humans — parsing it back renames conditionals. *)
  P4ir.Serialize.save (Filename.concat dir "repro.json") case.program;
  (match P4lite.Emit.emit case.program with
   | src -> write_file (Filename.concat dir "repro.p4l") src
   | exception P4lite.Emit.Unstructured _ -> ());
  write_file
    (Filename.concat dir "profile.json")
    (Json.to_string ~indent:2 (profile_to_json case.program case.profile) ^ "\n");
  write_file
    (Filename.concat dir "packets.json")
    (Json.to_string ~indent:2 (packets_to_json case.packets) ^ "\n")

let load_case ~dir : Shrink.case =
  let json = Filename.concat dir "repro.json" in
  let program =
    if Sys.file_exists json then P4ir.Serialize.load json
    else P4lite.Lower.parse_program (read_file (Filename.concat dir "repro.p4l"))
  in
  { Shrink.program;
    profile = profile_of_json (Json.of_string_exn (read_file (Filename.concat dir "profile.json")));
    packets = packets_of_json (Json.of_string_exn (read_file (Filename.concat dir "packets.json"))) }
