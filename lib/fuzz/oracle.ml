module Program = P4ir.Program
module Table = P4ir.Table

type divergence = {
  packet_index : int;
  reason : string;
}

let supported prog =
  List.for_all (fun (_, (t : Table.t)) -> t.role = Table.Regular) (Program.tables prog)

let exec_config target =
  { Nicsim.Exec.target;
    instrumented = false;
    sample_rate = 1;
    placement = Costmodel.Cost.all_asic }

(* With [telemetry], the executor under test carries an enabled sink
   (metrics plus a sampled trace ring). The differential comparison then
   doubles as an observe-only proof: any instrumentation that leaks into
   packet outcomes, engine state, or latencies diverges from the
   uninstrumented reference interpreter. *)
let mk_exec ~telemetry target prog =
  let ex = Nicsim.Exec.create (exec_config target) prog in
  if telemetry then
    Nicsim.Exec.set_telemetry ex
      (Telemetry.create ~trace_capacity:1024 ~trace_sample_every:7 ());
  ex

type exec_driver = Interp | Batched | Parallel | Compiled

let driver_to_string = function
  | Interp -> "interp"
  | Batched -> "batched"
  | Parallel -> "parallel"
  | Compiled -> "compiled"

let driver_of_string = function
  | "interp" -> Some Interp
  | "batched" -> Some Batched
  | "parallel" -> Some Parallel
  | "compiled" -> Some Compiled
  | _ -> None

(* One packet through a live executor, observed the same way Refsim
   reports: final field values, drop flag, egress, action trace. The
   driver picks which execution path carries the packet — they all claim
   bit-identity with [run_packet], and this observation is where the
   fuzzer holds them to it. *)
let exec_obs ?(driver = Interp) ex flow : Refsim.obs =
  let pkt = Nicsim.Packet.of_fields flow in
  let trace = ref [] in
  let hook =
    Some (fun (e : Nicsim.Exec.trace_event) -> trace := (e.name, e.outcome) :: !trace)
  in
  (match driver with
  | Interp ->
    Nicsim.Exec.set_tracer ex hook;
    ignore (Nicsim.Exec.run_packet ex ~now:0. pkt);
    Nicsim.Exec.set_tracer ex None
  | Compiled ->
    Nicsim.Exec.set_tracer ex hook;
    ignore (Nicsim.Exec.run_packet_compiled ex ~now:0. pkt);
    Nicsim.Exec.set_tracer ex None
  | Batched ->
    (* A burst of one: exercises the batch entry points end to end. *)
    Nicsim.Exec.set_tracer ex hook;
    ignore (Nicsim.Exec.run_batch ex ~now_of:(fun _ -> 0.) ~out:[| 0. |] [| pkt |]);
    Nicsim.Exec.set_tracer ex None
  | Parallel ->
    (* The sharded window's per-packet shape: a replica executes with the
       parent's next global sequence number, then merges back. *)
    let r = Nicsim.Exec.replicate ex in
    Nicsim.Exec.set_tracer r hook;
    ignore
      (Nicsim.Exec.run_packet_at r ~seq:(Nicsim.Exec.packets_seen ex + 1) ~now:0. pkt);
    Nicsim.Exec.set_tracer r None;
    Nicsim.Exec.merge_replica ex r);
  { Refsim.fields = List.map (fun f -> (f, Nicsim.Packet.get pkt f)) Refsim.observed_fields;
    dropped = Nicsim.Packet.is_dropped pkt;
    egress = Nicsim.Packet.egress_port pkt;
    trace = List.rev !trace }

let guard f =
  try f () with e -> Some { packet_index = -1; reason = "exception: " ^ Printexc.to_string e }

let find_diff ?compare_trace pairs =
  let rec go i = function
    | [] -> None
    | (a, b) :: rest -> (
      match Refsim.diff_obs ?compare_trace a b with
      | Some reason -> Some { packet_index = i; reason }
      | None -> go (i + 1) rest)
  in
  go 0 pairs

let sim_diff ?(telemetry = false) ?driver target prog packets =
  if not (supported prog) then
    invalid_arg "Oracle.sim_diff: program carries optimizer-generated tables";
  guard (fun () ->
      let ex = mk_exec ~telemetry target prog in
      find_diff ~compare_trace:true
        (List.map (fun flow -> (Refsim.run prog flow, exec_obs ?driver ex flow)) packets))

let replay_diff ?(telemetry = false) ?driver target prog_a prog_b packets =
  guard (fun () ->
      let ex_a = mk_exec ~telemetry target prog_a in
      let ex_b = mk_exec ~telemetry target prog_b in
      find_diff ~compare_trace:false
        (List.map (fun flow -> (exec_obs ?driver ex_a flow, exec_obs ?driver ex_b flow))
           packets))

(* The cost model never picks a ternary merge on current targets — the
   m·l_mat estimate always exceeds separate lookups — so left to the
   optimizer alone, [Merge.build_ternary] would be fuzzed by nobody.
   Force-merge the first legal adjacent pair of each pipelet after the
   optimizer pass: unprofitable, but it must still preserve semantics.
   Only [Regular] tables qualify; a cache's auto-insert behaviour has no
   static-table equivalent. *)
let force_ternary_merges prog =
  let pipelets = Pipeleon.Pipelet.form ~max_len:8 prog in
  let order = Program.topological_order prog in
  let idx id =
    match List.find_index (Int.equal id) order with Some i -> i | None -> max_int
  in
  let pipelets =
    List.stable_sort
      (fun (a : Pipeleon.Pipelet.t) (b : Pipeleon.Pipelet.t) ->
        compare (idx a.entry) (idx b.entry))
      pipelets
  in
  let merge_pair prog (p : Pipeleon.Pipelet.t) =
    let tabs = Pipeleon.Pipelet.tables prog p in
    let ok (t : Table.t) = t.role = Table.Regular in
    let rec find i = function
      | a :: b :: _ when ok a && ok b && Pipeleon.Merge.mergeable [ a; b ] -> Some i
      | _ :: rest -> find (i + 1) rest
      | [] -> None
    in
    match find 0 tabs with
    | None -> None
    | Some pos -> (
      let originals = [ List.nth tabs pos; List.nth tabs (pos + 1) ] in
      let name = Printf.sprintf "__fuzz_m%d" p.entry in
      match Pipeleon.Merge.build_ternary ~name originals with
      | merged -> (
        let elements =
          List.concat
            (List.mapi
               (fun i t ->
                 if i = pos then [ Pipeleon.Transform.Merged_plain { merged; originals } ]
                 else if i = pos + 1 then []
                 else [ Pipeleon.Transform.Plain t ])
               tabs)
        in
        match Pipeleon.Transform.apply prog p elements with
        | prog -> Some prog
        | exception Invalid_argument _ -> None)
      | exception Invalid_argument _ -> None)
  in
  List.fold_left
    (fun prog p -> match merge_pair prog p with Some prog' -> prog' | None -> prog)
    prog pipelets

let optim_equiv ?config ?mutate ?telemetry ?driver target profile prog packets =
  guard (fun () ->
      let result = Pipeleon.Optimizer.optimize ?config target profile prog in
      let optimized = force_ternary_merges result.Pipeleon.Optimizer.program in
      match mutate with
      | None -> replay_diff ?telemetry ?driver target prog optimized packets
      | Some m -> (
        match m optimized with
        | None -> None (* nothing for this mutation to corrupt *)
        | Some corrupted -> replay_diff ?telemetry ?driver target prog corrupted packets))

let roundtrip ?(telemetry = false) ?driver target prog packets =
  if not (supported prog) then
    invalid_arg "Oracle.roundtrip: program carries optimizer-generated tables";
  guard (fun () ->
      let json1 = P4ir.Json.to_string (P4ir.Serialize.program_to_json prog) in
      let reloaded = P4ir.Serialize.program_of_json (P4ir.Json.of_string_exn json1) in
      let json2 = P4ir.Json.to_string (P4ir.Serialize.program_to_json reloaded) in
      if json1 <> json2 then Some { packet_index = -1; reason = "JSON print/parse/print unstable" }
      else begin
        let src1 = P4lite.Emit.emit prog in
        let reparsed = P4lite.Lower.parse_program src1 in
        let src2 = P4lite.Emit.emit reparsed in
        if src1 <> src2 then
          Some { packet_index = -1; reason = "p4l emit/parse/emit not a fixpoint" }
        else begin
          (* Behaviour must survive both round trips. The reference
             interpreter arbitrates so a bug symmetric in Exec cannot
             cancel out. P4-lite has no syntax for conditional names
             (the frontend invents them), so for the p4l leg branch
             trace entries are compared by position and outcome only. *)
          let erase_cond_names p (obs : Refsim.obs) =
            let conds = List.map (fun (_, (c : Program.cond)) -> c.cond_name) (Program.conds p) in
            { obs with
              Refsim.trace =
                List.map
                  (fun (n, o) -> if List.mem n conds then ("<branch>", o) else (n, o))
                  obs.Refsim.trace }
          in
          let ex_json = mk_exec ~telemetry target reloaded in
          let ex_p4l = mk_exec ~telemetry target reparsed in
          let rec go i = function
            | [] -> None
            | flow :: rest -> (
              let want = Refsim.run prog flow in
              match
                Refsim.diff_obs ~compare_trace:true want (exec_obs ?driver ex_json flow)
              with
              | Some reason ->
                Some { packet_index = i; reason = "json round-trip: " ^ reason }
              | None -> (
                match
                  Refsim.diff_obs ~compare_trace:true
                    (erase_cond_names prog want)
                    (erase_cond_names reparsed (exec_obs ?driver ex_p4l flow))
                with
                | Some reason ->
                  Some { packet_index = i; reason = "p4l round-trip: " ^ reason }
                | None -> go (i + 1) rest))
          in
          go 0 packets
        end
      end)
