(** Greedy counterexample shrinking: once the oracle reports a
    divergence, repeatedly try to remove packets, table entries, and
    whole program nodes while the divergence persists, so the repro that
    gets written out is close to minimal. *)

type case = Gen.case = {
  program : P4ir.Program.t;
  profile : Profile.t;
  packets : Gen.flow list;
}

type check = case -> Oracle.divergence option
(** Re-runs the failing oracle on a candidate case. Shrinking keeps a
    candidate only if the check still diverges (not necessarily with the
    same reason — any failure is worth keeping). *)

val shrink : ?max_steps:int -> check -> case -> case
(** Greedy fixpoint, largest reductions first: truncate the packet
    stream at the diverging packet, drop whole nodes (rewiring
    predecessors to a successor and garbage-collecting), drop entries,
    then drop individual packets. [max_steps] (default 500) bounds the
    number of successful reductions; every candidate is validated before
    being checked. If the input does not fail the check it is returned
    unchanged. *)
