module Program = P4ir.Program
module Table = P4ir.Table

type case = Gen.case = {
  program : Program.t;
  profile : Profile.t;
  packets : Gen.flow list;
}

type check = case -> Oracle.divergence option

let fails check case = check case <> None

let take n xs = List.filteri (fun i _ -> i < n) xs
let drop_nth i xs = List.filteri (fun j _ -> j <> i) xs

(* Successors a removed node's predecessors could be rewired to: both
   arms of a branch, and each distinct per-action target of a
   switch-case table (default first, the likeliest behaviour-preserving
   bypass). *)
let bypass_targets prog id =
  match Program.find_exn prog id with
  | Program.Table (_, Program.Uniform n) -> [ n ]
  | Program.Table (tab, Program.Per_action branches) ->
    let default =
      match List.assoc_opt tab.Table.default_action branches with
      | Some n -> n
      | None -> None
    in
    default :: List.map snd branches
  | Program.Cond c -> [ c.on_false; c.on_true ]

let without_node prog id =
  bypass_targets prog id
  |> List.sort_uniq compare
  |> List.filter_map (fun target ->
         if target = Some id then None
         else begin
           let p = Program.redirect prog ~old_target:id ~new_target:target in
           let p = Program.remove_node p id in
           let p = Program.gc p in
           match Program.validate p with Ok () -> Some p | Error _ -> None
         end)

let try_nodes check case =
  List.find_map
    (fun id ->
      List.find_map
        (fun p ->
          let candidate = { case with program = p } in
          if fails check candidate then Some candidate else None)
        (without_node case.program id))
    (Program.node_ids case.program)

let try_entries check case =
  List.find_map
    (fun (id, (tab : Table.t)) ->
      let n = List.length tab.entries in
      let rec at i =
        if i >= n then None
        else begin
          let p =
            Program.update_table case.program id (fun t ->
                { t with Table.entries = drop_nth i t.entries })
          in
          let candidate = { case with program = p } in
          if fails check candidate then Some candidate else at (i + 1)
        end
      in
      at 0)
    (Program.tables case.program)

let try_packets check case =
  let n = List.length case.packets in
  let rec at i =
    if i >= n then None
    else begin
      let candidate = { case with packets = drop_nth i case.packets } in
      if fails check candidate then Some candidate else at (i + 1)
    end
  in
  at 0

let step check case =
  match try_nodes check case with
  | Some c -> Some c
  | None -> (
    match try_entries check case with
    | Some c -> Some c
    | None -> try_packets check case)

let shrink ?(max_steps = 500) check case0 =
  match check case0 with
  | None -> case0
  | Some d ->
    (* Everything after the diverging packet is noise; cut it first so
       the per-candidate replays below stay cheap. *)
    let case =
      if d.Oracle.packet_index >= 0 && d.Oracle.packet_index + 1 < List.length case0.packets
      then begin
        let truncated =
          { case0 with packets = take (d.Oracle.packet_index + 1) case0.packets }
        in
        if fails check truncated then truncated else case0
      end
      else case0
    in
    let steps = ref 0 in
    let rec go case =
      if !steps >= max_steps then case
      else
        match step check case with
        | Some reduced ->
          incr steps;
          go reduced
        | None -> case
    in
    go case
