(** Differential checks: replay a packet stream through two independent
    executions and report the first observable divergence. *)

type divergence = {
  packet_index : int;  (** -1 when not tied to a packet (e.g. textual
                           round-trip instability or a crash) *)
  reason : string;
}

val supported : P4ir.Program.t -> bool
(** [sim_diff] and [roundtrip] require every table to be [Regular]: the
    reference interpreter models neither flow-cache fills nor migration
    metadata, so programs already rewritten by Pipeleon are compared
    engine-vs-engine ([replay_diff]) instead. *)

type exec_driver = Interp | Batched | Parallel | Compiled
(** Which execution path carries each packet of a differential check:
    the plain interpreter ({!Nicsim.Exec.run_packet}), a one-packet
    burst through {!Nicsim.Exec.run_batch}, the sharded-replica shape
    ({!Nicsim.Exec.replicate} + [run_packet_at] + [merge_replica]), or
    the compiled data path ({!Nicsim.Exec.run_packet_compiled}). All
    four claim bit-identical packet outcomes; fuzzing under each driver
    holds them to it against the reference interpreter. *)

val driver_to_string : exec_driver -> string
val driver_of_string : string -> exec_driver option
(** ["interp"], ["batched"], ["parallel"], ["compiled"]. *)

val exec_obs : ?driver:exec_driver -> Nicsim.Exec.t -> Gen.flow -> Refsim.obs
(** One packet through a live executor, observed the way {!Refsim}
    reports (final fields, drop flag, egress, action trace) so the two
    sides compare with {!Refsim.diff_obs}. The executor is stateful —
    caches fill, counters advance — which is the point: it is the
    system under test. [driver] (default [Interp]) selects the execution
    path. Used by the oracles here and by {!Chaos}, which needs the
    observation against a controller-owned simulator. *)

val sim_diff :
  ?telemetry:bool ->
  ?driver:exec_driver ->
  Costmodel.Target.t ->
  P4ir.Program.t ->
  Gen.flow list ->
  divergence option
(** {!Refsim} vs {!Nicsim.Exec} on the same program, comparing final
    field state, drop flag, egress and the per-packet action trace.
    With [telemetry] (default [false]) the executor under test carries
    an enabled {!Telemetry} sink with trace sampling, so the comparison
    also proves the instrumentation is observe-only.
    @raise Invalid_argument if not {!supported}. *)

val replay_diff :
  ?telemetry:bool ->
  ?driver:exec_driver ->
  Costmodel.Target.t ->
  P4ir.Program.t ->
  P4ir.Program.t ->
  Gen.flow list ->
  divergence option
(** The same packet stream through two programs on {!Nicsim.Exec},
    comparing final observable state (traces necessarily differ across a
    rewrite and are reported, not compared). Both executions are
    stateful across the stream, so flow-cache warm-up behaves as it
    would on the NIC. *)

val optim_equiv :
  ?config:Pipeleon.Optimizer.config ->
  ?mutate:(P4ir.Program.t -> P4ir.Program.t option) ->
  ?telemetry:bool ->
  ?driver:exec_driver ->
  Costmodel.Target.t ->
  Profile.t ->
  P4ir.Program.t ->
  Gen.flow list ->
  divergence option
(** Run {!Pipeleon.Optimizer.optimize}, then force a ternary merge on
    the first legal adjacent pair of regular tables in each pipelet (the
    cost model never finds such merges profitable, so without forcing
    them {!Pipeleon.Merge.build_ternary} would go unfuzzed), and check
    the rewritten program against the original with {!replay_diff}.
    [mutate] is applied to the rewritten program first (seeded-bug
    detection tests); if it returns [None] — the mutation found nothing
    to corrupt — the check passes vacuously. Optimizer exceptions are
    reported as divergences. *)

val roundtrip :
  ?telemetry:bool ->
  ?driver:exec_driver ->
  Costmodel.Target.t ->
  P4ir.Program.t ->
  Gen.flow list ->
  divergence option
(** Serialization oracle: JSON print/parse/print stability, P4-lite
    emit/parse/emit fixpoint, and behavioural equality of the reparsed
    program via {!sim_diff}-style comparison against the original. *)
