(** Program diffing for incremental reconfiguration (§6: "compute new
    optimizations as well as compile and deploy updates incrementally").

    A redeploy rarely changes the whole program: most tables survive by
    name with identical shape, and only caches/merged tables and a few
    rewired originals differ. Deploying just the delta shrinks the
    service interruption on reload-based NICs from a full reflash to a
    per-table cost. *)

type change =
  | Added of string  (** table new in the target layout *)
  | Removed of string
  | Reshaped of string  (** same name, different keys/actions/role *)
  | Entries_changed of string  (** same shape, different static entries *)

val diff : old_program:P4ir.Program.t -> new_program:P4ir.Program.t -> change list
(** Name-keyed structural diff of the table sets (control-flow rewiring
    shows up as added/removed cache or merged tables). *)

val rebuild_count : change list -> int
(** Changes that require touching hardware state (everything except
    [Entries_changed], which is ordinary entry-update traffic). *)

val pipelet_signature :
  Profile.t -> Pipeleon.Hotspot.hot -> P4ir.Table.t list -> string
(** Key for the optimizer's warm-start cache
    ({!Pipeleon.Search.eval_cache}): the pipelet's reach probability,
    the profile's default cache-hit estimate, and per table its name,
    entry count, shape hash, and profiled stats — all floats bucketed to
    three significant digits. Two rounds whose signatures match produce
    identical candidate evaluations, so the cached list is reusable. *)

val pp_change : Format.formatter -> change -> unit
