(** Seeded, deterministic fault injection for the runtime control loop.

    §3.2's "optimization considerations" demand corrective action when a
    deployed optimization misbehaves — but nothing can be proven about
    recovery unless failures can be *made to happen*. This injector
    produces the three failure families the controller must survive:

    - {b deploy failures}: a reconfiguration comes up and fails
      verification ({!Nicsim.Sim.Deploy_failed}); the controller must
      roll back to its last-known-good layout and retry with backoff;
    - {b entry-update faults}: a control-plane insert/delete/rebuild is
      silently dropped, or lands corrupted (wrong action); the
      controller's read-back verification must repair the engine;
    - {b profile skew}: instrumentation counters are multiplied by a
      stable per-table factor, feeding the optimizer a distorted profile;
      the monitors must catch the resulting bad layout and remediation
      must reverse it.

    Everything is a pure function of the seed (plus, for per-table skew,
    the table name), so a chaos run replays bit-for-bit. Disabled by
    default: with {!disabled} the controller behaves exactly as before
    and pays nothing. *)

type config = {
  enabled : bool;
  seed : int;
  deploy_fail_burst : int;
      (** the first [n] deploy attempts fail deterministically — the
          "persistent failure" scenario (rollback must hold the fort) *)
  deploy_fail_prob : float;
      (** later attempts fail with this probability — the "transient
          failure" scenario (retry + backoff must converge) *)
  update_drop_prob : float;  (** an entry-update op silently vanishes *)
  update_corrupt_prob : float;
      (** an insert/rebuild lands with a wrong action (or one entry
          short); detectable by read-back *)
  profile_skew : float;
      (** max multiplicative distortion of folded profile counters: each
          table gets a stable factor in [1-skew, 1+skew] *)
}

val disabled : config
(** All probabilities zero, [enabled = false]: the production default. *)

val chaos_defaults : config
(** The chaos fuzzer's baseline: enabled, moderate probabilities on
    every family ([seed] still 0 — set it per case). *)

type t

val create : config -> t
val config : t -> config
val enabled : t -> bool

val deploy_attempt : t -> string option
(** Ask whether the next deploy fails; [Some reason] on injected
    failure. Consumes PRNG state (deterministic in call order). *)

val deploy_failures_injected : t -> int
(** Deploy failures injected so far (chaos-oracle bookkeeping). *)

type update_fate = Apply | Drop | Corrupt

val update_fate : t -> update_fate
(** Fate of the next entry-update operation. *)

val corrupt_entry : t -> P4ir.Table.t -> P4ir.Table.entry -> P4ir.Table.entry option
(** A corrupted-but-well-formed variant of the entry (another action of
    the same table), or [None] when the table offers no way to corrupt it
    (single-action tables) — callers treat that as a drop. *)

val skew_count : t -> owner:string -> int64 -> int64
(** Distort a counter value by the owner's stable skew factor. Identity
    when [profile_skew = 0]. Pure in (seed, owner, value) — the same
    table sees the same distortion every window, like a miscalibrated
    counter would. *)
