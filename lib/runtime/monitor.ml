type issue =
  | Low_hit_rate of { cache : string; observed : float; expected : float }
  | Merged_blowup of { merged : string; entries : int; limit : int }
  | Update_storm of { table : string; rate : float; limit : float }

type thresholds = {
  hit_rate_slack : float;
  entry_limit : int;
  update_limit : float;
}

let default_thresholds =
  { hit_rate_slack = 0.15;
    entry_limit = Pipeleon.Merge.max_merged_entries;
    update_limit = 5000. }

let run ~storm_all_tables th ~observed prog =
  let issues = ref [] in
  List.iter
    (fun (_, (tab : P4ir.Table.t)) ->
      (match tab.role with
       | P4ir.Table.Cache meta when meta.auto_insert -> (
         match Profile.table_stats observed tab.name with
         | Some stats ->
           let miss =
             match List.assoc_opt tab.default_action stats.action_probs with
             | Some p -> p
             | None -> 0.
           in
           let observed_hit = 1. -. miss in
           let expected = Profile.default_cache_hit observed in
           if observed_hit < expected -. th.hit_rate_slack then
             issues :=
               Low_hit_rate { cache = tab.name; observed = observed_hit; expected }
               :: !issues
         | None -> ())
       | P4ir.Table.Merged _ ->
         let n = P4ir.Table.num_entries tab in
         if n > th.entry_limit then
           issues :=
             Merged_blowup { merged = tab.name; entries = n; limit = th.entry_limit }
             :: !issues
       | _ -> ());
      let rate = Profile.update_rate observed ~table_name:tab.name in
      let storm_eligible =
        match tab.role with
        | P4ir.Table.Merged _ -> true
        | _ -> storm_all_tables
      in
      if storm_eligible && rate > th.update_limit then
        issues := Update_storm { table = tab.name; rate; limit = th.update_limit } :: !issues)
    (P4ir.Program.tables prog);
  List.rev !issues

let check ?(thresholds = default_thresholds) ~observed prog =
  run ~storm_all_tables:true thresholds ~observed prog

let assess ?(hit_rate_slack = default_thresholds.hit_rate_slack)
    ?(entry_limit = default_thresholds.entry_limit)
    ?(update_limit = default_thresholds.update_limit) ~observed prog =
  (* Pre-thresholds API: storms were only reported on merged tables. *)
  run ~storm_all_tables:false { hit_rate_slack; entry_limit; update_limit } ~observed prog

let pp_issue fmt = function
  | Low_hit_rate { cache; observed; expected } ->
    Format.fprintf fmt "low hit rate on %s: %.2f < %.2f" cache observed expected
  | Merged_blowup { merged; entries; limit } ->
    Format.fprintf fmt "merged table %s has %d entries (limit %d)" merged entries limit
  | Update_storm { table; rate; limit } ->
    Format.fprintf fmt "update storm on %s: %.1f/s (limit %.1f)" table rate limit
