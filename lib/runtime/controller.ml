type deploy_mode = Full | Incremental

type config = {
  optimizer : Pipeleon.Optimizer.config;
  reconfig_downtime : float;
  min_relative_gain : float;
  deploy_mode : deploy_mode;
  warm_start : bool;
  thresholds : Monitor.thresholds;
  faults : Faults.config;
  deploy_retries : int;
  backoff_base : float;
  backoff_cap : float;
  blacklist_ttl : int;
}

let default_config =
  { optimizer = Pipeleon.Optimizer.default_config;
    reconfig_downtime = 0.;
    min_relative_gain = 0.03;
    deploy_mode = Full;
    warm_start = true;
    thresholds = Monitor.default_thresholds;
    faults = Faults.disabled;
    deploy_retries = 2;
    backoff_base = 0.5;
    backoff_cap = 8.;
    blacklist_ttl = 5 }

type t = {
  cfg : config;
  simulator : Nicsim.Sim.t;
  faults : Faults.t;
  mutable original : P4ir.Program.t;
  mutable deployed : P4ir.Program.t;
  mutable gen : int;
  mutable ticks : int;
  mutable baseline : Profile.Counter.t;
  update_counts : (string, int) Hashtbl.t;
  mutable last_tick : float;
  mutable deploy_failures : int;
      (* consecutive failed install attempts; feeds the backoff schedule
         and resets on the first success *)
  blacklist : Remediate.blacklist;
  locality_memory : (string, float) Hashtbl.t;
      (* last believed flow-cache hit rate per original table; decays back
         toward the default so caching is retried after traffic shifts *)
  warm : Pipeleon.Search.eval_cache;
      (* candidate evaluations from previous generations, keyed by
         pipelet signature + bucketed profile (Incremental.pipelet_signature) *)
}

let create ?(config = default_config) simulator ~original =
  { cfg = config;
    simulator;
    faults = Faults.create config.faults;
    original;
    deployed = Nicsim.Exec.program (Nicsim.Sim.exec simulator);
    gen = 0;
    ticks = 0;
    baseline = Profile.Counter.create ();
    update_counts = Hashtbl.create 16;
    last_tick = Nicsim.Sim.now simulator;
    deploy_failures = 0;
    blacklist = Remediate.create_blacklist ();
    locality_memory = Hashtbl.create 16;
    warm = Pipeleon.Search.create_cache () }

let sim t = t.simulator
let original_program t = t.original
let deployed_program t = t.deployed
let generation t = t.gen
let faults t = t.faults
let active_exclusions t = Remediate.active t.blacklist ~now:t.ticks

let bump t name =
  let tel = Nicsim.Sim.telemetry t.simulator in
  if Telemetry.enabled tel then
    Telemetry.Metrics.inc (Telemetry.Metrics.counter (Telemetry.metrics tel) name)

let add_runtime_span t ~name ~start ~dur ~args =
  let tel = Nicsim.Sim.telemetry t.simulator in
  if Telemetry.enabled tel then
    Telemetry.add_span tel
      { Telemetry.Trace.name;
        cat = "runtime";
        ts = start *. 1e6;
        dur = dur *. 1e6;
        tid = 0;
        args }

let count_update t table =
  let cur = match Hashtbl.find_opt t.update_counts table with Some n -> n | None -> 0 in
  Hashtbl.replace t.update_counts table (cur + 1)

let node_id_of t table =
  match P4ir.Program.find_table t.original table with
  | Some (id, _) -> id
  | None -> invalid_arg ("Controller: unknown original table " ^ table)

(* --- entry-update path: translation, fault injection, read-back --- *)

let apply_op t (op : Pipeleon.Api_map.op) =
  let ex = Nicsim.Sim.exec t.simulator in
  match op with
  | Pipeleon.Api_map.Direct { table; insert = true; entry } ->
    Nicsim.Sim.insert t.simulator ~table entry
  | Pipeleon.Api_map.Direct { table; insert = false; entry } ->
    ignore (Nicsim.Sim.delete t.simulator ~table ~patterns:entry.patterns)
  | Pipeleon.Api_map.Rebuild { table; entries } ->
    Nicsim.Engine.replace_all (Nicsim.Exec.engine_exn ex table) entries
  | Pipeleon.Api_map.Invalidate table ->
    Nicsim.Engine.invalidate (Nicsim.Exec.engine_exn ex table)

let deployed_table t name =
  List.find_map
    (fun (_, (tab : P4ir.Table.t)) ->
      if String.equal tab.name name then Some tab else None)
    (P4ir.Program.tables t.deployed)

(* Apply an op through the faulty channel: it may silently vanish or land
   corrupted. Corruptions are well-formed (another action of the same
   table, or a rebuild one entry short) — exactly what read-back must
   catch. *)
let apply_op_faulty t (op : Pipeleon.Api_map.op) =
  match Faults.update_fate t.faults with
  | Faults.Apply -> apply_op t op
  | Faults.Drop -> ()
  | Faults.Corrupt -> (
    match op with
    | Pipeleon.Api_map.Direct { table; insert = true; entry } -> (
      match deployed_table t table with
      | Some tab -> (
        match Faults.corrupt_entry t.faults tab entry with
        | Some bad -> Nicsim.Sim.insert t.simulator ~table bad
        | None -> () (* nothing to corrupt with: drop *))
      | None -> ())
    | Pipeleon.Api_map.Rebuild { table; entries = _ :: rest } ->
      Nicsim.Engine.replace_all
        (Nicsim.Exec.engine_exn (Nicsim.Sim.exec t.simulator) table)
        rest
    | _ -> () (* deletes / invalidations / empty rebuilds corrupt to drops *))

let entry_equal (a : P4ir.Table.entry) (b : P4ir.Table.entry) =
  a.priority = b.priority
  && String.equal a.action b.action
  && List.length a.patterns = List.length b.patterns
  && List.for_all2 P4ir.Pattern.equal a.patterns b.patterns

let patterns_equal (a : P4ir.Pattern.t list) (b : P4ir.Pattern.t list) =
  List.length a = List.length b && List.for_all2 P4ir.Pattern.equal a b

let readback t table =
  Nicsim.Engine.entries (Nicsim.Exec.engine_exn (Nicsim.Sim.exec t.simulator) table)

let op_healthy t (op : Pipeleon.Api_map.op) =
  match op with
  | Pipeleon.Api_map.Direct { table; insert = true; entry } ->
    List.exists (entry_equal entry) (readback t table)
  | Pipeleon.Api_map.Direct { table; insert = false; entry } ->
    not
      (List.exists
         (fun (e : P4ir.Table.entry) -> patterns_equal e.patterns entry.patterns)
         (readback t table))
  | Pipeleon.Api_map.Rebuild { table; entries } ->
    let live = readback t table in
    List.length live = List.length entries
    && List.for_all (fun e -> List.exists (entry_equal e) live) entries
  | Pipeleon.Api_map.Invalidate table ->
    Nicsim.Engine.num_entries (Nicsim.Exec.engine_exn (Nicsim.Sim.exec t.simulator) table)
    = 0

let repair_op t (op : Pipeleon.Api_map.op) =
  (match op with
   | Pipeleon.Api_map.Direct { table; insert = true; entry } ->
     (* sweep out whatever landed under these patterns (a corrupted
        variant), then apply fault-free *)
     ignore (Nicsim.Sim.delete t.simulator ~table ~patterns:entry.patterns);
     Nicsim.Sim.insert t.simulator ~table entry
   | Pipeleon.Api_map.Direct { insert = false; _ }
   | Pipeleon.Api_map.Rebuild _ | Pipeleon.Api_map.Invalidate _ -> apply_op t op);
  bump t "runtime.remediations.update_repair"

let run_ops t ops =
  if not (Faults.enabled t.faults) then List.iter (apply_op t) ops
  else
    List.iter
      (fun op ->
        apply_op_faulty t op;
        if not (op_healthy t op) then repair_op t op)
      ops

let insert t ~table entry =
  let id = node_id_of t table in
  t.original <- P4ir.Program.update_table t.original id (fun tab -> P4ir.Table.add_entry tab entry);
  count_update t table;
  run_ops t
    (Pipeleon.Api_map.map_insert ~original:t.original ~optimized:t.deployed ~table entry)

let delete t ~table entry =
  let id = node_id_of t table in
  t.original <-
    P4ir.Program.update_table t.original id (fun tab ->
        { tab with
          P4ir.Table.entries =
            List.filter
              (fun (e : P4ir.Table.entry) ->
                not (List.for_all2 P4ir.Pattern.equal e.patterns entry.P4ir.Table.patterns))
              tab.P4ir.Table.entries });
  count_update t table;
  run_ops t
    (Pipeleon.Api_map.map_delete ~original:t.original ~optimized:t.deployed ~table entry)

(* --- verified deploy: snapshot, install, rollback + backoff --- *)

type deploy_report = {
  installed : bool;
  generation : int;
  attempts : int;
  rollbacks : int;
  downtime_seconds : float;
  tables_rebuilt : int;
  failure : string option;
}

(* One install through the simulator; returns the number of tables
   (re)built. Downtime is charged to the clock by the simulator itself,
   so callers measure it as a clock delta — that stays correct for a
   failed hot-patch, where the rebuilt count is lost to the exception. *)
let install t program =
  match t.cfg.deploy_mode with
  | Full ->
    Nicsim.Sim.reconfigure ~downtime:t.cfg.reconfig_downtime t.simulator program;
    t.baseline <- Profile.Counter.create ();
    List.length (P4ir.Program.tables program)
  | Incremental ->
    let total = max 1 (List.length (P4ir.Program.tables program)) in
    let per_table = t.cfg.reconfig_downtime /. float_of_int total in
    Nicsim.Sim.hot_patch ~downtime_per_table:per_table t.simulator program

let deploy t program =
  let sim = t.simulator in
  (* Last-known-good: the running program with its live entries, so a
     rollback restores even tables the failed deploy dropped. *)
  let snapshot = Nicsim.Exec.sync_entries_to_ir (Nicsim.Sim.exec sim) in
  let arm () =
    if Faults.enabled t.faults then
      Nicsim.Sim.set_deploy_fault sim (Some (fun () -> Faults.deploy_attempt t.faults))
  in
  let disarm () = Nicsim.Sim.set_deploy_fault sim None in
  let max_attempts = 1 + max 0 t.cfg.deploy_retries in
  let rec go attempt downtime_acc =
    let before = Nicsim.Sim.now sim in
    arm ();
    match install t program with
    | rebuilt ->
      disarm ();
      let charged = Nicsim.Sim.now sim -. before in
      t.deployed <- program;
      t.gen <- t.gen + 1;
      t.deploy_failures <- 0;
      add_runtime_span t ~name:"deploy" ~start:before ~dur:charged
        ~args:[ ("generation", string_of_int t.gen); ("attempt", string_of_int attempt) ];
      { installed = true;
        generation = t.gen;
        attempts = attempt;
        rollbacks = attempt - 1;
        downtime_seconds = downtime_acc +. charged;
        tables_rebuilt = rebuilt;
        failure = None }
    | exception Nicsim.Sim.Deploy_failed reason ->
      let failed_charge = Nicsim.Sim.now sim -. before in
      t.deploy_failures <- t.deploy_failures + 1;
      (* Roll back: reload the cached known-good image. The fault hook is
         disarmed first — reverting to a previously verified image is the
         one deploy that cannot fail verification. *)
      disarm ();
      let rb_start = Nicsim.Sim.now sim in
      Nicsim.Sim.reconfigure ~downtime:t.cfg.reconfig_downtime sim snapshot;
      t.baseline <- Profile.Counter.create ();
      let rb_charge = Nicsim.Sim.now sim -. rb_start in
      bump t "runtime.remediations.rollback";
      add_runtime_span t ~name:"rollback" ~start:rb_start ~dur:rb_charge
        ~args:[ ("reason", reason); ("attempt", string_of_int attempt) ];
      let downtime_acc = downtime_acc +. failed_charge +. rb_charge in
      if attempt >= max_attempts then
        { installed = false;
          generation = t.gen;
          attempts = attempt;
          rollbacks = attempt;
          downtime_seconds = downtime_acc;
          tables_rebuilt = 0;
          failure = Some reason }
      else begin
        bump t "runtime.remediations.retry";
        (* Serve last-known-good while waiting out the backoff; the wait
           grows with *consecutive* failures, across deploy calls. *)
        Nicsim.Sim.advance sim
          (Remediate.backoff ~base:t.cfg.backoff_base ~cap:t.cfg.backoff_cap
             ~failures:t.deploy_failures);
        go (attempt + 1) downtime_acc
      end
  in
  go 1 0.

let force_redeploy t program = ignore (deploy t program)

(* --- the control loop --- *)

type tick_report = {
  reoptimized : bool;
  predicted_gain : float;
  issues : Monitor.issue list;
  remediations : Remediate.action list;
  profile : Profile.t;
  search_seconds : float;
  deploy : deploy_report option;
}

(* Observed flow-cache hit rates, per covered original table — but only
   from caches whose covered tables saw no entry updates this window:
   misses caused by invalidation say nothing about traffic locality, and
   would wrongly poison every table the cache happened to cover. *)
let observed_localities ~deployed ~prof_opt ~prof_orig =
  List.concat_map
    (fun (_, (tab : P4ir.Table.t)) ->
      match tab.role with
      | P4ir.Table.Cache meta when meta.auto_insert -> (
        let covered_updates =
          List.fold_left
            (fun acc name -> acc +. Profile.update_rate prof_orig ~table_name:name)
            0. meta.cached_tables
        in
        if covered_updates > 0. then []
        else
          match Profile.table_stats prof_opt tab.name with
          | Some stats ->
            let miss =
              match List.assoc_opt tab.default_action stats.Profile.action_probs with
              | Some p -> p
              | None -> 1.
            in
            List.map (fun name -> (name, 1. -. miss)) meta.cached_tables
          | None -> [])
      | _ -> [])
    (P4ir.Program.tables deployed)

(* Locality beliefs persist across layout changes (a removed cache stops
   producing observations) and decay toward the planning default so
   caching is re-tried once stale pessimism has faded. *)
let locality_decay = 0.25

let remember_localities t ~observations ~default =
  List.iter
    (fun (name, hit) -> Hashtbl.replace t.locality_memory name hit)
    observations;
  let observed = List.map fst observations in
  Hashtbl.iter
    (fun name current ->
      if not (List.mem name observed) then
        Hashtbl.replace t.locality_memory name
          (current +. (locality_decay *. (default -. current))))
    (Hashtbl.copy t.locality_memory)

let apply_locality_memory t prof =
  Hashtbl.fold
    (fun name locality prof ->
      match Profile.table_stats prof name with
      | Some s -> Profile.set_table name { s with Profile.locality } prof
      | None -> prof)
    t.locality_memory prof

(* Injected counter skew: every label of an owner scales by the owner's
   stable factor, like a miscalibrated per-table counter bank. *)
let skewed_counters t counter =
  if (not (Faults.enabled t.faults)) || (Faults.config t.faults).Faults.profile_skew <= 0.
  then counter
  else begin
    let out = Profile.Counter.create () in
    List.iter
      (fun ((k : Profile.Counter.key), v) ->
        Profile.Counter.incr
          ~by:(Faults.skew_count t.faults ~owner:k.owner v)
          out ~owner:k.owner ~label:k.label)
      (Profile.Counter.dump counter);
    out
  end

(* Two programs lay out the data plane identically when their tables
   match by name and role — entry contents may differ (the control plane
   churns them continuously). *)
let same_layout a b =
  let sig_of p =
    List.map (fun (_, (tab : P4ir.Table.t)) -> (tab.name, tab.role)) (P4ir.Program.tables p)
  in
  sig_of a = sig_of b

let tick t =
  t.ticks <- t.ticks + 1;
  let now = Nicsim.Sim.now t.simulator in
  let window = Float.max 1e-9 (now -. t.last_tick) in
  t.last_tick <- now;
  let target = Nicsim.Sim.target t.simulator in
  let current = Nicsim.Exec.counters (Nicsim.Sim.exec t.simulator) in
  let delta = Profile.Counter.diff ~current ~baseline:t.baseline in
  t.baseline <- Profile.Counter.snapshot current;
  let delta = skewed_counters t delta in
  let folded = Profile.Counter_map.fold_back ~optimized:t.deployed delta in
  Hashtbl.iter
    (fun table count ->
      Profile.Counter.incr ~by:(Int64.of_int count) folded ~owner:table ~label:"update")
    t.update_counts;
  Hashtbl.reset t.update_counts;
  let prof_opt = Profile.of_counters ~window t.deployed delta in
  let prof_orig = Profile.of_counters ~window t.original folded in
  let observations = observed_localities ~deployed:t.deployed ~prof_opt ~prof_orig in
  remember_localities t ~observations ~default:(Profile.default_cache_hit prof_orig);
  let prof_orig = apply_locality_memory t prof_orig in
  let issues = Monitor.check ~thresholds:t.cfg.thresholds ~observed:prof_opt t.deployed in
  let remediations = Remediate.plan ~deployed:t.deployed issues in
  List.iter
    (fun action ->
      bump t
        (match action with
         | Remediate.Evict_cache _ -> "runtime.remediations.cache_evict"
         | Remediate.Split_merge _ -> "runtime.remediations.merge_split"
         | Remediate.Shed _ -> "runtime.remediations.shed");
      List.iter
        (Remediate.ban t.blacklist ~now:t.ticks ~ttl:t.cfg.blacklist_ttl)
        (Remediate.exclusions_of_action action))
    remediations;
  let tel = Nicsim.Sim.telemetry t.simulator in
  let record_common ~predicted_gain ~search_seconds =
    if Telemetry.enabled tel then begin
      let m = Telemetry.metrics tel in
      Telemetry.Metrics.inc (Telemetry.Metrics.counter m "runtime.ticks");
      Telemetry.Metrics.set
        (Telemetry.Metrics.gauge m "runtime.generation")
        (float_of_int t.gen);
      Telemetry.Metrics.set
        (Telemetry.Metrics.gauge m "runtime.predicted_gain")
        predicted_gain;
      Telemetry.Histogram.record
        (Telemetry.Metrics.histogram m "runtime.search_seconds")
        search_seconds;
      List.iter
        (fun issue ->
          let name =
            match issue with
            | Monitor.Low_hit_rate _ -> "runtime.issues.low_hit_rate"
            | Monitor.Merged_blowup _ -> "runtime.issues.merged_blowup"
            | Monitor.Update_storm _ -> "runtime.issues.update_storm"
          in
          Telemetry.Metrics.inc (Telemetry.Metrics.counter m name))
        issues
    end
  in
  if Remediate.sheds remediations then begin
    (* Mid-storm the profile is churn, not signal: skip the search rather
       than optimize against it (the blacklist already covers the stormed
       tables for when the search resumes). *)
    record_common ~predicted_gain:0. ~search_seconds:0.;
    { reoptimized = false;
      predicted_gain = 0.;
      issues;
      remediations;
      profile = prof_orig;
      search_seconds = 0.;
      deploy = None }
  end
  else begin
    let exclusions = Remediate.active t.blacklist ~now:t.ticks in
    let warm =
      if t.cfg.warm_start then
        Some
          { Pipeleon.Optimizer.warm_cache = t.warm;
            warm_signature = Incremental.pipelet_signature }
      else None
    in
    let result =
      Pipeleon.Optimizer.optimize ~config:t.cfg.optimizer ~generation:(t.gen + 1) ?warm
        ~exclusions ~telemetry:tel target prof_orig t.original
    in
    let latency_original = Costmodel.Cost.expected_latency target prof_orig t.original in
    let latency_new = latency_original -. result.plan.Pipeleon.Search.predicted_gain in
    let latency_current = Costmodel.Cost.expected_latency target prof_opt t.deployed in
    let worthwhile = latency_new < latency_current *. (1. -. t.cfg.min_relative_gain) in
    (* A remediation must land even when its layout is predicted slower:
       the prediction trusted the very estimates the monitors just
       falsified. Skip only if the search produced the layout already
       running. *)
    let corrective =
      remediations <> [] && not (same_layout result.Pipeleon.Optimizer.program t.deployed)
    in
    let report =
      if worthwhile || corrective then Some (deploy t result.Pipeleon.Optimizer.program)
      else None
    in
    record_common ~predicted_gain:result.plan.Pipeleon.Search.predicted_gain
      ~search_seconds:result.Pipeleon.Optimizer.elapsed_seconds;
    (if Telemetry.enabled tel then
       let m = Telemetry.metrics tel in
       match report with
       | Some r ->
         if r.installed then
           Telemetry.Metrics.inc (Telemetry.Metrics.counter m "runtime.redeploys");
         Telemetry.Metrics.set
           (Telemetry.Metrics.gauge m "runtime.deploy_seconds")
           r.downtime_seconds
       | None -> ());
    { reoptimized = (match report with Some r -> r.installed | None -> false);
      predicted_gain = result.plan.Pipeleon.Search.predicted_gain;
      issues;
      remediations;
      profile = prof_orig;
      search_seconds = result.Pipeleon.Optimizer.elapsed_seconds;
      deploy = report }
  end
