type deploy_mode = Full | Incremental

type config = {
  optimizer : Pipeleon.Optimizer.config;
  reconfig_downtime : float;
  min_relative_gain : float;
  deploy_mode : deploy_mode;
  warm_start : bool;
}

let default_config =
  { optimizer = Pipeleon.Optimizer.default_config;
    reconfig_downtime = 0.;
    min_relative_gain = 0.03;
    deploy_mode = Full;
    warm_start = true }

type t = {
  cfg : config;
  simulator : Nicsim.Sim.t;
  mutable original : P4ir.Program.t;
  mutable deployed : P4ir.Program.t;
  mutable gen : int;
  mutable baseline : Profile.Counter.t;
  update_counts : (string, int) Hashtbl.t;
  mutable last_tick : float;
  locality_memory : (string, float) Hashtbl.t;
      (* last believed flow-cache hit rate per original table; decays back
         toward the default so caching is retried after traffic shifts *)
  warm : Pipeleon.Search.eval_cache;
      (* candidate evaluations from previous generations, keyed by
         pipelet signature + bucketed profile (Incremental.pipelet_signature) *)
}

let create ?(config = default_config) simulator ~original =
  { cfg = config;
    simulator;
    original;
    deployed = Nicsim.Exec.program (Nicsim.Sim.exec simulator);
    gen = 0;
    baseline = Profile.Counter.create ();
    update_counts = Hashtbl.create 16;
    last_tick = Nicsim.Sim.now simulator;
    locality_memory = Hashtbl.create 16;
    warm = Pipeleon.Search.create_cache () }

let sim t = t.simulator
let original_program t = t.original
let deployed_program t = t.deployed
let generation t = t.gen

let count_update t table =
  let cur = match Hashtbl.find_opt t.update_counts table with Some n -> n | None -> 0 in
  Hashtbl.replace t.update_counts table (cur + 1)

let node_id_of t table =
  match P4ir.Program.find_table t.original table with
  | Some (id, _) -> id
  | None -> invalid_arg ("Controller: unknown original table " ^ table)

let run_ops t ops =
  let ex = Nicsim.Sim.exec t.simulator in
  List.iter
    (fun (op : Pipeleon.Api_map.op) ->
      match op with
      | Pipeleon.Api_map.Direct { table; insert = true; entry } ->
        Nicsim.Sim.insert t.simulator ~table entry
      | Pipeleon.Api_map.Direct { table; insert = false; entry } ->
        ignore (Nicsim.Sim.delete t.simulator ~table ~patterns:entry.patterns)
      | Pipeleon.Api_map.Rebuild { table; entries } ->
        Nicsim.Engine.replace_all (Nicsim.Exec.engine_exn ex table) entries
      | Pipeleon.Api_map.Invalidate table ->
        Nicsim.Engine.invalidate (Nicsim.Exec.engine_exn ex table))
    ops

let insert t ~table entry =
  let id = node_id_of t table in
  t.original <- P4ir.Program.update_table t.original id (fun tab -> P4ir.Table.add_entry tab entry);
  count_update t table;
  run_ops t
    (Pipeleon.Api_map.map_insert ~original:t.original ~optimized:t.deployed ~table entry)

let delete t ~table entry =
  let id = node_id_of t table in
  t.original <-
    P4ir.Program.update_table t.original id (fun tab ->
        { tab with
          P4ir.Table.entries =
            List.filter
              (fun (e : P4ir.Table.entry) ->
                not (List.for_all2 P4ir.Pattern.equal e.patterns entry.P4ir.Table.patterns))
              tab.P4ir.Table.entries });
  count_update t table;
  run_ops t
    (Pipeleon.Api_map.map_delete ~original:t.original ~optimized:t.deployed ~table entry)

type tick_report = {
  reoptimized : bool;
  predicted_gain : float;
  issues : Monitor.issue list;
  profile : Profile.t;
  search_seconds : float;
  deploy_seconds : float;
}

(* Observed flow-cache hit rates, per covered original table — but only
   from caches whose covered tables saw no entry updates this window:
   misses caused by invalidation say nothing about traffic locality, and
   would wrongly poison every table the cache happened to cover. *)
let observed_localities ~deployed ~prof_opt ~prof_orig =
  List.concat_map
    (fun (_, (tab : P4ir.Table.t)) ->
      match tab.role with
      | P4ir.Table.Cache meta when meta.auto_insert -> (
        let covered_updates =
          List.fold_left
            (fun acc name -> acc +. Profile.update_rate prof_orig ~table_name:name)
            0. meta.cached_tables
        in
        if covered_updates > 0. then []
        else
          match Profile.table_stats prof_opt tab.name with
          | Some stats ->
            let miss =
              match List.assoc_opt tab.default_action stats.Profile.action_probs with
              | Some p -> p
              | None -> 1.
            in
            List.map (fun name -> (name, 1. -. miss)) meta.cached_tables
          | None -> [])
      | _ -> [])
    (P4ir.Program.tables deployed)

(* Locality beliefs persist across layout changes (a removed cache stops
   producing observations) and decay toward the planning default so
   caching is re-tried once stale pessimism has faded. *)
let locality_decay = 0.25

let remember_localities t ~observations ~default =
  List.iter
    (fun (name, hit) -> Hashtbl.replace t.locality_memory name hit)
    observations;
  let observed = List.map fst observations in
  Hashtbl.iter
    (fun name current ->
      if not (List.mem name observed) then
        Hashtbl.replace t.locality_memory name
          (current +. (locality_decay *. (default -. current))))
    (Hashtbl.copy t.locality_memory)

let apply_locality_memory t prof =
  Hashtbl.fold
    (fun name locality prof ->
      match Profile.table_stats prof name with
      | Some s -> Profile.set_table name { s with Profile.locality } prof
      | None -> prof)
    t.locality_memory prof

(* Returns the emulated seconds of service interruption actually charged
   to the simulator clock: the full [reconfig_downtime] for a reload, the
   rebuilt fraction of it for an incremental patch. *)
let deploy t program =
  let charged =
    match t.cfg.deploy_mode with
    | Full ->
      Nicsim.Sim.reconfigure ~downtime:t.cfg.reconfig_downtime t.simulator program;
      t.baseline <- Profile.Counter.create ();
      t.cfg.reconfig_downtime
    | Incremental ->
      (* Interruption proportional to the share of tables rebuilt; the
         counters and unchanged caches survive the patch. *)
      let total = max 1 (List.length (P4ir.Program.tables program)) in
      let per_table = t.cfg.reconfig_downtime /. float_of_int total in
      let rebuilt = Nicsim.Sim.hot_patch ~downtime_per_table:per_table t.simulator program in
      per_table *. float_of_int rebuilt
  in
  t.deployed <- program;
  t.gen <- t.gen + 1;
  charged

let tick t =
  let now = Nicsim.Sim.now t.simulator in
  let window = Float.max 1e-9 (now -. t.last_tick) in
  t.last_tick <- now;
  let target = Nicsim.Sim.target t.simulator in
  let current = Nicsim.Exec.counters (Nicsim.Sim.exec t.simulator) in
  let delta = Profile.Counter.diff ~current ~baseline:t.baseline in
  t.baseline <- Profile.Counter.snapshot current;
  let folded = Profile.Counter_map.fold_back ~optimized:t.deployed delta in
  Hashtbl.iter
    (fun table count ->
      Profile.Counter.incr ~by:(Int64.of_int count) folded ~owner:table ~label:"update")
    t.update_counts;
  Hashtbl.reset t.update_counts;
  let prof_opt = Profile.of_counters ~window t.deployed delta in
  let prof_orig = Profile.of_counters ~window t.original folded in
  let observations = observed_localities ~deployed:t.deployed ~prof_opt ~prof_orig in
  remember_localities t ~observations ~default:(Profile.default_cache_hit prof_orig);
  let prof_orig = apply_locality_memory t prof_orig in
  let issues = Monitor.assess ~observed:prof_opt t.deployed in
  let warm =
    if t.cfg.warm_start then
      Some
        { Pipeleon.Optimizer.warm_cache = t.warm;
          warm_signature = Incremental.pipelet_signature }
    else None
  in
  let tel = Nicsim.Sim.telemetry t.simulator in
  let result =
    Pipeleon.Optimizer.optimize ~config:t.cfg.optimizer ~generation:(t.gen + 1) ?warm
      ~telemetry:tel target prof_orig t.original
  in
  let latency_original = Costmodel.Cost.expected_latency target prof_orig t.original in
  let latency_new = latency_original -. result.plan.Pipeleon.Search.predicted_gain in
  let latency_current = Costmodel.Cost.expected_latency target prof_opt t.deployed in
  let worthwhile = latency_new < latency_current *. (1. -. t.cfg.min_relative_gain) in
  let deploy_seconds =
    if worthwhile then deploy t result.Pipeleon.Optimizer.program else 0.
  in
  if Telemetry.enabled tel then begin
    let m = Telemetry.metrics tel in
    Telemetry.Metrics.inc (Telemetry.Metrics.counter m "runtime.ticks");
    Telemetry.Metrics.set
      (Telemetry.Metrics.gauge m "runtime.generation")
      (float_of_int t.gen);
    Telemetry.Metrics.set
      (Telemetry.Metrics.gauge m "runtime.predicted_gain")
      result.plan.Pipeleon.Search.predicted_gain;
    Telemetry.Histogram.record
      (Telemetry.Metrics.histogram m "runtime.search_seconds")
      result.Pipeleon.Optimizer.elapsed_seconds;
    if worthwhile then begin
      Telemetry.Metrics.inc (Telemetry.Metrics.counter m "runtime.redeploys");
      Telemetry.Metrics.set
        (Telemetry.Metrics.gauge m "runtime.deploy_seconds")
        deploy_seconds
    end;
    List.iter
      (fun issue ->
        let name =
          match issue with
          | Monitor.Low_hit_rate _ -> "runtime.issues.low_hit_rate"
          | Monitor.Merged_blowup _ -> "runtime.issues.merged_blowup"
          | Monitor.Update_storm _ -> "runtime.issues.update_storm"
        in
        Telemetry.Metrics.inc (Telemetry.Metrics.counter m name))
      issues
  end;
  { reoptimized = worthwhile;
    predicted_gain = result.plan.Pipeleon.Search.predicted_gain;
    issues;
    profile = prof_orig;
    search_seconds = result.Pipeleon.Optimizer.elapsed_seconds;
    deploy_seconds }

let force_redeploy t program = ignore (deploy t program)
