type action =
  | Evict_cache of { cache : string; originals : string list }
  | Split_merge of { merged : string; originals : string list }
  | Shed of { table : string }

let find_table prog name =
  match
    List.find_opt
      (fun (_, (tab : P4ir.Table.t)) -> String.equal tab.name name)
      (P4ir.Program.tables prog)
  with
  | Some (_, tab) -> Some tab
  | None -> None

let plan ~deployed issues =
  List.filter_map
    (fun (issue : Monitor.issue) ->
      match issue with
      | Monitor.Low_hit_rate { cache; _ } -> (
        match find_table deployed cache with
        | Some { P4ir.Table.role = P4ir.Table.Cache meta; _ } ->
          Some (Evict_cache { cache; originals = meta.cached_tables })
        | _ -> None)
      | Monitor.Merged_blowup { merged; _ } -> (
        match find_table deployed merged with
        | Some { P4ir.Table.role = P4ir.Table.Merged sources; _ } ->
          Some (Split_merge { merged; originals = sources })
        | _ -> None)
      | Monitor.Update_storm { table; _ } -> (
        match find_table deployed table with
        | Some { P4ir.Table.role = P4ir.Table.Merged sources; _ } ->
          Some (Split_merge { merged = table; originals = sources })
        | Some _ -> Some (Shed { table })
        | None -> None))
    issues

let exclusions_of_action = function
  | Evict_cache { originals; _ } ->
    List.map (fun name -> (name, Pipeleon.Candidate.Cache_seg)) originals
  | Split_merge { originals; _ } ->
    List.concat_map
      (fun name ->
        [ (name, Pipeleon.Candidate.Merge_ternary_seg);
          (name, Pipeleon.Candidate.Merge_fallback_seg) ])
      originals
  | Shed { table } ->
    [ (table, Pipeleon.Candidate.Cache_seg);
      (table, Pipeleon.Candidate.Merge_ternary_seg);
      (table, Pipeleon.Candidate.Merge_fallback_seg) ]

let sheds actions =
  List.exists (function Shed _ -> true | _ -> false) actions

let pp_action fmt = function
  | Evict_cache { cache; originals } ->
    Format.fprintf fmt "evict cache %s (covering %s)" cache
      (String.concat ", " originals)
  | Split_merge { merged; originals } ->
    Format.fprintf fmt "split merged table %s (back into %s)" merged
      (String.concat ", " originals)
  | Shed { table } ->
    Format.fprintf fmt "shed optimization over %s (update storm)" table

(* Blacklist: exclusion -> expiry tick. *)

type blacklist = (Pipeleon.Search.exclusion, int) Hashtbl.t

let create_blacklist () : blacklist = Hashtbl.create 16

let ban (bl : blacklist) ~now ~ttl exclusion =
  let expiry = now + ttl in
  match Hashtbl.find_opt bl exclusion with
  | Some existing when existing >= expiry -> ()
  | _ -> Hashtbl.replace bl exclusion expiry

let prune (bl : blacklist) ~now =
  let expired =
    Hashtbl.fold (fun k expiry acc -> if expiry <= now then k :: acc else acc) bl []
  in
  List.iter (Hashtbl.remove bl) expired

let kind_rank = function
  | Pipeleon.Candidate.Cache_seg -> 0
  | Pipeleon.Candidate.Merge_ternary_seg -> 1
  | Pipeleon.Candidate.Merge_fallback_seg -> 2

let active (bl : blacklist) ~now =
  prune bl ~now;
  Hashtbl.fold (fun k _ acc -> k :: acc) bl []
  |> List.sort (fun (n1, k1) (n2, k2) ->
         match String.compare n1 n2 with
         | 0 -> compare (kind_rank k1) (kind_rank k2)
         | c -> c)

let banned (bl : blacklist) ~now exclusion =
  match Hashtbl.find_opt bl exclusion with
  | Some expiry -> expiry > now
  | None -> false

let backoff ~base ~cap ~failures =
  if failures <= 0 then 0.
  else Float.min cap (base *. Float.pow 2. (float_of_int (failures - 1)))
