(** The Pipeleon runtime controller (Fig. 3): periodically collect the
    runtime profile, fold counters back onto the original program, search
    for a better layout, and redeploy when the predicted win clears a
    hysteresis threshold.

    The controller is the control plane: entry updates arrive here
    against *original* table names and are mapped onto whatever layout is
    currently deployed ({!Pipeleon.Api_map}). *)

type deploy_mode =
  | Full  (** whole-program reload; pays [reconfig_downtime] *)
  | Incremental
      (** hot-patch only changed tables ({!Nicsim.Sim.hot_patch}); pays
          [reconfig_downtime x rebuilt/total] and keeps unchanged caches
          warm (§6 incremental deployment) *)

type config = {
  optimizer : Pipeleon.Optimizer.config;
  reconfig_downtime : float;
      (** emulated seconds of service loss per full redeploy (0 for live-
          reconfigurable NICs, >0 for reload-based ones like Agilio) *)
  min_relative_gain : float;
      (** redeploy only when predicted latency improves by this fraction *)
  deploy_mode : deploy_mode;
  warm_start : bool;
      (** carry candidate evaluations across generations; pipelets whose
          {!Incremental.pipelet_signature} is unchanged skip
          re-enumeration (the returned plan is gain-identical) *)
}

val default_config : config
(** Live reconfiguration, 3% hysteresis, default optimizer settings,
    warm start on. *)

type t

val create : ?config:config -> Nicsim.Sim.t -> original:P4ir.Program.t -> t
(** The simulator must currently run [original] (or an optimized
    equivalent whose counter map folds back onto it). *)

val sim : t -> Nicsim.Sim.t
val original_program : t -> P4ir.Program.t
(** With current entries (the control plane's source of truth). *)

val deployed_program : t -> P4ir.Program.t
val generation : t -> int

val insert : t -> table:string -> P4ir.Table.entry -> unit
(** Insert against the original table name; translated onto the deployed
    layout. @raise Invalid_argument for unknown tables. *)

val delete : t -> table:string -> P4ir.Table.entry -> unit

type tick_report = {
  reoptimized : bool;
  predicted_gain : float;
  issues : Monitor.issue list;
  profile : Profile.t;  (** the folded-back original-name profile *)
  search_seconds : float;
  deploy_seconds : float;
      (** emulated seconds of service interruption actually charged for
          this tick's redeploy: [reconfig_downtime] for a [Full] reload,
          [reconfig_downtime x rebuilt/total] for an [Incremental] patch,
          [0.] when nothing was redeployed *)
}

val tick : t -> tick_report
(** One profiling + optimization round over the window since the last
    tick (or creation). Redeploys through the simulator when warranted.
    When the simulator carries an enabled telemetry sink, each tick also
    records counter [runtime.ticks], gauges [runtime.generation] /
    [runtime.predicted_gain] / [runtime.deploy_seconds], histogram
    [runtime.search_seconds], counter [runtime.redeploys], and one
    counter per monitor issue kind ([runtime.issues.<kind>]). *)

val force_redeploy : t -> P4ir.Program.t -> unit
(** Deploy a specific layout (testing / manual override). *)
