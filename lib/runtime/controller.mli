(** The Pipeleon runtime controller (Fig. 3): periodically collect the
    runtime profile, fold counters back onto the original program, search
    for a better layout, and redeploy when the predicted win clears a
    hysteresis threshold.

    The controller is the control plane: entry updates arrive here
    against *original* table names and are mapped onto whatever layout is
    currently deployed ({!Pipeleon.Api_map}).

    It is also self-healing. Deploys are verified; a failed deploy rolls
    the data plane back to the last-known-good layout (snapshotted with
    live entries just before the attempt) and is retried under
    deterministic exponential backoff. {!Monitor} issues are translated
    by {!Remediate} into transformation reversals — evict an
    underperforming cache, split a blown-up merge, shed search work
    under an update storm — enforced by re-running the optimizer with
    per-table {!Pipeleon.Search.exclusion}s that stay blacklisted for a
    configurable number of ticks. With {!Faults} enabled, injected
    entry-update faults are caught by read-back verification and
    repaired before any packet can observe them. *)

type deploy_mode =
  | Full  (** whole-program reload; pays [reconfig_downtime] *)
  | Incremental
      (** hot-patch only changed tables ({!Nicsim.Sim.hot_patch}); pays
          [reconfig_downtime x rebuilt/total] and keeps unchanged caches
          warm (§6 incremental deployment) *)

type config = {
  optimizer : Pipeleon.Optimizer.config;
  reconfig_downtime : float;
      (** emulated seconds of service loss per full redeploy (0 for live-
          reconfigurable NICs, >0 for reload-based ones like Agilio) *)
  min_relative_gain : float;
      (** redeploy only when predicted latency improves by this fraction *)
  deploy_mode : deploy_mode;
  warm_start : bool;
      (** carry candidate evaluations across generations; pipelets whose
          {!Incremental.pipelet_signature} is unchanged skip
          re-enumeration (the returned plan is gain-identical) *)
  thresholds : Monitor.thresholds;  (** health-check limits for {!tick} *)
  faults : Faults.config;
      (** fault injection ({!Faults.disabled} in production) *)
  deploy_retries : int;
      (** further install attempts after a failed deploy, within one
          {!deploy} call; each retry waits out the backoff first *)
  backoff_base : float;
      (** emulated seconds before the first retry; doubles per
          consecutive failure ({!Remediate.backoff}) *)
  backoff_cap : float;  (** backoff ceiling in emulated seconds *)
  blacklist_ttl : int;
      (** ticks a remediation exclusion stays in force; long enough that
          the reversed transformation is not immediately re-selected,
          short enough to retry after traffic shifts *)
}

val default_config : config
(** Live reconfiguration, 3% hysteresis, default optimizer settings and
    thresholds, warm start on, faults disabled, 2 retries, 0.5 s backoff
    base capped at 8 s, 5-tick blacklist. *)

type t

val create : ?config:config -> Nicsim.Sim.t -> original:P4ir.Program.t -> t
(** The simulator must currently run [original] (or an optimized
    equivalent whose counter map folds back onto it). *)

val sim : t -> Nicsim.Sim.t
val original_program : t -> P4ir.Program.t
(** With current entries (the control plane's source of truth). *)

val deployed_program : t -> P4ir.Program.t
val generation : t -> int
val faults : t -> Faults.t
val active_exclusions : t -> Pipeleon.Search.exclusion list
(** The remediation blacklist currently in force (next search round's
    exclusions), in deterministic order. *)

val insert : t -> table:string -> P4ir.Table.entry -> unit
(** Insert against the original table name; translated onto the deployed
    layout. Under enabled {!Faults}, the translated operations may be
    dropped or corrupted in flight; read-back verification repairs the
    engines before returning (counter
    [runtime.remediations.update_repair]).
    @raise Invalid_argument for unknown tables. *)

val delete : t -> table:string -> P4ir.Table.entry -> unit

type deploy_report = {
  installed : bool;
      (** the new program is live; [false] means every attempt failed and
          the data plane is back on the pre-call layout *)
  generation : int;  (** after the call; unchanged when not installed *)
  attempts : int;  (** install attempts made (at least 1) *)
  rollbacks : int;  (** failed attempts rolled back to last-known-good *)
  downtime_seconds : float;
      (** total emulated service interruption charged: every install
          attempt (failed ones included) plus every rollback reload.
          Backoff waits are not downtime — the NIC serves the
          last-known-good layout while waiting *)
  tables_rebuilt : int;
      (** tables (re)built by the successful install: all of them for
          [Full], the changed subset for [Incremental]; 0 when not
          installed *)
  failure : string option;  (** last failure reason when not installed *)
}

val deploy : t -> P4ir.Program.t -> deploy_report
(** Deploy a specific layout through the verified path: snapshot the
    running program with its live entries, install, and on
    {!Nicsim.Sim.Deploy_failed} roll back to the snapshot and retry up
    to [deploy_retries] times, waiting out
    {!Remediate.backoff}[ ~failures] between attempts (the failure count
    persists across calls, so a persistently failing target backs off
    further each tick). With an enabled telemetry sink, rollbacks bump
    counter [runtime.remediations.rollback] and record a [rollback]
    span; retries bump [runtime.remediations.retry]; installs record a
    [deploy] span. *)

val force_redeploy : t -> P4ir.Program.t -> unit
[@@ocaml.deprecated "Use Controller.deploy, which reports the outcome."]
(** [force_redeploy t p] is [ignore (deploy t p)]. *)

type tick_report = {
  reoptimized : bool;
  predicted_gain : float;
  issues : Monitor.issue list;
  remediations : Remediate.action list;
      (** what the controller decided to do about [issues] this tick *)
  profile : Profile.t;  (** the folded-back original-name profile *)
  search_seconds : float;
  deploy : deploy_report option;
      (** the outcome of this tick's redeploy, when one was attempted
          (its [downtime_seconds] is what [deploy_seconds] used to
          report) *)
}

val tick : t -> tick_report
(** One profiling + optimization round over the window since the last
    tick (or creation). Health issues ({!Monitor.check} under
    [config.thresholds]) are remediated: offending transformations are
    blacklisted for [blacklist_ttl] ticks and the search re-runs with
    those exclusions; a reversal deploys even below the hysteresis
    threshold; an update storm on a non-merged table sheds this round's
    search entirely. Redeploys go through {!deploy} (verified, rolled
    back and retried on failure). When the simulator carries an enabled
    telemetry sink, each tick also records counter [runtime.ticks],
    gauges [runtime.generation] / [runtime.predicted_gain] /
    [runtime.deploy_seconds], histogram [runtime.search_seconds],
    counter [runtime.redeploys], one counter per monitor issue kind
    ([runtime.issues.<kind>]), and one per remediation kind
    ([runtime.remediations.cache_evict] / [.merge_split] / [.shed]). *)
