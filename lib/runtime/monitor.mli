(** Runtime health checks on deployed optimizations (§3.2 "optimization
    considerations"): caches whose observed hit rate underperforms and
    merged tables whose size or update rate exploded should trigger
    re-optimization (possibly reversing the transformation — see
    {!Remediate}). *)

type issue =
  | Low_hit_rate of { cache : string; observed : float; expected : float }
  | Merged_blowup of { merged : string; entries : int; limit : int }
  | Update_storm of { table : string; rate : float; limit : float }

type thresholds = {
  hit_rate_slack : float;
      (** how far below the planning estimate a cache's observed hit rate
          may fall before flagging; strict — exactly-at-slack is healthy *)
  entry_limit : int;
      (** merged tables above this many entries are blown up; strict —
          exactly-at-limit is healthy *)
  update_limit : float;
      (** control-plane updates/s above which a table is being stormed;
          strict — exactly-at-limit is healthy *)
}

val default_thresholds : thresholds
(** slack 0.15, entry limit {!Pipeleon.Merge.max_merged_entries},
    update limit 5000/s. *)

val check : ?thresholds:thresholds -> observed:Profile.t -> P4ir.Program.t -> issue list
(** [observed] is the profile of the *optimized* program (real counter
    data). Flags underperforming auto-insert caches, blown-up merged
    tables, and update storms on any table (merged tables get it worst —
    one original-table update fans out into merged-entry rewrites — but a
    storm on a regular table still means re-optimizing it now would churn;
    the controller sheds that work). Issues appear in program-table
    order. *)

val assess :
  ?hit_rate_slack:float ->
  ?entry_limit:int ->
  ?update_limit:float ->
  observed:Profile.t ->
  P4ir.Program.t ->
  issue list
[@@ocaml.deprecated "Use Monitor.check with a Monitor.thresholds record."]
(** Deprecated pre-thresholds spelling of {!check}. Note one behaviour
    difference kept for compatibility: [assess] only reports update
    storms on merged tables. *)

val pp_issue : Format.formatter -> issue -> unit
