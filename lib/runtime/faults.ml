type config = {
  enabled : bool;
  seed : int;
  deploy_fail_burst : int;
  deploy_fail_prob : float;
  update_drop_prob : float;
  update_corrupt_prob : float;
  profile_skew : float;
}

let disabled =
  { enabled = false;
    seed = 0;
    deploy_fail_burst = 0;
    deploy_fail_prob = 0.;
    update_drop_prob = 0.;
    update_corrupt_prob = 0.;
    profile_skew = 0. }

let chaos_defaults =
  { enabled = true;
    seed = 0;
    deploy_fail_burst = 1;
    deploy_fail_prob = 0.25;
    update_drop_prob = 0.15;
    update_corrupt_prob = 0.15;
    profile_skew = 0.3 }

type t = {
  cfg : config;
  rng : Stdx.Prng.t;
  mutable deploy_attempts : int;
  mutable deploy_failures : int;
}

let create cfg =
  { cfg;
    rng = Stdx.Prng.create (Int64.of_int (cfg.seed + 0x5EED));
    deploy_attempts = 0;
    deploy_failures = 0 }

let config t = t.cfg
let enabled t = t.cfg.enabled

let deploy_attempt t =
  if not t.cfg.enabled then None
  else begin
    t.deploy_attempts <- t.deploy_attempts + 1;
    let fail =
      if t.deploy_attempts <= t.cfg.deploy_fail_burst then true
      else t.cfg.deploy_fail_prob > 0. && Stdx.Prng.bool t.rng t.cfg.deploy_fail_prob
    in
    if fail then begin
      t.deploy_failures <- t.deploy_failures + 1;
      Some (Printf.sprintf "injected deploy failure #%d" t.deploy_failures)
    end
    else None
  end

let deploy_failures_injected t = t.deploy_failures

type update_fate = Apply | Drop | Corrupt

let update_fate t =
  if not t.cfg.enabled then Apply
  else begin
    (* One uniform draw decides the fate, so the PRNG consumption per op
       is constant whatever the probabilities. *)
    let u = Stdx.Prng.float t.rng in
    if u < t.cfg.update_drop_prob then Drop
    else if u < t.cfg.update_drop_prob +. t.cfg.update_corrupt_prob then Corrupt
    else Apply
  end

let corrupt_entry t (tab : P4ir.Table.t) (entry : P4ir.Table.entry) =
  let others =
    List.filter
      (fun (a : P4ir.Action.t) -> not (String.equal a.name entry.action))
      tab.actions
  in
  match others with
  | [] -> None
  | _ ->
    let pick = Stdx.Prng.int t.rng (List.length others) in
    Some { entry with P4ir.Table.action = (List.nth others pick).P4ir.Action.name }

(* Stable per-owner factor in [1-skew, 1+skew]: a pure hash of
   (seed, owner) so every window sees the same distortion. *)
let skew_count t ~owner value =
  if (not t.cfg.enabled) || t.cfg.profile_skew <= 0. then value
  else begin
    let h = ref (Int64.of_int (t.cfg.seed * 0x1003F + 0x5EED1)) in
    String.iter
      (fun c -> h := Stdx.Prng.mix64 (Int64.logxor !h (Int64.of_int (Char.code c))))
      owner;
    let u =
      Int64.to_float (Int64.shift_right_logical (Stdx.Prng.mix64 !h) 11)
      /. 9007199254740992.0 (* 2^53 *)
    in
    let factor = 1. +. (t.cfg.profile_skew *. ((2. *. u) -. 1.)) in
    let skewed = Int64.to_float value *. factor in
    if skewed <= 0. then 0L else Int64.of_float skewed
  end
