(** Issue-driven remediation policy (§3.2): turn {!Monitor.issue}s into
    concrete reversals of the offending transformation, remember the
    reversal long enough for the traffic shift to pass (TTL blacklist of
    {!Pipeleon.Search.exclusion}s), and pace deploy retries with
    deterministic exponential backoff.

    The module is pure policy — it decides {e what} to do; the
    {!Controller} owns doing it. That split keeps every decision unit-
    testable without a simulator. *)

type action =
  | Evict_cache of { cache : string; originals : string list }
      (** a flow cache underperforms its planning estimate: drop it and
          blacklist caching over the tables it covered *)
  | Split_merge of { merged : string; originals : string list }
      (** a merged table blew past the entry limit (or is being stormed
          with updates): un-merge and blacklist merging those tables *)
  | Shed of { table : string }
      (** an original table is under an update storm: ban every
          transformation over it and skip optimization work this round
          (re-searching mid-storm just burns control-plane cycles) *)

val plan : deployed:P4ir.Program.t -> Monitor.issue list -> action list
(** Map monitor issues onto actions by resolving each flagged table's
    role in the deployed layout. Issues whose table no longer exists in
    [deployed] (a concurrent redeploy already removed it) are dropped.
    Order follows the input issues; duplicates are not collapsed. *)

val exclusions_of_action : action -> Pipeleon.Search.exclusion list
(** The per-original-table transformation bans implementing an action:
    [Evict_cache] bans [Cache_seg] over each covered original,
    [Split_merge] bans both merge kinds, [Shed] bans all three. *)

val sheds : action list -> bool
(** Whether any action calls for shedding this round's search. *)

val pp_action : Format.formatter -> action -> unit

(** {1 Blacklist}

    Exclusions earned through remediation, each with a time-to-live in
    controller ticks: the ban must outlast the next couple of search
    rounds (or the reversed transformation is immediately re-selected)
    but not forever (traffic shifts; §3.2 wants re-optimization, not
    permanent pessimism). *)

type blacklist

val create_blacklist : unit -> blacklist

val ban : blacklist -> now:int -> ttl:int -> Pipeleon.Search.exclusion -> unit
(** Ban an exclusion until tick [now + ttl]. Re-banning an active entry
    extends it (the expiry becomes the later of the two). *)

val active : blacklist -> now:int -> Pipeleon.Search.exclusion list
(** Exclusions still in force at tick [now], pruning expired entries.
    Deterministic order (sorted by table name, then segment kind). *)

val banned : blacklist -> now:int -> Pipeleon.Search.exclusion -> bool

(** {1 Backoff} *)

val backoff : base:float -> cap:float -> failures:int -> float
(** Emulated seconds to wait before retry number [failures + 1]:
    [base * 2^(failures-1)], capped at [cap]. [0.] when [failures = 0]
    (nothing failed — no wait). Deterministic: same inputs, same
    schedule. *)
