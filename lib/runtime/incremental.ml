type change =
  | Added of string
  | Removed of string
  | Reshaped of string
  | Entries_changed of string

let table_map prog =
  List.fold_left
    (fun acc (_, (t : P4ir.Table.t)) -> (t.name, t) :: acc)
    []
    (P4ir.Program.tables prog)

let diff ~old_program ~new_program =
  let old_tabs = table_map old_program in
  let new_tabs = table_map new_program in
  let removed =
    List.filter_map
      (fun (name, _) ->
        if List.mem_assoc name new_tabs then None else Some (Removed name))
      old_tabs
  in
  let added_or_changed =
    List.filter_map
      (fun (name, (nt : P4ir.Table.t)) ->
        match List.assoc_opt name old_tabs with
        | None -> Some (Added name)
        | Some ot ->
          if ot.P4ir.Table.keys <> nt.keys || ot.actions <> nt.actions || ot.role <> nt.role
          then Some (Reshaped name)
          else if ot.entries <> nt.entries then Some (Entries_changed name)
          else None)
      new_tabs
  in
  List.rev removed @ List.rev added_or_changed

let rebuild_count changes =
  List.length
    (List.filter (function Added _ | Removed _ | Reshaped _ -> true | _ -> false) changes)

(* Three significant digits: enough that a genuinely shifted profile
   re-evaluates, coarse enough that counter noise between windows does
   not defeat the warm cache. *)
let bucket = Printf.sprintf "%.3g"

let pipelet_signature prof (hot : Pipeleon.Hotspot.hot) (tables : P4ir.Table.t list) =
  let buf = Buffer.create 128 in
  Buffer.add_string buf (bucket hot.reach_prob);
  Buffer.add_char buf '|';
  Buffer.add_string buf (bucket (Profile.default_cache_hit prof));
  List.iter
    (fun (t : P4ir.Table.t) ->
      Buffer.add_char buf '|';
      Buffer.add_string buf t.name;
      Buffer.add_char buf ':';
      Buffer.add_string buf (string_of_int (List.length t.entries));
      Buffer.add_char buf ':';
      Buffer.add_string buf (string_of_int t.max_entries);
      Buffer.add_char buf ':';
      Buffer.add_string buf (string_of_int (Hashtbl.hash t.keys));
      Buffer.add_char buf ':';
      Buffer.add_string buf (string_of_int (Hashtbl.hash t.actions));
      match Profile.table_stats prof t.name with
      | None -> Buffer.add_string buf ":?"
      | Some st ->
        Buffer.add_char buf ':';
        Buffer.add_string buf (bucket st.update_rate);
        Buffer.add_char buf ':';
        Buffer.add_string buf (bucket st.locality);
        List.iter
          (fun (a, p) ->
            Buffer.add_char buf ',';
            Buffer.add_string buf a;
            Buffer.add_char buf '=';
            Buffer.add_string buf (bucket p))
          st.action_probs)
    tables;
  Buffer.contents buf

let pp_change fmt = function
  | Added n -> Format.fprintf fmt "+%s" n
  | Removed n -> Format.fprintf fmt "-%s" n
  | Reshaped n -> Format.fprintf fmt "~%s" n
  | Entries_changed n -> Format.fprintf fmt "e:%s" n
