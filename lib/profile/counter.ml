type key = { owner : string; label : string }

(* Counts live as native ints: an [int ref] increments without
   allocating, where an [int64 ref] boxes a fresh Int64 on every add —
   the compiled data path bumps one cell per executed op per sampled
   packet, so that box was the hot path's dominant allocation. 62 bits
   of packet count cannot overflow in practice; the public API stays
   int64. *)
type t = (key, int ref) Hashtbl.t

let create () : t = Hashtbl.create 64
let clear = Hashtbl.reset

let incr ?(by = 1L) t ~owner ~label =
  let by = Int64.to_int by in
  let k = { owner; label } in
  match Hashtbl.find_opt t k with
  | Some r -> r := !r + by
  | None -> Hashtbl.add t k (ref by)

(* Pre-resolved handle: the compiled data path resolves each (owner,
   label) once at deploy time and pays a plain int add per packet. A
   fresh cell registers a zero entry, which is invisible everywhere
   ([dump] filters zeros, [diff] keeps positive deltas only, [get]
   returns 0 either way), so resolving cells for actions that never fire
   does not change any observable dump. *)
type cell = int ref

let cell t ~owner ~label =
  let k = { owner; label } in
  match Hashtbl.find_opt t k with
  | Some r -> r
  | None ->
    let r = ref 0 in
    Hashtbl.add t k r;
    r

let cell_incr (c : cell) = c := !c + 1

let get t ~owner ~label =
  match Hashtbl.find_opt t { owner; label } with
  | Some r -> Int64.of_int !r
  | None -> 0L

let owner_total t owner =
  Hashtbl.fold
    (fun k r acc -> if String.equal k.owner owner then Int64.add acc (Int64.of_int !r) else acc)
    t 0L

let dump t =
  Hashtbl.fold (fun k r acc -> (k, Int64.of_int !r) :: acc) t []
  |> List.filter (fun (_, v) -> not (Int64.equal v 0L))
  |> List.sort (fun (a, _) (b, _) -> compare (a.owner, a.label) (b.owner, b.label))

let merge_into ~dst ~src =
  Hashtbl.iter
    (fun k r -> incr ~by:(Int64.of_int !r) dst ~owner:k.owner ~label:k.label)
    src

let snapshot t =
  let copy = create () in
  merge_into ~dst:copy ~src:t;
  copy

let diff ~current ~baseline =
  let result = create () in
  Hashtbl.iter
    (fun k r ->
      let base = match Hashtbl.find_opt baseline k with Some b -> !b | None -> 0 in
      let d = !r - base in
      if d > 0 then incr ~by:(Int64.of_int d) result ~owner:k.owner ~label:k.label)
    current;
  result
