(** P4-style counters used for runtime profiling (§4.1.2).

    Pipeleon instruments every conditional branch and table action with a
    counter; the simulator increments them as packets execute. Counters
    are keyed by (owner name, label) where the owner is a table or branch
    name — names survive program rewrites, node ids do not. *)

type t

type key = { owner : string; label : string }

val create : unit -> t
val clear : t -> unit
val incr : ?by:int64 -> t -> owner:string -> label:string -> unit

type cell
(** A pre-resolved counter handle: one hash probe at resolution time,
    an allocation-free int add per increment. Used by the compiled data path,
    which resolves every (table, action) and (branch, outcome) pair at
    deploy time. Resolving a cell registers a zero-valued entry, which
    no reader observes ({!dump} filters zeros, {!diff} keeps positive
    deltas only), so unfired cells never change a dump.

    Cells are invalidated by {!clear} (the underlying slots are
    discarded); re-resolve after clearing. *)

val cell : t -> owner:string -> label:string -> cell

(** [cell_incr c] is equivalent to {!incr} with [by = 1L] on [c]'s key. *)
val cell_incr : cell -> unit
val get : t -> owner:string -> label:string -> int64
val owner_total : t -> string -> int64
(** Sum over all labels of one owner. *)

val dump : t -> (key * int64) list
(** All nonzero counters, sorted by owner then label. *)

val merge_into : dst:t -> src:t -> unit
(** Add all of [src]'s counts into [dst]. *)

val snapshot : t -> t
(** Deep copy, so a profiling window can be diffed against a baseline. *)

val diff : current:t -> baseline:t -> t
(** Per-key [current - baseline] (clamped at zero). *)
