(* In-place float sort, monomorphic on [float array]. [Array.sort
   Float.compare] on a float array boxes both elements on every
   comparison (polymorphic array access) and pays an indirect call; at
   ~log n comparisons per element that dominates a hot aggregation loop.
   This quicksort's accesses are unboxed because the element type is
   statically float.

   Median-of-three pivot, recursion on the smaller partition only (the
   larger side loops), insertion sort below a cutoff. NaNs are not
   handled (callers sort latencies, which are finite); equal elements
   may be reordered, which no caller can observe — equal floats are
   identical bit patterns here (no negative zeros in latency data). *)

let cutoff = 16

let insertion (a : float array) lo hi =
  for i = lo + 1 to hi do
    let v = Array.unsafe_get a i in
    let j = ref (i - 1) in
    while !j >= lo && Array.unsafe_get a !j > v do
      Array.unsafe_set a (!j + 1) (Array.unsafe_get a !j);
      decr j
    done;
    Array.unsafe_set a (!j + 1) v
  done

let swap (a : float array) i j =
  let t = Array.unsafe_get a i in
  Array.unsafe_set a i (Array.unsafe_get a j);
  Array.unsafe_set a j t

(* Hoare partition around a median-of-three pivot value. *)
let partition (a : float array) lo hi =
  let mid = lo + ((hi - lo) / 2) in
  if Array.unsafe_get a mid < Array.unsafe_get a lo then swap a mid lo;
  if Array.unsafe_get a hi < Array.unsafe_get a lo then swap a hi lo;
  if Array.unsafe_get a hi < Array.unsafe_get a mid then swap a hi mid;
  let pivot = Array.unsafe_get a mid in
  let i = ref (lo - 1) and j = ref (hi + 1) in
  let break = ref (-1) in
  while !break < 0 do
    incr i;
    while Array.unsafe_get a !i < pivot do
      incr i
    done;
    decr j;
    while Array.unsafe_get a !j > pivot do
      decr j
    done;
    if !i >= !j then break := !j else swap a !i !j
  done;
  !break

let rec qsort (a : float array) lo hi =
  if hi - lo >= cutoff then begin
    let m = partition a lo hi in
    (* Recurse into the smaller half; tail-loop on the larger one so the
       stack stays O(log n) whatever the input order. *)
    if m - lo < hi - m then begin
      qsort a lo m;
      qsort a (m + 1) hi
    end
    else begin
      qsort a (m + 1) hi;
      qsort a lo m
    end
  end
  else if hi > lo then insertion a lo hi

let sort (a : float array) =
  let n = Array.length a in
  if n > 1 then qsort a 0 (n - 1)
