(** Deterministic pseudo-random number generator (splitmix64).

    Every stochastic component (traffic, program/profile synthesis) takes
    an explicit generator so experiments are reproducible run-to-run. *)

type t

val create : int64 -> t
(** Seeded generator. Equal seeds give equal streams. *)

val split : t -> t
(** An independent generator derived from the current state. *)

val fork : t -> int -> t
(** [fork t i] is an independent stream for shard [i], a pure function of
    [t]'s current state and the index: the parent is not advanced, equal
    (state, index) pairs give equal streams, and distinct indices give
    decorrelated streams. Used to hand each worker domain its own
    deterministic splitmix64 stream.
    @raise Invalid_argument if [i < 0]. *)

val mix64 : int64 -> int64
(** The raw splitmix64 finalizer: a bijective 64-bit mixing function.
    Building block for allocation-free hash keys and deterministic
    flow-to-domain sharding. *)

val next64 : t -> int64
val float : t -> float
(** Uniform in [0, 1). *)

val int : t -> int -> int
(** [int t n] is uniform in [0, n). @raise Invalid_argument if [n <= 0]. *)

val bool : t -> float -> bool
(** [bool t p] is true with probability [p]. *)

val uniform : t -> float -> float -> float
(** Uniform in [lo, hi). *)

val exponential : t -> float -> float
(** Exponential with the given rate. *)

val choice : t -> 'a array -> 'a
val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val weighted_index : t -> float array -> int
(** Sample an index proportionally to the (non-negative) weights.
    @raise Invalid_argument if all weights are zero. *)
