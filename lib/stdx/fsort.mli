(** In-place ascending sort specialized to [float array].

    Same ordering as [Array.sort Float.compare] on NaN-free data, without
    the per-comparison boxing and indirect calls the polymorphic sort
    pays on float arrays. Equal elements may be reordered (unstable),
    which is unobservable on floats. NaNs are not supported: their
    position in the result is unspecified. *)

val sort : float array -> unit
