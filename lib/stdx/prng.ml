type t = { mutable state : int64 }

let create seed = { state = seed }

let golden = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next64 t =
  t.state <- Int64.add t.state golden;
  mix64 t.state

let split t = create (next64 t)

let fork t i =
  if i < 0 then invalid_arg "Prng.fork: negative index";
  let salted = Int64.add t.state (Int64.mul golden (Int64.of_int (i + 1))) in
  create (mix64 (Int64.logxor (mix64 salted) 0xA3EC647659359ACDL))

let float t =
  (* 53 high-quality bits to a double in [0, 1). *)
  let bits = Int64.shift_right_logical (next64 t) 11 in
  Int64.to_float bits /. 9007199254740992.0

let int t n =
  if n <= 0 then invalid_arg "Prng.int: bound must be positive";
  let v = Int64.shift_right_logical (next64 t) 1 in
  Int64.to_int (Int64.rem v (Int64.of_int n))

let bool t p = float t < p
let uniform t lo hi = lo +. ((hi -. lo) *. float t)

let exponential t rate =
  if rate <= 0. then invalid_arg "Prng.exponential: rate must be positive";
  -.log (1. -. float t) /. rate

let choice t arr =
  if Array.length arr = 0 then invalid_arg "Prng.choice: empty array";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let weighted_index t weights =
  let total = Array.fold_left ( +. ) 0. weights in
  if total <= 0. then invalid_arg "Prng.weighted_index: zero total weight";
  let target = float t *. total in
  let rec go i acc =
    if i >= Array.length weights - 1 then i
    else
      let acc = acc +. weights.(i) in
      if target < acc then i else go (i + 1) acc
  in
  go 0 0.
