(** List helpers missing from the stdlib. *)

val take : int -> 'a list -> 'a list
(** [take k xs] is the first [k] elements of [xs] (all of [xs] when it is
    shorter, [[]] when [k <= 0]). Tail-recursive: safe on lists far
    longer than the stack, e.g. a full candidate enumeration being cut to
    [max_combos]. *)
