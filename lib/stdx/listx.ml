let take k xs =
  if k <= 0 then []
  else begin
    let rec go acc k = function
      | [] -> List.rev acc
      | x :: rest -> if k = 0 then List.rev acc else go (x :: acc) (k - 1) rest
    in
    go [] k xs
  end
