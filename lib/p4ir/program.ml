module IntMap = Map.Make (Int)

type node_id = int
type next = node_id option

type cmp = Eq | Neq | Lt | Gt | Le | Ge

type cond = {
  cond_name : string;
  field : Field.t;
  op : cmp;
  arg : Value.t;
  on_true : next;
  on_false : next;
}

type table_next = Uniform of next | Per_action of (string * next) list

type node = Table of Table.t * table_next | Cond of cond

type t = {
  prog_name : string;
  nodes : node IntMap.t;
  prog_root : next;
  fresh : int;
}

let empty name = { prog_name = name; nodes = IntMap.empty; prog_root = None; fresh = 0 }
let name t = t.prog_name
let root t = t.prog_root
let with_root t r = { t with prog_root = r }
let with_name t n = { t with prog_name = n }

let add_node t node =
  let id = t.fresh in
  ({ t with nodes = IntMap.add id node t.nodes; fresh = id + 1 }, id)

let set_node t id node =
  if not (IntMap.mem id t.nodes) then
    invalid_arg (Printf.sprintf "Program.set_node: unknown id %d" id);
  { t with nodes = IntMap.add id node t.nodes }

let remove_node t id = { t with nodes = IntMap.remove id t.nodes }

let find t id = IntMap.find_opt id t.nodes

let find_exn t id =
  match find t id with
  | Some n -> n
  | None -> invalid_arg (Printf.sprintf "Program.find_exn: unknown id %d" id)

let node_ids t = List.map fst (IntMap.bindings t.nodes)
let num_nodes t = IntMap.cardinal t.nodes

let table_of t id =
  match find t id with Some (Table (tab, _)) -> Some tab | _ -> None

let find_table t tname =
  IntMap.fold
    (fun id node acc ->
      match (acc, node) with
      | Some _, _ -> acc
      | None, Table (tab, _) when String.equal tab.Table.name tname -> Some (id, tab)
      | None, _ -> None)
    t.nodes None

type edge_label = Cond_true | Cond_false | Action_fired of string

let out_edges t id =
  match find t id with
  | None -> []
  | Some (Table (_, Uniform nxt)) -> [ (None, nxt) ]
  | Some (Table (_, Per_action branches)) ->
    List.map (fun (a, nxt) -> (Some (Action_fired a), nxt)) branches
  | Some (Cond c) -> [ (Some Cond_true, c.on_true); (Some Cond_false, c.on_false) ]

let successors t id =
  out_edges t id
  |> List.filter_map snd
  |> List.sort_uniq compare
  |> List.map Option.some

let eval_cond c v =
  let cmp = Int64.unsigned_compare v c.arg in
  match c.op with
  | Eq -> cmp = 0
  | Neq -> cmp <> 0
  | Lt -> cmp < 0
  | Gt -> cmp > 0
  | Le -> cmp <= 0
  | Ge -> cmp >= 0

let redirect_next ~old_target ~new_target = function
  | Some id when id = old_target -> new_target
  | n -> n

let redirect t ~old_target ~new_target =
  let fix = redirect_next ~old_target ~new_target in
  let nodes =
    IntMap.map
      (function
        | Table (tab, Uniform nxt) -> Table (tab, Uniform (fix nxt))
        | Table (tab, Per_action branches) ->
          Table (tab, Per_action (List.map (fun (a, nxt) -> (a, fix nxt)) branches))
        | Cond c -> Cond { c with on_true = fix c.on_true; on_false = fix c.on_false })
      t.nodes
  in
  { t with nodes; prog_root = fix t.prog_root }

let predecessors t id =
  IntMap.fold
    (fun src _ acc ->
      let points_here =
        List.exists (fun (_, nxt) -> nxt = Some id) (out_edges t src)
      in
      if points_here then src :: acc else acc)
    t.nodes []
  |> List.rev

let topological_order t =
  let indegree = Hashtbl.create 16 in
  IntMap.iter (fun id _ -> Hashtbl.replace indegree id 0) t.nodes;
  IntMap.iter
    (fun src _ ->
      List.iter
        (fun (_, nxt) ->
          match nxt with
          | Some dst when IntMap.mem dst t.nodes ->
            Hashtbl.replace indegree dst (Hashtbl.find indegree dst + 1)
          | _ -> ())
        (out_edges t src))
    t.nodes;
  let queue = Queue.create () in
  Hashtbl.iter (fun id d -> if d = 0 then Queue.add id queue) indegree;
  let order = ref [] in
  let seen = ref 0 in
  while not (Queue.is_empty queue) do
    let id = Queue.pop queue in
    incr seen;
    order := id :: !order;
    List.iter
      (fun (_, nxt) ->
        match nxt with
        | Some dst when IntMap.mem dst t.nodes ->
          let d = Hashtbl.find indegree dst - 1 in
          Hashtbl.replace indegree dst d;
          if d = 0 then Queue.add dst queue
        | _ -> ())
      (out_edges t id)
  done;
  if !seen <> IntMap.cardinal t.nodes then
    invalid_arg "Program.topological_order: graph has a cycle";
  (* Queue-based Kahn over an IntMap visits lowest ids first, but we sort by
     topological rank which the reversed accumulation already encodes. *)
  List.rev !order

let reachable t =
  let visited = Hashtbl.create 16 in
  let order = ref [] in
  let rec visit = function
    | None -> ()
    | Some id ->
      if not (Hashtbl.mem visited id) then begin
        Hashtbl.add visited id ();
        order := id :: !order;
        List.iter (fun (_, nxt) -> visit nxt) (out_edges t id)
      end
  in
  visit t.prog_root;
  List.rev !order

let gc t =
  let live = Hashtbl.create 16 in
  List.iter (fun id -> Hashtbl.replace live id ()) (reachable t);
  { t with
    nodes =
      IntMap.filter (fun id _ -> Hashtbl.mem live id) t.nodes }

let tables t =
  let topo = try topological_order t with Invalid_argument _ -> node_ids t in
  List.filter_map
    (fun id -> match find t id with Some (Table (tab, _)) -> Some (id, tab) | _ -> None)
    topo

let conds t =
  let topo = try topological_order t with Invalid_argument _ -> node_ids t in
  List.filter_map
    (fun id -> match find t id with Some (Cond c) -> Some (id, c) | _ -> None)
    topo

let map_tables t f =
  let nodes =
    IntMap.mapi
      (fun id node ->
        match node with Table (tab, nxt) -> Table (f id tab, nxt) | Cond _ -> node)
      t.nodes
  in
  { t with nodes }

let update_table t id f =
  match find t id with
  | Some (Table (tab, nxt)) -> set_node t id (Table (f tab, nxt))
  | Some (Cond _) -> invalid_arg (Printf.sprintf "update_table: node %d is a branch" id)
  | None -> invalid_arg (Printf.sprintf "update_table: unknown id %d" id)

type path = { path_nodes : node_id list; path_labels : edge_label option list }

let enumerate_paths ?(limit = 100_000) t =
  let count = ref 0 in
  let rec walk nodes labels = function
    | None ->
      incr count;
      if !count > limit then invalid_arg "Program.enumerate_paths: too many paths";
      [ { path_nodes = List.rev nodes; path_labels = List.rev labels } ]
    | Some id ->
      let edges = out_edges t id in
      List.concat_map (fun (label, nxt) -> walk (id :: nodes) (label :: labels) nxt) edges
  in
  walk [] [] t.prog_root

let validate t =
  let ( let* ) r f = Result.bind r f in
  let check cond msg = if cond then Ok () else Error msg in
  let ids_exist =
    IntMap.fold
      (fun src node acc ->
        let* () = acc in
        let targets = List.filter_map snd (out_edges t src) in
        let* () =
          List.fold_left
            (fun acc dst ->
              let* () = acc in
              check (IntMap.mem dst t.nodes)
                (Printf.sprintf "node %d references missing node %d" src dst))
            (Ok ()) targets
        in
        match node with
        | Table (tab, Per_action branches) ->
          let branch_names = List.sort compare (List.map fst branches) in
          let action_names =
            List.sort compare (List.map (fun (a : Action.t) -> a.name) tab.Table.actions)
          in
          check (branch_names = action_names)
            (Printf.sprintf "switch-case table %s branches do not cover its actions"
               tab.Table.name)
        | _ -> Ok ())
      t.nodes (Ok ())
  in
  let* () = ids_exist in
  let* () =
    match t.prog_root with
    | None -> Ok ()
    | Some r -> check (IntMap.mem r t.nodes) "root references a missing node"
  in
  let* () =
    match topological_order t with
    | _ -> Ok ()
    | exception Invalid_argument _ -> Error "graph has a cycle"
  in
  let* () =
    let reach = List.length (reachable t) in
    check (reach = IntMap.cardinal t.nodes)
      (Printf.sprintf "%d of %d nodes unreachable from root"
         (IntMap.cardinal t.nodes - reach) (IntMap.cardinal t.nodes))
  in
  let names = List.map (fun (_, (tab : Table.t)) -> tab.name) (tables t) in
  check (List.length names = List.length (List.sort_uniq compare names))
    "duplicate table names"

let validate_exn t =
  match validate t with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Program.validate: " ^ msg)

let linear pname tabs =
  let prog = empty pname in
  let prog, rev_ids =
    List.fold_left
      (fun (prog, acc) tab ->
        let prog, id = add_node prog (Table (tab, Uniform None)) in
        (prog, id :: acc))
      (prog, []) tabs
  in
  let ids = List.rev rev_ids in
  let rec link prog = function
    | a :: (b :: _ as rest) ->
      let prog =
        match find_exn prog a with
        | Table (tab, Uniform _) -> set_node prog a (Table (tab, Uniform (Some b)))
        | node -> set_node prog a node
      in
      link prog rest
    | _ -> prog
  in
  let prog = link prog ids in
  match ids with [] -> prog | first :: _ -> with_root prog (Some first)

let pp fmt t =
  Format.fprintf fmt "@[<v 2>program %s (root=%s) {@," t.prog_name
    (match t.prog_root with None -> "sink" | Some id -> string_of_int id);
  IntMap.iter
    (fun id node ->
      match node with
      | Table (tab, Uniform nxt) ->
        Format.fprintf fmt "%d: table %s -> %s@," id tab.Table.name
          (match nxt with None -> "sink" | Some n -> string_of_int n)
      | Table (tab, Per_action branches) ->
        Format.fprintf fmt "%d: switch table %s -> {%s}@," id tab.Table.name
          (String.concat "; "
             (List.map
                (fun (a, nxt) ->
                  a ^ ":" ^ match nxt with None -> "sink" | Some n -> string_of_int n)
                branches))
      | Cond c ->
        Format.fprintf fmt "%d: if %s(%a) then %s else %s@," id c.cond_name Field.pp
          c.field
          (match c.on_true with None -> "sink" | Some n -> string_of_int n)
          (match c.on_false with None -> "sink" | Some n -> string_of_int n))
    t.nodes;
  Format.fprintf fmt "}@]"
