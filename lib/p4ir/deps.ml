type kind = Match_dep | Action_dep | Reverse_dep

module FieldSet = Set.Make (Field)

let set_of xs = FieldSet.of_list xs
let intersects a b = not (FieldSet.is_empty (FieldSet.inter a b))

let sets (t : Table.t) =
  (set_of (Table.reads_of t), set_of (Table.writes_of t))

(* Forwarding is a write to the (implicit) egress port: the last
   [Forward] executed wins, so two forwarding tables do not commute even
   though no header field conflicts. Drops stay commutative. *)
let forwards (t : Table.t) =
  List.exists
    (fun (a : Action.t) ->
      List.exists (function Action.Forward _ -> true | _ -> false) a.prims)
    t.actions

let between a b =
  let ra, wa = sets a in
  let rb, wb = sets b in
  let deps = [] in
  let deps = if intersects wa rb then Match_dep :: deps else deps in
  let deps =
    if intersects wa wb || (forwards a && forwards b) then Action_dep :: deps else deps
  in
  let deps = if intersects ra wb then Reverse_dep :: deps else deps in
  deps

let independent a b = between a b = []

let reorderable_chain tabs =
  let rec go = function
    | [] | [ _ ] -> true
    | t :: rest -> List.for_all (independent t) rest && go rest
  in
  go tabs

let conflict_free_groups tabs =
  let rec go current groups = function
    | [] -> List.rev (List.rev current :: groups)
    | t :: rest ->
      if List.for_all (independent t) current then go (t :: current) groups rest
      else go [ t ] (List.rev current :: groups) rest
  in
  match tabs with [] -> [] | t :: rest -> go [ t ] [] rest
