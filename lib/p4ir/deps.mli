(** Table dependency analysis (after [34] in the paper).

    Two adjacent tables may be reordered, merged, or jointly cached only if
    doing so preserves program semantics. We use classic read/write sets:
    a table's reads are its key fields plus fields its actions read; its
    writes are fields its actions write. Packet drops commute with each
    other (a packet dropped by any ACL is dropped regardless of order), so
    [Drop] is not treated as a write. [Forward] is a write to the implicit
    egress port (last one executed wins), so two forwarding tables carry
    an {!Action_dep} even when no header field conflicts. *)

type kind =
  | Match_dep  (** A writes a field B matches or reads *)
  | Action_dep  (** A and B write a common field (output order matters) *)
  | Reverse_dep  (** A reads a field B writes (B cannot move before A) *)

val between : Table.t -> Table.t -> kind list
(** Dependencies that constrain moving [b] before [a] (given [a] currently
    executes first). Empty means the swap is semantics-preserving. *)

val independent : Table.t -> Table.t -> bool
(** [independent a b] is true when [a] and [b] can execute in either order:
    no field written by one is read, matched, or written by the other. *)

val reorderable_chain : Table.t list -> bool
(** Are all tables in the list pairwise independent? *)

val conflict_free_groups : Table.t list -> Table.t list list
(** Partition a chain into maximal runs of pairwise-independent tables,
    preserving order between runs. Each run may be freely permuted. *)
