(** A P4 program as a directed acyclic graph of match/action tables and
    conditional branches (Fig. 4 of the paper).

    Nodes are identified by stable integer ids. Edges are implicit in each
    node's successor fields; [None] is the sink (end of processing).
    Switch-case tables are tables whose successor depends on the action
    that fired ([Per_action]). *)

type node_id = int
type next = node_id option

type cmp = Eq | Neq | Lt | Gt | Le | Ge

type cond = {
  cond_name : string;
  field : Field.t;
  op : cmp;
  arg : Value.t;
  on_true : next;
  on_false : next;
}

type table_next =
  | Uniform of next  (** same successor whatever action fired *)
  | Per_action of (string * next) list
      (** switch-case: successor per action name; every action of the table
          must be listed *)

type node = Table of Table.t * table_next | Cond of cond

type t

val empty : string -> t
val name : t -> string
val root : t -> next
val with_root : t -> next -> t
val with_name : t -> string -> t

val add_node : t -> node -> t * node_id
(** Allocate a fresh id. The node may reference ids not yet added; run
    {!validate} once construction is complete. *)

val set_node : t -> node_id -> node -> t
(** Replace the node stored at an existing id. *)

val remove_node : t -> node_id -> t
(** Remove a node; the caller must have redirected incoming edges first. *)

val find : t -> node_id -> node option
val find_exn : t -> node_id -> node
val node_ids : t -> node_id list
val num_nodes : t -> int

val table_of : t -> node_id -> Table.t option
(** The table stored at [id], if the node is a table. *)

val find_table : t -> string -> (node_id * Table.t) option
(** Look a table up by name. *)

val tables : t -> (node_id * Table.t) list
(** All tables in topological order. *)

val conds : t -> (node_id * cond) list

val successors : t -> node_id -> next list
(** Deduplicated successor list (labels dropped). *)

val eval_cond : cond -> Value.t -> bool

val redirect : t -> old_target:node_id -> new_target:next -> t
(** Rewrite every edge (and the root) pointing at [old_target] to point at
    [new_target] instead. *)

val predecessors : t -> node_id -> node_id list

val topological_order : t -> node_id list
(** Every node before its successors. @raise Invalid_argument on a cycle. *)

val reachable : t -> node_id list
(** Nodes reachable from the root, in preorder. *)

val gc : t -> t
(** Drop every node not reachable from the root. Used after edge
    rewrites (shrinking, mutation) that may orphan whole subgraphs,
    since {!validate} requires full reachability. *)

val map_tables : t -> (node_id -> Table.t -> Table.t) -> t
(** Rewrite every table in place (names may change; nexts are kept). *)

val update_table : t -> node_id -> (Table.t -> Table.t) -> t

type edge_label = Cond_true | Cond_false | Action_fired of string

val out_edges : t -> node_id -> (edge_label option * next) list
(** Outgoing edges with labels; [None] label for a [Uniform] table edge. *)

type path = { path_nodes : node_id list; path_labels : edge_label option list }

val enumerate_paths : ?limit:int -> t -> path list
(** All root-to-sink execution paths. Paths whose count would exceed
    [limit] (default 100_000) raise [Invalid_argument]. *)

val validate : t -> (unit, string) result
(** Check referenced ids exist, the graph is acyclic, all nodes are
    reachable, table names are unique, and [Per_action] successor lists
    cover exactly the table's actions. *)

val validate_exn : t -> unit

val linear : string -> Table.t list -> t
(** Convenience: a straight-line program of tables ending at the sink. *)

val pp : Format.formatter -> t -> unit
