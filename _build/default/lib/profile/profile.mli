module Counter = Counter
module Counter_map = Counter_map

(** Runtime profiles: how traffic interacts with a P4 program.

    A profile carries, per table, the probability of each action firing
    (the paper's [P(a)], from which drop rates and edge probabilities
    derive), the entry-update rate observed at the control plane, and a
    locality estimate (the cache hit rate a flow cache over the table
    would see). Per conditional it carries [P(true)]. *)

type table_stats = {
  action_probs : (string * float) list;
      (** probabilities over the table's actions; should sum to 1 *)
  update_rate : float;  (** entry updates per second *)
  locality : float;  (** expected flow-cache hit rate over this table *)
}

type cond_stats = { true_prob : float }

type t

val empty : t

val default_cache_hit : t -> float
val with_default_cache_hit : float -> t -> t
(** The default estimated hit rate used when computing a caching
    optimization before any observation exists (§3.2.2); 0.9 initially. *)

val set_table : string -> table_stats -> t -> t
val set_cond : string -> cond_stats -> t -> t
val table_stats : t -> string -> table_stats option
val cond_stats : t -> string -> cond_stats option
val table_names : t -> string list

val action_prob : t -> table:P4ir.Table.t -> action:string -> float
(** Falls back to uniform over the table's actions when unprofiled. *)

val drop_prob : t -> P4ir.Table.t -> float
(** Probability that a packet reaching the table is dropped there. *)

val true_prob : t -> cond_name:string -> float
(** Falls back to 0.5 when unprofiled. *)

val update_rate : t -> table_name:string -> float
(** Falls back to 0 when unprofiled. *)

val locality : t -> table_name:string -> float option

val cache_hit_estimate : t -> table_names:string list -> float
(** Expected hit rate of one cache covering the given tables: the minimum
    locality over covered tables (a miss in any invalidates the joint
    entry), defaulting to {!default_cache_hit}. *)

val uniform : P4ir.Program.t -> t
(** Uniform action probabilities and 0.5 branch probabilities. *)

val of_counters :
  ?window:float -> P4ir.Program.t -> Counter.t -> t
(** Derive a profile from instrumentation counters collected over
    [window] seconds (default 1). Labels used: an action name per table
    counter; ["true"]/["false"] per branch; ["update"] for control-plane
    entry updates; ["cache_hit"]/["cache_miss"] kept as regular action
    counts on cache tables. Locality is filled in for tables covered by an
    auto-insert cache, from that cache's observed hit rate. *)

val pp : Format.formatter -> t -> unit
