(** Fold counters of an optimized program back onto the original program
    (§4.1.2 "counter map").

    When a table is cached, its original traffic is split between the
    cache table and the fall-back table; when tables are merged, the
    merged table's action counts decompose into per-original-action
    counts. Fused action names are self-describing —
    ["T1:a1;T2:a2"] — so the fold-back needs no positional guessing,
    and drop-truncated or group-cache sequences (covering only a subset
    of tables) decompose exactly as executed. *)

val fuse : (string * string) list -> string
(** [(table, action)] pairs to a fused action name. *)

val split_fused : string -> (string * string) list
(** Inverse of {!fuse}; [[]] for names not produced by it (e.g. ["miss"]). *)

val fuse_action_names : string list -> string
(** Action-name-only variant used where the table is implicit (display). *)

val fold_back : optimized:P4ir.Program.t -> Counter.t -> Counter.t
(** A fresh counter store with counts attributed to original table and
    action names. Regular tables pass through; [Cache]/[Merged] tables
    decompose their fused action counts; navigation and migration tables
    are dropped; branch counters pass through. *)
