let pair_sep = ';'
let field_sep = ':'

let fuse pairs =
  String.concat (String.make 1 pair_sep)
    (List.map (fun (t, a) -> t ^ String.make 1 field_sep ^ a) pairs)

let split_fused name =
  let parts = String.split_on_char pair_sep name in
  let parse part =
    match String.index_opt part field_sep with
    | Some i ->
      Some (String.sub part 0 i, String.sub part (i + 1) (String.length part - i - 1))
    | None -> None
  in
  let parsed = List.map parse parts in
  if List.for_all Option.is_some parsed then List.filter_map Fun.id parsed else []

let fuse_action_names names = String.concat "+" names

let fold_back ~optimized counters =
  let result = Counter.create () in
  let tables = P4ir.Program.tables optimized in
  let pass_through owner =
    List.iter
      (fun ((k : Counter.key), v) ->
        if String.equal k.owner owner then
          Counter.incr ~by:v result ~owner:k.owner ~label:k.label)
      (Counter.dump counters)
  in
  List.iter
    (fun (_, (tab : P4ir.Table.t)) ->
      match tab.role with
      | P4ir.Table.Regular -> pass_through tab.name
      | P4ir.Table.Navigation | P4ir.Table.Migration -> ()
      | P4ir.Table.Cache _ | P4ir.Table.Merged _ ->
        List.iter
          (fun (a : P4ir.Action.t) ->
            let count = Counter.get counters ~owner:tab.name ~label:a.name in
            if Int64.compare count 0L > 0 then
              List.iter
                (fun (owner, label) -> Counter.incr ~by:count result ~owner ~label)
                (split_fused a.name))
          tab.actions)
    tables;
  (* Conditionals keep their own names across rewrites. *)
  List.iter
    (fun (_, (c : P4ir.Program.cond)) ->
      List.iter
        (fun label ->
          let v = Counter.get counters ~owner:c.cond_name ~label in
          if Int64.compare v 0L > 0 then
            Counter.incr ~by:v result ~owner:c.cond_name ~label)
        [ "true"; "false" ])
    (P4ir.Program.conds optimized);
  result
