type key = { owner : string; label : string }

type t = (key, int64 ref) Hashtbl.t

let create () : t = Hashtbl.create 64
let clear = Hashtbl.reset

let incr ?(by = 1L) t ~owner ~label =
  let k = { owner; label } in
  match Hashtbl.find_opt t k with
  | Some r -> r := Int64.add !r by
  | None -> Hashtbl.add t k (ref by)

let get t ~owner ~label =
  match Hashtbl.find_opt t { owner; label } with Some r -> !r | None -> 0L

let owner_total t owner =
  Hashtbl.fold
    (fun k r acc -> if String.equal k.owner owner then Int64.add acc !r else acc)
    t 0L

let dump t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t []
  |> List.filter (fun (_, v) -> not (Int64.equal v 0L))
  |> List.sort (fun (a, _) (b, _) -> compare (a.owner, a.label) (b.owner, b.label))

let merge_into ~dst ~src =
  Hashtbl.iter (fun k r -> incr ~by:!r dst ~owner:k.owner ~label:k.label) src

let snapshot t =
  let copy = create () in
  merge_into ~dst:copy ~src:t;
  copy

let diff ~current ~baseline =
  let result = create () in
  Hashtbl.iter
    (fun k r ->
      let base = match Hashtbl.find_opt baseline k with Some b -> !b | None -> 0L in
      let d = Int64.sub !r base in
      if Int64.compare d 0L > 0 then incr ~by:d result ~owner:k.owner ~label:k.label)
    current;
  result
