module Counter = Counter
module Counter_map = Counter_map
module SMap = Map.Make (String)

type table_stats = {
  action_probs : (string * float) list;
  update_rate : float;
  locality : float;
}

type cond_stats = { true_prob : float }

type t = {
  tables : table_stats SMap.t;
  conds : cond_stats SMap.t;
  default_hit : float;
}

let empty = { tables = SMap.empty; conds = SMap.empty; default_hit = 0.9 }

let default_cache_hit t = t.default_hit
let with_default_cache_hit h t = { t with default_hit = h }

let set_table name stats t = { t with tables = SMap.add name stats t.tables }
let set_cond name stats t = { t with conds = SMap.add name stats t.conds }
let table_stats t name = SMap.find_opt name t.tables
let cond_stats t name = SMap.find_opt name t.conds
let table_names t = List.map fst (SMap.bindings t.tables)

let action_prob t ~(table : P4ir.Table.t) ~action =
  match SMap.find_opt table.P4ir.Table.name t.tables with
  | Some stats -> (
    match List.assoc_opt action stats.action_probs with
    | Some p -> p
    | None -> 0.)
  | None ->
    let n = List.length table.P4ir.Table.actions in
    if n = 0 then 0. else 1. /. float_of_int n

let drop_prob t (table : P4ir.Table.t) =
  List.fold_left
    (fun acc (a : P4ir.Action.t) ->
      if P4ir.Action.is_dropping a then acc +. action_prob t ~table ~action:a.name
      else acc)
    0. table.P4ir.Table.actions

let true_prob t ~cond_name =
  match SMap.find_opt cond_name t.conds with Some s -> s.true_prob | None -> 0.5

let update_rate t ~table_name =
  match SMap.find_opt table_name t.tables with Some s -> s.update_rate | None -> 0.

let locality t ~table_name =
  match SMap.find_opt table_name t.tables with
  | Some s when s.locality >= 0. -> Some s.locality
  | _ -> None

let cache_hit_estimate t ~table_names =
  let localities = List.filter_map (fun n -> locality t ~table_name:n) table_names in
  match localities with
  | [] -> t.default_hit
  | l -> List.fold_left min 1. l

let uniform prog =
  let t = ref empty in
  List.iter
    (fun (_, (tab : P4ir.Table.t)) ->
      let n = List.length tab.actions in
      let p = if n = 0 then 0. else 1. /. float_of_int n in
      let stats =
        { action_probs = List.map (fun (a : P4ir.Action.t) -> (a.name, p)) tab.actions;
          update_rate = 0.;
          locality = -1. }
      in
      t := set_table tab.name stats !t)
    (P4ir.Program.tables prog);
  List.iter
    (fun (_, (c : P4ir.Program.cond)) ->
      t := set_cond c.cond_name { true_prob = 0.5 } !t)
    (P4ir.Program.conds prog);
  !t

let of_counters ?(window = 1.0) prog counters =
  let t = ref empty in
  let cache_hit_rates = ref SMap.empty in
  (* First pass: per-table action probabilities and update rates. *)
  List.iter
    (fun (_, (tab : P4ir.Table.t)) ->
      let name = tab.name in
      let counts =
        List.map
          (fun (a : P4ir.Action.t) ->
            (a.name, Int64.to_float (Counter.get counters ~owner:name ~label:a.name)))
          tab.actions
      in
      let total = List.fold_left (fun acc (_, c) -> acc +. c) 0. counts in
      let action_probs =
        if total <= 0. then
          let n = List.length tab.actions in
          List.map (fun (a, _) -> (a, if n = 0 then 0. else 1. /. float_of_int n)) counts
        else List.map (fun (a, c) -> (a, c /. total)) counts
      in
      let updates = Counter.get counters ~owner:name ~label:"update" in
      let update_rate = Int64.to_float updates /. window in
      (match tab.role with
       | P4ir.Table.Cache meta when total > 0. ->
         (* Hit = any non-default action fired. *)
         let miss =
           match List.assoc_opt tab.default_action action_probs with
           | Some p -> p
           | None -> 0.
         in
         let hit = 1. -. miss in
         List.iter
           (fun orig ->
             cache_hit_rates :=
               SMap.add orig hit !cache_hit_rates)
           meta.cached_tables
       | _ -> ());
      t := set_table name { action_probs; update_rate; locality = -1. } !t)
    (P4ir.Program.tables prog);
  (* Second pass: fill observed locality back into covered tables. *)
  SMap.iter
    (fun orig hit ->
      match SMap.find_opt orig (!t).tables with
      | Some stats -> t := set_table orig { stats with locality = hit } !t
      | None ->
        t :=
          set_table orig { action_probs = []; update_rate = 0.; locality = hit } !t)
    !cache_hit_rates;
  List.iter
    (fun (_, (c : P4ir.Program.cond)) ->
      let tr = Int64.to_float (Counter.get counters ~owner:c.cond_name ~label:"true") in
      let fa = Int64.to_float (Counter.get counters ~owner:c.cond_name ~label:"false") in
      let total = tr +. fa in
      let true_prob = if total <= 0. then 0.5 else tr /. total in
      t := set_cond c.cond_name { true_prob } !t)
    (P4ir.Program.conds prog);
  !t

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  SMap.iter
    (fun name stats ->
      Format.fprintf fmt "table %s: upd=%.1f/s loc=%.2f probs=[%s]@," name
        stats.update_rate stats.locality
        (String.concat "; "
           (List.map (fun (a, p) -> Printf.sprintf "%s:%.3f" a p) stats.action_probs)))
    t.tables;
  SMap.iter
    (fun name s -> Format.fprintf fmt "cond %s: P(true)=%.3f@," name s.true_prob)
    t.conds;
  Format.fprintf fmt "@]"
