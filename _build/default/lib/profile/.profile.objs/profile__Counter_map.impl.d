lib/profile/counter_map.ml: Counter Fun Int64 List Option P4ir String
