lib/profile/counter.mli:
