lib/profile/profile.mli: Counter Counter_map Format P4ir
