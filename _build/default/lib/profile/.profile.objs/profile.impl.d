lib/profile/profile.ml: Counter Counter_map Format Int64 List Map P4ir Printf String
