lib/profile/counter.ml: Hashtbl Int64 List String
