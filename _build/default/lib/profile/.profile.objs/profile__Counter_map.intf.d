lib/profile/counter_map.mli: Counter P4ir
