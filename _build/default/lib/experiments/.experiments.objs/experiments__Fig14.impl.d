lib/experiments/fig14.ml: Costmodel Float Harness Hashtbl List Pipeleon Printf Stdx Synth
