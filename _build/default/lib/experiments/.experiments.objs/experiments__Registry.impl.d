lib/experiments/registry.ml: Ablation Fig02 Fig05 Fig09 Fig10 Fig11 Fig12 Fig13 Fig14 Fig15 Fig17 Fig18 List String Table01
