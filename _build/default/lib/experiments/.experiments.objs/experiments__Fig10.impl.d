lib/experiments/fig10.ml: Costmodel Float Fun Harness List Pipeleon Printf Stdx Synth
