lib/experiments/fig05.ml: Array Costmodel Float Harness Int64 List Nicsim P4ir Printf Profile Stdx Traffic
