lib/experiments/synth.ml: Array Costmodel Float Fun Int64 List P4ir Pipeleon Printf Profile Stdx String
