lib/experiments/ablation.ml: Array Costmodel Fig11 Float Harness Int64 List Nicsim P4ir Pipeleon Printf Profile Runtime Stdx Synth Traffic
