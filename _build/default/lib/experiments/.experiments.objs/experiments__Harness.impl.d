lib/experiments/harness.ml: List Nicsim Printf Stdx String
