lib/experiments/table01.ml: Costmodel Fig05 Harness Printf
