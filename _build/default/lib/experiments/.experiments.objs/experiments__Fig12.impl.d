lib/experiments/fig12.ml: Array Costmodel Harness List Nicsim P4ir Printf Stdx Traffic
