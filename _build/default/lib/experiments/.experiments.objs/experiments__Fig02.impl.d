lib/experiments/fig02.ml: Costmodel Harness Int64 List Nicsim P4ir Pipeleon Runtime Stdx Traffic
