lib/experiments/fig13.ml: Costmodel Float Harness List Pipeleon Printf Stdx Synth
