lib/experiments/fig09.ml: Array Costmodel Harness Int64 List Nicsim P4ir Pipeleon Printf Stdx String Traffic
