lib/experiments/fig11.ml: Array Costmodel Harness Int64 List Nicsim Option P4ir Pipeleon Printf Runtime Stdx Synth Traffic
