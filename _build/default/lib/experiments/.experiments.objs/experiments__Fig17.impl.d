lib/experiments/fig17.ml: Array Costmodel Harness Hashtbl List P4ir Pipeleon Printf Profile String
