lib/experiments/fig18.ml: Costmodel Float Harness Hashtbl List Pipeleon Printf Stdx String Synth
