lib/experiments/fig15.ml: Costmodel Float Harness List Pipeleon Printf Profile Stdx Synth
