(* Figure 12 (§5.4.1): profiling overhead. Latency increase and
   throughput degradation vs number of per-packet counter updates, for
   simple and complex actions, with and without 1/1024 sampling, on the
   Agilio-like and BlueField2-like targets. *)

let program ~tables ~prims =
  P4ir.Program.linear
    (Printf.sprintf "ovh%d_%d" tables prims)
    (P4ir.Builder.exact_chain ~prefix:"t" ~n:tables ~actions_per_table:2
       ~extra_prims:(prims - 1)
       ~key_of:(fun i ->
         [| P4ir.Field.Ipv4_src; P4ir.Field.Ipv4_dst; P4ir.Field.Tcp_sport |].(i mod 3))
       ())

let measure target prog ~instrumented ~sample_rate =
  let cfg =
    { (Nicsim.Exec.default_config target) with
      Nicsim.Exec.instrumented; sample_rate }
  in
  let sim = Nicsim.Sim.create ~config:cfg target prog in
  let rng = Stdx.Prng.create 13L in
  let source =
    Traffic.Workload.of_flows rng
      (Traffic.Workload.random_flows rng ~n:256
         ~fields:[ P4ir.Field.Ipv4_src; P4ir.Field.Ipv4_dst; P4ir.Field.Tcp_sport ])
  in
  let stats =
    Nicsim.Sim.run_window sim ~duration:1.0 ~packets:(Harness.scaled 2000) ~source
  in
  (stats.Nicsim.Sim.avg_latency, stats.Nicsim.Sim.throughput_gbps)

let overhead_rows target =
  let cols =
    [ ("updates", 8); ("simple lat+%", 13); ("complex lat+%", 14);
      ("simple thr-%", 13); ("complex thr-%", 14); ("sampled lat+%", 14) ]
  in
  Harness.print_header cols;
  List.iter
    (fun tables ->
      let row prims ~sample_rate =
        let prog = program ~tables ~prims in
        let lat0, thr0 = measure target prog ~instrumented:false ~sample_rate:1 in
        let lat1, thr1 = measure target prog ~instrumented:true ~sample_rate in
        ((lat1 -. lat0) /. lat0, (thr0 -. thr1) /. thr0)
      in
      let simple_lat, simple_thr = row 1 ~sample_rate:1 in
      let complex_lat, complex_thr = row 4 ~sample_rate:1 in
      let sampled_lat, _ = row 1 ~sample_rate:1024 in
      Harness.print_row cols
        [ string_of_int tables;
          Harness.pct simple_lat;
          Harness.pct complex_lat;
          Harness.pct simple_thr;
          Harness.pct complex_thr;
          Harness.pct sampled_lat ])
    [ 20; 30; 40 ]

let run () =
  Harness.section "Figure 12: profiling overhead";
  Harness.subsection "(a)/(b) Agilio-like: latency and throughput overhead";
  overhead_rows Costmodel.Target.agilio_cx;
  Harness.subsection "(c) BlueField2-like: cheap hardware counters";
  overhead_rows Costmodel.Target.bluefield2
