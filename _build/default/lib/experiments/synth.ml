(* Program and profile synthesizer, standing in for the Gauntlet-based
   generator the paper adapted ([50] in §5.2.2) plus its "runtime profile
   synthesizer". Programs are built from sections — straight pipelets or
   conditional diamonds — with controllable pipelet count (PN) and length
   (PL); profiles draw action/branch probabilities from the chosen
   workload category. *)

type category = Heavy_drop | Small_static | High_locality

let key_fields =
  [| P4ir.Field.Ipv4_src; P4ir.Field.Ipv4_dst; P4ir.Field.Tcp_sport;
     P4ir.Field.Tcp_dport; P4ir.Field.Udp_sport; P4ir.Field.Udp_dport;
     P4ir.Field.Eth_src; P4ir.Field.Eth_dst |]

let fresh_name =
  let counter = ref 0 in
  fun prefix ->
    incr counter;
    Printf.sprintf "%s%d" prefix !counter

(* One synthesized table. [complex] allows LPM/ternary keys; entries are
   populated so the match-kind [m] is realistic (3 prefixes / 5 masks,
   as the paper's benchmarks use). *)
let table rng ~complex ~static =
  let field = Stdx.Prng.choice rng key_fields in
  let name = fresh_name "t" in
  let n_actions = 2 + Stdx.Prng.int rng 2 in
  let actions =
    List.init n_actions (fun i ->
        let n_prims = 1 + Stdx.Prng.int rng 3 in
        P4ir.Action.make
          (Printf.sprintf "a%d" i)
          (List.init n_prims (fun j ->
               P4ir.Action.Set_field (P4ir.Field.Meta (8 + ((i + j) mod 4)), Int64.of_int j))))
  in
  let kind =
    if not complex then P4ir.Match_kind.Exact
    else
      match Stdx.Prng.int rng 4 with
      | 0 -> P4ir.Match_kind.Lpm
      | 1 -> P4ir.Match_kind.Ternary
      | _ -> P4ir.Match_kind.Exact
  in
  let n_entries = if static then 2 + Stdx.Prng.int rng 3 else 4 + Stdx.Prng.int rng 28 in
  let entries =
    match kind with
    | P4ir.Match_kind.Exact ->
      List.init n_entries (fun i ->
          P4ir.Table.entry
            [ P4ir.Pattern.Exact (Int64.of_int (i + 1)) ]
            (Printf.sprintf "a%d" (i mod n_actions)))
    | P4ir.Match_kind.Lpm ->
      List.init n_entries (fun i ->
          let len = [| 8; 16; 24 |].(i mod 3) in
          P4ir.Table.entry
            [ P4ir.Pattern.Lpm
                (Int64.shift_left (Int64.of_int (i + 1)) (32 - len), len) ]
            (Printf.sprintf "a%d" (i mod n_actions)))
    | P4ir.Match_kind.Ternary ->
      List.init n_entries (fun i ->
          let mask = [| 0xFFL; 0xFF00L; 0xFFFFL; 0xFF0000L; 0xFFFFFFL |].(i mod 5) in
          P4ir.Table.entry ~priority:i
            [ P4ir.Pattern.Ternary (Int64.logand (Int64.of_int ((i + 1) * 7)) mask, mask) ]
            (Printf.sprintf "a%d" (i mod n_actions)))
    | P4ir.Match_kind.Range -> []
  in
  let keys = [ P4ir.Table.key field kind ] in
  P4ir.Table.make ~name ~keys ~actions ~default_action:"a0" ~entries
    ~max_entries:(max 64 (2 * n_entries)) ()

let acl rng =
  let field = Stdx.Prng.choice rng key_fields in
  let name = fresh_name "acl" in
  let tab = P4ir.Builder.acl_table ~name ~keys:[ P4ir.Table.key field P4ir.Match_kind.Exact ] () in
  List.fold_left
    (fun tab i ->
      P4ir.Table.add_entry tab
        (P4ir.Table.entry [ P4ir.Pattern.Exact (Int64.of_int (100 + i)) ] "deny"))
    tab
    (List.init 4 Fun.id)

type params = {
  sections : int;  (** straight or diamond sections strung together *)
  pipelet_len : int;  (** tables per pipelet *)
  diamond_prob : float;  (** chance a section is a two-arm conditional *)
  complex_tables : bool;
  category : category option;
}

let default_params =
  { sections = 4;
    pipelet_len = 3;
    diamond_prob = 0.4;
    complex_tables = true;
    category = None }

let pipelet_tables rng params =
  List.init params.pipelet_len (fun i ->
      let static = params.category = Some Small_static in
      if params.category = Some Heavy_drop && i = params.pipelet_len - 1 then acl rng
      else table rng ~complex:params.complex_tables ~static)

(* Build back-to-front: each section is given the id of the next one. *)
let program ?(params = default_params) rng =
  let prog = P4ir.Program.empty (fresh_name "synth") in
  let rec build prog next sections =
    if sections = 0 then (prog, next)
    else
      let diamond = Stdx.Prng.bool rng params.diamond_prob in
      if diamond then begin
        let prog, arm1 = P4ir.Builder.chain_into prog (pipelet_tables rng params) ~exit:next in
        let prog, arm2 = P4ir.Builder.chain_into prog (pipelet_tables rng params) ~exit:next in
        let prog, c =
          P4ir.Program.add_node prog
            (P4ir.Builder.cond ~name:(fresh_name "c") ~field:P4ir.Field.Ipv4_proto
               ~op:P4ir.Program.Eq
               ~arg:(Int64.of_int (Stdx.Prng.int rng 256))
               ~on_true:(Some arm1) ~on_false:(Some arm2))
        in
        build prog (Some c) (sections - 1)
      end
      else begin
        (* Straight sections are guarded by a conditional (e.g. a header
           validity check), as real P4 stages are — this also keeps
           pipelet lengths at [pipelet_len] instead of coalescing
           consecutive sections into one long run. *)
        let prog, entry = P4ir.Builder.chain_into prog (pipelet_tables rng params) ~exit:next in
        let prog, c =
          P4ir.Program.add_node prog
            (P4ir.Builder.cond ~name:(fresh_name "g") ~field:P4ir.Field.Eth_type
               ~op:P4ir.Program.Eq ~arg:0x0800L ~on_true:(Some entry) ~on_false:next)
        in
        build prog (Some c) (sections - 1)
      end
  in
  let prog, root = build prog None params.sections in
  let prog = P4ir.Program.with_root prog root in
  P4ir.Program.validate_exn prog;
  prog

(* --- profile synthesis --- *)

let dirichlet rng n =
  let raw = List.init n (fun _ -> Stdx.Prng.exponential rng 1.0) in
  Stdx.Stats.normalize raw

let profile ?category ?(drop_bias = 0.5) ?(skew = 1.0) rng prog =
  let prof = ref (Profile.uniform prog) in
  List.iter
    (fun (_, (tab : P4ir.Table.t)) ->
      let n = List.length tab.actions in
      let probs = dirichlet rng n in
      (* Skew concentrates mass on the first action. *)
      let probs =
        if skew > 1.0 then
          Stdx.Stats.normalize (List.mapi (fun i p -> if i = 0 then p *. skew else p) probs)
        else probs
      in
      let action_probs = List.map2 (fun (a : P4ir.Action.t) p -> (a.name, p)) tab.actions probs in
      let action_probs =
        (* Under Heavy_drop, deny actions absorb a large share. *)
        if
          category = Some Heavy_drop
          && List.exists (fun (a : P4ir.Action.t) -> String.equal a.name "deny") tab.actions
        then begin
          let deny_share = drop_bias *. (0.5 +. (0.5 *. Stdx.Prng.float rng)) in
          let others = List.filter (fun (name, _) -> not (String.equal name "deny")) action_probs in
          let other_total = Float.max 1e-9 (List.fold_left (fun acc (_, p) -> acc +. p) 0. others) in
          ("deny", deny_share)
          :: List.map (fun (name, p) -> (name, p /. other_total *. (1. -. deny_share))) others
        end
        else action_probs
      in
      let update_rate =
        match category with
        | Some Small_static -> 0.
        | Some High_locality -> Stdx.Prng.uniform rng 0. 1.5
        | _ -> Stdx.Prng.uniform rng 0. 20.
      in
      let locality =
        match category with
        | Some High_locality -> Stdx.Prng.uniform rng 0.9 0.99
        | _ -> Stdx.Prng.uniform rng 0.3 0.9
      in
      prof := Profile.set_table tab.name { Profile.action_probs; update_rate; locality } !prof)
    (P4ir.Program.tables prog);
  List.iter
    (fun (_, (c : P4ir.Program.cond)) ->
      prof := Profile.set_cond c.cond_name { Profile.true_prob = Stdx.Prng.float rng } !prof)
    (P4ir.Program.conds prog);
  !prof

(* Entropy of the pipelet traffic distribution under a profile (App. A.3). *)
let pipelet_entropy prof prog =
  let pipelets = Pipeleon.Pipelet.form prog in
  let reach = Costmodel.Cost.reach_probs prof prog in
  let probs =
    List.map
      (fun (p : Pipeleon.Pipelet.t) ->
        try List.assoc p.entry reach with Not_found -> 0.)
      pipelets
  in
  Stdx.Stats.entropy probs

let pipelet_distribution prof prog =
  let pipelets = Pipeleon.Pipelet.form prog in
  let reach = Costmodel.Cost.reach_probs prof prog in
  List.map
    (fun (p : Pipeleon.Pipelet.t) ->
      (p.entry, try List.assoc p.entry reach with Not_found -> 0.))
    pipelets
