(* Figure 11 (§5.3): end-to-end runtime case studies.

   (a) Service load balancer on BlueField2-like: a cache-everything
       baseline collapses under an entry-insertion burst and an ACL
       drop-rate change; Pipeleon re-optimizes past both.
   (b) DASH-style packet routing on Agilio-like: merge + reorder under
       biased drop, switch to caching under long-lived flows; redeploys
       pay a reload downtime.
   (c) NF composition on the BMv2-style emulated NIC: shifting hotspots
       across nine pipelets, top-30% re-optimization. *)

let fields4 =
  [ P4ir.Field.Ipv4_src; P4ir.Field.Ipv4_dst; P4ir.Field.Tcp_sport; P4ir.Field.Tcp_dport ]

let deny_value = 0xD00DL

let exact_t ~name ~field ~entries =
  P4ir.Table.make ~name
    ~keys:[ P4ir.Builder.exact_key field ]
    ~actions:[ P4ir.Builder.forward_action "fwd"; P4ir.Action.nop "def" ]
    ~default_action:"def"
    ~entries:
      (List.init entries (fun j -> P4ir.Table.entry [ P4ir.Pattern.Exact (Int64.of_int j) ] "fwd"))
    ()

let acl_t ~name ~field =
  P4ir.Table.add_entry
    (P4ir.Builder.acl_table ~name ~keys:[ P4ir.Builder.exact_key field ] ())
    (P4ir.Table.entry [ P4ir.Pattern.Exact deny_value ] "deny")

(* --- (a) load balancer --- *)

let ternary_t ~name ~field =
  P4ir.Table.make ~name
    ~keys:[ P4ir.Builder.ternary_key field ]
    ~actions:[ P4ir.Builder.forward_action "fwd"; P4ir.Action.nop "def" ]
    ~default_action:"def"
    ~entries:
      (List.init 10 (fun j ->
           let mask = [| 0xFFL; 0xFF00L; 0xFFFFL; 0xFF0000L; 0xFFFFFFL |].(j mod 5) in
           P4ir.Table.entry ~priority:j [ P4ir.Pattern.Ternary (Int64.of_int (j * 5), mask) ] "fwd"))
    ()

let lb_program () =
  let regular =
    List.init 8 (fun i ->
        ternary_t ~name:(Printf.sprintf "proc%d" i) ~field:(List.nth fields4 (i mod 4)))
  in
  let lb =
    [ exact_t ~name:"lb_vip" ~field:P4ir.Field.Ipv4_dst ~entries:32;
      exact_t ~name:"lb_backend" ~field:P4ir.Field.Tcp_sport ~entries:32 ]
  in
  let acls =
    [ acl_t ~name:"acl1" ~field:P4ir.Field.Udp_sport;
      acl_t ~name:"acl2" ~field:P4ir.Field.Udp_dport ]
  in
  P4ir.Program.linear "loadbalancer" (regular @ lb @ acls)

(* Deploy "cache the whole program" — the static baseline. *)
let whole_program_cache prog =
  match Pipeleon.Pipelet.form ~max_len:100 prog with
  | [ p ] ->
    let tabs = Pipeleon.Pipelet.tables prog p in
    let cache =
      Pipeleon.Cache.build ~max_actions:8192 ~capacity:8192 ~insert_limit:1e9
        ~name:"bigcache" tabs
    in
    Pipeleon.Transform.apply prog p [ Pipeleon.Transform.Cached { cache; originals = tabs } ]
  | _ -> invalid_arg "whole_program_cache: expected one pipelet"

let run_a () =
  Harness.section "Figure 11a: load balancer on BlueField2-like";
  let target = Costmodel.Target.bluefield2 in
  let make_controller frozen =
    let sim = Nicsim.Sim.create target (whole_program_cache (lb_program ())) in
    let config =
      { Runtime.Controller.default_config with
        min_relative_gain = (if frozen then infinity else 0.02);
        optimizer =
          { Pipeleon.Optimizer.default_config with
            top_k = 1.0;
            candidate_opts =
              { Pipeleon.Candidate.default_options with cache_capacity = 8192 } } }
    in
    Runtime.Controller.create ~config sim ~original:(lb_program ())
  in
  let baseline = make_controller true in
  let pipeleon = make_controller false in
  let cols = [ ("time(s)", 8); ("pipeleon(Gbps)", 15); ("baseline(Gbps)", 15) ] in
  Harness.print_header cols;
  let window = 2.5 in
  let packets = Harness.scaled 1200 in
  let rngs = (Stdx.Prng.create 31L, Stdx.Prng.create 31L, Stdx.Prng.create 99L) in
  let rng_p, rng_b, rng_ins = rngs in
  let flows rng =
    Traffic.Workload.random_flows rng ~n:600 ~fields:fields4
  in
  let flows_p = flows rng_p and flows_b = flows rng_b in
  let t = ref 0.0 in
  while !t < 50.0 -. 1e-9 do
    let phase_insertion = !t >= 16.0 && !t < 32.0 in
    let phase_dropchange = !t >= 32.0 in
    let source rng flows =
      let base = Traffic.Workload.of_flows ~zipf_s:1.1 rng flows in
      if phase_dropchange then (fun () ->
        (* Dropped traffic is scan-like: the denied dport plus a random
           source port per packet, so per-flow caches cannot absorb it. *)
        let pkt = base () in
        if Stdx.Prng.bool rng 0.5 then begin
          Nicsim.Packet.set pkt P4ir.Field.Udp_dport deny_value;
          Nicsim.Packet.set pkt P4ir.Field.Udp_sport (Stdx.Prng.next64 rng)
        end;
        pkt)
      else base
    in
    (* A high entry-insertion rate invalidates caches via the API map.
       Inserts are interleaved with traffic (sub-windows), as a real
       control plane's would be — otherwise caches quietly re-warm
       between windows and the invalidation cost is invisible. *)
    let chunks = if phase_insertion then 8 else 1 in
    let run_chunked ctl rng flows =
      let src = source rng flows in
      let merge acc (s : Nicsim.Sim.window_stats) =
        match acc with
        | None -> Some s
        | Some a ->
          Some
            { a with
              Nicsim.Sim.avg_latency =
                ((a.Nicsim.Sim.avg_latency *. float_of_int a.Nicsim.Sim.sampled_packets)
                 +. (s.Nicsim.Sim.avg_latency *. float_of_int s.Nicsim.Sim.sampled_packets))
                /. float_of_int (a.Nicsim.Sim.sampled_packets + s.Nicsim.Sim.sampled_packets);
              Nicsim.Sim.sampled_packets =
                a.Nicsim.Sim.sampled_packets + s.Nicsim.Sim.sampled_packets }
      in
      let acc = ref None in
      for c = 0 to chunks - 1 do
        if phase_insertion then
          for i = 0 to (40 / chunks) - 1 do
            let v = Int64.of_int (1000 + Stdx.Prng.int rng_ins 100000 + (c * 64) + i) in
            Runtime.Controller.insert ctl ~table:"lb_backend"
              (P4ir.Table.entry [ P4ir.Pattern.Exact v ] "fwd")
          done;
        let s =
          Nicsim.Sim.run_window (Runtime.Controller.sim ctl)
            ~duration:(window /. float_of_int chunks)
            ~packets:(max 1 (packets / chunks))
            ~source:src
        in
        acc := merge !acc s
      done;
      let s = Option.get !acc in
      { s with
        Nicsim.Sim.throughput_gbps =
          Costmodel.Target.throughput_gbps target ~latency:s.Nicsim.Sim.avg_latency }
    in
    let s_p = run_chunked pipeleon rng_p flows_p in
    let s_b = run_chunked baseline rng_b flows_b in
    Harness.print_row cols
      [ Harness.f1 !t;
        Harness.f1 s_p.Nicsim.Sim.throughput_gbps;
        Harness.f1 s_b.Nicsim.Sim.throughput_gbps ];
    if int_of_float (!t /. window) mod 2 = 1 then ignore (Runtime.Controller.tick pipeleon);
    t := !t +. window
  done

(* --- (b) DASH-style routing on Agilio --- *)

let dash_program () =
  let direction = exact_t ~name:"direction_lookup" ~field:P4ir.Field.Ingress_port ~entries:2 in
  let meta =
    [ exact_t ~name:"appliance_id" ~field:P4ir.Field.Eth_dst ~entries:4;
      exact_t ~name:"eni_lookup" ~field:P4ir.Field.Eth_src ~entries:4;
      exact_t ~name:"vni_map" ~field:P4ir.Field.Ipv4_dscp ~entries:4 ]
  in
  let conntrack = exact_t ~name:"conntrack" ~field:P4ir.Field.Tcp_sport ~entries:64 in
  let acls =
    List.init 3 (fun i ->
        let base =
          P4ir.Builder.acl_table
            ~name:(Printf.sprintf "acl_l%d" (i + 1))
            ~keys:[ P4ir.Builder.ternary_key (List.nth fields4 i) ]
            ()
        in
        List.fold_left
          (fun tab mask ->
            P4ir.Table.add_entry tab
              (P4ir.Table.entry ~priority:1
                 [ P4ir.Pattern.Ternary (Int64.logand deny_value mask, mask) ]
                 "deny"))
          base [ 0xFFFFL; 0xFFFEL; 0xFFFCL; 0xFFF8L; 0xFFF0L ])
  in
  let routing =
    P4ir.Table.make ~name:"routing"
      ~keys:[ P4ir.Builder.lpm_key P4ir.Field.Ipv4_dst ]
      ~actions:[ P4ir.Builder.forward_action "route"; P4ir.Action.nop "def" ]
      ~default_action:"def"
      ~entries:
        (List.init 9 (fun j ->
             let len = [| 8; 16; 24 |].(j mod 3) in
             P4ir.Table.entry
               [ P4ir.Pattern.Lpm (Int64.shift_left (Int64.of_int (j + 1)) (32 - len), len) ]
               "route"))
      ()
  in
  P4ir.Program.linear "dash_routing" ((direction :: meta) @ [ conntrack ] @ acls @ [ routing ])

let run_b () =
  Harness.section "Figure 11b: DASH-style packet routing on Agilio-like (reload on redeploy)";
  let target = Costmodel.Target.agilio_cx in
  let sim = Nicsim.Sim.create target (dash_program ()) in
  let config =
    { Runtime.Controller.default_config with
      Runtime.Controller.reconfig_downtime = 2.0;
      min_relative_gain = 0.05;
      optimizer =
        { Pipeleon.Optimizer.default_config with
          top_k = 1.0;
          candidate_opts =
            (* The DASH prefix is four tiny static tables: allow merging
               all of them (the paper's phase-1 win). *)
            { Pipeleon.Candidate.default_options with max_merge_len = 4 } } }
  in
  let controller = Runtime.Controller.create ~config sim ~original:(dash_program ()) in
  let baseline_sim = Nicsim.Sim.create target (dash_program ()) in
  let cols = [ ("time(s)", 8); ("pipeleon(Gbps)", 15); ("baseline(Gbps)", 15) ] in
  Harness.print_header cols;
  let window = 10.0 in
  let packets = Harness.scaled 1500 in
  let rng_p = Stdx.Prng.create 41L and rng_b = Stdx.Prng.create 41L in
  let t = ref 0.0 in
  while !t < 250.0 -. 1e-9 do
    let long_flow_phase = !t >= 120.0 in
    let source rng =
      if long_flow_phase then begin
        (* Long-lived flows with even, low ACL drop: caching wins. *)
        let flows = Traffic.Workload.random_flows rng ~n:64 ~fields:fields4 in
        let base = Traffic.Workload.of_flows ~zipf_s:1.3 rng flows in
        Traffic.Workload.mark_fraction rng ~rate:0.05 ~field:P4ir.Field.Ipv4_src
          ~value:deny_value base
      end
      else begin
        (* Short flows; the third ACL drops much more than the others. *)
        let flows = Traffic.Workload.random_flows rng ~n:4096 ~fields:fields4 in
        let base = Traffic.Workload.of_flows rng flows in
        Traffic.Workload.mark_fraction rng ~rate:0.45 ~field:P4ir.Field.Tcp_sport
          ~value:deny_value base
      end
    in
    let s_p = Nicsim.Sim.run_window sim ~duration:window ~packets ~source:(source rng_p) in
    let s_b =
      Nicsim.Sim.run_window baseline_sim ~duration:window ~packets ~source:(source rng_b)
    in
    Harness.print_row cols
      [ Harness.f1 !t;
        Harness.f1 s_p.Nicsim.Sim.throughput_gbps;
        Harness.f1 s_b.Nicsim.Sim.throughput_gbps ];
    ignore (Runtime.Controller.tick controller);
    t := !t +. window
  done

(* --- (c) NF composition on the emulated NIC --- *)

let nf_composition () =
  (* Three NFs strung together, each a diamond of pipelets: 9 pipelets
     total (§5.3.3), with LPM/ternary tables in the mix. *)
  let rng = Stdx.Prng.create 53L in
  let params =
    { Synth.default_params with sections = 4; pipelet_len = 3; diamond_prob = 0.75 }
  in
  ignore rng;
  let rng2 = Stdx.Prng.create 530L in
  Synth.program ~params rng2

let run_c () =
  Harness.section "Figure 11c: NF composition on the BMv2-style emulated NIC (top-30%)";
  let target = Costmodel.Target.emulated_nic in
  let prog = nf_composition () in
  let config =
    { Runtime.Controller.default_config with
      min_relative_gain = 0.02;
      optimizer = { Pipeleon.Optimizer.default_config with top_k = 0.3 } }
  in
  let sim = Nicsim.Sim.create target prog in
  let controller = Runtime.Controller.create ~config sim ~original:prog in
  let baseline_sim = Nicsim.Sim.create target (nf_composition ()) in
  let cols = [ ("window", 8); ("pipeleon(lat)", 14); ("baseline(lat)", 14) ] in
  Harness.print_header cols;
  let packets = Harness.scaled 1200 in
  let rng_p = Stdx.Prng.create 61L and rng_b = Stdx.Prng.create 61L in
  for w = 0 to 19 do
    (* Shift which NF is hot every 5 windows by steering the protocol
       field that the diamonds branch on. *)
    let proto = Int64.of_int ([| 6; 17; 47; 6 |].(w / 5)) in
    let source rng =
      let flows = Traffic.Workload.random_flows rng ~n:512 ~fields:fields4 in
      Traffic.Workload.override ~field:P4ir.Field.Ipv4_proto ~value:proto
        (Traffic.Workload.of_flows ~zipf_s:1.2 rng flows)
    in
    let s_p = Nicsim.Sim.run_window sim ~duration:5.0 ~packets ~source:(source rng_p) in
    let s_b =
      Nicsim.Sim.run_window baseline_sim ~duration:5.0 ~packets ~source:(source rng_b)
    in
    Harness.print_row cols
      [ string_of_int w; Harness.f1 s_p.Nicsim.Sim.avg_latency; Harness.f1 s_b.Nicsim.Sim.avg_latency ];
    ignore (Runtime.Controller.tick controller)
  done
