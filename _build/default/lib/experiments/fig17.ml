(* Figure 17 (Appendix A.2): table copying on heterogeneous ASIC/CPU
   cores. A chain interleaves CPU-only tables with ASIC-capable ones;
   the naive partition migrates at every boundary. Copying k of the
   ASIC-capable tables to the CPU removes crossings. A conditional sends
   only part of the traffic down the software-needing path. *)

let fields4 =
  [| P4ir.Field.Ipv4_src; P4ir.Field.Ipv4_dst; P4ir.Field.Tcp_sport; P4ir.Field.Tcp_dport |]

let mk_table name i =
  P4ir.Table.make ~name
    ~keys:[ P4ir.Builder.exact_key fields4.(i mod 4) ]
    ~actions:[ P4ir.Builder.forward_action "fwd"; P4ir.Action.nop "def" ]
    ~default_action:"def"
    ~entries:[ P4ir.Table.entry [ P4ir.Pattern.Exact 1L ] "fwd" ]
    ()

(* sw-arm: hw0 sw0 hw1 sw1 hw2 sw2 hw3 sw3 (sw_i needs CPU); the other
   arm is a pure-ASIC chain. *)
let build ~sw_ratio =
  let sw_arm_tables =
    List.concat
      (List.init 4 (fun i -> [ mk_table (Printf.sprintf "hw%d" i) i; mk_table (Printf.sprintf "sw%d" i) (i + 1) ]))
  in
  let hw_arm_tables = List.init 4 (fun i -> mk_table (Printf.sprintf "pure%d" i) i) in
  let prog = P4ir.Program.empty "fig17" in
  let prog, sw_entry = P4ir.Builder.chain_into prog sw_arm_tables ~exit:None in
  let prog, hw_entry = P4ir.Builder.chain_into prog hw_arm_tables ~exit:None in
  let prog, c =
    P4ir.Program.add_node prog
      (P4ir.Builder.cond ~name:"steer" ~field:P4ir.Field.Ipv4_proto ~op:P4ir.Program.Eq
         ~arg:6L ~on_true:(Some sw_entry) ~on_false:(Some hw_entry))
  in
  let prog = P4ir.Program.with_root prog (Some c) in
  P4ir.Program.validate_exn prog;
  let prof =
    Profile.set_cond "steer" { Profile.true_prob = sw_ratio } (Profile.uniform prog)
  in
  (prog, prof)

(* Placement: sw_i on CPU always; copy the first [copies] hw_i of the
   software arm onto the CPU as well. *)
let placement_with_copies prog ~copies =
  let by_name = Hashtbl.create 16 in
  List.iter
    (fun (id, (tab : P4ir.Table.t)) -> Hashtbl.replace by_name id tab.name)
    (P4ir.Program.tables prog);
  fun id ->
    match Hashtbl.find_opt by_name id with
    | Some name when String.length name >= 2 && String.sub name 0 2 = "sw" -> Costmodel.Cost.Cpu
    | Some name when String.length name >= 2 && String.sub name 0 2 = "hw" ->
      let idx = int_of_string (String.sub name 2 (String.length name - 2)) in
      if idx < copies then Costmodel.Cost.Cpu else Costmodel.Cost.Asic
    | _ -> Costmodel.Cost.Asic

let latency target prog prof ~copies =
  Costmodel.Cost.expected_latency ~placement:(placement_with_copies prog ~copies) target
    prof prog

let run () =
  Harness.section "Figure 17: migration minimization by table copying (emulated NIC)";
  let base = Costmodel.Target.emulated_nic in
  Harness.subsection "(a) vs migration latency (50% software traffic)";
  let cols =
    [ ("copies", 7); ("mig=5", 8); ("mig=10", 8); ("mig=20", 8) ]
  in
  Harness.print_header cols;
  let prog, prof = build ~sw_ratio:0.5 in
  List.iter
    (fun copies ->
      let cells =
        List.map
          (fun mig ->
            let target = { base with Costmodel.Target.migration_latency = mig } in
            Harness.f1 (latency target prog prof ~copies))
          [ 5.; 10.; 20. ]
      in
      Harness.print_row cols (string_of_int copies :: cells))
    [ 0; 1; 2; 3; 4 ];
  Harness.subsection "(b) vs software traffic ratio (migration latency 10)";
  let cols = [ ("copies", 7); ("30% sw", 8); ("50% sw", 8); ("70% sw", 8) ] in
  Harness.print_header cols;
  List.iter
    (fun copies ->
      let cells =
        List.map
          (fun ratio ->
            let prog, prof = build ~sw_ratio:ratio in
            Harness.f1 (latency base prog prof ~copies))
          [ 0.3; 0.5; 0.7 ]
      in
      Harness.print_row cols (string_of_int copies :: cells))
    [ 0; 1; 2; 3; 4 ];
  Harness.subsection "automatic placement search (Pipeleon.Placement.optimize)";
  let prog, prof = build ~sw_ratio:0.5 in
  let by_name = Hashtbl.create 16 in
  List.iter
    (fun (id, (tab : P4ir.Table.t)) -> Hashtbl.replace by_name id tab.name)
    (P4ir.Program.tables prog);
  let require id =
    match Hashtbl.find_opt by_name id with
    | Some name when String.length name >= 2 && String.sub name 0 2 = "sw" ->
      Pipeleon.Placement.Needs_cpu
    | _ -> Pipeleon.Placement.Any
  in
  let naive = Pipeleon.Placement.naive prog ~require in
  let optimized = Pipeleon.Placement.optimize base prof prog ~require in
  Printf.printf "naive:     latency=%.1f migrations=%.2f\n"
    (Costmodel.Cost.expected_latency ~placement:naive base prof prog)
    (Pipeleon.Placement.migrations_expected prof prog ~placement:naive);
  Printf.printf "optimized: latency=%.1f migrations=%.2f\n"
    (Costmodel.Cost.expected_latency ~placement:optimized base prof prog)
    (Pipeleon.Placement.migrations_expected prof prog ~placement:optimized)
