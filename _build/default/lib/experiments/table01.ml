(* Table 1 (§3.1): the cost model's symbols. The paper's table defines
   notation; we print each symbol with the value this reproduction
   configures for the BlueField2-like target and, where applicable, the
   value recovered by the §3.1 calibration methodology. *)

let run () =
  Harness.section "Table 1: cost model symbols (configured vs calibrated, BlueField2-like)";
  let target = Costmodel.Target.bluefield2 in
  let c = Fig05.calibrate () in
  let cols = [ ("symbol", 8); ("description", 52); ("value", 24) ] in
  Harness.print_header cols;
  let row sym desc value = Harness.print_row cols [ sym; desc; value ] in
  row "G" "directed acyclic graph of a P4 program" "(structure)";
  row "pi" "an end-to-end execution path" "(structure)";
  row "L(obj)" "latency of the input object" "Cost.expected_latency";
  row "P(obj)" "probability of the input object" "Cost.reach_probs";
  row "m_vi" "memory accesses for the key match of table vi"
    (Printf.sprintf "exact=1, lpm=%.2f, ternary=%.2f (calibrated)" c.Costmodel.Calibrate.m_lpm
       c.Costmodel.Calibrate.m_ternary);
  row "n_a" "number of primitives in action a" "Action.num_primitives";
  row "L_mat" "constant latency of one memory access"
    (Printf.sprintf "%.3f configured / %.3f calibrated" target.Costmodel.Target.l_mat
       c.Costmodel.Calibrate.l_mat_fit.slope);
  row "L_act" "constant latency of one action primitive"
    (Printf.sprintf "%.3f configured / %.3f calibrated" target.Costmodel.Target.l_act
       c.Costmodel.Calibrate.l_act_fit.slope);
  Printf.printf
    "\n(the calibrated values come from regressions over simulator benchmark\n\
     sweeps, exactly as §3.1 extracts them from hardware measurements)\n"
