(* Figure 9 (§5.2.1): microbenchmarks of the three optimizations on the
   BlueField2-like and Agilio-like targets.

   (a)/(b) table reordering: a 22-table pipeline whose ACL (dropper) is
   moved to earlier positions; one curve per drop rate.
   (c) table caching: a replicated 4-table pipelet under 40 000 flows,
   comparing cache partitioning strategies.
   (d) table merging: merging 2..4 tables. *)

let key_fields =
  [| P4ir.Field.Ipv4_src; P4ir.Field.Ipv4_dst; P4ir.Field.Tcp_sport; P4ir.Field.Tcp_dport |]

let deny_value = 0xBEEFL

let regular_table i =
  P4ir.Table.make
    ~name:(Printf.sprintf "t%d" i)
    ~keys:[ P4ir.Builder.exact_key key_fields.(i mod 4) ]
    ~actions:[ P4ir.Builder.forward_action "fwd"; P4ir.Action.nop "def" ]
    ~default_action:"def"
    ~entries:
      (List.init 16 (fun j -> P4ir.Table.entry [ P4ir.Pattern.Exact (Int64.of_int j) ] "fwd"))
    ()

let acl_at ~position ~n =
  let acl =
    P4ir.Table.add_entry
      (P4ir.Builder.acl_table ~name:"acl"
         ~keys:[ P4ir.Builder.exact_key P4ir.Field.Udp_dport ]
         ())
      (P4ir.Table.entry [ P4ir.Pattern.Exact deny_value ] "deny")
  in
  let regular = List.init (n - 1) regular_table in
  let before = List.filteri (fun i _ -> i < position) regular in
  let after = List.filteri (fun i _ -> i >= position) regular in
  P4ir.Program.linear "fig9ab" (before @ [ acl ] @ after)

let reorder_subfig target label =
  Harness.subsection (Printf.sprintf "(%s) table reordering on %s" label
                        target.Costmodel.Target.target_name);
  let n = 22 in
  let positions = [ 21; 18; 15; 12; 9; 6; 3; 0 ] in
  let cols =
    ("position", 9)
    :: List.map
         (fun r -> (Printf.sprintf "drop%.0f%%(Gbps)" (r *. 100.), 15))
         [ 0.25; 0.5; 0.75 ]
  in
  Harness.print_header cols;
  List.iter
    (fun position ->
      let cells =
        List.map
          (fun rate ->
            let prog = acl_at ~position ~n in
            let sim = Nicsim.Sim.create target prog in
            let rng = Stdx.Prng.create 3L in
            let base =
              Traffic.Workload.of_flows rng
                (Traffic.Workload.random_flows rng ~n:1024 ~fields:(Array.to_list key_fields))
            in
            let source =
              Traffic.Workload.mark_fraction rng ~rate ~field:P4ir.Field.Udp_dport
                ~value:deny_value base
            in
            Harness.f1 (Harness.measure_throughput ~packets:(Harness.scaled 1200) sim source))
          [ 0.25; 0.5; 0.75 ]
      in
      Harness.print_row cols (string_of_int position :: cells))
    positions

(* --- caching --- *)

(* A 4-table pipelet of complex matches (what flow caches shine at),
   replicated three times. Strategies are applied inside every replica. *)
let complex_table r i =
  let name = Printf.sprintf "r%d_t%d" r i in
  let field = key_fields.(i) in
  match i with
  | 0 | 2 ->
    P4ir.Table.make ~name
      ~keys:[ P4ir.Builder.ternary_key field ]
      ~actions:[ P4ir.Builder.forward_action "fwd"; P4ir.Action.nop "def" ]
      ~default_action:"def"
      ~entries:
        (List.init 10 (fun j ->
             let mask = [| 0xFFL; 0xFF00L; 0xFFFFL; 0xFF0000L; 0xFFFFFFL |].(j mod 5) in
             P4ir.Table.entry ~priority:j
               [ P4ir.Pattern.Ternary (Int64.of_int (j * 3), mask) ]
               "fwd"))
      ()
  | 1 ->
    P4ir.Table.make ~name
      ~keys:[ P4ir.Builder.lpm_key field ]
      ~actions:[ P4ir.Builder.forward_action "fwd"; P4ir.Action.nop "def" ]
      ~default_action:"def"
      ~entries:
        (List.init 9 (fun j ->
             let len = [| 8; 16; 24 |].(j mod 3) in
             P4ir.Table.entry
               [ P4ir.Pattern.Lpm (Int64.shift_left (Int64.of_int (j + 1)) (32 - len), len) ]
               "fwd"))
      ()
  | _ -> P4ir.Table.rename name (regular_table i)

let apply_segments_to_pipelet prog (pipelet : Pipeleon.Pipelet.t) ~segments ~tag =
  let tabs = Pipeleon.Pipelet.tables prog pipelet in
  let n = List.length tabs in
  let covered = Array.make n None in
  List.iteri
    (fun si (start, len) ->
      for i = start to min (n - 1) (start + len - 1) do
        covered.(i) <- Some (si, start, len)
      done)
    segments;
  let elements = ref [] in
  let i = ref 0 in
  while !i < n do
    (match covered.(!i) with
     | None ->
       elements := Pipeleon.Transform.Plain (List.nth tabs !i) :: !elements;
       incr i
     | Some (si, start, len) ->
       let originals = List.filteri (fun j _ -> j >= start && j < start + len) tabs in
       let cache =
         Pipeleon.Cache.build ~capacity:4096 ~insert_limit:1e9
           ~name:(Printf.sprintf "cache_%s_%d" tag si) originals
       in
       elements := Pipeleon.Transform.Cached { cache; originals } :: !elements;
       i := start + len)
  done;
  Pipeleon.Transform.apply prog pipelet (List.rev !elements)

let cache_strategy_program ~segments =
  let replicas = 3 in
  let all = List.concat (List.init replicas (fun r -> List.init 4 (complex_table r))) in
  let prog = P4ir.Program.linear "fig9c" all in
  if segments = [] then prog
  else
    (* Pipelets shift as replicas are rewritten, so re-form each time and
       pick the next untouched replica (a plain 4-table run). *)
    let rec rewrite prog r =
      if r >= replicas then prog
      else
        let pipelets = Pipeleon.Pipelet.form ~max_len:4 prog in
        let prefix = Printf.sprintf "r%d_" r in
        (* Match the replica by table-name prefix: the miss-path originals
           of an already-rewritten replica also look like a plain run. *)
        let is_target (p : Pipeleon.Pipelet.t) =
          Pipeleon.Pipelet.length p = 4
          && List.for_all
               (fun (t : P4ir.Table.t) ->
                 t.role = P4ir.Table.Regular
                 && String.length t.name > String.length prefix
                 && String.sub t.name 0 (String.length prefix) = prefix)
               (Pipeleon.Pipelet.tables prog p)
        in
        match List.find_opt is_target pipelets with
        | None -> rewrite prog (r + 1)
        | Some p ->
          rewrite (apply_segments_to_pipelet prog p ~segments ~tag:(string_of_int r)) (r + 1)
    in
    rewrite prog 0

let caching_subfig () =
  Harness.subsection "(c) table caching strategies, 40000 flows";
  let strategies =
    [ ("no-cache", []);
      ("[1][2][3][4]", [ (0, 1); (1, 1); (2, 1); (3, 1) ]);
      ("[1,2][3][4]", [ (0, 2); (2, 1); (3, 1) ]);
      ("[1,2,3][4]", [ (0, 3); (3, 1) ]);
      ("[1,2,3,4]", [ (0, 4) ]) ]
  in
  let cols = [ ("strategy", 14); ("bf2(Gbps)", 10); ("agilio(Gbps)", 12) ] in
  Harness.print_header cols;
  List.iter
    (fun (label, segments) ->
      let run target =
        let prog = cache_strategy_program ~segments in
        let sim = Nicsim.Sim.create target prog in
        let rng = Stdx.Prng.create 17L in
        (* 40 000 flows = 40 correlated (src,dst,sport) triples x 1000
           dports: per-table projections are tiny, but the full
           cross-product key space defeats a single whole-program cache
           (the §3.2.2 cache-key cross-product problem). *)
        let triples =
          Array.init 40 (fun _ ->
              [ (P4ir.Field.Ipv4_src, Stdx.Prng.next64 rng);
                (P4ir.Field.Ipv4_dst, Stdx.Prng.next64 rng);
                (P4ir.Field.Tcp_sport, Stdx.Prng.next64 rng) ])
        in
        let flows =
          Array.init 40_000 (fun i ->
              triples.(i mod 40) @ [ (P4ir.Field.Tcp_dport, Int64.of_int (i / 40)) ])
        in
        let source = Traffic.Workload.of_flows ~zipf_s:0.9 rng flows in
        (* Warm the caches, then measure. *)
        ignore (Nicsim.Sim.run_window sim ~duration:4.0 ~packets:(Harness.scaled 8000) ~source);
        Harness.measure_throughput ~packets:(Harness.scaled 4000) sim source
      in
      Harness.print_row cols
        [ label;
          Harness.f1 (run Costmodel.Target.bluefield2);
          Harness.f1 (run Costmodel.Target.agilio_cx) ])
    strategies

(* --- merging --- *)

let small_table i =
  P4ir.Table.make
    ~name:(Printf.sprintf "m%d" i)
    ~keys:[ P4ir.Builder.exact_key key_fields.(i mod 4) ]
    ~actions:[ P4ir.Builder.forward_action "fwd"; P4ir.Action.nop "def" ]
    ~default_action:"def"
    ~entries:
      (List.init 6 (fun j -> P4ir.Table.entry [ P4ir.Pattern.Exact (Int64.of_int j) ] "fwd"))
    ()

let merge_program ~merged_count =
  (* Three replicas of the 4-table pipelet; the merge is applied inside
     each replica (the paper replicates its microbenchmark pipelet with a
     scale factor). *)
  let replicas = 5 in
  let tabs =
    List.concat
      (List.init replicas (fun r ->
           List.init 4 (fun i ->
               P4ir.Table.rename (Printf.sprintf "x%d_m%d" r i) (small_table i))))
  in
  let prog = P4ir.Program.linear "fig9d" tabs in
  if merged_count < 2 then prog
  else
    let rec rewrite prog r =
      if r >= replicas then prog
      else
        let pipelets = Pipeleon.Pipelet.form ~max_len:4 prog in
        let prefix = Printf.sprintf "x%d_" r in
        let is_target (p : Pipeleon.Pipelet.t) =
          Pipeleon.Pipelet.length p = 4
          && List.for_all
               (fun (t : P4ir.Table.t) ->
                 t.role = P4ir.Table.Regular
                 && String.length t.name > String.length prefix
                 && String.sub t.name 0 (String.length prefix) = prefix)
               (Pipeleon.Pipelet.tables prog p)
        in
        match List.find_opt is_target pipelets with
        | None -> rewrite prog (r + 1)
        | Some p ->
          let ptabs = Pipeleon.Pipelet.tables prog p in
          let to_merge = List.filteri (fun i _ -> i < merged_count) ptabs in
          let rest = List.filteri (fun i _ -> i >= merged_count) ptabs in
          let merged =
            Pipeleon.Merge.build_fallback ~name:(Printf.sprintf "merged%d" r) to_merge
          in
          let prog =
            Pipeleon.Transform.apply prog p
              (Pipeleon.Transform.Merged_fallback { merged; originals = to_merge }
              :: List.map (fun t -> Pipeleon.Transform.Plain t) rest)
          in
          rewrite prog (r + 1)
    in
    rewrite prog 0

let merging_subfig () =
  Harness.subsection "(d) table merging options";
  let cols = [ ("option", 12); ("bf2(Gbps)", 10); ("agilio(Gbps)", 12); ("entries", 8) ] in
  Harness.print_header cols;
  List.iter
    (fun (label, merged_count) ->
      let entries =
        (* Count the merged lookaside entries actually materialized. *)
        let prog = merge_program ~merged_count in
        List.fold_left
          (fun acc (_, (t : P4ir.Table.t)) ->
            match t.role with
            | P4ir.Table.Cache _ | P4ir.Table.Merged _ -> acc + P4ir.Table.num_entries t
            | _ -> acc)
          0
          (P4ir.Program.tables prog)
      in
      let run target =
        let prog = merge_program ~merged_count in
        let sim = Nicsim.Sim.create target prog in
        let rng = Stdx.Prng.create 23L in
        (* Traffic hits the small tables' entry space so the merged exact
           table gets real hits. *)
        let flows =
          Array.init 512 (fun _ ->
              List.map (fun f -> (f, Int64.of_int (Stdx.Prng.int rng 6))) (Array.to_list key_fields))
        in
        let source = Traffic.Workload.of_flows rng flows in
        Harness.measure_throughput ~packets:(Harness.scaled 2500) sim source
      in
      Harness.print_row cols
        [ label;
          Harness.f1 (run Costmodel.Target.bluefield2);
          Harness.f1 (run Costmodel.Target.agilio_cx);
          string_of_int entries ])
    [ ("no-merge", 0); ("[1,2]", 2); ("[1,2,3]", 3); ("[1,2,3,4]", 4) ]

let run_ab () =
  Harness.section "Figure 9a/9b: table reordering microbenchmark";
  reorder_subfig Costmodel.Target.bluefield2 "a";
  reorder_subfig Costmodel.Target.agilio_cx "b"

let run_c () =
  Harness.section "Figure 9c: table caching microbenchmark";
  caching_subfig ()

let run_d () =
  Harness.section "Figure 9d: table merging microbenchmark";
  merging_subfig ()
