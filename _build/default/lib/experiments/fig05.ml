(* Figure 5 (§3.1): calibrate the cost model from benchmark programs on
   the BlueField2-like target, then validate its predictions against
   fresh simulator measurements across four sweeps: program length,
   action primitives, LPM tables, ternary tables. *)

let target = Costmodel.Target.bluefield2

let flow_source rng =
  Traffic.Workload.of_flows rng
    (Traffic.Workload.random_flows rng ~n:512
       ~fields:[ P4ir.Field.Ipv4_src; P4ir.Field.Ipv4_dst; P4ir.Field.Tcp_sport ])

let exact_program ~n ~prims =
  P4ir.Program.linear
    (Printf.sprintf "exact%d_%d" n prims)
    (P4ir.Builder.exact_chain ~prefix:"t" ~n ~actions_per_table:2
       ~extra_prims:(prims - 1)
       ~key_of:(fun i -> [| P4ir.Field.Ipv4_src; P4ir.Field.Ipv4_dst; P4ir.Field.Tcp_sport |].(i mod 3))
       ())

let lpm_table i =
  P4ir.Table.make
    ~name:(Printf.sprintf "lpm%d" i)
    ~keys:[ P4ir.Builder.lpm_key P4ir.Field.Ipv4_dst ]
    ~actions:[ P4ir.Builder.forward_action "fwd"; P4ir.Action.nop "def" ]
    ~default_action:"def"
    ~entries:
      (List.init 9 (fun j ->
           let len = [| 8; 16; 24 |].(j mod 3) in
           P4ir.Table.entry
             [ P4ir.Pattern.Lpm (Int64.shift_left (Int64.of_int (j + 1)) (32 - len), len) ]
             "fwd"))
    ()

let ternary_table i =
  P4ir.Table.make
    ~name:(Printf.sprintf "tern%d" i)
    ~keys:[ P4ir.Builder.ternary_key P4ir.Field.Ipv4_src ]
    ~actions:[ P4ir.Builder.forward_action "fwd"; P4ir.Action.nop "def" ]
    ~default_action:"def"
    ~entries:
      (List.init 10 (fun j ->
           let mask = [| 0xFFL; 0xFF00L; 0xFFFF00L; 0xFF000000L; 0xFFFFL |].(j mod 5) in
           P4ir.Table.entry ~priority:j
             [ P4ir.Pattern.Ternary (Int64.of_int (j * 1024), mask) ]
             "fwd"))
    ()

let measure prog =
  let sim = Nicsim.Sim.create target prog in
  let rng = Stdx.Prng.create 5L in
  Harness.measure_latency ~packets:(Harness.scaled 1500) sim (flow_source rng)

(* "More than 300 P4 programs" (§3.1): densely sweep the four dimensions
   for calibration. *)
let calibrate () =
  let exact_sweep =
    List.map
      (fun n ->
        { Costmodel.Calibrate.x = float_of_int n; latency = measure (exact_program ~n ~prims:1) })
      (List.init 16 (fun i -> 5 + (2 * i)))
  in
  let action_sweep =
    List.map
      (fun prims ->
        { Costmodel.Calibrate.x = float_of_int (20 * prims);
          latency = measure (exact_program ~n:20 ~prims) })
      [ 1; 2; 3; 4; 5; 6; 7; 8 ]
  in
  let lpm_sweep =
    List.map
      (fun n ->
        { Costmodel.Calibrate.x = float_of_int n;
          latency = measure (P4ir.Program.linear "lpms" (List.init n lpm_table)) })
      [ 8; 10; 12; 14; 16 ]
  in
  let ternary_sweep =
    List.map
      (fun n ->
        { Costmodel.Calibrate.x = float_of_int n;
          latency = measure (P4ir.Program.linear "terns" (List.init n ternary_table)) })
      [ 8; 10; 12; 14; 16 ]
  in
  Costmodel.Calibrate.calibrate ~exact_sweep ~action_sweep ~lpm_sweep ~ternary_sweep

let validate_sweep ~title ~cols cases =
  Harness.subsection title;
  Harness.print_header cols;
  let deviations = ref [] in
  List.iter
    (fun (x, measured_latency, predicted_latency) ->
      let measured_thr = Costmodel.Target.throughput_gbps target ~latency:measured_latency in
      let predicted_thr = Costmodel.Target.throughput_gbps target ~latency:predicted_latency in
      let norm = predicted_thr /. measured_thr in
      deviations := Float.abs (norm -. 1.) :: !deviations;
      Harness.print_row cols
        [ string_of_int x; Harness.f1 measured_thr; Harness.f1 predicted_thr; Harness.f3 norm ])
    cases;
  Printf.printf "mean |deviation| = %s\n" (Harness.pct (Stdx.Stats.mean !deviations))

let run () =
  Harness.section "Figure 5: cost model vs simulator measurements (BlueField2-like)";
  let c = calibrate () in
  Printf.printf
    "calibrated: L_mat=%.3f (R2=%.3f)  L_act=%.3f (R2=%.3f)  m_lpm=%.2f  m_ternary=%.2f\n"
    c.Costmodel.Calibrate.l_mat_fit.slope c.l_mat_fit.r2 c.l_act_fit.slope c.l_act_fit.r2
    c.m_lpm c.m_ternary;
  let fitted = Costmodel.Calibrate.apply c target in
  let predict prog =
    Costmodel.Cost.expected_latency fitted (Profile.uniform prog) prog
  in
  let cols = [ ("x", 6); ("meas(Gbps)", 11); ("model(Gbps)", 11); ("norm", 6) ] in
  validate_sweep ~title:"(a) number of exact tables (2 actions each)" ~cols
    (List.map
       (fun n ->
         let p = exact_program ~n ~prims:1 in
         (n, measure p, predict p))
       [ 10; 20; 30; 40 ]);
  validate_sweep ~title:"(b) action primitives (20 exact tables)" ~cols
    (List.map
       (fun prims ->
         let p = exact_program ~n:20 ~prims in
         (prims, measure p, predict p))
       [ 2; 4; 6; 8 ]);
  validate_sweep ~title:"(c) LPM tables (3 distinct prefixes)" ~cols
    (List.map
       (fun n ->
         let p = P4ir.Program.linear "lpmv" (List.init n lpm_table) in
         (n, measure p, predict p))
       [ 10; 12; 14; 16 ]);
  validate_sweep ~title:"(d) ternary tables (5 distinct masks)" ~cols
    (List.map
       (fun n ->
         let p = P4ir.Program.linear "ternv" (List.init n ternary_table) in
         (n, measure p, predict p))
       [ 10; 12; 14; 16 ])
