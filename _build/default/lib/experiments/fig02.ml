(* Figure 2 (§2.2 motivation): a pipeline of ACL tables followed by
   regular processing and routing, under a traffic pattern whose dominant
   dropper shifts over time. A static ACL order decays when the pattern
   shifts; profile-guided reordering recovers line rate. *)

let acl_fields =
  [ ("acl_cloud", P4ir.Field.Ipv4_src);
    ("acl_tenant", P4ir.Field.Ipv4_dst);
    ("acl_subnet", P4ir.Field.Tcp_sport);
    ("acl_vm", P4ir.Field.Tcp_dport) ]

let deny_value = 0xDEADL

(* ACLs are ternary (as real ACLs are): five distinct masks make each
   ACL visit cost several memory accesses, so the dropper's position in
   the chain matters a lot. All deny entries match the marked value. *)
let deny_masks = [ 0xFFFFL; 0xFFFEL; 0xFFFCL; 0xFFF8L ]

let build_program () =
  let acls =
    List.map
      (fun (name, field) ->
        let base =
          P4ir.Builder.acl_table ~name ~keys:[ P4ir.Builder.ternary_key field ] ()
        in
        List.fold_left
          (fun tab mask ->
            P4ir.Table.add_entry tab
              (P4ir.Table.entry ~priority:1
                 [ P4ir.Pattern.Ternary (Int64.logand deny_value mask, mask) ]
                 "deny"))
          base deny_masks)
      acl_fields
  in
  let regular =
    P4ir.Builder.exact_chain ~prefix:"proc" ~n:6
      ~key_of:(fun i -> P4ir.Field.Meta (i mod 4))
      ()
  in
  let routing =
    P4ir.Table.make ~name:"routing"
      ~keys:[ P4ir.Builder.lpm_key P4ir.Field.Ipv4_dst ]
      ~actions:[ P4ir.Builder.forward_action "route"; P4ir.Action.nop "def" ]
      ~default_action:"def"
      ~entries:
        [ P4ir.Table.entry [ P4ir.Pattern.Lpm (0x0A000000L, 8) ] "route";
          P4ir.Table.entry [ P4ir.Pattern.Lpm (0x0A0B0000L, 16) ] "route";
          P4ir.Table.entry [ P4ir.Pattern.Lpm (0x0A0B0C00L, 24) ] "route" ]
      ()
  in
  P4ir.Program.linear "fig2" (acls @ regular @ [ routing ])

(* Phase p: ACL number (p mod 4) drops [rate] of the traffic. *)
let source_for_phase rng ~phase ~rate =
  let base =
    Traffic.Workload.of_flows rng
      (Traffic.Workload.random_flows rng ~n:256
         ~fields:[ P4ir.Field.Ipv4_src; P4ir.Field.Ipv4_dst; P4ir.Field.Tcp_sport; P4ir.Field.Tcp_dport ])
  in
  let _, field = List.nth acl_fields (phase mod List.length acl_fields) in
  Traffic.Workload.mark_fraction rng ~rate ~field ~value:deny_value base

let reorder_only_config =
  let opts =
    { Pipeleon.Candidate.default_options with max_cache_len = 0; max_merge_len = 0 }
  in
  { Runtime.Controller.default_config with
    optimizer =
      { Pipeleon.Optimizer.default_config with
        candidate_opts = opts;
        top_k = 1.0;
        enable_groups = false };
    min_relative_gain = 0.01 }

let run () =
  Harness.section "Figure 2: static vs profile-guided ACL order (BlueField2-like)";
  let target = Costmodel.Target.bluefield2 in
  let window = 4.0 in
  let horizon = 72.0 in
  let packets = Harness.scaled 800 in
  let static_sim = Nicsim.Sim.create target (build_program ()) in
  let dynamic_sim = Nicsim.Sim.create target (build_program ()) in
  let controller =
    Runtime.Controller.create ~config:reorder_only_config dynamic_sim
      ~original:(build_program ())
  in
  let rng_static = Stdx.Prng.create 11L in
  let rng_dynamic = Stdx.Prng.create 11L in
  Harness.print_header [ ("time(s)", 8); ("static(Gbps)", 13); ("dynamic(Gbps)", 13) ];
  let t = ref 0.0 in
  while !t < horizon -. 1e-9 do
    (* The dominant dropper rotates every 24 s. *)
    let phase = int_of_float (!t /. 24.0) + 3 in
    let static_src = source_for_phase rng_static ~phase ~rate:0.6 in
    let dynamic_src = source_for_phase rng_dynamic ~phase ~rate:0.6 in
    let s_static = Nicsim.Sim.run_window static_sim ~duration:window ~packets ~source:static_src in
    let s_dyn = Nicsim.Sim.run_window dynamic_sim ~duration:window ~packets ~source:dynamic_src in
    Harness.print_row
      [ ("time(s)", 8); ("static(Gbps)", 13); ("dynamic(Gbps)", 13) ]
      [ Harness.f1 !t;
        Harness.f1 s_static.Nicsim.Sim.throughput_gbps;
        Harness.f1 s_dyn.Nicsim.Sim.throughput_gbps ];
    ignore (Runtime.Controller.tick controller);
    t := !t +. window
  done
