(* Figure 14 (§5.4.3): top-k effectiveness relative to ESearch under
   profiles of different entropy (traffic aggregation). For each program
   we synthesize many random profiles, pick the 10th/50th/90th entropy
   percentiles, and compare top-k gain to the exhaustive-search gain. *)

let target = Costmodel.Target.bluefield2

let params = { Synth.default_params with sections = 9; pipelet_len = 2; diamond_prob = 0.45 }

let gain_with_k prog prof k =
  let config =
    { Pipeleon.Optimizer.default_config with top_k = k; enable_groups = false }
  in
  let result = Pipeleon.Optimizer.optimize ~config target prof prog in
  result.Pipeleon.Optimizer.plan.Pipeleon.Search.predicted_gain

let entropy_profiles rng prog ~candidates =
  let profiles =
    List.init candidates (fun _ ->
        (* Locality-heavy profiles: optimization gain then tracks traffic
           share, which is the premise of hot-pipelet selection (§4.1.2). *)
        let prof = Synth.profile ~category:Synth.High_locality rng prog in
        (Synth.pipelet_entropy prof prog, prof))
  in
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) profiles in
  let nth_pct p =
    let n = List.length sorted in
    snd (List.nth sorted (min (n - 1) (int_of_float (float_of_int n *. p /. 100.))))
  in
  [ (10., nth_pct 10.); (50., nth_pct 50.); (90., nth_pct 90.) ]

let run () =
  Harness.section "Figure 14: top-k gain / ESearch gain by profile entropy";
  let programs = Harness.scaled 50 in
  let profile_candidates = Harness.scaled 400 in
  let k_values = [ 0.2; 0.3; 0.4; 0.5 ] in
  let ratios : (float * float, float list ref) Hashtbl.t = Hashtbl.create 16 in
  let rng = Stdx.Prng.create 4242L in
  for _ = 1 to programs do
    let prog = Synth.program ~params rng in
    List.iter
      (fun (entropy_pct, prof) ->
        let esearch = gain_with_k prog prof 1.0 in
        if esearch > 1e-9 then
          List.iter
            (fun k ->
              let g = gain_with_k prog prof k in
              let key = (entropy_pct, k) in
              let cell =
                match Hashtbl.find_opt ratios key with
                | Some r -> r
                | None ->
                  let r = ref [] in
                  Hashtbl.add ratios key r;
                  r
              in
              cell := Float.min 1.0 (g /. esearch) :: !cell)
            k_values)
      (entropy_profiles rng prog ~candidates:profile_candidates)
  done;
  List.iter
    (fun entropy_pct ->
      Harness.subsection (Printf.sprintf "%.0fth-entropy profiles" entropy_pct);
      List.iter
        (fun k ->
          match Hashtbl.find_opt ratios (entropy_pct, k) with
          | Some r ->
            Harness.print_cdf ~label:(Printf.sprintf "k=%.0f%% gain ratio" (k *. 100.)) !r
          | None -> ())
        k_values)
    [ 10.; 50.; 90. ]
