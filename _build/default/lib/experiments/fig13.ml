(* Figure 13 (§5.4.2): optimization turnaround time vs top-k, over 300
   synthesized programs in three (pipelet count, pipelet length) groups;
   ESearch is top-100%. *)

let target = Costmodel.Target.bluefield2

let groups =
  [ ("PN~12, PL=2", { Synth.default_params with sections = 9; pipelet_len = 2; diamond_prob = 0.45 });
    ("PN~13, PL=3", { Synth.default_params with sections = 9; pipelet_len = 3; diamond_prob = 0.45 });
    ("PN~15, PL=3", { Synth.default_params with sections = 11; pipelet_len = 3; diamond_prob = 0.45 }) ]

let k_values = [ 0.2; 0.3; 0.4; 1.0 ]

let time_one params k rng =
  let prog = Synth.program ~params rng in
  let prof = Synth.profile rng prog in
  let config =
    { Pipeleon.Optimizer.default_config with top_k = k; enable_groups = false }
  in
  let result = Pipeleon.Optimizer.optimize ~config target prof prog in
  (result.Pipeleon.Optimizer.search_seconds, result.Pipeleon.Optimizer.pipelets_total)

let run () =
  Harness.section "Figure 13: top-k optimization time (ESearch = k=100%)";
  let programs_per_group = Harness.scaled 100 in
  List.iter
    (fun (label, params) ->
      Harness.subsection label;
      let avg_pn = ref 0 in
      let times_by_k =
        List.map
          (fun k ->
            let rng = Stdx.Prng.create 1234L in
            let samples =
              List.init programs_per_group (fun _ ->
                  let t, pn = time_one params k rng in
                  avg_pn := !avg_pn + pn;
                  t *. 1000.)
            in
            (k, samples))
          k_values
      in
      Printf.printf "avg pipelets per program: %.1f\n"
        (float_of_int !avg_pn /. float_of_int (programs_per_group * List.length k_values));
      List.iter
        (fun (k, samples) ->
          Harness.print_cdf ~label:(Printf.sprintf "k=%.0f%% time(ms)" (k *. 100.)) samples)
        times_by_k;
      let median k = Stdx.Stats.median (List.assoc k times_by_k) in
      Printf.printf "speedup of top-20%% over ESearch (median): %.1fx\n"
        (median 1.0 /. Float.max 1e-9 (median 0.2)))
    groups
