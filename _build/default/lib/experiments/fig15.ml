(* Figure 15 (§5.4.4): cross-pipelet group optimization on programs
   dominated by short (one-table) pipelets. *)

let target = Costmodel.Target.bluefield2

let params =
  { Synth.default_params with sections = 8; pipelet_len = 1; diamond_prob = 0.8 }

let reduction prog prof ~k ~groups =
  let config =
    { Pipeleon.Optimizer.default_config with top_k = k; enable_groups = groups }
  in
  let result = Pipeleon.Optimizer.optimize ~config target prof prog in
  let before = Costmodel.Cost.expected_latency target prof prog in
  result.Pipeleon.Optimizer.plan.Pipeleon.Search.predicted_gain /. Float.max 1e-9 before

let run () =
  Harness.section "Figure 15: pipelet-group (cross-pipelet) optimization";
  let programs = Harness.scaled 60 in
  Harness.subsection "(a) average latency reduction";
  let cols = [ ("top-k", 6); ("w/o group", 10); ("w/ group", 10) ] in
  Harness.print_header cols;
  let per_k =
    List.map
      (fun k ->
        let rng = Stdx.Prng.create 808L in
        let samples =
          List.init programs (fun _ ->
              let prog = Synth.program ~params rng in
              let prof =
                Profile.with_default_cache_hit 0.9
                  (Synth.profile ~category:Synth.High_locality rng prog)
              in
              (reduction prog prof ~k ~groups:false, reduction prog prof ~k ~groups:true))
        in
        (k, samples))
      [ 0.4; 0.5; 0.6 ]
  in
  List.iter
    (fun (k, samples) ->
      Harness.print_row cols
        [ Printf.sprintf "%.0f%%" (k *. 100.);
          Harness.pct (Stdx.Stats.mean (List.map fst samples));
          Harness.pct (Stdx.Stats.mean (List.map snd samples)) ])
    per_k;
  Harness.subsection "(b) per-program latency reduction CDF (k=50%)";
  let _, samples50 = List.nth per_k 1 in
  Harness.print_cdf ~label:"w/o group" (List.map fst samples50);
  Harness.print_cdf ~label:"w/ group" (List.map snd samples50)
