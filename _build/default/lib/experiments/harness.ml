(* Shared experiment plumbing: column printing, scaling, and small
   helpers reused across the per-figure modules. *)

let scale = ref 1.0
(* Global work multiplier: `bench/main.exe --scale 0.2 ...` shrinks
   ensemble sizes for quick runs. *)

let scaled n = max 1 (int_of_float (ceil (float_of_int n *. !scale)))

let section title =
  Printf.printf "\n=== %s ===\n%!" title

let subsection title = Printf.printf "\n--- %s ---\n%!" title

let print_header cols =
  let line = String.concat "  " (List.map (fun (name, width) -> Printf.sprintf "%*s" width name) cols) in
  print_endline line;
  print_endline (String.make (String.length line) '-')

let print_row cols cells =
  print_endline
    (String.concat "  "
       (List.map2 (fun (_, width) cell -> Printf.sprintf "%*s" width cell) cols cells))

let f1 v = Printf.sprintf "%.1f" v
let f2 v = Printf.sprintf "%.2f" v
let f3 v = Printf.sprintf "%.3f" v
let pct v = Printf.sprintf "%.1f%%" (v *. 100.)

let print_cdf ~label values =
  match values with
  | [] -> Printf.printf "%s: (no data)\n" label
  | _ ->
    Printf.printf "%s: n=%d p10=%.3f p25=%.3f p50=%.3f p75=%.3f p90=%.3f\n" label
      (List.length values)
      (Stdx.Stats.percentile 10. values)
      (Stdx.Stats.percentile 25. values)
      (Stdx.Stats.percentile 50. values)
      (Stdx.Stats.percentile 75. values)
      (Stdx.Stats.percentile 90. values)

(* Standard measurement: expected throughput of a program under a flow
   workload on a simulator, over one window. *)
let measure_throughput ?(packets = 2000) ?(duration = 1.0) sim source =
  let stats = Nicsim.Sim.run_window sim ~duration ~packets ~source in
  stats.Nicsim.Sim.throughput_gbps

let measure_latency ?(packets = 2000) ?(duration = 1.0) sim source =
  let stats = Nicsim.Sim.run_window sim ~duration ~packets ~source in
  stats.Nicsim.Sim.avg_latency
