(* Figure 10 (§5.2.2): synthesized single-pipelet programs in three
   workload categories, optimized with one technique at a time; report
   average cost-model latency reduction by pipelet length. *)

let target = Costmodel.Target.bluefield2

type technique = Reordering | Merging | Caching

let technique_name = function
  | Reordering -> "Reordering"
  | Merging -> "Merging"
  | Caching -> "Caching"

let combo_uses technique (c : Pipeleon.Candidate.combo) =
  let identity = List.init (List.length c.order) Fun.id in
  match technique with
  | Reordering -> c.segs = [] && c.order <> identity
  | Merging ->
    c.order = identity
    && c.segs <> []
    && List.for_all
         (fun (s : Pipeleon.Candidate.seg) -> s.kind <> Pipeleon.Candidate.Cache_seg)
         c.segs
  | Caching ->
    c.order = identity
    && c.segs <> []
    && List.for_all
         (fun (s : Pipeleon.Candidate.seg) -> s.kind = Pipeleon.Candidate.Cache_seg)
         c.segs

(* Best relative latency reduction achievable with one technique on a
   single-pipelet program, per the cost model. *)
let best_reduction rng technique category ~pl =
  let params =
    { Synth.sections = 1;
      pipelet_len = pl;
      diamond_prob = 0.;
      complex_tables = (category <> Synth.Small_static);
      category = Some category }
  in
  let prog = Synth.program ~params rng in
  let prof = Synth.profile ~category rng prog in
  match Pipeleon.Pipelet.form prog with
  | [ pipelet ] -> (
    let tabs = Pipeleon.Pipelet.tables prog pipelet in
    let opts = { Pipeleon.Candidate.default_options with max_merge_len = 2 } in
    let combos =
      List.filter (combo_uses technique) (Pipeleon.Candidate.enumerate ~opts prof tabs)
    in
    let evaluated =
      List.filter_map
        (fun combo ->
          match Pipeleon.Candidate.realize ~opts ~name_prefix:"f10" tabs combo with
          | None -> None
          | Some elements -> (
            match
              Pipeleon.Candidate.evaluate target prof ~reach_prob:1.0 ~originals:tabs
                combo elements
            with
            | e -> Some e
            | exception Invalid_argument _ -> None))
        combos
    in
    match Pipeleon.Candidate.best_of evaluated with
    | Some best ->
      (* Relative to the pipelet's own processing cost: the fixed
         per-packet pipeline overhead is not optimizable. *)
      (best.latency_before -. best.latency_after)
      /. Float.max 1e-9 (best.latency_before -. target.Costmodel.Target.l_fixed)
    | None -> 0.)
  | _ -> 0.

let run () =
  Harness.section "Figure 10: synthesized programs, per-technique latency reduction";
  let categories =
    [ (Synth.Heavy_drop, "Heavy packet drop", Reordering);
      (Synth.Small_static, "Small static tables", Merging);
      (Synth.High_locality, "High traffic locality", Caching) ]
  in
  let pl_buckets = [ (1, 2); (2, 3); (3, 4) ] in
  let programs_per_point = Harness.scaled 100 in
  List.iter
    (fun (category, label, _) ->
      Harness.subsection label;
      let cols =
        [ ("PL", 5); ("Reordering", 11); ("Merging", 11); ("Caching", 11) ]
      in
      Harness.print_header cols;
      List.iter
        (fun (lo, hi) ->
          let rng = Stdx.Prng.create 77L in
          let avg technique =
            let samples =
              List.init programs_per_point (fun i ->
                  let pl = if i mod 2 = 0 then lo else hi in
                  best_reduction rng technique category ~pl)
            in
            Stdx.Stats.mean samples
          in
          Harness.print_row cols
            [ Printf.sprintf "%d~%d" lo hi;
              Harness.pct (avg Reordering);
              Harness.pct (avg Merging);
              Harness.pct (avg Caching) ])
        pl_buckets)
    categories
