(* Figures 18 and 19 (Appendix A.3): pipelet traffic distributions at
   three entropy levels, and the ESearch throughput improvement they
   admit. *)

let target = Costmodel.Target.bluefield2

let params = { Synth.default_params with sections = 8; pipelet_len = 2; diamond_prob = 0.5 }

let run () =
  Harness.section "Figure 18: pipelet traffic distributions by entropy";
  let rng = Stdx.Prng.create 9090L in
  let prog = Synth.program ~params rng in
  let candidates = Harness.scaled 2000 in
  let profiles =
    List.init candidates (fun _ ->
        let prof = Synth.profile rng prog in
        (Synth.pipelet_entropy prof prog, prof))
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let pick p =
    let n = List.length profiles in
    List.nth profiles (min (n - 1) (int_of_float (float_of_int n *. p /. 100.)))
  in
  List.iter
    (fun pct ->
      let entropy, prof = pick pct in
      Harness.subsection (Printf.sprintf "%.0fth-percentile entropy (H=%.2f bits)" pct entropy);
      let dist = Synth.pipelet_distribution prof prog in
      List.iteri
        (fun i (_, p) -> Printf.printf "pipelet %2d: %5.1f%%  %s\n" (i + 1) (p *. 100.)
            (String.make (int_of_float (p *. 40.)) '#'))
        dist)
    [ 10.; 50.; 90. ];
  Harness.section "Figure 19: ESearch throughput improvement by entropy";
  let programs = Harness.scaled 40 in
  let per_entropy = Hashtbl.create 8 in
  let rng = Stdx.Prng.create 7070L in
  for _ = 1 to programs do
    let prog = Synth.program ~params rng in
    let profiles =
      List.init (Harness.scaled 300) (fun _ ->
          let prof = Synth.profile ~category:Synth.High_locality rng prog in
          (Synth.pipelet_entropy prof prog, prof))
      |> List.sort (fun (a, _) (b, _) -> compare a b)
    in
    let pick p =
      let n = List.length profiles in
      snd (List.nth profiles (min (n - 1) (int_of_float (float_of_int n *. p /. 100.))))
    in
    List.iter
      (fun pct ->
        let prof = pick pct in
        let before = Costmodel.Cost.expected_latency target prof prog in
        let config =
          { Pipeleon.Optimizer.default_config with top_k = 1.0; enable_groups = false }
        in
        let result = Pipeleon.Optimizer.optimize ~config target prof prog in
        let after = before -. result.Pipeleon.Optimizer.plan.Pipeleon.Search.predicted_gain in
        (* Throughput ratio = inverse latency ratio below line rate. *)
        let ratio = before /. Float.max 1e-9 after in
        let cell =
          match Hashtbl.find_opt per_entropy pct with
          | Some r -> r
          | None ->
            let r = ref [] in
            Hashtbl.add per_entropy pct r;
            r
        in
        cell := ratio :: !cell)
      [ 10.; 50.; 90. ]
  done;
  List.iter
    (fun pct ->
      match Hashtbl.find_opt per_entropy pct with
      | Some r ->
        Harness.print_cdf ~label:(Printf.sprintf "%.0fth entropy: thr improvement" pct) !r;
        Printf.printf "  mean improvement: %.2fx\n" (Stdx.Stats.mean !r)
      | None -> ())
    [ 10.; 50.; 90. ]
