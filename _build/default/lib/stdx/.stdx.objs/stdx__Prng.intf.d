lib/stdx/prng.mli:
