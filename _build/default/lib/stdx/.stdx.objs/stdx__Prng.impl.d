lib/stdx/prng.ml: Array Int64
