lib/stdx/stats.mli:
