(** Small statistics toolbox: summaries, CDFs, regression, entropy. *)

val mean : float list -> float
(** @raise Invalid_argument on an empty list. *)

val stddev : float list -> float
val median : float list -> float

val percentile : float -> float list -> float
(** [percentile p xs] with [p] in [0, 100], linear interpolation.
    @raise Invalid_argument on an empty list or p outside [0, 100]. *)

val cdf_points : float list -> (float * float) list
(** Sorted (value, cumulative fraction) pairs suitable for plotting. *)

val linear_regression : (float * float) list -> float * float
(** Least-squares fit returning (slope, intercept).
    @raise Invalid_argument with fewer than two points. *)

val r_squared : (float * float) list -> slope:float -> intercept:float -> float

val entropy : float list -> float
(** Shannon entropy (base 2) of a distribution; zero-probability entries
    are skipped. The input is normalized first. *)

val normalize : float list -> float list
(** Scale non-negative weights to sum to 1. All-zero input maps to the
    uniform distribution. *)
