let mean = function
  | [] -> invalid_arg "Stats.mean: empty list"
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.
  | _ ->
    let m = mean xs in
    let var = mean (List.map (fun x -> (x -. m) ** 2.) xs) in
    sqrt var

let percentile p xs =
  if xs = [] then invalid_arg "Stats.percentile: empty list";
  if p < 0. || p > 100. then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.of_list (List.sort compare xs) in
  let n = Array.length sorted in
  let rank = p /. 100. *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = int_of_float (Float.ceil rank) in
  if lo = hi then sorted.(lo)
  else
    let frac = rank -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))

let median xs = percentile 50. xs

let cdf_points xs =
  let sorted = List.sort compare xs in
  let n = float_of_int (List.length sorted) in
  List.mapi (fun i x -> (x, float_of_int (i + 1) /. n)) sorted

let linear_regression points =
  if List.length points < 2 then invalid_arg "Stats.linear_regression: need >= 2 points";
  let n = float_of_int (List.length points) in
  let sx = List.fold_left (fun acc (x, _) -> acc +. x) 0. points in
  let sy = List.fold_left (fun acc (_, y) -> acc +. y) 0. points in
  let sxx = List.fold_left (fun acc (x, _) -> acc +. (x *. x)) 0. points in
  let sxy = List.fold_left (fun acc (x, y) -> acc +. (x *. y)) 0. points in
  let denom = (n *. sxx) -. (sx *. sx) in
  if Float.abs denom < 1e-12 then invalid_arg "Stats.linear_regression: degenerate x";
  let slope = ((n *. sxy) -. (sx *. sy)) /. denom in
  let intercept = (sy -. (slope *. sx)) /. n in
  (slope, intercept)

let r_squared points ~slope ~intercept =
  let ys = List.map snd points in
  let ybar = mean ys in
  let ss_tot = List.fold_left (fun acc y -> acc +. ((y -. ybar) ** 2.)) 0. ys in
  let ss_res =
    List.fold_left
      (fun acc (x, y) -> acc +. ((y -. (slope *. x) -. intercept) ** 2.))
      0. points
  in
  if ss_tot < 1e-12 then 1. else 1. -. (ss_res /. ss_tot)

let normalize weights =
  let total = List.fold_left ( +. ) 0. weights in
  if total <= 0. then
    let n = List.length weights in
    if n = 0 then [] else List.map (fun _ -> 1. /. float_of_int n) weights
  else List.map (fun w -> w /. total) weights

let entropy dist =
  let dist = normalize dist in
  List.fold_left
    (fun acc p -> if p <= 0. then acc else acc -. (p *. (log p /. log 2.)))
    0. dist
