type flow = (P4ir.Field.t * P4ir.Value.t) list

type source = unit -> Nicsim.Packet.t

let random_value rng field =
  let width = P4ir.Field.width field in
  let raw = Stdx.Prng.next64 rng in
  P4ir.Value.truncate ~width raw

let random_flows rng ~n ~fields =
  Array.init n (fun _ -> List.map (fun f -> (f, random_value rng f)) fields)

let flows_hitting rng ~n (tab : P4ir.Table.t) =
  let exact_entries =
    List.filter
      (fun (e : P4ir.Table.entry) ->
        List.for_all (function P4ir.Pattern.Exact _ -> true | _ -> false) e.patterns)
      tab.entries
  in
  if exact_entries = [] then
    invalid_arg ("Workload.flows_hitting: no exact entries in " ^ tab.name);
  let entries = Array.of_list exact_entries in
  Array.init n (fun _ ->
      let e = Stdx.Prng.choice rng entries in
      List.map2
        (fun (k : P4ir.Table.key) p ->
          match p with
          | P4ir.Pattern.Exact v -> (k.field, v)
          | _ -> assert false)
        tab.keys e.patterns)

let apply_flow pkt flow = List.iter (fun (f, v) -> Nicsim.Packet.set pkt f v) flow

let of_flows ?(zipf_s = 0.) ?size_bytes rng flows =
  if Array.length flows = 0 then invalid_arg "Workload.of_flows: empty flow set";
  let sampler =
    if zipf_s > 0. then
      let z = Zipf.create ~n:(Array.length flows) ~s:zipf_s in
      fun () -> Zipf.sample z rng
    else fun () -> Stdx.Prng.int rng (Array.length flows)
  in
  fun () ->
    let pkt = Nicsim.Packet.create ?size_bytes () in
    apply_flow pkt flows.(sampler ());
    pkt

let mark_fraction rng ~rate ~field ~value inner () =
  let pkt = inner () in
  if Stdx.Prng.bool rng rate then Nicsim.Packet.set pkt field value;
  pkt

let override ~field ~value inner () =
  let pkt = inner () in
  Nicsim.Packet.set pkt field value;
  pkt

let mixture rng weighted =
  if weighted = [] then invalid_arg "Workload.mixture: empty list";
  let weights = Array.of_list (List.map fst weighted) in
  let sources = Array.of_list (List.map snd weighted) in
  fun () ->
    let i = Stdx.Prng.weighted_index rng weights in
    sources.(i) ()

let constant ?size_bytes flow () =
  let pkt = Nicsim.Packet.create ?size_bytes () in
  apply_flow pkt flow;
  pkt
