type t = { cumulative : float array }

let create ~n ~s =
  if n <= 0 then invalid_arg "Zipf.create: n must be positive";
  if s < 0. then invalid_arg "Zipf.create: s must be non-negative";
  let weights = Array.init n (fun i -> 1. /. Float.pow (float_of_int (i + 1)) s) in
  let total = Array.fold_left ( +. ) 0. weights in
  let cumulative = Array.make n 0. in
  let acc = ref 0. in
  Array.iteri
    (fun i w ->
      acc := !acc +. (w /. total);
      cumulative.(i) <- !acc)
    weights;
  cumulative.(n - 1) <- 1.0;
  { cumulative }

let sample t rng =
  let target = Stdx.Prng.float rng in
  (* First index whose cumulative mass exceeds the target. *)
  let lo = ref 0 and hi = ref (Array.length t.cumulative - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cumulative.(mid) <= target then lo := mid + 1 else hi := mid
  done;
  !lo

let probability t i =
  if i = 0 then t.cumulative.(0)
  else t.cumulative.(i) -. t.cumulative.(i - 1)
