lib/traffic/workload.mli: Nicsim P4ir Stdx
