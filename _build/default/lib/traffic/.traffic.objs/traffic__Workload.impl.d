lib/traffic/workload.ml: Array List Nicsim P4ir Stdx Zipf
