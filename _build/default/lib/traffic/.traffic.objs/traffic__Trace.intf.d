lib/traffic/trace.mli: Nicsim P4ir Workload
