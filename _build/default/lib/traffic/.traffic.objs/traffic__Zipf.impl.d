lib/traffic/zipf.ml: Array Float Stdx
