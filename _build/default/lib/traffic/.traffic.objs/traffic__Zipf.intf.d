lib/traffic/zipf.mli: Stdx
