lib/traffic/trace.ml: Array Buffer Fun Int64 List Nicsim P4ir String
