(** Packet trace capture and replay.

    A trace records the header fields of a packet stream so the *same*
    workload can be replayed against different program layouts — the
    moral equivalent of replaying a pcap through TRex. The on-disk format
    is a simple CSV: a header line naming the fields, then one line of
    decimal values per packet. *)

type t

val fields : t -> P4ir.Field.t list
val length : t -> int

val record : fields:P4ir.Field.t list -> n:int -> Workload.source -> t
(** Pull [n] packets from the source and capture the given fields. *)

val replay : ?loop:bool -> t -> Workload.source
(** Packets in recorded order; with [loop] (default true) the trace
    restarts when exhausted, otherwise raises [Invalid_argument]. *)

val nth : t -> int -> Nicsim.Packet.t

val save : string -> t -> unit
val load : string -> t
(** @raise Invalid_argument on malformed files. *)

val to_string : t -> string
val of_string : string -> t
