(** Workload generation: flow populations and packet sources.

    A source is a thunk producing the next packet; {!Nicsim.Sim.run_window}
    pulls from it. Sources compose: start from a flow population with a
    locality distribution, then layer on drop-marking, field overrides, or
    mixtures to express the paper's traffic scenarios. *)

type flow = (P4ir.Field.t * P4ir.Value.t) list

type source = unit -> Nicsim.Packet.t

val random_flows :
  Stdx.Prng.t -> n:int -> fields:P4ir.Field.t list -> flow array
(** [n] distinct flows with random values in each field's domain. *)

val flows_hitting :
  Stdx.Prng.t -> n:int -> P4ir.Table.t -> flow array
(** Flows whose key-field values match existing entries of the table
    (uniformly chosen among exact-pattern entries), so table hit rates
    are controllable. @raise Invalid_argument if the table has no
    exact-pattern entries. *)

val of_flows :
  ?zipf_s:float -> ?size_bytes:int -> Stdx.Prng.t -> flow array -> source
(** Sample a flow per packet — Zipf-ranked when [zipf_s > 0] (flow 0 most
    popular), uniform otherwise — and materialize its packet. *)

val mark_fraction :
  Stdx.Prng.t ->
  rate:float ->
  field:P4ir.Field.t ->
  value:P4ir.Value.t ->
  source ->
  source
(** With probability [rate], overwrite [field] on the generated packet —
    e.g. stamp the value an ACL entry denies, to dial a drop rate. *)

val override : field:P4ir.Field.t -> value:P4ir.Value.t -> source -> source

val mixture : Stdx.Prng.t -> (float * source) list -> source
(** Weighted mixture of sources. @raise Invalid_argument on empty list. *)

val constant : ?size_bytes:int -> flow -> source
(** Always the same packet contents (microbenchmarks). *)
