(** Zipfian sampling over [n] ranked items, used to model traffic
    locality (popular flows dominate, which is what makes flow caches
    effective). *)

type t

val create : n:int -> s:float -> t
(** Rank distribution with weight [1 / rank^s]; [s = 0] is uniform.
    @raise Invalid_argument if [n <= 0] or [s < 0]. *)

val sample : t -> Stdx.Prng.t -> int
(** An index in [0, n), rank 0 most popular. O(log n). *)

val probability : t -> int -> float
(** Probability mass of one rank. *)
