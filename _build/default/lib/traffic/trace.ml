type t = { trace_fields : P4ir.Field.t list; rows : int64 array array }

let fields t = t.trace_fields
let length t = Array.length t.rows

let record ~fields ~n source =
  let rows =
    Array.init n (fun _ ->
        let pkt = source () in
        Array.of_list (List.map (Nicsim.Packet.get pkt) fields))
  in
  { trace_fields = fields; rows }

let nth t i =
  if i < 0 || i >= length t then invalid_arg "Trace.nth: out of bounds";
  let pkt = Nicsim.Packet.create () in
  List.iteri (fun j f -> Nicsim.Packet.set pkt f t.rows.(i).(j)) t.trace_fields;
  pkt

let replay ?(loop = true) t =
  if length t = 0 then invalid_arg "Trace.replay: empty trace";
  let cursor = ref 0 in
  fun () ->
    if !cursor >= length t then
      if loop then cursor := 0 else invalid_arg "Trace.replay: trace exhausted";
    let pkt = nth t !cursor in
    incr cursor;
    pkt

let to_string t =
  let buf = Buffer.create (16 * (length t + 1)) in
  Buffer.add_string buf
    (String.concat "," (List.map P4ir.Field.to_string t.trace_fields));
  Buffer.add_char buf '\n';
  Array.iter
    (fun row ->
      Buffer.add_string buf
        (String.concat "," (Array.to_list (Array.map Int64.to_string row)));
      Buffer.add_char buf '\n')
    t.rows;
  Buffer.contents buf

let of_string s =
  match String.split_on_char '\n' (String.trim s) with
  | [] | [ "" ] -> invalid_arg "Trace.of_string: empty input"
  | header :: lines ->
    let trace_fields =
      List.map
        (fun name ->
          match P4ir.Field.of_string (String.trim name) with
          | f -> f
          | exception Invalid_argument _ ->
            invalid_arg ("Trace.of_string: unknown field " ^ name))
        (String.split_on_char ',' header)
    in
    let width = List.length trace_fields in
    let rows =
      List.filter (fun l -> String.trim l <> "") lines
      |> List.map (fun line ->
             let cells = String.split_on_char ',' line in
             if List.length cells <> width then
               invalid_arg "Trace.of_string: row arity mismatch";
             Array.of_list
               (List.map
                  (fun c ->
                    match Int64.of_string_opt (String.trim c) with
                    | Some v -> v
                    | None -> invalid_arg ("Trace.of_string: bad value " ^ c))
                  cells))
      |> Array.of_list
    in
    { trace_fields; rows }

let save path t =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string t))

let load path =
  let ic = open_in path in
  let content =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  of_string content
