(** Runtime health checks on deployed optimizations (§3.2 "optimization
    considerations"): caches whose observed hit rate underperforms and
    merged tables whose size or update rate exploded should trigger
    re-optimization (possibly reversing the transformation). *)

type issue =
  | Low_hit_rate of { cache : string; observed : float; expected : float }
  | Merged_blowup of { merged : string; entries : int; limit : int }
  | Update_storm of { table : string; rate : float; limit : float }

val assess :
  ?hit_rate_slack:float ->
  ?entry_limit:int ->
  ?update_limit:float ->
  observed:Profile.t ->
  P4ir.Program.t ->
  issue list
(** [observed] is the profile of the *optimized* program (real counter
    data). [hit_rate_slack] (default 0.15) is how far below the planning
    estimate a cache may fall before flagging. *)

val pp_issue : Format.formatter -> issue -> unit
