lib/runtime/controller.ml: Costmodel Float Hashtbl Int64 List Monitor Nicsim P4ir Pipeleon Profile
