lib/runtime/incremental.ml: Format List P4ir
