lib/runtime/monitor.mli: Format P4ir Profile
