lib/runtime/monitor.ml: Format List P4ir Pipeleon Profile
