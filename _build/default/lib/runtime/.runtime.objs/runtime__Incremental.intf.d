lib/runtime/incremental.mli: Format P4ir
