lib/runtime/controller.mli: Monitor Nicsim P4ir Pipeleon Profile
