type change =
  | Added of string
  | Removed of string
  | Reshaped of string
  | Entries_changed of string

let table_map prog =
  List.fold_left
    (fun acc (_, (t : P4ir.Table.t)) -> (t.name, t) :: acc)
    []
    (P4ir.Program.tables prog)

let diff ~old_program ~new_program =
  let old_tabs = table_map old_program in
  let new_tabs = table_map new_program in
  let removed =
    List.filter_map
      (fun (name, _) ->
        if List.mem_assoc name new_tabs then None else Some (Removed name))
      old_tabs
  in
  let added_or_changed =
    List.filter_map
      (fun (name, (nt : P4ir.Table.t)) ->
        match List.assoc_opt name old_tabs with
        | None -> Some (Added name)
        | Some ot ->
          if ot.P4ir.Table.keys <> nt.keys || ot.actions <> nt.actions || ot.role <> nt.role
          then Some (Reshaped name)
          else if ot.entries <> nt.entries then Some (Entries_changed name)
          else None)
      new_tabs
  in
  List.rev removed @ List.rev added_or_changed

let rebuild_count changes =
  List.length
    (List.filter (function Added _ | Removed _ | Reshaped _ -> true | _ -> false) changes)

let pp_change fmt = function
  | Added n -> Format.fprintf fmt "+%s" n
  | Removed n -> Format.fprintf fmt "-%s" n
  | Reshaped n -> Format.fprintf fmt "~%s" n
  | Entries_changed n -> Format.fprintf fmt "e:%s" n
