type t =
  | Null
  | Bool of bool
  | Int of int64
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_string ?(indent = 0) json =
  let buf = Buffer.create 256 in
  let pad level = if indent > 0 then Buffer.add_string buf (String.make (level * indent) ' ') in
  let newline () = if indent > 0 then Buffer.add_char buf '\n' in
  let rec go level = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (string_of_bool b)
    | Int i -> Buffer.add_string buf (Int64.to_string i)
    | Float f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string buf (Printf.sprintf "%.1f" f)
      else Buffer.add_string buf (Printf.sprintf "%.17g" f)
    | String s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
      Buffer.add_char buf '[';
      newline ();
      List.iteri
        (fun i item ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            newline ()
          end;
          pad (level + 1);
          go (level + 1) item)
        items;
      newline ();
      pad level;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      Buffer.add_char buf '{';
      newline ();
      List.iteri
        (fun i (k, v) ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            newline ()
          end;
          pad (level + 1);
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\": ";
          go (level + 1) v)
        fields;
      newline ();
      pad level;
      Buffer.add_char buf '}'
  in
  go 0 json;
  Buffer.contents buf

exception Parse_error of string

let of_string_exn s =
  let pos = ref 0 in
  let len = String.length s in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < len then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    if !pos + String.length word <= len && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= len then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' ->
        if !pos >= len then fail "unterminated escape";
        let e = s.[!pos] in
        advance ();
        (match e with
         | '"' -> Buffer.add_char buf '"'
         | '\\' -> Buffer.add_char buf '\\'
         | '/' -> Buffer.add_char buf '/'
         | 'n' -> Buffer.add_char buf '\n'
         | 't' -> Buffer.add_char buf '\t'
         | 'r' -> Buffer.add_char buf '\r'
         | 'b' -> Buffer.add_char buf '\b'
         | 'f' -> Buffer.add_char buf '\012'
         | 'u' ->
           if !pos + 4 > len then fail "bad \\u escape";
           let hex = String.sub s !pos 4 in
           pos := !pos + 4;
           let code = int_of_string ("0x" ^ hex) in
           if code < 0x80 then Buffer.add_char buf (Char.chr code)
           else if code < 0x800 then begin
             Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
             Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
           end
           else begin
             Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
             Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
             Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
           end
         | _ -> fail "bad escape");
        go ()
      | c ->
        Buffer.add_char buf c;
        go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while !pos < len && is_num_char s.[!pos] do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    if String.contains text '.' || String.contains text 'e' || String.contains text 'E'
    then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail "bad number"
    else
      match Int64.of_string_opt text with
      | Some i -> Int i
      | None -> (
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> fail "bad number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [ parse_value () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          items := parse_value () :: !items;
          skip_ws ()
        done;
        expect ']';
        List (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let parse_field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let fields = ref [ parse_field () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          fields := parse_field () :: !fields;
          skip_ws ()
        done;
        expect '}';
        Obj (List.rev !fields)
      end
    | Some _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> len then fail "trailing garbage";
  v

let of_string s =
  match of_string_exn s with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

let member k = function
  | Obj fields -> (
    match List.assoc_opt k fields with
    | Some v -> v
    | None -> invalid_arg ("Json.member: missing key " ^ k))
  | _ -> invalid_arg ("Json.member: not an object at key " ^ k)

let member_opt k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let to_list = function
  | List items -> items
  | _ -> invalid_arg "Json.to_list: not a list"

let get_string = function
  | String s -> s
  | _ -> invalid_arg "Json.get_string: not a string"

let get_int = function
  | Int i -> i
  | Float f when Float.is_integer f -> Int64.of_float f
  | _ -> invalid_arg "Json.get_int: not an integer"

let get_float = function
  | Float f -> f
  | Int i -> Int64.to_float i
  | _ -> invalid_arg "Json.get_float: not a number"

let get_bool = function
  | Bool b -> b
  | _ -> invalid_arg "Json.get_bool: not a bool"
