type t = int64

let truncate ~width v =
  if width >= 64 then v
  else Int64.logand v (Int64.sub (Int64.shift_left 1L width) 1L)

let prefix_mask ~width ~prefix_len =
  if prefix_len <= 0 then 0L
  else if prefix_len >= width then truncate ~width Int64.minus_one
  else
    let ones = Int64.sub (Int64.shift_left 1L prefix_len) 1L in
    Int64.shift_left ones (width - prefix_len)

let matches_mask ~value ~mask v =
  Int64.equal (Int64.logand v mask) (Int64.logand value mask)

let compare_unsigned = Int64.unsigned_compare
let in_range ~lo ~hi v = compare_unsigned lo v <= 0 && compare_unsigned v hi <= 0
let to_hex v = Printf.sprintf "0x%Lx" v
let pp fmt v = Format.pp_print_string fmt (to_hex v)
