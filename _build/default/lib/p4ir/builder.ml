let exact_key f = Table.key f Match_kind.Exact
let lpm_key f = Table.key f Match_kind.Lpm
let ternary_key f = Table.key f Match_kind.Ternary
let range_key f = Table.key f Match_kind.Range

let set_action name f v = Action.make name [ Action.Set_field (f, v) ]

let forward_action ?(extra_prims = 0) name =
  let extras = List.init extra_prims (fun i -> Action.Set_field (Field.Meta (8 + i), 1L)) in
  Action.make name (Action.Forward 1 :: extras)

let acl_table ?(max_entries = 1024) ~name ~keys () =
  Table.make ~max_entries ~name ~keys
    ~actions:[ Action.nop "allow"; Action.make "deny" [ Action.Drop ] ]
    ~default_action:"allow" ()

let exact_chain ?(actions_per_table = 2) ?(extra_prims = 0) ~prefix ~n ~key_of () =
  List.init n (fun i ->
      let actions =
        List.init actions_per_table (fun j ->
            forward_action ~extra_prims (Printf.sprintf "act%d" j))
      in
      Table.make
        ~name:(Printf.sprintf "%s_%d" prefix i)
        ~keys:[ exact_key (key_of i) ]
        ~actions ~default_action:"act0" ())

let cond ~name ~field ~op ~arg ~on_true ~on_false =
  Program.Cond
    { Program.cond_name = name; field; op; arg; on_true; on_false }

let chain_into prog tabs ~exit =
  match tabs with
  | [] -> invalid_arg "Builder.chain_into: empty chain"
  | _ ->
    let prog, rev_ids =
      List.fold_left
        (fun (prog, acc) tab ->
          let prog, id = Program.add_node prog (Program.Table (tab, Program.Uniform exit)) in
          (prog, id :: acc))
        (prog, []) tabs
    in
    let ids = List.rev rev_ids in
    let rec link prog = function
      | a :: (b :: _ as rest) ->
        let prog =
          match Program.find_exn prog a with
          | Program.Table (tab, Program.Uniform _) ->
            Program.set_node prog a (Program.Table (tab, Program.Uniform (Some b)))
          | node -> Program.set_node prog a node
        in
        link prog rest
      | _ -> prog
    in
    (link prog ids, List.hd ids)
