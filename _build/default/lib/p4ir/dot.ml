let escape s = String.concat "\\\"" (String.split_on_char '"' s)

let node_attrs (tab : Table.t) =
  match tab.role with
  | Table.Regular -> "shape=box"
  | Table.Cache _ -> "shape=box style=filled fillcolor=lightblue"
  | Table.Merged _ -> "shape=box style=filled fillcolor=lightyellow"
  | Table.Navigation | Table.Migration -> "shape=box style=dashed"

let program ?reach prog =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph %S {\n  rankdir=TB;\n" (Program.name prog));
  Buffer.add_string buf "  sink [shape=doublecircle label=\"out\"];\n";
  let annotation id =
    match reach with
    | Some f -> (
      match f id with Some p -> Printf.sprintf "\\np=%.2f" p | None -> "")
    | None -> ""
  in
  List.iter
    (fun id ->
      (match Program.find_exn prog id with
       | Program.Table (tab, _) ->
         Buffer.add_string buf
           (Printf.sprintf "  n%d [%s label=\"%s%s\"];\n" id (node_attrs tab)
              (escape tab.Table.name) (annotation id))
       | Program.Cond c ->
         Buffer.add_string buf
           (Printf.sprintf "  n%d [shape=diamond label=\"%s %s%s\"];\n" id
              (escape (Field.to_string c.field))
              (escape (Value.to_hex c.arg))
              (annotation id)));
      List.iter
        (fun (label, nxt) ->
          let target = match nxt with Some d -> Printf.sprintf "n%d" d | None -> "sink" in
          let lbl =
            match label with
            | None -> ""
            | Some Program.Cond_true -> " [label=\"T\"]"
            | Some Program.Cond_false -> " [label=\"F\"]"
            | Some (Program.Action_fired a) -> Printf.sprintf " [label=\"%s\"]" (escape a)
          in
          Buffer.add_string buf (Printf.sprintf "  n%d -> %s%s;\n" id target lbl))
        (Program.out_edges prog id))
    (Program.reachable prog);
  (match Program.root prog with
   | Some r ->
     Buffer.add_string buf "  entry [shape=circle label=\"in\"];\n";
     Buffer.add_string buf (Printf.sprintf "  entry -> n%d;\n" r)
   | None -> ());
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let dependencies prog =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "digraph %S {\n  rankdir=LR;\n  node [shape=box];\n"
       (Program.name prog ^ "_deps"));
  let tabs = List.map snd (Program.tables prog) in
  List.iter
    (fun (t : Table.t) ->
      Buffer.add_string buf (Printf.sprintf "  %S;\n" t.name))
    tabs;
  let rec pairs = function
    | [] -> ()
    | (a : Table.t) :: rest ->
      List.iter
        (fun (b : Table.t) ->
          let deps = Deps.between a b in
          if deps <> [] then begin
            let label =
              String.concat ","
                (List.map
                   (function
                     | Deps.Match_dep -> "match"
                     | Deps.Action_dep -> "action"
                     | Deps.Reverse_dep -> "reverse")
                   deps)
            in
            Buffer.add_string buf (Printf.sprintf "  %S -> %S [label=\"%s\"];\n" a.name b.name label)
          end)
        rest;
      pairs rest
  in
  pairs tabs;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
