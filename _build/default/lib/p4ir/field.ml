type t =
  | Eth_src
  | Eth_dst
  | Eth_type
  | Ipv4_src
  | Ipv4_dst
  | Ipv4_ttl
  | Ipv4_proto
  | Ipv4_dscp
  | Ipv4_len
  | Tcp_sport
  | Tcp_dport
  | Tcp_flags
  | Udp_sport
  | Udp_dport
  | Ingress_port
  | Next_tab_id
  | Meta of int

let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = Stdlib.compare a b
let hash (f : t) = Hashtbl.hash f

let width = function
  | Eth_src | Eth_dst -> 48
  | Eth_type -> 16
  | Ipv4_src | Ipv4_dst -> 32
  | Ipv4_ttl -> 8
  | Ipv4_proto -> 8
  | Ipv4_dscp -> 6
  | Ipv4_len -> 16
  | Tcp_sport | Tcp_dport -> 16
  | Tcp_flags -> 8
  | Udp_sport | Udp_dport -> 16
  | Ingress_port -> 9
  | Next_tab_id -> 16
  | Meta _ -> 32

let max_value f =
  let w = width f in
  if w >= 64 then Int64.minus_one
  else Int64.sub (Int64.shift_left 1L w) 1L

let to_string = function
  | Eth_src -> "eth.src"
  | Eth_dst -> "eth.dst"
  | Eth_type -> "eth.type"
  | Ipv4_src -> "ipv4.src"
  | Ipv4_dst -> "ipv4.dst"
  | Ipv4_ttl -> "ipv4.ttl"
  | Ipv4_proto -> "ipv4.proto"
  | Ipv4_dscp -> "ipv4.dscp"
  | Ipv4_len -> "ipv4.len"
  | Tcp_sport -> "tcp.sport"
  | Tcp_dport -> "tcp.dport"
  | Tcp_flags -> "tcp.flags"
  | Udp_sport -> "udp.sport"
  | Udp_dport -> "udp.dport"
  | Ingress_port -> "std.ingress_port"
  | Next_tab_id -> "meta.next_tab_id"
  | Meta i -> "meta." ^ string_of_int i

let of_string s =
  match s with
  | "eth.src" -> Eth_src
  | "eth.dst" -> Eth_dst
  | "eth.type" -> Eth_type
  | "ipv4.src" -> Ipv4_src
  | "ipv4.dst" -> Ipv4_dst
  | "ipv4.ttl" -> Ipv4_ttl
  | "ipv4.proto" -> Ipv4_proto
  | "ipv4.dscp" -> Ipv4_dscp
  | "ipv4.len" -> Ipv4_len
  | "tcp.sport" -> Tcp_sport
  | "tcp.dport" -> Tcp_dport
  | "tcp.flags" -> Tcp_flags
  | "udp.sport" -> Udp_sport
  | "udp.dport" -> Udp_dport
  | "std.ingress_port" -> Ingress_port
  | "meta.next_tab_id" -> Next_tab_id
  | _ ->
    (match String.index_opt s '.' with
     | Some i when String.sub s 0 i = "meta" ->
       let rest = String.sub s (i + 1) (String.length s - i - 1) in
       (match int_of_string_opt rest with
        | Some n when n >= 0 -> Meta n
        | _ -> invalid_arg ("Field.of_string: " ^ s))
     | _ -> invalid_arg ("Field.of_string: " ^ s))

let pp fmt f = Format.pp_print_string fmt (to_string f)

let all_standard =
  [ Eth_src; Eth_dst; Eth_type; Ipv4_src; Ipv4_dst; Ipv4_ttl; Ipv4_proto;
    Ipv4_dscp; Ipv4_len; Tcp_sport; Tcp_dport; Tcp_flags; Udp_sport;
    Udp_dport; Ingress_port; Next_tab_id ]
