(** Packet header and metadata fields visible to P4 programs.

    The IR uses a closed set of standard L2-L4 header fields plus numbered
    user-metadata slots, which is what the Pipeleon experiments need. Widths
    follow the wire formats (e.g. IPv4 addresses are 32 bits). *)

type t =
  | Eth_src
  | Eth_dst
  | Eth_type
  | Ipv4_src
  | Ipv4_dst
  | Ipv4_ttl
  | Ipv4_proto
  | Ipv4_dscp
  | Ipv4_len
  | Tcp_sport
  | Tcp_dport
  | Tcp_flags
  | Udp_sport
  | Udp_dport
  | Ingress_port
  | Next_tab_id  (** migration metadata for heterogeneous targets (§3.2.4) *)
  | Meta of int  (** user metadata slot; widths are 32 bits *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val width : t -> int
(** Width of the field in bits (1..64). *)

val max_value : t -> int64
(** Largest value representable in [width t] bits. *)

val to_string : t -> string

val of_string : string -> t
(** Inverse of {!to_string}. @raise Invalid_argument on unknown names. *)

val pp : Format.formatter -> t -> unit

val all_standard : t list
(** Every non-[Meta] field, in declaration order. *)
