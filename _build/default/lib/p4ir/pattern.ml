type t =
  | Exact of Value.t
  | Lpm of Value.t * int
  | Ternary of Value.t * Value.t
  | Range of Value.t * Value.t

let kind = function
  | Exact _ -> Match_kind.Exact
  | Lpm _ -> Match_kind.Lpm
  | Ternary _ -> Match_kind.Ternary
  | Range _ -> Match_kind.Range

let wildcard = function
  | Match_kind.Exact -> invalid_arg "Pattern.wildcard: exact has no wildcard"
  | Match_kind.Lpm -> Lpm (0L, 0)
  | Match_kind.Ternary -> Ternary (0L, 0L)
  | Match_kind.Range -> Range (0L, Int64.minus_one)

let is_wildcard = function
  | Exact _ -> false
  | Lpm (_, len) -> len = 0
  | Ternary (_, mask) -> Int64.equal mask 0L
  | Range (lo, hi) -> Int64.equal lo 0L && Int64.equal hi Int64.minus_one

let matches ~width pat v =
  match pat with
  | Exact value -> Int64.equal (Value.truncate ~width v) (Value.truncate ~width value)
  | Lpm (value, prefix_len) ->
    let mask = Value.prefix_mask ~width ~prefix_len in
    Value.matches_mask ~value ~mask v
  | Ternary (value, mask) -> Value.matches_mask ~value ~mask v
  | Range (lo, hi) -> Value.in_range ~lo ~hi v

let popcount v =
  let rec go acc v = if Int64.equal v 0L then acc
    else go (acc + 1) (Int64.logand v (Int64.sub v 1L)) in
  go 0 v

let specificity = function
  | Exact _ -> 64
  | Lpm (_, len) -> len
  | Ternary (_, mask) -> popcount mask
  | Range (lo, hi) -> if Int64.equal lo hi then 64 else 0

let equal (a : t) b = a = b

let pp fmt = function
  | Exact v -> Format.fprintf fmt "%a" Value.pp v
  | Lpm (v, len) -> Format.fprintf fmt "%a/%d" Value.pp v len
  | Ternary (v, m) -> Format.fprintf fmt "%a&&&%a" Value.pp v Value.pp m
  | Range (lo, hi) -> Format.fprintf fmt "%a..%a" Value.pp lo Value.pp hi

let to_string p = Format.asprintf "%a" pp p
