(** Program (de)serialization to the JSON intermediate format.

    The encoding mirrors the structure a P4 compiler emits: a [tables]
    array (with keys, actions, entries, and next-node references), a
    [conditionals] array, and an [init_node] root — enough for Pipeleon's
    source-to-source round trip (§5.1). *)

val program_to_json : Program.t -> Json.t
val program_of_json : Json.t -> Program.t
(** @raise Invalid_argument on malformed input. *)

val to_string : Program.t -> string
val of_string : string -> (Program.t, string) result

val save : string -> Program.t -> unit
(** Write to a file path. *)

val load : string -> Program.t
(** @raise Sys_error / Invalid_argument on failure. *)
