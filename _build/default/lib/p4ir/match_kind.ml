type t = Exact | Lpm | Ternary | Range

let equal (a : t) b = a = b
let compare (a : t) b = Stdlib.compare a b

let to_string = function
  | Exact -> "exact"
  | Lpm -> "lpm"
  | Ternary -> "ternary"
  | Range -> "range"

let of_string = function
  | "exact" -> Exact
  | "lpm" -> Lpm
  | "ternary" -> Ternary
  | "range" -> Range
  | s -> invalid_arg ("Match_kind.of_string: " ^ s)

let pp fmt k = Format.pp_print_string fmt (to_string k)
let all = [ Exact; Lpm; Ternary; Range ]
