type primitive =
  | Set_field of Field.t * Value.t
  | Set_from of Field.t * Field.t
  | Add_const of Field.t * Value.t
  | Dec_ttl
  | Forward of int
  | Drop
  | Nop

type t = { name : string; prims : primitive list }

let make name prims = { name; prims }
let nop name = { name; prims = [] }
let drop_action = { name = "drop"; prims = [ Drop ] }
let num_primitives a = List.length a.prims

let is_dropping a = List.exists (function Drop -> true | _ -> false) a.prims

let reads = function
  | Set_field _ -> []
  | Set_from (_, src) -> [ src ]
  | Add_const (f, _) -> [ f ]
  | Dec_ttl -> [ Field.Ipv4_ttl ]
  | Forward _ | Drop | Nop -> []

let writes = function
  | Set_field (f, _) -> [ f ]
  | Set_from (dst, _) -> [ dst ]
  | Add_const (f, _) -> [ f ]
  | Dec_ttl -> [ Field.Ipv4_ttl ]
  | Forward _ | Drop | Nop -> []

let dedup fields =
  List.sort_uniq Field.compare fields

let reads_of a = dedup (List.concat_map reads a.prims)
let writes_of a = dedup (List.concat_map writes a.prims)

let rename name a = { a with name }

let rec take_until_drop = function
  | [] -> ([], false)
  | Drop :: _ -> ([ Drop ], true)
  | p :: rest ->
    let kept, dropped = take_until_drop rest in
    (p :: kept, dropped)

let concat name a b =
  let a_prims, a_drops = take_until_drop a.prims in
  if a_drops then { name; prims = a_prims }
  else { name; prims = a_prims @ fst (take_until_drop b.prims) }

let equal (a : t) b = a = b

let pp_primitive fmt = function
  | Set_field (f, v) -> Format.fprintf fmt "%a = %a" Field.pp f Value.pp v
  | Set_from (d, s) -> Format.fprintf fmt "%a = %a" Field.pp d Field.pp s
  | Add_const (f, v) -> Format.fprintf fmt "%a += %a" Field.pp f Value.pp v
  | Dec_ttl -> Format.pp_print_string fmt "dec_ttl"
  | Forward p -> Format.fprintf fmt "forward(%d)" p
  | Drop -> Format.pp_print_string fmt "drop"
  | Nop -> Format.pp_print_string fmt "nop"

let pp fmt a =
  Format.fprintf fmt "@[<h>%s {%a}@]" a.name
    (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f "; ") pp_primitive)
    a.prims
