type key = { field : Field.t; kind : Match_kind.t }

type entry = { patterns : Pattern.t list; action : string; priority : int }

type cache_meta = {
  cached_tables : string list;
  capacity : int;
  insert_limit : float;
  auto_insert : bool;
}

type role =
  | Regular
  | Cache of cache_meta
  | Merged of string list
  | Navigation
  | Migration

type t = {
  name : string;
  keys : key list;
  actions : Action.t list;
  default_action : string;
  entries : entry list;
  max_entries : int;
  role : role;
}

let key field kind = { field; kind }

let find_action t name =
  List.find_opt (fun (a : Action.t) -> String.equal a.name name) t.actions

let find_action_exn t name =
  match find_action t name with
  | Some a -> a
  | None -> invalid_arg (Printf.sprintf "Table %s: unknown action %s" t.name name)

let entry ?(priority = 0) patterns action = { patterns; action; priority }

let check_entry t e =
  if List.length e.patterns <> List.length t.keys then
    invalid_arg
      (Printf.sprintf "Table %s: entry has %d patterns for %d keys" t.name
         (List.length e.patterns) (List.length t.keys));
  List.iter2
    (fun k p ->
      (* Exact keys admit only exact patterns; complex keys admit their own
         kind (wildcards included). *)
      let pk = Pattern.kind p in
      if not (Match_kind.equal pk k.kind) then
        invalid_arg
          (Printf.sprintf "Table %s: %s pattern given for %s key on %s" t.name
             (Match_kind.to_string pk) (Match_kind.to_string k.kind)
             (Field.to_string k.field)))
    t.keys e.patterns;
  if find_action t e.action = None then
    invalid_arg (Printf.sprintf "Table %s: entry uses unknown action %s" t.name e.action)

let make ?(entries = []) ?(max_entries = 1024) ?(role = Regular) ~name ~keys
    ~actions ~default_action () =
  let t = { name; keys; actions; default_action; entries = []; max_entries; role } in
  if find_action t default_action = None then
    invalid_arg (Printf.sprintf "Table %s: unknown default action %s" name default_action);
  List.iter (check_entry t) entries;
  { t with entries }

let add_entry t e =
  check_entry t e;
  { t with entries = t.entries @ [ e ] }

let num_entries t = List.length t.entries

let match_kinds t =
  List.sort_uniq Match_kind.compare (List.map (fun k -> k.kind) t.keys)

let effective_kind t =
  let kinds = match_kinds t in
  if List.mem Match_kind.Ternary kinds then Match_kind.Ternary
  else if List.mem Match_kind.Range kinds then Match_kind.Range
  else if List.mem Match_kind.Lpm kinds then Match_kind.Lpm
  else Match_kind.Exact

let distinct_shapes ~shape t =
  let shapes = List.map (fun e -> List.map shape e.patterns) t.entries in
  max 1 (List.length (List.sort_uniq compare shapes))

let distinct_lpm_lengths t =
  distinct_shapes t ~shape:(function
    | Pattern.Lpm (_, len) -> len
    | Pattern.Exact _ -> -1
    | Pattern.Ternary (_, m) -> Int64.to_int (Int64.logand m 0xFFFFL) (* rare mix *)
    | Pattern.Range _ -> -2)

let distinct_ternary_masks t =
  distinct_shapes t ~shape:(function
    | Pattern.Ternary (_, mask) -> mask
    | Pattern.Exact _ -> -1L
    | Pattern.Lpm (_, len) -> Int64.of_int len
    | Pattern.Range _ -> -2L)

let dedup fields = List.sort_uniq Field.compare fields

let reads_of t =
  dedup
    (List.map (fun k -> k.field) t.keys
    @ List.concat_map Action.reads_of t.actions)

let writes_of t = dedup (List.concat_map Action.writes_of t.actions)

let may_drop t =
  let action_drops name =
    match find_action t name with Some a -> Action.is_dropping a | None -> false
  in
  action_drops t.default_action
  || List.exists (fun e -> action_drops e.action) t.entries

let entry_matches t read e =
  List.for_all2
    (fun k p -> Pattern.matches ~width:(Field.width k.field) p (read k.field))
    t.keys e.patterns

let entry_specificity e =
  List.fold_left (fun acc p -> acc + Pattern.specificity p) 0 e.patterns

let lookup t read =
  let candidates = List.filter (entry_matches t read) t.entries in
  match candidates with
  | [] -> None
  | _ ->
    (* Highest priority wins; ties broken by total pattern specificity,
       then by insertion order (stable sort keeps earlier entries first). *)
    let cmp a b =
      match compare b.priority a.priority with
      | 0 -> compare (entry_specificity b) (entry_specificity a)
      | c -> c
    in
    (match List.stable_sort cmp candidates with
     | best :: _ -> Some best
     | [] -> None)

let rename name t = { t with name }

let pp_key fmt k =
  Format.fprintf fmt "%a:%a" Field.pp k.field Match_kind.pp k.kind

let pp fmt t =
  Format.fprintf fmt "@[<v 2>table %s {@ keys = [%a]@ actions = [%a]@ default = %s@ entries = %d@]@ }"
    t.name
    (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f "; ") pp_key)
    t.keys
    (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f "; ")
       (fun f (a : Action.t) -> Format.pp_print_string f a.name))
    t.actions t.default_action (num_entries t)
