(** Graphviz DOT export of programs and table-dependency graphs, for
    inspecting layouts before and after optimization
    ([dot -Tsvg prog.dot]). *)

val program : ?reach:(Program.node_id -> float option) -> Program.t -> string
(** The program DAG: tables as boxes (caches and merged tables shaded,
    navigation/migration dashed), conditionals as diamonds, edge labels
    for branch outcomes and switch-case actions. When [reach] yields a
    probability for a node, its label is annotated with it. *)

val dependencies : Program.t -> string
(** The table dependency graph: an edge A -> B whenever the pair is not
    freely reorderable ({!Deps.independent}), labelled with the
    dependency kinds. *)
