(** Minimal self-contained JSON support (parser and printer).

    Pipeleon consumes and produces the P4 compiler's intermediate [.json]
    files (§5.1); this module gives the IR a compatible interchange format
    without external dependencies. *)

type t =
  | Null
  | Bool of bool
  | Int of int64
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?indent:int -> t -> string
val of_string : string -> (t, string) result
val of_string_exn : string -> t

(** Accessors; all raise [Invalid_argument] with a path message on
    shape mismatches. *)

val member : string -> t -> t
val member_opt : string -> t -> t option
val to_list : t -> t list
val get_string : t -> string
val get_int : t -> int64
val get_float : t -> float
val get_bool : t -> bool
