(** P4 match kinds supported by the IR. *)

type t = Exact | Lpm | Ternary | Range

val equal : t -> t -> bool
val compare : t -> t -> int
val to_string : t -> string
val of_string : string -> t
(** @raise Invalid_argument on unknown names. *)

val pp : Format.formatter -> t -> unit
val all : t list
