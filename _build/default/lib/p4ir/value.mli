(** Fixed-width bit values carried in header fields and match patterns.

    Values are stored as [int64]; all operations treat them as unsigned
    bit vectors of a given width. *)

type t = int64

val truncate : width:int -> t -> t
(** Keep the low [width] bits. *)

val prefix_mask : width:int -> prefix_len:int -> t
(** Mask with the top [prefix_len] of [width] bits set, e.g.
    [prefix_mask ~width:32 ~prefix_len:24 = 0xFFFFFF00L]. *)

val matches_mask : value:t -> mask:t -> t -> bool
(** [matches_mask ~value ~mask v] is [v land mask = value land mask]. *)

val in_range : lo:t -> hi:t -> t -> bool
(** Unsigned inclusive range test. *)

val compare_unsigned : t -> t -> int
val to_hex : t -> string
val pp : Format.formatter -> t -> unit
