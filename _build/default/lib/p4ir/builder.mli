(** Convenience constructors for programs used by examples, tests, and the
    benchmark suites. *)

val exact_key : Field.t -> Table.key
val lpm_key : Field.t -> Table.key
val ternary_key : Field.t -> Table.key
val range_key : Field.t -> Table.key

val set_action : string -> Field.t -> Value.t -> Action.t
(** One-primitive action that assigns a constant. *)

val forward_action : ?extra_prims:int -> string -> Action.t
(** [forward_action ~extra_prims n] forwards to a fixed port and carries
    [extra_prims] additional metadata writes, so [n_a = 1 + extra_prims];
    used to sweep action complexity (Fig. 5b). *)

val acl_table :
  ?max_entries:int -> name:string -> keys:Table.key list -> unit -> Table.t
(** ACL with actions [allow] (no-op) and [deny] (drop); default [allow]. *)

val exact_chain :
  ?actions_per_table:int ->
  ?extra_prims:int ->
  prefix:string ->
  n:int ->
  key_of:(int -> Field.t) ->
  unit ->
  Table.t list
(** [n] exact-match tables named [prefix_i], each keyed on [key_of i]. *)

val cond :
  name:string ->
  field:Field.t ->
  op:Program.cmp ->
  arg:Value.t ->
  on_true:Program.next ->
  on_false:Program.next ->
  Program.node

val chain_into : Program.t -> Table.t list -> exit:Program.next -> Program.t * Program.node_id
(** Add a linear chain of tables ending at [exit]; returns the entry id. *)
