(** Match/action tables: keys, actions, entries, and provenance.

    Tables created by Pipeleon transformations carry a {!role} so the
    runtime can map counters and entry-update APIs back to the original
    program (§2.3) and so monitors can reverse bad optimizations (§3.2). *)

type key = { field : Field.t; kind : Match_kind.t }

type entry = {
  patterns : Pattern.t list;  (** one per key, same order *)
  action : string;  (** name of an action of the table *)
  priority : int;
      (** higher wins among overlapping ternary/range entries. LPM
          matching is longest-prefix-first, as in P4: give LPM entries
          priority 0, or the reference {!lookup} (priority first) and the
          hash-table engines (prefix length first) can disagree. *)
}

type cache_meta = {
  cached_tables : string list;  (** original tables covered by this cache *)
  capacity : int;  (** max entries before LRU eviction *)
  insert_limit : float;  (** max insertions/sec on miss; 0 = no auto-insert *)
  auto_insert : bool;
      (** true for §3.2.2 flow caches; false for merge-fallback caches *)
}

type role =
  | Regular
  | Cache of cache_meta
  | Merged of string list  (** names of the original tables *)
  | Navigation  (** jump on [next_tab_id] when (re-)entering a core *)
  | Migration  (** records [next_tab_id] before switching cores *)

type t = {
  name : string;
  keys : key list;
  actions : Action.t list;
  default_action : string;  (** executed on miss *)
  entries : entry list;
  max_entries : int;  (** provisioned size, for the memory model *)
  role : role;
}

val make :
  ?entries:entry list ->
  ?max_entries:int ->
  ?role:role ->
  name:string ->
  keys:key list ->
  actions:Action.t list ->
  default_action:string ->
  unit ->
  t
(** @raise Invalid_argument if [default_action] or an entry's action is not
    among [actions], or an entry's patterns disagree with [keys]. *)

val key : Field.t -> Match_kind.t -> key
val find_action : t -> string -> Action.t option
val find_action_exn : t -> string -> Action.t

val entry : ?priority:int -> Pattern.t list -> string -> entry

val add_entry : t -> entry -> t
(** Functional insert (validates the entry against the table). *)

val num_entries : t -> int

val match_kinds : t -> Match_kind.t list
(** Deduplicated kinds over the keys. *)

val effective_kind : t -> Match_kind.t
(** The dominant kind for cost purposes: [Ternary] if any key is ternary,
    else [Range] if any range, else [Lpm] if any LPM, else [Exact]. *)

val distinct_lpm_lengths : t -> int
(** Number of distinct (non-trivial) prefix-length combinations across
    entries; the paper's [m] for LPM tables. At least 1. *)

val distinct_ternary_masks : t -> int
(** Number of distinct mask combinations across entries; [m] for ternary
    tables. At least 1. *)

val reads_of : t -> Field.t list
(** Key fields plus fields read by any action. *)

val writes_of : t -> Field.t list
(** Fields written by any action. *)

val may_drop : t -> bool
(** Does any (non-default) entry or the default action drop? *)

val lookup : t -> (Field.t -> Value.t) -> entry option
(** Reference (unoptimized) semantics: the highest-priority entry whose
    patterns all match, ties broken by specificity then entry order.
    [nicsim] implements the same semantics with faster engines. *)

val rename : string -> t -> t
val pp : Format.formatter -> t -> unit
