lib/p4ir/pattern.ml: Format Int64 Match_kind Value
