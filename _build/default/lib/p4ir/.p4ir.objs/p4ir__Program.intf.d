lib/p4ir/program.mli: Field Format Table Value
