lib/p4ir/builder.mli: Action Field Program Table Value
