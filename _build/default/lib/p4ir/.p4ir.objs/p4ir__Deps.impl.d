lib/p4ir/deps.ml: Field List Set Table
