lib/p4ir/program.ml: Action Field Format Hashtbl Int Int64 List Map Option Printf Queue Result String Table Value
