lib/p4ir/field.mli: Format
