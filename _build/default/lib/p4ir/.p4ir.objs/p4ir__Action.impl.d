lib/p4ir/action.ml: Field Format List Value
