lib/p4ir/dot.ml: Buffer Deps Field List Printf Program String Table Value
