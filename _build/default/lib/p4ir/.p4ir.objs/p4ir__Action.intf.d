lib/p4ir/action.mli: Field Format Value
