lib/p4ir/pattern.mli: Format Match_kind Value
