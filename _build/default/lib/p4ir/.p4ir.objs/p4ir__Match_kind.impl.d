lib/p4ir/match_kind.ml: Format Stdlib
