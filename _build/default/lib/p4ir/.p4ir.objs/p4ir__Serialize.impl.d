lib/p4ir/serialize.ml: Action Field Fun Int64 Json List Match_kind Pattern Program Table
