lib/p4ir/json.mli:
