lib/p4ir/table.ml: Action Field Format Int64 List Match_kind Pattern Printf String
