lib/p4ir/serialize.mli: Json Program
