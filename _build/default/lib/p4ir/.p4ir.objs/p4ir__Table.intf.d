lib/p4ir/table.mli: Action Field Format Match_kind Pattern Value
