lib/p4ir/builder.ml: Action Field List Match_kind Printf Program Table
