lib/p4ir/field.ml: Format Hashtbl Int64 Stdlib String
