lib/p4ir/dot.mli: Program
