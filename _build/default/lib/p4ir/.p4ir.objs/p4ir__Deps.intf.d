lib/p4ir/deps.mli: Table
