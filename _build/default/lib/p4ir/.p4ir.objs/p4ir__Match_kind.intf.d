lib/p4ir/match_kind.mli: Format
