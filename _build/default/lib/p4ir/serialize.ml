open Json

let next_to_json : Program.next -> Json.t = function
  | None -> Null
  | Some id -> Int (Int64.of_int id)

let next_of_json : Json.t -> Program.next = function
  | Null -> None
  | j -> Some (Int64.to_int (get_int j))

let prim_to_json : Action.primitive -> Json.t = function
  | Action.Set_field (f, v) ->
    Obj [ ("op", String "set"); ("field", String (Field.to_string f)); ("value", Int v) ]
  | Action.Set_from (d, s) ->
    Obj
      [ ("op", String "copy");
        ("field", String (Field.to_string d));
        ("src", String (Field.to_string s)) ]
  | Action.Add_const (f, v) ->
    Obj [ ("op", String "add"); ("field", String (Field.to_string f)); ("value", Int v) ]
  | Action.Dec_ttl -> Obj [ ("op", String "dec_ttl") ]
  | Action.Forward p -> Obj [ ("op", String "forward"); ("port", Int (Int64.of_int p)) ]
  | Action.Drop -> Obj [ ("op", String "drop") ]
  | Action.Nop -> Obj [ ("op", String "nop") ]

let prim_of_json j : Action.primitive =
  let field () = Field.of_string (get_string (member "field" j)) in
  match get_string (member "op" j) with
  | "set" -> Action.Set_field (field (), get_int (member "value" j))
  | "copy" -> Action.Set_from (field (), Field.of_string (get_string (member "src" j)))
  | "add" -> Action.Add_const (field (), get_int (member "value" j))
  | "dec_ttl" -> Action.Dec_ttl
  | "forward" -> Action.Forward (Int64.to_int (get_int (member "port" j)))
  | "drop" -> Action.Drop
  | "nop" -> Action.Nop
  | op -> invalid_arg ("Serialize: unknown primitive op " ^ op)

let action_to_json (a : Action.t) =
  Obj [ ("name", String a.name); ("primitives", List (List.map prim_to_json a.prims)) ]

let action_of_json j =
  Action.make
    (get_string (member "name" j))
    (List.map prim_of_json (to_list (member "primitives" j)))

let pattern_to_json : Pattern.t -> Json.t = function
  | Pattern.Exact v -> Obj [ ("kind", String "exact"); ("value", Int v) ]
  | Pattern.Lpm (v, len) ->
    Obj [ ("kind", String "lpm"); ("value", Int v); ("prefix_len", Int (Int64.of_int len)) ]
  | Pattern.Ternary (v, m) ->
    Obj [ ("kind", String "ternary"); ("value", Int v); ("mask", Int m) ]
  | Pattern.Range (lo, hi) ->
    Obj [ ("kind", String "range"); ("lo", Int lo); ("hi", Int hi) ]

let pattern_of_json j : Pattern.t =
  match get_string (member "kind" j) with
  | "exact" -> Pattern.Exact (get_int (member "value" j))
  | "lpm" ->
    Pattern.Lpm (get_int (member "value" j), Int64.to_int (get_int (member "prefix_len" j)))
  | "ternary" -> Pattern.Ternary (get_int (member "value" j), get_int (member "mask" j))
  | "range" -> Pattern.Range (get_int (member "lo" j), get_int (member "hi" j))
  | k -> invalid_arg ("Serialize: unknown pattern kind " ^ k)

let entry_to_json (e : Table.entry) =
  Obj
    [ ("patterns", List (List.map pattern_to_json e.patterns));
      ("action", String e.action);
      ("priority", Int (Int64.of_int e.priority)) ]

let entry_of_json j : Table.entry =
  { Table.patterns = List.map pattern_of_json (to_list (member "patterns" j));
    action = get_string (member "action" j);
    priority = Int64.to_int (get_int (member "priority" j)) }

let key_to_json (k : Table.key) =
  Obj
    [ ("field", String (Field.to_string k.field));
      ("match_kind", String (Match_kind.to_string k.kind)) ]

let key_of_json j : Table.key =
  { Table.field = Field.of_string (get_string (member "field" j));
    kind = Match_kind.of_string (get_string (member "match_kind" j)) }

let role_to_json : Table.role -> Json.t = function
  | Table.Regular -> Obj [ ("type", String "regular") ]
  | Table.Cache m ->
    Obj
      [ ("type", String "cache");
        ("cached_tables", List (List.map (fun s -> String s) m.cached_tables));
        ("capacity", Int (Int64.of_int m.capacity));
        ("insert_limit", Float m.insert_limit);
        ("auto_insert", Bool m.auto_insert) ]
  | Table.Merged names ->
    Obj [ ("type", String "merged"); ("of", List (List.map (fun s -> String s) names)) ]
  | Table.Navigation -> Obj [ ("type", String "navigation") ]
  | Table.Migration -> Obj [ ("type", String "migration") ]

let role_of_json j : Table.role =
  match get_string (member "type" j) with
  | "regular" -> Table.Regular
  | "cache" ->
    Table.Cache
      { Table.cached_tables = List.map get_string (to_list (member "cached_tables" j));
        capacity = Int64.to_int (get_int (member "capacity" j));
        insert_limit = get_float (member "insert_limit" j);
        auto_insert = get_bool (member "auto_insert" j) }
  | "merged" -> Table.Merged (List.map get_string (to_list (member "of" j)))
  | "navigation" -> Table.Navigation
  | "migration" -> Table.Migration
  | r -> invalid_arg ("Serialize: unknown table role " ^ r)

let table_next_to_json : Program.table_next -> Json.t = function
  | Program.Uniform nxt -> Obj [ ("type", String "uniform"); ("next", next_to_json nxt) ]
  | Program.Per_action branches ->
    Obj
      [ ("type", String "per_action");
        ("branches",
         List
           (List.map
              (fun (a, nxt) -> Obj [ ("action", String a); ("next", next_to_json nxt) ])
              branches)) ]

let table_next_of_json j : Program.table_next =
  match get_string (member "type" j) with
  | "uniform" -> Program.Uniform (next_of_json (member "next" j))
  | "per_action" ->
    Program.Per_action
      (List.map
         (fun b -> (get_string (member "action" b), next_of_json (member "next" b)))
         (to_list (member "branches" j)))
  | k -> invalid_arg ("Serialize: unknown table_next " ^ k)

let cmp_to_string : Program.cmp -> string = function
  | Program.Eq -> "eq"
  | Program.Neq -> "neq"
  | Program.Lt -> "lt"
  | Program.Gt -> "gt"
  | Program.Le -> "le"
  | Program.Ge -> "ge"

let cmp_of_string = function
  | "eq" -> Program.Eq
  | "neq" -> Program.Neq
  | "lt" -> Program.Lt
  | "gt" -> Program.Gt
  | "le" -> Program.Le
  | "ge" -> Program.Ge
  | s -> invalid_arg ("Serialize: unknown comparison " ^ s)

let node_to_json id (node : Program.node) =
  match node with
  | Program.Table (tab, nxt) ->
    Obj
      [ ("id", Int (Int64.of_int id));
        ("kind", String "table");
        ("name", String tab.Table.name);
        ("keys", List (List.map key_to_json tab.keys));
        ("actions", List (List.map action_to_json tab.actions));
        ("default_action", String tab.default_action);
        ("entries", List (List.map entry_to_json tab.entries));
        ("max_entries", Int (Int64.of_int tab.max_entries));
        ("role", role_to_json tab.role);
        ("next", table_next_to_json nxt) ]
  | Program.Cond c ->
    Obj
      [ ("id", Int (Int64.of_int id));
        ("kind", String "conditional");
        ("name", String c.cond_name);
        ("field", String (Field.to_string c.field));
        ("op", String (cmp_to_string c.op));
        ("arg", Int c.arg);
        ("true_next", next_to_json c.on_true);
        ("false_next", next_to_json c.on_false) ]

let node_of_json j : int * Program.node =
  let id = Int64.to_int (get_int (member "id" j)) in
  let node =
    match get_string (member "kind" j) with
    | "table" ->
      let tab =
        Table.make
          ~name:(get_string (member "name" j))
          ~keys:(List.map key_of_json (to_list (member "keys" j)))
          ~actions:(List.map action_of_json (to_list (member "actions" j)))
          ~default_action:(get_string (member "default_action" j))
          ~entries:(List.map entry_of_json (to_list (member "entries" j)))
          ~max_entries:(Int64.to_int (get_int (member "max_entries" j)))
          ~role:(role_of_json (member "role" j))
          ()
      in
      Program.Table (tab, table_next_of_json (member "next" j))
    | "conditional" ->
      Program.Cond
        { Program.cond_name = get_string (member "name" j);
          field = Field.of_string (get_string (member "field" j));
          op = cmp_of_string (get_string (member "op" j));
          arg = get_int (member "arg" j);
          on_true = next_of_json (member "true_next" j);
          on_false = next_of_json (member "false_next" j) }
    | k -> invalid_arg ("Serialize: unknown node kind " ^ k)
  in
  (id, node)

let program_to_json prog =
  Obj
    [ ("program", String (Program.name prog));
      ("init_node", next_to_json (Program.root prog));
      ("nodes",
       List
         (List.map
            (fun id -> node_to_json id (Program.find_exn prog id))
            (Program.node_ids prog))) ]

let placeholder_cond =
  { Program.cond_name = "__placeholder";
    field = Field.Ipv4_ttl;
    op = Program.Eq;
    arg = 0L;
    on_true = None;
    on_false = None }

let program_of_json j =
  let prog = Program.empty (get_string (member "program" j)) in
  let nodes = List.map node_of_json (to_list (member "nodes" j)) in
  (* Preserve original ids: insert placeholders up to the max id, then
     overwrite. Fresh allocation starts past the max id. *)
  let max_id = List.fold_left (fun acc (id, _) -> max acc id) (-1) nodes in
  let prog = ref prog in
  for _ = 0 to max_id do
    let p, _ = Program.add_node !prog (Program.Cond placeholder_cond) in
    prog := p
  done;
  let prog = List.fold_left (fun p (id, node) -> Program.set_node p id node) !prog nodes in
  (* Remove placeholder ids that were not present in the input. *)
  let present = List.map fst nodes in
  let prog =
    List.fold_left
      (fun p id -> if List.mem id present then p else Program.remove_node p id)
      prog
      (List.init (max_id + 1) Fun.id)
  in
  Program.with_root prog (next_of_json (member "init_node" j))

let to_string prog = Json.to_string ~indent:2 (program_to_json prog)

let of_string s =
  match Json.of_string s with
  | Error e -> Error e
  | Ok j -> (
    match program_of_json j with
    | p -> Ok p
    | exception Invalid_argument msg -> Error msg)

let save path prog =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string prog))

let load path =
  let ic = open_in path in
  let content =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  match of_string content with
  | Ok p -> p
  | Error msg -> invalid_arg ("Serialize.load: " ^ msg)
