(** Actions: named sequences of primitive operations attached to tables.

    The cost model charges [L_act] per primitive (Eq. 4b in the paper),
    so [num_primitives] is the [n_a] parameter. *)

type primitive =
  | Set_field of Field.t * Value.t  (** assign a constant *)
  | Set_from of Field.t * Field.t  (** copy one field into another *)
  | Add_const of Field.t * Value.t  (** wrapping add of a constant *)
  | Dec_ttl  (** saturating decrement of [Ipv4_ttl] *)
  | Forward of int  (** set the egress port *)
  | Drop  (** halt processing and discard the packet *)
  | Nop

type t = { name : string; prims : primitive list }

val make : string -> primitive list -> t
val nop : string -> t
val drop_action : t
(** The conventional ["drop"] action consisting of a single [Drop]. *)

val num_primitives : t -> int
(** [n_a]: 0 for a pure no-op action. *)

val is_dropping : t -> bool
(** Does executing this action unconditionally discard the packet? *)

val reads : primitive -> Field.t list
val writes : primitive -> Field.t list

val reads_of : t -> Field.t list
val writes_of : t -> Field.t list
(** Deduplicated field sets over all primitives. *)

val rename : string -> t -> t

val concat : string -> t -> t -> t
(** [concat name a b] performs [a]'s primitives then [b]'s; used by table
    merging and caching to fuse per-table actions. A [Drop] in [a] makes
    the tail unreachable, so it is truncated there. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val pp_primitive : Format.formatter -> primitive -> unit
