(** Match patterns stored in table entries, one per key field. *)

type t =
  | Exact of Value.t
  | Lpm of Value.t * int  (** value and prefix length *)
  | Ternary of Value.t * Value.t  (** value and mask; mask 0 is wildcard *)
  | Range of Value.t * Value.t  (** inclusive [lo, hi] *)

val kind : t -> Match_kind.t

val wildcard : Match_kind.t -> t
(** The pattern of the given kind that matches every value.
    @raise Invalid_argument for [Exact], which has no wildcard. *)

val is_wildcard : t -> bool

val matches : width:int -> t -> Value.t -> bool
(** Does a concrete field value satisfy the pattern? [width] is the field
    width in bits (needed to expand LPM prefixes into masks). *)

val specificity : t -> int
(** Number of exactly-constrained bits: used to order overlapping entries
    when priorities tie. Exact counts as 64. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
