type config = {
  num_stages : int;
  tables_per_stage : int;
  memory_per_stage : int;
}

let tofino_like = { num_stages = 12; tables_per_stage = 16; memory_per_stage = 3 * 512 * 1024 }

type placement = { stage_of : (string * int) list; stages_used : int }

type result = Fits of placement | Does_not_fit of string

(* A table depends on an earlier table when they are not reorderable;
   control-flow order also pins conditional-guarded tables: we use the
   program's topological order as "earlier". *)
let pack ?(config = tofino_like) target prog =
  let tables = P4ir.Program.tables prog in
  let stage_mem = Array.make config.num_stages 0 in
  let stage_count = Array.make config.num_stages 0 in
  let placed : (string * int) list ref = ref [] in
  let rec place acc = function
    | [] -> Fits { stage_of = List.rev acc; stages_used = 1 + List.fold_left (fun m (_, s) -> max m s) 0 acc }
    | (_, (tab : P4ir.Table.t)) :: rest ->
      (* Earliest stage strictly after every placed table this one
         depends on. *)
      let min_stage =
        List.fold_left
          (fun acc (name, stage) ->
            let earlier =
              List.find_opt
                (fun (_, (t : P4ir.Table.t)) -> String.equal t.name name)
                tables
            in
            match earlier with
            | Some (_, earlier_tab) when not (P4ir.Deps.independent earlier_tab tab) ->
              max acc (stage + 1)
            | _ -> acc)
          0 !placed
      in
      let mem = Resource.table_memory target tab in
      let rec try_stage s =
        if s >= config.num_stages then
          Does_not_fit
            (Printf.sprintf "table %s does not fit (needs stage >= %d)" tab.name min_stage)
        else if
          stage_count.(s) < config.tables_per_stage
          && stage_mem.(s) + mem <= config.memory_per_stage
        then begin
          stage_mem.(s) <- stage_mem.(s) + mem;
          stage_count.(s) <- stage_count.(s) + 1;
          placed := (tab.name, s) :: !placed;
          place ((tab.name, s) :: acc) rest
        end
        else try_stage (s + 1)
      in
      try_stage min_stage
  in
  place [] tables

let throughput_gbps ?config target prog =
  match pack ?config target prog with
  | Fits _ -> Some target.Target.line_rate_gbps
  | Does_not_fit _ -> None

let dependency_diameter prog =
  let tables = P4ir.Program.tables prog in
  (* Longest dependent chain over the topological table order. *)
  let arr = Array.of_list (List.map snd tables) in
  let n = Array.length arr in
  let depth = Array.make n 1 in
  for i = 0 to n - 1 do
    for j = 0 to i - 1 do
      if not (P4ir.Deps.independent arr.(j) arr.(i)) then
        depth.(i) <- max depth.(i) (depth.(j) + 1)
    done
  done;
  Array.fold_left max 0 depth
