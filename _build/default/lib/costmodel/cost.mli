(** The approximate P4 performance model (Eq. 1-4 of the paper).

    Expected program latency is the per-path latency weighted by path
    probability. Because every packet follows exactly one root-to-sink
    path, this equals the node-local sum
    [L(G) = l_fixed + sum_v P(reach v) * L(v)], which we compute in one
    topological pass; {!expected_latency_via_paths} is the direct Eq. 1
    evaluation used to cross-check the fast path. *)

type core = Asic | Cpu

type placement = P4ir.Program.node_id -> core
(** Which core class executes each node (heterogeneous targets, §3.2.4). *)

val all_asic : placement

val action_cost : Target.t -> Profile.t -> P4ir.Table.t -> float
(** Eq. 4b: expected action-execution cost for one packet at the table. *)

val node_cost :
  ?placement:placement -> Target.t -> Profile.t -> P4ir.Program.t ->
  P4ir.Program.node_id -> float
(** Eq. 3: match cost plus expected action cost (tables) or branch cost
    (conditionals), scaled by [cpu_slowdown] for CPU-placed nodes. *)

val reach_probs : Profile.t -> P4ir.Program.t -> (P4ir.Program.node_id * float) list
(** Probability that a packet reaches each node. Dropped packets leave
    the graph at the node that dropped them (run-to-completion, §3.2.1). *)

val edge_probs :
  Profile.t -> P4ir.Program.t ->
  ((P4ir.Program.node_id * P4ir.Program.next) * float) list
(** Traversal probability of every edge (including edges to the sink). *)

val expected_latency :
  ?placement:placement ->
  ?per_node_overhead:float ->
  Target.t -> Profile.t -> P4ir.Program.t -> float
(** Eq. 1 via the node-sum; [per_node_overhead] adds a constant per
    visited node (profiling counters, §5.4.1). Includes [l_fixed] and,
    under a heterogeneous placement, [migration_latency] for every
    probability-weighted ASIC<->CPU edge crossing. *)

val expected_latency_via_paths :
  ?placement:placement -> Target.t -> Profile.t -> P4ir.Program.t -> float
(** Direct Eq. 1/2 evaluation by path enumeration (exponential; tests and
    small programs only). *)

val path_probability : Profile.t -> P4ir.Program.t -> P4ir.Program.path -> float
val path_latency :
  ?placement:placement -> Target.t -> Profile.t -> P4ir.Program.t ->
  P4ir.Program.path -> float
(** Eq. 2b plus migration costs along the path; excludes [l_fixed]. *)

val expected_throughput_gbps :
  ?placement:placement -> Target.t -> Profile.t -> P4ir.Program.t -> float
(** Convenience: {!expected_latency} pushed through {!Target.throughput_gbps}. *)
