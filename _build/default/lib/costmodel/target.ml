type match_model =
  | Shape_scaled of { lpm_factor : float; ternary_factor : float }
  | Fixed_cost of { lpm_m : float; ternary_m : float }

type t = {
  target_name : string;
  l_mat : float;
  l_act : float;
  l_cond : float;
  l_fixed : float;
  match_model : match_model;
  migration_latency : float;
  cpu_slowdown : float;
  num_cores : int;
  line_rate_gbps : float;
  capacity : float;
  counter_update_cost : float;
}

let bluefield2 =
  { target_name = "bluefield2";
    l_mat = 1.0;
    l_act = 0.125;
    l_cond = 0.05;
    l_fixed = 10.0;
    match_model = Shape_scaled { lpm_factor = 1.0; ternary_factor = 1.0 };
    migration_latency = 8.0;
    cpu_slowdown = 4.0;
    num_cores = 8;
    line_rate_gbps = 100.0;
    capacity = 275.0;
    counter_update_cost = 0.012 }

let agilio_cx =
  { target_name = "agilio_cx";
    l_mat = 2.0;
    l_act = 0.4;
    l_cond = 0.1;
    l_fixed = 16.0;
    match_model = Shape_scaled { lpm_factor = 1.0; ternary_factor = 1.0 };
    migration_latency = 12.0;
    cpu_slowdown = 1.0;
    num_cores = 54;
    line_rate_gbps = 40.0;
    capacity = 30.0;
    counter_update_cost = 0.35 }

let emulated_nic =
  { target_name = "emulated_nic";
    l_mat = 1.0;
    l_act = 0.1;
    l_cond = 0.1;  (* 1/10 the cost of an exact table *)
    l_fixed = 5.0;
    match_model = Fixed_cost { lpm_m = 3.0; ternary_m = 3.0 };
    migration_latency = 10.0;
    cpu_slowdown = 5.0;
    num_cores = 4;
    line_rate_gbps = 100.0;
    capacity = 600.0;
    counter_update_cost = 0.02 }

let m_of_table t (tab : P4ir.Table.t) =
  match P4ir.Table.effective_kind tab with
  | P4ir.Match_kind.Exact -> 1.0
  | P4ir.Match_kind.Lpm -> (
    match t.match_model with
    | Fixed_cost { lpm_m; _ } -> lpm_m
    | Shape_scaled { lpm_factor; _ } ->
      1.0 +. (lpm_factor *. float_of_int (P4ir.Table.distinct_lpm_lengths tab - 1)))
  | P4ir.Match_kind.Ternary | P4ir.Match_kind.Range -> (
    match t.match_model with
    | Fixed_cost { ternary_m; _ } -> ternary_m
    | Shape_scaled { ternary_factor; _ } ->
      1.0 +. (ternary_factor *. float_of_int (P4ir.Table.distinct_ternary_masks tab - 1)))

let table_match_cost t tab = m_of_table t tab *. t.l_mat

let throughput_gbps t ~latency =
  if latency <= 0. then invalid_arg "Target.throughput_gbps: latency must be positive";
  Float.min t.line_rate_gbps (float_of_int t.num_cores *. t.capacity /. latency)

let latency_for_line_rate t =
  float_of_int t.num_cores *. t.capacity /. t.line_rate_gbps

let pp fmt t =
  Format.fprintf fmt
    "target %s: l_mat=%.3f l_act=%.3f l_cond=%.3f cores=%d line=%.0fGbps" t.target_name
    t.l_mat t.l_act t.l_cond t.num_cores t.line_rate_gbps
