(** Queueing refinement of the run-to-completion latency model.

    {!Target.throughput_gbps} gives the saturation throughput from mean
    service time; below saturation, packets also wait for a free core.
    This module adds an M/M/c view: [c = num_cores] servers with service
    rate derived from the expected per-packet latency, giving wait-time
    inflation as offered load approaches capacity — useful for latency
    SLO questions the saturation model cannot answer. *)

val erlang_c : c:int -> rho:float -> float
(** Probability an arrival waits (Erlang-C) for [c] servers at total
    utilization [rho] in [0, 1). @raise Invalid_argument outside range. *)

val expected_sojourn :
  Target.t -> service_latency:float -> offered_gbps:float -> float option
(** Mean total latency (service + queueing, in latency units) for packets
    arriving at [offered_gbps] when each costs [service_latency] to
    serve. [None] when offered load meets or exceeds capacity. *)

val latency_vs_load :
  Target.t -> service_latency:float -> loads:float list -> (float * float option) list
(** [(offered_gbps, sojourn)] points for a load sweep. *)
