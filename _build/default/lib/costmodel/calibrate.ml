type sample = { x : float; latency : float }

type fit = { slope : float; intercept : float; r2 : float }

let fit_linear samples =
  let points = List.map (fun s -> (s.x, s.latency)) samples in
  let slope, intercept = Stdx.Stats.linear_regression points in
  let r2 = Stdx.Stats.r_squared points ~slope ~intercept in
  { slope; intercept; r2 }

type calibrated = {
  l_mat_fit : fit;
  l_act_fit : fit;
  m_lpm : float;
  m_ternary : float;
}

let calibrate ~exact_sweep ~action_sweep ~lpm_sweep ~ternary_sweep =
  let l_mat_fit = fit_linear exact_sweep in
  let l_act_fit = fit_linear action_sweep in
  (* The complex-match sweeps vary the number of LPM/ternary tables, so
     their per-table slope is m * L_mat + L_action-part; normalizing by
     the exact sweep's per-table slope yields m (§3.1: "estimate m by
     normalizing the observed performance using exact tables as the
     baseline"). *)
  let m_of sweep =
    let f = fit_linear sweep in
    if l_mat_fit.slope <= 0. then 1. else Float.max 1. (f.slope /. l_mat_fit.slope)
  in
  { l_mat_fit; l_act_fit; m_lpm = m_of lpm_sweep; m_ternary = m_of ternary_sweep }

let apply c (base : Target.t) =
  { base with
    Target.l_mat = c.l_mat_fit.slope;
    l_act = (if c.l_act_fit.slope > 0. then c.l_act_fit.slope else base.Target.l_act);
    l_fixed = Float.max 0. c.l_mat_fit.intercept;
    match_model =
      Target.Fixed_cost { lpm_m = c.m_lpm; ternary_m = c.m_ternary } }

let predict_latency c ~num_tables ~prims_per_table =
  Float.max 0. c.l_mat_fit.intercept
  +. (float_of_int num_tables
      *. (c.l_mat_fit.slope +. (prims_per_table *. c.l_act_fit.slope)))
