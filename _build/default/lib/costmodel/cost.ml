type core = Asic | Cpu

type placement = P4ir.Program.node_id -> core

let all_asic : placement = fun _ -> Asic

let action_cost (target : Target.t) prof (tab : P4ir.Table.t) =
  List.fold_left
    (fun acc (a : P4ir.Action.t) ->
      let p = Profile.action_prob prof ~table:tab ~action:a.name in
      acc +. (p *. float_of_int (P4ir.Action.num_primitives a) *. target.l_act))
    0. tab.actions

let core_factor (target : Target.t) = function
  | Asic -> 1.0
  | Cpu -> target.cpu_slowdown

let node_cost ?(placement = all_asic) (target : Target.t) prof prog id =
  let base =
    match P4ir.Program.find_exn prog id with
    | P4ir.Program.Table (tab, _) ->
      Target.table_match_cost target tab +. action_cost target prof tab
    | P4ir.Program.Cond _ -> target.l_cond
  in
  base *. core_factor target (placement id)

(* Probability that each outgoing edge of [id] is traversed, given the
   packet reached [id] with probability 1. Dropping actions emit no edge. *)
let local_out_probs prof prog id =
  match P4ir.Program.find_exn prog id with
  | P4ir.Program.Cond c ->
    let p = Profile.true_prob prof ~cond_name:c.cond_name in
    [ (c.on_true, p); (c.on_false, 1. -. p) ]
  | P4ir.Program.Table (tab, nxt) ->
    let surviving_prob_of a =
      if P4ir.Action.is_dropping a then 0.
      else Profile.action_prob prof ~table:tab ~action:a.P4ir.Action.name
    in
    (match nxt with
     | P4ir.Program.Uniform next ->
       let keep =
         List.fold_left (fun acc a -> acc +. surviving_prob_of a) 0. tab.actions
       in
       [ (next, keep) ]
     | P4ir.Program.Per_action branches ->
       List.map
         (fun (aname, next) ->
           let a = P4ir.Table.find_action_exn tab aname in
           (next, surviving_prob_of a))
         branches)

let reach_probs prof prog =
  let order = P4ir.Program.topological_order prog in
  let probs = Hashtbl.create 16 in
  (match P4ir.Program.root prog with
   | Some r -> Hashtbl.replace probs r 1.0
   | None -> ());
  List.iter
    (fun id ->
      let p = match Hashtbl.find_opt probs id with Some p -> p | None -> 0. in
      if p > 0. then
        List.iter
          (fun (next, q) ->
            match next with
            | Some dst ->
              let cur = match Hashtbl.find_opt probs dst with Some c -> c | None -> 0. in
              Hashtbl.replace probs dst (cur +. (p *. q))
            | None -> ())
          (local_out_probs prof prog id))
    order;
  List.map
    (fun id -> (id, match Hashtbl.find_opt probs id with Some p -> p | None -> 0.))
    order

let edge_probs prof prog =
  let reach = reach_probs prof prog in
  List.concat_map
    (fun (id, p) ->
      List.map (fun (next, q) -> ((id, next), p *. q)) (local_out_probs prof prog id))
    reach

let migration_cost ~placement (target : Target.t) prof prog =
  let edges = edge_probs prof prog in
  let crossing =
    List.fold_left
      (fun acc ((src, next), p) ->
        let src_core = placement src in
        let crossing =
          match next with
          | Some dst -> placement dst <> src_core
          | None -> src_core = Cpu (* back to the wire via the ASIC side *)
        in
        if crossing then acc +. p else acc)
      0. edges
  in
  let entry =
    match P4ir.Program.root prog with
    | Some r when placement r = Cpu -> 1.0
    | _ -> 0.
  in
  (crossing +. entry) *. target.migration_latency

let expected_latency ?(placement = all_asic) ?(per_node_overhead = 0.)
    (target : Target.t) prof prog =
  let reach = reach_probs prof prog in
  let node_sum =
    List.fold_left
      (fun acc (id, p) ->
        acc +. (p *. (node_cost ~placement target prof prog id +. per_node_overhead)))
      0. reach
  in
  target.l_fixed +. node_sum +. migration_cost ~placement target prof prog

let path_probability prof prog (path : P4ir.Program.path) =
  (* Eq. 2a: multiply the probability of the edge leaving each node on
     the path ([path_labels.(i)] labels the edge leaving [path_nodes.(i)]). *)
  List.fold_left2
    (fun acc src label ->
      let edge_p =
        match (label, P4ir.Program.find_exn prog src) with
        | Some (P4ir.Program.Action_fired a), P4ir.Program.Table (tab, _) ->
          if P4ir.Action.is_dropping (P4ir.Table.find_action_exn tab a) then 0.
          else Profile.action_prob prof ~table:tab ~action:a
        | Some P4ir.Program.Cond_true, P4ir.Program.Cond c ->
          Profile.true_prob prof ~cond_name:c.cond_name
        | Some P4ir.Program.Cond_false, P4ir.Program.Cond c ->
          1. -. Profile.true_prob prof ~cond_name:c.cond_name
        | None, P4ir.Program.Table (tab, _) ->
          (* Uniform-next table: the survivor mass continues. *)
          1. -. Profile.drop_prob prof tab
        | _ -> 0.
      in
      acc *. edge_p)
    1.0 path.path_nodes path.path_labels

let path_latency ?(placement = all_asic) (target : Target.t) prof prog
    (path : P4ir.Program.path) =
  let node_sum =
    List.fold_left
      (fun acc id -> acc +. node_cost ~placement target prof prog id)
      0. path.path_nodes
  in
  let rec migrations acc = function
    | a :: (b :: _ as rest) ->
      migrations (if placement a <> placement b then acc +. 1. else acc) rest
    | [ last ] -> if placement last = Cpu then acc +. 1. else acc
    | [] -> acc
  in
  let entry =
    match path.path_nodes with first :: _ when placement first = Cpu -> 1. | _ -> 0.
  in
  node_sum +. ((migrations entry path.path_nodes) *. target.migration_latency)

let expected_latency_via_paths ?(placement = all_asic) target prof prog =
  (* Eq. 1, but enumerate_paths only yields sink-terminated paths while
     dropped packets leave the graph early. We therefore expand each
     sink path into its drop-truncated prefixes with their own masses. *)
  let rec walk id_opt mass acc_latency total =
    match id_opt with
    | None -> total +. (mass *. acc_latency)
    | Some id ->
      let cost = node_cost ~placement target prof prog id in
      let acc_latency = acc_latency +. cost in
      let outs = local_out_probs prof prog id in
      let out_mass = List.fold_left (fun a (_, q) -> a +. q) 0. outs in
      let dropped = Float.max 0. (1. -. out_mass) in
      let total = total +. (mass *. dropped *. acc_latency) in
      List.fold_left
        (fun total (next, q) ->
          if q <= 0. then total
          else
            let extra =
              match next with
              | Some dst when placement dst <> placement id -> target.migration_latency
              | None when placement id = Cpu -> target.migration_latency
              | _ -> 0.
            in
            walk next (mass *. q) (acc_latency +. extra) total)
        total outs
  in
  let entry_cost =
    match P4ir.Program.root prog with
    | Some r when placement r = Cpu -> target.migration_latency
    | _ -> 0.
  in
  target.l_fixed +. entry_cost +. walk (P4ir.Program.root prog) 1.0 0. 0.

let expected_throughput_gbps ?placement target prof prog =
  let latency = expected_latency ?placement target prof prog in
  Target.throughput_gbps target ~latency
