(** A classic RMT switch-pipeline model, for contrast with the multicore
    SmartNIC model (§1-2 of the paper: on a switch ASIC, once the packed
    program fits the stages, processing is line rate regardless of
    traffic; on a SmartNIC it is not).

    Tables are packed greedily into stages: a table goes into the
    earliest stage after every table it depends on, subject to per-stage
    memory and table-count limits — the first-order resource concern of
    switch compilers (Lyra, Cetus, P5 [27, 36, 17]). *)

type config = {
  num_stages : int;
  tables_per_stage : int;
  memory_per_stage : int;  (** bytes *)
}

val tofino_like : config
(** 12 stages, 16 tables and 1.5 MiB per stage. *)

type placement = {
  stage_of : (string * int) list;  (** table name -> stage *)
  stages_used : int;
}

type result = Fits of placement | Does_not_fit of string

val pack : ?config:config -> Target.t -> P4ir.Program.t -> result
(** Greedy dependency-respecting stage assignment. *)

val throughput_gbps : ?config:config -> Target.t -> P4ir.Program.t -> float option
(** Line rate when the program fits, [None] otherwise — the "performance
    for free once packed" contract of pipelined ASICs. *)

val dependency_diameter : P4ir.Program.t -> int
(** Longest chain of dependent tables (Cetus's diameter metric): a lower
    bound on the stages any placement needs. *)
