(** Cost-model calibration from benchmark measurements (§3.1 methodology).

    The paper fits [L_mat] and [L_act] by linear regression over measured
    reciprocal-throughput of benchmark programs swept along one dimension
    (number of exact tables, number of action primitives), then estimates
    the per-match-kind [m] by normalizing LPM/ternary measurements
    against the exact-match baseline. *)

type sample = { x : float; latency : float }
(** One benchmark point: the swept dimension value and the measured
    average latency (reciprocal of max throughput). *)

type fit = { slope : float; intercept : float; r2 : float }

val fit_linear : sample list -> fit
(** @raise Invalid_argument with fewer than two samples. *)

type calibrated = {
  l_mat_fit : fit;  (** slope = L_mat *)
  l_act_fit : fit;  (** slope = L_act *)
  m_lpm : float;  (** estimated memory accesses per LPM match *)
  m_ternary : float;
}

val calibrate :
  exact_sweep:sample list ->
  action_sweep:sample list ->
  lpm_sweep:sample list ->
  ternary_sweep:sample list ->
  calibrated
(** [exact_sweep]: latency vs number of exact tables; [action_sweep]:
    latency vs primitives per action at fixed table count; [lpm_sweep] /
    [ternary_sweep]: latency vs number of LPM/ternary tables. [m] is the
    per-table slope of the complex sweep divided by the exact slope. *)

val apply : calibrated -> Target.t -> Target.t
(** Build a target whose parameters come from the fits (keeping the
    original's throughput capacity and core counts). *)

val predict_latency : calibrated -> num_tables:int -> prims_per_table:float -> float
(** Predicted latency of a straight-line exact-match program; used to
    validate the model against fresh measurements (Fig. 5). *)
