let action_data_bytes = 8

let pattern_bytes (k : P4ir.Table.key) =
  let field_bytes = (P4ir.Field.width k.field + 7) / 8 in
  match k.kind with
  | P4ir.Match_kind.Exact -> field_bytes
  | P4ir.Match_kind.Lpm -> field_bytes + 1
  | P4ir.Match_kind.Ternary | P4ir.Match_kind.Range -> 2 * field_bytes

let entry_bytes (tab : P4ir.Table.t) =
  List.fold_left (fun acc k -> acc + pattern_bytes k) action_data_bytes tab.keys

let table_memory target (tab : P4ir.Table.t) =
  let entries =
    match tab.role with
    | P4ir.Table.Cache meta -> meta.capacity
    | _ -> max (P4ir.Table.num_entries tab) 1
  in
  let m = Target.m_of_table target tab in
  int_of_float (ceil (float_of_int (entries * entry_bytes tab) *. m))

let table_update_rate prof (tab : P4ir.Table.t) =
  let base = Profile.update_rate prof ~table_name:tab.name in
  match tab.role with
  | P4ir.Table.Cache meta when meta.auto_insert -> base +. meta.insert_limit
  | _ -> base

let program_memory target prog =
  List.fold_left
    (fun acc (_, tab) -> acc + table_memory target tab)
    0
    (P4ir.Program.tables prog)

let program_update_rate prof prog =
  List.fold_left
    (fun acc (_, tab) -> acc +. table_update_rate prof tab)
    0.
    (P4ir.Program.tables prog)

type budget = { memory_bytes : int; updates_per_sec : float }

let within b ~memory ~updates = memory <= b.memory_bytes && updates <= b.updates_per_sec

let default_budget = { memory_bytes = 16 * 1024 * 1024; updates_per_sec = 10_000. }
