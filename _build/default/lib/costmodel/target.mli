(** SmartNIC target parameterizations for the approximate cost model
    (§3.1) and the simulator.

    The model is target-independent; a target is just a vector of
    constants: the latency of one memory access [l_mat], of one action
    primitive [l_act], of evaluating a conditional [l_cond], plus
    migration cost and capacity for throughput conversion. Latencies are
    in abstract "latency units"; only ratios matter (the paper's model
    also predicts relative performance, §3.1). *)

type match_model =
  | Shape_scaled of { lpm_factor : float; ternary_factor : float }
      (** [m] grows with the number of distinct prefix lengths / masks in
          the table's entries (how BlueField2/Agilio behave in §3.1) *)
  | Fixed_cost of { lpm_m : float; ternary_m : float }
      (** [m] is a constant per match kind (the §5.3.3 emulated NIC: LPM
          and ternary cost 3x exact) *)

type t = {
  target_name : string;
  l_mat : float;  (** cost of one memory access / exact match *)
  l_act : float;  (** cost of one action primitive *)
  l_cond : float;  (** cost of a conditional branch *)
  l_fixed : float;
      (** per-packet fixed pipeline overhead (parse/deparse, DMA); the
          regression intercept [B1] in §3.1 *)
  match_model : match_model;
  migration_latency : float;  (** one ASIC<->CPU packet migration (§3.2.4) *)
  cpu_slowdown : float;  (** CPU-core cost multiplier vs ASIC cores *)
  num_cores : int;  (** parallel run-to-completion cores *)
  line_rate_gbps : float;
  capacity : float;
      (** Gbps x latency-units one core sustains: throughput of a program
          with expected latency L is [min line_rate (num_cores * capacity / L)] *)
  counter_update_cost : float;  (** latency units per per-packet counter bump *)
}

val bluefield2 : t
(** BlueField2-like: ASIC MA cores; memory accesses dominate; cheap
    counters (§5.4.1 found BF2 counters nearly free; 100 Gbps line). *)

val agilio_cx : t
(** Agilio CX-like: CPU micro-engines; slower memory, 40 Gbps line rate,
    visible counter cost. *)

val emulated_nic : t
(** The §5.3.3 emulator model: LPM and ternary cost 3x an exact match and
    conditionals cost 1/10 of an exact table. *)

val m_of_table : t -> P4ir.Table.t -> float
(** The paper's [m]: memory accesses for one key match. Exact = 1; LPM and
    ternary grow per [match_model]; range is treated like ternary. *)

val table_match_cost : t -> P4ir.Table.t -> float
(** [m * l_mat]. *)

val throughput_gbps : t -> latency:float -> float
(** Convert expected per-packet latency to offered throughput, capped at
    line rate. @raise Invalid_argument if [latency <= 0]. *)

val latency_for_line_rate : t -> float
(** The largest expected latency that still sustains line rate. *)

val pp : Format.formatter -> t -> unit
