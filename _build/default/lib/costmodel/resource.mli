(** Resource accounting for the optimization constraints (Eq. 5).

    Memory [M(v)] approximates a table's footprint as total entry bytes,
    multiplied by the same [m] as in Eq. 4a for LPM/ternary tables (they
    are implemented as multiple hash tables). [E(v)] is the table's entry
    update rate from the profile. *)

val entry_bytes : P4ir.Table.t -> int
(** Bytes of one entry: key widths rounded up to bytes (doubled for
    ternary value+mask, range lo+hi) plus a fixed action-data overhead. *)

val table_memory : Target.t -> P4ir.Table.t -> int
(** [M(v)] in bytes, based on provisioned [max_entries] for caches (their
    budget is reserved) and current entries otherwise. *)

val table_update_rate : Profile.t -> P4ir.Table.t -> float
(** [E(v)]: profiled update rate; caches add their expected miss-driven
    insertion rate (bounded by [insert_limit]). *)

val program_memory : Target.t -> P4ir.Program.t -> int
val program_update_rate : Profile.t -> P4ir.Program.t -> float

type budget = { memory_bytes : int; updates_per_sec : float }

val within : budget -> memory:int -> updates:float -> bool

val default_budget : budget
(** 16 MiB of table memory and 10k updates/sec. *)
