let erlang_c ~c ~rho =
  if c <= 0 then invalid_arg "Queueing.erlang_c: c must be positive";
  if rho < 0. || rho >= 1. then invalid_arg "Queueing.erlang_c: rho in [0,1)";
  let a = rho *. float_of_int c in
  (* Sum a^k/k! computed incrementally to avoid overflow. *)
  let term = ref 1.0 in
  let sum = ref 1.0 in
  for k = 1 to c - 1 do
    term := !term *. a /. float_of_int k;
    sum := !sum +. !term
  done;
  let tail = !term *. a /. float_of_int c /. (1. -. rho) in
  tail /. (!sum +. tail)

let expected_sojourn (target : Target.t) ~service_latency ~offered_gbps =
  if service_latency <= 0. then invalid_arg "Queueing.expected_sojourn: bad service latency";
  let capacity = Target.throughput_gbps target ~latency:service_latency in
  if offered_gbps <= 0. then Some service_latency
  else if offered_gbps >= capacity then None
  else begin
    let c = target.Target.num_cores in
    (* Utilization relative to the aggregate service capacity, ignoring
       the line-rate cap (queueing happens at the cores). *)
    let core_capacity = float_of_int c *. target.Target.capacity /. service_latency in
    let rho = offered_gbps /. core_capacity in
    if rho >= 1. then None
    else begin
      let p_wait = erlang_c ~c ~rho in
      let wait = p_wait *. service_latency /. (float_of_int c *. (1. -. rho)) in
      Some (service_latency +. wait)
    end
  end

let latency_vs_load target ~service_latency ~loads =
  List.map (fun g -> (g, expected_sojourn target ~service_latency ~offered_gbps:g)) loads
