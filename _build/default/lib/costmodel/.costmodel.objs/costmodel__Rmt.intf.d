lib/costmodel/rmt.mli: P4ir Target
