lib/costmodel/rmt.ml: Array List P4ir Printf Resource String Target
