lib/costmodel/cost.mli: P4ir Profile Target
