lib/costmodel/queueing.ml: List Target
