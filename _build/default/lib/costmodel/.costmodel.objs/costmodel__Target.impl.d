lib/costmodel/target.ml: Float Format P4ir
