lib/costmodel/calibrate.mli: Target
