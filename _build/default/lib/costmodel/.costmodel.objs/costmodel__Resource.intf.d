lib/costmodel/resource.mli: P4ir Profile Target
