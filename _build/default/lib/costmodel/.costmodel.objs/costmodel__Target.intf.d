lib/costmodel/target.mli: Format P4ir
