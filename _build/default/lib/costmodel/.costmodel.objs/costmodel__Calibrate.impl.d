lib/costmodel/calibrate.ml: Float List Stdx Target
