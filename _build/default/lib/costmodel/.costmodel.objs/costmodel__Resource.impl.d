lib/costmodel/resource.ml: List P4ir Profile Target
