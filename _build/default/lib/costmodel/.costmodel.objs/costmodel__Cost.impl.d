lib/costmodel/cost.ml: Float Hashtbl List P4ir Profile Target
