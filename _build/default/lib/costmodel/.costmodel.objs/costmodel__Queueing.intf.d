lib/costmodel/queueing.mli: Target
