let next_tab_ids prog =
  List.mapi
    (fun i id -> (id, Int64.of_int (i + 1)))
    (P4ir.Program.topological_order prog)

let crossing_edges prog ~placement =
  List.concat_map
    (fun id ->
      List.filter_map
        (fun (label, nxt) ->
          match nxt with
          | Some dst when placement dst <> placement id -> Some (id, label, dst)
          | _ -> None)
        (P4ir.Program.out_edges prog id))
    (P4ir.Program.reachable prog)

let crossings prog ~placement = List.length (crossing_edges prog ~placement)

(* Rewrite one labelled out-edge of [src] to point at [target]. *)
let rewire_edge prog src label target =
  match P4ir.Program.find_exn prog src with
  | P4ir.Program.Table (tab, P4ir.Program.Uniform _) when label = None ->
    P4ir.Program.set_node prog src (P4ir.Program.Table (tab, P4ir.Program.Uniform target))
  | P4ir.Program.Table (tab, P4ir.Program.Per_action branches) -> (
    match label with
    | Some (P4ir.Program.Action_fired a) ->
      let branches =
        List.map (fun (name, nxt) -> if String.equal name a then (name, target) else (name, nxt)) branches
      in
      P4ir.Program.set_node prog src (P4ir.Program.Table (tab, P4ir.Program.Per_action branches))
    | _ -> invalid_arg "Hetero.rewire_edge: label does not match node")
  | P4ir.Program.Cond c -> (
    match label with
    | Some P4ir.Program.Cond_true ->
      P4ir.Program.set_node prog src (P4ir.Program.Cond { c with on_true = target })
    | Some P4ir.Program.Cond_false ->
      P4ir.Program.set_node prog src (P4ir.Program.Cond { c with on_false = target })
    | _ -> invalid_arg "Hetero.rewire_edge: label does not match conditional")
  | _ -> invalid_arg "Hetero.rewire_edge: label does not match node"

let goto_name dst = Printf.sprintf "goto_%d" dst

(* The paper places a navigation table at the front of each program
   component assigned to a core; in the DAG that is one per crossing
   destination (sharing one per side would create structural cycles when
   migrations cross back and forth). *)
let navigation_table ~dst ~next_id =
  let goto = P4ir.Action.nop (goto_name dst) in
  P4ir.Table.make
    ~name:(Printf.sprintf "__nav_%d" dst)
    ~keys:[ P4ir.Table.key P4ir.Field.Next_tab_id P4ir.Match_kind.Exact ]
    ~actions:[ goto ]
    ~default_action:(goto_name dst)
    ~entries:[ P4ir.Table.entry [ P4ir.Pattern.Exact next_id ] (goto_name dst) ]
    ~role:P4ir.Table.Navigation ()

let migration_table ~name ~next_id =
  P4ir.Table.make ~name
    ~keys:[ P4ir.Table.key P4ir.Field.Next_tab_id P4ir.Match_kind.Exact ]
    ~actions:
      [ P4ir.Action.make "migrate" [ P4ir.Action.Set_field (P4ir.Field.Next_tab_id, next_id) ] ]
    ~default_action:"migrate" ~role:P4ir.Table.Migration ()

let materialize prog ~placement =
  let edges = crossing_edges prog ~placement in
  if edges = [] then (prog, placement)
  else begin
    let ids = next_tab_ids prog in
    let tab_id node = List.assoc node ids in
    let overrides : (P4ir.Program.node_id * Costmodel.Cost.core) list ref = ref [] in
    (* One navigation table in front of each crossing destination (the
       entry of a program component on the receiving core). *)
    let dests =
      List.sort_uniq compare (List.map (fun (_, _, dst) -> dst) edges)
    in
    let prog, navs =
      List.fold_left
        (fun (prog, navs) dst ->
          let tab = navigation_table ~dst ~next_id:(tab_id dst) in
          let prog, nav_id =
            P4ir.Program.add_node prog (P4ir.Program.Table (tab, P4ir.Program.Uniform (Some dst)))
          in
          overrides := (nav_id, placement dst) :: !overrides;
          (prog, (dst, nav_id) :: navs))
        (prog, []) dests
    in
    (* Split each crossing edge with a migration table on the source side
       flowing into the destination component's navigation table. *)
    let counter = ref 0 in
    let prog =
      List.fold_left
        (fun prog (src, label, dst) ->
          incr counter;
          let nav_id = List.assoc dst navs in
          let mig =
            migration_table
              ~name:(Printf.sprintf "__mig%d_%d_to_%d" !counter src dst)
              ~next_id:(tab_id dst)
          in
          let prog, mig_id =
            P4ir.Program.add_node prog
              (P4ir.Program.Table (mig, P4ir.Program.Uniform (Some nav_id)))
          in
          overrides := (mig_id, placement src) :: !overrides;
          rewire_edge prog src label (Some mig_id))
        prog edges
    in
    P4ir.Program.validate_exn prog;
    let overrides = !overrides in
    let placement' id =
      match List.assoc_opt id overrides with Some side -> side | None -> placement id
    in
    (prog, placement')
  end
