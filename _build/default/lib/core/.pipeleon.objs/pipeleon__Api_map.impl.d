lib/core/api_map.ml: Format List Merge P4ir
