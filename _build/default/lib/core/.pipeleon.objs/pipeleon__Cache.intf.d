lib/core/cache.mli: P4ir
