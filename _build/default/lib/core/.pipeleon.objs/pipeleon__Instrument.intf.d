lib/core/instrument.mli: Costmodel P4ir Profile
