lib/core/merge.ml: Cache Int64 List P4ir Printf Profile Set String
