lib/core/merge.mli: P4ir Profile
