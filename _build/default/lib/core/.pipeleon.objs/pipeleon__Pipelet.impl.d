lib/core/pipelet.ml: Format Hashtbl List P4ir String
