lib/core/knapsack.mli:
