lib/core/placement.mli: Costmodel P4ir Profile
