lib/core/api_map.mli: Format P4ir
