lib/core/hotspot.ml: Costmodel Hashtbl List Pipelet
