lib/core/search.mli: Candidate Costmodel Group Hotspot P4ir Pipelet Profile
