lib/core/optimizer.ml: Buffer Candidate Costmodel Float Fun Group Hotspot Int List P4ir Pipelet Printf Search String Sys Transform
