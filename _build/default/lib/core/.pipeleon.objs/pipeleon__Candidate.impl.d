lib/core/candidate.ml: Array Cache Costmodel Float Fun List Merge P4ir Printf Profile Reorder String Transform
