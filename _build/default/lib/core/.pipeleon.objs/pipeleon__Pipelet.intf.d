lib/core/pipelet.mli: Format P4ir
