lib/core/transform.ml: List P4ir Pipelet String
