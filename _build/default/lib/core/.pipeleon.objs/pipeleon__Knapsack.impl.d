lib/core/knapsack.ml: Array Float List Option
