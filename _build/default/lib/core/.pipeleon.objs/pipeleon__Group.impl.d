lib/core/group.ml: Cache Costmodel List P4ir Pipelet Profile String Transform
