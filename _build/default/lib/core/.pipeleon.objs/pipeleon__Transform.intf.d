lib/core/transform.mli: P4ir Pipelet
