lib/core/instrument.ml: Costmodel Hashtbl List P4ir
