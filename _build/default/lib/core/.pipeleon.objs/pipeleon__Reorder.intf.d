lib/core/reorder.mli: P4ir Profile
