lib/core/hotspot.mli: Costmodel P4ir Pipelet Profile
