lib/core/group.mli: Costmodel P4ir Pipelet Profile
