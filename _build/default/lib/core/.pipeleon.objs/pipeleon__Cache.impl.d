lib/core/cache.ml: List P4ir Profile Set String
