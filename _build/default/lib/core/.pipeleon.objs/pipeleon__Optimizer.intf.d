lib/core/optimizer.mli: Candidate Costmodel P4ir Profile Search
