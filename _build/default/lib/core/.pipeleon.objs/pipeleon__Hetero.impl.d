lib/core/hetero.ml: Costmodel Int64 List P4ir Printf String
