lib/core/search.ml: Array Candidate Group Hotspot Knapsack List Option Pipelet Printf
