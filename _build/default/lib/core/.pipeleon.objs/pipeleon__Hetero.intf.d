lib/core/hetero.mli: Costmodel P4ir
