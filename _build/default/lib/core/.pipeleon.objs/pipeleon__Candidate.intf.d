lib/core/candidate.mli: Costmodel P4ir Profile Transform
