lib/core/placement.ml: Costmodel Hashtbl List P4ir
