lib/core/reorder.ml: Array Fun List P4ir Profile
