let counter_sites prog =
  let table_sites =
    List.concat_map
      (fun (_, (tab : P4ir.Table.t)) ->
        List.map (fun (a : P4ir.Action.t) -> (tab.name, a.name)) tab.actions)
      (P4ir.Program.tables prog)
  in
  let cond_sites =
    List.concat_map
      (fun (_, (c : P4ir.Program.cond)) ->
        [ (c.cond_name, "true"); (c.cond_name, "false") ])
      (P4ir.Program.conds prog)
  in
  table_sites @ cond_sites

let expected_updates_per_packet prof prog =
  List.fold_left
    (fun acc (_, p) -> acc +. p)
    0.
    (Costmodel.Cost.reach_probs prof prog)

let max_updates_per_packet prog =
  let memo = Hashtbl.create 16 in
  let rec longest = function
    | None -> 0
    | Some id -> (
      match Hashtbl.find_opt memo id with
      | Some v -> v
      | None ->
        let succ = P4ir.Program.out_edges prog id in
        let best =
          List.fold_left (fun acc (_, nxt) -> max acc (longest nxt)) 0 succ
        in
        let v = 1 + best in
        Hashtbl.replace memo id v;
        v)
  in
  longest (P4ir.Program.root prog)

let overhead_latency (target : Costmodel.Target.t) prof prog ~sample_rate =
  if sample_rate <= 0 then invalid_arg "Instrument.overhead_latency: sample_rate >= 1";
  expected_updates_per_packet prof prog
  *. target.counter_update_cost
  /. float_of_int sample_rate
