(** Table merging (§3.2.3): several tables become one, performing all
    their actions with a single key match.

    Two variants, as in the paper: a plain merge produces a ternary table
    whose entries are the cross product of the originals' entries plus
    wildcard combinations expressing per-table misses (Fig. 6); because
    the ternary [m] can make this slower, the exact variant instead
    builds an exact table of hit-hit combinations used as a lookaside
    cache, falling back to the originals on a miss. *)

val max_merged_entries : int
(** Cross-product guard (4096 entries). *)

val mergeable : P4ir.Table.t list -> bool
(** Semantics check: no table writes a field that a later covered table
    matches or reads (the single merged lookup reads all keys at once),
    no range keys, and the cross product stays within bounds. *)

val fallback_compatible : P4ir.Table.t list -> bool
(** The exact-lookaside variant additionally needs all-exact keys. *)

val entry_estimate : P4ir.Table.t list -> int
(** The paper's N(T_AB) = prod N(T_i). *)

val update_estimate : Profile.t -> P4ir.Table.t list -> float
(** The paper's I(T_AB) = sum_i I(T_i) * prod_{j<>i} N(T_j). *)

val build_ternary : name:string -> P4ir.Table.t list -> P4ir.Table.t
(** @raise Invalid_argument if not {!mergeable}. *)

val build_fallback : name:string -> P4ir.Table.t list -> P4ir.Table.t
(** @raise Invalid_argument if not {!mergeable} or not
    {!fallback_compatible}. *)

val common_key_compatible : P4ir.Table.t list -> bool
(** At least two tables sharing exactly the same all-exact key list
    (overlapping ternary/LPM rows cannot be joined row-wise). *)

val build_common_key : name:string -> P4ir.Table.t list -> P4ir.Table.t
(** MATReduce-style merge ([20] in the paper's related work): when the
    covered tables match on the *same* key, duplicate match work can be
    eliminated without a cross product — the merged table has one entry
    per distinct key value present in any original (size bounded by the
    SUM of entry counts, not the product), each fusing the action every
    original would take on that value. Keys keep their original kinds
    (patterns must agree exactly across tables for a value to join).
    @raise Invalid_argument if not {!mergeable} or the keys differ. *)
