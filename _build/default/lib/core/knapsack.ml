type option_item = { gain : float; mem : int; upd : float; tag : int }

type solution = { total_gain : float; picks : (int * int) list }

let solve ?(mem_buckets = 64) ?(upd_buckets = 32) ~groups ~mem_budget ~upd_budget () =
  let nm = max 1 mem_buckets in
  let nu = max 1 upd_buckets in
  let mem_unit = Float.max 1. (float_of_int mem_budget /. float_of_int nm) in
  let upd_unit = Float.max 1e-9 (upd_budget /. float_of_int nu) in
  let bucket_mem m = int_of_float (ceil (float_of_int (max 0 m) /. mem_unit)) in
  let bucket_upd u = int_of_float (ceil (Float.max 0. u /. upd_unit)) in
  (* dp.(m).(u) = best gain using at most m memory units and u update
     units; picks tracked alongside. *)
  let dp = ref (Array.make_matrix (nm + 1) (nu + 1) 0.) in
  let picks = ref (Array.make_matrix (nm + 1) (nu + 1) ([] : (int * int) list)) in
  List.iteri
    (fun gi options ->
      (* New layer reads only the previous groups' layer, so each group
         contributes at most one option (zero-cost options included). *)
      let prev_dp = !dp and prev_picks = !picks in
      let next_dp = Array.map Array.copy prev_dp in
      let next_picks = Array.map Array.copy prev_picks in
      for m = 0 to nm do
        for u = 0 to nu do
          List.iter
            (fun o ->
              if o.gain > 0. then begin
                let cm = bucket_mem o.mem in
                let cu = bucket_upd o.upd in
                if cm <= m && cu <= u then begin
                  let candidate = prev_dp.(m - cm).(u - cu) +. o.gain in
                  if candidate > next_dp.(m).(u) then begin
                    next_dp.(m).(u) <- candidate;
                    next_picks.(m).(u) <- (gi, o.tag) :: prev_picks.(m - cm).(u - cu)
                  end
                end
              end)
            options
        done
      done;
      dp := next_dp;
      picks := next_picks)
    groups;
  { total_gain = (!dp).(nm).(nu); picks = List.rev (!picks).(nm).(nu) }

let greedy ~groups ~mem_budget ~upd_budget =
  (* Per group keep the best-density option, then take groups in density
     order while budgets last. *)
  let density o =
    let mem_frac = float_of_int (max 0 o.mem) /. Float.max 1. (float_of_int mem_budget) in
    let upd_frac = Float.max 0. o.upd /. Float.max 1e-9 upd_budget in
    o.gain /. Float.max 1e-9 (mem_frac +. upd_frac)
  in
  let best_per_group =
    List.mapi
      (fun gi options ->
        let best =
          List.fold_left
            (fun acc o ->
              if o.gain <= 0. then acc
              else
                match acc with
                | Some b when density b >= density o -> acc
                | _ -> Some o)
            None options
        in
        (gi, best))
      groups
    |> List.filter_map (fun (gi, o) -> Option.map (fun o -> (gi, o)) o)
  in
  let sorted =
    List.stable_sort (fun (_, a) (_, b) -> compare (density b) (density a)) best_per_group
  in
  let _, _, gain, picks =
    List.fold_left
      (fun (mem_left, upd_left, gain, picks) (gi, o) ->
        if o.mem <= mem_left && o.upd <= upd_left then
          (mem_left - max 0 o.mem, upd_left -. Float.max 0. o.upd, gain +. o.gain,
           (gi, o.tag) :: picks)
        else (mem_left, upd_left, gain, picks))
      (mem_budget, upd_budget, 0., [])
      sorted
  in
  { total_gain = gain; picks = List.rev picks }
