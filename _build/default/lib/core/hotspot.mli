(** Hot pipelet detection (§4.1.2): rank pipelets by their contribution
    to expected program latency, [L(G') x P(G')]. *)

type hot = {
  pipelet : Pipelet.t;
  reach_prob : float;  (** probability a packet reaches the pipelet *)
  local_latency : float;  (** expected latency inside, given it is reached *)
  weighted_cost : float;  (** the ranking key: reach_prob * local_latency *)
}

val rank :
  Costmodel.Target.t -> Profile.t -> P4ir.Program.t -> Pipelet.t list -> hot list
(** Descending by [weighted_cost]. *)

val top_k : fraction:float -> hot list -> hot list
(** Keep the top [ceil (fraction * n)] pipelets; [fraction] in (0, 1]. *)
