(** Instrumentation analysis (§4.1.2, §5.4.1).

    The simulator updates one counter per table action fired and one per
    branch outcome; this module reports where those counters sit and how
    many updates a packet performs — the x-axis of the Fig. 12 overhead
    study — plus the modelled latency overhead. *)

val counter_sites : P4ir.Program.t -> (string * string) list
(** Every (owner, label) counter the instrumented program carries: one
    per table action and ["true"]/["false"] per conditional. *)

val expected_updates_per_packet : Profile.t -> P4ir.Program.t -> float
(** Expected number of per-packet counter updates: one per node visited,
    weighted by reach probability. *)

val max_updates_per_packet : P4ir.Program.t -> int
(** Updates along the longest root-to-sink path. *)

val overhead_latency :
  Costmodel.Target.t -> Profile.t -> P4ir.Program.t -> sample_rate:int -> float
(** Additional expected latency per packet due to counter updates when
    sampling 1 in [sample_rate] packets. *)
