(** Heterogeneous ASIC/CPU partitioning with table copying (§3.2.4,
    Appendix A.2).

    Some tables carry actions the ASIC cores cannot execute and must run
    on CPU cores; every ASIC<->CPU boundary a packet crosses costs one
    migration. Placing an ASIC-capable table on the CPU ("copying" it to
    the software pipeline) can remove crossings — worth it when migration
    is dear and enough traffic takes the software path. *)

type requirement = Any | Needs_cpu | Needs_asic

val placement_of_assoc :
  (P4ir.Program.node_id * Costmodel.Cost.core) list -> Costmodel.Cost.placement
(** Missing nodes default to ASIC. *)

val naive :
  P4ir.Program.t ->
  require:(P4ir.Program.node_id -> requirement) ->
  Costmodel.Cost.placement
(** CPU only where required — the baseline partition that migrates the
    most. *)

val optimize :
  ?max_sweeps:int ->
  Costmodel.Target.t ->
  Profile.t ->
  P4ir.Program.t ->
  require:(P4ir.Program.node_id -> requirement) ->
  Costmodel.Cost.placement
(** Iterative improvement from the naive partition: flip any [Any] node
    whose move lowers expected latency, until a sweep makes no progress
    (at most [max_sweeps], default 8). Exact for chains, a good local
    optimum for DAGs. *)

val migrations_expected :
  Profile.t -> P4ir.Program.t -> placement:Costmodel.Cost.placement -> float
(** Expected ASIC<->CPU crossings per packet (including entry and exit
    from the CPU side). *)
