(** Graph surgery: replace a pipelet with an optimized element sequence.

    An element list is the concrete, deployable form of an optimization
    combination: plain (possibly reordered) tables, flow caches that skip
    their covered originals on a hit, and merged tables (with or without
    an exact-match fallback path). *)

type element =
  | Plain of P4ir.Table.t
  | Cached of { cache : P4ir.Table.t; originals : P4ir.Table.t list }
      (** cache hit jumps past [originals]; miss falls through to them *)
  | Merged_plain of { merged : P4ir.Table.t; originals : P4ir.Table.t list }
      (** ternary merge: the originals are gone from the graph; they are
          kept here as provenance for evaluation and API mapping *)
  | Merged_fallback of { merged : P4ir.Table.t; originals : P4ir.Table.t list }
      (** exact merge used as a lookaside: miss falls back to originals *)

val element_tables : element -> P4ir.Table.t list
(** Every table the element materializes, cache/merged first. *)

val chain_program : string -> element list -> P4ir.Program.t
(** A standalone program consisting of just this element sequence; used
    by the optimizer to evaluate candidate cost before committing. *)

val apply :
  P4ir.Program.t -> Pipelet.t -> element list -> P4ir.Program.t
(** Replace the pipelet's table chain with the element sequence: incoming
    edges are redirected to the new entry, the last element flows to the
    pipelet's exit, and the old nodes are removed. The result is
    validated. @raise Invalid_argument on an empty element list or if the
    rewrite produces an invalid program. *)
