type hot = {
  pipelet : Pipelet.t;
  reach_prob : float;
  local_latency : float;
  weighted_cost : float;
}

let rank target prof prog pipelets =
  let reach = Hashtbl.create 64 in
  List.iter
    (fun (id, p) -> Hashtbl.replace reach id p)
    (Costmodel.Cost.reach_probs prof prog);
  let reach_of id = match Hashtbl.find_opt reach id with Some p -> p | None -> 0. in
  let hots =
    List.map
      (fun (p : Pipelet.t) ->
        let entry_prob = reach_of p.entry in
        let weighted =
          List.fold_left
            (fun acc id ->
              acc +. (reach_of id *. Costmodel.Cost.node_cost target prof prog id))
            0. p.table_ids
        in
        let local = if entry_prob > 0. then weighted /. entry_prob else 0. in
        { pipelet = p; reach_prob = entry_prob; local_latency = local;
          weighted_cost = weighted })
      pipelets
  in
  List.stable_sort (fun a b -> compare b.weighted_cost a.weighted_cost) hots

let top_k ~fraction hots =
  if fraction <= 0. || fraction > 1. then invalid_arg "Hotspot.top_k: fraction in (0,1]";
  let n = List.length hots in
  let keep = int_of_float (ceil (fraction *. float_of_int n)) in
  List.filteri (fun i _ -> i < keep) hots
