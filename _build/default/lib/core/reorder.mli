(** Table reordering (§3.2.1): permute dependency-free tables so that
    high-drop-rate tables execute earlier, shortening the expected path. *)

val order_valid : P4ir.Table.t array -> int list -> bool
(** Is the permutation (list of original positions) semantics-preserving?
    Every dependent pair must keep its relative order. *)

val candidate_orders : ?max_enumerate:int -> P4ir.Table.t list -> int list list
(** All valid permutations when the pipelet has at most [max_enumerate]
    (default 5) tables; otherwise the identity order plus the
    drop-greedy heuristic order. The identity order is always first. *)

val greedy_drop_order : Profile.t -> P4ir.Table.t list -> int list
(** Stable-sort positions by descending drop probability, bubbling a
    table earlier only past tables it is independent of. *)

val apply_order : 'a list -> int list -> 'a list
(** Reorder a list by original positions. @raise Invalid_argument if the
    permutation is malformed. *)
