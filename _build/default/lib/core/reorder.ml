let order_valid tabs order =
  let n = Array.length tabs in
  if List.length order <> n || List.sort compare order <> List.init n Fun.id then false
  else
    (* For every pair appearing swapped relative to the original order,
       the two tables must be independent. *)
    let arr = Array.of_list order in
    let ok = ref true in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        if arr.(i) > arr.(j) && not (P4ir.Deps.independent tabs.(arr.(j)) tabs.(arr.(i)))
        then ok := false
      done
    done;
    !ok

let rec permutations = function
  | [] -> [ [] ]
  | xs ->
    List.concat_map
      (fun x ->
        let rest = List.filter (fun y -> y <> x) xs in
        List.map (fun p -> x :: p) (permutations rest))
      xs

let greedy_drop_order prof tabs =
  let arr = Array.of_list tabs in
  let order = Array.init (Array.length arr) Fun.id in
  (* Insertion-sort by descending drop rate, moving a table earlier only
     while it is independent of the table it passes. *)
  let drop i = Profile.drop_prob prof arr.(i) in
  let n = Array.length order in
  for i = 1 to n - 1 do
    let j = ref i in
    while
      !j > 0
      && drop order.(!j) > drop order.(!j - 1)
      && P4ir.Deps.independent arr.(order.(!j - 1)) arr.(order.(!j))
    do
      let tmp = order.(!j) in
      order.(!j) <- order.(!j - 1);
      order.(!j - 1) <- tmp;
      decr j
    done
  done;
  Array.to_list order

let candidate_orders ?(max_enumerate = 5) tabs =
  let n = List.length tabs in
  let identity = List.init n Fun.id in
  if n <= 1 then [ identity ]
  else if n <= max_enumerate then begin
    let arr = Array.of_list tabs in
    let valid = List.filter (order_valid arr) (permutations identity) in
    identity :: List.filter (fun o -> o <> identity) valid
  end
  else identity :: []

let apply_order xs order =
  let arr = Array.of_list xs in
  if List.length order <> Array.length arr then
    invalid_arg "Reorder.apply_order: length mismatch";
  List.map
    (fun i ->
      if i < 0 || i >= Array.length arr then
        invalid_arg "Reorder.apply_order: index out of range"
      else arr.(i))
    order
