(** Pipelet groups (§4.1.1): neighbouring pipelets under one branch with a
    common exit, optimized jointly via a group cache (§5.4.4).

    A group cache sits in front of the branch, keyed on the branch field
    plus the live-in fields of every member pipelet; a hit replays the
    fused behaviour of whichever arm the flow takes and jumps straight to
    the common exit. *)

type t = {
  branch : P4ir.Program.node_id;  (** the conditional feeding the members *)
  members : Pipelet.t list;
  common_exit : P4ir.Program.next;
}

val detect : P4ir.Program.t -> candidates:Pipelet.t list -> t list
(** Groups whose branch arms are both candidate pipelets (single
    predecessor each) sharing one exit. Only conditional branches are
    grouped; switch-case fan-outs are left alone. *)

type evaluated = {
  group : t;
  cache : P4ir.Table.t;
  gain : float;
  mem_delta : int;
  update_delta : float;
}

val build_cache :
  ?capacity:int -> ?insert_limit:float -> name:string -> P4ir.Program.t -> t ->
  P4ir.Table.t option
(** [None] when a member is not cacheable or the fused-action space
    explodes. *)

val evaluate :
  Costmodel.Target.t -> Profile.t -> P4ir.Program.t -> t -> cache:P4ir.Table.t ->
  evaluated

val apply : P4ir.Program.t -> t -> cache:P4ir.Table.t -> P4ir.Program.t
(** Insert the cache before the branch: hit actions jump to the common
    exit, the miss default falls through to the branch. *)
