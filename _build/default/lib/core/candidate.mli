(** Per-pipelet optimization candidates: enumeration, realization into
    concrete rewrite plans, and cost-model evaluation (§4.2 local search).

    A combination is a table order plus a set of disjoint segments, each
    cached or merged. For a two-table pipelet this yields exactly the
    paper's candidate set: caches [TA], [TB], [TA][TB], [TA,TB], the
    merge [TA,TB], and both orders — with merge and cache never applied
    to the same table. *)

type seg_kind = Cache_seg | Merge_ternary_seg | Merge_fallback_seg

type seg = { pos : int; len : int; kind : seg_kind }
(** Positions index the reordered table list. *)

type combo = { order : int list; segs : seg list }

type options = {
  max_enumerate_order : int;  (** full permutations up to this length *)
  max_merge_len : int;  (** the paper caps merges (2 by default, §5.2.2) *)
  max_cache_len : int;
  max_combos : int;  (** safety valve on the candidate count *)
  cache_capacity : int;
  cache_insert_limit : float;
}

val default_options : options

type evaluated = {
  combo : combo;
  gain : float;  (** expected latency saved, weighted by reach probability *)
  latency_before : float;
  latency_after : float;
  mem_delta : int;  (** additional memory in bytes (may be negative) *)
  update_delta : float;  (** additional entry updates/sec *)
}

val identity_combo : int -> combo

val enumerate : ?opts:options -> Profile.t -> P4ir.Table.t list -> combo list
(** All candidate combinations for the pipelet's table list, including
    reorder-only combos; excludes the identity no-op. *)

val realize :
  ?opts:options ->
  name_prefix:string ->
  P4ir.Table.t list ->
  combo ->
  Transform.element list option
(** Build the concrete tables; [None] when a segment is not cacheable /
    mergeable or a construction guard trips. *)

val extend_profile : Profile.t -> Transform.element list -> Profile.t
(** Add synthetic stats for newly created cache/merged tables: estimated
    hit rates ({!Profile.cache_hit_estimate}), product action
    distributions, and amplified update rates. *)

type ctx
(** Per-pipelet evaluation context: memoized per-table costs, match [m],
    memory, and drop probabilities, so evaluating one combination is
    O(pipelet length) regardless of entry counts. *)

val context :
  ?opts:options ->
  Costmodel.Target.t ->
  Profile.t ->
  reach_prob:float ->
  P4ir.Table.t list ->
  ctx

val evaluate_analytic : ctx -> combo -> evaluated option
(** Closed-form cost-model evaluation of a combination — no tables are
    materialized, so the local search stays fast regardless of entry
    counts (merged cross products are *estimated*, as in §3.2.3). [None]
    when the combination is invalid (dependency violations, unmergeable
    or uncacheable segments). This is what the search uses; the chosen
    combination is realized afterwards. *)

val evaluate :
  Costmodel.Target.t ->
  Profile.t ->
  reach_prob:float ->
  originals:P4ir.Table.t list ->
  combo ->
  Transform.element list ->
  evaluated
(** Reference evaluation of a *realized* element list, by running the
    cost model over the actual before/after mini-programs. Used by tests
    to cross-check {!evaluate_analytic} and by ablations. *)

val best_of : evaluated list -> evaluated option
(** Highest positive gain, if any. *)
