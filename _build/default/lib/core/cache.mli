(** Table caching (§3.2.2): replace a run of tables with a fast
    exact-match flow cache; misses fall through to the originals and
    install the observed result (LRU, insertion rate limited). *)

val cacheable : ?max_actions:int -> P4ir.Table.t list -> bool
(** A segment can be cached when its joint behaviour is a function of
    packet fields on entry (always true for our IR: every input a covered
    table reads is either live-in or written by an earlier covered table)
    and the fused-action space stays below [max_actions] (default
    {!max_fused_actions}; whole-program caches pass a larger bound). *)

val max_fused_actions : int
(** Bound on the number of fused action combinations (64). *)

val live_in_fields : P4ir.Table.t list -> P4ir.Field.t list
(** Fields that determine the segment's behaviour: everything read by a
    covered table before the segment itself writes it. These become the
    cache's exact-match key. *)

val fused_action_sequences : P4ir.Table.t list -> string list list
(** All realizable per-table action sequences: a sequence stops at the
    first dropping action (later tables never execute). *)

val num_sequences : P4ir.Table.t list -> int
(** [List.length (fused_action_sequences tabs)] without materializing. *)

val fused_actions_of :
  ?name_pairs_prefix:(string * string) list -> P4ir.Table.t list -> P4ir.Action.t list
(** One fused action per realizable sequence. [name_pairs_prefix] is
    prepended to the (table, action) pairs in each fused name — group
    caches use it to tag the branch outcome that selects the member. *)

val build :
  ?max_actions:int ->
  ?capacity:int ->
  ?insert_limit:float ->
  name:string ->
  P4ir.Table.t list ->
  P4ir.Table.t
(** The cache table for a covered segment: exact keys on the live-in
    fields, one fused action per realizable sequence, a ["miss"] default,
    [Cache] role with [auto_insert = true]. [capacity] defaults to 4096
    entries, [insert_limit] to 1000 fills/sec.
    @raise Invalid_argument if the segment is not {!cacheable}. *)
