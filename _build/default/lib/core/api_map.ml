type op =
  | Direct of { table : string; insert : bool; entry : P4ir.Table.entry }
  | Rebuild of { table : string; entries : P4ir.Table.entry list }
  | Invalidate of string

let covering_caches optimized tname =
  List.filter_map
    (fun (_, (tab : P4ir.Table.t)) ->
      match tab.role with
      | P4ir.Table.Cache meta when List.mem tname meta.cached_tables -> Some tab
      | _ -> None)
    (P4ir.Program.tables optimized)

let covering_merges optimized tname =
  List.filter_map
    (fun (_, (tab : P4ir.Table.t)) ->
      match tab.role with
      | P4ir.Table.Merged names when List.mem tname names -> Some (tab, names)
      | _ -> None)
    (P4ir.Program.tables optimized)

let originals_of original names =
  List.map
    (fun n ->
      match P4ir.Program.find_table original n with
      | Some (_, tab) -> tab
      | None -> invalid_arg ("Api_map: merged source table missing: " ^ n))
    names

let map_update ~original ~optimized ~table entry ~insert =
  if P4ir.Program.find_table original table = None then
    invalid_arg ("Api_map: unknown original table " ^ table);
  let direct =
    match P4ir.Program.find_table optimized table with
    | Some _ -> [ Direct { table; insert; entry } ]
    | None -> []
  in
  let rebuilds =
    List.map
      (fun ((merged : P4ir.Table.t), names) ->
        let tabs = originals_of original names in
        let rebuilt =
          match merged.role with
          | P4ir.Table.Merged _ -> Merge.build_ternary ~name:merged.name tabs
          | _ -> merged
        in
        Rebuild { table = merged.name; entries = rebuilt.P4ir.Table.entries })
      (covering_merges optimized table)
  in
  let fallback_rebuilds =
    (* Exact-merge lookaside caches (auto_insert = false) hold
       precomputed cross products: recompute them as well. *)
    List.filter_map
      (fun (cache : P4ir.Table.t) ->
        match cache.role with
        | P4ir.Table.Cache meta when not meta.auto_insert ->
          let tabs = originals_of original meta.cached_tables in
          if Merge.mergeable tabs && Merge.fallback_compatible tabs then
            let rebuilt = Merge.build_fallback ~name:cache.name tabs in
            Some (Rebuild { table = cache.name; entries = rebuilt.P4ir.Table.entries })
          else None
        | _ -> None)
      (covering_caches optimized table)
  in
  let invalidations =
    List.filter_map
      (fun (cache : P4ir.Table.t) ->
        match cache.role with
        | P4ir.Table.Cache meta when meta.auto_insert -> Some (Invalidate cache.name)
        | _ -> None)
      (covering_caches optimized table)
  in
  direct @ rebuilds @ fallback_rebuilds @ invalidations

let map_insert ~original ~optimized ~table entry =
  map_update ~original ~optimized ~table entry ~insert:true

let map_delete ~original ~optimized ~table entry =
  map_update ~original ~optimized ~table entry ~insert:false

let pp_op fmt = function
  | Direct { table; insert; _ } ->
    Format.fprintf fmt "%s(%s)" (if insert then "insert" else "delete") table
  | Rebuild { table; entries } ->
    Format.fprintf fmt "rebuild(%s, %d entries)" table (List.length entries)
  | Invalidate table -> Format.fprintf fmt "invalidate(%s)" table
