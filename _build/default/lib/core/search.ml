type pipelet_candidates = {
  hot : Hotspot.hot;
  evaluated : Candidate.evaluated list;
}

type plan = {
  choices : (Hotspot.hot * Candidate.evaluated) list;
  group_choices : Group.evaluated list;
  predicted_gain : float;
  candidates_examined : int;
}

let local_optimize ?opts ?name_prefix target prof prog hots =
  ignore name_prefix;
  List.map
    (fun (hot : Hotspot.hot) ->
      let originals = Pipelet.tables prog hot.pipelet in
      let combos = Candidate.enumerate ?opts prof originals in
      (* Analytic evaluation only: materializing candidate tables (cross
         products!) happens once, for the chosen combination. *)
      let ctx = Candidate.context ?opts target prof ~reach_prob:hot.reach_prob originals in
      let evaluated =
        List.filter_map
          (fun combo ->
            match Candidate.evaluate_analytic ctx combo with
            | Some e when e.Candidate.gain > 0. -> Some e
            | _ -> None)
          combos
      in
      { hot; evaluated })
    hots

let global_optimize ?(use_greedy = false) ~budget ~headroom_mem ~headroom_upd candidates =
  let groups =
    List.map
      (fun pc ->
        List.mapi
          (fun i (e : Candidate.evaluated) ->
            { Knapsack.gain = e.gain; mem = e.mem_delta; upd = e.update_delta; tag = i })
          pc.evaluated)
      candidates
  in
  ignore budget;
  let solution =
    if use_greedy then
      Knapsack.greedy ~groups ~mem_budget:headroom_mem ~upd_budget:headroom_upd
    else Knapsack.solve ~groups ~mem_budget:headroom_mem ~upd_budget:headroom_upd ()
  in
  let arr = Array.of_list candidates in
  let choices =
    List.filter_map
      (fun (gi, tag) ->
        if gi < Array.length arr then
          let pc = arr.(gi) in
          List.nth_opt pc.evaluated tag |> Option.map (fun e -> (pc.hot, e))
        else None)
      solution.Knapsack.picks
  in
  { choices;
    group_choices = [];
    predicted_gain = solution.Knapsack.total_gain;
    candidates_examined = List.fold_left (fun acc pc -> acc + List.length pc.evaluated) 0 candidates }

let with_groups ?opts ?(name_prefix = "__opt") target prof prog ~candidates ~chosen =
  let cache_opts = match opts with Some o -> o | None -> Candidate.default_options in
  let groups = Group.detect prog ~candidates in
  let counter = ref 0 in
  (* A group cache competes with its members' individual choices: adopt
     it only when it beats their combined gain, and drop those choices
     (the group cache covers the members end to end). *)
  let choices = ref chosen.choices in
  let group_choices =
    List.filter_map
      (fun g ->
        incr counter;
        let name = Printf.sprintf "%s_group%d_%d" name_prefix g.Group.branch !counter in
        match
          Group.build_cache ~capacity:cache_opts.Candidate.cache_capacity
            ~insert_limit:cache_opts.Candidate.cache_insert_limit ~name prog g
        with
        | None -> None
        | Some cache ->
          let e = Group.evaluate target prof prog g ~cache in
          let member_entries =
            List.map (fun (p : Pipelet.t) -> p.Pipelet.entry) g.Group.members
          in
          let member_choices, others =
            List.partition
              (fun ((hot : Hotspot.hot), _) ->
                List.mem hot.pipelet.Pipelet.entry member_entries)
              !choices
          in
          let member_gain =
            List.fold_left
              (fun acc (_, (ev : Candidate.evaluated)) -> acc +. ev.gain)
              0. member_choices
          in
          if e.Group.gain > member_gain && e.Group.gain > 0. then begin
            choices := others;
            Some e
          end
          else None)
      groups
  in
  { chosen with
    choices = !choices;
    group_choices;
    predicted_gain =
      List.fold_left
        (fun acc (_, (ev : Candidate.evaluated)) -> acc +. ev.gain)
        0. !choices
      +. List.fold_left (fun acc (e : Group.evaluated) -> acc +. e.gain) 0. group_choices }
