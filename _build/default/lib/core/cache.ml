let max_fused_actions = 64

module FieldSet = Set.Make (P4ir.Field)

let live_in_fields tabs =
  let rec go live_in written = function
    | [] -> live_in
    | (tab : P4ir.Table.t) :: rest ->
      let reads = FieldSet.of_list (P4ir.Table.reads_of tab) in
      let fresh = FieldSet.diff reads written in
      let written = FieldSet.union written (FieldSet.of_list (P4ir.Table.writes_of tab)) in
      go (FieldSet.union live_in fresh) written rest
  in
  FieldSet.elements (go FieldSet.empty FieldSet.empty tabs)

let fused_action_sequences tabs =
  let rec go = function
    | [] -> [ [] ]
    | (tab : P4ir.Table.t) :: rest ->
      List.concat_map
        (fun (a : P4ir.Action.t) ->
          if P4ir.Action.is_dropping a then [ [ a.name ] ]
          else List.map (fun seq -> a.name :: seq) (go rest))
        tab.actions
  in
  go tabs

let num_sequences tabs =
  (* Same recursion as {!fused_action_sequences} but counting, to test
     the explosion bound cheaply. *)
  let rec go = function
    | [] -> 1
    | (tab : P4ir.Table.t) :: rest ->
      let tail = go rest in
      List.fold_left
        (fun acc (a : P4ir.Action.t) ->
          acc + if P4ir.Action.is_dropping a then 1 else tail)
        0 tab.actions
  in
  go tabs

let cacheable ?(max_actions = max_fused_actions) tabs =
  tabs <> [] && num_sequences tabs <= max_actions && live_in_fields tabs <> []

let fused_action ?(name_pairs_prefix = []) tabs seq =
  let prefix_tabs = List.filteri (fun i _ -> i < List.length seq) tabs in
  let actions =
    List.map2
      (fun (tab : P4ir.Table.t) name -> P4ir.Table.find_action_exn tab name)
      prefix_tabs seq
  in
  match actions with
  | [] -> invalid_arg "Cache.fused_action: empty sequence"
  | first :: rest ->
    let name =
      Profile.Counter_map.fuse
        (name_pairs_prefix
        @ List.map2 (fun (tab : P4ir.Table.t) a -> (tab.name, a)) prefix_tabs seq)
    in
    List.fold_left
      (fun acc a -> P4ir.Action.concat name acc a)
      (P4ir.Action.rename name first)
      rest

let fused_actions_of ?name_pairs_prefix tabs =
  let fused =
    List.map
      (fun seq -> fused_action ?name_pairs_prefix tabs seq)
      (fused_action_sequences tabs)
  in
  List.fold_left
    (fun acc (a : P4ir.Action.t) ->
      if List.exists (fun (b : P4ir.Action.t) -> String.equal a.name b.name) acc then acc
      else a :: acc)
    [] fused
  |> List.rev

let build ?max_actions ?(capacity = 4096) ?(insert_limit = 1000.) ~name tabs =
  if not (cacheable ?max_actions tabs) then
    invalid_arg ("Cache.build: segment not cacheable: " ^ name);
  let keys =
    List.map (fun f -> P4ir.Table.key f P4ir.Match_kind.Exact) (live_in_fields tabs)
  in
  let fused = fused_actions_of tabs in
  let miss = P4ir.Action.nop "miss" in
  P4ir.Table.make ~name
    ~keys
    ~actions:(fused @ [ miss ])
    ~default_action:"miss"
    ~max_entries:capacity
    ~role:
      (P4ir.Table.Cache
         { P4ir.Table.cached_tables = List.map (fun (t : P4ir.Table.t) -> t.name) tabs;
           capacity;
           insert_limit;
           auto_insert = true })
    ()
