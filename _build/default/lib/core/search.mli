(** The best-optimization search (§4.2, Appendix A.1): local candidate
    enumeration per hot pipelet, then a global group-knapsack pick under
    the memory / update-rate budgets. *)

type pipelet_candidates = {
  hot : Hotspot.hot;
  evaluated : Candidate.evaluated list;  (** positive-gain candidates *)
}

type plan = {
  choices : (Hotspot.hot * Candidate.evaluated) list;
  group_choices : Group.evaluated list;
  predicted_gain : float;
  candidates_examined : int;
}

val local_optimize :
  ?opts:Candidate.options ->
  ?name_prefix:string ->
  Costmodel.Target.t ->
  Profile.t ->
  P4ir.Program.t ->
  Hotspot.hot list ->
  pipelet_candidates list
(** LocalOptimize: enumerate, realize, and evaluate every valid
    combination for each pipelet. *)

val global_optimize :
  ?use_greedy:bool ->
  budget:Costmodel.Resource.budget ->
  headroom_mem:int ->
  headroom_upd:float ->
  pipelet_candidates list ->
  plan
(** GlobalOptimize: group knapsack over the pipelets' candidate lists.
    [headroom_*] are the budget remainders after the current program's
    own consumption. [use_greedy] switches to the density heuristic
    (ablation). *)

val with_groups :
  ?opts:Candidate.options ->
  ?name_prefix:string ->
  Costmodel.Target.t ->
  Profile.t ->
  P4ir.Program.t ->
  candidates:Pipelet.t list ->
  chosen:plan ->
  plan
(** Cross-pipelet pass: detect groups among the candidate pipelets that
    the per-pipelet plan left untouched and add group caches when they
    beat the sum of the members' individual choices. *)
